/**
 * @file
 * anvil_merge — merge on-disk "anvil-events-v1" telemetry event
 * streams into one unified closure report.
 *
 * The multi-machine half of the farm story: `anvilc --farm N`
 * merges its workers in-process, while regression shards running
 * anywhere can each write a stream (`anvilc --sim ... --events f`)
 * and ship the files here.  The merged artifacts are byte-compatible
 * with single-run output (see obs::Merger).
 *
 * Usage:
 *   anvil_merge [options] <stream.jsonl>...
 *     --cov           print the merged coverage report
 *     --metrics <f>   write merged metrics JSON ("anvil-metrics-v1")
 *     --stats-json    print the merged "anvil-stats-v1" line
 *     --triage        print the fleet-ranked violation triage table
 *     (default with no options: per-stream summary + sim-summary)
 *
 * Exit codes: 0 ok, 1 any merged stream recorded failures, 2 usage,
 * 3 I/O or malformed stream.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/merge.h"

using namespace anvil;

int
main(int argc, char **argv)
{
    bool cov = false, stats_json = false, triage = false;
    std::string metrics_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--cov") {
            cov = true;
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--stats-json") {
            stats_json = true;
        } else if (arg == "--triage") {
            triage = true;
        } else if (arg == "-h" || arg == "--help" ||
                   (!arg.empty() && arg[0] == '-')) {
            fprintf(stderr,
                    "usage: anvil_merge [--cov] [--metrics <f>] "
                    "[--stats-json] [--triage] <stream.jsonl>...\n");
            return arg == "-h" || arg == "--help" ? 0 : 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        fprintf(stderr, "anvil_merge: no event streams given\n");
        return 2;
    }

    obs::Merger merger;
    try {
        for (const std::string &p : paths)
            merger.addStreamFile(p);
    } catch (const std::exception &e) {
        fprintf(stderr, "anvil_merge: %s\n", e.what());
        return 3;
    }

    printf("merge: %zu stream(s)\n", merger.streams());
    for (const obs::Merger::StreamInfo &si : merger.streamInfos())
        printf("  worker %d: seed %llu, %llu cycle(s), "
               "%llu failure(s), backend %s\n",
               si.worker, (unsigned long long)si.seed,
               (unsigned long long)si.cycles,
               (unsigned long long)si.failures, si.backend.c_str());

    // Flight-recorder window references pass through deduped — the
    // merged report points straight at every worker's trigger VCD.
    for (const obs::Merger::WindowDump &wd : merger.windowDumps())
        printf("  window-dump worker %d: %s @%llu [%llu..%llu] %s\n",
               wd.worker, wd.trigger.c_str(),
               (unsigned long long)wd.trigger_cycle,
               (unsigned long long)wd.from,
               (unsigned long long)wd.to,
               wd.path.empty() ? "(unsaved)" : wd.path.c_str());

    obs::Merger::Totals t = merger.totals();
    printf("sim: %llu cycles, %llu toggles across %zu worker(s)\n",
           (unsigned long long)t.cycles,
           (unsigned long long)t.toggles, t.workers);
    if (merger.hasCoverage())
        printf("sim-summary %s\n",
               merger.coverage().summaryJson().c_str());
    if (cov && merger.hasCoverage())
        fputs(merger.coverage().report().c_str(), stdout);
    if (triage)
        fputs(merger.triageReport().c_str(), stdout);

    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        if (os)
            os << merger.metricsJson() << "\n";
        os.flush();
        if (!os.good()) {
            fprintf(stderr, "anvil_merge: cannot write '%s'\n",
                    metrics_path.c_str());
            return 3;
        }
        fprintf(stderr, "anvil_merge: wrote %s\n",
                metrics_path.c_str());
    }
    if (stats_json)
        printf("stats-json %s\n", merger.statsJson().c_str());

    return t.failures ? 1 : 0;
}
