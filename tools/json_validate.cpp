/**
 * @file
 * Tiny JSON-Schema checker for the telemetry artifacts, used by the
 * cli_obs_e2e test and CI to pin the --metrics / --profile /
 * --stats-json output against the schemas checked in under
 * docs/schemas/.
 *
 * Two modes:
 *
 *   json_validate <schema.json> <doc.json>
 *       Validate the document; failures are printed one per line as
 *       "<path>: <why>" and the exit code is 1.
 *
 *   json_validate --canon <doc.json> [--drop key1,key2]
 *       Parse the document, drop the named top-level members
 *       (timing keys that legitimately differ run to run), and print
 *       the canonical compact dump — two runs are deterministic iff
 *       their canonical forms compare equal.
 *
 *   json_validate --lines <schema.json> <doc.jsonl>
 *       Validate a JSONL stream (the "anvil-events-v1" telemetry
 *       event streams): every non-empty line must parse and satisfy
 *       the schema.  Failures are prefixed with the line number.
 *
 * The supported schema subset is exactly what the checked-in schemas
 * need: type (string or list, with "integer"), required, properties,
 * additionalProperties (bool or schema), items, minItems, and enum.
 * Unknown schema keywords are ignored, as the spec requires.
 *
 * Exit codes: 0 ok, 1 validation failure, 2 usage, 3 I/O or parse
 * error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

using anvil::json::Value;

namespace {

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    *out = os.str();
    return true;
}

const char *
kindName(Value::Kind k)
{
    switch (k) {
    case Value::Kind::Null: return "null";
    case Value::Kind::Bool: return "boolean";
    case Value::Kind::Number: return "number";
    case Value::Kind::String: return "string";
    case Value::Kind::Array: return "array";
    case Value::Kind::Object: return "object";
    }
    return "?";
}

bool
matchesType(const Value &doc, const std::string &type)
{
    if (type == "integer")
        return doc.isInteger();
    if (type == "number")
        return doc.isNumber();
    return type == kindName(doc.kind);
}

class Validator
{
  public:
    void check(const Value &schema, const Value &doc,
               const std::string &path)
    {
        if (const Value *type = schema.find("type"))
            checkType(*type, doc, path);
        if (const Value *en = schema.find("enum"))
            checkEnum(*en, doc, path);
        if (doc.isObject())
            checkObject(schema, doc, path);
        if (doc.isArray())
            checkArray(schema, doc, path);
    }

    const std::vector<std::string> &errors() const { return _errors; }

  private:
    void report(const std::string &path, const std::string &why)
    {
        _errors.push_back((path.empty() ? "$" : path) + ": " + why);
    }

    void checkType(const Value &type, const Value &doc,
                   const std::string &path)
    {
        std::vector<std::string> allowed;
        if (type.isString())
            allowed.push_back(type.str);
        else if (type.isArray())
            for (const Value &t : type.arr)
                if (t.isString())
                    allowed.push_back(t.str);
        for (const std::string &t : allowed)
            if (matchesType(doc, t))
                return;
        std::string want;
        for (size_t i = 0; i < allowed.size(); i++)
            want += (i ? " or " : "") + allowed[i];
        report(path, "expected " + want + ", got " +
                         kindName(doc.kind));
    }

    void checkEnum(const Value &en, const Value &doc,
                   const std::string &path)
    {
        for (const Value &v : en.arr)
            if (v.dump() == doc.dump())
                return;
        report(path, "value " + doc.dump() + " not in enum");
    }

    void checkObject(const Value &schema, const Value &doc,
                     const std::string &path)
    {
        const Value *props = schema.find("properties");
        if (const Value *req = schema.find("required"))
            for (const Value &r : req->arr)
                if (r.isString() && !doc.find(r.str))
                    report(path,
                           "missing required member \"" + r.str +
                               "\"");
        const Value *extra = schema.find("additionalProperties");
        for (const auto &kv : doc.obj) {
            std::string sub = path + "." + kv.first;
            const Value *ps =
                props ? props->find(kv.first) : nullptr;
            if (ps) {
                check(*ps, kv.second, sub);
            } else if (extra) {
                if (extra->isBool() && !extra->boolean)
                    report(sub, "unexpected member");
                else if (extra->isObject())
                    check(*extra, kv.second, sub);
            }
        }
    }

    void checkArray(const Value &schema, const Value &doc,
                    const std::string &path)
    {
        if (const Value *min = schema.find("minItems"))
            if (doc.arr.size() <
                static_cast<size_t>(min->asDouble()))
                report(path, "fewer than minItems elements");
        if (const Value *items = schema.find("items"))
            for (size_t i = 0; i < doc.arr.size(); i++)
                check(*items, doc.arr[i],
                      path + "[" + std::to_string(i) + "]");
    }

    std::vector<std::string> _errors;
};

int
canonMode(int argc, char **argv)
{
    std::string doc_path;
    std::vector<std::string> drop;
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--drop" && i + 1 < argc) {
            std::string list = argv[++i];
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > start)
                    drop.push_back(
                        list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (doc_path.empty()) {
            doc_path = arg;
        } else {
            fprintf(stderr, "json_validate: multiple documents\n");
            return 2;
        }
    }
    if (doc_path.empty()) {
        fprintf(stderr,
                "usage: json_validate --canon <doc.json> "
                "[--drop k1,k2]\n");
        return 2;
    }
    std::string text;
    if (!readFile(doc_path, &text)) {
        fprintf(stderr, "json_validate: cannot read '%s'\n",
                doc_path.c_str());
        return 3;
    }
    anvil::json::ParseResult res = anvil::json::parse(text);
    if (!res.ok()) {
        fprintf(stderr, "json_validate: %s: %s\n", doc_path.c_str(),
                res.error.c_str());
        return 3;
    }
    Value &v = res.value;
    for (const std::string &key : drop)
        for (size_t i = 0; i < v.obj.size();)
            if (v.obj[i].first == key)
                v.obj.erase(v.obj.begin() + static_cast<long>(i));
            else
                i++;
    printf("%s\n", v.dump().c_str());
    return 0;
}

int
linesMode(int argc, char **argv)
{
    if (argc != 4) {
        fprintf(stderr, "usage: json_validate --lines "
                        "<schema.json> <doc.jsonl>\n");
        return 2;
    }
    std::string schema_text, doc_text;
    if (!readFile(argv[2], &schema_text)) {
        fprintf(stderr, "json_validate: cannot read '%s'\n",
                argv[2]);
        return 3;
    }
    if (!readFile(argv[3], &doc_text)) {
        fprintf(stderr, "json_validate: cannot read '%s'\n",
                argv[3]);
        return 3;
    }
    anvil::json::ParseResult schema =
        anvil::json::parse(schema_text);
    if (!schema.ok()) {
        fprintf(stderr, "json_validate: %s: %s\n", argv[2],
                schema.error.c_str());
        return 3;
    }

    std::istringstream is(doc_text);
    std::string line;
    size_t lineno = 0, events = 0, errors = 0;
    while (std::getline(is, line)) {
        lineno++;
        if (line.empty())
            continue;
        anvil::json::ParseResult doc = anvil::json::parse(line);
        if (!doc.ok()) {
            fprintf(stderr, "%s:%zu: %s\n", argv[3], lineno,
                    doc.error.c_str());
            errors++;
            continue;
        }
        events++;
        Validator v;
        v.check(schema.value, doc.value, "");
        for (const std::string &e : v.errors())
            fprintf(stderr, "%s:%zu: %s\n", argv[3], lineno,
                    e.c_str());
        errors += v.errors().size();
    }
    if (events == 0) {
        fprintf(stderr, "json_validate: %s: no events\n", argv[3]);
        return 1;
    }
    if (errors) {
        fprintf(stderr,
                "json_validate: %s: %zu error(s) over %zu event(s) "
                "against %s\n",
                argv[3], errors, events, argv[2]);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && strcmp(argv[1], "--canon") == 0)
        return canonMode(argc, argv);
    if (argc >= 2 && strcmp(argv[1], "--lines") == 0)
        return linesMode(argc, argv);
    if (argc != 3) {
        fprintf(stderr,
                "usage: json_validate <schema.json> <doc.json>\n"
                "       json_validate --canon <doc.json> "
                "[--drop k1,k2]\n"
                "       json_validate --lines <schema.json> "
                "<doc.jsonl>\n");
        return 2;
    }
    std::string schema_text, doc_text;
    if (!readFile(argv[1], &schema_text)) {
        fprintf(stderr, "json_validate: cannot read '%s'\n",
                argv[1]);
        return 3;
    }
    if (!readFile(argv[2], &doc_text)) {
        fprintf(stderr, "json_validate: cannot read '%s'\n",
                argv[2]);
        return 3;
    }
    anvil::json::ParseResult schema = anvil::json::parse(schema_text);
    if (!schema.ok()) {
        fprintf(stderr, "json_validate: %s: %s\n", argv[1],
                schema.error.c_str());
        return 3;
    }
    anvil::json::ParseResult doc = anvil::json::parse(doc_text);
    if (!doc.ok()) {
        fprintf(stderr, "json_validate: %s: %s\n", argv[2],
                doc.error.c_str());
        return 3;
    }
    Validator v;
    v.check(schema.value, doc.value, "");
    for (const std::string &e : v.errors())
        fprintf(stderr, "%s\n", e.c_str());
    if (!v.errors().empty()) {
        fprintf(stderr, "json_validate: %s: %zu error(s) against %s\n",
                argv[2], v.errors().size(), argv[1]);
        return 1;
    }
    return 0;
}
