/**
 * @file
 * Bounded-model-checker tests (Appendix A): the BMC finds shallow
 * assertion violations, proves small designs, and — the paper's
 * point — exhausts its budget on the Listing 2 design whose
 * violation is gated by a 32-bit counter, while Anvil's type checker
 * rejects the equivalent source instantly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <map>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"
#include "verif/bmc.h"

using namespace anvil;
using namespace anvil::rtl;
using namespace anvil::verif;

namespace {

TEST(Bmc, FindsShallowViolation)
{
    auto m = std::make_shared<Module>();
    m->name = "cnt";
    auto c = m->reg("c", 4);
    m->update("c", cst(1, 1), c + cst(4, 1));
    // Assert c != 5: violated at depth 5.
    Assertion a{"c_ne_5", cst(1, 1), ne(c, cst(4, 5))};

    BmcResult r = boundedModelCheck(m, {a});
    EXPECT_TRUE(r.foundViolation());
    EXPECT_EQ(r.violated_assertion, "c_ne_5");
}

TEST(Bmc, ProvesSmallStateSpaces)
{
    auto m = std::make_shared<Module>();
    m->name = "mod4";
    auto c = m->reg("c", 2);
    m->update("c", cst(1, 1), c + cst(2, 1));
    Assertion a{"c_lt_4", cst(1, 1), ult(c, cst(3, 4))};
    BmcResult r = boundedModelCheck(m, {a});
    EXPECT_FALSE(r.foundViolation());
    EXPECT_EQ(r.status, BmcResult::Status::Proved);
}

TEST(Bmc, RespectsDepthBound)
{
    auto m = std::make_shared<Module>();
    m->name = "cnt";
    auto c = m->reg("c", 16);
    m->update("c", cst(1, 1), c + cst(16, 1));
    Assertion a{"c_ne_1000", cst(1, 1), ne(c, cst(16, 1000))};
    BmcOptions opts;
    opts.max_depth = 10;
    opts.max_states = 1 << 20;
    BmcResult r = boundedModelCheck(m, {a}, opts);
    EXPECT_FALSE(r.foundViolation());
    EXPECT_EQ(r.status, BmcResult::Status::BoundReached);
}

/**
 * Listing 2: the grandchild's data flips only once a 32-bit counter
 * passes 0x100000.  The stability assertion is violated only near
 * that point — unreachably deep for explicit-state exploration.
 */
std::shared_ptr<Module>
listing2Design()
{
    auto m = std::make_shared<Module>();
    m->name = "example";
    auto cnt = m->reg("cnt", 32);
    m->update("cnt", cst(1, 1), cnt + cst(32, 1));
    auto r = m->reg("r", 1);
    m->update("r", cst(1, 1), ~r);
    // grandchild data: cnt > 0x100000.
    auto gdata = m->wire("gdata",
                         binop(Op::Gt, cnt, cst(32, 0x100000)));
    // child sends r & gdata; Top expects it stable for 3 cycles.
    m->wire("sent", ref("r", 1) & gdata);
    auto prev = m->reg("prev", 1);
    m->update("prev", cst(1, 1), ref("sent", 1));
    auto phase = m->reg("phase", 2);
    m->update("phase", cst(1, 1), phase + cst(2, 1));
    return m;
}

TEST(Bmc, Listing2ViolationTooDeepForBmc)
{
    auto m = listing2Design();
    // Stability assertion: while in the observation phases, the sent
    // value equals the previous cycle's.
    Assertion a{"stable",
                eq(ref("phase", 2), cst(2, 2)),
                eq(ref("sent", 1), ref("prev", 1))};
    BmcOptions opts;
    opts.max_depth = 30000;
    opts.max_states = 20000;
    auto t0 = std::chrono::steady_clock::now();
    BmcResult r = boundedModelCheck(m, {a}, opts);
    auto bmc_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0).count();

    // The 32-bit counter gates the violation behind ~2^20 states: the
    // checker burns its whole budget without finding it.
    EXPECT_FALSE(r.foundViolation()) << r.statusStr();
    EXPECT_GE(r.states_explored, 10000u);

    // Anvil's type checker rejects the equivalent source instantly.
    auto t1 = std::chrono::steady_clock::now();
    CompileOutput out = compileAnvil(designs::anvilListing1Source());
    auto type_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t1).count();
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.diags.render().find(
                  "Value not live long enough in message send!"),
              std::string::npos);
    // Type checking is at least as fast (both are fast in absolute
    // terms here; the bench reports the full numbers).
    EXPECT_LE(type_ms, bmc_ms + 1000);
}

/**
 * Reference exploration that snapshots register state via toHex
 * strings — the pre-interning scheme — mirroring the BMC's traversal
 * exactly.  The production checker now hashes raw BitVec words over
 * the interned register table; both must visit the same states.
 */
uint64_t
stringSnapshotExplore(const std::shared_ptr<const Module> &top,
                      const BmcOptions &opts)
{
    Sim sim(top);
    auto regs = sim.regNames();
    auto inputs = sim.inputNames();

    auto snapshot = [&]() {
        std::string key;
        for (const auto &r : regs) {
            key += sim.regValue(r).toHex();
            key += '|';
        }
        return key;
    };
    auto capture = [&]() {
        std::vector<BitVec> vals;
        for (const auto &r : regs)
            vals.push_back(sim.regValue(r));
        return vals;
    };

    int total_bits = 0;
    for (size_t i = 0; i < inputs.size(); i++)
        total_bits += opts.input_bits_limit;
    total_bits = std::min(total_bits, 12);
    uint64_t combos = 1ull << total_bits;

    struct Node
    {
        std::vector<BitVec> regs;
        int depth;
    };
    std::deque<Node> frontier;
    std::map<std::string, bool> seen;
    frontier.push_back({capture(), 0});
    seen[snapshot()] = true;

    while (!frontier.empty()) {
        Node node = std::move(frontier.front());
        frontier.pop_front();
        if (node.depth >= opts.max_depth)
            continue;
        for (uint64_t combo = 0; combo < combos; combo++) {
            for (size_t i = 0; i < regs.size(); i++)
                sim.setRegValue(regs[i], node.regs[i]);
            uint64_t bits = combo;
            for (const auto &in : inputs) {
                uint64_t v =
                    bits & ((1ull << opts.input_bits_limit) - 1);
                bits >>= opts.input_bits_limit;
                sim.setInput(in, v);
            }
            sim.step();
            std::string key = snapshot();
            if (!seen.count(key)) {
                if (seen.size() >= opts.max_states)
                    return seen.size();
                seen[key] = true;
                frontier.push_back({capture(), node.depth + 1});
            }
        }
    }
    return seen.size();
}

TEST(Bmc, RawWordHashingVisitsIdenticalStates)
{
    // Eval designs with assertions that always hold, so both
    // explorations run to their bound and report the full state set.
    struct Case
    {
        const char *name;
        ModulePtr mod;
        BmcOptions opts;
    };
    BmcOptions shallow;
    shallow.max_depth = 2;
    shallow.max_states = 3000;
    BmcOptions tiny;
    tiny.max_depth = 1;
    tiny.max_states = 3000;
    std::vector<Case> cases = {
        {"fifo", designs::buildFifoBaseline(), shallow},
        {"spill", designs::buildSpillRegBaseline(), shallow},
        {"tlb", designs::buildTlbBaseline(), tiny},
    };
    Assertion always{"true", cst(1, 1), cst(1, 1)};
    for (auto &c : cases) {
        BmcResult r = boundedModelCheck(c.mod, {always}, c.opts);
        uint64_t ref = stringSnapshotExplore(c.mod, c.opts);
        EXPECT_EQ(r.states_explored, ref) << c.name;
        EXPECT_FALSE(r.foundViolation()) << c.name;
    }
}

TEST(Bmc, WithSmallCounterBmcDoesFindIt)
{
    // Control experiment: shrink the counter to 4 bits and the same
    // violation becomes reachable.
    auto m = std::make_shared<Module>();
    m->name = "example_small";
    auto cnt = m->reg("cnt", 4);
    m->update("cnt", cst(1, 1), cnt + cst(4, 1));
    auto r = m->reg("r", 1);
    m->update("r", cst(1, 1), ~r);
    auto gdata = m->wire("gdata", binop(Op::Gt, cnt, cst(4, 8)));
    m->wire("sent", ref("r", 1) & gdata);
    auto prev = m->reg("prev", 1);
    m->update("prev", cst(1, 1), ref("sent", 1));
    Assertion a{"stable", cst(1, 1),
                eq(ref("sent", 1), ref("prev", 1))};
    BmcResult res = boundedModelCheck(m, {a});
    EXPECT_TRUE(res.foundViolation());
}

} // namespace
