/**
 * @file
 * Sweep-mode differential matrix: the full, dirty, and threaded
 * sweeps — and, when a system compiler is available, the compiled
 * (JIT kernel) backend — must be bit-identical on every observable
 * surface — final registers, total toggles, dprint logs, VCD bytes,
 * coverage JSON, and BMC states_explored — across every evaluation
 * design plus the seeded low-activity AXI-crossbar and
 * set-associative-TLB workloads.  Also pins the structural properties the event-driven
 * sweep relies on (fan-out CSR shape, changed-net completeness) and
 * sanity-checks that dirty sweeping actually evaluates fewer nodes
 * than the dense sweep on sparse stimulus.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <sstream>

#include "codegen/jit.h"
#include "designs/designs.h"
#include "harness.h"
#include "rtl/interp.h"
#include "rtl/vcd.h"
#include "sim_workloads.h"
#include "tb/coverage.h"
#include "verif/bmc.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

/** Drives one cycle of stimulus into a simulator. */
using DriveFn = std::function<void(Sim &, int cycle)>;

struct ModeRun
{
    std::vector<std::string> regs;
    uint64_t toggles = 0;
    std::vector<std::string> log;
    std::string vcd;
    std::string cov;
    SweepStats stats;
};

/** True when the JIT can find a working system compiler. */
bool
haveJitCompiler()
{
    static const bool have = !codegen::jitCompilerPath().empty();
    return have;
}

/**
 * JIT the design's kernel (shared process-wide cache, so each design
 * compiles once per test binary) and attach it to the simulator.
 */
void
attachJitKernel(Sim &sim)
{
    codegen::JitOptions jo;
    jo.opt_level = 1;   // fast compiles; optimization is benched
    codegen::JitResult jr = codegen::jitCompileKernel(sim.netlist(), jo);
    ASSERT_NE(jr.kernel, nullptr) << jr.error;
    ASSERT_TRUE(sim.attachKernel(codegen::kernelRef(jr.kernel)));
}

ModeRun
runMode(const ModulePtr &mod, SweepMode mode, int threads,
        size_t shard_min, int cycles, const DriveFn &drive,
        bool compiled = false)
{
    Sim sim(mod);
    sim.setSweepMode(mode, threads, shard_min);
    if (compiled) {
        attachJitKernel(sim);
        if (!sim.kernelAttached())
            return {};
    }
    std::ostringstream vcd_os;
    VcdWriter vcd(sim, vcd_os);
    tb::Coverage cov;
    for (int cyc = 0; cyc < cycles; cyc++) {
        drive(sim, cyc);
        cov.sample(sim);
        vcd.sample();
        sim.step();
    }
    ModeRun r;
    for (const BitVec &v : sim.captureRegs())
        r.regs.push_back(v.toHex());
    r.toggles = sim.totalToggles();
    r.log = sim.log();
    r.vcd = vcd_os.str();
    r.cov = cov.summaryJson();
    r.stats = sim.sweepStats();
    return r;
}

/**
 * Run all three sweep modes on identical stimulus and require
 * bit-identical observables.  The threaded run forces sharding
 * (shard_min = 1) so the pool is exercised even on small designs.
 * When a system compiler is available a fourth run goes through the
 * JIT-compiled kernel backend and must match too.  Returns the
 * per-mode runs for additional activity assertions (indices 0..2 are
 * always Full/Dirty/Threaded).
 */
std::vector<ModeRun>
expectModesAgree(const ModulePtr &mod, int cycles,
                 const std::function<DriveFn()> &make_drive)
{
    std::vector<ModeRun> runs;
    runs.push_back(runMode(mod, SweepMode::Full, 0, 256, cycles,
                           make_drive()));
    runs.push_back(runMode(mod, SweepMode::Dirty, 0, 256, cycles,
                           make_drive()));
    runs.push_back(runMode(mod, SweepMode::Threaded, 2, 1, cycles,
                           make_drive()));
    if (haveJitCompiler()) {
        runs.push_back(runMode(mod, SweepMode::Dirty, 0, 256, cycles,
                               make_drive(), /*compiled=*/true));
        // Forced dense fallback: Full mode drives the kernel's
        // dense per-level functions on every frame, so both halves
        // of the generated scheduler face the whole matrix.
        runs.push_back(runMode(mod, SweepMode::Full, 0, 256, cycles,
                               make_drive(), /*compiled=*/true));
    }
    const ModeRun &full = runs[0];
    for (size_t i = 1; i < runs.size(); i++) {
        SCOPED_TRACE(mod->name + " mode#" + std::to_string(i));
        EXPECT_EQ(full.regs, runs[i].regs);
        EXPECT_EQ(full.toggles, runs[i].toggles);
        EXPECT_EQ(full.log, runs[i].log);
        EXPECT_EQ(full.vcd, runs[i].vcd);
        EXPECT_EQ(full.cov, runs[i].cov);
    }
    // The full sweep evaluates every strict node every cycle.
    EXPECT_EQ(full.stats.nodes_evaluated,
              full.stats.cycles * full.stats.strict_nodes);
    return runs;
}

/** Dense stimulus: every input gets a fresh random value each cycle. */
std::function<DriveFn()>
denseStimulus(unsigned seed)
{
    return [seed]() -> DriveFn {
        auto rng = std::make_shared<std::mt19937_64>(seed);
        auto inputs = std::make_shared<std::vector<std::string>>();
        return [rng, inputs](Sim &sim, int) {
            if (inputs->empty())
                *inputs = sim.inputNames();
            for (const auto &in : *inputs)
                sim.setInput(in, (*rng)());
        };
    };
}

/** Sparse stimulus: inputs change only every k-th cycle. */
std::function<DriveFn()>
sparseStimulus(unsigned seed, int k)
{
    return [seed, k]() -> DriveFn {
        auto rng = std::make_shared<std::mt19937_64>(seed);
        auto inputs = std::make_shared<std::vector<std::string>>();
        return [rng, inputs, k](Sim &sim, int cyc) {
            if (inputs->empty())
                *inputs = sim.inputNames();
            if (cyc % k != 0)
                return;
            for (const auto &in : *inputs)
                sim.setInput(in, (*rng)());
        };
    };
}

TEST(SweepModes, CommonCells)
{
    expectModesAgree(designs::buildFifoBaseline(), 300,
                     denseStimulus(1));
    expectModesAgree(designs::buildSpillRegBaseline(), 300,
                     denseStimulus(2));
    expectModesAgree(designs::buildStreamFifoBaseline(), 300,
                     denseStimulus(3));
}

TEST(SweepModes, Mmu)
{
    expectModesAgree(designs::buildTlbBaseline(), 200,
                     denseStimulus(4));
    expectModesAgree(designs::buildPtwBaseline(), 200,
                     denseStimulus(5));
}

TEST(SweepModes, Axi)
{
    expectModesAgree(designs::buildAxiDemuxBaseline(), 150,
                     denseStimulus(6));
    expectModesAgree(designs::buildAxiMuxBaseline(), 150,
                     denseStimulus(7));
}

TEST(SweepModes, AesAndPipelines)
{
    expectModesAgree(designs::buildAesBaseline(), 60,
                     denseStimulus(8));
    expectModesAgree(designs::buildPipelinedAluBaseline(), 200,
                     denseStimulus(9));
    expectModesAgree(designs::buildSystolicBaseline(), 200,
                     denseStimulus(10));
}

TEST(SweepModes, FigureDemosAndCompiledAnvil)
{
    expectModesAgree(designs::buildHazardDemoSystem(), 100,
                     denseStimulus(11));
    expectModesAgree(designs::buildCacheDemoBaseline(), 100,
                     denseStimulus(12));
    auto fifo = anvil::testing::compileDesign(
        designs::anvilFifoSource(), "fifo");
    ASSERT_NE(fifo, nullptr);
    expectModesAgree(fifo, 200, denseStimulus(13));
    auto tlb = anvil::testing::compileDesign(
        designs::anvilTlbSource(), "tlb");
    ASSERT_NE(tlb, nullptr);
    expectModesAgree(tlb, 200, denseStimulus(14));
}

TEST(SweepModes, SparseStimulusCutsEvaluations)
{
    // Under sparse stimulus the dirty sweep must agree bit-for-bit
    // AND do strictly less work than the dense sweep.
    auto runs = expectModesAgree(designs::buildTlbBaseline(), 400,
                                 sparseStimulus(21, 8));
    EXPECT_LT(runs[1].stats.nodes_evaluated,
              runs[0].stats.nodes_evaluated / 2);
    EXPECT_GT(runs[2].stats.sharded_levels, 0u);
}

TEST(SweepModes, XbarWorkload)
{
    auto mod = designs::buildAxiXbarBaseline(4, 4);
    auto make_drive = []() -> DriveFn {
        auto stim =
            std::make_shared<anvil::testing::XbarStimulus>(4, 4, 99);
        return [stim](Sim &sim, int) {
            for (const auto &[name, v] : stim->next())
                sim.setInput(name, v);
        };
    };
    auto runs = expectModesAgree(mod, 600, make_drive);
    // The crossbar compiles strictly: every router cone levelizes.
    Sim probe(mod);
    EXPECT_TRUE(probe.netlist().lazyRoots().empty());
    // Low-activity traffic must touch well under half the design.
    EXPECT_LT(runs[1].stats.nodes_evaluated * 2,
              runs[0].stats.nodes_evaluated);
}

TEST(SweepModes, SetAssocTlbWorkload)
{
    auto mod = designs::buildSetAssocTlbBaseline(4, 32);
    auto make_drive = []() -> DriveFn {
        auto stim =
            std::make_shared<anvil::testing::TlbStimulus>(1234);
        return [stim](Sim &sim, int) {
            for (const auto &[name, v] : stim->next())
                sim.setInput(name, v);
        };
    };
    auto runs = expectModesAgree(mod, 600, make_drive);
    EXPECT_LT(runs[1].stats.nodes_evaluated * 2,
              runs[0].stats.nodes_evaluated);
}

/**
 * The compiled kernel's changed-net list must be EXACT (the ABI v2
 * contract): set-equal, every cycle, to what the interpreter's dirty
 * sweep reports for identical stimulus.  Order may differ (the
 * kernel emits in level/worklist order, the interpreter in bucket
 * order), so both sides are sorted and deduplicated before compare.
 */
void
expectChangedSetsEqual(const ModulePtr &mod, int cycles,
                       const std::function<DriveFn()> &make_drive)
{
    SCOPED_TRACE(mod->name);
    Sim interp(mod), compiled(mod);
    interp.setSweepMode(SweepMode::Dirty);
    compiled.setSweepMode(SweepMode::Dirty);
    attachJitKernel(compiled);
    ASSERT_TRUE(compiled.kernelAttached());
    DriveFn da = make_drive(), db = make_drive();
    for (int cyc = 0; cyc < cycles; cyc++) {
        da(interp, cyc);
        db(compiled, cyc);
        std::vector<NetId> a(interp.changedNets().begin(),
                             interp.changedNets().end());
        std::vector<NetId> b(compiled.changedNets().begin(),
                             compiled.changedNets().end());
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
        std::sort(b.begin(), b.end());
        b.erase(std::unique(b.begin(), b.end()), b.end());
        ASSERT_EQ(a, b) << "cycle " << cyc;
        interp.step();
        compiled.step();
    }
}

TEST(SweepModes, CompiledChangedListIsExactOnEvalDesigns)
{
    if (!haveJitCompiler())
        GTEST_SKIP() << "no system compiler available";
    expectChangedSetsEqual(designs::buildFifoBaseline(), 150,
                           denseStimulus(31));
    expectChangedSetsEqual(designs::buildSpillRegBaseline(), 150,
                           denseStimulus(32));
    expectChangedSetsEqual(designs::buildStreamFifoBaseline(), 150,
                           denseStimulus(33));
    expectChangedSetsEqual(designs::buildTlbBaseline(), 120,
                           denseStimulus(34));
    expectChangedSetsEqual(designs::buildPtwBaseline(), 120,
                           denseStimulus(35));
    expectChangedSetsEqual(designs::buildAxiDemuxBaseline(), 100,
                           denseStimulus(36));
    expectChangedSetsEqual(designs::buildAxiMuxBaseline(), 100,
                           denseStimulus(37));
    expectChangedSetsEqual(designs::buildAesBaseline(), 40,
                           denseStimulus(38));
    expectChangedSetsEqual(designs::buildPipelinedAluBaseline(), 120,
                           denseStimulus(39));
    expectChangedSetsEqual(designs::buildSystolicBaseline(), 120,
                           denseStimulus(40));
    expectChangedSetsEqual(designs::buildHazardDemoSystem(), 80,
                           denseStimulus(41));
    expectChangedSetsEqual(designs::buildCacheDemoBaseline(), 80,
                           denseStimulus(42));
    // Sparse stimulus keeps the kernel on the sparse worklist path
    // for the whole run, so exactness is pinned there too, not just
    // under dense traffic that trips the fallback.
    expectChangedSetsEqual(designs::buildTlbBaseline(), 300,
                           sparseStimulus(43, 8));
}

TEST(SweepModes, CompiledChangedListIsExactOnWorkloads)
{
    if (!haveJitCompiler())
        GTEST_SKIP() << "no system compiler available";
    auto xbar_drive = []() -> DriveFn {
        auto stim =
            std::make_shared<anvil::testing::XbarStimulus>(4, 4, 99);
        return [stim](Sim &sim, int) {
            for (const auto &[name, v] : stim->next())
                sim.setInput(name, v);
        };
    };
    expectChangedSetsEqual(designs::buildAxiXbarBaseline(4, 4), 300,
                           xbar_drive);
    auto tlb_drive = []() -> DriveFn {
        auto stim =
            std::make_shared<anvil::testing::TlbStimulus>(1234);
        return [stim](Sim &sim, int) {
            for (const auto &[name, v] : stim->next())
                sim.setInput(name, v);
        };
    };
    expectChangedSetsEqual(designs::buildSetAssocTlbBaseline(4, 32),
                           300, tlb_drive);
}

TEST(SweepModes, XbarRoutesTraffic)
{
    // The composed crossbar actually moves transactions: drive one
    // master at slave 2 and watch the aw appear on s2 with the
    // routed address, then the B response return to the master.
    auto mod = designs::buildAxiXbarBaseline(4, 4);
    Sim sim(mod);
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 0);
    for (int j = 0; j < 4; j++) {
        std::string p = "s" + std::to_string(j);
        sim.setInput(p + "_aw_ack", 1);
        sim.setInput(p + "_w_ack", 1);
        sim.setInput(p + "_b_valid", 1);
        sim.setInput(p + "_b_data", 1);
    }
    uint64_t addr = (2ull << 29) | 0x44;
    sim.setInput("m1_aw_data", addr);
    sim.setInput("m1_aw_valid", 1);
    sim.setInput("m1_w_data", 0xabcd);
    sim.setInput("m1_w_valid", 1);
    sim.setInput("m1_b_ack", 1);
    bool saw_aw = false, saw_b = false;
    for (int cyc = 0; cyc < 20; cyc++) {
        if (sim.peek("s2_aw_valid").any()) {
            saw_aw = true;
            EXPECT_EQ(sim.peek("s2_aw_data").toUint64(), addr);
            EXPECT_EQ(sim.peek("s2_w_data").toUint64(), 0xabcdu);
        }
        if (sim.peek("m1_b_valid").any()) {
            saw_b = true;
            EXPECT_EQ(sim.peek("m1_b_data").toUint64(), 1u);
        }
        sim.step();
    }
    EXPECT_TRUE(saw_aw);
    EXPECT_TRUE(saw_b);
    // No other slave ever saw the write.
    EXPECT_FALSE(sim.peek("s0_aw_valid").any());
}

TEST(SweepModes, SetAssocTlbDirectMappedReplaces)
{
    // ways == 1: every fill to a set must land in way 0 (the victim
    // counter wraps modulo ways, not modulo its register width).
    auto mod = designs::buildSetAssocTlbBaseline(1, 8);
    Sim sim(mod);
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 0);
    sim.setInput("io_res_ack", 1);
    uint64_t vpn1 = 0x100, vpn2 = 0x200;   // same set index 0
    for (uint64_t vpn : {vpn1, vpn2}) {
        sim.setInput("io_upd_data", (vpn << 32) | (vpn + 7));
        sim.setInput("io_upd_valid", 1);
        sim.step();
    }
    sim.setInput("io_upd_valid", 0);
    // The second fill replaced the first (direct-mapped).
    sim.setInput("io_req_valid", 1);
    sim.setInput("io_req_data", vpn2);
    EXPECT_EQ(sim.peek("io_res_data").slice(32, 1).toUint64(), 1u);
    sim.setInput("io_req_data", vpn1);
    EXPECT_EQ(sim.peek("io_res_data").slice(32, 1).toUint64(), 0u);
}

TEST(SweepModes, VcdDuplicateTracesOfOneNetStayInSync)
{
    // An alias and its resolved flat name are two traces of one
    // net; both must keep emitting changes (only one can ride the
    // change feed).
    auto top = std::make_shared<Module>();
    top->name = "top";
    auto x = top->input("x", 8);
    auto child = std::make_shared<Module>();
    child->name = "inc";
    auto ca = child->input("a", 8);
    child->output("y", 8);
    child->wire("y", ca + cst(8, 1));
    Instance inst;
    inst.name = "u";
    inst.module = child;
    inst.inputs["a"] = x;
    inst.outputs["x_plus_1"] = "y";
    top->instances.push_back(std::move(inst));

    Sim sim(top);
    std::ostringstream os;
    VcdWriter vcd(sim, os, {"x_plus_1", "u.y"});
    for (int cyc = 0; cyc < 6; cyc++) {
        sim.setInput("x", static_cast<uint64_t>(cyc * 3));
        vcd.sample();
        sim.step();
    }
    // Both id-codes ("!" and "\"") must appear once per change; the
    // two streams are the same net so their change counts match.
    std::string dump = os.str();
    size_t a = 0, b = 0;
    for (size_t pos = 0; (pos = dump.find("!\n", pos)) !=
         std::string::npos; pos++)
        a++;
    for (size_t pos = 0; (pos = dump.find("\"\n", pos)) !=
         std::string::npos; pos++)
        b++;
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 6u);   // initial dump + five changes
}

TEST(SweepModes, ObserversSurviveSampleThenPokeOrdering)
{
    // Poking an input AFTER the observers sampled (and before the
    // edge) flushes its change record with the edge, so the
    // per-cycle feed never lists it.  The poke-tick guard must
    // detect this and force a full rescan; without it the observers
    // would freeze the input at its initial value forever.
    auto mod = designs::buildFifoBaseline();
    Sim sim(mod);
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 0);
    std::ostringstream os;
    VcdWriter vcd(sim, os, {"inp_enq_data"});
    tb::Coverage cov;
    for (int cyc = 0; cyc < 20; cyc++) {
        cov.sample(sim);
        vcd.sample();
        // Late poke: alternate all data bits every cycle.
        sim.setInput("inp_enq_data",
                     cyc % 2 ? 0xffffffffull : 0x0ull);
        sim.step();
    }
    // Every bit of the input rose and fell in view of the observers.
    int covered = -1, width = 0;
    for (const auto &sc : cov.signals())
        if (sc.name == "inp_enq_data") {
            covered = sc.coveredBits();
            width = sc.width;
        }
    EXPECT_EQ(covered, width);
    // And the dump records the alternation: one value line per flip
    // seen after the header (lines "b<bits> <id>").
    std::string dump = os.str();
    size_t body = dump.find("$enddefinitions");
    ASSERT_NE(body, std::string::npos);
    size_t lines = 0, pos = body;
    while ((pos = dump.find("\nb", pos)) != std::string::npos) {
        lines++;
        pos++;
    }
    EXPECT_GE(lines, 17u);
}

TEST(SweepModes, SetAssocTlbHitsAfterFill)
{
    auto mod = designs::buildSetAssocTlbBaseline(2, 8);
    Sim sim(mod);
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 0);
    sim.setInput("io_res_ack", 1);
    uint64_t vpn = 0x1234567;
    sim.setInput("io_upd_data", (vpn << 32) | 0x89abcdefull);
    sim.setInput("io_upd_valid", 1);
    sim.step();
    sim.setInput("io_upd_valid", 0);
    sim.setInput("io_req_data", vpn);
    sim.setInput("io_req_valid", 1);
    BitVec res = sim.peek("io_res_data");
    EXPECT_EQ(res.slice(32, 1).toUint64(), 1u);   // hit
    EXPECT_EQ(res.slice(0, 32).toUint64(), 0x89abcdefull);
    // A different VPN misses.
    sim.setInput("io_req_data", vpn ^ 0x100);
    EXPECT_EQ(sim.peek("io_res_data").slice(32, 1).toUint64(), 0u);
}

TEST(SweepModes, BmcStatesIdenticalAcrossModes)
{
    auto m = std::make_shared<Module>();
    m->name = "cnt";
    auto c = m->reg("c", 4);
    m->update("c", cst(1, 1), c + cst(4, 1));
    verif::Assertion a{"c_ne_9", cst(1, 1), ne(c, cst(4, 9))};

    verif::BmcOptions base;
    base.max_depth = 12;
    std::vector<verif::BmcResult> results;
    for (SweepMode mode : {SweepMode::Full, SweepMode::Dirty,
                           SweepMode::Threaded}) {
        verif::BmcOptions opts = base;
        opts.sweep_mode = mode;
        opts.sweep_threads = 2;
        results.push_back(verif::boundedModelCheck(m, {a}, opts));
    }
    if (haveJitCompiler()) {
        // Same exploration through the compiled kernel backend.  The
        // netlist build is deterministic, so a kernel compiled from a
        // probe Sim hash-matches the one inside boundedModelCheck.
        Sim probe(m);
        codegen::JitOptions jo;
        jo.opt_level = 1;
        auto jr = codegen::jitCompileKernel(probe.netlist(), jo);
        ASSERT_NE(jr.kernel, nullptr) << jr.error;
        verif::BmcOptions opts = base;
        opts.kernel = codegen::kernelRef(jr.kernel);
        results.push_back(verif::boundedModelCheck(m, {a}, opts));
    }
    for (size_t i = 1; i < results.size(); i++) {
        EXPECT_EQ(results[0].states_explored,
                  results[i].states_explored);
        EXPECT_EQ(results[0].status, results[i].status);
        EXPECT_EQ(results[0].depth_reached, results[i].depth_reached);
    }
    EXPECT_TRUE(results[0].foundViolation());
}

TEST(SweepModes, FanoutCsrMatchesOperands)
{
    // Every strict node appears in the fan-out list of each of its
    // operands exactly as often as it reads them.
    Sim sim(designs::buildTlbBaseline());
    const Netlist &nl = sim.netlist();
    const auto &fb = nl.fanoutBegin();
    ASSERT_EQ(fb.size(), nl.nets().size() + 1);
    std::map<std::pair<NetId, NetId>, int> expected;
    for (NetId id : nl.order()) {
        const Net &n = nl.net(id);
        auto add = [&](NetId o) {
            if (o != kNoNet)
                expected[{o, id}]++;
        };
        add(n.a);
        add(n.b);
        add(n.c);
        for (NetId o : n.cargs)
            add(o);
    }
    std::map<std::pair<NetId, NetId>, int> actual;
    for (size_t i = 0; i < nl.nets().size(); i++)
        for (int32_t k = fb[i]; k < fb[i + 1]; k++)
            actual[{static_cast<NetId>(i),
                    nl.fanout()[static_cast<size_t>(k)]}]++;
    EXPECT_EQ(expected, actual);
}

TEST(SweepModes, ChangedNetsCoverEveryNamedChange)
{
    // Completeness: any named signal whose value differs from the
    // previous cycle must be on the changed-net list when sampled at
    // the same point an observer would sample.
    auto mod = designs::buildFifoBaseline();
    Sim sim(mod);
    std::mt19937_64 rng(77);
    auto inputs = sim.inputNames();
    std::map<std::string, std::string> prev;
    for (int cyc = 0; cyc < 120; cyc++) {
        for (const auto &in : inputs)
            sim.setInput(in, rng());
        std::map<NetId, bool> changed;
        for (NetId id : sim.changedNets())
            changed[id] = true;
        for (const auto &[name, sig] : sim.netlist().signals()) {
            std::string hex = sim.peek(name).toHex();
            auto it = prev.find(name);
            if (it != prev.end() && it->second != hex) {
                EXPECT_TRUE(changed.count(sig.net))
                    << name << " changed at cycle " << cyc
                    << " but is not on the changed-net list";
            }
            prev[name] = hex;
        }
        sim.step();
    }
}

TEST(SweepModes, ModeSwitchMidRunStaysConsistent)
{
    // Switching modes mid-run forces one dense resweep and then
    // continues bit-identically with a reference kept in Full mode.
    auto mod = designs::buildTlbBaseline();
    Sim a(mod), b(mod);
    a.setSweepMode(SweepMode::Full);
    std::mt19937_64 rng(55);
    auto inputs = a.inputNames();
    for (int cyc = 0; cyc < 150; cyc++) {
        if (cyc == 50)
            b.setSweepMode(SweepMode::Threaded, 2, 1);
        if (cyc == 100)
            b.setSweepMode(SweepMode::Dirty);
        for (const auto &in : inputs) {
            uint64_t v = rng();
            a.setInput(in, v);
            b.setInput(in, v);
        }
        a.step();
        b.step();
        ASSERT_EQ(a.totalToggles(), b.totalToggles()) << cyc;
    }
    auto ra = a.captureRegs(), rb = b.captureRegs();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); i++)
        EXPECT_EQ(ra[i].toHex(), rb[i].toHex());
}

} // namespace
