/**
 * @file
 * VCD ingestion tests: the reader parses writer output back into a
 * Trace whose re-emission is byte-identical (golden quickstart dump,
 * a fresh randomized AXI run with >94 signals and multi-character
 * id-codes, and a wide-signal design), tolerates standard VCD it did
 * not write (x/z values, $comment sections, unknown keywords raise
 * errors), and recovers per-cycle values exactly.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "designs/designs.h"
#include "harness.h"
#include "rtl/vcd.h"
#include "tb/testbench.h"
#include "trace/vcd_reader.h"

#include "axi_bench.h"

using namespace anvil;
using namespace anvil::trace;

namespace {

#ifndef ANVIL_TEST_DIR
#define ANVIL_TEST_DIR "tests"
#endif

std::string
rewrite(const Trace &t)
{
    std::ostringstream os;
    t.writeVcd(os);
    return os.str();
}

TEST(TraceVcd, GoldenQuickstartRoundTripsByteIdentically)
{
    std::string path =
        std::string(ANVIL_TEST_DIR) + "/golden/quickstart.vcd";
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << "missing golden " << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string original = buf.str();

    std::istringstream in(original);
    Trace t = VcdReader::read(in);
    EXPECT_EQ(t.top, "ping_server");
    EXPECT_EQ(t.timescale, "1ns");
    EXPECT_EQ(t.signals().size(), 18u);
    EXPECT_EQ(t.startTime(), 0u);

    EXPECT_EQ(rewrite(t), original);
}

TEST(TraceVcd, RandomizedAxiRunRoundTripsByteIdentically)
{
    // >94 signals: the demux exercises multi-character id-codes.
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 31);
    anvil::testing::attachDemuxBfmBench(bench);
    std::ostringstream os;
    bench.attachVcd(os);
    tb::TbResult r = bench.run(500);
    ASSERT_TRUE(r.ok()) << r.summary();
    std::string original = os.str();

    std::istringstream in(original);
    Trace t = VcdReader::read(in);
    ASSERT_GT(t.signals().size(), 94u);
    EXPECT_EQ(rewrite(t), original);

    // Multi-character id-codes really occurred and resolved.
    bool multi = false;
    for (const auto &s : t.signals())
        multi |= s.id.size() > 1;
    EXPECT_TRUE(multi);
}

TEST(TraceVcd, WideSignalsRoundTrip)
{
    // 128-bit values cross the BitVec small-buffer boundary.
    auto m = std::make_shared<rtl::Module>();
    m->name = "wide";
    auto a = m->input("a", 128);
    m->wire("b", a ^ rtl::cst(128, 0x5a5a5a5a5a5a5a5aull));
    rtl::Sim sim(m);
    std::ostringstream os;
    rtl::VcdWriter vcd(sim, os);
    for (int i = 0; i < 20; i++) {
        BitVec v(128, static_cast<uint64_t>(i) * 2654435761u);
        v = v | (v << 100);
        sim.setInput("a", v);
        vcd.sample();
        sim.step();
    }
    std::string original = os.str();
    std::istringstream in(original);
    Trace t = VcdReader::read(in);
    EXPECT_EQ(rewrite(t), original);

    int ia = t.indexOf("a");
    ASSERT_GE(ia, 0);
    EXPECT_EQ(t.signals()[static_cast<size_t>(ia)].width, 128);
}

TEST(TraceVcd, ValuesRecoverPerCycle)
{
    // Re-simulate the quickstart stimulus and cross-check values
    // reconstructed from the parsed dump cycle by cycle.
    auto mod = designs::buildFifoBaseline();
    rtl::Sim sim(mod);
    std::ostringstream os;
    rtl::VcdWriter vcd(sim, os);
    std::vector<uint64_t> wptr_samples;
    const int cycles = 50;
    for (int i = 0; i < cycles; i++) {
        sim.setInput("inp_enq_data", i * 977);
        sim.setInput("inp_enq_valid", i % 3 != 2 ? 1 : 0);
        sim.setInput("outp_deq_ack", i % 5 < 3 ? 1 : 0);
        wptr_samples.push_back(sim.peek("wptr").toUint64());
        vcd.sample();
        sim.step();
    }

    std::istringstream in(os.str());
    Trace t = VcdReader::read(in);
    int iw = t.indexOf("wptr");
    ASSERT_GE(iw, 0);
    const TraceSignal &w = t.signals()[static_cast<size_t>(iw)];
    for (int c = 0; c < cycles; c++) {
        const BitVec *v = w.valueAt(static_cast<uint64_t>(c));
        ASSERT_NE(v, nullptr) << c;
        EXPECT_EQ(v->toUint64(), wptr_samples[static_cast<size_t>(c)])
            << "cycle " << c;
    }

    // The cursor walks the same values.
    TraceCursor cur(t);
    for (int c = 0; c < cycles; c++) {
        cur.advanceTo(static_cast<uint64_t>(c));
        EXPECT_EQ(cur.value(static_cast<size_t>(iw)).toUint64(),
                  wptr_samples[static_cast<size_t>(c)]);
    }
}

TEST(TraceVcd, ZeroWidthSignalsAreSkippedByTheWriter)
{
    auto m = std::make_shared<rtl::Module>();
    m->name = "degenerate";
    auto a = m->input("a", 8);
    m->wire("z", rtl::slice(a, 0, 0));   // zero-width slice
    m->wire("b", a + rtl::cst(8, 1));
    rtl::Sim sim(m);
    std::ostringstream os;
    rtl::VcdWriter vcd(sim, os);
    sim.setInput("a", 3);
    vcd.sample();

    // The dump parses cleanly and only declares representable vars.
    std::istringstream in(os.str());
    Trace t = VcdReader::read(in);
    EXPECT_EQ(t.indexOf("z"), -1);
    EXPECT_GE(t.indexOf("a"), 0);
    EXPECT_GE(t.indexOf("b"), 0);
    EXPECT_EQ(rewrite(t), os.str());
}

TEST(TraceVcd, ForeignVcdFeaturesParse)
{
    // x/z values, $comment sections, $dumpoff/$dumpon, mixed-case
    // vector markers, and a var range glued in the declaration.
    const char *text =
        "$comment hand-written $end\n"
        "$date today $end\n"
        "$timescale 1 ps $end\n"
        "$scope module top $end\n"
        "$var wire 4 ! bus [3:0] $end\n"
        "$var reg 1 \" flag $end\n"
        "$scope module child $end\n"
        "$var wire 2 # pair $end\n"
        "$upscope $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n"
        "#0\n"
        "$dumpvars\n"
        "bxz10 !\n"
        "x\"\n"
        "b00 #\n"
        "$end\n"
        "$comment mid-stream note $end\n"
        "#3\n"
        "B1x !\n"
        "1\"\n"
        "#7\n"
        "$dumpoff\n"
        "bz #\n"
        "$dumpon\n"
        "0\"\n";
    std::istringstream in(text);
    Trace t = VcdReader::read(in);
    EXPECT_EQ(t.top, "top");
    EXPECT_EQ(t.timescale, "1ps");
    ASSERT_EQ(t.signals().size(), 3u);
    EXPECT_EQ(t.indexOf("bus"), 0);
    EXPECT_EQ(t.indexOf("child.pair"), 2);

    const TraceSignal &bus = t.signals()[0];
    ASSERT_EQ(bus.changes.size(), 2u);
    // x/z read as 0: "xz10" -> 0b0010, "1x" -> 0b10.
    EXPECT_EQ(bus.changes[0].second.toUint64(), 0x2u);
    EXPECT_EQ(bus.changes[1].first, 3u);
    EXPECT_EQ(bus.changes[1].second.toUint64(), 0x2u);

    const TraceSignal &flag = t.signals()[1];
    ASSERT_EQ(flag.changes.size(), 3u);
    EXPECT_EQ(flag.changes[0].second.any(), false);   // x -> 0
    EXPECT_EQ(flag.changes[1].second.any(), true);
    EXPECT_EQ(flag.changes[2].first, 7u);
    EXPECT_EQ(t.cycles(), 8u);
}

TEST(TraceVcd, MalformedVcdRaises)
{
    auto expect_throw = [](const std::string &text,
                           const std::string &what) {
        std::istringstream in(text);
        try {
            VcdReader::read(in);
            ADD_FAILURE() << "no error for: " << what;
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("vcd:"),
                      std::string::npos)
                << e.what();
        }
    };
    expect_throw("$scope module m $end\n$var wire 1 ! a $end\n",
                 "missing $enddefinitions");
    expect_throw("$enddefinitions $end\n#0\n1!\n",
                 "undeclared id-code");
    expect_throw("$scope module m $end\n"
                 "$var wire oops ! a $end\n"
                 "$upscope $end\n$enddefinitions $end\n",
                 "bad width");
    expect_throw("$enddefinitions $end\n#5\n#3\n", "time reversal");
    expect_throw("$scope module m $end\n"
                 "$var wire 2 ! a $end\n"
                 "$upscope $end\n$enddefinitions $end\n"
                 "#0\nb10110 !\n",
                 "vector wider than var");
}

TEST(TraceVcd, VcdWriterIdCodesStayUniquePast94Signals)
{
    // 200 signals: single-, double-character codes, no collisions.
    std::set<std::string> seen;
    for (size_t i = 0; i < 9000; i++) {
        std::string id = rtl::VcdWriter::idCode(i);
        for (char c : id) {
            EXPECT_GE(c, '!');
            EXPECT_LE(c, '~');
        }
        EXPECT_TRUE(seen.insert(id).second) << "dup at " << i;
    }
}

} // namespace
