/**
 * @file
 * Shared randomized AXI-Lite demux bench: BFM agents plus protocol
 * checks, used by the AXI testbench tests and the trace subsystem
 * tests (record / replay / contract checking) so the stimulus and
 * checking logic exist exactly once.
 */

#ifndef ANVIL_TESTS_AXI_BENCH_H
#define ANVIL_TESTS_AXI_BENCH_H

#include <string>

#include "tb/axi_bfm.h"
#include "tb/testbench.h"

namespace anvil {
namespace testing {

struct DemuxBench
{
    tb::AxiMasterBfm *master = nullptr;
    tb::Scoreboard *wsb = nullptr;
    tb::Scoreboard *bsb = nullptr;
    tb::Scoreboard *rsb = nullptr;
};

/**
 * Attach the reusable AXI master BFM, one slave BFM per demux slave
 * port, and the demux protocol checks (address routing, in-order
 * write-data / B / R payload integrity) to a bench built around
 * designs::buildAxiDemuxBaseline().
 */
inline DemuxBench
attachDemuxBfmBench(tb::Testbench &bench, int n_slaves = 8,
                    tb::AxiMasterConfig mcfg = {})
{
    DemuxBench d;
    d.master = &tb::AxiMasterBfm::attach(bench, std::move(mcfg));
    for (int i = 0; i < n_slaves; i++) {
        tb::AxiSlaveConfig cfg;
        cfg.prefix = "s" + std::to_string(i);
        tb::AxiLiteSlaveBfm::attach(bench, cfg);
    }

    d.wsb = &bench.addScoreboard("w-data");
    d.bsb = &bench.addScoreboard("b-resp");
    d.rsb = &bench.addScoreboard("r-resp");

    tb::Scoreboard *wsb = d.wsb, *bsb = d.bsb, *rsb = d.rsb;
    bench.check("axi", [wsb, bsb, rsb, n_slaves](tb::Testbench &t) {
        rtl::Sim &s = t.sim();
        uint64_t cyc = s.cycle();

        // Master-side fires push expectations / observe responses.
        if (s.peek("m_w_valid").any() && s.peek("m_w_ack").any())
            wsb->expect(s.peek("m_w_data"));
        if (s.peek("m_b_valid").any() && s.peek("m_b_ack").any())
            bsb->observed(cyc, s.peek("m_b_data"));
        if (s.peek("m_r_valid").any() && s.peek("m_r_ack").any())
            rsb->observed(cyc, s.peek("m_r_data"));

        for (int i = 0; i < n_slaves; i++) {
            std::string p = "s" + std::to_string(i);
            uint64_t sel = static_cast<uint64_t>(i);
            if (s.peek(p + "_aw_valid").any()) {
                uint64_t top =
                    s.peek(p + "_aw_data").toUint64() >> 29;
                if (top != sel)
                    t.fail("aw-route",
                           p + " got aw for slave " +
                               std::to_string(top));
                // The write completes when both AW and W are acked.
                if (s.peek(p + "_aw_ack").any() &&
                    s.peek(p + "_w_ack").any())
                    wsb->observed(cyc, s.peek(p + "_w_data"));
            }
            if (s.peek(p + "_ar_valid").any()) {
                uint64_t top =
                    s.peek(p + "_ar_data").toUint64() >> 29;
                if (top != sel)
                    t.fail("ar-route",
                           p + " got ar for slave " +
                               std::to_string(top));
            }
            if (s.peek(p + "_b_ack").any() &&
                s.peek(p + "_b_valid").any())
                bsb->expect(s.peek(p + "_b_data"));
            if (s.peek(p + "_r_ack").any() &&
                s.peek(p + "_r_valid").any())
                rsb->expect(s.peek(p + "_r_data"));
        }
    });
    return d;
}

} // namespace testing
} // namespace anvil

#endif // ANVIL_TESTS_AXI_BENCH_H
