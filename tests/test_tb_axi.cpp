/**
 * @file
 * Constrained-random AXI-Lite crossbar testbench: the 1-to-8 demux
 * eval design driven by randomized master traffic and randomized
 * slave-side handshakes, checked by routing monitors and in-order
 * write/response/read scoreboards.  A deliberately broken demux
 * (corrupted write data, mis-routed AW channel) is caught by the same
 * bench, and the whole run reproduces bit-for-bit from its seed.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "designs/designs.h"
#include "tb/testbench.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

constexpr int kSlaves = 8;

/** Replace a named wire's driver (to break a design on purpose). */
void
replaceWire(const ModulePtr &m, const std::string &name, ExprPtr e)
{
    for (auto &w : m->wires) {
        if (w.name == name) {
            w.expr = std::move(e);
            return;
        }
    }
    ADD_FAILURE() << "no wire named " << name;
}

/** One-bit valid/ack style input driven high with the given duty. */
tb::RandomSpec
duty(int pct)
{
    tb::FieldSpec f;
    f.lo = 0;
    f.width = 1;
    f.min = 1;
    f.max = 1;
    tb::RandomSpec spec;
    spec.fields = {f};
    spec.active_pct = pct;
    return spec;
}

/** Randomized master traffic + randomized slave handshakes. */
void
addDemuxStimulus(tb::Testbench &bench)
{
    bench.driveRandom("m_aw_data");
    bench.driveRandom("m_aw_valid", duty(60));
    bench.driveRandom("m_w_data");
    bench.driveRandom("m_w_valid", duty(60));
    bench.driveRandom("m_b_ack", duty(70));
    bench.driveRandom("m_ar_data");
    bench.driveRandom("m_ar_valid", duty(50));
    bench.driveRandom("m_r_ack", duty(70));
    for (int i = 0; i < kSlaves; i++) {
        std::string p = "s" + std::to_string(i);
        bench.driveRandom(p + "_aw_ack", duty(80));
        bench.driveRandom(p + "_w_ack", duty(80));
        bench.driveRandom(p + "_b_valid", duty(60));
        bench.driveRandom(p + "_b_data");
        bench.driveRandom(p + "_ar_ack", duty(80));
        bench.driveRandom(p + "_r_valid", duty(60));
        bench.driveRandom(p + "_r_data");
    }
}

/**
 * Protocol checks:
 *  - routing: a slave sees AW/AR only for addresses whose top bits
 *    select it;
 *  - write data: the W beat a slave accepts equals the W beat the
 *    master sent (in order);
 *  - responses: B and R payloads surface at the master exactly as
 *    the selected slave produced them (in order).
 */
void
addDemuxChecks(tb::Testbench &bench)
{
    tb::Scoreboard &wsb = bench.addScoreboard("w-data");
    tb::Scoreboard &bsb = bench.addScoreboard("b-resp");
    tb::Scoreboard &rsb = bench.addScoreboard("r-resp");

    bench.check("axi", [&wsb, &bsb, &rsb](tb::Testbench &t) {
        rtl::Sim &s = t.sim();
        uint64_t cyc = s.cycle();

        // Master-side fires push expectations / observe responses.
        if (s.peek("m_w_valid").any() && s.peek("m_w_ack").any())
            wsb.expect(s.peek("m_w_data"));
        if (s.peek("m_b_valid").any() && s.peek("m_b_ack").any())
            bsb.observed(cyc, s.peek("m_b_data"));
        if (s.peek("m_r_valid").any() && s.peek("m_r_ack").any())
            rsb.observed(cyc, s.peek("m_r_data"));

        for (int i = 0; i < kSlaves; i++) {
            std::string p = "s" + std::to_string(i);
            uint64_t sel = static_cast<uint64_t>(i);
            if (s.peek(p + "_aw_valid").any()) {
                uint64_t top =
                    s.peek(p + "_aw_data").toUint64() >> 29;
                if (top != sel)
                    t.fail("aw-route",
                           p + " got aw for slave " +
                               std::to_string(top));
                // The write completes when both AW and W are acked.
                if (s.peek(p + "_aw_ack").any() &&
                    s.peek(p + "_w_ack").any())
                    wsb.observed(cyc, s.peek(p + "_w_data"));
            }
            if (s.peek(p + "_ar_valid").any()) {
                uint64_t top =
                    s.peek(p + "_ar_data").toUint64() >> 29;
                if (top != sel)
                    t.fail("ar-route",
                           p + " got ar for slave " +
                               std::to_string(top));
            }
            if (s.peek(p + "_b_ack").any() &&
                s.peek(p + "_b_valid").any())
                bsb.expect(s.peek(p + "_b_data"));
            if (s.peek(p + "_r_ack").any() &&
                s.peek(p + "_r_valid").any())
                rsb.expect(s.peek(p + "_r_data"));
        }
    });
}

TEST(TbAxi, RandomizedDemuxPassesProtocolChecks)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 2024);
    addDemuxStimulus(bench);
    addDemuxChecks(bench);
    tb::TbResult r = bench.run(3000);
    EXPECT_TRUE(r.ok()) << r.summary();
    // The random traffic actually exercised transactions.
    EXPECT_GT(bench.sim().totalToggles(), 1000u);
}

TEST(TbAxi, SeededRunReproducesDeterministically)
{
    auto run_once = [](uint64_t seed, std::vector<uint64_t> *aw) {
        tb::Testbench bench(designs::buildAxiDemuxBaseline(), seed);
        addDemuxStimulus(bench);
        addDemuxChecks(bench);
        bench.check("record-aw", [aw](tb::Testbench &t) {
            if (t.sim().peek("m_aw_valid").any())
                aw->push_back(t.sim().peek("m_aw_data").toUint64());
        });
        tb::Coverage &cov = bench.coverage();
        tb::TbResult r = bench.run(1500);
        struct Out
        {
            size_t failures;
            uint64_t toggles;
            std::string cov;
        };
        return Out{r.failures.size(), bench.sim().totalToggles(),
                   cov.summaryJson()};
    };

    std::vector<uint64_t> aw1, aw2, aw3;
    auto a = run_once(99, &aw1);
    auto b = run_once(99, &aw2);
    auto c = run_once(100, &aw3);

    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(aw1, aw2);
    EXPECT_EQ(a.toggles, b.toggles);
    EXPECT_EQ(a.cov, b.cov);
    // A different seed produces genuinely different stimulus.
    EXPECT_NE(aw1, aw3);
    (void)c;
}

TEST(TbAxi, CorruptedWriteDataIsCaught)
{
    auto mod = designs::buildAxiDemuxBaseline();
    // Slave 2's W payload picks up a stuck-at-flipped low bit.
    replaceWire(mod, "s2_w_data",
                rtl::ref("wreg", 32) ^ cst(32, 1));
    tb::Testbench bench(mod, 2024);
    addDemuxStimulus(bench);
    addDemuxChecks(bench);
    tb::TbResult r = bench.run(3000);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.failures.empty());
    bool saw_w_mismatch = false;
    for (const auto &f : r.failures)
        saw_w_mismatch |= f.check == "w-data";
    EXPECT_TRUE(saw_w_mismatch);
}

TEST(TbAxi, MisroutedAwChannelIsCaught)
{
    auto mod = designs::buildAxiDemuxBaseline();
    // Slave 5 erroneously answers to slave 4's address window.
    replaceWire(mod, "s5_aw_valid",
                rtl::ref("fwd_awst", 1) &
                    eq(rtl::ref("wsel", 3), cst(3, 4)));
    tb::Testbench bench(mod, 7);
    addDemuxStimulus(bench);
    addDemuxChecks(bench);
    tb::TbResult r = bench.run(3000);
    EXPECT_FALSE(r.ok());
    bool saw_route = false;
    for (const auto &f : r.failures)
        saw_route |= f.check == "aw-route";
    EXPECT_TRUE(saw_route);
}

} // namespace
