/**
 * @file
 * Constrained-random AXI-Lite crossbar testbench, now built from the
 * reusable BFM agents (tb/axi_bfm.h): the 1-to-8 demux driven by a
 * transaction-issuing master BFM and randomized slave responders,
 * checked by routing monitors and in-order write/response/read
 * scoreboards.  A deliberately broken demux (corrupted write data,
 * mis-routed AW channel) is caught by the same bench, the whole run
 * reproduces bit-for-bit from its seed, and scripted BFM
 * transactions round-trip through a memory-model slave.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "axi_bench.h"
#include "designs/designs.h"
#include "tb/testbench.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

/** Replace a named wire's driver (to break a design on purpose). */
void
replaceWire(const ModulePtr &m, const std::string &name, ExprPtr e)
{
    for (auto &w : m->wires) {
        if (w.name == name) {
            w.expr = std::move(e);
            return;
        }
    }
    ADD_FAILURE() << "no wire named " << name;
}

TEST(TbAxi, RandomizedDemuxPassesProtocolChecks)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 2024);
    auto d = anvil::testing::attachDemuxBfmBench(bench);
    tb::TbResult r = bench.run(3000);
    EXPECT_TRUE(r.ok()) << r.summary();
    // The random traffic actually exercised transactions.
    EXPECT_GT(bench.sim().totalToggles(), 1000u);
    EXPECT_GT(d.master->writesDone(), 50u);
    EXPECT_GT(d.master->readsDone(), 50u);
    EXPECT_GT(d.wsb->matched(), 50u);
    EXPECT_GT(d.bsb->matched(), 50u);
    EXPECT_GT(d.rsb->matched(), 50u);
}

TEST(TbAxi, SeededRunReproducesDeterministically)
{
    auto run_once = [](uint64_t seed, std::vector<uint64_t> *aw) {
        tb::Testbench bench(designs::buildAxiDemuxBaseline(), seed);
        anvil::testing::attachDemuxBfmBench(bench);
        bench.check("record-aw", [aw](tb::Testbench &t) {
            if (t.sim().peek("m_aw_valid").any())
                aw->push_back(t.sim().peek("m_aw_data").toUint64());
        });
        tb::Coverage &cov = bench.coverage();
        tb::TbResult r = bench.run(1500);
        struct Out
        {
            size_t failures;
            uint64_t toggles;
            std::string cov;
        };
        return Out{r.failures.size(), bench.sim().totalToggles(),
                   cov.summaryJson()};
    };

    std::vector<uint64_t> aw1, aw2, aw3;
    auto a = run_once(99, &aw1);
    auto b = run_once(99, &aw2);
    auto c = run_once(100, &aw3);

    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(aw1, aw2);
    EXPECT_EQ(a.toggles, b.toggles);
    EXPECT_EQ(a.cov, b.cov);
    // A different seed produces genuinely different stimulus.
    EXPECT_NE(aw1, aw3);
    (void)c;
}

TEST(TbAxi, CorruptedWriteDataIsCaught)
{
    auto mod = designs::buildAxiDemuxBaseline();
    // Slave 2's W payload picks up a stuck-at-flipped low bit.
    replaceWire(mod, "s2_w_data",
                rtl::ref("wreg", 32) ^ cst(32, 1));
    tb::Testbench bench(mod, 2024);
    anvil::testing::attachDemuxBfmBench(bench);
    tb::TbResult r = bench.run(3000);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.failures.empty());
    bool saw_w_mismatch = false;
    for (const auto &f : r.failures)
        saw_w_mismatch |= f.check == "w-data";
    EXPECT_TRUE(saw_w_mismatch);
}

TEST(TbAxi, MisroutedAwChannelIsCaught)
{
    auto mod = designs::buildAxiDemuxBaseline();
    // Slave 5 erroneously answers to slave 4's address window.
    replaceWire(mod, "s5_aw_valid",
                rtl::ref("fwd_awst", 1) &
                    eq(rtl::ref("wsel", 3), cst(3, 4)));
    tb::Testbench bench(mod, 7);
    // Scripted traffic exposes both faces of the bug: a write into
    // slave 4's window shows up at slave 5 (routing violation), and
    // a write into slave 5's own window hangs, because its real
    // valid never asserts (master BFM watchdog).
    tb::AxiMasterConfig mcfg;
    mcfg.random_traffic = false;
    auto d = anvil::testing::attachDemuxBfmBench(bench, 8, mcfg);
    d.master->queueWrite(4ull << 29, 0x44);
    d.master->queueWrite(5ull << 29, 0x55);
    tb::TbResult r = bench.run(400);
    EXPECT_FALSE(r.ok());
    bool saw_route = false, saw_hang = false;
    for (const auto &f : r.failures) {
        saw_route |= f.check == "aw-route";
        saw_hang |= f.check == "m-axi-master";
    }
    EXPECT_TRUE(saw_route);
    EXPECT_TRUE(saw_hang);
}

TEST(TbAxi, ScriptedTransactionsAgainstMemoryModelSlaves)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 5);
    // Slaves with a real memory model: writes land in a map, reads
    // echo the stored value back.
    std::map<uint64_t, uint64_t> mem;
    for (int i = 0; i < 8; i++) {
        tb::AxiSlaveConfig cfg;
        cfg.prefix = "s" + std::to_string(i);
        cfg.write_resp = [&mem](uint64_t addr, uint64_t data) {
            mem[addr] = data;
            return 0;   // OKAY
        };
        cfg.read_resp = [&mem](uint64_t addr) { return mem[addr]; };
        tb::AxiLiteSlaveBfm::attach(bench, cfg);
    }
    tb::AxiMasterConfig mcfg;
    mcfg.random_traffic = false;   // scripted only
    tb::AxiMasterBfm &master = tb::AxiMasterBfm::attach(bench, mcfg);

    // Writes first (the read engine runs concurrently, so reading
    // back an address only makes sense once its write completed).
    std::vector<uint64_t> got;
    for (uint64_t i = 0; i < 8; i++)
        master.queueWrite((i << 29) | 0x10, 0x111 * i);
    tb::TbResult r = bench.run(400);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(master.writesDone(), 8u);

    for (uint64_t i = 0; i < 8; i++)
        master.queueRead((i << 29) | 0x10,
                         [&got](const BitVec &v) {
                             got.push_back(v.toUint64());
                         });
    r = bench.run(400);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(master.idle());
    EXPECT_EQ(master.writesDone(), 8u);
    EXPECT_EQ(master.readsDone(), 8u);
    ASSERT_EQ(got.size(), 8u);
    for (uint64_t i = 0; i < 8; i++)
        EXPECT_EQ(got[i], 0x111 * i) << "slave " << i;
}

} // namespace
