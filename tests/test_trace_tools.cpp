/**
 * @file
 * Trace-tooling satellites: multi-trace diffing (first divergent
 * cycle and signal), offline coverage replay (a recorded dump grades
 * to the same summary the live run printed), and the change-fed
 * WaveRecorder (bit-identical renders across sweep modes, with the
 * rescan fallback exercised by mid-cycle pokes).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/wave.h"
#include "tb/testbench.h"
#include "trace/diff.h"
#include "trace/replay.h"
#include "trace/vcd_reader.h"

using namespace anvil;

namespace {

/** Seeded random quickstart-style run dumped to VCD. */
std::string
dumpRun(const rtl::ModulePtr &mod, uint64_t seed, uint64_t cycles,
        tb::Coverage **cov_out = nullptr,
        tb::Testbench **bench_out = nullptr)
{
    static std::unique_ptr<tb::Testbench> bench;
    bench = std::make_unique<tb::Testbench>(mod, seed);
    for (const auto &in : bench->sim().inputNames())
        bench->driveRandom(in);
    std::ostringstream os;
    bench->attachVcd(os);
    if (cov_out)
        *cov_out = &bench->coverage();
    bench->run(cycles);
    if (bench_out)
        *bench_out = bench.get();
    return os.str();
}

rtl::ModulePtr
pingServer()
{
    CompileOutput out = compileAnvil(R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}
proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)");
    EXPECT_TRUE(out.ok) << out.diags.render();
    return out.module("ping_server");
}

// --- diffTraces ----------------------------------------------------------

TEST(TraceDiff, IdenticalRunsCompareEqual)
{
    auto mod = pingServer();
    std::string a = dumpRun(mod, 7, 120);
    std::string b = dumpRun(mod, 7, 120);
    ASSERT_EQ(a, b);   // determinism, again

    std::istringstream ia(a), ib(b);
    trace::Trace ta = trace::VcdReader::read(ia);
    trace::Trace tb_ = trace::VcdReader::read(ib);
    trace::TraceDiff d = trace::diffTraces(ta, tb_);
    EXPECT_TRUE(d.identical) << d.str();
    EXPECT_FALSE(d.value_diverged);
    EXPECT_EQ(d.signals_compared, ta.signals().size());
    EXPECT_NE(d.str().find("identical"), std::string::npos);
}

TEST(TraceDiff, FirstDivergenceIsPinpointed)
{
    auto mod = pingServer();
    std::string a = dumpRun(mod, 7, 120);
    std::string b = dumpRun(mod, 8, 120);
    std::istringstream ia(a), ib(b);
    trace::Trace ta = trace::VcdReader::read(ia);
    trace::Trace tb_ = trace::VcdReader::read(ib);
    trace::TraceDiff d = trace::diffTraces(ta, tb_);
    ASSERT_TRUE(d.value_diverged) << d.str();
    EXPECT_FALSE(d.identical);
    EXPECT_FALSE(d.signal.empty());

    // The reported divergence is real: the named signal's values at
    // the reported cycle differ, and no earlier cycle differs on any
    // common signal.
    trace::TraceCursor ca(ta), cb(tb_);
    for (uint64_t t = ta.startTime(); t < d.cycle; t++) {
        ca.advanceTo(t);
        cb.advanceTo(t);
        for (size_t i = 0; i < ta.signals().size(); i++) {
            int j = tb_.indexOf(ta.signals()[i].name);
            ASSERT_GE(j, 0);
            EXPECT_EQ(ca.value(i), cb.value(static_cast<size_t>(j)))
                << ta.signals()[i].name << " @" << t;
        }
    }
    ca.advanceTo(d.cycle);
    cb.advanceTo(d.cycle);
    int ia_idx = ta.indexOf(d.signal), ib_idx = tb_.indexOf(d.signal);
    ASSERT_GE(ia_idx, 0);
    ASSERT_GE(ib_idx, 0);
    EXPECT_NE(ca.value(static_cast<size_t>(ia_idx)),
              cb.value(static_cast<size_t>(ib_idx)));
}

TEST(TraceDiff, StructuralDifferencesReported)
{
    auto read = [](const std::string &text) {
        std::istringstream in(text);
        return trace::VcdReader::read(in);
    };
    trace::Trace a = read(
        "$timescale 1ns $end\n$scope module t $end\n"
        "$var wire 1 ! x $end\n$var wire 1 \" y $end\n"
        "$upscope $end\n$enddefinitions $end\n"
        "#0\n$dumpvars\n0!\n0\"\n$end\n");
    trace::Trace b = read(
        "$timescale 1ns $end\n$scope module t $end\n"
        "$var wire 1 ! x $end\n$var wire 2 \" z [1:0] $end\n"
        "$upscope $end\n$enddefinitions $end\n"
        "#0\n$dumpvars\n0!\nb0 \"\n$end\n");
    trace::TraceDiff d = trace::diffTraces(a, b);
    EXPECT_FALSE(d.identical);
    ASSERT_EQ(d.only_in_a.size(), 1u);
    EXPECT_EQ(d.only_in_a[0], "y");
    ASSERT_EQ(d.only_in_b.size(), 1u);
    EXPECT_EQ(d.only_in_b[0], "z");
    EXPECT_FALSE(d.value_diverged);
}

TEST(TraceDiff, QuietTailTruncationIsAnExtentMismatch)
{
    auto read = [](const std::string &text) {
        std::istringstream in(text);
        return trace::VcdReader::read(in);
    };
    const char *header =
        "$timescale 1ns $end\n$scope module t $end\n"
        "$var wire 1 ! x $end\n"
        "$upscope $end\n$enddefinitions $end\n";
    // Full run: changes at 0 and 3.
    trace::Trace full = read(std::string(header) +
                             "#0\n$dumpvars\n0!\n$end\n#3\n1!\n");
    // Truncated prefix: the dropped change diverges at cycle 3, and
    // the report additionally names the extent difference so a cut
    // recording is distinguishable from a genuinely different run.
    trace::Trace cut = read(std::string(header) +
                            "#0\n$dumpvars\n0!\n$end\n");
    trace::TraceDiff d = trace::diffTraces(full, cut);
    EXPECT_FALSE(d.identical);
    EXPECT_TRUE(d.extent_mismatch);
    EXPECT_EQ(d.a_end, 3u);
    EXPECT_EQ(d.b_end, 0u);
    EXPECT_NE(d.str().find("recorded extents differ"),
              std::string::npos);

    // A dump with declarations but zero change records (cut before
    // its $dumpvars) can only be told apart by extent — even when
    // the other dump's recorded values are all zero.
    trace::Trace quiet = read(std::string(header) +
                              "#0\n$dumpvars\n0!\n$end\n#5\n0!\n");
    trace::Trace none = read(std::string(header));
    trace::TraceDiff e = trace::diffTraces(quiet, none);
    EXPECT_FALSE(e.identical);
    EXPECT_TRUE(e.extent_mismatch);
    // Two truly empty dumps are identical.
    trace::TraceDiff f = trace::diffTraces(none, none);
    EXPECT_TRUE(f.identical);
}

// --- Offline coverage replay --------------------------------------------

TEST(CoverageReplay, OfflineGradingMatchesLiveSummary)
{
    auto mod = pingServer();
    tb::Coverage *live = nullptr;
    std::string vcd = dumpRun(mod, 11, 200, &live);
    ASSERT_NE(live, nullptr);
    std::string live_json = live->summaryJson();

    std::istringstream in(vcd);
    trace::Trace t = trace::VcdReader::read(in);
    rtl::Sim sim(mod);
    tb::Coverage offline;
    uint64_t frames = trace::gradeCoverage(sim.netlist(), t, offline);
    EXPECT_EQ(frames, 200u);
    // Bit-for-bit the same machine-readable summary the live run
    // printed: same toggles, same reg-bin occupancy.
    EXPECT_EQ(offline.summaryJson(), live_json);
    EXPECT_GT(offline.togglePct(), 0.0);
}

TEST(CoverageReplay, PartialDumpsGradeRecordedSignalsOnly)
{
    auto mod = pingServer();
    tb::Testbench bench(mod, 3);
    for (const auto &in : bench.sim().inputNames())
        bench.driveRandom(in);
    std::ostringstream os;
    bench.attachVcd(os, {"io_pong_valid", "io_pong_ack"});
    bench.run(100);

    std::istringstream in(os.str());
    trace::Trace t = trace::VcdReader::read(in);
    rtl::Sim sim(mod);
    tb::Coverage offline;
    trace::gradeCoverage(sim.netlist(), t, offline);
    // Unrecorded signals contribute nothing; recorded ones do.
    int covered = 0;
    for (const auto &sc : offline.signals()) {
        if (sc.name == "io_pong_valid" || sc.name == "io_pong_ack")
            covered += sc.coveredBits();
        else
            EXPECT_EQ(sc.coveredBits(), 0) << sc.name;
    }
    EXPECT_GT(covered, 0);
}

// --- Change-fed WaveRecorder --------------------------------------------

TEST(WaveFeed, RendersIdenticalAcrossSweepModes)
{
    std::vector<std::string> renders;
    for (rtl::SweepMode mode :
         {rtl::SweepMode::Full, rtl::SweepMode::Dirty,
          rtl::SweepMode::Threaded}) {
        auto mod = designs::buildHazardDemoSystem();
        rtl::Sim sim(mod);
        sim.setSweepMode(mode, 2, /*shard_min=*/1);
        rtl::WaveRecorder rec(
            sim, {"req", "addr", "observed", "sampling"});
        for (int i = 0; i < 24; i++) {
            rec.sample();
            sim.step();
        }
        renders.push_back(rec.render());
    }
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

TEST(WaveFeed, PokesAfterSampleForceRescan)
{
    // A poke between a sample and the clock edge invalidates the
    // per-cycle feed; the recorder must fall back to direct reads
    // and stay bit-identical with an always-rescanning reference.
    auto mk = [] {
        auto m = std::make_shared<rtl::Module>();
        m->name = "w";
        auto x = m->input("x", 8);
        auto c = m->reg("c", 8);
        m->update("c", rtl::cst(1, 1), c + x);
        m->wire("mirror", x ^ c);
        return m;
    };
    auto mod = mk();
    rtl::Sim sim(mod);
    rtl::WaveRecorder rec(sim, {"mirror", "c"});
    std::vector<BitVec> expect_mirror, expect_c;
    for (int i = 0; i < 16; i++) {
        sim.setInput("x", static_cast<uint64_t>(i));
        // Reference values from the same frame the recorder sees.
        expect_mirror.push_back(sim.peek("mirror"));
        expect_c.push_back(sim.peek("c"));
        rec.sample();
        if (i % 3 == 0) {
            // Late poke: its change records are flushed with the
            // edge, so next cycle's feed is incomplete — the cursor
            // must force a rescan.
            sim.setInput("x", static_cast<uint64_t>(i + 100));
        }
        sim.step();
    }
    const auto &got_mirror = rec.samplesOf("mirror");
    const auto &got_c = rec.samplesOf("c");
    ASSERT_EQ(got_mirror.size(), expect_mirror.size());
    for (size_t i = 0; i < got_mirror.size(); i++) {
        EXPECT_EQ(got_mirror[i], expect_mirror[i]) << i;
        EXPECT_EQ(got_c[i], expect_c[i]) << i;
    }
}

TEST(WaveFeed, UnresolvedSignalStillFaultsAtSample)
{
    auto m = std::make_shared<rtl::Module>();
    m->name = "w";
    auto c = m->reg("c", 4);
    m->update("c", rtl::cst(1, 1), c + rtl::cst(4, 1));
    rtl::Sim sim(m);
    rtl::WaveRecorder rec(sim, {"ghost"});
    EXPECT_THROW(rec.sample(), std::invalid_argument);
}

} // namespace
