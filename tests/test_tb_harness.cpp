/**
 * @file
 * Testbench harness tests: driver kinds, deterministic seeded
 * replay, scoreboard catching a deliberately broken design, failure
 * accounting, and the run summary.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rtl/rtl.h"
#include "tb/testbench.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

/**
 * A one-stage incrementer: q = d + 1 combinationally, with a free
 * running cycle counter.  The broken variant corrupts the result
 * whenever the counter reads 7 — exactly the kind of rare-state bug
 * directed tests miss and constrained-random plus a scoreboard
 * catches.
 */
ModulePtr
incrementer(bool broken)
{
    auto m = std::make_shared<Module>();
    m->name = "inc";
    auto d = m->input("d", 8);
    auto cnt = m->reg("cnt", 3);
    m->update("cnt", cst(1, 1), cnt + cst(3, 1));
    ExprPtr q = d + cst(8, 1);
    if (broken)
        q = mux(eq(cnt, cst(3, 7)), d + cst(8, 2), q);
    m->wire("q", q);
    return m;
}

void
attachIncrementerChecks(tb::Testbench &bench)
{
    tb::Scoreboard &sb = bench.addScoreboard("inc-data");
    bench.check("inc", [&sb](tb::Testbench &t) {
        uint64_t d = t.sim().peek("d").toUint64();
        sb.expect(BitVec(8, d + 1));
        sb.observed(t.sim().cycle(), t.sim().peek("q"));
    });
}

TEST(TbHarness, SequenceDriverDrivesInOrderThenIdles)
{
    tb::Testbench bench(incrementer(false));
    bench.driveSequence("d", {BitVec(8, 10), BitVec(8, 20),
                              BitVec(8, 30)});
    std::vector<uint64_t> seen;
    bench.check("record", [&seen](tb::Testbench &t) {
        seen.push_back(t.sim().peek("d").toUint64());
    });
    EXPECT_TRUE(bench.run(5).ok());
    EXPECT_EQ(seen, (std::vector<uint64_t>{10, 20, 30, 0, 0}));
}

TEST(TbHarness, SequenceDriverHoldsLast)
{
    tb::Testbench bench(incrementer(false));
    bench.driveSequence("d", {BitVec(8, 5), BitVec(8, 9)}, true);
    std::vector<uint64_t> seen;
    bench.check("record", [&seen](tb::Testbench &t) {
        seen.push_back(t.sim().peek("d").toUint64());
    });
    bench.run(4);
    EXPECT_EQ(seen, (std::vector<uint64_t>{5, 9, 9, 9}));
}

TEST(TbHarness, CallbackDriverSeesCycleAndRng)
{
    tb::Testbench bench(incrementer(false));
    std::vector<uint64_t> cycles;
    bench.driveWith([&cycles](rtl::Sim &sim, uint64_t cycle,
                              tb::SplitMix64 &) {
        sim.setInput("d", cycle * 3);
        cycles.push_back(cycle);
    });
    bench.run(3);
    EXPECT_EQ(cycles, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(TbHarness, CleanDesignPassesScoreboard)
{
    tb::Testbench bench(incrementer(false), 42);
    bench.driveRandom("d");
    attachIncrementerChecks(bench);
    tb::TbResult r = bench.run(200);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.summary().substr(0, 4), "PASS");
}

TEST(TbHarness, BrokenDesignIsCaughtByScoreboard)
{
    tb::Testbench bench(incrementer(true), 42);
    bench.driveRandom("d");
    attachIncrementerChecks(bench);
    tb::TbResult r = bench.run(200);
    EXPECT_FALSE(r.ok());
    // The corruption window is cnt == 7: one cycle in eight.
    EXPECT_GE(r.failures.size(), 10u);
    EXPECT_EQ(r.failures[0].check, "inc-data");
    EXPECT_EQ(r.summary().substr(0, 4), "FAIL");
    // Failures land exactly on the corrupted cycles.
    for (const auto &f : r.failures)
        EXPECT_EQ(f.cycle % 8, 7u) << f.message;
}

TEST(TbHarness, SameSeedReproducesBitForBit)
{
    auto run_once = [](uint64_t seed, std::vector<uint64_t> *stim) {
        tb::Testbench bench(incrementer(true), seed);
        bench.driveRandom("d");
        attachIncrementerChecks(bench);
        bench.check("record", [stim](tb::Testbench &t) {
            stim->push_back(t.sim().peek("d").toUint64());
        });
        tb::TbResult r = bench.run(300);
        return std::make_pair(r.failures.size(),
                              bench.sim().totalToggles());
    };
    std::vector<uint64_t> s1, s2, s3;
    auto a = run_once(7, &s1);
    auto b = run_once(7, &s2);
    auto c = run_once(8, &s3);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(a, b);
    EXPECT_NE(s1, s3);
    (void)c;
}

TEST(TbHarness, MaxFailuresStopsTheRunEarly)
{
    tb::Testbench bench(incrementer(true), 1);
    bench.driveRandom("d");
    attachIncrementerChecks(bench);
    bench.max_failures = 3;
    tb::TbResult r = bench.run(100000);
    EXPECT_EQ(r.failures.size(), 3u);
    EXPECT_LT(r.cycles, 100000u);
}

TEST(TbHarness, MaxFailuresBudgetResetsPerRun)
{
    // A second run() gets its own failure budget; the cumulative
    // count from the first run must not cut it to one cycle.
    tb::Testbench bench(incrementer(true), 1);
    bench.driveRandom("d");
    attachIncrementerChecks(bench);
    bench.max_failures = 3;
    tb::TbResult r1 = bench.run(1000);
    EXPECT_EQ(r1.failures.size(), 3u);
    tb::TbResult r2 = bench.run(1000);
    EXPECT_EQ(r2.failures.size(), 3u);
    EXPECT_GT(r2.cycles, 8u);
}

TEST(TbHarness, ScoreboardComparesAtTheWiderWidth)
{
    tb::Scoreboard sb("w");
    // High-bit corruption beyond the expected width is a mismatch.
    sb.expect(BitVec(8, 0x05));
    sb.observed(1, BitVec(16, 0xa305));
    EXPECT_EQ(sb.failures().size(), 1u);
    // Same low byte with clean high bits matches.
    sb.expect(BitVec(8, 0x05));
    sb.observed(2, BitVec(16, 0x0005));
    EXPECT_EQ(sb.matched(), 1u);
}

TEST(TbHarness, RandomFieldConstraintsAreRespected)
{
    tb::Testbench bench(incrementer(false), 9);
    tb::RandomSpec spec;
    // Low nibble from a choice set, high nibble in [2, 5].
    tb::FieldSpec lo_f;
    lo_f.lo = 0;
    lo_f.width = 4;
    lo_f.choices = {1, 3, 7};
    tb::FieldSpec hi_f;
    hi_f.lo = 4;
    hi_f.width = 4;
    hi_f.min = 2;
    hi_f.max = 5;
    spec.fields = {lo_f, hi_f};
    bench.driveRandom("d", spec);

    std::set<uint64_t> lo_seen, hi_seen;
    bench.check("constraint", [&](tb::Testbench &t) {
        uint64_t d = t.sim().peek("d").toUint64();
        lo_seen.insert(d & 0xf);
        hi_seen.insert(d >> 4);
        EXPECT_TRUE((d & 0xf) == 1 || (d & 0xf) == 3 ||
                    (d & 0xf) == 7);
        EXPECT_GE(d >> 4, 2u);
        EXPECT_LE(d >> 4, 5u);
    });
    bench.run(200);
    // All allowed values actually appear.
    EXPECT_EQ(lo_seen.size(), 3u);
    EXPECT_EQ(hi_seen.size(), 4u);
}

TEST(TbHarness, UnsatisfiableRandomConstraintIsRejected)
{
    tb::Testbench bench(incrementer(false));
    // min doesn't fit a 4-bit field.
    tb::FieldSpec f;
    f.lo = 0;
    f.width = 4;
    f.min = 20;
    f.max = 25;
    tb::RandomSpec spec;
    spec.fields = {f};
    EXPECT_THROW(bench.driveRandom("d", spec),
                 std::invalid_argument);
    // min > max is contradictory.
    tb::FieldSpec g;
    g.lo = 0;
    g.width = 8;
    g.min = 10;
    g.max = 2;
    tb::RandomSpec spec2;
    spec2.fields = {g};
    EXPECT_THROW(bench.driveRandom("d", spec2),
                 std::invalid_argument);
    // A field outside the input is rejected too.
    tb::FieldSpec h;
    h.lo = 4;
    h.width = 8;
    tb::RandomSpec spec3;
    spec3.fields = {h};
    EXPECT_THROW(bench.driveRandom("d", spec3),
                 std::invalid_argument);
}

TEST(TbHarness, DutyCycledValidDrivesIdleValue)
{
    tb::Testbench bench(incrementer(false), 11);
    tb::RandomSpec spec;
    tb::FieldSpec one;
    one.lo = 0;
    one.width = 8;
    one.min = 1;
    one.max = 0xff;
    spec.fields = {one};
    spec.active_pct = 40;
    spec.idle_value = 0;
    bench.driveRandom("d", spec);
    int active = 0, idle = 0;
    bench.check("duty", [&](tb::Testbench &t) {
        if (t.sim().peek("d").any())
            active++;
        else
            idle++;
    });
    bench.run(1000);
    // ~40% active; allow generous slack.
    EXPECT_GT(active, 250);
    EXPECT_LT(active, 550);
    EXPECT_GT(idle, 350);
}

TEST(TbHarness, ScoreboardFlagsUnexpectedAndPending)
{
    tb::Scoreboard sb("sb");
    sb.observed(3, BitVec(8, 1));
    ASSERT_EQ(sb.failures().size(), 1u);
    EXPECT_EQ(sb.failures()[0].cycle, 3u);

    sb.expect(BitVec(8, 5));
    EXPECT_EQ(sb.pending(), 1u);
    sb.observed(4, BitVec(8, 5));
    EXPECT_EQ(sb.pending(), 0u);
    EXPECT_EQ(sb.matched(), 1u);
    EXPECT_EQ(sb.failures().size(), 1u);

    sb.expect(BitVec(8, 6));
    sb.observed(5, BitVec(8, 7));
    EXPECT_EQ(sb.failures().size(), 2u);
}

} // namespace
