#!/bin/sh
# Farm end-to-end, run by ctest (cli_farm_e2e) and CI:
#
#  1. `--farm 4` writes one "anvil-events-v1" stream per worker, and
#     every stream plus the merged metrics/stats artifacts validate
#     against the schemas under docs/schemas/,
#  2. anvil_merge over the on-disk worker streams reproduces the
#     in-process merge byte-for-byte (metrics file, summary, report),
#     independent of the order the streams are fed in,
#  3. the farm merged report is byte-identical to the sequential
#     N-seed union: each seed run alone with --events, then merged,
#  4. `--farm 1` matches a plain single `--sim` run at the same seed,
#     down to the event stream itself (wall-clock fields excluded),
#  5. farm flag validation is a usage error, not a silent ignore.
#
# Usage: cli_farm_e2e.sh <anvilc> <repo-root> <json_validate> <anvil_merge>
set -e
ANVILC="$1"
SRC="$2"
VALIDATE="$3"
MERGE="$4"
SCHEMAS="$SRC/docs/schemas"
DESIGN="$SRC/examples/quickstart.anvil"

# The deterministic closure block: everything from sim-summary on,
# minus the wall-clock-bearing stats line.
covblock() {
    sed -n '/^sim-summary /,$p' "$1" | grep -v '^stats-json '
}

# --- 1. Farm run + schema validation -------------------------------------

"$ANVILC" "$DESIGN" --sim 300 --farm 4 --seed-base 11 \
    --cov --stats-json --metrics farm4.metrics.json \
    --events farm4.events > farm4.log 2> farm4.err
for w in 0 1 2 3; do
    test -s "farm4.events.$w"
    "$VALIDATE" --lines "$SCHEMAS/events.schema.json" "farm4.events.$w"
done
grep '^stats-json ' farm4.log | sed 's/^stats-json //' \
    > farm4.stats.json
"$VALIDATE" "$SCHEMAS/stats.schema.json" farm4.stats.json
"$VALIDATE" "$SCHEMAS/metrics.schema.json" farm4.metrics.json
grep -q '"workers":4' farm4.stats.json
grep -q '^farm: 4 worker(s), 300 cycle(s) each, seeds 11..14' farm4.log
echo "farm worker streams and merged artifacts validate"

# --- 2. anvil_merge reproduces the in-process merge ----------------------

"$MERGE" --cov --metrics merge4.metrics.json \
    farm4.events.0 farm4.events.1 farm4.events.2 farm4.events.3 \
    > merge4.log 2> /dev/null
cmp farm4.metrics.json merge4.metrics.json
covblock farm4.log > farm4.block
covblock merge4.log > merge4.block
cmp farm4.block merge4.block

# Stream order must not matter — completion order of real workers
# never does.
"$MERGE" --cov --metrics merge4r.metrics.json \
    farm4.events.3 farm4.events.1 farm4.events.0 farm4.events.2 \
    > merge4r.log 2> /dev/null
cmp merge4.metrics.json merge4r.metrics.json
cmp merge4.log merge4r.log
echo "anvil_merge reproduces the in-process merge, order-independent"

# --- 3. Farm == sequential N-seed union ----------------------------------

"$ANVILC" "$DESIGN" --sim 300 --farm 2 --seed-base 11 \
    --cov --stats-json --metrics farm2.metrics.json \
    --events farm2.events > farm2.log 2> /dev/null
"$ANVILC" "$DESIGN" --sim 300 --seed 11 --cov --stats-json \
    --events seq11.events > /dev/null 2>&1
"$ANVILC" "$DESIGN" --sim 300 --seed 12 --cov --stats-json \
    --events seq12.events > /dev/null 2>&1
"$MERGE" --cov --metrics seq2.metrics.json seq11.events seq12.events \
    > seq2.log 2> /dev/null
covblock farm2.log > farm2.block
covblock seq2.log > seq2.block
cmp farm2.block seq2.block
"$VALIDATE" --canon farm2.metrics.json --drop timers_ns > farm2.canon
"$VALIDATE" --canon seq2.metrics.json --drop timers_ns > seq2.canon
cmp farm2.canon seq2.canon
echo "farm merge is byte-identical to the sequential seed union"

# --- 4. Farm N=1 == a plain single run -----------------------------------

"$ANVILC" "$DESIGN" --sim 300 --farm 1 --seed-base 11 \
    --cov --stats-json --metrics farm1.metrics.json \
    --events farm1.events > farm1.log 2> /dev/null
"$ANVILC" "$DESIGN" --sim 300 --seed 11 --cov --stats-json \
    --metrics single.metrics.json --events single.events \
    > single.log 2> /dev/null

covblock farm1.log > farm1.block
covblock single.log > single.block
cmp farm1.block single.block

"$VALIDATE" --canon farm1.metrics.json --drop timers_ns \
    > farm1.mcanon
"$VALIDATE" --canon single.metrics.json --drop timers_ns \
    > single.mcanon
cmp farm1.mcanon single.mcanon

grep '^stats-json ' farm1.log | sed 's/^stats-json //' \
    > farm1.stats.json
grep '^stats-json ' single.log | sed 's/^stats-json //' \
    > single.stats.json
"$VALIDATE" --canon farm1.stats.json \
    --drop wall_ns,cycles_per_sec,workers > farm1.scanon
"$VALIDATE" --canon single.stats.json \
    --drop wall_ns,cycles_per_sec > single.scanon
cmp farm1.scanon single.scanon

# Even the raw event streams agree once wall-clock noise (timer
# events, the run_end wall) is stripped.
grep -v '"e":"timer"' single.events \
    | sed 's/"wall_ns":[0-9]*/"wall_ns":0/' > single.events.norm
grep -v '"e":"timer"' farm1.events.0 \
    | sed 's/"wall_ns":[0-9]*/"wall_ns":0/' > farm1.events.norm
cmp single.events.norm farm1.events.norm
echo "farm 1 worker is byte-identical to a plain single run"

# --- 5. Flag validation --------------------------------------------------

set +e
"$ANVILC" "$DESIGN" --farm 2 2> farm_usage.log
test "$?" -eq 2 || { echo "--farm without --sim not rejected" >&2; \
                     exit 1; }
grep -q 'requires --sim' farm_usage.log
"$ANVILC" "$DESIGN" --sim 50 --seed-base 3 2> seedbase_usage.log
test "$?" -eq 2 || { echo "--seed-base without --farm not rejected" \
                     >&2; exit 1; }
grep -q 'requires --farm' seedbase_usage.log
set -e
echo "farm flag validation rejects inconsistent invocations"
