/**
 * @file
 * AXI-Lite routers: the demux routes by address to 8 slaves, the mux
 * arbitrates 8 masters fairly, for both baseline and Anvil versions.
 */

#include <gtest/gtest.h>

#include "designs/designs.h"
#include "harness.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::compileDesign;

namespace {

/** Simple always-ready slave model: b = 1, r = addr + 7. */
class SlaveModel
{
  public:
    explicit SlaveModel(std::string prefix)
        : _p(std::move(prefix))
    {
    }

    int writes = 0;
    int reads = 0;
    uint64_t last_aw = 0, last_w = 0;

    void drive(rtl::Sim &sim)
    {
        sim.setInput(_p + "_aw_ack", 1);
        sim.setInput(_p + "_w_ack", 1);
        sim.setInput(_p + "_ar_ack", 1);
        bool aw = sim.peek(_p + "_aw_valid").any();
        bool w = sim.peek(_p + "_w_valid").any();
        if (aw && w) {
            last_aw = sim.peek(_p + "_aw_data").toUint64();
            last_w = sim.peek(_p + "_w_data").toUint64();
            _b_pending = true;
        }
        sim.setInput(_p + "_b_data", 1);
        sim.setInput(_p + "_b_valid", _b_pending ? 1 : 0);
        if (_b_pending && sim.peek(_p + "_b_ack").any()) {
            _b_pending = false;
            writes++;
        }
        bool ar = sim.peek(_p + "_ar_valid").any();
        if (ar) {
            _r_data = sim.peek(_p + "_ar_data").toUint64() + 7;
            _r_pending = true;
        }
        sim.setInput(_p + "_r_data", BitVec(33, _r_data));
        sim.setInput(_p + "_r_valid", _r_pending ? 1 : 0);
        if (_r_pending && sim.peek(_p + "_r_ack").any()) {
            _r_pending = false;
            reads++;
        }
    }

  private:
    std::string _p;
    bool _b_pending = false;
    bool _r_pending = false;
    uint64_t _r_data = 0;
};

/** Issue one write on a master-facing port; true on completion. */
bool
masterWrite(rtl::Sim &sim, const std::string &p, uint64_t addr,
            uint64_t data, std::vector<SlaveModel *> slaves,
            int timeout = 200)
{
    sim.setInput(p + "_aw_data", BitVec(32, addr));
    sim.setInput(p + "_aw_valid", 1);
    sim.setInput(p + "_w_data", BitVec(32, data));
    sim.setInput(p + "_w_valid", 1);
    sim.setInput(p + "_b_ack", 1);
    bool aw_done = false, w_done = false;
    for (int i = 0; i < timeout; i++) {
        for (auto *s : slaves)
            s->drive(sim);
        if (sim.peek(p + "_aw_ack").any() &&
            sim.peek(p + "_aw_valid").any())
            aw_done = true;
        if (sim.peek(p + "_w_ack").any() &&
            sim.peek(p + "_w_valid").any())
            w_done = true;
        bool b = sim.peek(p + "_b_valid").any();
        sim.step();
        if (aw_done)
            sim.setInput(p + "_aw_valid", 0);
        if (w_done)
            sim.setInput(p + "_w_valid", 0);
        if (b) {
            sim.setInput(p + "_b_ack", 0);
            return true;
        }
    }
    return false;
}

/** Issue one read; returns the r payload or ~0 on timeout. */
uint64_t
masterRead(rtl::Sim &sim, const std::string &p, uint64_t addr,
           std::vector<SlaveModel *> slaves, int timeout = 200)
{
    sim.setInput(p + "_ar_data", BitVec(32, addr));
    sim.setInput(p + "_ar_valid", 1);
    sim.setInput(p + "_r_ack", 1);
    bool ar_done = false;
    for (int i = 0; i < timeout; i++) {
        for (auto *s : slaves)
            s->drive(sim);
        if (sim.peek(p + "_ar_ack").any() &&
            sim.peek(p + "_ar_valid").any())
            ar_done = true;
        bool r = sim.peek(p + "_r_valid").any();
        uint64_t data = sim.peek(p + "_r_data").toUint64();
        sim.step();
        if (ar_done)
            sim.setInput(p + "_ar_valid", 0);
        if (r) {
            sim.setInput(p + "_r_ack", 0);
            return data;
        }
    }
    return ~0ull;
}

class AxiDemuxTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildAxiDemuxBaseline();
        std::string errs;
        auto mod = compileDesign(anvilAxiDemuxSource(), "axi_demux",
                                 &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(AxiDemuxTest, RoutesWritesByAddress)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    std::vector<SlaveModel> slaves;
    std::vector<SlaveModel *> ptrs;
    for (int i = 0; i < 8; i++)
        slaves.emplace_back("s" + std::to_string(i));
    for (auto &s : slaves)
        ptrs.push_back(&s);

    for (int i = 0; i < 8; i++) {
        uint64_t addr = (static_cast<uint64_t>(i) << 29) | 0x100;
        ASSERT_TRUE(masterWrite(sim, "m", addr, 0xbeef00 + i, ptrs))
            << "slave " << i;
        EXPECT_EQ(slaves[i].writes, 1) << "slave " << i;
        EXPECT_EQ(slaves[i].last_w, 0xbeef00u + i);
    }
}

TEST_P(AxiDemuxTest, RoutesReadsByAddress)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    std::vector<SlaveModel> slaves;
    std::vector<SlaveModel *> ptrs;
    for (int i = 0; i < 8; i++)
        slaves.emplace_back("s" + std::to_string(i));
    for (auto &s : slaves)
        ptrs.push_back(&s);

    for (int i = 0; i < 8; i++) {
        uint64_t addr = (static_cast<uint64_t>(i) << 29) | (8u * i);
        uint64_t got = masterRead(sim, "m", addr, ptrs);
        EXPECT_EQ(got, addr + 7) << "slave " << i;
        EXPECT_EQ(slaves[i].reads, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, AxiDemuxTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

class AxiMuxTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildAxiMuxBaseline();
        std::string errs;
        auto mod = compileDesign(anvilAxiMuxSource(), "axi_mux", &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(AxiMuxTest, SingleMasterWriteAndRead)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    SlaveModel slave("s");

    ASSERT_TRUE(masterWrite(sim, "m3", 0x40, 0x1234, {&slave}));
    EXPECT_EQ(slave.writes, 1);
    EXPECT_EQ(slave.last_aw, 0x40u);
    EXPECT_EQ(slave.last_w, 0x1234u);

    uint64_t got = masterRead(sim, "m5", 0x80, {&slave});
    EXPECT_EQ(got, 0x80u + 7);
}

TEST_P(AxiMuxTest, FairArbitrationAcrossMasters)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    SlaveModel slave("s");

    // All masters request simultaneously; each must eventually be
    // served (round-robin fairness).
    for (int i = 0; i < 8; i++) {
        std::string p = "m" + std::to_string(i);
        sim.setInput(p + "_aw_data", BitVec(32, 0x1000 + i));
        sim.setInput(p + "_aw_valid", 1);
        sim.setInput(p + "_w_data", BitVec(32, 0x2000 + i));
        sim.setInput(p + "_w_valid", 1);
        sim.setInput(p + "_b_ack", 1);
    }
    std::vector<int> served(8, 0);
    auto all_served = [&] {
        for (int v : served)
            if (!v)
                return false;
        return true;
    };
    for (int cyc = 0; cyc < 600 && !all_served(); cyc++) {
        slave.drive(sim);
        for (int i = 0; i < 8; i++) {
            std::string p = "m" + std::to_string(i);
            if (sim.peek(p + "_b_valid").any())
                served[i]++;
        }
        sim.step();
        for (int i = 0; i < 8; i++) {
            std::string p = "m" + std::to_string(i);
            if (served[i]) {
                sim.setInput(p + "_aw_valid", 0);
                sim.setInput(p + "_w_valid", 0);
            }
        }
    }
    EXPECT_EQ(slave.writes, 8);
    for (int i = 0; i < 8; i++)
        EXPECT_GE(served[i], 1) << "master " << i << " starved";
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, AxiMuxTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

} // namespace
