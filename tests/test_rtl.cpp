/**
 * @file
 * RTL substrate tests: interpreter semantics (two-phase updates,
 * wire evaluation, ROMs, instances, combinational-loop detection),
 * the SystemVerilog printer, and codegen port-lowering rules (§6.2).
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "codegen/rtl_gen.h"
#include "codegen/sv_printer.h"
#include "rtl/interp.h"
#include "rtl/wave.h"
#include "designs/designs.h"
#include <algorithm>

using namespace anvil;
using namespace anvil::rtl;

namespace {

TEST(Interp, RegisterUpdatesAreSynchronous)
{
    auto m = std::make_shared<Module>();
    m->name = "swap";
    auto a = m->reg("a", 8, 1);
    auto b = m->reg("b", 8, 2);
    // Swap every cycle: both updates read the cycle-start values.
    m->update("a", cst(1, 1), b);
    m->update("b", cst(1, 1), a);

    Sim sim(m);
    EXPECT_EQ(sim.peek("a").toUint64(), 1u);
    sim.step();
    EXPECT_EQ(sim.peek("a").toUint64(), 2u);
    EXPECT_EQ(sim.peek("b").toUint64(), 1u);
    sim.step();
    EXPECT_EQ(sim.peek("a").toUint64(), 1u);
}

TEST(Interp, EnableGatesUpdates)
{
    auto m = std::make_shared<Module>();
    m->name = "counter";
    auto en = m->input("en", 1);
    auto c = m->reg("c", 8);
    m->update("c", en, c + cst(8, 1));
    Sim sim(m);
    sim.setInput("en", 0);
    sim.step(3);
    EXPECT_EQ(sim.peek("c").toUint64(), 0u);
    sim.setInput("en", 1);
    sim.step(3);
    EXPECT_EQ(sim.peek("c").toUint64(), 3u);
}

TEST(Interp, WiresRecomputeOnInputChange)
{
    auto m = std::make_shared<Module>();
    m->name = "comb";
    auto x = m->input("x", 8);
    m->wire("y", x + cst(8, 1));
    Sim sim(m);
    sim.setInput("x", 10);
    EXPECT_EQ(sim.peek("y").toUint64(), 11u);
    // Poking inputs invalidates cached evaluations within the cycle.
    sim.setInput("x", 20);
    EXPECT_EQ(sim.peek("y").toUint64(), 21u);
}

TEST(Interp, RomLookup)
{
    auto table = std::make_shared<std::vector<BitVec>>();
    for (int i = 0; i < 16; i++)
        table->push_back(BitVec(8, i * 3));
    auto m = std::make_shared<Module>();
    m->name = "rom";
    auto addr = m->input("addr", 4);
    m->wire("q", romLookup(table, addr, 8));
    Sim sim(m);
    sim.setInput("addr", 5);
    EXPECT_EQ(sim.peek("q").toUint64(), 15u);
    sim.setInput("addr", 15);
    EXPECT_EQ(sim.peek("q").toUint64(), 45u);
}

TEST(Interp, InstancesConnectHierarchically)
{
    auto child = std::make_shared<Module>();
    child->name = "adder";
    auto ca = child->input("a", 8);
    auto cb = child->input("b", 8);
    child->output("sum", 8);
    child->wire("sum", ca + cb);

    auto top = std::make_shared<Module>();
    top->name = "top";
    auto x = top->input("x", 8);
    Instance inst;
    inst.name = "u0";
    inst.module = child;
    inst.inputs["a"] = x;
    inst.inputs["b"] = cst(8, 7);
    inst.outputs["x_plus_7"] = "sum";
    top->instances.push_back(std::move(inst));
    top->output("y", 8);
    top->wire("y", ref("x_plus_7", 8) + cst(8, 1));

    Sim sim(top);
    sim.setInput("x", 5);
    EXPECT_EQ(sim.peek("y").toUint64(), 13u);
    EXPECT_EQ(sim.peek("u0.sum").toUint64(), 12u);
}

TEST(Interp, DetectsCombinationalLoops)
{
    auto m = std::make_shared<Module>();
    m->name = "loop";
    m->wire("a", ref("b", 1));
    m->wire("b", ref("a", 1));
    Sim sim(m);
    EXPECT_THROW(sim.peek("a"), std::runtime_error);
}

TEST(Interp, CountsToggles)
{
    auto m = std::make_shared<Module>();
    m->name = "tgl";
    auto c = m->reg("c", 1);
    m->update("c", cst(1, 1), ~c);
    Sim sim(m);
    sim.step(10);
    EXPECT_GE(sim.totalToggles(), 10u);
}

TEST(Interp, StateBitsCounted)
{
    auto m = std::make_shared<Module>();
    m->name = "sb";
    m->reg("a", 32);
    m->reg("b", 8);
    Sim sim(m);
    EXPECT_EQ(sim.stateBits(), 40);
}

TEST(Wave, RecordsAndRenders)
{
    auto m = std::make_shared<Module>();
    m->name = "w";
    auto c = m->reg("c", 4);
    m->update("c", cst(1, 1), c + cst(4, 1));
    Sim sim(m);
    WaveRecorder rec(sim, {"c"});
    for (int i = 0; i < 4; i++) {
        rec.sample();
        sim.step();
    }
    auto &samples = rec.samplesOf("c");
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[3].toUint64(), 3u);
    EXPECT_NE(rec.render().find("c"), std::string::npos);
}

// --- Codegen port lowering (§6.2) ----------------------------------------

TEST(Codegen, DynamicSyncGeneratesValidAndAck)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1), right b : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { set r := recv ep.a >> send ep.b (*r) >> cycle 1 }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    auto mod = out.module("p");
    // Receiving side of `a`: data+valid in, ack out.
    EXPECT_NE(mod->findPort("ep_a_data"), nullptr);
    EXPECT_NE(mod->findPort("ep_a_valid"), nullptr);
    EXPECT_NE(mod->findPort("ep_a_ack"), nullptr);
    EXPECT_TRUE(mod->findPort("ep_a_data")->is_input);
    EXPECT_FALSE(mod->findPort("ep_a_ack")->is_input);
    // Sending side of `b`.
    EXPECT_FALSE(mod->findPort("ep_b_data")->is_input);
    EXPECT_FALSE(mod->findPort("ep_b_valid")->is_input);
    EXPECT_TRUE(mod->findPort("ep_b_ack")->is_input);
}

TEST(Codegen, StaticSyncOmitsHandshakePorts)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1) @#1-@#1 }
proc p(ep : left c) {
    reg r : logic[8];
    loop { set r := recv ep.a }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    auto mod = out.module("p");
    EXPECT_NE(mod->findPort("ep_a_data"), nullptr);
    EXPECT_EQ(mod->findPort("ep_a_valid"), nullptr);
    EXPECT_EQ(mod->findPort("ep_a_ack"), nullptr);
}

TEST(Codegen, MixedSyncOmitsOnlyOneSide)
{
    // Sender static, receiver dynamic: valid omitted, ack kept.
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1) @dyn-@#1 }
proc p(ep : left c) {
    reg r : logic[8];
    loop { set r := recv ep.a >> cycle 1 }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    auto mod = out.module("p");
    EXPECT_EQ(mod->findPort("ep_a_valid"), nullptr);
    EXPECT_NE(mod->findPort("ep_a_ack"), nullptr);
}

TEST(Codegen, NoLifetimeMachineryGenerated)
{
    // The type system is static: no lifetime counters appear in the
    // output (no register mentions "lifetime"/"loan").
    CompileOutput out =
        compileAnvil(designs::anvilTopSafeSource(), {.top = "top_safe"});
    ASSERT_TRUE(out.ok);
    for (const auto &r : out.module("top_safe")->regs) {
        EXPECT_EQ(r.name.find("lifetime"), std::string::npos);
        EXPECT_EQ(r.name.find("loan"), std::string::npos);
    }
}

TEST(SvPrinter, EmitsWellFormedModule)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { set r := recv ep.a >> cycle 1 }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    std::string sv = printSystemVerilog(*out.module("p"));
    EXPECT_NE(sv.find("module p ("), std::string::npos);
    EXPECT_NE(sv.find("input logic clk"), std::string::npos);
    EXPECT_NE(sv.find("input logic [7:0] ep_a_data"),
              std::string::npos);
    EXPECT_NE(sv.find("output logic [0:0] ep_a_ack"),
              std::string::npos);
    EXPECT_NE(sv.find("always_ff @(posedge clk)"), std::string::npos);
    EXPECT_NE(sv.find("endmodule"), std::string::npos);
    // Balanced parens overall.
    EXPECT_EQ(std::count(sv.begin(), sv.end(), '('),
              std::count(sv.begin(), sv.end(), ')'));
}

TEST(SvPrinter, HierarchyEmitsChildrenOnce)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1) }
proc child(ep : left c) {
    reg r : logic[8];
    loop { set r := recv ep.a >> cycle 1 }
}
proc top() {
    chan l -- rr : c;
    spawn child(l);
    loop { send rr.a (5) >> cycle 1 }
}
)", {.top = "top"});
    ASSERT_TRUE(out.ok) << out.diags.render();
    std::string sv = out.systemverilog;
    // child printed before top, exactly once.
    size_t child_pos = sv.find("module child");
    size_t top_pos = sv.find("module top");
    ASSERT_NE(child_pos, std::string::npos);
    ASSERT_NE(top_pos, std::string::npos);
    EXPECT_LT(child_pos, top_pos);
    EXPECT_EQ(sv.find("module child", child_pos + 1),
              std::string::npos);
    EXPECT_NE(sv.find("child child_0"), std::string::npos);
}

TEST(SvPrinter, RomsBecomeLocalparams)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic[8]@#1), right b : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { set r := sbox(recv ep.a) >> send ep.b (*r) >> cycle 1 }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    std::string sv = printSystemVerilog(*out.module("p"));
    EXPECT_NE(sv.find("localparam"), std::string::npos);
    EXPECT_NE(sv.find("_rom0"), std::string::npos);
}

} // namespace
