/**
 * @file
 * CVA6-style MMU designs: TLB hit/miss behaviour and the PTW's
 * dynamic-latency three-level walk, for both the handwritten
 * baselines and the Anvil-compiled versions.
 */

#include <gtest/gtest.h>

#include <map>

#include "designs/designs.h"
#include "harness.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::compileDesign;
using anvil::testing::transact;

namespace {

/** Insert a TLB entry through the upd port. */
void
tlbInsert(rtl::Sim &sim, uint64_t vpn, uint64_t ppn)
{
    sim.setInput("io_upd_data", BitVec(64, (vpn << 32) | ppn));
    sim.setInput("io_upd_valid", 1);
    sim.step();
    sim.setInput("io_upd_valid", 0);
}

/** One TLB lookup; returns {hit, ppn}. */
std::pair<bool, uint64_t>
tlbLookup(rtl::Sim &sim, uint64_t vpn)
{
    int latency = -1;
    BitVec res = transact(sim, "io_req", "io_res", BitVec(32, vpn),
                          &latency);
    return {res.bit(32), res.slice(0, 32).toUint64()};
}

class TlbTest : public ::testing::TestWithParam<bool>
{
  public:
    // Param false: baseline; true: Anvil-compiled.
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildTlbBaseline();
        std::string errs;
        auto mod = compileDesign(anvilTlbSource(), "tlb", &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(TlbTest, MissThenHit)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    sim.setInput("io_upd_valid", 0);
    sim.setInput("io_req_valid", 0);
    sim.step(2);

    auto [hit0, ppn0] = tlbLookup(sim, 0x1234);
    EXPECT_FALSE(hit0);

    tlbInsert(sim, 0x1234, 0xabcd);
    auto [hit1, ppn1] = tlbLookup(sim, 0x1234);
    EXPECT_TRUE(hit1);
    EXPECT_EQ(ppn1, 0xabcdu);

    auto [hit2, ppn2] = tlbLookup(sim, 0x9999);
    EXPECT_FALSE(hit2);
}

TEST_P(TlbTest, EightEntriesAndEviction)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    sim.setInput("io_upd_valid", 0);
    sim.setInput("io_req_valid", 0);
    sim.step(2);

    for (uint64_t i = 0; i < 8; i++)
        tlbInsert(sim, 0x100 + i, 0x500 + i);
    for (uint64_t i = 0; i < 8; i++) {
        auto [hit, ppn] = tlbLookup(sim, 0x100 + i);
        EXPECT_TRUE(hit) << "entry " << i;
        EXPECT_EQ(ppn, 0x500 + i);
    }
    // A ninth insert evicts the round-robin victim (entry 0).
    tlbInsert(sim, 0x200, 0x700);
    auto [hit_new, ppn_new] = tlbLookup(sim, 0x200);
    EXPECT_TRUE(hit_new);
    EXPECT_EQ(ppn_new, 0x700u);
    auto [hit_old, ppn_old] = tlbLookup(sim, 0x100);
    EXPECT_FALSE(hit_old);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, TlbTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

// ---------------------------------------------------------------------
// PTW
// ---------------------------------------------------------------------

/**
 * A simple page-table memory model: 8-byte PTEs addressed physically.
 * Responds to mreq/mres with a configurable latency.
 */
class PtwMemory
{
  public:
    std::map<uint64_t, uint64_t> ptes;
    int latency = 2;

    /** Drive one cycle of the memory side; call before sim.step(). */
    void drive(rtl::Sim &sim)
    {
        bool req = sim.peek("m_mreq_valid").any();
        sim.setInput("m_mreq_ack", req && _count < 0 ? 1 : 0);
        if (req && _count < 0) {
            _addr = sim.peek("m_mreq_data").toUint64();
            _count = latency;
        }
        if (_count == 0) {
            sim.setInput("m_mres_valid", 1);
            auto it = ptes.find(_addr);
            sim.setInput("m_mres_data",
                         BitVec(64, it != ptes.end() ? it->second : 0));
            if (sim.peek("m_mres_ack").any())
                _count = -1;
        } else {
            sim.setInput("m_mres_valid", 0);
            if (_count > 0)
                _count--;
        }
    }

  private:
    int _count = -1;
    uint64_t _addr = 0;
};

/** PTE encoding: valid bit 0, perms bits 3:1, ppn from bit 10. */
uint64_t
makePte(uint64_t ppn, bool leaf, bool valid = true)
{
    return (ppn << 10) | (leaf ? 0xe : 0) | (valid ? 1 : 0);
}

struct WalkResult
{
    uint64_t pte = 0;
    int latency = 0;
};

WalkResult
walk(rtl::Sim &sim, PtwMemory &mem, uint64_t vpn, int timeout = 300)
{
    WalkResult r;
    sim.setInput("cpu_req_data", BitVec(27, vpn));
    sim.setInput("cpu_req_valid", 1);
    sim.setInput("cpu_res_ack", 1);
    int start = -1;
    for (int i = 0; i < timeout; i++) {
        mem.drive(sim);
        bool req_fire = sim.peek("cpu_req_ack").any() &&
            sim.peek("cpu_req_valid").any();
        bool res_fire = sim.peek("cpu_res_valid").any();
        uint64_t data = sim.peek("cpu_res_data").toUint64();
        if (req_fire && start < 0)
            start = static_cast<int>(sim.cycle());
        if (res_fire && start >= 0) {
            r.pte = data;
            r.latency = static_cast<int>(sim.cycle()) - start;
            sim.step();
            sim.setInput("cpu_req_valid", 0);
            sim.setInput("cpu_res_ack", 0);
            return r;
        }
        sim.step();
        if (start >= 0)
            sim.setInput("cpu_req_valid", 0);
    }
    r.latency = -1;
    return r;
}

class PtwTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildPtwBaseline();
        std::string errs;
        auto mod = compileDesign(anvilPtwSource(), "ptw", &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(PtwTest, ThreeLevelWalk)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    PtwMemory mem;

    // vpn = {l1=1, l2=2, l3=3}.
    uint64_t vpn = (1ull << 18) | (2ull << 9) | 3;
    // Level 1 at 4096 + 1*8: pointer to table at ppn 2.
    mem.ptes[4096 + 8] = makePte(2, false);
    // Level 2 at (2<<12) + 2*8: pointer to table at ppn 3.
    mem.ptes[(2ull << 12) + 16] = makePte(3, false);
    // Level 3 at (3<<12) + 3*8: leaf with ppn 0x77.
    mem.ptes[(3ull << 12) + 24] = makePte(0x77, true);

    auto r = walk(sim, mem, vpn);
    ASSERT_GE(r.latency, 0) << "walk timed out";
    EXPECT_EQ(r.pte, makePte(0x77, true));
}

TEST_P(PtwTest, SuperpageLeafIsFaster)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    PtwMemory mem;

    // 1G superpage: leaf at level 1 for vpn l1=4.
    mem.ptes[4096 + 4 * 8] = makePte(0x88, true);
    // Full walk for vpn l1=1.
    mem.ptes[4096 + 8] = makePte(2, false);
    mem.ptes[(2ull << 12) + 0] = makePte(3, false);
    mem.ptes[(3ull << 12) + 0] = makePte(0x99, true);

    auto super = walk(sim, mem, 4ull << 18);
    auto full = walk(sim, mem, 1ull << 18);
    ASSERT_GE(super.latency, 0);
    ASSERT_GE(full.latency, 0);
    EXPECT_EQ(super.pte, makePte(0x88, true));
    EXPECT_EQ(full.pte, makePte(0x99, true));
    // Dynamic timing: the superpage walk is roughly one third.
    EXPECT_LT(super.latency, full.latency);
}

TEST_P(PtwTest, FaultReturnsZero)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    PtwMemory mem;
    // No PTEs mapped: the level-1 entry is invalid.
    auto r = walk(sim, mem, 5ull << 18);
    ASSERT_GE(r.latency, 0);
    EXPECT_EQ(r.pte, 0u);
}

TEST_P(PtwTest, LatencyScalesWithMemory)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    PtwMemory mem;
    mem.ptes[4096] = makePte(2, false);
    mem.ptes[(2ull << 12)] = makePte(3, false);
    mem.ptes[(3ull << 12)] = makePte(0x42, true);

    mem.latency = 1;
    auto fast = walk(sim, mem, 0);
    mem.latency = 8;
    auto slow = walk(sim, mem, 0);
    ASSERT_GE(fast.latency, 0);
    ASSERT_GE(slow.latency, 0);
    EXPECT_GT(slow.latency, fast.latency + 12);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, PtwTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

} // namespace
