/**
 * @file
 * Replay-as-stimulus tests: a seeded constrained-random AXI run is
 * dumped, parsed back, and re-executed through ReplayDriver — the
 * replay must reproduce the original bit for bit (final registers,
 * scoreboard totals, coverage summary, zero replay-diff failures)
 * without the original stimulus code, and a replay dump must be
 * byte-identical to the recording.  A divergent design variant is
 * caught by ReplayMonitor with cycle numbers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "axi_bench.h"
#include "designs/designs.h"
#include "tb/testbench.h"
#include "trace/replay.h"
#include "trace/vcd_reader.h"

using namespace anvil;
using namespace anvil::trace;

namespace {

struct Recorded
{
    std::string vcd;
    std::vector<BitVec> final_regs;
    uint64_t toggles = 0;
    uint64_t w_matched = 0;
    std::string cov_json;
};

/** Record a seeded randomized demux run with full VCD + coverage. */
Recorded
recordDemuxRun(uint64_t seed, uint64_t cycles)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), seed);
    auto d = anvil::testing::attachDemuxBfmBench(bench);
    tb::Coverage &cov = bench.coverage();
    std::ostringstream os;
    bench.attachVcd(os);
    tb::TbResult r = bench.run(cycles);
    EXPECT_TRUE(r.ok()) << r.summary();
    return {os.str(), bench.sim().captureRegs(),
            bench.sim().totalToggles(), d.wsb->matched(),
            cov.summaryJson()};
}

TEST(TraceReplay, ReplayReproducesARecordedRandomRun)
{
    const uint64_t kCycles = 600;
    Recorded rec = recordDemuxRun(411, kCycles);

    std::istringstream in(rec.vcd);
    Trace t = VcdReader::read(in);
    EXPECT_EQ(t.startTime(), 0u);

    // Replay without any of the original stimulus code: the trace
    // drives the inputs, the protocol scoreboards check again, and
    // the replay monitor diffs every recorded non-input signal.
    tb::Testbench bench(designs::buildAxiDemuxBaseline(),
                        /*seed=*/999);   // seed must not matter
    auto drv = std::make_unique<ReplayDriver>(t, bench.sim());
    ReplayDriver &driver = *drv;
    bench.addDriver(std::move(drv));
    EXPECT_TRUE(driver.missingInputs().empty());
    EXPECT_EQ(driver.cyclesAvailable(), kCycles);

    auto monitor =
        std::make_unique<ReplayMonitor>(t, bench.sim());
    ReplayMonitor &mon = *monitor;
    bench.addMonitor(std::move(monitor));

    tb::Coverage &cov = bench.coverage();
    std::ostringstream os2;
    bench.attachVcd(os2);
    tb::TbResult r = bench.run(kCycles);

    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_GT(mon.compared(), 0u);
    EXPECT_GT(mon.signalsChecked(), 30u);

    // Bit-identical re-execution: registers, toggles, coverage, and
    // even the waveform dump.
    EXPECT_EQ(bench.sim().captureRegs(), rec.final_regs);
    EXPECT_EQ(bench.sim().totalToggles(), rec.toggles);
    EXPECT_EQ(cov.summaryJson(), rec.cov_json);
    EXPECT_EQ(os2.str(), rec.vcd);
}

TEST(TraceReplay, ReplayedScoreboardsMatchTheOriginal)
{
    const uint64_t kCycles = 500;
    Recorded rec = recordDemuxRun(77, kCycles);

    std::istringstream in(rec.vcd);
    Trace t = VcdReader::read(in);

    // Re-attach only the *checking* half of the bench; stimulus
    // comes from the trace.
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 1);
    uint64_t cycles = attachReplay(bench, t);
    EXPECT_EQ(cycles, kCycles);

    // The protocol checks from the shared bench need the scoreboards
    // but no BFMs; reuse the check body via a fresh demux bench is
    // not possible without drivers, so check the w-data stream only.
    tb::Scoreboard &wsb = bench.addScoreboard("w-data");
    bench.check("axi-replay", [&wsb](tb::Testbench &tb2) {
        rtl::Sim &s = tb2.sim();
        uint64_t cyc = s.cycle();
        if (s.peek("m_w_valid").any() && s.peek("m_w_ack").any())
            wsb.expect(s.peek("m_w_data"));
        for (int i = 0; i < 8; i++) {
            std::string p = "s" + std::to_string(i);
            if (s.peek(p + "_aw_valid").any() &&
                s.peek(p + "_aw_ack").any() &&
                s.peek(p + "_w_ack").any())
                wsb.observed(cyc, s.peek(p + "_w_data"));
        }
    });

    tb::TbResult r = bench.run(cycles);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(wsb.matched(), rec.w_matched);
}

TEST(TraceReplay, DivergingDesignIsCaughtWithCycleNumbers)
{
    Recorded rec = recordDemuxRun(52, 400);
    std::istringstream in(rec.vcd);
    Trace t = VcdReader::read(in);

    // Replay against a *different* design: slave 1's W data is
    // corrupted, so the re-simulation diverges from the recording.
    auto mod = designs::buildAxiDemuxBaseline();
    for (auto &w : mod->wires)
        if (w.name == "s1_w_data")
            w.expr = rtl::ref("wreg", 32) ^ rtl::cst(32, 0x80);
    tb::Testbench bench(mod, 1);
    uint64_t cycles = attachReplay(bench, t);
    tb::TbResult r = bench.run(cycles);

    ASSERT_FALSE(r.ok());
    bool saw_diff = false;
    for (const auto &f : r.failures) {
        if (f.check != "replay-diff")
            continue;
        saw_diff = true;
        // The divergence names the signal.
        EXPECT_NE(f.message.find("s1_w_data"), std::string::npos)
            << f.message;
        break;
    }
    EXPECT_TRUE(saw_diff);
}

} // namespace
