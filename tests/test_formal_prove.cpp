/**
 * @file
 * k-induction prover tests: the inferred ack-within contracts are
 * proved on the annotated eval designs (TLB, systolic, and the
 * wide-counter Listing 2 case where the explicit-state BMC exhausts
 * its budget), quickstart's stable/hold obligations are proved
 * against an arbitrary environment, verdicts and counterexample VCD
 * bytes are identical across sweep modes, the compiled safety
 * automata agree cycle-for-cycle with trace::ChannelChecker, and
 * budgets degrade to Unknown — never to a wrong verdict.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "formal/contracts.h"
#include "formal/kinduction.h"
#include "formal/property.h"
#include "rtl/interp.h"
#include "trace/contracts.h"
#include "trace/vcd_reader.h"
#include "verif/bmc.h"

#ifndef ANVIL_TEST_DIR
#define ANVIL_TEST_DIR "tests"
#endif

using namespace anvil;
using formal::ObligationOutcome;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct Proven
{
    CompileOutput out;
    formal::ContractSet typed;
    formal::InstrumentedDesign inst;
    formal::ProveResult res;
};

Proven
proveSource(const std::string &source,
            const formal::ProveOptions &opts = {})
{
    Proven p;
    p.out = compileAnvil(source);
    EXPECT_TRUE(p.out.ok) << p.out.diags.render();
    p.typed = formal::inferContracts(p.out.program, p.out.top);
    p.inst = formal::compileProperties(*p.out.module(p.out.top),
                                       p.typed.obligations());
    p.res = formal::prove(p.inst, opts);
    return p;
}

const ObligationOutcome *
outcomeOf(const formal::ProveResult &res, const std::string &channel,
          const std::string &rule)
{
    for (const auto &o : res.obligations)
        if (o.channel == channel && o.rule == rule)
            return &o;
    return nullptr;
}

TEST(FormalProve, ProvesInferredAckBoundsOnEvalDesigns)
{
    struct Case
    {
        const char *name;
        std::string source;
        const char *channel;
    };
    std::vector<Case> cases = {
        {"tlb", designs::anvilTlbSource(), "io_upd"},
        {"systolic", designs::anvilSystolicSource(), "inp_wld"},
        {"listing2", designs::anvilListing2Source(), "io_req"},
    };
    for (auto &c : cases) {
        Proven p = proveSource(c.source);
        const ObligationOutcome *o =
            outcomeOf(p.res, c.channel, "ack-within");
        ASSERT_NE(o, nullptr) << c.name;
        EXPECT_EQ(o->status, ObligationOutcome::Status::Proved)
            << c.name << ": " << o->statusStr() << " " << o->detail;
        // The whole cone stays a handful of control bits no matter
        // how wide the datapath is.
        EXPECT_LE(o->coi_bits, 16) << c.name;
    }
}

TEST(FormalProve, QuickstartStableHoldProved)
{
    Proven p = proveSource(readFile(
        std::string(ANVIL_TEST_DIR) + "/../examples/quickstart.anvil"));
    const ObligationOutcome *hold =
        outcomeOf(p.res, "io_pong", "hold");
    const ObligationOutcome *stable =
        outcomeOf(p.res, "io_pong", "stable");
    ASSERT_NE(hold, nullptr);
    ASSERT_NE(stable, nullptr);
    EXPECT_EQ(hold->status, ObligationOutcome::Status::Proved)
        << hold->statusStr();
    EXPECT_EQ(stable->status, ObligationOutcome::Status::Proved)
        << stable->statusStr();
}

TEST(FormalProve, Listing2WideCounterExhaustsBmcButProves)
{
    // The paper's comparison, replayed on our own substrate: the
    // 32-bit free-running counter makes every cycle a fresh packed
    // state, so the explicit-state BMC drowns in its budget checking
    // the very assertions the prover discharges in milliseconds.
    Proven p = proveSource(designs::anvilListing2Source());
    EXPECT_TRUE(p.res.allProved()) << p.res.report(true);

    verif::BmcOptions bopts;
    bopts.max_depth = 30000;
    bopts.max_states = 2000;
    bopts.input_bits_limit = 1;
    verif::BmcResult bmc = verif::boundedModelCheck(
        p.inst.module, p.inst.assertions(), bopts);
    EXPECT_EQ(bmc.status, verif::BmcResult::Status::BudgetExhausted)
        << bmc.statusStr();
    EXPECT_GE(bmc.states_explored, bopts.max_states);

    // The prover's cone never contained the design's 32-bit counter
    // (the `__fml_*_cnt` deadline counters are the automata's own).
    for (const auto &o : p.res.obligations)
        for (const auto &r : o.coi_reg_names)
            EXPECT_NE(r, "cnt") << o.name << " cone contains " << r;
}

TEST(FormalProve, VerdictsIdenticalAcrossSweepModes)
{
    std::vector<std::tuple<int, uint64_t, uint64_t>> runs;
    for (rtl::SweepMode mode :
         {rtl::SweepMode::Full, rtl::SweepMode::Dirty,
          rtl::SweepMode::Threaded}) {
        formal::ProveOptions opts;
        opts.sweep_mode = mode;
        opts.sweep_threads = 2;
        Proven p = proveSource(designs::anvilTlbSource(), opts);
        const ObligationOutcome *o =
            outcomeOf(p.res, "io_upd", "ack-within");
        ASSERT_NE(o, nullptr);
        EXPECT_EQ(o->status, ObligationOutcome::Status::Proved)
            << o->statusStr();
        runs.push_back({o->k, o->base_states, o->steps});
    }
    // Same exploration, not just the same verdict.
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(FormalProve, CexVcdByteStableAcrossSweepModes)
{
    std::string src = designs::anvilListing2Source();
    size_t pos = src.find("@dyn#3");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, 6, "@dyn#1");
    Proven p = proveSource(src);
    ASSERT_TRUE(p.res.anyViolated()) << p.res.report(true);

    const ObligationOutcome *cex = nullptr;
    for (const auto &o : p.res.obligations)
        if (o.status == ObligationOutcome::Status::Violated)
            cex = &o;
    ASSERT_NE(cex, nullptr);

    std::ostringstream full, dirty, threaded;
    formal::writeCexVcd(p.inst, *cex, full, rtl::SweepMode::Full);
    formal::writeCexVcd(p.inst, *cex, dirty, rtl::SweepMode::Dirty);
    formal::writeCexVcd(p.inst, *cex, threaded,
                        rtl::SweepMode::Threaded, 2);
    EXPECT_FALSE(full.str().empty());
    EXPECT_EQ(full.str(), dirty.str());
    EXPECT_EQ(full.str(), threaded.str());

    // Violated verdict (and counterexample) reproduce under the
    // dense sweep too.
    formal::ProveOptions fopts;
    fopts.sweep_mode = rtl::SweepMode::Full;
    formal::ProveResult res2 = formal::prove(p.inst, fopts);
    const ObligationOutcome *cex2 = nullptr;
    for (const auto &o : res2.obligations)
        if (o.status == ObligationOutcome::Status::Violated)
            cex2 = &o;
    ASSERT_NE(cex2, nullptr);
    EXPECT_EQ(cex2->k, cex->k);
    EXPECT_EQ(cex2->cex.size(), cex->cex.size());
}

/**
 * The compiled automata and the runtime checker must tell the same
 * story: drive a hand-built valid/ack/data sequence through an
 * instrumented passthrough module and compare each rule's first bad
 * cycle against trace::ChannelChecker's violation cycles.
 */
TEST(FormalProve, AutomataAgreeWithChannelChecker)
{
    auto m = std::make_shared<rtl::Module>();
    m->name = "probe";
    auto v = m->input("v", 1);
    auto a = m->input("a", 1);
    auto d = m->input("d", 8);
    m->wire("ch_valid", v);
    m->output("ch_valid", 1);
    m->wire("ch_ack", a);
    m->output("ch_ack", 1);
    m->wire("ch_data", d);
    m->output("ch_data", 8);

    trace::ContractSpec spec =
        trace::parseContractSpec("ch: ack within 3, stable, hold");
    formal::InstrumentedDesign inst =
        formal::compileProperties(*m, {spec});
    ASSERT_EQ(inst.props.size(), 3u);

    // Offer at 2 (payload 0x21), payload flips at 4, deadline 3
    // passes at 4, retracted at 6; clean handshake at 8..9.
    struct Frame { int v, a; uint64_t d; };
    std::vector<Frame> frames = {
        {0, 0, 0}, {0, 0, 0}, {1, 0, 0x21}, {1, 0, 0x21},
        {1, 0, 0x33}, {1, 0, 0x33}, {0, 0, 0}, {0, 0, 0},
        {1, 1, 0x44}, {0, 0, 0},
    };

    rtl::Sim sim(inst.module);
    trace::ChannelChecker checker(spec);
    std::vector<trace::ContractViolation> violations;
    std::map<std::string, uint64_t> first_bad;
    for (size_t t = 0; t < frames.size(); t++) {
        sim.setInput("v", static_cast<uint64_t>(frames[t].v));
        sim.setInput("a", static_cast<uint64_t>(frames[t].a));
        sim.setInput("d", frames[t].d);
        for (const auto &p : inst.props) {
            if (sim.peek(p.bad_wire).any() && !first_bad.count(p.rule))
                first_bad[p.rule] = t;
        }
        checker.cycle(t, frames[t].v != 0, frames[t].a != 0,
                      BitVec(8, frames[t].d), violations);
        sim.step();
    }

    ASSERT_EQ(violations.size(), 3u);
    for (const auto &viol : violations) {
        ASSERT_TRUE(first_bad.count(viol.rule)) << viol.rule;
        EXPECT_EQ(first_bad[viol.rule], viol.cycle) << viol.rule;
    }
    EXPECT_EQ(first_bad.size(), 3u);
}

TEST(FormalProve, ForwardedPayloadClassifiedConditional)
{
    // The TLB's `@req`-lifetime response forwards the lookup of a
    // live environment input: its pending-stability is guaranteed by
    // the *peer's* contracts (the Fig. 5 compositional case), not by
    // the design alone.  The prover must classify — not "disprove" —
    // it, and still prove the channel's hold obligation outright.
    Proven p = proveSource(designs::anvilTlbSource());
    const ObligationOutcome *stable =
        outcomeOf(p.res, "io_res", "stable");
    ASSERT_NE(stable, nullptr);
    EXPECT_EQ(stable->status, ObligationOutcome::Status::Conditional)
        << stable->statusStr();
    EXPECT_NE(stable->detail.find("io_req_data"), std::string::npos)
        << stable->detail;
    const ObligationOutcome *hold = outcomeOf(p.res, "io_res", "hold");
    ASSERT_NE(hold, nullptr);
    EXPECT_EQ(hold->status, ObligationOutcome::Status::Proved)
        << hold->statusStr();
    EXPECT_FALSE(p.res.anyViolated()) << p.res.report(true);
}

TEST(FormalProve, WideConeDegradesToUnknown)
{
    // An always-true property whose cone drags in a 32-bit
    // accumulator: the base case cannot close (the accumulator walks
    // forever) and the induction budget refuses the 2^34
    // enumeration — verdict Unknown, with the culprit named.
    auto m = std::make_shared<rtl::Module>();
    m->name = "wide";
    auto v = m->input("v", 1);
    auto d = m->input("d", 8);
    auto wide = m->reg("wide", 32);
    m->update("wide", rtl::cst(1, 1), wide + d);
    m->wire("ch_valid", v);
    m->output("ch_valid", 1);
    // ack == 1 always, but through the accumulator's cone.
    m->wire("ch_ack", eq(wide, wide));
    m->output("ch_ack", 1);

    trace::ContractSpec spec =
        trace::parseContractSpec("ch: ack within 2");
    formal::InstrumentedDesign inst =
        formal::compileProperties(*m, {spec});
    formal::ProveOptions opts;
    opts.k_max = 3;   // the base case alone walks 8^k frames here
    formal::ProveResult res = formal::prove(inst, opts);
    ASSERT_EQ(res.obligations.size(), 1u);
    EXPECT_EQ(res.obligations[0].status,
              ObligationOutcome::Status::Unknown);
    EXPECT_NE(res.obligations[0].detail.find("state bits"),
              std::string::npos)
        << res.obligations[0].detail;
}

TEST(FormalProve, StepBudgetDegradesToUnknown)
{
    formal::ProveOptions opts;
    opts.max_steps = 3;
    Proven p = proveSource(designs::anvilTlbSource(), opts);
    const ObligationOutcome *o =
        outcomeOf(p.res, "io_upd", "ack-within");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->status, ObligationOutcome::Status::Unknown);
    EXPECT_NE(o->detail.find("budget"), std::string::npos)
        << o->detail;
}

} // namespace
