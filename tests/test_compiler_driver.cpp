/**
 * @file
 * Compiler-driver tests: spawn ordering and cycle detection,
 * hierarchy generation, diagnostics rendering, compile options, and
 * whole-program simulation of spawned hierarchies.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

TEST(Driver, SpawnCycleRejected)
{
    CompileOutput out = compileAnvil(R"(
proc a() { spawn b(); loop { cycle 1 } }
proc b() { spawn a(); loop { cycle 1 } }
)");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.diags.render().find("recursive spawn"),
              std::string::npos);
}

TEST(Driver, SpawnOfUnknownProcessRejected)
{
    CompileOutput out = compileAnvil(R"(
proc a() { spawn ghost(); loop { cycle 1 } }
)");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.diags.render().find("unknown process"),
              std::string::npos);
}

TEST(Driver, SpawnArityChecked)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic@#1) }
proc child(ep : left c) { loop { cycle 1 } }
proc top() { spawn child(); loop { cycle 1 } }
)");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.diags.render().find("arity"), std::string::npos);
}

TEST(Driver, CheckOnlySkipsCodegen)
{
    CompileOutput out = compileAnvil(R"(
proc p() { reg r : logic[8]; loop { set r := *r + 1 >> cycle 1 } }
)", {.top = "", .codegen = false});
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.modules.empty());
    EXPECT_TRUE(out.systemverilog.empty());
}

TEST(Driver, DiagnosticsCarrySourceExcerpts)
{
    CompileOutput out = compileAnvil(R"(
chan c { left d : (logic[8]@#2) }
proc p(ep : right c) {
    reg r : logic[8];
    loop { send ep.d (*r) >> set r := *r + 1 >> cycle 2 }
}
)");
    ASSERT_FALSE(out.ok);
    std::string rendered = out.diags.render();
    // The renderer includes the offending line and a caret marker.
    EXPECT_NE(rendered.find("set r := *r + 1"), std::string::npos);
    EXPECT_NE(rendered.find("^^^"), std::string::npos);
    EXPECT_NE(rendered.find("input.anvil:"), std::string::npos);
}

TEST(Driver, ThreeLevelHierarchySimulates)
{
    // grandchild streams numbers; child doubles them; top accumulates.
    CompileOutput out = compileAnvil(R"(
chan num_ch { right n : (logic[16]@#1) }

proc source(ep : left num_ch) {
    reg k : logic[16];
    loop {
        send ep.n (*k) >>
        set k := *k + 1 >>
        cycle 1
    }
}

proc doubler(up : left num_ch, down : right num_ch) {
    reg v : logic[16];
    loop {
        let x = recv down.n >>
        set v := x + x >>
        send up.n (*v) >>
        cycle 1
    }
}

proc top() {
    reg total : logic[16];
    chan sl -- sr : num_ch;
    chan dl -- dr : num_ch;
    spawn source(dl);
    spawn doubler(sl, dr);
    loop {
        let d = recv sr.n >>
        set total := *total + d >>
        cycle 1
    }
}
)", {.top = "top"});
    ASSERT_TRUE(out.ok) << out.diags.render();

    rtl::Sim sim(out.module("top"));
    sim.step(200);
    uint64_t total = sim.peek("total").toUint64();
    // total accumulates 2 * (0 + 1 + ... + k); just require progress
    // consistent with doubling.
    EXPECT_GT(total, 0u);
    uint64_t k = sim.peek("source_0.k").toUint64();
    ASSERT_GT(k, 2u);
    uint64_t expect = k * (k - 1);   // 2 * sum(0..k-1)
    // The pipeline may hold up to two in-flight items.
    EXPECT_LE(total, expect);
    EXPECT_GE(total + 4 * k, expect);
}

TEST(Driver, SystemVerilogForHierarchyNamesInstances)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic@#1) }
proc child(ep : left c) {
    reg r : logic;
    loop { set r := recv ep.a >> cycle 1 }
}
proc top() {
    chan l -- rr : c;
    spawn child(l);
    loop { send rr.a (1'b1) >> cycle 2 }
}
)", {.top = "top"});
    ASSERT_TRUE(out.ok) << out.diags.render();
    // The child instance is connected by child-port name to the
    // parent's canonical channel wires.
    EXPECT_NE(out.systemverilog.find(".ep_a_data("), std::string::npos);
    EXPECT_NE(out.systemverilog.find("l_a_data"), std::string::npos);
}

TEST(Driver, DefaultTopIsLastInSpawnOrder)
{
    CompileOutput out = compileAnvil(R"(
chan c { left a : (logic@#1) }
proc child(ep : left c) {
    reg r : logic;
    loop { set r := recv ep.a >> cycle 1 }
}
proc zzz_top() {
    chan l -- rr : c;
    spawn child(l);
    loop { send rr.a (1'b1) >> cycle 2 }
}
)");
    ASSERT_TRUE(out.ok) << out.diags.render();
    EXPECT_NE(out.systemverilog.find("module zzz_top"),
              std::string::npos);
}

TEST(Driver, UnsafeDesignStillProducesModulesForBenches)
{
    // The hazard benches simulate rejected designs; codegen proceeds
    // even when the checker fails.
    CompileOutput out = compileAnvil(R"(
chan c { left d : (logic[8]@#2) }
proc p(ep : right c) {
    reg r : logic[8];
    loop { send ep.d (*r) >> set r := *r + 1 >> cycle 2 }
}
)");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.module("p"), nullptr);
}

} // namespace
