/**
 * @file
 * Flight-recorder ring-buffer edge cases: a trigger before the ring
 * fills clips the window at the first captured cycle, a trigger on
 * the final cycle is flushed by onFinish, distinct triggers produce
 * distinct dumps, wrap-around keeps exactly the configured context,
 * and the reconstructed windows are byte-identical across sweep
 * modes (and the compiled backend) and byte-compatible with a
 * VcdWriter covering the same cycles.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "harness.h"
#include "obs/flight.h"
#include "obs/observer.h"
#include "rtl/interp.h"
#include "rtl/vcd.h"
#include "trace/vcd_reader.h"

using namespace anvil;

namespace {

const char *kPingSource = R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}

proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)";

rtl::ModulePtr
pingModule()
{
    std::string errors;
    rtl::ModulePtr m =
        anvil::testing::compileDesign(kPingSource, "ping_server",
                                      &errors);
    EXPECT_TRUE(m) << errors;
    return m;
}

/** Deterministic stimulus shared by every run in this file. */
void
drive(rtl::Sim &sim, uint64_t cyc)
{
    sim.setInput("io_ping_data", 10 + cyc * 7);
    sim.setInput("io_ping_valid", cyc % 4 < 2 ? 1 : 0);
    sim.setInput("io_pong_ack", cyc % 3 != 0 ? 1 : 0);
}

/**
 * Bumps a counter on chosen cycles.  Attached before the recorder,
 * so the recorder's same-cycle trigger poll observes the bump —
 * exactly the ordering a ContractMonitor's violation count gets.
 */
class CycleTrigger : public obs::Observer
{
  public:
    explicit CycleTrigger(std::vector<uint64_t> at)
        : _at(std::move(at))
    {
    }

    uint64_t count() const { return _count; }

    void onAttach(obs::ChangeFeed &) override {}
    void onPrime(rtl::Sim &, uint64_t) override {}
    void onCycle(rtl::Sim &, uint64_t cycle,
                 const std::vector<rtl::NetId> &) override
    {
        for (uint64_t c : _at)
            if (c == cycle)
                _count++;
    }
    const char *observerName() const override { return "trig"; }

  private:
    std::vector<uint64_t> _at;
    uint64_t _count = 0;
};

struct FlightRun
{
    std::vector<obs::FlightRecorder::DumpInfo> dumps;
    std::vector<std::string> vcds;   // dump text, flush order
};

FlightRun
runFlight(rtl::SweepMode mode, int threads, uint64_t cycles,
          const std::vector<uint64_t> &trigger_cycles,
          obs::FlightRecorder::Options fo, bool compiled = false)
{
    rtl::Sim sim(pingModule());
    sim.setSweepMode(mode, threads);
    if (compiled) {
        codegen::JitOptions jo;
        jo.opt_level = 1;
        codegen::JitResult jr =
            codegen::jitCompileKernel(sim.netlist(), jo);
        EXPECT_NE(jr.kernel, nullptr) << jr.error;
        EXPECT_TRUE(sim.attachKernel(codegen::kernelRef(jr.kernel)));
    }

    obs::ChangeFeed feed(sim);
    CycleTrigger trig(trigger_cycles);
    feed.attach(trig);

    obs::FlightRecorder rec(sim, fo);
    rec.addTrigger("manual", [&trig]() { return trig.count(); });
    FlightRun out;
    rec.setDumpSink(
        [&out](const obs::FlightRecorder::DumpInfo &d,
               const std::string &vcd) {
            out.vcds.push_back(vcd);
            return "dump-" + std::to_string(d.index);
        });
    feed.attach(rec);

    for (uint64_t c = 0; c < cycles; c++) {
        drive(sim, c);
        feed.sample();
        sim.step();
    }
    feed.finish();
    out.dumps = rec.dumps();
    return out;
}

/** Full-run VcdWriter dump under the same stimulus. */
std::string
fullVcd(uint64_t cycles)
{
    rtl::Sim sim(pingModule());
    std::ostringstream os;
    rtl::VcdWriter vcd(sim, os);
    obs::ChangeFeed feed(sim);
    feed.attach(vcd);
    for (uint64_t c = 0; c < cycles; c++) {
        drive(sim, c);
        feed.sample();
        sim.step();
    }
    feed.finish();
    return os.str();
}

obs::FlightRecorder::Options
opts(uint64_t pre, uint64_t post)
{
    obs::FlightRecorder::Options fo;
    fo.pre = pre;
    fo.post = post;
    return fo;
}

TEST(FlightRecorder, TriggerBeforeRingFillsClipsAtCycleZero)
{
    // pre = 50 but the trigger lands at cycle 5: only cycles 0..5
    // exist, so the window starts at 0 — and a window that starts at
    // cycle 0 is byte-identical to a from-reset VcdWriter dump
    // truncated at the window's end.
    FlightRun fr = runFlight(rtl::SweepMode::Dirty, 0, 40, {5},
                             opts(50, 3));
    ASSERT_EQ(fr.dumps.size(), 1u);
    EXPECT_EQ(fr.dumps[0].trigger, "manual");
    EXPECT_EQ(fr.dumps[0].trigger_cycle, 5u);
    EXPECT_EQ(fr.dumps[0].from, 0u);
    EXPECT_EQ(fr.dumps[0].to, 8u);
    EXPECT_EQ(fr.dumps[0].path, "dump-0");

    std::string full = fullVcd(40);
    size_t cut = full.find("\n#9\n");
    ASSERT_NE(cut, std::string::npos);
    EXPECT_EQ(fr.vcds[0], full.substr(0, cut + 1));
}

TEST(FlightRecorder, FinalCycleTriggerFlushesOnFinish)
{
    // The trigger fires on the very last cycle; the post-window never
    // completes, so onFinish must flush what exists.
    FlightRun fr = runFlight(rtl::SweepMode::Dirty, 0, 60, {59},
                             opts(8, 16));
    ASSERT_EQ(fr.dumps.size(), 1u);
    EXPECT_EQ(fr.dumps[0].trigger_cycle, 59u);
    EXPECT_EQ(fr.dumps[0].from, 51u);
    EXPECT_EQ(fr.dumps[0].to, 59u);
    EXPECT_NE(fr.vcds[0].find("$dumpvars"), std::string::npos);
}

TEST(FlightRecorder, DistinctTriggersProduceDistinctDumps)
{
    FlightRun fr = runFlight(rtl::SweepMode::Dirty, 0, 120, {30, 80},
                             opts(8, 4));
    ASSERT_EQ(fr.dumps.size(), 2u);
    EXPECT_EQ(fr.dumps[0].index, 0);
    EXPECT_EQ(fr.dumps[1].index, 1);
    EXPECT_EQ(fr.dumps[0].from, 22u);
    EXPECT_EQ(fr.dumps[0].to, 34u);
    EXPECT_EQ(fr.dumps[1].from, 72u);
    EXPECT_EQ(fr.dumps[1].to, 84u);
    EXPECT_EQ(fr.dumps[0].path, "dump-0");
    EXPECT_EQ(fr.dumps[1].path, "dump-1");
    EXPECT_NE(fr.vcds[0], fr.vcds[1]);
}

TEST(FlightRecorder, CoalescedTriggersExtendOneWindow)
{
    // Two triggers three cycles apart with post = 8: the second lands
    // inside the open window and extends it instead of opening a
    // second dump.
    FlightRun fr = runFlight(rtl::SweepMode::Dirty, 0, 80, {40, 43},
                             opts(8, 8));
    ASSERT_EQ(fr.dumps.size(), 1u);
    EXPECT_EQ(fr.dumps[0].trigger_cycle, 40u);
    EXPECT_EQ(fr.dumps[0].from, 32u);
    EXPECT_EQ(fr.dumps[0].to, 51u);
}

TEST(FlightRecorder, WrapAroundKeepsExactlyTheConfiguredContext)
{
    // A late trigger after hundreds of evictions: the window is
    // exactly [trigger - pre, trigger + post], and its content
    // matches the values a full-run recording holds on those cycles
    // (the base snapshot absorbed every evicted record correctly).
    FlightRun fr = runFlight(rtl::SweepMode::Dirty, 0, 400, {350},
                             opts(8, 4));
    ASSERT_EQ(fr.dumps.size(), 1u);
    EXPECT_EQ(fr.dumps[0].from, 342u);
    EXPECT_EQ(fr.dumps[0].to, 354u);

    std::istringstream window_is(fr.vcds[0]);
    trace::Trace window = trace::VcdReader::read(window_is);
    std::istringstream full_is(fullVcd(400));
    trace::Trace full = trace::VcdReader::read(full_is);
    ASSERT_EQ(window.signals().size(), full.signals().size());
    for (size_t s = 0; s < window.signals().size(); s++) {
        const trace::TraceSignal &ws = window.signals()[s];
        const trace::TraceSignal &fs = full.signals()[s];
        EXPECT_EQ(ws.name, fs.name);
        for (uint64_t t = 342; t <= 354; t++) {
            const BitVec *wv = ws.valueAt(t);
            const BitVec *fv = fs.valueAt(t);
            ASSERT_NE(wv, nullptr) << ws.name << " @" << t;
            ASSERT_NE(fv, nullptr) << fs.name << " @" << t;
            EXPECT_EQ(wv->toHex(), fv->toHex())
                << ws.name << " @" << t;
        }
    }
}

TEST(FlightRecorder, DumpsAreByteStableAcrossSweepModes)
{
    FlightRun dirty = runFlight(rtl::SweepMode::Dirty, 0, 200, {150},
                                opts(16, 4));
    FlightRun full = runFlight(rtl::SweepMode::Full, 0, 200, {150},
                               opts(16, 4));
    FlightRun thr = runFlight(rtl::SweepMode::Threaded, 2, 200,
                              {150}, opts(16, 4));
    ASSERT_EQ(dirty.vcds.size(), 1u);
    ASSERT_EQ(full.vcds.size(), 1u);
    ASSERT_EQ(thr.vcds.size(), 1u);
    EXPECT_EQ(dirty.vcds[0], full.vcds[0]);
    EXPECT_EQ(dirty.vcds[0], thr.vcds[0]);

    if (!codegen::jitCompilerPath().empty()) {
        FlightRun jit = runFlight(rtl::SweepMode::Dirty, 0, 200,
                                  {150}, opts(16, 4),
                                  /*compiled=*/true);
        ASSERT_EQ(jit.vcds.size(), 1u);
        EXPECT_EQ(dirty.vcds[0], jit.vcds[0]);
    }
}

} // namespace
