/**
 * @file
 * BitVec unit and property tests: arithmetic wraps modulo 2^width,
 * slicing/concatenation roundtrips, comparisons agree with uint64
 * semantics on narrow values.
 */

#include <gtest/gtest.h>

#include <random>

#include "support/bitvec.h"

using anvil::BitVec;

namespace {

TEST(BitVec, ConstructionAndWidth)
{
    BitVec v(8, 0x5a);
    EXPECT_EQ(v.width(), 8);
    EXPECT_EQ(v.toUint64(), 0x5au);
    EXPECT_TRUE(v.bit(1));
    EXPECT_FALSE(v.bit(0));
}

TEST(BitVec, TruncatesToWidth)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.toUint64(), 0xfu);
}

TEST(BitVec, FromBinaryAndHex)
{
    EXPECT_EQ(BitVec::fromBinary("1010").toUint64(), 10u);
    EXPECT_EQ(BitVec::fromBinary("1010").width(), 4);
    EXPECT_EQ(BitVec::fromHex("deadbeef").toUint64(), 0xdeadbeefu);
    EXPECT_EQ(BitVec::fromHex("deadbeef").width(), 32);
}

TEST(BitVec, WideValues)
{
    BitVec v(200);
    v.setBit(199, true);
    v.setBit(0, true);
    EXPECT_TRUE(v.bit(199));
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(100));
    EXPECT_EQ(v.popcount(), 2);
}

TEST(BitVec, AdditionWrapsAtWidth)
{
    BitVec a(8, 0xff);
    BitVec b(8, 1);
    EXPECT_EQ((a + b).toUint64(), 0u);
}

TEST(BitVec, AdditionCarriesAcrossWords)
{
    BitVec a = BitVec::ones(128);
    BitVec b(128, 1);
    BitVec s = a + b;
    EXPECT_TRUE(s.isZero());
}

TEST(BitVec, SubtractionIsTwosComplement)
{
    BitVec a(16, 5);
    BitVec b(16, 7);
    EXPECT_EQ((a - b).toUint64(), 0xfffeu);
}

TEST(BitVec, MultiplyMatches64Bit)
{
    BitVec a(64, 123456789);
    BitVec b(64, 987654321);
    EXPECT_EQ((a * b).toUint64(), 123456789ull * 987654321ull);
}

TEST(BitVec, ShiftsAndSlices)
{
    BitVec v(16, 0x00ff);
    EXPECT_EQ((v << 4).toUint64(), 0x0ff0u);
    EXPECT_EQ((v >> 4).toUint64(), 0x000fu);
    EXPECT_EQ(v.slice(4, 8).toUint64(), 0x0fu);
    EXPECT_EQ(v.slice(4, 8).width(), 8);
}

TEST(BitVec, SliceBeyondWidthReadsZero)
{
    BitVec v(8, 0xff);
    EXPECT_EQ(v.slice(4, 8).toUint64(), 0x0fu);
}

TEST(BitVec, ConcatHigh)
{
    BitVec lo(8, 0x34);
    BitVec hi(8, 0x12);
    BitVec v = lo.concatHigh(hi);
    EXPECT_EQ(v.width(), 16);
    EXPECT_EQ(v.toUint64(), 0x1234u);
}

TEST(BitVec, UnsignedComparison)
{
    EXPECT_TRUE(BitVec(8, 3).ult(BitVec(8, 200)));
    EXPECT_FALSE(BitVec(8, 200).ult(BitVec(8, 3)));
    EXPECT_TRUE(BitVec(8, 7).ule(BitVec(8, 7)));
    // Across widths.
    EXPECT_TRUE(BitVec(8, 200).ult(BitVec(128, 1) << 100));
}

TEST(BitVec, HexRendering)
{
    EXPECT_EQ(BitVec(8, 0x5a).toHex(), "0x5a");
    EXPECT_EQ(BitVec(12, 0x5a).toHex(), "0x05a");
    EXPECT_EQ(BitVec(4, 10).toBinary(), "1010");
}

/** Property sweep: BitVec arithmetic agrees with masked uint64. */
class BitVecProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitVecProperty, MatchesUint64Semantics)
{
    int width = GetParam();
    uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    std::mt19937_64 rng(width);
    for (int i = 0; i < 200; i++) {
        uint64_t x = rng() & mask;
        uint64_t y = rng() & mask;
        BitVec a(width, x), b(width, y);
        EXPECT_EQ((a + b).toUint64(), (x + y) & mask);
        EXPECT_EQ((a - b).toUint64(), (x - y) & mask);
        EXPECT_EQ((a & b).toUint64(), x & y);
        EXPECT_EQ((a | b).toUint64(), x | y);
        EXPECT_EQ((a ^ b).toUint64(), x ^ y);
        EXPECT_EQ((~a).toUint64(), ~x & mask);
        EXPECT_EQ(a == b, x == y);
        EXPECT_EQ(a.ult(b), x < y);
        int sh = static_cast<int>(rng() % width);
        EXPECT_EQ((a << sh).toUint64(), (x << sh) & mask);
        EXPECT_EQ((a >> sh).toUint64(), (x & mask) >> sh);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecProperty,
                         ::testing::Values(1, 3, 8, 13, 17, 32, 33, 48,
                                           63, 64));

TEST(BitVec, ResizeRoundtrip)
{
    BitVec v(40, 0xabcdef1234ull);
    EXPECT_EQ(v.resize(64).toUint64(), 0xabcdef1234ull);
    EXPECT_EQ(v.resize(16).toUint64(), 0x1234u);
    EXPECT_EQ(v.resize(16).resize(40).toUint64(), 0x1234u);
}

} // namespace
