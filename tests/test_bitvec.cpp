/**
 * @file
 * BitVec unit and property tests: arithmetic wraps modulo 2^width,
 * slicing/concatenation roundtrips, comparisons agree with uint64
 * semantics on narrow values.
 */

#include <gtest/gtest.h>

#include <random>

#include "support/bitvec.h"

using anvil::BitVec;

namespace {

TEST(BitVec, ConstructionAndWidth)
{
    BitVec v(8, 0x5a);
    EXPECT_EQ(v.width(), 8);
    EXPECT_EQ(v.toUint64(), 0x5au);
    EXPECT_TRUE(v.bit(1));
    EXPECT_FALSE(v.bit(0));
}

TEST(BitVec, TruncatesToWidth)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.toUint64(), 0xfu);
}

TEST(BitVec, FromBinaryAndHex)
{
    EXPECT_EQ(BitVec::fromBinary("1010").toUint64(), 10u);
    EXPECT_EQ(BitVec::fromBinary("1010").width(), 4);
    EXPECT_EQ(BitVec::fromHex("deadbeef").toUint64(), 0xdeadbeefu);
    EXPECT_EQ(BitVec::fromHex("deadbeef").width(), 32);
}

TEST(BitVec, WideValues)
{
    BitVec v(200);
    v.setBit(199, true);
    v.setBit(0, true);
    EXPECT_TRUE(v.bit(199));
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(100));
    EXPECT_EQ(v.popcount(), 2);
}

TEST(BitVec, AdditionWrapsAtWidth)
{
    BitVec a(8, 0xff);
    BitVec b(8, 1);
    EXPECT_EQ((a + b).toUint64(), 0u);
}

TEST(BitVec, AdditionCarriesAcrossWords)
{
    BitVec a = BitVec::ones(128);
    BitVec b(128, 1);
    BitVec s = a + b;
    EXPECT_TRUE(s.isZero());
}

TEST(BitVec, SubtractionIsTwosComplement)
{
    BitVec a(16, 5);
    BitVec b(16, 7);
    EXPECT_EQ((a - b).toUint64(), 0xfffeu);
}

TEST(BitVec, MultiplyMatches64Bit)
{
    BitVec a(64, 123456789);
    BitVec b(64, 987654321);
    EXPECT_EQ((a * b).toUint64(), 123456789ull * 987654321ull);
}

TEST(BitVec, ShiftsAndSlices)
{
    BitVec v(16, 0x00ff);
    EXPECT_EQ((v << 4).toUint64(), 0x0ff0u);
    EXPECT_EQ((v >> 4).toUint64(), 0x000fu);
    EXPECT_EQ(v.slice(4, 8).toUint64(), 0x0fu);
    EXPECT_EQ(v.slice(4, 8).width(), 8);
}

TEST(BitVec, SliceBeyondWidthReadsZero)
{
    BitVec v(8, 0xff);
    EXPECT_EQ(v.slice(4, 8).toUint64(), 0x0fu);
}

TEST(BitVec, ConcatHigh)
{
    BitVec lo(8, 0x34);
    BitVec hi(8, 0x12);
    BitVec v = lo.concatHigh(hi);
    EXPECT_EQ(v.width(), 16);
    EXPECT_EQ(v.toUint64(), 0x1234u);
}

TEST(BitVec, UnsignedComparison)
{
    EXPECT_TRUE(BitVec(8, 3).ult(BitVec(8, 200)));
    EXPECT_FALSE(BitVec(8, 200).ult(BitVec(8, 3)));
    EXPECT_TRUE(BitVec(8, 7).ule(BitVec(8, 7)));
    // Across widths.
    EXPECT_TRUE(BitVec(8, 200).ult(BitVec(128, 1) << 100));
}

TEST(BitVec, HexRendering)
{
    EXPECT_EQ(BitVec(8, 0x5a).toHex(), "0x5a");
    EXPECT_EQ(BitVec(12, 0x5a).toHex(), "0x05a");
    EXPECT_EQ(BitVec(4, 10).toBinary(), "1010");
}

/** Property sweep: BitVec arithmetic agrees with masked uint64. */
class BitVecProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitVecProperty, MatchesUint64Semantics)
{
    int width = GetParam();
    uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    std::mt19937_64 rng(width);
    for (int i = 0; i < 200; i++) {
        uint64_t x = rng() & mask;
        uint64_t y = rng() & mask;
        BitVec a(width, x), b(width, y);
        EXPECT_EQ((a + b).toUint64(), (x + y) & mask);
        EXPECT_EQ((a - b).toUint64(), (x - y) & mask);
        EXPECT_EQ((a & b).toUint64(), x & y);
        EXPECT_EQ((a | b).toUint64(), x | y);
        EXPECT_EQ((a ^ b).toUint64(), x ^ y);
        EXPECT_EQ((~a).toUint64(), ~x & mask);
        EXPECT_EQ(a == b, x == y);
        EXPECT_EQ(a.ult(b), x < y);
        int sh = static_cast<int>(rng() % width);
        EXPECT_EQ((a << sh).toUint64(), (x << sh) & mask);
        EXPECT_EQ((a >> sh).toUint64(), (x & mask) >> sh);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecProperty,
                         ::testing::Values(1, 3, 8, 13, 17, 32, 33, 48,
                                           63, 64));

TEST(BitVec, ResizeRoundtrip)
{
    BitVec v(40, 0xabcdef1234ull);
    EXPECT_EQ(v.resize(64).toUint64(), 0xabcdef1234ull);
    EXPECT_EQ(v.resize(16).toUint64(), 0x1234u);
    EXPECT_EQ(v.resize(16).resize(40).toUint64(), 0x1234u);
}

// --- Edge cases hardened alongside the compiled-netlist core -------------

TEST(BitVec, ShiftByWidthOrMoreIsZero)
{
    BitVec v(16, 0xffff);
    EXPECT_EQ((v << 16).toUint64(), 0u);
    EXPECT_EQ((v >> 16).toUint64(), 0u);
    EXPECT_EQ((v << 1000).toUint64(), 0u);
    EXPECT_EQ((v >> 1000).toUint64(), 0u);
    // Exactly width-1 still works.
    EXPECT_EQ((v << 15).toUint64(), 0x8000u);
    EXPECT_EQ((v >> 15).toUint64(), 1u);
}

TEST(BitVec, ShiftBy64OrMoreOnWideValues)
{
    // Word-boundary shifts must not invoke UB on the backing words.
    BitVec v = BitVec(128, 1);
    EXPECT_TRUE((v << 64).bit(64));
    EXPECT_EQ((v << 64).popcount(), 1);
    EXPECT_TRUE((v << 127).bit(127));
    EXPECT_EQ(((v << 127) >> 127).toUint64(), 1u);
    EXPECT_TRUE(((v << 100) >> 36).bit(64));
    EXPECT_EQ((v << 128).popcount(), 0);
    BitVec w = BitVec::ones(64);
    EXPECT_EQ((w << 63).toUint64(), 1ull << 63);
    EXPECT_EQ((w >> 63).toUint64(), 1u);
    EXPECT_EQ((w << 64).toUint64(), 0u);
}

TEST(BitVec, NegativeShiftIsZero)
{
    BitVec v(16, 0x1234);
    EXPECT_EQ((v << -1).toUint64(), 0u);
    EXPECT_EQ((v >> -1).toUint64(), 0u);
}

TEST(BitVec, ZeroWidthSlice)
{
    BitVec v(16, 0xffff);
    BitVec z = v.slice(4, 0);
    EXPECT_EQ(z.width(), 0);
    EXPECT_EQ(z.popcount(), 0);
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.toUint64(), 0u);
    // Zero-width values compose: concat and resize behave as the
    // empty bit string.
    EXPECT_EQ(z.concatHigh(v).toUint64(), 0xffffu);
    EXPECT_EQ(v.concatHigh(z).toUint64(), 0xffffu);
    EXPECT_EQ(z.resize(8).toUint64(), 0u);
}

TEST(BitVec, SliceWithNegativeLoReadsZeros)
{
    // Out-of-range bits (including negative indices) read as zero,
    // matching bit()'s range semantics.
    BitVec v(8, 0xa5);
    BitVec s = v.slice(-2, 8);
    EXPECT_EQ(s.toUint64(), (0xa5u << 2) & 0xffu);
    BitVec wide = BitVec::ones(100);
    EXPECT_EQ(wide.slice(-4, 70).popcount(), 66);
    EXPECT_FALSE(wide.slice(-4, 70).bit(3));
    EXPECT_TRUE(wide.slice(-4, 70).bit(4));
}

TEST(BitVec, ConcatHighNormalizesTopPartialWord)
{
    // 40 + 40 = 80 bits: the top word is partial; all-ones inputs
    // must not leave stray bits above bit 79.
    BitVec lo = BitVec::ones(40);
    BitVec hi = BitVec::ones(40);
    BitVec v = lo.concatHigh(hi);
    EXPECT_EQ(v.width(), 80);
    EXPECT_EQ(v.popcount(), 80);
    EXPECT_EQ(v.word(1), 0xffffull);      // bits 64..79 only
    EXPECT_EQ((~v).popcount(), 0);        // ~ of all-ones is zero
    // Unaligned split across the word boundary.
    BitVec a(50, 0x3ffffffffffffull);
    BitVec b(30, 0x2aaaaaaau);
    BitVec c = a.concatHigh(b);
    EXPECT_EQ(c.width(), 80);
    for (int i = 0; i < 50; i++)
        EXPECT_TRUE(c.bit(i)) << i;
    for (int i = 0; i < 30; i++)
        EXPECT_EQ(c.bit(50 + i), (i % 2) == 1) << i;
}

TEST(BitVec, SetUint64KeepsWidthAndMasks)
{
    BitVec v(12);
    v.setUint64(0xabcd);
    EXPECT_EQ(v.width(), 12);
    EXPECT_EQ(v.toUint64(), 0xbcdu);
    BitVec w(100, 7);
    w.setBit(90, true);
    w.setUint64(0x55);
    EXPECT_EQ(w.toUint64(), 0x55u);
    EXPECT_FALSE(w.bit(90));   // overwrites the whole value
    EXPECT_EQ(w.width(), 100);
}

TEST(BitVec, WideShiftMatchesSliceConcat)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 50; iter++) {
        BitVec v(130);
        for (int i = 0; i < 130; i++)
            v.setBit(i, rng() & 1);
        int sh = static_cast<int>(rng() % 130);
        BitVec r = v >> sh;
        BitVec s = v.slice(sh, 130 - sh).resize(130);
        EXPECT_EQ(r.toBinary(), s.toBinary());
        BitVec l = v << sh;
        for (int i = 0; i < 130; i++)
            EXPECT_EQ(l.bit(i), i >= sh && v.bit(i - sh));
    }
}

} // namespace
