/**
 * @file
 * Filament-comparison designs: the statically scheduled pipelined ALU
 * (one op in / one result out per cycle, fixed 3-cycle latency) and
 * the 4x4 weight-stationary systolic array, for both baseline and
 * Anvil versions.  The Anvil versions use static sync modes, so the
 * generated modules carry no handshake ports (§6.2).
 */

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "designs/designs.h"
#include "harness.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::compileDesign;

namespace {

uint64_t
aluGolden(uint64_t a, uint64_t b, int op)
{
    uint64_t m = 0xffffffffull;
    switch (op) {
      case 0: return (a + b) & m;
      case 1: return (a - b) & m;
      case 2: return a & b;
      case 3: return a | b;
      case 4: return a ^ b;
      case 5: return (a << (b & 31)) & m;
      case 6: return (a & m) >> (b & 31);
      case 7: return (a & m) < (b & m) ? 1 : 0;
      default: return 0;
    }
}

class AluTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildPipelinedAluBaseline();
        std::string errs;
        auto mod = compileDesign(anvilPipelinedAluSource(), "alu",
                                 &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(AluTest, FullyPipelinedOnePerCycle)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    std::mt19937 rng(3);

    // Feed a new op every cycle; expect each result exactly 3 cycles
    // later (fixed static latency, as in Filament).
    struct Op { uint64_t a, b; int op; };
    std::deque<Op> in_flight;
    int checked = 0;
    for (int cyc = 0; cyc < 64; cyc++) {
        Op op{rng() & 0xffffffff, rng() & 0xffffffff,
              static_cast<int>(rng() % 8)};
        if (op.op == 6)
            op.op = 0;  // baseline uses shr, Anvil version omits it
        BitVec payload(68);
        payload = BitVec(68, op.a | (op.b << 32));
        for (int i = 0; i < 32; i++) {
            payload.setBit(i, (op.a >> i) & 1);
            payload.setBit(32 + i, (op.b >> i) & 1);
        }
        for (int i = 0; i < 4; i++)
            payload.setBit(64 + i, (op.op >> i) & 1);
        sim.setInput("io_op_data", payload);
        in_flight.push_back(op);

        if (cyc >= 3) {
            Op done = in_flight.front();
            // The op that entered 3 cycles ago appears now.
            while (in_flight.size() >
                   3 + 1) // keep queue: entered at cyc-3
                in_flight.pop_front();
            done = in_flight.front();
            uint64_t got = sim.peek("io_res_data").toUint64();
            EXPECT_EQ(got, aluGolden(done.a, done.b, done.op))
                << "cycle " << cyc;
            checked++;
        }
        sim.step();
    }
    EXPECT_GE(checked, 60);
}

TEST_P(AluTest, NoHandshakePortsGenerated)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    // Static sync modes on both sides: data ports only.
    EXPECT_EQ(mod->findPort("io_op_valid"), nullptr);
    EXPECT_EQ(mod->findPort("io_op_ack"), nullptr);
    EXPECT_EQ(mod->findPort("io_res_valid"), nullptr);
    EXPECT_EQ(mod->findPort("io_res_ack"), nullptr);
    EXPECT_NE(mod->findPort("io_op_data"), nullptr);
    EXPECT_NE(mod->findPort("io_res_data"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, AluTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

// ---------------------------------------------------------------------
// Systolic array
// ---------------------------------------------------------------------

class SystolicTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildSystolicBaseline();
        std::string errs;
        auto mod = compileDesign(anvilSystolicSource(), "systolic",
                                 &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }

    std::string actPort() const
    {
        return GetParam() ? "inp_act_data" : "io_act_data";
    }
    std::string wldPort() const
    {
        return GetParam() ? "inp_wld" : "io_wld";
    }
    std::string outPort() const
    {
        return GetParam() ? "outp_out_data" : "io_out_data";
    }
};

TEST_P(SystolicTest, ConstantStreamConverges)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);

    // Load weights w[r][c] = r + c + 1.
    BitVec w(128);
    int wv[4][4];
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++) {
            wv[r][c] = r + c + 1;
            for (int b = 0; b < 8; b++)
                w.setBit(8 * (r * 4 + c) + b, (wv[r][c] >> b) & 1);
        }
    sim.setInput(wldPort() + "_data", w);
    sim.setInput(wldPort() + "_valid", 1);
    sim.step();
    sim.setInput(wldPort() + "_valid", 0);

    // Constant activations a[r] = r + 2 every cycle.
    BitVec act(32);
    int av[4];
    for (int r = 0; r < 4; r++) {
        av[r] = r + 2;
        for (int b = 0; b < 8; b++)
            act.setBit(8 * r + b, (av[r] >> b) & 1);
    }
    sim.setInput(actPort(), act);
    sim.step(20);

    // After the pipeline fills with a constant stream, column c
    // outputs sum_r a[r] * w[r][c].
    BitVec out = sim.peek(outPort());
    for (int c = 0; c < 4; c++) {
        uint64_t expect = 0;
        for (int r = 0; r < 4; r++)
            expect += static_cast<uint64_t>(av[r]) * wv[r][c];
        EXPECT_EQ(out.slice(32 * c, 32).toUint64(), expect)
            << "column " << c;
    }
}

TEST_P(SystolicTest, WeightReloadTakesEffect)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);

    auto load = [&](int value) {
        BitVec w(128);
        for (int i = 0; i < 16; i++)
            for (int b = 0; b < 8; b++)
                w.setBit(8 * i + b, (value >> b) & 1);
        sim.setInput(wldPort() + "_data", w);
        sim.setInput(wldPort() + "_valid", 1);
        sim.step();
        sim.setInput(wldPort() + "_valid", 0);
    };

    BitVec act(32);
    for (int r = 0; r < 4; r++)
        for (int b = 0; b < 8; b++)
            act.setBit(8 * r + b, (1 >> b) & 1);
    sim.setInput(actPort(), act);

    load(2);
    sim.step(20);
    uint64_t col0_a = sim.peek(outPort()).slice(0, 32).toUint64();
    EXPECT_EQ(col0_a, 4u * 1 * 2);

    load(5);
    sim.step(20);
    uint64_t col0_b = sim.peek(outPort()).slice(0, 32).toUint64();
    EXPECT_EQ(col0_b, 4u * 1 * 5);
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, SystolicTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

} // namespace
