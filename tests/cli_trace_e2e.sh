#!/bin/sh
# CLI end-to-end trace loop, run by ctest (cli_trace_e2e) and CI:
#
#  1. record a short seeded random sim of the quickstart design,
#  2. replay the dump as stimulus, re-dumping the replayed run,
#  3. the two dumps must be byte-identical (round-trip + determinism)
#     and the coverage summaries must match,
#  4. contract-check the healthy dump (exit 0),
#  5. contract-check the hand-written violating fixture: exit code 1
#     and a cycle-numbered report naming the broken rules.
#
# Usage: cli_trace_e2e.sh <path-to-anvilc> <repo-root>
set -e
ANVILC="$1"
SRC="$2"
DESIGN="$SRC/examples/quickstart.anvil"

"$ANVILC" "$DESIGN" --sim 200 --seed 11 --vcd cli_a.vcd --stats \
    > cli_a.log
"$ANVILC" "$DESIGN" --replay cli_a.vcd --vcd cli_b.vcd --stats \
    > cli_b.log

cmp cli_a.vcd cli_b.vcd
grep '^sim-summary' cli_a.log > cli_a.sum
grep '^sim-summary' cli_b.log > cli_b.sum
cmp cli_a.sum cli_b.sum
echo "replay reproduced the recording byte for byte"

"$ANVILC" "$DESIGN" --check-trace cli_a.vcd --contracts

set +e
"$ANVILC" "$DESIGN" \
    --check-trace "$SRC/tests/golden/pong_violation.vcd" \
    > cli_viol.log
status=$?
set -e
cat cli_viol.log
test "$status" -eq 1
grep -q '@3 io_pong \[stable\]' cli_viol.log
grep -q '@4 io_pong \[hold\]' cli_viol.log
echo "violating trace rejected with exit code 1"
