#!/bin/sh
# CLI end-to-end trace loop, run by ctest (cli_trace_e2e) and CI:
#
#  1. record a short seeded random sim of the quickstart design,
#  2. replay the dump as stimulus, re-dumping the replayed run,
#  3. the two dumps must be byte-identical (round-trip + determinism)
#     and the coverage summaries must match,
#  4. contract-check the healthy dump (exit 0),
#  5. contract-check the hand-written violating fixture: exit code 1
#     and a cycle-numbered report naming the broken rules,
#  6. --diff-trace: identical dumps compare equal (exit 0), the
#     violating fixture diverges (exit 1) with a cycle-stamped report,
#  7. coverage replay: both the re-simulating (--replay --cov) and
#     the offline (--check-trace --cov) graders print the same
#     sim-summary JSON the live run printed,
#  8. --infer-contracts prints the typed obligations/assumptions,
#  9. --prove discharges quickstart's and listing2's obligations
#     (exit 0), and a mis-annotated listing2 is disproved (exit 1)
#     with a counterexample VCD that --check-trace flags in turn.
#
# Usage: cli_trace_e2e.sh <path-to-anvilc> <repo-root>
set -e
ANVILC="$1"
SRC="$2"
DESIGN="$SRC/examples/quickstart.anvil"

"$ANVILC" "$DESIGN" --sim 200 --seed 11 --vcd cli_a.vcd --stats \
    > cli_a.log
"$ANVILC" "$DESIGN" --replay cli_a.vcd --vcd cli_b.vcd --stats \
    > cli_b.log

cmp cli_a.vcd cli_b.vcd
grep '^sim-summary' cli_a.log > cli_a.sum
grep '^sim-summary' cli_b.log > cli_b.sum
cmp cli_a.sum cli_b.sum
echo "replay reproduced the recording byte for byte"

"$ANVILC" "$DESIGN" --check-trace cli_a.vcd --contracts

set +e
"$ANVILC" "$DESIGN" \
    --check-trace "$SRC/tests/golden/pong_violation.vcd" \
    > cli_viol.log
status=$?
set -e
cat cli_viol.log
test "$status" -eq 1
grep -q '@3 io_pong \[stable\]' cli_viol.log
grep -q '@4 io_pong \[hold\]' cli_viol.log
echo "violating trace rejected with exit code 1"

# --- Multi-trace diffing -------------------------------------------------

"$ANVILC" --diff-trace cli_a.vcd cli_b.vcd > cli_diff_ok.log
grep -q 'identical' cli_diff_ok.log
set +e
"$ANVILC" --diff-trace cli_a.vcd \
    "$SRC/tests/golden/pong_violation.vcd" > cli_diff_bad.log
status=$?
set -e
test "$status" -eq 1
grep -Eq 'first divergence @|only in' cli_diff_bad.log
echo "diff-trace: identical passes, divergent exits 1"

# --- Coverage replay -----------------------------------------------------

# Re-simulating grader: --replay --cov reproduces the live summary.
"$ANVILC" "$DESIGN" --replay cli_a.vcd --cov > cli_rcov.log
grep '^sim-summary' cli_rcov.log > cli_rcov.sum
cmp cli_a.sum cli_rcov.sum
# Offline grader: --check-trace --cov grades the dump alone.
"$ANVILC" "$DESIGN" --check-trace cli_a.vcd --cov > cli_ocov.log
grep '^sim-summary' cli_ocov.log > cli_ocov.sum
cmp cli_a.sum cli_ocov.sum
echo "coverage replay matches the live summary (live and offline)"

# --- Typed contract inference and the k-induction prover -----------------

"$ANVILC" "$DESIGN" --infer-contracts > cli_inf.log
grep -q 'contract io_pong: stable, hold' cli_inf.log
grep -q 'assume   io_pong: ack within 4' cli_inf.log

"$ANVILC" "$DESIGN" --prove 4 > cli_prove.log
grep -q 'proved' cli_prove.log

L2="$SRC/examples/listing2.anvil"
"$ANVILC" "$L2" --prove 4 --prove-report > cli_prove_l2.log
grep -q 'contract:io_req:ack-within' cli_prove_l2.log

# Mis-annotate the bound: disproved with a replayable cex VCD.
sed 's/dyn#3/dyn#1/' "$L2" > cli_l2_bad.anvil
set +e
"$ANVILC" cli_l2_bad.anvil --prove 4 --vcd cli_cex.vcd \
    > cli_prove_bad.log
status=$?
set -e
test "$status" -eq 1
grep -q 'VIOLATED' cli_prove_bad.log
set +e
"$ANVILC" cli_l2_bad.anvil --check-trace cli_cex.vcd > cli_cex.log
status=$?
set -e
test "$status" -eq 1
grep -q 'io_req \[ack-within\]' cli_cex.log
echo "prover proves healthy designs and refutes the mis-annotation"
