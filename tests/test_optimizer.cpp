/**
 * @file
 * Event-graph optimization passes (Fig. 8): each pass's rewrite on a
 * synthetic graph, plus a semantics-preservation property — sampled
 * timestamps of surviving events are identical before and after
 * optimization.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "ir/elaborate.h"
#include "ir/optimize.h"
#include "lang/parser.h"
#include "sem/loggen.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

TEST(Optimizer, PassAMergesIdenticalDelays)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 2);
    EventId b = g.addDelay(root, 2);
    EXPECT_NE(a, b);
    OptStats stats = optimizeEventGraph(g, 1);
    EXPECT_GE(stats.merged_by_pass.at("a"), 1);
    EXPECT_EQ(g.resolve(a), g.resolve(b));
}

TEST(Optimizer, PassADoesNotMergeDifferentDelays)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 2);
    EventId b = g.addDelay(root, 3);
    optimizeEventGraph(g, 1);
    EXPECT_NE(g.resolve(a), g.resolve(b));
}

TEST(Optimizer, PassBRemovesUnbalancedJoins)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 1);
    EventId b = g.addDelay(root, 4);
    EventId j = g.addJoin({a, b});
    OptStats stats = optimizeEventGraph(g, 2);
    EXPECT_GE(stats.merged_by_pass.at("b"), 1);
    // b always happens no earlier than a, so the join is b.
    EXPECT_EQ(g.resolve(j), g.resolve(b));
}

TEST(Optimizer, PassBKeepsBalancedJoins)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addRecv(root, "ep", "x");
    EventId b = g.addRecv(root, "ep", "y");
    EventId j = g.addJoin({a, b});
    optimizeEventGraph(g, 2);
    EXPECT_FALSE(g.isDead(j));
}

TEST(Optimizer, PassCShiftsBranchJoins)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventId dt = g.addDelay(bt, 3);
    EventId df = g.addDelay(bf, 3);
    EventId m = g.addMerge(dt, df, root);
    int before = g.liveCount();
    OptStats stats = optimizeEventGraph(g, 4);
    EXPECT_GE(stats.merged_by_pass.at("c"), 1);
    EXPECT_LT(g.liveCount(), before);
    // The merge node became a single delay after an earlier merge.
    EXPECT_EQ(g.node(m).kind, EventKind::Delay);
    EXPECT_EQ(g.node(m).delay, 3);
}

TEST(Optimizer, PassDRemovesEmptyBranchJoins)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventId m = g.addMerge(bt, bf, root);
    OptStats stats = optimizeEventGraph(g, 8);
    EXPECT_GE(stats.merged_by_pass.at("d"), 1);
    EXPECT_EQ(g.resolve(m), root);
}

TEST(Optimizer, PassDKeepsArmsWithActions)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventAction act;
    act.kind = EventAction::Kind::AssignReg;
    act.reg = "r";
    g.node(bt).actions.push_back(act);
    EventId m = g.addMerge(bt, bf, root);
    optimizeEventGraph(g, 8);
    EXPECT_FALSE(g.isDead(m));
}

TEST(Optimizer, ReducesRealDesignEventCounts)
{
    CompileOutput out = compileAnvil(designs::anvilPtwSource(),
                                     {.top = "ptw"});
    ASSERT_TRUE(out.ok) << out.diags.render();
    const OptStats &s = out.opt_stats.at("ptw");
    EXPECT_GT(s.before, s.after);
}

/** Property: optimization preserves sampled event times. */
class OptimizerPreservation
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OptimizerPreservation, TimestampsUnchangedForSurvivors)
{
    DiagEngine d;
    Program prog = parseAnvil(GetParam(), d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    for (const auto &[name, proc] : prog.procs) {
        // Two elaborations of the same thread produce identical
        // graphs; optimize one of them.
        ProcIR ref = elaborateProc(prog, proc, d, 1);
        ProcIR opt = elaborateProc(prog, proc, d, 1);
        for (size_t t = 0; t < ref.threads.size(); t++) {
            optimizeEventGraph(opt.threads[t]->graph);
            for (int s = 0; s < 30; s++) {
                auto before =
                    sem::sampleSchedule(*ref.threads[t], 55 + s, 3);
                auto after =
                    sem::sampleSchedule(*opt.threads[t], 55 + s, 3);
                for (const auto &[ev, time] : before.times) {
                    EventId r = opt.threads[t]->graph.resolve(ev);
                    sem::Time ot = after.at(r);
                    if (ot < 0)
                        continue;  // event erased (unreachable arm)
                    EXPECT_EQ(time, ot)
                        << name << " e" << ev << " seed " << s;
                }
            }
        }
    }
}

const char *kStraightLine = R"(
proc p() {
    reg r : logic[8];
    loop { set r := *r + 1 >> cycle 2 >> set r := *r + 2 >> cycle 1 }
}
)";

const char *kDiamond = R"(
chan c { left a : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop {
        let v = recv ep.a >>
        if v == 0 { set r := 1 >> cycle 2 } else { set r := 2 >> cycle 2 } >>
        cycle 1
    }
}
)";

INSTANTIATE_TEST_SUITE_P(Programs, OptimizerPreservation,
                         ::testing::Values(kStraightLine, kDiamond));

/** Optimized designs still behave identically in simulation. */
TEST(Optimizer, OptimizedFifoStillWorks)
{
    CompileOutput with_opt =
        compileAnvil(designs::anvilFifoSource(), {.top = "fifo"});
    CompileOutput no_opt = compileAnvil(
        designs::anvilFifoSource(),
        {.top = "fifo", .optimize = false});
    ASSERT_TRUE(with_opt.ok);
    ASSERT_TRUE(no_opt.ok);

    rtl::Sim a(with_opt.module("fifo"));
    rtl::Sim b(no_opt.module("fifo"));
    for (auto *sim : {&a, &b}) {
        sim->setInput("outp_deq_ack", 1);
        sim->setInput("inp_enq_valid", 1);
    }
    for (int i = 0; i < 50; i++) {
        a.setInput("inp_enq_data", 100 + i);
        b.setInput("inp_enq_data", 100 + i);
        EXPECT_EQ(a.peek("outp_deq_valid").any(),
                  b.peek("outp_deq_valid").any()) << "cycle " << i;
        if (a.peek("outp_deq_valid").any()) {
            EXPECT_EQ(a.peek("outp_deq_data").toUint64(),
                      b.peek("outp_deq_data").toUint64())
                << "cycle " << i;
        }
        a.step();
        b.step();
    }
}

} // namespace
