/**
 * @file
 * Synthesis cost model tests: area scales with structure, the
 * critical path follows logic depth, power grows with activity and
 * frequency, and the Table 1 designs produce plausible relative
 * numbers.
 */

#include <gtest/gtest.h>

#include "designs/designs.h"
#include "rtl/interp.h"
#include "synth/cost_model.h"

using namespace anvil;
using namespace anvil::rtl;
using anvil::synth::SynthReport;
using anvil::synth::synthesize;

namespace {

ModulePtr
adderChain(int stages, int width)
{
    auto m = std::make_shared<Module>();
    m->name = "chain";
    auto x = m->input("x", width);
    ExprPtr e = x;
    for (int i = 0; i < stages; i++)
        e = e + cst(width, i + 1);
    m->reg("r", width);
    m->update("r", cst(1, 1), e);
    return m;
}

TEST(Synth, AreaGrowsWithWidth)
{
    SynthReport narrow = synthesize(*adderChain(1, 8));
    SynthReport wide = synthesize(*adderChain(1, 64));
    EXPECT_GT(wide.areaUm2(), narrow.areaUm2());
    EXPECT_GT(wide.seq_area_um2, narrow.seq_area_um2);
}

TEST(Synth, FmaxDropsWithLogicDepth)
{
    SynthReport shallow = synthesize(*adderChain(1, 32));
    SynthReport deep = synthesize(*adderChain(8, 32));
    EXPECT_GT(shallow.fmaxMhz(), deep.fmaxMhz());
}

TEST(Synth, RegistersDominateSequentialArea)
{
    auto m = std::make_shared<Module>();
    m->name = "regs";
    m->reg("a", 128);
    SynthReport r = synthesize(*m);
    EXPECT_GT(r.seq_area_um2, 100.0);
    EXPECT_EQ(r.comb_area_um2, 0.0);
}

TEST(Synth, PowerGrowsWithFrequencyAndActivity)
{
    SynthReport r = synthesize(*adderChain(2, 32));
    double slow = r.powerMw(500, 100);
    double fast = r.powerMw(2000, 100);
    double busy = r.powerMw(2000, 400);
    EXPECT_GT(fast, slow);
    EXPECT_GT(busy, fast);
}

TEST(Synth, HierarchiesIncludeChildren)
{
    auto child = std::make_shared<Module>();
    child->name = "c";
    child->reg("r", 64);
    auto top = std::make_shared<Module>();
    top->name = "t";
    Instance inst;
    inst.name = "u";
    inst.module = child;
    top->instances.push_back(std::move(inst));
    SynthReport r = synthesize(*top);
    EXPECT_GT(r.seq_area_um2, 50.0);
}

TEST(Synth, Table1DesignsHavePlausibleMagnitudes)
{
    // Shapes from Table 1: AES is by far the largest; the spill
    // register is the smallest; everything lands in a 22nm-believable
    // range.
    SynthReport fifo = synthesize(*designs::buildFifoBaseline());
    SynthReport spill = synthesize(*designs::buildSpillRegBaseline());
    SynthReport aes = synthesize(*designs::buildAesBaseline());
    SynthReport ptw = synthesize(*designs::buildPtwBaseline());

    EXPECT_GT(aes.areaUm2(), 4 * fifo.areaUm2());
    EXPECT_LT(spill.areaUm2(), fifo.areaUm2());
    EXPECT_GT(fifo.areaUm2(), 100);
    EXPECT_LT(fifo.areaUm2(), 5000);
    EXPECT_GT(ptw.areaUm2(), 100);
    // All designs clock above 500 MHz in the model.
    for (const auto *r : {&fifo, &spill, &aes, &ptw})
        EXPECT_GT(r->fmaxMhz(), 500.0) << r->str();
}

TEST(Synth, MeasuredActivityFeedsPower)
{
    auto mod = designs::buildFifoBaseline();
    SynthReport r = synthesize(*mod);
    Sim sim(mod);
    sim.setInput("inp_enq_valid", 1);
    sim.setInput("outp_deq_ack", 1);
    for (int i = 0; i < 200; i++) {
        sim.setInput("inp_enq_data", i * 2654435761u);
        sim.step();
    }
    double toggles_per_cycle =
        static_cast<double>(sim.totalToggles()) / sim.cycle();
    double p = r.powerMw(2000, toggles_per_cycle);
    EXPECT_GT(p, 0.01);
    EXPECT_LT(p, 100.0);
}

} // namespace
