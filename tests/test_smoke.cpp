/**
 * @file
 * End-to-end smoke tests: parse -> type check -> codegen -> simulate.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

const char *kCounter = R"(
proc counter() {
    reg cnt : logic[32];
    loop {
        set cnt := *cnt + 1 >> cycle 1
    }
}
)";

TEST(Smoke, CounterCompilesAndRuns)
{
    CompileOutput out = compileAnvil(kCounter);
    ASSERT_TRUE(out.ok) << out.diags.render();
    auto mod = out.module("counter");
    ASSERT_NE(mod, nullptr);

    rtl::Sim sim(mod);
    // The counter increments every two cycles (assign + cycle 1).
    sim.step(20);
    uint64_t v = sim.peek("cnt").toUint64();
    EXPECT_GE(v, 8u);
    EXPECT_LE(v, 11u);
}

const char *kEcho = R"(
chan echo_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@req)
}

proc server(ep : left echo_ch) {
    reg data : logic[8];
    loop {
        set data := recv ep.req >>
        send ep.res (*data) >>
        cycle 1
    }
}

proc client(ep : right echo_ch) {
    reg total : logic[8];
    reg n : logic[8];
    loop {
        send ep.req (*n) >>
        let r = recv ep.res >>
        set total := *total + r;
        set n := *n + 1 >>
        cycle 1
    }
}

proc top() {
    chan l -- r : echo_ch;
    spawn server(l);
    spawn client(r);
    loop { cycle 1 }
}
)";

TEST(Smoke, EchoSystemTypeChecksAndRuns)
{
    CompileOutput out = compileAnvil(kEcho, {.top = "top"});
    ASSERT_TRUE(out.ok) << out.diags.render();
    auto mod = out.module("top");
    ASSERT_NE(mod, nullptr);

    rtl::Sim sim(mod);
    sim.step(100);
    // client sends 0,1,2,...; total accumulates the echoed values.
    uint64_t total = sim.peek("client_1.total").toUint64();
    uint64_t n = sim.peek("client_1.n").toUint64();
    ASSERT_GE(n, 3u);
    // total == 0+1+...+(n-1)
    EXPECT_EQ(total, (n * (n - 1) / 2) & 0xff);
}

// Figure 6: the Encrypt process with a loaned-register violation and
// overlapping sends.
const char *kEncrypt = R"(
chan encrypt_ch {
    left enc_req : (logic[8]@enc_res),
    right enc_res : (logic[8]@enc_req)
}
chan rng_ch {
    left rng_req : (logic[8]@#1),
    right rng_res : (logic[8]@#2)
}

proc encrypt(ch1 : left encrypt_ch, ch2 : left rng_ch) {
    reg rd1_ctext : logic[8];
    reg r2_key : logic[8];
    loop {
        let ptext = recv ch1.enc_req;
        let noise = recv ch2.rng_req;
        let r1_key = 25;
        ptext >>
        if ptext != 0 {
            noise >>
            set rd1_ctext := (ptext ^ r1_key) + noise
        } else {
            set rd1_ctext := ptext
        };
        cycle 1 >>
        set r2_key := r1_key ^ noise;
        let ctext_out = *rd1_ctext ^ *r2_key;
        send ch2.rng_res (*r2_key) >>
        send ch1.enc_res (ctext_out) >>
        send ch1.enc_res (r1_key)
    }
}
)";

TEST(Smoke, EncryptViolationsDetected)
{
    CompileOutput out = compileAnvil(kEncrypt);
    EXPECT_FALSE(out.ok);
    std::string diag = out.diags.render();
    // The paper reports: noise not live long enough, assignment to the
    // loaned register r2_key, and overlapping enc_res sends.
    EXPECT_NE(diag.find("not live long enough"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("loaned register"), std::string::npos) << diag;
    EXPECT_NE(diag.find("verlapping sends"), std::string::npos) << diag;
}

TEST(Smoke, SystemVerilogEmitted)
{
    CompileOutput out = compileAnvil(kCounter);
    ASSERT_TRUE(out.ok) << out.diags.render();
    EXPECT_NE(out.systemverilog.find("module counter"),
              std::string::npos);
    EXPECT_NE(out.systemverilog.find("always_ff"), std::string::npos);
}

} // namespace
