/**
 * @file
 * Lexer and parser unit tests: token kinds, SystemVerilog-style sized
 * literals, channel/process/term structure, operator precedence, and
 * error recovery.
 */

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"

using namespace anvil;

namespace {

std::vector<Token>
lex(const std::string &src, DiagEngine &diags)
{
    Lexer lexer(src, diags);
    return lexer.lex();
}

TEST(Lexer, BasicTokens)
{
    DiagEngine d;
    auto toks = lex("chan proc >> ; := -- @ # dyn", d);
    ASSERT_FALSE(d.hasErrors());
    std::vector<Tok> kinds;
    for (const auto &t : toks)
        kinds.push_back(t.kind);
    EXPECT_EQ(kinds,
              (std::vector<Tok>{Tok::KwChan, Tok::KwProc, Tok::Arrow,
                                Tok::Semi, Tok::Assign, Tok::DashDash,
                                Tok::At, Tok::Hash, Tok::KwDyn,
                                Tok::Eof}));
}

TEST(Lexer, SizedLiterals)
{
    DiagEngine d;
    auto toks = lex("32'h100000 8'd255 1'b1 4'b1010 25", d);
    ASSERT_FALSE(d.hasErrors());
    EXPECT_EQ(toks[0].kind, Tok::SizedNumber);
    EXPECT_EQ(toks[0].width, 32);
    EXPECT_EQ(toks[0].value, 0x100000u);
    EXPECT_EQ(toks[1].width, 8);
    EXPECT_EQ(toks[1].value, 255u);
    EXPECT_EQ(toks[2].width, 1);
    EXPECT_EQ(toks[2].value, 1u);
    EXPECT_EQ(toks[3].value, 10u);
    EXPECT_EQ(toks[4].kind, Tok::Number);
    EXPECT_EQ(toks[4].width, 0);
}

TEST(Lexer, CommentsAndStrings)
{
    DiagEngine d;
    auto toks = lex("a // comment\n /* block\ncomment */ b "
                    "\"hello world\"", d);
    ASSERT_FALSE(d.hasErrors());
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].kind, Tok::String);
    EXPECT_EQ(toks[2].text, "hello world");
}

TEST(Lexer, TracksLocations)
{
    DiagEngine d;
    auto toks = lex("a\n  b", d);
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Parser, ChannelDefinition)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
chan mem_ch {
    left rd_req : (logic[8]@#1) @#2-@dyn,
    right rd_res : (logic[8]@rd_req),
    right wr_res : (logic[1]@#1) @#wr_req+1-@#wr_req+1
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    const ChannelDef *c = p.findChannel("mem_ch");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->messages.size(), 3u);

    const MessageDef &rd_req = c->messages[0];
    EXPECT_EQ(rd_req.dir, MsgDir::Left);
    EXPECT_EQ(rd_req.width_expr, 8);
    EXPECT_EQ(rd_req.lifetime.kind, Duration::Kind::Cycles);
    EXPECT_EQ(rd_req.lifetime.cycles, 1);
    EXPECT_EQ(rd_req.left_sync.kind, SyncMode::Kind::Static);
    EXPECT_EQ(rd_req.left_sync.cycles, 2);
    EXPECT_EQ(rd_req.right_sync.kind, SyncMode::Kind::Dynamic);

    const MessageDef &rd_res = c->messages[1];
    EXPECT_EQ(rd_res.lifetime.kind, Duration::Kind::Message);
    EXPECT_EQ(rd_res.lifetime.msg, "rd_req");

    const MessageDef &wr_res = c->messages[2];
    EXPECT_EQ(wr_res.left_sync.kind, SyncMode::Kind::Dependent);
    EXPECT_EQ(wr_res.left_sync.dep_msg, "wr_req");
    EXPECT_EQ(wr_res.left_sync.cycles, 1);
}

TEST(Parser, MessagePlusDuration)
{
    DiagEngine d;
    Program p = parseAnvil(
        "chan c { left a : (logic[8]@res+1), right res : (logic@#1) }",
        d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    const MessageDef *m = p.findChannel("c")->findMessage("a");
    EXPECT_EQ(m->lifetime.kind, Duration::Kind::Message);
    EXPECT_EQ(m->lifetime.msg, "res");
    EXPECT_EQ(m->lifetime.cycles, 1);
}

TEST(Parser, ProcessStructure)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
chan c { left a : (logic@#1) }
proc child(ep : left c) { loop { cycle 1 } }
proc top() {
    reg r : logic[32];
    chan l -- rr : c;
    spawn child(l);
    loop { set r := *r + 1 >> cycle 1 }
    recursive { cycle 1 >> recurse }
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    const ProcDef *top = p.findProc("top");
    ASSERT_NE(top, nullptr);
    EXPECT_EQ(top->regs.size(), 1u);
    EXPECT_EQ(top->regs[0].width, 32);
    EXPECT_EQ(top->chans.size(), 1u);
    EXPECT_EQ(top->chans[0].left_ep, "l");
    EXPECT_EQ(top->spawns.size(), 1u);
    ASSERT_EQ(top->threads.size(), 2u);
    EXPECT_FALSE(top->threads[0].recursive);
    EXPECT_TRUE(top->threads[1].recursive);
}

TEST(Parser, WaitBindsLooserThanJoin)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
proc t() { reg a : logic; reg b : logic;
    loop { set a := 1; set b := 2 >> cycle 1 }
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    const Term *body = p.findProc("t")->threads[0].body.get();
    // ((set a ; set b) >> cycle 1)
    ASSERT_EQ(body->kind, TermKind::Wait);
    EXPECT_EQ(body->kids[0]->kind, TermKind::Join);
    EXPECT_EQ(body->kids[1]->kind, TermKind::Cycle);
}

TEST(Parser, ExpressionPrecedence)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
proc t() { reg r : logic[8];
    loop { set r := *r + 1 ^ *r & 3 >> cycle 1 }
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    // ^ binds looser than &, + binds tighter than both:
    // (*r + 1) ^ ((*r) & 3)
    const Term *body = p.findProc("t")->threads[0].body.get();
    const Term *rhs = body->kids[0]->kids[0].get();
    ASSERT_EQ(rhs->kind, TermKind::Binop);
    EXPECT_EQ(rhs->op, "^");
    EXPECT_EQ(rhs->kids[0]->op, "+");
    EXPECT_EQ(rhs->kids[1]->op, "&");
}

TEST(Parser, SliceAndIntrinsics)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
proc t() { reg r : logic[32];
    loop { set r := (sbox((*r)[7:0])) + (shr(*r, 4))[3:0] >> cycle 1 }
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
}

TEST(Parser, IfElseChains)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
proc t() { reg r : logic[8];
    loop {
        if *r == 0 { set r := 1 } else {
        if *r == 1 { set r := 2 } else { set r := 0 } } >> cycle 1
    }
}
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
}

TEST(Parser, ReportsSyntaxErrors)
{
    DiagEngine d;
    parseAnvil("proc t( { }", d);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, RecoversAfterBadProc)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
proc bad( { }
proc good() { loop { cycle 1 } }
)", d);
    EXPECT_TRUE(d.hasErrors());
    EXPECT_NE(p.findProc("good"), nullptr);
}

TEST(Parser, DuplicateDefinitionsRejected)
{
    DiagEngine d;
    parseAnvil("proc a() { loop { cycle 1 } } "
               "proc a() { loop { cycle 1 } }", d);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, TypeAliases)
{
    DiagEngine d;
    Program p = parseAnvil(R"(
type addr_data_pair = logic[40];
chan c { left wr : (addr_data_pair@#1) }
)", d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    EXPECT_EQ(p.typeWidth("addr_data_pair", 1), 40);
    const MessageDef *m = p.findChannel("c")->findMessage("wr");
    EXPECT_EQ(p.typeWidth(m->dtype, m->width_expr), 40);
}

} // namespace
