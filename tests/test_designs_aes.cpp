/**
 * @file
 * AES cipher core: the software golden model matches FIPS-197 test
 * vectors, and both the handwritten RTL baseline and the
 * Anvil-compiled core match the golden model on fixed and random
 * blocks, with round-proportional latency.
 */

#include <gtest/gtest.h>

#include <random>

#include "designs/designs.h"
#include "harness.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::compileDesign;
using anvil::testing::transact;

namespace {

std::vector<uint8_t>
bytesFromHex(const std::string &h)
{
    std::vector<uint8_t> out;
    for (size_t i = 0; i < h.size(); i += 2)
        out.push_back(static_cast<uint8_t>(
            std::stoul(h.substr(i, 2), nullptr, 16)));
    return out;
}

TEST(AesModel, Fips197VectorC1)
{
    // FIPS-197 Appendix C.1.
    auto key = bytesFromHex("000102030405060708090a0b0c0d0e0f");
    auto pt = bytesFromHex("00112233445566778899aabbccddeeff");
    auto ct = aesEncryptBlock(key, pt);
    EXPECT_EQ(ct, bytesFromHex("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

TEST(AesModel, Fips197AppendixB)
{
    auto key = bytesFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    auto pt = bytesFromHex("3243f6a8885a308d313198a2e0370734");
    auto ct = aesEncryptBlock(key, pt);
    EXPECT_EQ(ct, bytesFromHex("3925841d02dc09fbdc118597196a0b32"));
}

/** Pack key+pt into the 256-bit request payload (key high). */
BitVec
packReq(const std::vector<uint8_t> &key, const std::vector<uint8_t> &pt)
{
    BitVec v(256);
    for (int i = 0; i < 16; i++)
        for (int b = 0; b < 8; b++) {
            v.setBit(8 * i + b, (pt[i] >> b) & 1);
            v.setBit(128 + 8 * i + b, (key[i] >> b) & 1);
        }
    return v;
}

std::vector<uint8_t>
unpackCt(const BitVec &v)
{
    std::vector<uint8_t> out(16);
    for (int i = 0; i < 16; i++) {
        uint8_t b = 0;
        for (int j = 0; j < 8; j++)
            if (v.bit(8 * i + j))
                b |= 1 << j;
        out[i] = b;
    }
    return out;
}

class AesTest : public ::testing::TestWithParam<bool>
{
  public:
    rtl::ModulePtr build()
    {
        if (!GetParam())
            return buildAesBaseline();
        std::string errs;
        auto mod = compileDesign(anvilAesSource(), "aes", &errs);
        EXPECT_NE(mod, nullptr) << errs;
        return mod;
    }
};

TEST_P(AesTest, MatchesGoldenModel)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);

    auto key = bytesFromHex("000102030405060708090a0b0c0d0e0f");
    auto pt = bytesFromHex("00112233445566778899aabbccddeeff");
    int latency = -1;
    BitVec ct = transact(sim, "io_req", "io_res", packReq(key, pt),
                         &latency);
    ASSERT_GE(latency, 0);
    EXPECT_EQ(unpackCt(ct), aesEncryptBlock(key, pt));
    // Round-based core: 10 rounds plus load/respond overhead.
    EXPECT_GE(latency, 10);
    EXPECT_LE(latency, 13);
}

TEST_P(AesTest, RandomBlocks)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    std::mt19937 rng(42);

    for (int trial = 0; trial < 8; trial++) {
        std::vector<uint8_t> key(16), pt(16);
        for (auto &b : key)
            b = static_cast<uint8_t>(rng());
        for (auto &b : pt)
            b = static_cast<uint8_t>(rng());
        BitVec ct = transact(sim, "io_req", "io_res", packReq(key, pt));
        EXPECT_EQ(unpackCt(ct), aesEncryptBlock(key, pt))
            << "trial " << trial;
    }
}

TEST_P(AesTest, BackToBackBlocksIndependent)
{
    auto mod = build();
    ASSERT_NE(mod, nullptr);
    rtl::Sim sim(mod);
    auto key = bytesFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    auto pt1 = bytesFromHex("3243f6a8885a308d313198a2e0370734");
    auto pt2 = bytesFromHex("00000000000000000000000000000000");

    BitVec c1 = transact(sim, "io_req", "io_res", packReq(key, pt1));
    BitVec c2 = transact(sim, "io_req", "io_res", packReq(key, pt2));
    EXPECT_EQ(unpackCt(c1), aesEncryptBlock(key, pt1));
    EXPECT_EQ(unpackCt(c2), aesEncryptBlock(key, pt2));
}

INSTANTIATE_TEST_SUITE_P(BaselineAndAnvil, AesTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "anvil" : "baseline";
                         });

} // namespace
