/**
 * @file
 * BSV-style rule scheduler tests (§2.2, Fig. 2): conflict detection,
 * per-cycle conflict-free scheduling, and the central demonstration —
 * a schedule that is conflict-free every cycle yet violates the
 * multi-cycle timing contract of a cache request, while Anvil rejects
 * the equivalent description at compile time.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "bsv/rules.h"

using namespace anvil;
using namespace anvil::bsv;

namespace {

TEST(Bsv, ConflictDetection)
{
    RuleDesign d;
    Rule w1{"w1", [](const State &) { return true; },
            [](State &) {}, {}, {"x"}};
    Rule w2{"w2", [](const State &) { return true; },
            [](State &) {}, {}, {"x"}};
    Rule r1{"r1", [](const State &) { return true; },
            [](State &) {}, {"x"}, {}};
    Rule other{"o", [](const State &) { return true; },
               [](State &) {}, {"y"}, {"z"}};
    EXPECT_TRUE(d.conflicts(w1, w2));   // write-write
    EXPECT_TRUE(d.conflicts(w1, r1));   // read-write
    EXPECT_FALSE(d.conflicts(r1, other));
}

TEST(Bsv, ConflictFreeRulesFireTogether)
{
    RuleDesign d;
    d.addReg("a");
    d.addReg("b");
    d.addRule({"inc_a", [](const State &) { return true; },
               [](State &s) { s["a"]++; }, {"a"}, {"a"}});
    d.addRule({"inc_b", [](const State &) { return true; },
               [](State &s) { s["b"]++; }, {"b"}, {"b"}});
    auto fired = d.step();
    EXPECT_EQ(fired.size(), 2u);
    EXPECT_EQ(d.state()["a"], 1u);
    EXPECT_EQ(d.state()["b"], 1u);
}

TEST(Bsv, ConflictingRulesSerialize)
{
    RuleDesign d;
    d.addReg("x");
    d.addRule({"w1", [](const State &) { return true; },
               [](State &s) { s["x"] = 1; }, {}, {"x"}});
    d.addRule({"w2", [](const State &) { return true; },
               [](State &s) { s["x"] = 2; }, {}, {"x"}});
    auto fired = d.step();
    EXPECT_EQ(fired, std::vector<std::string>{"w1"});
}

TEST(Bsv, GuardsGateRules)
{
    RuleDesign d;
    d.addReg("go");
    d.addReg("x");
    d.addRule({"gated",
               [](const State &s) { return s.at("go") == 1; },
               [](State &s) { s["x"] = 7; }, {"go"}, {"x"}});
    EXPECT_TRUE(d.step().empty());
    d.state()["go"] = 1;
    EXPECT_EQ(d.step().size(), 1u);
    EXPECT_EQ(d.state()["x"], 7u);
}

/**
 * Fig. 2: Top reads a value from a cache and enqueues it into a FIFO.
 * The cache contract requires `address` to stay unchanged from the
 * request until the response arrives.  The BSV rules are pairwise
 * conflict-free within each cycle, so the scheduler happily fires
 * `change_address` while the cache is still busy — a timing hazard no
 * per-cycle analysis can see.
 */
RuleDesign
makeFig2Design(int cache_latency)
{
    RuleDesign d;
    d.addReg("address", 0x10);
    d.addReg("cache_busy", 0);
    d.addReg("cache_addr", 0);     // address the cache sampled...
    d.addReg("cache_timer", 0);
    d.addReg("fifo_data", 0);
    d.addReg("fifo_full", 0);
    d.addReg("got_data", 0);
    d.addReg("data", 0);

    // Rule 1: send the cache request (registers only the *current*
    // address at request time; the cache dereferences it when the
    // lookup completes, modelling a wire-connected address bus).
    d.addRule({"send_cache_req",
               [](const State &s) { return s.at("cache_busy") == 0; },
               [=](State &s) {
                   s["cache_busy"] = 1;
                   s["cache_timer"] = cache_latency;
               },
               {"cache_busy"}, {"cache_busy", "cache_timer"}});

    // Rule 2: the hazard — advance the address for the next request.
    d.addRule({"change_address",
               [](const State &s) { return s.at("cache_busy") == 1; },
               [](State &s) { s["address"]++; },
               {"cache_busy", "address"}, {"address"}});

    // Cache progress (the environment): dereferences the *live*
    // address wire when the lookup completes.
    d.addRule({"cache_step",
               [](const State &s) {
                   return s.at("cache_busy") == 1 &&
                       s.at("got_data") == 0;
               },
               [](State &s) {
                   if (s["cache_timer"] > 0) {
                       s["cache_timer"]--;
                   }
                   if (s["cache_timer"] == 0) {
                       s["data"] = s["address"] + 0x100;
                       s["got_data"] = 1;
                       s["cache_busy"] = 0;
                   }
               },
               {"cache_busy", "cache_timer", "got_data"},
               {"cache_timer", "data", "got_data", "cache_busy"}});

    // Rule 3: enqueue the response into the FIFO.
    d.addRule({"send_fifo_enq",
               [](const State &s) {
                   return s.at("got_data") == 1 &&
                       s.at("fifo_full") == 0;
               },
               [](State &s) {
                   s["fifo_data"] = s.at("data");
                   s["got_data"] = 0;
               },
               {"got_data", "fifo_full", "data"},
               {"fifo_data", "got_data"}});
    return d;
}

TEST(Bsv, Fig2ScheduleIsConflictFreePerCycle)
{
    RuleDesign d = makeFig2Design(2);
    RuleDesign check = makeFig2Design(2);
    Schedule sched = d.run(8);
    // The scheduler's invariant: every cycle's fired set is pairwise
    // conflict-free.
    int total_fired = 0;
    for (const auto &cyc : sched) {
        total_fired += static_cast<int>(cyc.size());
        for (size_t i = 0; i < cyc.size(); i++) {
            for (size_t j = i + 1; j < cyc.size(); j++) {
                const Rule *a = nullptr, *b = nullptr;
                for (const auto &r : check.rules()) {
                    if (r.name == cyc[i])
                        a = &r;
                    if (r.name == cyc[j])
                        b = &r;
                }
                ASSERT_NE(a, nullptr);
                ASSERT_NE(b, nullptr);
                EXPECT_FALSE(check.conflicts(*a, *b))
                    << a->name << " vs " << b->name;
            }
        }
    }
    EXPECT_GE(total_fired, 4);
}

TEST(Bsv, Fig2TimingHazardManifests)
{
    // With a 2-cycle cache, change_address fires while the lookup is
    // in flight, so the cache dereferences the *wrong* address.
    RuleDesign d = makeFig2Design(2);
    d.run(8);
    // The first value enqueued should be for address 0x10
    // (0x10 + 0x100 = 0x110), but the mutated address leaked in.
    EXPECT_NE(d.state()["fifo_data"], 0x110u)
        << "expected the timing hazard to corrupt the lookup";
}

TEST(Bsv, Fig2AnvilRejectsTheUnsafeOrdering)
{
    // The same design in Anvil: the cache contract keeps `address`
    // loaned until the response, so mutating it right after the
    // request is a compile-time error ("Attempted assignment to a
    // loaned register", Fig. 2 top).
    CompileOutput out = compileAnvil(R"(
chan cache_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@res+1)
}
chan fifo_ch {
    left enq_req : (logic[8]@#1)
}
proc top(cache : right cache_ch, fifo : right fifo_ch) {
    reg address : logic[8];
    loop {
        send cache.req (*address) >>
        set address := *address + 1 >>
        let data = recv cache.res >>
        send fifo.enq_req (data) >>
        cycle 1
    }
}
)");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.diags.render().find("loaned register"),
              std::string::npos) << out.diags.render();
}

TEST(Bsv, Fig2AnvilAcceptsTheGuidedRewrite)
{
    // Fig. 2's final, timing-safe version: the address changes only
    // after the response has arrived.
    CompileOutput out = compileAnvil(R"(
chan cache_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@res+1)
}
chan fifo_ch {
    left enq_req : (logic[8]@#1)
}
proc top(cache : right cache_ch, fifo : right fifo_ch) {
    reg address : logic[8];
    reg enq_data : logic[8];
    loop {
        send cache.req (*address) >>
        let data = recv cache.res >>
        set address := *address + 1;
        set enq_data := data >>
        send fifo.enq_req (*enq_data) >>
        cycle 1
    }
}
)");
    EXPECT_TRUE(out.ok) << out.diags.render();
}

} // namespace
