/**
 * @file
 * Type-checker tests: one case per safety rule (valid value use,
 * valid register mutation, valid message send), the paper's figure
 * examples (Fig. 5, Fig. 6, Fig. 9, Listing 1), sync-mode checks, and
 * structural rules (zero-cycle loops, multi-thread writes, direction
 * errors).
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "designs/designs.h"

using namespace anvil;

namespace {

::testing::AssertionResult
compiles(const std::string &src)
{
    CompileOutput out = compileAnvil(src);
    if (out.ok)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << out.diags.render();
}

::testing::AssertionResult
rejects(const std::string &src, const std::string &needle)
{
    CompileOutput out = compileAnvil(src);
    if (out.ok)
        return ::testing::AssertionFailure()
            << "expected a type error containing '" << needle << "'";
    std::string diag = out.diags.render();
    if (diag.find(needle) == std::string::npos)
        return ::testing::AssertionFailure()
            << "missing '" << needle << "' in:\n" << diag;
    return ::testing::AssertionSuccess();
}

// --- Valid value use -----------------------------------------------------

TEST(Checker, RecvValueUsableWithinContract)
{
    EXPECT_TRUE(compiles(R"(
chan c { left a : (logic[8]@#2) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> cycle 1 >> set r := v }
}
)"));
}

TEST(Checker, RecvValueDeadAfterContract)
{
    EXPECT_TRUE(rejects(R"(
chan c { left a : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> cycle 2 >> set r := v }
}
)", "not live long enough"));
}

TEST(Checker, DynamicContractValueUsableUntilNextSync)
{
    // [req, req->res): usable across an arbitrary wait.
    EXPECT_TRUE(compiles(R"(
chan c { left req : (logic[8]@res), right res : (logic[8]@#1) }
proc server(ep : left c) {
    reg r : logic[8];
    loop {
        let v = recv ep.req >>
        cycle 3 >>
        set r := v >>
        send ep.res (*r) >>
        cycle 1
    }
}
)"));
}

// --- Valid register mutation ---------------------------------------------

TEST(Checker, SelfIncrementIsSafe)
{
    EXPECT_TRUE(compiles(R"(
proc p() { reg c : logic[32]; loop { set c := *c + 1 >> cycle 1 } }
)"));
}

TEST(Checker, MutationDuringLoanRejected)
{
    EXPECT_TRUE(rejects(R"(
chan c { left d : (logic[8]@#2) }
proc p(ep : right c) {
    reg r : logic[8];
    loop {
        send ep.d (*r) >>
        set r := *r + 1 >>
        cycle 2
    }
}
)", "loaned register"));
}

TEST(Checker, MutationAfterLoanExpiryAccepted)
{
    EXPECT_TRUE(compiles(R"(
chan c { left d : (logic[8]@#2) }
proc p(ep : right c) {
    reg r : logic[8];
    loop {
        send ep.d (*r) >>
        cycle 2 >>
        set r := *r + 1
    }
}
)"));
}

TEST(Checker, MutationInOtherBranchArmAccepted)
{
    // The loan and the mutation are in mutually exclusive arms.
    EXPECT_TRUE(compiles(R"(
chan c { left d : (logic[8]@#2), right go : (logic[1]@#1) }
proc p(ep : right c) {
    reg r : logic[8];
    loop {
        let g = recv ep.go >>
        if g == 1 { send ep.d (*r) >> cycle 2 }
        else { set r := *r + 1 >> cycle 1 } >>
        cycle 1
    }
}
)"));
}

// --- Valid message send ---------------------------------------------------

TEST(Checker, OverlappingSendsRejected)
{
    EXPECT_TRUE(rejects(R"(
chan c { left d : (logic[8]@#4) }
proc p(ep : right c) {
    loop {
        send ep.d (1) >>
        send ep.d (2) >>
        cycle 1
    }
}
)", "verlapping sends"));
}

TEST(Checker, SpacedSendsAccepted)
{
    EXPECT_TRUE(compiles(R"(
chan c { left d : (logic[8]@#2) }
proc p(ep : right c) {
    loop {
        send ep.d (1) >>
        cycle 2 >>
        send ep.d (2) >>
        cycle 2
    }
}
)"));
}

TEST(Checker, SendRequiresDirection)
{
    EXPECT_TRUE(rejects(R"(
chan c { left d : (logic[8]@#1) }
proc p(ep : left c) {
    loop { send ep.d (1) >> cycle 1 }
}
)", "wrong direction"));
}

TEST(Checker, RecvRequiresDirection)
{
    EXPECT_TRUE(rejects(R"(
chan c { left d : (logic[8]@#1) }
proc p(ep : right c) {
    reg r : logic[8];
    loop { set r := recv ep.d >> cycle 1 }
}
)", "wrong direction"));
}

// --- Structural rules -----------------------------------------------------

TEST(Checker, ZeroCycleLoopRejected)
{
    EXPECT_TRUE(rejects(R"(
chan c { left a : (logic[8]@#1), right b : (logic[8]@#1) }
proc p(ep : left c) {
    loop { let v = recv ep.a >> send ep.b (v) }
}
)", "zero cycles"));
}

TEST(Checker, MultiThreadWritesRejected)
{
    EXPECT_TRUE(rejects(R"(
proc p() {
    reg r : logic[8];
    loop { set r := 1 >> cycle 1 }
    loop { set r := 2 >> cycle 1 }
}
)", "assigned from 2 threads"));
}

TEST(Checker, UnknownMessageRejected)
{
    EXPECT_TRUE(rejects(R"(
chan c { left a : (logic[8]@#1) }
proc p(ep : left c) { loop { let v = recv ep.nope >> cycle 1 } }
)", "unknown message"));
}

TEST(Checker, RecursiveWithoutRecurseRejected)
{
    EXPECT_TRUE(rejects(R"(
proc p() { recursive { cycle 1 } }
)", "never recurses"));
}

TEST(Checker, RecursivePipelineAccepted)
{
    EXPECT_TRUE(compiles(R"(
chan c { left a : (logic[8]@#1) @#1-@#1, right b : (logic[8]@#1) @#1-@#1 }
proc p(ep : left c) {
    reg s1 : logic[8];
    reg s2 : logic[8];
    recursive {
        let v = recv ep.a >>
        set s1 := v;
        { cycle 1 >> recurse } >>
        set s2 := *s1 >>
        send ep.b (*s2)
    }
}
)"));
}

// --- Sync-mode checks -----------------------------------------------------

TEST(Checker, StaticSyncReceiverTooSlowRejected)
{
    // We promise to take `a` every cycle but only receive every two.
    EXPECT_TRUE(rejects(R"(
chan c { left a : (logic[8]@#1) @#1-@#1 }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> set r := v >> cycle 1 }
}
)", "static sync"));
}

TEST(Checker, StaticSyncReceiverOnTimeAccepted)
{
    EXPECT_TRUE(compiles(R"(
chan c { left a : (logic[8]@#2) @#2-@#2 }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> set r := v }
}
)"));
}

TEST(Checker, StaticSyncSenderTooFastRejected)
{
    EXPECT_TRUE(rejects(R"(
chan c { left a : (logic[8]@#1) @#3-@#3 }
proc p(ep : right c) {
    loop { send ep.a (1) >> cycle 1 }
}
)", "static sync"));
}

// --- Paper examples --------------------------------------------------------

TEST(Checker, Fig5TopUnsafeRejected)
{
    CompileOutput out = compileAnvil(designs::anvilTopUnsafeSource());
    EXPECT_FALSE(out.ok);
    std::string diag = out.diags.render();
    EXPECT_NE(diag.find("loaned register"), std::string::npos) << diag;
    EXPECT_NE(diag.find("not live long enough"), std::string::npos)
        << diag;
}

TEST(Checker, Fig5TopSafeAccepted)
{
    CompileOutput out = compileAnvil(designs::anvilTopSafeSource());
    EXPECT_TRUE(out.ok) << out.diags.render();
}

TEST(Checker, Fig6EncryptAllThreeViolations)
{
    CompileOutput out = compileAnvil(designs::anvilEncryptSource());
    EXPECT_FALSE(out.ok);
    std::string diag = out.diags.render();
    EXPECT_NE(diag.find("Value not live long enough!"),
              std::string::npos) << diag;
    EXPECT_NE(diag.find("loaned register 'r2_key'"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("Possibly overlapping sends of message "
                        "'ch1.enc_res'"), std::string::npos) << diag;
}

TEST(Checker, Listing1ChildRejectedGrandchildAccepted)
{
    CompileOutput out = compileAnvil(designs::anvilListing1Source());
    EXPECT_FALSE(out.ok);
    std::string diag = out.diags.render();
    // The paper's error: the grandchild data only lives one cycle but
    // child sends a derived value that must live until the response.
    EXPECT_NE(diag.find("Value not live long enough in message send!"),
              std::string::npos) << diag;
    // grandchild itself carries no error (only cross-thread warnings).
    for (const auto &d : out.diags.all()) {
        if (d.severity == Severity::Error) {
            EXPECT_EQ(d.message.find("grandchild"), std::string::npos);
        }
    }
}

TEST(Checker, Fig9DmaLoanedRegister)
{
    // Appendix B case 1 (CWE-1298): the DMA contract requires the
    // address to stay until the grant; mutating it mid-request is an
    // error.
    EXPECT_TRUE(rejects(R"(
chan dma_ch {
    left req : (logic[32]@gnt_res),
    right gnt_res : (logic[8]@#1)
}
proc foo(dma : right dma_ch) {
    reg address : logic[32];
    reg protected_address : logic[32];
    loop {
        send dma.req (*address) >>
        set address := *protected_address >>
        let x = recv dma.gnt_res >>
        cycle 1
    }
}
)", "loaned register 'address'"));
}

TEST(Checker, TraceExplainsDecision)
{
    CompileOutput out = compileAnvil(designs::anvilTopSafeSource());
    ASSERT_TRUE(out.ok) << out.diags.render();
    const CheckResult &r = out.checks.at("top_safe");
    EXPECT_TRUE(r.safe);
    std::string trace = r.traceStr();
    EXPECT_NE(trace.find("SAFE"), std::string::npos);
    EXPECT_NE(trace.find("mutated"), std::string::npos);
}

} // namespace
