/**
 * @file
 * Parameterized contract sweeps: the boundary behaviour of the type
 * system.  For a message with contract `@#K`, a use D cycles after
 * the sync must be accepted exactly when D < K; a mutation of a
 * loaned register D cycles after a `@#K`-window send is accepted
 * exactly when D >= K; and static sync modes `@#N` admit receive
 * loops of period P exactly when P <= N.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "support/strings.h"

using namespace anvil;

namespace {

struct Sweep
{
    int contract;
    int delay;
};

std::string
sweepName(const ::testing::TestParamInfo<Sweep> &i)
{
    return strfmt("k%d_d%d", i.param.contract, i.param.delay);
}

/** Use a received value `delay` cycles after the sync. */
class UseAfterContract : public ::testing::TestWithParam<Sweep>
{
};

TEST_P(UseAfterContract, AcceptedIffInsideWindow)
{
    auto [k, d] = GetParam();
    std::string src = strfmt(R"(
chan c { left a : (logic[8]@#%d) }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> cycle %d >> set r := v >> cycle 1 }
}
)", k, d);
    CompileOutput out = compileAnvil(src);
    bool expect_ok = d < k;
    EXPECT_EQ(out.ok, expect_ok)
        << "contract #" << k << ", use at +" << d << "\n"
        << out.diags.render();
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, UseAfterContract,
    ::testing::Values(Sweep{1, 0}, Sweep{1, 1}, Sweep{2, 0},
                      Sweep{2, 1}, Sweep{2, 2}, Sweep{3, 2},
                      Sweep{3, 3}, Sweep{5, 4}, Sweep{5, 5},
                      Sweep{8, 7}, Sweep{8, 8}),
    sweepName);

/** Mutate a register `delay` cycles after a `@#K`-window send. */
class MutateAfterSend : public ::testing::TestWithParam<Sweep>
{
};

TEST_P(MutateAfterSend, AcceptedIffLoanExpired)
{
    auto [k, d] = GetParam();
    std::string src = strfmt(R"(
chan c { left m : (logic[8]@#%d) }
proc p(ep : right c) {
    reg r : logic[8];
    loop {
        send ep.m (*r) >>
        cycle %d >>
        set r := *r + 1 >>
        cycle %d
    }
}
)", k, d, k + 1);
    CompileOutput out = compileAnvil(src);
    // The send window is [init, done + k); the mutation at done + d
    // takes effect at done + d + 1, so d >= k - 1 is safe
    // (Def. C.15 checks mutations on [a, b)).
    bool expect_ok = d >= k - 1;
    EXPECT_EQ(out.ok, expect_ok)
        << "window #" << k << ", mutation at +" << d << "\n"
        << out.diags.render();
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, MutateAfterSend,
    ::testing::Values(Sweep{1, 0}, Sweep{2, 0}, Sweep{2, 1},
                      Sweep{2, 2}, Sweep{3, 1}, Sweep{3, 2},
                      Sweep{4, 2}, Sweep{4, 3}, Sweep{6, 4},
                      Sweep{6, 5}),
    sweepName);

/** Receive loop of period P against a static promise `@#N`. */
class StaticSyncPeriod : public ::testing::TestWithParam<Sweep>
{
};

TEST_P(StaticSyncPeriod, AcceptedIffPeriodWithinPromise)
{
    auto [n, p] = GetParam();
    std::string src = strfmt(R"(
chan c { left a : (logic[8]@#1) @#%d-@#%d }
proc p(ep : left c) {
    reg r : logic[8];
    loop { let v = recv ep.a >> set r := v >> cycle %d }
}
)", n, n, p - 1);
    if (p < 1)
        GTEST_SKIP();
    CompileOutput out = compileAnvil(src);
    // Iteration period is 1 (assign) + (p-1) = p cycles; the receive
    // completes within max_sync = n-1 extra cycles, so the worst-case
    // inter-receive gap is p + n - 1.
    bool expect_ok = p + n - 1 <= n;
    EXPECT_EQ(out.ok, expect_ok)
        << "promise @#" << n << ", loop period " << p << "\n"
        << out.diags.render();
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, StaticSyncPeriod,
    ::testing::Values(Sweep{1, 1}, Sweep{2, 1}, Sweep{2, 2},
                      Sweep{3, 2}, Sweep{3, 3}, Sweep{4, 4},
                      Sweep{4, 5}),
    sweepName);

/** Dynamic `@msg` contracts survive arbitrary waits before the sync. */
class DynamicContractWait : public ::testing::TestWithParam<int>
{
};

TEST_P(DynamicContractWait, UsableUntilNextSyncRegardlessOfWait)
{
    int wait = GetParam();
    std::string src = strfmt(R"(
chan c { left req : (logic[8]@res), right res : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop {
        let v = recv ep.req >>
        cycle %d >>
        set r := v >>
        send ep.res (*r) >>
        cycle 1
    }
}
)", wait);
    CompileOutput out = compileAnvil(src);
    EXPECT_TRUE(out.ok) << "wait " << wait << "\n"
                        << out.diags.render();
}

INSTANTIATE_TEST_SUITE_P(Waits, DynamicContractWait,
                         ::testing::Values(0, 1, 2, 5, 17, 100));

} // namespace
