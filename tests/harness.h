/**
 * @file
 * Shared workload harness for driving valid/ack handshake interfaces
 * of both baseline and Anvil-compiled designs.
 */

#ifndef ANVIL_TESTS_HARNESS_H
#define ANVIL_TESTS_HARNESS_H

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "anvil/compiler.h"
#include "rtl/interp.h"

namespace anvil {
namespace testing {

/** Compile an Anvil source and return the module for `proc_name`. */
inline rtl::ModulePtr
compileDesign(const std::string &source, const std::string &proc_name,
              std::string *errors = nullptr)
{
    CompileOutput out = compileAnvil(source, {.top = proc_name});
    if (errors)
        *errors = out.diags.render();
    if (!out.ok)
        return nullptr;
    return out.module(proc_name);
}

/**
 * Drives a produce/consume stream workload against a design with
 * `<in>_valid/_data/_ack` and `<out>_valid/_data/_ack` ports.
 *
 * Producer offers `items` with the given duty cycle; the consumer
 * accepts with its own duty cycle.  Returns the accepted outputs.
 */
class StreamHarness
{
  public:
    StreamHarness(rtl::Sim &sim, std::string in_prefix,
                  std::string out_prefix, unsigned seed = 1)
        : _sim(sim), _in(std::move(in_prefix)),
          _out(std::move(out_prefix)), _rng(seed)
    {
    }

    /** Probability (percent) that the producer offers data. */
    int produce_duty = 100;
    /** Probability (percent) that the consumer is ready. */
    int consume_duty = 100;

    std::vector<uint64_t>
    run(const std::vector<uint64_t> &items, int max_cycles)
    {
        std::vector<uint64_t> got;
        size_t next = 0;
        for (int cyc = 0; cyc < max_cycles; cyc++) {
            bool offer = next < items.size() &&
                static_cast<int>(roll(_rng) % 100) < produce_duty;
            bool take =
                static_cast<int>(roll(_rng) % 100) < consume_duty;

            _sim.setInput(_in + "_valid", offer ? 1 : 0);
            _sim.setInput(_in + "_data",
                          offer ? items[next] : 0xdeadbeefull);
            _sim.setInput(_out + "_ack", take ? 1 : 0);

            bool in_fire = offer &&
                _sim.peek(_in + "_ack").any();
            bool out_fire = take &&
                _sim.peek(_out + "_valid").any();
            uint64_t out_val =
                _sim.peek(_out + "_data").toUint64();

            _sim.step();
            if (in_fire)
                next++;
            if (out_fire)
                got.push_back(out_val);
            if (got.size() == items.size())
                break;
        }
        return got;
    }

  private:
    static uint32_t roll(std::mt19937 &rng) { return rng(); }

    rtl::Sim &_sim;
    std::string _in;
    std::string _out;
    std::mt19937 _rng;
};

/**
 * One blocking request/response transaction over
 * `<p>_req_*` / `<p>_res_*`-style port pairs.  Returns the response
 * data; `latency` receives the number of cycles from request
 * acceptance to response.
 */
inline BitVec
transact(rtl::Sim &sim, const std::string &req, const std::string &res,
         const BitVec &payload, int *latency = nullptr,
         int timeout = 1000)
{
    sim.setInput(req + "_data", payload);
    sim.setInput(req + "_valid", 1);
    sim.setInput(res + "_ack", 1);
    int start = -1;
    for (int i = 0; i < timeout; i++) {
        bool req_fire = sim.peek(req + "_ack").any();
        bool res_fire = sim.peek(res + "_valid").any();
        BitVec data = sim.peek(res + "_data");
        if (req_fire && start < 0) {
            start = static_cast<int>(sim.cycle());
        }
        if (res_fire && start >= 0) {
            if (latency)
                *latency = static_cast<int>(sim.cycle()) - start;
            sim.step();
            sim.setInput(req + "_valid", 0);
            sim.setInput(res + "_ack", 0);
            return data;
        }
        sim.step();
        if (start >= 0)
            sim.setInput(req + "_valid", 0);
    }
    if (latency)
        *latency = -1;
    return BitVec(1);
}

} // namespace testing
} // namespace anvil

#endif // ANVIL_TESTS_HARNESS_H
