/**
 * @file
 * Coverage engine tests: toggle coverage separates a trivial
 * stimulus from a randomized one on the FIFO eval design, register
 * value bins track actually-visited state, cover/assert points count
 * and catch, and the JSON summary carries the same numbers as the
 * text report.
 */

#include <gtest/gtest.h>

#include <string>

#include "designs/designs.h"
#include "tb/testbench.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

tb::RandomSpec
duty(int pct)
{
    tb::FieldSpec f;
    f.lo = 0;
    f.width = 1;
    f.min = 1;
    f.max = 1;
    tb::RandomSpec spec;
    spec.fields = {f};
    spec.active_pct = pct;
    return spec;
}

/** Run the FIFO under a stimulus and return its coverage engine. */
std::string
runFifo(bool randomized, double *toggle_pct, double *bin_pct,
        uint64_t *enq_hits)
{
    tb::Testbench bench(designs::buildFifoBaseline(), 77);
    if (randomized) {
        bench.driveRandom("inp_enq_data");
        bench.driveRandom("inp_enq_valid", duty(70));
        bench.driveRandom("outp_deq_ack", duty(60));
    } else {
        // Trivial stimulus: nothing ever enqueued or dequeued.
        bench.driveSequence("inp_enq_data", {});
        bench.driveSequence("inp_enq_valid", {});
        bench.driveSequence("outp_deq_ack", {});
    }
    tb::Coverage &cov = bench.coverage();
    cov.addCover("enq-fire", rtl::ref("inp_enq_valid", 1) &
                                 rtl::ref("inp_enq_ack", 1));
    cov.addAssert("ptr-in-range", cst(1, 1),
                  binop(Op::Le, rtl::ref("wptr", 4), cst(4, 15)));
    tb::TbResult r = bench.run(400);
    EXPECT_TRUE(r.ok());
    *toggle_pct = cov.togglePct();
    *bin_pct = cov.regBinPct();
    *enq_hits = cov.covers()[0].hits;
    EXPECT_TRUE(cov.assertsOk());
    return cov.report();
}

TEST(TbCoverage, RandomStimulusCoversMoreThanTrivial)
{
    double trivial_toggle, trivial_bins, random_toggle, random_bins;
    uint64_t trivial_enq, random_enq;
    std::string trivial_rep = runFifo(false, &trivial_toggle,
                                      &trivial_bins, &trivial_enq);
    std::string random_rep = runFifo(true, &random_toggle,
                                     &random_bins, &random_enq);

    // The idle FIFO barely moves; the random one works hard.
    EXPECT_LT(trivial_toggle, 10.0);
    EXPECT_GT(random_toggle, 60.0);
    EXPECT_GT(random_toggle, trivial_toggle + 40.0);
    EXPECT_GT(random_bins, trivial_bins);
    EXPECT_EQ(trivial_enq, 0u);
    EXPECT_GT(random_enq, 100u);

    // Reports render and carry the headline numbers.
    EXPECT_NE(trivial_rep.find("coverage: 400 samples"),
              std::string::npos);
    EXPECT_NE(random_rep.find("cover  enq-fire"), std::string::npos);
}

TEST(TbCoverage, ToggleBitsRequireBothEdges)
{
    // d rises once and never falls: rose but not fell -> uncovered.
    auto m = std::make_shared<Module>();
    m->name = "edge";
    m->input("d", 1);
    m->wire("q", rtl::ref("d", 1));

    tb::Testbench bench(m);
    bench.driveSequence("d", {BitVec(1, 0), BitVec(1, 1)}, true);
    tb::Coverage &cov = bench.coverage();
    bench.run(6);
    for (const auto &sc : cov.signals())
        EXPECT_EQ(sc.coveredBits(), 0) << sc.name;
    EXPECT_EQ(cov.togglePct(), 0.0);

    // A full 0-1-0 excursion covers the bit.
    tb::Testbench bench2(std::make_shared<Module>(*m));
    bench2.driveSequence("d", {BitVec(1, 0), BitVec(1, 1),
                               BitVec(1, 0)});
    tb::Coverage &cov2 = bench2.coverage();
    bench2.run(4);
    EXPECT_EQ(cov2.togglePct(), 100.0);
}

TEST(TbCoverage, RegisterBinsTrackVisitedValues)
{
    // A 2-bit counter visits all four values.
    auto m = std::make_shared<Module>();
    m->name = "cnt2";
    auto c = m->reg("c", 2);
    m->update("c", cst(1, 1), c + cst(2, 1));

    tb::Testbench bench(m);
    tb::Coverage &cov = bench.coverage();
    bench.run(8);
    ASSERT_EQ(cov.regBins().size(), 1u);
    EXPECT_EQ(cov.regBins()[0].binsHit(), 4);
    EXPECT_EQ(cov.regBinPct(), 100.0);

    // Parked counter: only the reset bin.
    auto m2 = std::make_shared<Module>();
    m2->name = "cnt2b";
    m2->reg("c", 2);
    tb::Testbench bench2(m2);
    tb::Coverage &cov2 = bench2.coverage();
    bench2.run(8);
    EXPECT_EQ(cov2.regBins()[0].binsHit(), 1);
}

TEST(TbCoverage, AssertPointRecordsFailingCycles)
{
    auto m = std::make_shared<Module>();
    m->name = "cnt3";
    auto c = m->reg("c", 3);
    m->update("c", cst(1, 1), c + cst(3, 1));

    tb::Testbench bench(m);
    tb::Coverage &cov = bench.coverage();
    cov.addAssert("c-ne-5", cst(1, 1), ne(rtl::ref("c", 3),
                                          cst(3, 5)));
    bench.run(16);
    ASSERT_EQ(cov.asserts().size(), 1u);
    EXPECT_FALSE(cov.assertsOk());
    EXPECT_EQ(cov.asserts()[0].checked, 16u);
    EXPECT_EQ(cov.asserts()[0].failures, 2u);   // cycles 5 and 13
    EXPECT_EQ(cov.asserts()[0].fail_cycles,
              (std::vector<uint64_t>{5, 13}));
    EXPECT_NE(cov.report().find("failures=2"), std::string::npos);
}

TEST(TbCoverage, SummaryJsonCarriesTheNumbers)
{
    auto m = std::make_shared<Module>();
    m->name = "cnt2";
    auto c = m->reg("c", 2);
    m->update("c", cst(1, 1), c + cst(2, 1));
    tb::Testbench bench(m);
    tb::Coverage &cov = bench.coverage();
    cov.addCover("nonzero", unop(Op::RedOr, rtl::ref("c", 2)));
    bench.run(8);

    std::string json = cov.summaryJson();
    EXPECT_NE(json.find("\"samples\":8"), std::string::npos);
    EXPECT_NE(json.find("\"reg_bins_hit\":4"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"nonzero\",\"hits\":6"),
              std::string::npos);
}

TEST(TbCoverage, CrossCoverageBinsTuplesOfCoverPoints)
{
    // A 2-bit counter: bit 0 alternates, bit 1 has period 4, so all
    // four (bit1, bit0) tuples occur — and pinning the counts checks
    // the binning, not just the occupancy.
    auto m = std::make_shared<Module>();
    m->name = "cnt2";
    auto c = m->reg("c", 2);
    m->update("c", cst(1, 1), c + cst(2, 1));
    tb::Testbench bench(m);
    tb::Coverage &cov = bench.coverage();
    cov.addCover("lo", slice(rtl::ref("c", 2), 0, 1));
    cov.addCover("hi", slice(rtl::ref("c", 2), 1, 1));
    cov.cross("hi-x-lo", "hi", "lo");
    bench.run(8);

    ASSERT_EQ(cov.crosses().size(), 1u);
    const tb::CrossPoint &x = cov.crosses()[0];
    EXPECT_EQ(x.binsHit(), 4);
    // c walked 0,1,2,3,0,1,2,3: two samples per tuple.
    for (int b = 0; b < 4; b++)
        EXPECT_EQ(x.bins[b], 2u) << "bin " << b;

    // Report and JSON carry the cross.
    EXPECT_NE(cov.report().find("cross  hi-x-lo"),
              std::string::npos);
    std::string json = cov.summaryJson();
    EXPECT_NE(json.find("\"crosses\":[{\"name\":\"hi-x-lo\","
                        "\"bins_hit\":4,\"bins\":[2,2,2,2]}]"),
              std::string::npos)
        << json;
}

TEST(TbCoverage, CrossCoverageSeparatesCorrelatedStimuli)
{
    // Two independently-toggling inputs hit all four tuples; tied
    // inputs never hit the mixed bins.
    auto run_pair = [](bool tied) {
        auto m = std::make_shared<Module>();
        m->name = "pair";
        m->input("a", 1);
        m->input("b", 1);
        tb::Testbench bench(m, 3);
        bench.driveRandom("a");
        if (tied)
            bench.driveWith([](rtl::Sim &s, uint64_t,
                               tb::SplitMix64 &) {
                s.setInput("b", s.peek("a"));
            });
        else
            bench.driveRandom("b");
        tb::Coverage &cov = bench.coverage();
        cov.addCover("a", rtl::ref("a", 1));
        cov.addCover("b", rtl::ref("b", 1));
        cov.cross("ab", "a", "b");
        bench.run(64);
        return cov.crosses()[0].binsHit();
    };
    EXPECT_EQ(run_pair(false), 4);
    EXPECT_EQ(run_pair(true), 2);   // only 00 and 11
}

TEST(TbCoverage, CrossOfUnknownPointThrows)
{
    tb::Coverage cov;
    cov.addCover("known", cst(1, 1));
    EXPECT_THROW(cov.cross("x", "known", "ghost"),
                 std::invalid_argument);
    EXPECT_THROW(cov.cross("x", "ghost", "known"),
                 std::invalid_argument);
}

} // namespace
