/**
 * @file
 * VCD writer and WaveRecorder tests: a golden-file check of the
 * quickstart design's dump (regenerate with ANVIL_REGEN_GOLDEN=1), a
 * round-trip parse of the emitted header against the interned signal
 * table, a differential check that VCD value changes reconstruct
 * exactly the samples WaveRecorder records, and change-only dumping.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "harness.h"
#include "rtl/vcd.h"
#include "rtl/wave.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

#ifndef ANVIL_TEST_DIR
#define ANVIL_TEST_DIR "tests"
#endif

const char *kQuickstartSource = R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}

proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)";

/** A parsed $var declaration. */
struct VcdVar
{
    std::string full_name;   // dotted path below the root scope
    int width = 1;
    bool is_reg = false;
};

/** One parsed value change. */
struct VcdEvent
{
    uint64_t time = 0;
    std::string id;
    BitVec value{1};
};

/** Minimal reader for the VCD subset the writer emits. */
struct ParsedVcd
{
    std::map<std::string, VcdVar> vars;   // id-code -> var
    std::vector<VcdEvent> events;
    bool ok = false;
};

ParsedVcd
parseVcd(const std::string &text)
{
    ParsedVcd out;
    std::istringstream is(text);
    std::string line;
    std::vector<std::string> scopes;
    uint64_t now = 0;
    bool in_defs = true;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (in_defs) {
            if (tok == "$scope") {
                std::string kind, name;
                ls >> kind >> name;
                scopes.push_back(name);
            } else if (tok == "$upscope") {
                if (scopes.empty())
                    return out;
                scopes.pop_back();
            } else if (tok == "$var") {
                std::string type, id, name;
                int width;
                ls >> type >> width >> id >> name;
                std::string full;
                // Drop the root scope (the top module's name).
                for (size_t i = 1; i < scopes.size(); i++)
                    full += scopes[i] + ".";
                full += name;
                out.vars[id] = {full, width, type == "reg"};
            } else if (tok == "$enddefinitions") {
                in_defs = false;
            }
            continue;
        }
        if (tok[0] == '#') {
            now = std::stoull(tok.substr(1));
        } else if (tok == "$dumpvars" || tok == "$end") {
            continue;
        } else if (tok[0] == 'b') {
            std::string id;
            ls >> id;
            if (!out.vars.count(id))
                return out;
            std::string bits = tok.substr(1);
            int w = out.vars[id].width;
            // Re-pad the leading zeros the writer trimmed.
            while (static_cast<int>(bits.size()) < w)
                bits.insert(bits.begin(), '0');
            out.events.push_back(
                {now, id, BitVec::fromBinary(bits)});
        } else {
            // Scalar: value char immediately followed by the id.
            std::string id = tok.substr(1);
            if (!out.vars.count(id))
                return out;
            out.events.push_back(
                {now, id, BitVec(1, tok[0] == '1' ? 1 : 0)});
        }
    }
    out.ok = !in_defs && scopes.empty();
    return out;
}

/** Deterministic quickstart stimulus shared by golden and replay. */
std::string
dumpQuickstart()
{
    auto mod = anvil::testing::compileDesign(kQuickstartSource,
                                             "ping_server");
    if (!mod)
        return "";
    Sim sim(mod);
    std::ostringstream os;
    VcdWriter vcd(sim, os);
    for (int i = 0; i < 24; i++) {
        sim.setInput("io_ping_data", 10 + i * 7);
        sim.setInput("io_ping_valid", i % 4 < 2 ? 1 : 0);
        sim.setInput("io_pong_ack", i % 3 != 0 ? 1 : 0);
        vcd.sample();
        sim.step();
    }
    return os.str();
}

TEST(TbVcd, QuickstartDumpMatchesGolden)
{
    std::string got = dumpQuickstart();
    ASSERT_FALSE(got.empty());

    std::string path =
        std::string(ANVIL_TEST_DIR) + "/golden/quickstart.vcd";
    if (std::getenv("ANVIL_REGEN_GOLDEN")) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << path;
        os << got;
        return;
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden " << path
        << " (run with ANVIL_REGEN_GOLDEN=1 to create)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(TbVcd, HeaderRoundTripsTheInternedSignalTable)
{
    auto mod = designs::buildTlbBaseline();
    Sim sim(mod);
    std::ostringstream os;
    VcdWriter vcd(sim, os);
    vcd.sample();

    ParsedVcd parsed = parseVcd(os.str());
    ASSERT_TRUE(parsed.ok);

    const auto &signals = sim.netlist().signals();
    ASSERT_EQ(parsed.vars.size(), signals.size());
    std::map<std::string, const VcdVar *> by_name;
    for (const auto &[id, var] : parsed.vars) {
        EXPECT_TRUE(by_name.emplace(var.full_name, &var).second)
            << "duplicate var " << var.full_name;
    }
    for (const auto &[name, sig] : signals) {
        auto it = by_name.find(name);
        ASSERT_NE(it, by_name.end()) << name;
        EXPECT_EQ(it->second->width, sig.width) << name;
        EXPECT_EQ(it->second->is_reg,
                  sig.kind == NetSignal::Kind::Reg)
            << name;
    }

    // The checkpoint initializes every declared var.
    std::set<std::string> dumped;
    for (const auto &e : parsed.events)
        if (e.time == 0)
            dumped.insert(e.id);
    EXPECT_EQ(dumped.size(), parsed.vars.size());
}

TEST(TbVcd, ChangeOnlyDumping)
{
    // Constant inputs on a purely combinational design: after the
    // initial checkpoint no further lines are emitted at all.
    auto m = std::make_shared<Module>();
    m->name = "comb";
    auto a = m->input("a", 8);
    m->wire("b", a + cst(8, 1));
    Sim sim(m);
    sim.setInput("a", 3);
    std::ostringstream os;
    VcdWriter vcd(sim, os);
    vcd.sample();
    size_t after_first = os.str().size();
    uint64_t changes_first = vcd.changesWritten();
    EXPECT_EQ(changes_first, 2u);   // a and b
    for (int i = 0; i < 5; i++) {
        sim.step();
        vcd.sample();
    }
    EXPECT_EQ(os.str().size(), after_first);
    EXPECT_EQ(vcd.changesWritten(), changes_first);

    // A change dumps exactly the changed nets, under one timestamp.
    sim.setInput("a", 4);
    vcd.sample();
    EXPECT_EQ(vcd.changesWritten(), changes_first + 2);
    std::string tail = os.str().substr(after_first);
    EXPECT_EQ(tail.find('#'), 0u);
}

TEST(TbVcd, ValueChangesMatchWaveRecorderSamples)
{
    auto mod = designs::buildFifoBaseline();
    Sim sim(mod);
    std::vector<std::string> sigs = {"wptr", "rptr",
                                     "outp_deq_valid",
                                     "outp_deq_data"};
    WaveRecorder wave(sim, sigs);
    std::ostringstream os;
    VcdWriter vcd(sim, os, sigs);

    const int cycles = 60;
    for (int i = 0; i < cycles; i++) {
        sim.setInput("inp_enq_data", i * 2654435761u);
        sim.setInput("inp_enq_valid", i % 3 != 2 ? 1 : 0);
        sim.setInput("outp_deq_ack", i % 5 < 3 ? 1 : 0);
        wave.sample();
        vcd.sample();
        sim.step();
    }

    ParsedVcd parsed = parseVcd(os.str());
    ASSERT_TRUE(parsed.ok);
    ASSERT_EQ(parsed.vars.size(), sigs.size());

    // Reconstruct each signal's per-cycle value from the dump and
    // compare against the recorder's samples.
    std::map<std::string, std::string> id_of;   // name -> id
    for (const auto &[id, var] : parsed.vars)
        id_of[var.full_name] = id;
    for (const auto &sig : sigs) {
        ASSERT_TRUE(id_of.count(sig)) << sig;
        const std::string &id = id_of[sig];
        const auto &samples = wave.samplesOf(sig);
        ASSERT_EQ(samples.size(), static_cast<size_t>(cycles));

        BitVec cur(parsed.vars[id].width);
        size_t ev = 0;
        for (int c = 0; c < cycles; c++) {
            while (ev < parsed.events.size() &&
                   parsed.events[ev].time <=
                       static_cast<uint64_t>(c)) {
                if (parsed.events[ev].id == id)
                    cur = parsed.events[ev].value;
                ev++;
            }
            EXPECT_EQ(cur.toHex(), samples[c].toHex())
                << sig << " @" << c;
        }
    }
}

} // namespace
