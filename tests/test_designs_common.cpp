/**
 * @file
 * Common Cells designs (FIFO buffer, spill register, passthrough
 * stream FIFO): the handwritten baselines behave like FIFOs, the
 * Anvil sources type check, and baseline vs. Anvil produce identical
 * output streams under matched workloads.
 */

#include <gtest/gtest.h>

#include "designs/designs.h"
#include "harness.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::StreamHarness;
using anvil::testing::compileDesign;

namespace {

std::vector<uint64_t>
iota(int n, uint64_t start = 1)
{
    std::vector<uint64_t> v(n);
    for (int i = 0; i < n; i++)
        v[i] = start + i;
    return v;
}

struct Duty
{
    int produce;
    int consume;
};

class CommonCellsSweep : public ::testing::TestWithParam<Duty>
{
};

TEST_P(CommonCellsSweep, FifoBaselineMatchesAnvil)
{
    auto duty = GetParam();
    auto items = iota(40);

    rtl::Sim base(buildFifoBaseline());
    StreamHarness hb(base, "inp_enq", "outp_deq", 7);
    hb.produce_duty = duty.produce;
    hb.consume_duty = duty.consume;
    auto out_base = hb.run(items, 4000);
    EXPECT_EQ(out_base, items);

    std::string errs;
    auto mod = compileDesign(anvilFifoSource(), "fifo", &errs);
    ASSERT_NE(mod, nullptr) << errs;
    rtl::Sim anv(mod);
    StreamHarness ha(anv, "inp_enq", "outp_deq", 7);
    ha.produce_duty = duty.produce;
    ha.consume_duty = duty.consume;
    auto out_anvil = ha.run(items, 4000);
    EXPECT_EQ(out_anvil, items);
}

TEST_P(CommonCellsSweep, SpillRegBaselineMatchesAnvil)
{
    auto duty = GetParam();
    auto items = iota(30, 100);

    rtl::Sim base(buildSpillRegBaseline());
    StreamHarness hb(base, "inp_enq", "outp_deq", 11);
    hb.produce_duty = duty.produce;
    hb.consume_duty = duty.consume;
    auto out_base = hb.run(items, 4000);
    EXPECT_EQ(out_base, items);

    std::string errs;
    auto mod = compileDesign(anvilSpillRegSource(), "spill_reg", &errs);
    ASSERT_NE(mod, nullptr) << errs;
    rtl::Sim anv(mod);
    StreamHarness ha(anv, "inp_enq", "outp_deq", 11);
    ha.produce_duty = duty.produce;
    ha.consume_duty = duty.consume;
    auto out_anvil = ha.run(items, 4000);
    EXPECT_EQ(out_anvil, items);
}

TEST_P(CommonCellsSweep, StreamFifoBaselineMatchesAnvil)
{
    auto duty = GetParam();
    auto items = iota(40, 500);

    rtl::Sim base(buildStreamFifoBaseline());
    StreamHarness hb(base, "inp_enq", "outp_deq", 13);
    hb.produce_duty = duty.produce;
    hb.consume_duty = duty.consume;
    auto out_base = hb.run(items, 4000);
    EXPECT_EQ(out_base, items);

    std::string errs;
    auto mod = compileDesign(anvilStreamFifoSource(), "stream_fifo",
                             &errs);
    ASSERT_NE(mod, nullptr) << errs;
    rtl::Sim anv(mod);
    StreamHarness ha(anv, "io_enq", "io_deq", 13);
    ha.produce_duty = duty.produce;
    ha.consume_duty = duty.consume;
    auto out_anvil = ha.run(items, 4000);
    EXPECT_EQ(out_anvil, items);
}

INSTANTIATE_TEST_SUITE_P(
    DutySweep, CommonCellsSweep,
    ::testing::Values(Duty{100, 100}, Duty{100, 50}, Duty{50, 100},
                      Duty{70, 30}, Duty{30, 70}, Duty{25, 25}),
    [](const ::testing::TestParamInfo<Duty> &info) {
        return "p" + std::to_string(info.param.produce) + "_c" +
            std::to_string(info.param.consume);
    });

TEST(CommonCells, FifoBackpressureWhenFull)
{
    rtl::Sim sim(buildFifoBaseline());
    sim.setInput("inp_enq_valid", 1);
    sim.setInput("outp_deq_ack", 0);
    for (int i = 0; i < 8; i++) {
        sim.setInput("inp_enq_data", 1000 + i);
        ASSERT_TRUE(sim.peek("inp_enq_ack").any()) << "cycle " << i;
        sim.step();
    }
    // Full: push must be refused.
    EXPECT_FALSE(sim.peek("inp_enq_ack").any());
    // Drain one, space frees up.
    sim.setInput("outp_deq_ack", 1);
    sim.setInput("inp_enq_valid", 0);
    EXPECT_EQ(sim.peek("outp_deq_data").toUint64(), 1000u);
    sim.step();
    sim.setInput("outp_deq_ack", 0);
    EXPECT_TRUE(sim.peek("inp_enq_ack").any());
}

TEST(CommonCells, StreamFifoPassthroughSameCycle)
{
    // The fall-through path: empty FIFO, producer and consumer both
    // active in the same cycle.
    rtl::Sim sim(buildStreamFifoBaseline());
    sim.setInput("inp_enq_valid", 1);
    sim.setInput("inp_enq_data", 77);
    sim.setInput("outp_deq_ack", 1);
    EXPECT_TRUE(sim.peek("outp_deq_valid").any());
    EXPECT_EQ(sim.peek("outp_deq_data").toUint64(), 77u);
}

TEST(CommonCells, AnvilFifoTypeChecks)
{
    CompileOutput out = compileAnvil(anvilFifoSource());
    EXPECT_TRUE(out.ok) << out.diags.render();
}

TEST(CommonCells, AnvilStreamFifoTypeChecks)
{
    CompileOutput out = compileAnvil(anvilStreamFifoSource());
    EXPECT_TRUE(out.ok) << out.diags.render();
}

} // namespace
