/**
 * @file
 * Event-stream and merger tests: the "anvil-events-v1" round trip
 * (a single run serialized and merged back reproduces its coverage,
 * metrics, and summary bytes exactly), merge order independence
 * across shuffled streams, farm-vs-sequential union equivalence,
 * shared-netlist Sim semantics, the Coverage merge operators, the
 * triage dedupe over hand-authored streams, and the v2 window_dump
 * references (worker/seed stamping, path dedupe, v1 coexistence).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "anvil/sim_runner.h"
#include "harness.h"
#include "obs/activity.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stream.h"
#include "obs/triage.h"
#include "rtl/rtl.h"
#include "support/json.h"
#include "tb/coverage.h"
#include "tb/testbench.h"
#include "trace/contracts.h"

using namespace anvil;

namespace {

const char *kPingSource = R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}

proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)";

rtl::ModulePtr
pingModule()
{
    std::string errors;
    rtl::ModulePtr m =
        anvil::testing::compileDesign(kPingSource, "ping_server",
                                      &errors);
    EXPECT_TRUE(m) << errors;
    return m;
}

/** One full single-run spine with every plugin attached, mirroring
 *  what run::runJob (and anvilc --events) wires up. */
struct SpineRun
{
    std::string events;
    std::string cov_report;
    std::string cov_summary;
    std::string metrics;   // json(false): timers quantized out
    uint64_t cycles = 0;
    uint64_t toggles = 0;
};

SpineRun
runSpine(uint64_t seed, int worker, uint64_t cycles)
{
    std::ostringstream es;
    obs::EventSink sink(es);

    auto bench = std::make_unique<tb::Testbench>(pingModule(), seed);
    obs::TraceProfiler profiler(false);
    bench->sim().setTelemetry(&profiler);
    bench->feed().setProfiler(&profiler);

    for (const auto &in : bench->sim().inputNames())
        bench->driveRandom(in);

    std::vector<trace::ContractSpec> specs =
        trace::inferContracts(bench->sim().netlist());
    trace::ContractMonitor *monitor = nullptr;
    if (!specs.empty())
        monitor = static_cast<trace::ContractMonitor *>(
            &bench->addMonitor(
                std::make_unique<trace::ContractMonitor>(
                    specs, bench->sim())));

    tb::Coverage &cov = bench->coverage();

    obs::AssertionTriage *triage = nullptr;
    if (monitor)
        triage = static_cast<obs::AssertionTriage *>(
            &bench->attachObserver(
                std::make_unique<obs::AssertionTriage>(*monitor,
                                                       &sink)));
    auto *activity = static_cast<obs::RollingActivity *>(
        &bench->attachObserver(
            std::make_unique<obs::RollingActivity>(16, &sink)));

    sink.runBegin(bench->sim().topName(), worker, seed, cycles,
                  bench->sim().sweepMode(),
                  bench->sim().sweepStats().threads);
    tb::TbResult result = bench->run(cycles);
    bench->feed().finish();

    obs::MetricsRegistry reg;
    run::collectRunMetrics(reg, *bench, result, &cov, &profiler,
                           nullptr, /*wall_ns=*/12345, activity,
                           triage);
    run::emitRunTail(sink, *bench, result, &cov, reg,
                     /*wall_ns=*/12345);

    SpineRun sr;
    sr.events = es.str();
    sr.cov_report = cov.report();
    sr.cov_summary = cov.summaryJson();
    sr.metrics = reg.json(false);
    sr.cycles = result.cycles;
    sr.toggles = bench->sim().totalToggles();
    return sr;
}

// --- The N=1 identity ----------------------------------------------------

TEST(EventStream, RoundTripReproducesSingleRunBytes)
{
    SpineRun sr = runSpine(7, 0, 300);
    ASSERT_FALSE(sr.events.empty());

    obs::Merger merger;
    merger.addStreamText(sr.events, "solo");
    ASSERT_EQ(merger.streams(), 1u);

    // Coverage, summary, and metrics reproduce byte-for-byte.
    ASSERT_TRUE(merger.hasCoverage());
    EXPECT_EQ(merger.coverage().report(), sr.cov_report);
    EXPECT_EQ(merger.coverage().summaryJson(), sr.cov_summary);
    EXPECT_EQ(merger.metricsJson(false), sr.metrics);

    // The stream identity survives the trip.
    std::vector<obs::Merger::StreamInfo> infos =
        merger.streamInfos();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].design, "ping_server");
    EXPECT_EQ(infos[0].seed, 7u);
    EXPECT_EQ(infos[0].worker, 0);
    EXPECT_EQ(infos[0].cycles, sr.cycles);
    EXPECT_EQ(infos[0].toggles, sr.toggles);
    EXPECT_EQ(infos[0].backend, "interp");

    obs::Merger::Totals t = merger.totals();
    EXPECT_EQ(t.workers, 1u);
    EXPECT_EQ(t.cycles, sr.cycles);
    EXPECT_EQ(t.toggles, sr.toggles);

    // The merged stats line is well-formed anvil-stats-v1 + workers.
    json::ParseResult stats = json::parse(merger.statsJson());
    ASSERT_TRUE(stats.ok()) << stats.error;
    EXPECT_EQ(stats.value.find("schema")->str, "anvil-stats-v1");
    EXPECT_EQ(stats.value.find("design")->str, "ping_server");
    EXPECT_EQ(stats.value.find("workers")->num, "1");
    EXPECT_TRUE(stats.value.find("coverage")->isObject());
}

TEST(EventStream, EveryLineParsesAndIsDiscriminated)
{
    SpineRun sr = runSpine(3, 2, 120);
    std::istringstream is(sr.events);
    std::string line;
    size_t events = 0;
    bool saw_begin = false, saw_end = false, saw_window = false;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        json::ParseResult pr = json::parse(line);
        ASSERT_TRUE(pr.ok()) << pr.error << ": " << line;
        const json::Value *e = pr.value.find("e");
        ASSERT_TRUE(e && e->isString()) << line;
        saw_begin |= e->str == "run_begin";
        saw_end |= e->str == "run_end";
        saw_window |= e->str == "window";
        events++;
    }
    EXPECT_TRUE(saw_begin);
    EXPECT_TRUE(saw_end);
    EXPECT_TRUE(saw_window);   // 120 cycles / window 16 closes some
    EXPECT_GT(events, 10u);
}

// --- Order independence and the farm -------------------------------------

run::JobResult
jobAt(uint64_t seed, int worker,
      const std::shared_ptr<const rtl::Netlist> &nl,
      const rtl::ModulePtr &top)
{
    run::JobConfig jc;
    jc.top = top;
    jc.netlist = nl;
    jc.seed = seed;
    jc.worker = worker;
    jc.cycles = 200;
    jc.contracts = trace::inferContracts(*nl);
    jc.coverage = true;
    jc.activity_window = 16;
    return run::runJob(jc);
}

TEST(EventStream, MergeIsOrderIndependent)
{
    rtl::ModulePtr top = pingModule();
    auto nl = std::make_shared<const rtl::Netlist>(*top);
    std::vector<run::JobResult> jobs;
    for (int w = 0; w < 3; w++)
        jobs.push_back(jobAt(10 + static_cast<uint64_t>(w), w, nl,
                             top));

    obs::Merger fwd, rev;
    for (size_t i = 0; i < jobs.size(); i++)
        fwd.addStreamText(jobs[i].events, "s");
    for (size_t i = jobs.size(); i-- > 0;)
        rev.addStreamText(jobs[i].events, "s");

    EXPECT_EQ(fwd.coverage().report(), rev.coverage().report());
    EXPECT_EQ(fwd.coverage().summaryJson(),
              rev.coverage().summaryJson());
    EXPECT_EQ(fwd.metricsJson(), rev.metricsJson());
    EXPECT_EQ(fwd.statsJson(), rev.statsJson());
    EXPECT_EQ(fwd.triageReport(), rev.triageReport());
}

TEST(EventStream, FarmEqualsSequentialUnion)
{
    rtl::ModulePtr top = pingModule();

    run::FarmConfig fc;
    fc.top = top;
    fc.workers = 2;
    fc.seed_base = 21;
    fc.cycles = 200;
    fc.contracts = trace::inferContracts(rtl::Netlist(*top));
    fc.coverage = true;
    fc.activity_window = 16;
    obs::Merger farm;
    run::FarmResult fr = run::runFarm(fc, farm);
    ASSERT_EQ(fr.jobs.size(), 2u);
    EXPECT_FALSE(fr.anyFailed());
    EXPECT_EQ(fr.jobs[0].seed, 21u);
    EXPECT_EQ(fr.jobs[1].seed, 22u);

    // The same seeds run sequentially merge to identical artifacts
    // (wall-clock timers excluded — they are real time).
    auto nl = std::make_shared<const rtl::Netlist>(*top);
    obs::Merger seq;
    seq.addStreamText(jobAt(21, 0, nl, top).events, "a");
    seq.addStreamText(jobAt(22, 1, nl, top).events, "b");

    EXPECT_EQ(farm.coverage().report(), seq.coverage().report());
    EXPECT_EQ(farm.coverage().summaryJson(),
              seq.coverage().summaryJson());
    EXPECT_EQ(farm.metricsJson(false), seq.metricsJson(false));
    obs::Merger::Totals ft = farm.totals(), st = seq.totals();
    EXPECT_EQ(ft.cycles, st.cycles);
    EXPECT_EQ(ft.toggles, st.toggles);
    EXPECT_EQ(ft.failures, st.failures);
    EXPECT_EQ(ft.backend, "interp");
}

// --- Shared-netlist Sim --------------------------------------------------

TEST(SharedNetlist, WorkersMatchAnOwnedSim)
{
    rtl::ModulePtr top = pingModule();
    auto nl = std::make_shared<const rtl::Netlist>(*top);

    tb::Testbench owned(top, 5);
    tb::Testbench shared_a(top, nl, 5);
    tb::Testbench shared_b(top, nl, 99);   // different seed, same nets
    for (const auto &in : owned.sim().inputNames()) {
        owned.driveRandom(in);
        shared_a.driveRandom(in);
        shared_b.driveRandom(in);
    }
    owned.run(150);
    shared_a.run(150);
    shared_b.run(150);

    // Same seed on a shared netlist is bit-identical to an owned run.
    EXPECT_EQ(owned.sim().totalToggles(),
              shared_a.sim().totalToggles());
    EXPECT_EQ(owned.sim().peek("io_pong_data").toHex(),
              shared_a.sim().peek("io_pong_data").toHex());
    // Workers do not bleed state into each other.
    EXPECT_EQ(shared_a.sim().sharedNetlist().get(), nl.get());
    EXPECT_EQ(shared_b.sim().sharedNetlist().get(), nl.get());
}

TEST(SharedNetlist, EvalTopRefusesToMutate)
{
    rtl::ModulePtr top = pingModule();
    auto nl = std::make_shared<const rtl::Netlist>(*top);
    rtl::Sim sim(top, nl);
    // Ad-hoc expressions would append nodes to the shared netlist.
    EXPECT_THROW(sim.evalTop(rtl::ref("bump", 8)),
                 std::logic_error);
    // An owned Sim hands out a shareable handle without one existing.
    rtl::Sim owner(top);
    EXPECT_TRUE(owner.sharedNetlist());
}

// --- Coverage merge operators --------------------------------------------

TEST(CoverageMerge, OperatorsAreUnions)
{
    tb::Coverage cov;
    cov.mergeSignal("s", 8, false, {0x0f}, {0x03});
    cov.mergeSignal("s", 8, false, {0xf0}, {0x0c});   // masks OR
    ASSERT_EQ(cov.signals().size(), 1u);
    EXPECT_EQ(cov.signals()[0].rose[0], 0xffull);
    EXPECT_EQ(cov.signals()[0].fell[0], 0x0full);
    EXPECT_EQ(cov.signals()[0].coveredBits(), 4);

    cov.mergeRegBins("r", 4, {1, 0, 2});
    cov.mergeRegBins("r", 4, {0, 5, 1});
    EXPECT_EQ(cov.regBins()[0].hits,
              (std::vector<uint64_t>{1, 5, 3}));

    cov.mergeCover("hit", 3);
    cov.mergeCover("hit", 4);
    EXPECT_EQ(cov.covers()[0].hits, 7u);

    uint64_t b1[4] = {1, 0, 0, 2}, b2[4] = {0, 3, 0, 1};
    cov.mergeCross("x", "hit", "hit", b1);
    cov.mergeCross("x", "hit", "hit", b2);
    EXPECT_EQ(cov.crosses()[0].bins[0], 1u);
    EXPECT_EQ(cov.crosses()[0].bins[1], 3u);
    EXPECT_EQ(cov.crosses()[0].bins[3], 3u);

    cov.mergeSamples(10);
    cov.mergeSamples(5);
    EXPECT_EQ(cov.samples(), 15u);
}

TEST(CoverageMerge, WidthMismatchRejectsForeignDesigns)
{
    tb::Coverage cov;
    cov.mergeSignal("s", 8, false, {0x1}, {0x1});
    EXPECT_THROW(cov.mergeSignal("s", 4, false, {0x1}, {0x1}),
                 std::invalid_argument);
}

TEST(CoverageMerge, AssertFailCyclesKeepEarliestUnderCap)
{
    tb::Coverage cov;
    std::vector<uint64_t> late, early;
    for (uint64_t i = 0; i < 16; i++)
        late.push_back(100 + i);
    for (uint64_t i = 0; i < 16; i++)
        early.push_back(i);
    cov.mergeAssert("a", 50, 16, late);
    cov.mergeAssert("a", 50, 16, early);
    ASSERT_EQ(cov.asserts().size(), 1u);
    EXPECT_EQ(cov.asserts()[0].checked, 100u);
    EXPECT_EQ(cov.asserts()[0].failures, 32u);
    // The merged retention keeps the earliest 16 in sorted order.
    EXPECT_EQ(cov.asserts()[0].fail_cycles, early);
}

// --- Triage over hand-authored streams -----------------------------------

std::string
miniStream(int worker, uint64_t seed,
           const std::vector<std::string> &violations)
{
    std::ostringstream os;
    os << "{\"e\":\"run_begin\",\"schema\":\"anvil-events-v1\","
          "\"design\":\"d\",\"worker\":" << worker
       << ",\"seed\":" << seed
       << ",\"cycles\":10,\"sweep\":\"dirty\",\"threads\":0}\n";
    for (const std::string &v : violations)
        os << v << "\n";
    os << "{\"e\":\"run_end\",\"cycles\":10,\"toggles\":4,"
          "\"failures\":" << violations.size()
       << ",\"wall_ns\":100,\"backend\":\"interp\","
          "\"activity_pct\":50.00}\n";
    return os.str();
}

std::string
viol(uint64_t t, const std::string &ch, const std::string &rule)
{
    std::ostringstream os;
    os << "{\"e\":\"violation\",\"t\":" << t << ",\"channel\":\""
       << ch << "\",\"rule\":\"" << rule
       << "\",\"msg\":\"m\"}";
    return os.str();
}

TEST(Triage, FleetDedupeRanksBySignature)
{
    obs::Merger m;
    m.addStreamText(
        miniStream(0, 1,
                   {viol(5, "io_a", "stable"), viol(9, "io_a",
                                                    "stable"),
                    viol(2, "io_b", "hold")}),
        "w0");
    m.addStreamText(
        miniStream(1, 2,
                   {viol(3, "io_a", "stable"), viol(7, "io_b",
                                                    "hold")}),
        "w1");

    std::vector<obs::AssertionTriage::Entry> ranked = m.triage();
    ASSERT_EQ(ranked.size(), 2u);
    // (io_a, stable) fired 3x across the fleet; earliest at cycle 3.
    EXPECT_EQ(ranked[0].channel, "io_a");
    EXPECT_EQ(ranked[0].rule, "stable");
    EXPECT_EQ(ranked[0].count, 3u);
    EXPECT_EQ(ranked[0].first_cycle, 3u);
    EXPECT_EQ(ranked[1].channel, "io_b");
    EXPECT_EQ(ranked[1].count, 2u);
    EXPECT_EQ(ranked[1].first_cycle, 2u);

    std::string report = m.triageReport();
    EXPECT_NE(report.find("2 signature(s)"), std::string::npos);
    EXPECT_NE(report.find("io_a"), std::string::npos);

    // The recomputed triage counters match the dedupe, not the sum
    // of per-stream counters.
    json::ParseResult doc = json::parse(m.metricsJson(false));
    ASSERT_TRUE(doc.ok()) << doc.error;
    const json::Value *counters = doc.value.find("counters");
    ASSERT_TRUE(counters);
    EXPECT_EQ(counters->find("triage.signatures")->num, "2");
    EXPECT_EQ(counters->find("triage.violations")->num, "5");
}

TEST(Triage, EmptyFormatAndEmptyMerge)
{
    EXPECT_EQ(obs::AssertionTriage::format({}),
              "triage: no contract violations\n");
    obs::Merger m;
    m.addStreamText(miniStream(0, 1, {}), "w0");
    EXPECT_EQ(m.triageReport(),
              "triage: no contract violations\n");
}

// --- Flight-recorder window references -----------------------------------

std::string
dumpEv(uint64_t t, const std::string &trigger,
       const std::string &path, uint64_t from, uint64_t to)
{
    std::ostringstream os;
    os << "{\"e\":\"window_dump\",\"t\":" << t << ",\"trigger\":\""
       << trigger << "\",\"path\":\"" << path
       << "\",\"from\":" << from << ",\"to\":" << to << "}";
    return os.str();
}

TEST(WindowDumps, SinkRoundTripStampsWorkerAndSeed)
{
    std::ostringstream es;
    obs::EventSink sink(es);
    sink.runBegin("d", 3, 99, 10, rtl::SweepMode::Dirty, 0);
    sink.windowDump(40, "VIOLATION", "flight.w3-0.vcd", 32, 52);
    sink.runEnd(10, 4, 1, 100, false, 50.0);

    // The sink stamps the v2 schema tag into the header.
    EXPECT_NE(es.str().find(obs::kEventsSchema), std::string::npos);

    obs::Merger m;
    m.addStreamText(es.str(), "w3");
    std::vector<obs::Merger::WindowDump> dumps = m.windowDumps();
    ASSERT_EQ(dumps.size(), 1u);
    EXPECT_EQ(dumps[0].trigger, "VIOLATION");
    EXPECT_EQ(dumps[0].path, "flight.w3-0.vcd");
    EXPECT_EQ(dumps[0].trigger_cycle, 40u);
    EXPECT_EQ(dumps[0].from, 32u);
    EXPECT_EQ(dumps[0].to, 52u);
    // Annotated from the stream's run_begin, not the event itself.
    EXPECT_EQ(dumps[0].worker, 3);
    EXPECT_EQ(dumps[0].seed, 99u);
}

TEST(WindowDumps, DedupesByPathButNeverPathless)
{
    // Worker 1 (seed 2) is added first but worker 0 (seed 1) folds
    // earlier; the shared path keeps its first canonical occurrence
    // and the pathless references survive from both streams.
    obs::Merger m;
    m.addStreamText(
        miniStream(1, 2,
                   {dumpEv(80, "cover:hit", "shared.vcd", 72, 84),
                    dumpEv(90, "VIOLATION", "", 82, 94)}),
        "w1");
    m.addStreamText(
        miniStream(0, 1,
                   {dumpEv(40, "VIOLATION", "shared.vcd", 32, 44),
                    dumpEv(50, "VIOLATION", "", 42, 54)}),
        "w0");
    std::vector<obs::Merger::WindowDump> dumps = m.windowDumps();
    ASSERT_EQ(dumps.size(), 3u);
    EXPECT_EQ(dumps[0].path, "shared.vcd");
    EXPECT_EQ(dumps[0].trigger, "VIOLATION");
    EXPECT_EQ(dumps[0].worker, 0);
    EXPECT_EQ(dumps[0].seed, 1u);
    EXPECT_EQ(dumps[1].path, "");
    EXPECT_EQ(dumps[1].worker, 0);
    EXPECT_EQ(dumps[2].path, "");
    EXPECT_EQ(dumps[2].worker, 1);
    EXPECT_EQ(dumps[2].seed, 2u);
}

TEST(WindowDumps, V1StreamsCarryingWindowDumpsStillParse)
{
    // window_dump is an additive v2 event; a v1-tagged stream that
    // happens to carry one is accepted rather than rejected, and
    // merges with v2 streams from the same design.
    std::string v1 = miniStream(
        0, 1, {dumpEv(10, "VIOLATION", "a.vcd", 2, 14)});
    ASSERT_NE(v1.find(obs::kEventsSchemaV1), std::string::npos);

    std::string v2 = miniStream(
        1, 2, {dumpEv(20, "VIOLATION", "b.vcd", 12, 24)});
    const std::string tag = obs::kEventsSchemaV1;
    size_t at = v2.find(tag);
    ASSERT_NE(at, std::string::npos);
    v2.replace(at, tag.size(), obs::kEventsSchema);

    obs::Merger m;
    m.addStreamText(v1, "w0");
    m.addStreamText(v2, "w1");
    std::vector<obs::Merger::WindowDump> dumps = m.windowDumps();
    ASSERT_EQ(dumps.size(), 2u);
    EXPECT_EQ(dumps[0].path, "a.vcd");
    EXPECT_EQ(dumps[1].path, "b.vcd");
}

// --- Malformed streams ---------------------------------------------------

TEST(MergerErrors, RejectsMalformedStreams)
{
    obs::Merger m;
    // Must start with run_begin.
    EXPECT_THROW(m.addStreamText("{\"e\":\"run_end\"}\n", "x"),
                 std::runtime_error);
    // Unknown schema tag.
    EXPECT_THROW(
        m.addStreamText(
            "{\"e\":\"run_begin\",\"schema\":\"anvil-events-v9\","
            "\"design\":\"d\",\"worker\":0,\"seed\":1,"
            "\"cycles\":1,\"sweep\":\"dirty\",\"threads\":0}\n",
            "x"),
        std::runtime_error);
    // Truncated stream: no run_end.
    EXPECT_THROW(
        m.addStreamText(
            "{\"e\":\"run_begin\",\"schema\":\"anvil-events-v1\","
            "\"design\":\"d\",\"worker\":0,\"seed\":1,"
            "\"cycles\":1,\"sweep\":\"dirty\",\"threads\":0}\n",
            "x"),
        std::runtime_error);
    // Streams from different designs do not merge.
    m.addStreamText(miniStream(0, 1, {}), "w0");
    std::string other = miniStream(1, 2, {});
    const std::string tag = "\"design\":\"d\"";
    size_t at = other.find(tag);
    ASSERT_NE(at, std::string::npos);
    other.replace(at, tag.size(), "\"design\":\"e\"");
    EXPECT_THROW(m.addStreamText(other, "w1"), std::runtime_error);
}

} // namespace
