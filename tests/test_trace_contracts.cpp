/**
 * @file
 * Timing-contract monitor tests: spec parsing and printing, netlist
 * inference, exact-cycle verdicts on a handwritten trace, a healthy
 * randomized AXI run passing offline and live, and deliberately
 * violating design variants (retracted valid, unstable payload)
 * caught with cycle numbers — the dynamic analogues of the
 * Def. C.15 obligations.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "axi_bench.h"
#include "designs/designs.h"
#include "tb/testbench.h"
#include "trace/contracts.h"
#include "trace/vcd_reader.h"

using namespace anvil;
using namespace anvil::trace;

namespace {

void
replaceWire(const rtl::ModulePtr &m, const std::string &name,
            rtl::ExprPtr e)
{
    for (auto &w : m->wires) {
        if (w.name == name) {
            w.expr = std::move(e);
            return;
        }
    }
    ADD_FAILURE() << "no wire named " << name;
}

TEST(TraceContracts, SpecParsesAndPrints)
{
    ContractSpec d = parseContractSpec("io_pong");
    EXPECT_EQ(d.channel, "io_pong");
    EXPECT_TRUE(d.stable);
    EXPECT_TRUE(d.hold);
    EXPECT_EQ(d.ack_within, 0);

    ContractSpec s =
        parseContractSpec(" m_b : ack within 4 , stable ");
    EXPECT_EQ(s.channel, "m_b");
    EXPECT_EQ(s.ack_within, 4);
    EXPECT_TRUE(s.stable);
    EXPECT_FALSE(s.hold);
    EXPECT_EQ(s.str(), "m_b: ack within 4, stable");
    // str() round-trips through the parser.
    ContractSpec s2 = parseContractSpec(s.str());
    EXPECT_EQ(s2.ack_within, 4);
    EXPECT_TRUE(s2.stable);
    EXPECT_FALSE(s2.hold);

    ContractSpec n = parseContractSpec("ch: none");
    EXPECT_FALSE(n.stable);
    EXPECT_FALSE(n.hold);

    EXPECT_THROW(parseContractSpec(": stable"),
                 std::invalid_argument);
    EXPECT_THROW(parseContractSpec("ch: ack inside 3"),
                 std::invalid_argument);
    EXPECT_THROW(parseContractSpec("ch: frobnicate"),
                 std::invalid_argument);
}

TEST(TraceContracts, InferenceFindsDesignDrivenChannels)
{
    rtl::Sim sim(designs::buildAxiDemuxBaseline());
    auto specs = inferContracts(sim.netlist());
    // Output channels only: s*_aw, s*_w, s*_ar, m_b, m_r — the
    // master-driven m_aw/m_w/m_ar and slave-driven s*_b/s*_r valids
    // are inputs and are judged by the recording, not the design.
    EXPECT_EQ(specs.size(), 26u);
    bool saw_m_aw = false, saw_s3_aw = false, saw_m_b = false;
    for (const auto &s : specs) {
        saw_m_aw |= s.channel == "m_aw";
        saw_s3_aw |= s.channel == "s3_aw";
        saw_m_b |= s.channel == "m_b";
    }
    EXPECT_FALSE(saw_m_aw);
    EXPECT_TRUE(saw_s3_aw);
    EXPECT_TRUE(saw_m_b);

    // All channels including environment-driven ones: 5 master-side
    // plus 5 per slave.
    auto all = inferContracts(sim.netlist(), false);
    EXPECT_EQ(all.size(), 45u);
}

/** Handwritten single-channel trace for exact-cycle verdicts. */
Trace
miniTrace(const std::string &body)
{
    std::string text =
        "$timescale 1ns $end\n"
        "$scope module t $end\n"
        "$var wire 1 ! ch_valid $end\n"
        "$var wire 1 \" ch_ack $end\n"
        "$var wire 8 # ch_data [7:0] $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n" +
        body;
    std::istringstream in(text);
    return VcdReader::read(in);
}

TEST(TraceContracts, ExactCyclesOnHandwrittenTraces)
{
    ContractSpec spec = parseContractSpec("ch: ack within 4, stable, hold");

    // Send offered at 2 with payload 0x21; payload flips at 5 while
    // still pending; never acked, deadline 4 passes at 5; valid
    // retracted at 8.
    Trace t = miniTrace("#0\n$dumpvars\n0!\n0\"\nb0 #\n$end\n"
                        "#2\n1!\nb100001 #\n"
                        "#5\nb100010 #\n"
                        "#8\n0!\n");
    auto v = checkTrace({spec}, t);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0].rule, "stable");
    EXPECT_EQ(v[0].cycle, 5u);
    EXPECT_EQ(v[1].rule, "ack-within");
    EXPECT_EQ(v[1].cycle, 5u);   // offered at 2, 4th waiting cycle
    EXPECT_EQ(v[2].rule, "hold");
    EXPECT_EQ(v[2].cycle, 8u);
    EXPECT_EQ(v[2].channel, "ch");
    EXPECT_NE(v[2].message.find("cycle 2"), std::string::npos);

    // The report is cycle-stamped and names channel and rule.
    std::string rep = violationReport(v);
    EXPECT_NE(rep.find("@5 ch [stable]"), std::string::npos);
    EXPECT_NE(rep.find("@8 ch [hold]"), std::string::npos);

    // A clean handshake passes: offer at 1, ack at 3, retire.
    Trace ok = miniTrace("#0\n$dumpvars\n0!\n0\"\nb0 #\n$end\n"
                         "#1\n1!\nb1011 #\n"
                         "#3\n1\"\n"
                         "#4\n0!\n0\"\n");
    EXPECT_TRUE(checkTrace({spec}, ok).empty());

    // Same-cycle ack satisfies even `ack within 1`.
    ContractSpec tight = parseContractSpec("ch: ack within 1");
    Trace fast = miniTrace("#0\n$dumpvars\n0!\n0\"\nb0 #\n$end\n"
                           "#2\n1!\n1\"\nb1 #\n"
                           "#3\n0!\n0\"\n");
    EXPECT_TRUE(checkTrace({tight}, fast).empty());
    // ...but a one-cycle-late ack violates it at the offer cycle.
    Trace late = miniTrace("#0\n$dumpvars\n0!\n0\"\nb0 #\n$end\n"
                           "#2\n1!\nb1 #\n"
                           "#3\n1\"\n"
                           "#4\n0!\n0\"\n");
    auto lv = checkTrace({tight}, late);
    ASSERT_EQ(lv.size(), 1u);
    EXPECT_EQ(lv[0].rule, "ack-within");
    EXPECT_EQ(lv[0].cycle, 2u);
}

TEST(TraceContracts, MissingSignalsAreReported)
{
    Trace t = miniTrace("#0\n$dumpvars\n0!\n0\"\nb0 #\n$end\n");
    std::vector<std::string> skipped;
    auto v = checkTrace({parseContractSpec("ghost")}, t, &skipped);
    EXPECT_TRUE(v.empty());
    ASSERT_EQ(skipped.size(), 1u);
    EXPECT_EQ(skipped[0], "ghost");
}

TEST(TraceContracts, HealthyAxiTracePassesInferredContracts)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 2024);
    anvil::testing::attachDemuxBfmBench(bench);
    std::ostringstream os;
    bench.attachVcd(os);
    tb::TbResult r = bench.run(1200);
    ASSERT_TRUE(r.ok()) << r.summary();

    auto specs = inferContracts(bench.sim().netlist());
    // The BFM environment acks within a bounded window; a generous
    // deadline exercises the ack-within checker on a passing run.
    for (auto &s : specs)
        s.ack_within = 64;

    std::istringstream in(os.str());
    Trace t = VcdReader::read(in);
    auto v = checkTrace(specs, t);
    EXPECT_TRUE(v.empty()) << violationReport(v);
}

TEST(TraceContracts, RetractedValidIsCaughtOffline)
{
    // Slave 2's AW valid erroneously drops whenever the *read* FSM
    // leaves idle — a pending write send gets abandoned mid-flight.
    auto mod = designs::buildAxiDemuxBaseline();
    replaceWire(mod, "s2_aw_valid",
                rtl::ref("fwd_awst", 1) &
                    eq(rtl::ref("wsel", 3), rtl::cst(3, 2)) &
                    rtl::ref("ridle", 1));
    tb::Testbench bench(mod, 2024);
    // Hand-assembled environment: slow acks on slave 2 stretch its
    // pending AW windows so the read FSM gets a chance to wiggle
    // the broken valid mid-send.
    tb::AxiMasterBfm::attach(bench);
    for (int i = 0; i < 8; i++) {
        tb::AxiSlaveConfig cfg;
        cfg.prefix = "s" + std::to_string(i);
        if (i == 2)
            cfg.aw_ack_pct = cfg.w_ack_pct = 30;
        tb::AxiLiteSlaveBfm::attach(bench, cfg);
    }
    std::ostringstream os;
    bench.attachVcd(os);
    bench.max_failures = 1u << 20;   // let the run finish
    bench.run(2000);

    std::istringstream in(os.str());
    Trace t = VcdReader::read(in);
    auto v = checkTrace(inferContracts(bench.sim().netlist()), t);
    ASSERT_FALSE(v.empty());
    bool saw_hold = false;
    for (const auto &viol : v) {
        if (viol.channel == "s2_aw" && viol.rule == "hold") {
            saw_hold = true;
            EXPECT_GT(viol.cycle, 0u);
        }
    }
    EXPECT_TRUE(saw_hold) << violationReport(v);
}

TEST(TraceContracts, UnstablePayloadIsCaughtLive)
{
    // The B response payload picks up read-FSM state: it mutates
    // while m_b_valid is pending whenever a read completes.
    auto mod = designs::buildAxiDemuxBaseline();
    replaceWire(mod, "m_b_data",
                rtl::ref("breg", 2) ^
                    rtl::slice(rtl::ref("rst", 2), 0, 2));
    tb::Testbench bench(mod, 2024);
    anvil::testing::attachDemuxBfmBench(bench);

    auto specs = inferContracts(bench.sim().netlist());
    bench.addMonitor(std::make_unique<ContractMonitor>(
        specs, bench.sim()));
    bench.max_failures = 1u << 20;
    tb::TbResult r = bench.run(2000);

    ASSERT_FALSE(r.ok());
    bool saw_stable = false;
    for (const auto &f : r.failures)
        if (f.check == "contracts" &&
            f.message.find("contract:m_b [stable]") !=
                std::string::npos)
            saw_stable = true;
    EXPECT_TRUE(saw_stable) << r.summary();
}

TEST(TraceContracts, HealthyRunPassesLiveMonitoring)
{
    tb::Testbench bench(designs::buildAxiDemuxBaseline(), 9);
    anvil::testing::attachDemuxBfmBench(bench);
    auto specs = inferContracts(bench.sim().netlist());
    for (auto &s : specs)
        s.ack_within = 64;
    bench.addMonitor(std::make_unique<ContractMonitor>(
        specs, bench.sim()));
    tb::TbResult r = bench.run(1500);
    EXPECT_TRUE(r.ok()) << r.summary();
}

} // namespace
