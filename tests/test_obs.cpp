/**
 * @file
 * Unified observer framework and telemetry tests: change-feed fan-out
 * and per-net subscription dedupe, the rescan fallback on skipped
 * cycles and late pokes, standalone-vs-attached observer compat,
 * metrics JSON determinism at a fixed seed, Chrome-trace profile
 * well-formedness (parsed back with the in-tree JSON reader), and the
 * channel-slicing VCD plugin.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/slice.h"
#include "rtl/vcd.h"
#include "support/json.h"
#include "tb/testbench.h"

using namespace anvil;

namespace {

const char *kPingSource = R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1)
}

proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)";

rtl::ModulePtr
pingModule()
{
    std::string errors;
    rtl::ModulePtr m =
        anvil::testing::compileDesign(kPingSource, "ping_server",
                                      &errors);
    EXPECT_TRUE(m) << errors;
    return m;
}

rtl::NetId
netOf(rtl::Sim &sim, const std::string &name)
{
    auto it = sim.netlist().signals().find(name);
    EXPECT_TRUE(it != sim.netlist().signals().end()) << name;
    return it->second.net;
}

/** Counts its visits and the changed nets it is handed. */
class CountingObserver : public obs::Observer
{
  public:
    explicit CountingObserver(std::vector<rtl::NetId> nets)
        : _nets(std::move(nets))
    {
    }

    void onAttach(obs::ChangeFeed &feed) override
    {
        for (rtl::NetId n : _nets)
            subscribed.push_back(feed.subscribe(*this, n));
    }

    void onPrime(rtl::Sim &, uint64_t) override { primes++; }

    void onCycle(rtl::Sim &, uint64_t,
                 const std::vector<rtl::NetId> &changed) override
    {
        cycles++;
        for (size_t i = 0; i < changed.size(); i++) {
            delivered.push_back(changed[i]);
            for (size_t j = 0; j < i; j++)
                if (changed[j] == changed[i])
                    dupes++;
        }
    }

    void onFinish(rtl::Sim &) override { finishes++; }

    const char *observerName() const override { return "count"; }

    std::vector<bool> subscribed;
    std::vector<rtl::NetId> delivered;
    int primes = 0;
    int cycles = 0;
    int finishes = 0;
    int dupes = 0;   // same net twice within one visit

  private:
    std::vector<rtl::NetId> _nets;
};

/** Drive the ping handshake and sample the feed once per cycle. */
void
runFed(rtl::Sim &sim, obs::ChangeFeed &feed, int cycles)
{
    for (int i = 0; i < cycles; i++) {
        sim.setInput("io_ping_valid", 1);
        sim.setInput("io_ping_data", 0x10 + i);
        sim.setInput("io_pong_ack", 1);
        feed.sample();
        sim.step();
    }
}

TEST(ChangeFeed, DuplicateSubscriptionsDedupe)
{
    rtl::Sim sim(pingModule());
    obs::ChangeFeed feed(sim);
    rtl::NetId data = netOf(sim, "io_pong_data");

    // The same observer subscribing one net twice rides a single
    // subscription: one visit never delivers the net twice.
    CountingObserver one({data, data});
    feed.attach(one);
    ASSERT_EQ(one.subscribed.size(), 2u);
    EXPECT_TRUE(one.subscribed[0]);
    EXPECT_TRUE(one.subscribed[1]);

    // A second observer of the same net sees every change too.
    CountingObserver two({data});
    feed.attach(two);

    runFed(sim, feed, 8);

    EXPECT_EQ(one.primes, 1);
    EXPECT_EQ(one.cycles, 7);
    EXPECT_EQ(one.delivered, two.delivered);
    EXPECT_FALSE(one.delivered.empty());
    EXPECT_EQ(one.dupes, 0);
    EXPECT_EQ(two.dupes, 0);

    feed.finish();
    EXPECT_EQ(one.finishes, 1);
    EXPECT_EQ(two.finishes, 1);

    // The hub's accounting saw the same story.
    auto costs = feed.costs();
    ASSERT_EQ(costs.size(), 2u);
    EXPECT_EQ(costs[0].name, "count");
    EXPECT_EQ(costs[0].visits, 8u);
    EXPECT_EQ(costs[0].primes, 1u);
    EXPECT_EQ(costs[0].nets, one.delivered.size());
}

TEST(ChangeFeed, SkippedCycleForcesRescan)
{
    rtl::Sim sim(pingModule());
    obs::ChangeFeed feed(sim);
    CountingObserver co({netOf(sim, "io_pong_valid")});
    feed.attach(co);

    runFed(sim, feed, 3);   // prime + 2 fast-path visits
    EXPECT_EQ(co.primes, 1);
    EXPECT_EQ(co.cycles, 2);

    sim.step();             // a cycle nobody sampled
    feed.sample();          // feed window is broken: full rescan
    EXPECT_EQ(co.primes, 2);
    EXPECT_EQ(co.cycles, 2);

    sim.step();
    feed.sample();          // window restored: fast path again
    EXPECT_EQ(co.primes, 2);
    EXPECT_EQ(co.cycles, 3);
}

TEST(ChangeFeed, LatePokeForcesRescan)
{
    rtl::Sim sim(pingModule());
    obs::ChangeFeed feed(sim);
    CountingObserver co({netOf(sim, "io_pong_valid")});
    feed.attach(co);

    runFed(sim, feed, 2);
    EXPECT_EQ(co.primes, 1);

    // Poke after the sample: the change flushes with the edge and is
    // never re-listed, so the next sample must rescan.
    sim.setInput("io_ping_data", 0x7f);
    sim.step();
    feed.sample();
    EXPECT_EQ(co.primes, 2);
}

TEST(ChangeFeed, DetachAndDestructionAreSafe)
{
    rtl::Sim sim(pingModule());
    obs::ChangeFeed feed(sim);
    CountingObserver keep({netOf(sim, "io_pong_valid")});
    feed.attach(keep);
    {
        CountingObserver dies({netOf(sim, "io_pong_data")});
        feed.attach(dies);
        runFed(sim, feed, 2);
        EXPECT_EQ(dies.primes, 1);
    }   // destructor detaches while subscribed

    runFed(sim, feed, 2);   // must not touch the dead slot
    EXPECT_EQ(keep.primes, 1);
    EXPECT_EQ(keep.cycles, 3);
}

TEST(ChangeFeed, StandaloneSampleConflictsWithAttach)
{
    // VcdWriter::sample() (the pre-feed API) still works standalone…
    rtl::Sim sim(pingModule());
    std::ostringstream os;
    rtl::VcdWriter vcd(sim, os, {"io_pong_valid"});
    vcd.sample();
    sim.step();
    vcd.sample();
    EXPECT_NE(os.str().find("$dumpvars"), std::string::npos);

    // …but mixing it with an external feed is a caller bug.
    rtl::Sim sim2(pingModule());
    std::ostringstream os2;
    rtl::VcdWriter fed(sim2, os2, {"io_pong_valid"});
    obs::ChangeFeed feed(sim2);
    feed.attach(fed);
    EXPECT_THROW(fed.sample(), std::logic_error);
}

// --- Metrics -------------------------------------------------------------

uint64_t
quantize(uint64_t) { return 0; }

/** One seeded run, metrics collected the way anvilc does. */
std::string
metricsJsonOfRun(uint64_t seed, bool include_timers)
{
    tb::Testbench bench(pingModule(), seed);
    bench.driveRandom("io_ping_valid");
    bench.driveRandom("io_ping_data");
    bench.driveRandom("io_pong_ack");
    bench.coverage();
    tb::TbResult result = bench.run(300);

    obs::MetricsRegistry reg;
    const rtl::SweepStats &ss = bench.sim().sweepStats();
    reg.counter("sim.cycles") = result.cycles;
    reg.counter("sim.toggles") = bench.sim().totalToggles();
    reg.counter("sweep.nodes_evaluated") = ss.nodes_evaluated;
    reg.counter("sweep.nets_changed") = ss.nets_changed;
    reg.counter("cov.samples") =
        static_cast<uint64_t>(bench.coverage().samples());
    for (const obs::ObserverCost &c : bench.feed().costs()) {
        reg.counter("obs." + c.name + ".visits") = c.visits;
        reg.counter("obs." + c.name + ".nets") = c.nets;
        // Wall-clock is the one legitimately nondeterministic input;
        // the JSON stays byte-stable because timers live under their
        // own key that json(false) quantizes out.
        reg.timerNs("obs." + c.name) = quantize(c.ns);
    }
    return reg.json(include_timers);
}

TEST(Metrics, JsonByteStableAtFixedSeed)
{
    std::string a = metricsJsonOfRun(42, false);
    std::string b = metricsJsonOfRun(42, false);
    EXPECT_EQ(a, b);

    // And it is real JSON with the advertised schema tag.
    json::ParseResult doc = json::parse(a);
    ASSERT_TRUE(doc.ok()) << doc.error;
    const json::Value *schema = doc.value.find("schema");
    ASSERT_TRUE(schema);
    EXPECT_EQ(schema->str, "anvil-metrics-v1");
    ASSERT_TRUE(doc.value.find("counters"));
    EXPECT_FALSE(doc.value.find("timers_ns"));   // quantized out

    // json(true) carries the timers key for human consumption.
    json::ParseResult timed =
        json::parse(metricsJsonOfRun(42, true));
    ASSERT_TRUE(timed.ok()) << timed.error;
    EXPECT_TRUE(timed.value.find("timers_ns"));
}

TEST(Metrics, HistogramAndGaugeShapes)
{
    obs::MetricsRegistry reg;
    reg.counter("a") = 3;
    reg.gauge("pct") = 12.5;
    reg.histogram("levels").bump(0);
    reg.histogram("levels").bump(2, 4);
    json::ParseResult doc = json::parse(reg.json());
    ASSERT_TRUE(doc.ok()) << doc.error;
    const json::Value *h = doc.value.find("histograms");
    ASSERT_TRUE(h);
    const json::Value *levels = h->find("levels");
    ASSERT_TRUE(levels);
    ASSERT_EQ(levels->find("counts")->arr.size(), 3u);
    EXPECT_EQ(levels->find("counts")->arr[2].num, "4");
    EXPECT_EQ(levels->find("total")->num, "5");
}

// --- Profiler ------------------------------------------------------------

TEST(Profiler, ChromeTraceParsesBackWellFormed)
{
    rtl::ModulePtr m = pingModule();
    tb::Testbench bench(std::move(m), 7);
    bench.driveRandom("io_ping_valid");
    bench.driveRandom("io_ping_data");
    bench.driveRandom("io_pong_ack");
    std::ostringstream vcd_os;
    bench.attachVcd(vcd_os);

    obs::TraceProfiler prof(true);
    bench.sim().setTelemetry(&prof);
    bench.feed().setProfiler(&prof);
    bench.run(50);
    bench.feed().finish();
    bench.sim().setTelemetry(nullptr);
    bench.feed().setProfiler(nullptr);
    prof.setLevelActivity(bench.feed().levelActivity());

    std::ostringstream os;
    prof.writeJson(os);
    json::ParseResult doc = json::parse(os.str());
    ASSERT_TRUE(doc.ok()) << doc.error;

    const json::Value *events = doc.value.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    size_t meta = 0, complete = 0;
    bool saw_sweep = false, saw_commit = false, saw_vcd = false;
    for (const json::Value &e : events->arr) {
        ASSERT_TRUE(e.isObject());
        const json::Value *ph = e.find("ph");
        ASSERT_TRUE(ph && ph->isString());
        ASSERT_TRUE(e.find("tid") && e.find("pid") &&
                    e.find("name"));
        if (ph->str == "M") {
            meta++;
            const std::string &track =
                e.find("args")->find("name")->str;
            saw_sweep |= track == "sweep";
            saw_commit |= track == "commit";
            saw_vcd |= track == "obs:vcd";
        } else {
            ASSERT_EQ(ph->str, "X");
            complete++;
            EXPECT_GE(e.find("ts")->asDouble(), 0.0);
            EXPECT_GE(e.find("dur")->asDouble(), 0.0);
            ASSERT_TRUE(e.find("args")->find("cycle"));
        }
    }
    EXPECT_TRUE(saw_sweep);
    EXPECT_TRUE(saw_commit);
    EXPECT_TRUE(saw_vcd);
    EXPECT_GT(complete, 0u);

    // The extension block viewers ignore.
    const json::Value *ext = doc.value.find("anvil");
    ASSERT_TRUE(ext);
    EXPECT_EQ(ext->find("schema")->str, "anvil-profile-v1");
    EXPECT_EQ(ext->find("dropped_events")->num, "0");
    const json::Value *tracks = ext->find("tracks");
    ASSERT_TRUE(tracks && tracks->isArray());
    EXPECT_EQ(tracks->arr.size(), meta);
    uint64_t track_events = 0;
    for (const json::Value &t : tracks->arr)
        track_events += static_cast<uint64_t>(
            t.find("events")->asDouble());
    // Every buffered complete event is accounted to some track.
    EXPECT_EQ(track_events, complete);
}

TEST(Profiler, TotalsAccumulateWithoutRecording)
{
    obs::TraceProfiler prof(false);   // totals only, no event buffer
    int tid = prof.track("custom");
    prof.event(tid, "a", 100, 250, 1);
    prof.event(tid, "b", 300, 350, 2);
    auto totals = prof.totals();
    ASSERT_GT(totals.size(), static_cast<size_t>(tid));
    EXPECT_EQ(totals[static_cast<size_t>(tid)].ns, 200u);
    EXPECT_EQ(totals[static_cast<size_t>(tid)].count, 2u);

    std::ostringstream os;
    prof.writeJson(os);
    json::ParseResult doc = json::parse(os.str());
    ASSERT_TRUE(doc.ok()) << doc.error;
    // No X events were buffered, but the track summary is complete.
    for (const json::Value &e :
         doc.value.find("traceEvents")->arr)
        EXPECT_EQ(e.find("ph")->str, "M");
}

// --- Channel slicing -----------------------------------------------------

TEST(Slice, ChannelSignalsSelectsTheChannel)
{
    rtl::Sim sim(pingModule());
    std::vector<std::string> sigs =
        obs::channelSignals(sim.netlist(), "io_pong");
    EXPECT_EQ(sigs, (std::vector<std::string>{
                        "io_pong_ack", "io_pong_data",
                        "io_pong_valid"}));
    EXPECT_THROW(obs::channelSignals(sim.netlist(), "no_such"),
                 std::invalid_argument);
}

TEST(Slice, SlicedVcdContainsOnlyTheChannel)
{
    tb::Testbench bench(pingModule(), 7);
    bench.driveRandom("io_ping_valid");
    bench.driveRandom("io_ping_data");
    bench.driveRandom("io_pong_ack");
    std::ostringstream os;
    bench.attachObserver(std::make_unique<obs::ChannelSlicer>(
        bench.sim(), os, "io_pong"));
    bench.run(40);

    std::string text = os.str();
    std::istringstream is(text);
    std::string line;
    int vars = 0;
    while (std::getline(is, line)) {
        if (line.rfind("$var", 0) != 0)
            continue;
        vars++;
        EXPECT_NE(line.find("io_pong"), std::string::npos) << line;
    }
    EXPECT_EQ(vars, 3);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
}

} // namespace
