/**
 * @file
 * Shared low-activity stimulus generators for the large simulation
 * workloads (AXI crossbar, set-associative TLB), used by both
 * bench/bench_sim_perf.cpp and the sweep-mode differential tests so
 * the measured workload and the pinned-equivalence workload are the
 * same by construction.
 *
 * Stimulus is emitted as per-cycle *deltas*: only inputs whose value
 * differs from what was last driven appear in a frame.  Applying the
 * same seeded stream to any simulator (any sweep mode, or RefSim)
 * reproduces the same run bit-for-bit, because inputs hold their
 * value between assignments.  The profiles are deliberately
 * low-activity — a few agents in flight against an otherwise idle
 * fabric — which is what event-driven sweeping exploits.
 */

#ifndef ANVIL_TESTS_SIM_WORKLOADS_H
#define ANVIL_TESTS_SIM_WORKLOADS_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/strings.h"
#include "tb/testbench.h"

namespace anvil {
namespace testing {

/** One cycle of stimulus: inputs to (re)drive this cycle. */
using InputFrame = std::vector<std::pair<std::string, uint64_t>>;

/** Delta-tracking helper: drop assignments that repeat the held value. */
class FrameBuilder
{
  public:
    void set(InputFrame &out, const std::string &name, uint64_t v)
    {
        auto it = _held.find(name);
        if (it != _held.end() && it->second == v)
            return;
        _held[name] = v;
        out.emplace_back(name, v);
    }

  private:
    std::map<std::string, uint64_t> _held;
};

/**
 * Crossbar traffic: each master independently idles, then issues a
 * write or read burst to a random slave, holding valids long enough
 * for the routers to complete the handshake chain.  Slave-side acks
 * and responses are constant (an always-ready memory), so they are
 * driven once and never re-enter the stimulus stream.
 */
class XbarStimulus
{
  public:
    XbarStimulus(int n_masters, int n_slaves, uint64_t seed)
        : _rng(seed), _n_masters(n_masters), _n_slaves(n_slaves),
          _m(static_cast<size_t>(n_masters))
    {
    }

    /** Stimulus for the coming cycle (call once per cycle). */
    InputFrame next()
    {
        InputFrame out;
        if (_first) {
            _first = false;
            for (int j = 0; j < _n_slaves; j++) {
                std::string p = strfmt("s%d", j);
                _fb.set(out, p + "_aw_ack", 1);
                _fb.set(out, p + "_w_ack", 1);
                _fb.set(out, p + "_ar_ack", 1);
                _fb.set(out, p + "_b_valid", 1);
                _fb.set(out, p + "_b_data", 0);
                _fb.set(out, p + "_r_valid", 1);
                _fb.set(out, p + "_r_data",
                        static_cast<uint64_t>(j) + 0x100);
            }
            for (int i = 0; i < _n_masters; i++) {
                std::string p = strfmt("m%d", i);
                _fb.set(out, p + "_b_ack", 1);
                _fb.set(out, p + "_r_ack", 1);
            }
        }
        for (int i = 0; i < _n_masters; i++) {
            Master &ms = _m[static_cast<size_t>(i)];
            std::string p = strfmt("m%d", i);
            if (ms.hold > 0) {
                if (--ms.hold == 0) {
                    _fb.set(out, p + "_aw_valid", 0);
                    _fb.set(out, p + "_w_valid", 0);
                    _fb.set(out, p + "_ar_valid", 0);
                    // An idle gap before the next burst: most cycles
                    // this master contributes no activity at all.
                    ms.gap = 8 + _rng.below(33);
                }
                continue;
            }
            if (ms.gap > 0) {
                ms.gap--;
                continue;
            }
            uint64_t slave = _rng.below(
                static_cast<uint64_t>(_n_slaves));
            uint64_t addr = (slave << 29) | (_rng.below(4) << 2);
            // Long enough for demux + mux + response to complete.
            ms.hold = 14;
            if (_rng.chance(50)) {
                _fb.set(out, p + "_aw_data", addr);
                _fb.set(out, p + "_w_data", _rng.below(0x10000));
                _fb.set(out, p + "_aw_valid", 1);
                _fb.set(out, p + "_w_valid", 1);
            } else {
                _fb.set(out, p + "_ar_data", addr);
                _fb.set(out, p + "_ar_valid", 1);
            }
        }
        return out;
    }

  private:
    struct Master
    {
        int hold = 0;
        int gap = 0;
    };

    tb::SplitMix64 _rng;
    int _n_masters, _n_slaves;
    std::vector<Master> _m;
    FrameBuilder _fb;
    bool _first = true;
};

/**
 * TLB traffic: short lookup pulses from a small VPN pool (so repeat
 * lookups re-drive identical values and cost nothing), occasional
 * fills through the update port, long idle gaps in between.
 */
class TlbStimulus
{
  public:
    explicit TlbStimulus(uint64_t seed) : _rng(seed)
    {
        for (int i = 0; i < 16; i++)
            _pool.push_back(_rng.next() & 0xffffffffull);
    }

    InputFrame next()
    {
        InputFrame out;
        if (_first) {
            _first = false;
            _fb.set(out, "io_res_ack", 1);
        }
        if (_req_hold > 0) {
            if (--_req_hold == 0)
                _fb.set(out, "io_req_valid", 0);
        } else if (_req_gap > 0) {
            _req_gap--;
        } else {
            _fb.set(out, "io_req_data",
                    _pool[_rng.below(_pool.size())]);
            _fb.set(out, "io_req_valid", 1);
            _req_hold = 2;
            _req_gap = 6 + static_cast<int>(_rng.below(18));
        }
        if (_upd_hold > 0) {
            if (--_upd_hold == 0)
                _fb.set(out, "io_upd_valid", 0);
        } else if (_upd_gap > 0) {
            _upd_gap--;
        } else {
            uint64_t vpn = _pool[_rng.below(_pool.size())];
            _fb.set(out, "io_upd_data",
                    (vpn << 32) | (_rng.next() & 0xffffffffull));
            _fb.set(out, "io_upd_valid", 1);
            _upd_hold = 1;
            _upd_gap = 20 + static_cast<int>(_rng.below(24));
        }
        return out;
    }

  private:
    tb::SplitMix64 _rng;
    std::vector<uint64_t> _pool;
    FrameBuilder _fb;
    bool _first = true;
    int _req_hold = 0, _req_gap = 0;
    int _upd_hold = 0, _upd_gap = 3;
};

} // namespace testing
} // namespace anvil

#endif // ANVIL_TESTS_SIM_WORKLOADS_H
