/**
 * @file
 * Compiled-netlist simulator tests: differential equivalence against
 * the reference interpreter (rtl::RefSim) on every evaluation design
 * — peeks, dprint logs, and toggle counts must be bit-identical —
 * plus targeted regressions for child-output alias peeks, lazy
 * (cycle-tolerant) evaluation, and netlist structure.
 */

#include <gtest/gtest.h>

#include <random>

#include "designs/designs.h"
#include "harness.h"
#include "rtl/interp.h"
#include "rtl/ref_interp.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

/**
 * Drive both simulators with the same pseudo-random input stream and
 * assert that registers, toggle counts, and logs stay identical.
 */
void
expectEquivalent(const ModulePtr &mod, int cycles, unsigned seed)
{
    Sim fast(mod);
    RefSim ref(mod);

    auto inputs = fast.inputNames();
    ASSERT_EQ(inputs, ref.inputNames());
    auto regs = fast.regNames();
    ASSERT_EQ(regs, ref.regNames());
    ASSERT_EQ(fast.stateBits(), ref.stateBits());

    std::mt19937_64 rng(seed);
    for (int cyc = 0; cyc < cycles; cyc++) {
        for (const auto &in : inputs) {
            uint64_t v = rng();
            fast.setInput(in, v);
            ref.setInput(in, v);
        }
        for (const auto &r : regs) {
            BitVec a = fast.peek(r);
            BitVec b = ref.peek(r);
            ASSERT_EQ(a.width(), b.width()) << r << " @" << cyc;
            ASSERT_EQ(a.toHex(), b.toHex()) << r << " @" << cyc;
        }
        fast.step();
        ref.step();
        ASSERT_EQ(fast.totalToggles(), ref.totalToggles())
            << mod->name << " @" << cyc;
        ASSERT_EQ(fast.cycle(), ref.cycle());
    }
    EXPECT_EQ(fast.log(), ref.log()) << mod->name;
}

TEST(SimDiff, CommonCells)
{
    expectEquivalent(designs::buildFifoBaseline(), 300, 1);
    expectEquivalent(designs::buildSpillRegBaseline(), 300, 2);
    expectEquivalent(designs::buildStreamFifoBaseline(), 300, 3);
}

TEST(SimDiff, Mmu)
{
    expectEquivalent(designs::buildTlbBaseline(), 200, 4);
    expectEquivalent(designs::buildPtwBaseline(), 200, 5);
}

TEST(SimDiff, Axi)
{
    expectEquivalent(designs::buildAxiDemuxBaseline(), 150, 6);
    expectEquivalent(designs::buildAxiMuxBaseline(), 150, 7);
}

TEST(SimDiff, AesAndPipelines)
{
    expectEquivalent(designs::buildAesBaseline(), 60, 8);
    expectEquivalent(designs::buildPipelinedAluBaseline(), 200, 9);
    expectEquivalent(designs::buildSystolicBaseline(), 200, 10);
}

TEST(SimDiff, FigureDemos)
{
    expectEquivalent(designs::buildHazardDemoSystem(), 100, 11);
    expectEquivalent(designs::buildCacheDemoBaseline(), 100, 12);
}

TEST(SimDiff, CompiledAnvilDesigns)
{
    auto fifo = anvil::testing::compileDesign(designs::anvilFifoSource(),
                                       "fifo");
    ASSERT_NE(fifo, nullptr);
    expectEquivalent(fifo, 200, 13);
    auto tlb = anvil::testing::compileDesign(designs::anvilTlbSource(),
                                      "tlb");
    ASSERT_NE(tlb, nullptr);
    expectEquivalent(tlb, 200, 14);
}

TEST(SimDiff, EvalTopMatchesReference)
{
    auto mod = designs::buildFifoBaseline();
    Sim fast(mod);
    RefSim ref(mod);
    auto inputs = fast.inputNames();
    ASSERT_FALSE(inputs.empty());
    // A handful of ad-hoc top-scope expressions, evaluated repeatedly
    // as the state evolves (the BMC usage pattern).
    std::vector<ExprPtr> exprs;
    for (const auto &r : fast.regNames())
        exprs.push_back(unop(Op::RedOr, rtl::ref(r, 1)));
    std::mt19937_64 rng(42);
    for (int cyc = 0; cyc < 50; cyc++) {
        for (const auto &in : inputs) {
            uint64_t v = rng();
            fast.setInput(in, v);
            ref.setInput(in, v);
        }
        for (const auto &e : exprs)
            ASSERT_EQ(fast.evalTop(e).toHex(), ref.evalTop(e).toHex());
        fast.step();
        ref.step();
    }
}

TEST(SimDiff, SetRegValueInvalidatesLikeReference)
{
    auto mod = designs::buildFifoBaseline();
    Sim fast(mod);
    RefSim ref(mod);
    auto regs = fast.regNames();
    std::mt19937_64 rng(5);
    for (int i = 0; i < 30; i++) {
        const auto &r = regs[rng() % regs.size()];
        uint64_t v = rng();
        BitVec bv(fast.regValue(r).width(), v);
        fast.setRegValue(r, bv);
        ref.setRegValue(r, bv);
        for (const auto &q : regs)
            ASSERT_EQ(fast.peek(q).toHex(), ref.peek(q).toHex());
        fast.step();
        ref.step();
    }
}

// --- Alias and lazy-path regressions -------------------------------------

ModulePtr
makeAdderChild()
{
    auto child = std::make_shared<Module>();
    child->name = "adder";
    auto ca = child->input("a", 8);
    auto cb = child->input("b", 8);
    child->output("sum", 8);
    child->wire("sum", ca + cb);
    return child;
}

TEST(SimNetlist, PeekThroughChildOutputAlias)
{
    auto top = std::make_shared<Module>();
    top->name = "top";
    auto x = top->input("x", 8);
    Instance inst;
    inst.name = "u0";
    inst.module = makeAdderChild();
    inst.inputs["a"] = x;
    inst.inputs["b"] = cst(8, 7);
    inst.outputs["x_plus_7"] = "sum";
    top->instances.push_back(std::move(inst));

    Sim sim(top);
    sim.setInput("x", 5);
    // The alias itself must be peekable, resolving to the child wire.
    EXPECT_EQ(sim.peek("x_plus_7").toUint64(), 12u);
    EXPECT_EQ(sim.peek("x_plus_7").width(), 8);
    EXPECT_EQ(sim.peek("u0.sum").toUint64(), 12u);
    // And it stays live across pokes.
    sim.setInput("x", 9);
    EXPECT_EQ(sim.peek("x_plus_7").toUint64(), 16u);
}

TEST(SimNetlist, PeekThroughNestedAliasChain)
{
    // mid wraps adder and re-exports its output; top re-exports mid's.
    auto mid = std::make_shared<Module>();
    mid->name = "mid";
    auto ma = mid->input("a", 8);
    Instance inner;
    inner.name = "u";
    inner.module = makeAdderChild();
    inner.inputs["a"] = ma;
    inner.inputs["b"] = cst(8, 1);
    inner.outputs["inc"] = "sum";
    mid->instances.push_back(std::move(inner));
    mid->output("inc", 8);

    auto top = std::make_shared<Module>();
    top->name = "top";
    auto x = top->input("x", 8);
    Instance outer;
    outer.name = "m";
    outer.module = mid;
    outer.inputs["a"] = x;
    outer.outputs["y"] = "inc";
    top->instances.push_back(std::move(outer));

    Sim sim(top);
    RefSim ref(top);
    sim.setInput("x", 41);
    ref.setInput("x", 41);
    // y -> m.inc -> m.u.sum: a two-hop alias chain.
    EXPECT_EQ(sim.peek("y").toUint64(), 42u);
    EXPECT_EQ(ref.peek("y").toUint64(), 42u);
    EXPECT_EQ(sim.peek("m.inc").toUint64(), 42u);
    EXPECT_EQ(sim.peek("m.u.sum").toUint64(), 42u);
}

TEST(SimNetlist, MuxGuardedCycleIsTolerated)
{
    // A structural cycle hidden behind an untaken mux branch is legal
    // in the reference interpreter; the compiled core must route such
    // nodes through the lazy evaluator rather than reject the design.
    auto m = std::make_shared<Module>();
    m->name = "guarded";
    auto sel = m->input("sel", 1);
    m->wire("w", mux(sel, cst(8, 42), rtl::ref("w", 8)));

    Sim sim(m);
    RefSim ref(m);
    sim.setInput("sel", 1);
    ref.setInput("sel", 1);
    EXPECT_EQ(sim.peek("w").toUint64(), 42u);
    EXPECT_EQ(ref.peek("w").toUint64(), 42u);
    sim.step(3);
    ref.step(3);
    EXPECT_EQ(sim.totalToggles(), ref.totalToggles());

    // Taking the cyclic branch faults, exactly like the reference.
    sim.setInput("sel", 0);
    ref.setInput("sel", 0);
    EXPECT_THROW(sim.peek("w"), std::runtime_error);
    EXPECT_THROW(ref.peek("w"), std::runtime_error);
}

TEST(SimNetlist, PeekFaultsOnlyOnTheRequestedCone)
{
    // A broken wire elsewhere in the design must not poison peeks of
    // healthy signals — the reference interpreter evaluates only the
    // requested cone, and the compiled core must match.
    auto m = std::make_shared<Module>();
    m->name = "partial";
    auto x = m->input("x", 8);
    m->wire("good", x + cst(8, 1));
    m->wire("bad", rtl::ref("bad", 8) + cst(8, 1));   // self-loop

    Sim sim(m);
    RefSim ref(m);
    sim.setInput("x", 4);
    ref.setInput("x", 4);
    EXPECT_EQ(sim.peek("good").toUint64(), 5u);
    EXPECT_EQ(ref.peek("good").toUint64(), 5u);
    EXPECT_THROW(sim.peek("bad"), std::runtime_error);
    EXPECT_THROW(ref.peek("bad"), std::runtime_error);
    // The clock edge evaluates every wire and faults in both.
    EXPECT_THROW(sim.step(), std::runtime_error);
    EXPECT_THROW(ref.step(), std::runtime_error);

    // Same for an unresolved reference: only its own cone faults.
    auto m2 = std::make_shared<Module>();
    m2->name = "dangling";
    auto y = m2->input("y", 8);
    m2->wire("ok", y ^ cst(8, 0xff));
    m2->wire("broken", rtl::ref("no_such", 8));
    Sim sim2(m2);
    RefSim ref2(m2);
    sim2.setInput("y", 0x0f);
    ref2.setInput("y", 0x0f);
    EXPECT_EQ(sim2.peek("ok").toUint64(), 0xf0u);
    EXPECT_EQ(ref2.peek("ok").toUint64(), 0xf0u);
    EXPECT_THROW(sim2.peek("broken"), std::invalid_argument);
    EXPECT_THROW(ref2.peek("broken"), std::invalid_argument);
}

TEST(SimNetlist, LevelizedOrderCoversStrictNodes)
{
    auto mod = designs::buildTlbBaseline();
    Sim sim(mod);
    const Netlist &nl = sim.netlist();
    // Level boundaries partition the strict order monotonically.
    const auto &lb = nl.levelBegin();
    ASSERT_GE(lb.size(), 2u);
    EXPECT_EQ(lb.front(), 0);
    EXPECT_EQ(static_cast<size_t>(lb.back()), nl.order().size());
    for (size_t i = 1; i < lb.size(); i++)
        EXPECT_LE(lb[i - 1], lb[i]);
    // Every operand of a strict node is computed in an earlier slot
    // or is a source node.
    std::vector<int> slot(nl.nets().size(), -1);
    for (size_t i = 0; i < nl.order().size(); i++)
        slot[static_cast<size_t>(nl.order()[i])] =
            static_cast<int>(i);
    for (size_t i = 0; i < nl.order().size(); i++) {
        const Net &n = nl.net(nl.order()[i]);
        auto check = [&](NetId o) {
            if (o == kNoNet)
                return;
            int s = slot[static_cast<size_t>(o)];
            EXPECT_TRUE(s < static_cast<int>(i)) << "net order";
        };
        check(n.a);
        check(n.b);
        check(n.c);
        for (NetId o : n.cargs)
            check(o);
    }
    // The TLB is loop-free: nothing should need the lazy path.
    EXPECT_TRUE(nl.lazyRoots().empty());
}

} // namespace
