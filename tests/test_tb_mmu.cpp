/**
 * @file
 * Randomized MMU testbench: the 8-entry fully-associative TLB eval
 * design driven by constrained-random lookups and refills from a
 * small vpn pool (so hits actually happen), checked against a
 * software reference model of the entry array and its round-robin
 * victim policy.  A broken variant that ignores an entry's valid bit
 * produces false hits the model catches immediately.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "designs/designs.h"
#include "tb/testbench.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

constexpr int kEntries = 8;
const std::vector<uint64_t> kVpnPool = {0,    1,    2,      3,
                                        0x10, 0x80, 0xdead, 0x7fff};

/** Replace a named wire's driver (to break a design on purpose). */
void
replaceWire(const ModulePtr &m, const std::string &name, ExprPtr e)
{
    for (auto &w : m->wires) {
        if (w.name == name) {
            w.expr = std::move(e);
            return;
        }
    }
    ADD_FAILURE() << "no wire named " << name;
}

/** Software model of the TLB: entries plus round-robin victim. */
struct TlbModel
{
    struct Entry
    {
        bool valid = false;
        uint64_t vpn = 0;
        uint64_t ppn = 0;
    };
    Entry entries[kEntries];
    int vict = 0;

    /** Hardware ORs the ppn of every matching entry. */
    std::pair<bool, uint64_t> lookup(uint64_t vpn) const
    {
        bool hit = false;
        uint64_t ppn = 0;
        for (const auto &e : entries) {
            if (e.valid && e.vpn == vpn) {
                hit = true;
                ppn |= e.ppn;
            }
        }
        return {hit, ppn};
    }

    void refill(uint64_t vpn, uint64_t ppn)
    {
        entries[vict] = {true, vpn, ppn};
        vict = (vict + 1) % kEntries;
    }
};

void
addTlbStimulus(tb::Testbench &bench)
{
    tb::FieldSpec vpn_lo;
    vpn_lo.lo = 0;
    vpn_lo.width = 32;
    vpn_lo.choices = kVpnPool;
    tb::RandomSpec req;
    req.fields = {vpn_lo};
    req.active_pct = 90;
    bench.driveRandom("io_req_data", req);

    tb::FieldSpec one;
    one.lo = 0;
    one.width = 1;
    one.min = 1;
    one.max = 1;
    tb::RandomSpec v75;
    v75.fields = {one};
    v75.active_pct = 75;
    bench.driveRandom("io_req_valid", v75);

    tb::RandomSpec a60;
    a60.fields = {one};
    a60.active_pct = 60;
    bench.driveRandom("io_res_ack", a60);

    // Refill data: vpn from the same pool, random ppn.
    tb::FieldSpec upd_vpn;
    upd_vpn.lo = 32;
    upd_vpn.width = 32;
    upd_vpn.choices = kVpnPool;
    tb::FieldSpec upd_ppn;
    upd_ppn.lo = 0;
    upd_ppn.width = 32;
    tb::RandomSpec upd;
    upd.fields = {upd_vpn, upd_ppn};
    bench.driveRandom("io_upd_data", upd);

    tb::RandomSpec v30;
    v30.fields = {one};
    v30.active_pct = 30;
    bench.driveRandom("io_upd_valid", v30);
}

/** Check the combinational response against the model every cycle,
 *  then mirror the refill the hardware will commit on this edge. */
void
addTlbModelCheck(tb::Testbench &bench, TlbModel &model)
{
    bench.check("tlb-model", [&model](tb::Testbench &t) {
        rtl::Sim &s = t.sim();
        bool req_valid = s.peek("io_req_valid").any();
        bool res_valid = s.peek("io_res_valid").any();
        if (req_valid != res_valid)
            t.fail("res-valid", "response valid != request valid");
        if (req_valid) {
            uint64_t vpn = s.peek("io_req_data").toUint64();
            uint64_t res = s.peek("io_res_data").toUint64();
            bool hw_hit = (res >> 32) & 1;
            uint64_t hw_ppn = res & 0xffffffffull;
            auto [hit, ppn] = model.lookup(vpn);
            if (hw_hit != hit)
                t.fail("hit",
                       "vpn " + std::to_string(vpn) + ": hw " +
                           (hw_hit ? "hit" : "miss") + ", model " +
                           (hit ? "hit" : "miss"));
            else if (hit && hw_ppn != ppn)
                t.fail("ppn",
                       "vpn " + std::to_string(vpn) +
                           ": hw ppn != model ppn");
        }
        // Updates are always acked and commit on this clock edge.
        if (s.peek("io_upd_valid").any()) {
            uint64_t upd = s.peek("io_upd_data").toUint64();
            model.refill(upd >> 32, upd & 0xffffffffull);
        }
    });
}

TEST(TbMmu, RandomizedTlbMatchesReferenceModel)
{
    tb::Testbench bench(designs::buildTlbBaseline(), 31337);
    addTlbStimulus(bench);
    TlbModel model;
    addTlbModelCheck(bench, model);

    tb::Coverage &cov = bench.coverage();
    cov.addCover("refill", rtl::ref("io_upd_valid", 1));
    cov.addCover("hit", rtl::ref("hit_any", 1) &
                            rtl::ref("io_req_valid", 1));
    cov.addAssert("res-valid-follows-req", cst(1, 1),
                  eq(rtl::ref("io_res_valid", 1),
                     rtl::ref("io_req_valid", 1)));

    tb::TbResult r = bench.run(3000);
    EXPECT_TRUE(r.ok()) << r.summary();

    // The stimulus exercised both hits and refills.
    EXPECT_GT(cov.covers()[0].hits, 100u);
    EXPECT_GT(cov.covers()[1].hits, 100u);
    EXPECT_TRUE(cov.assertsOk());
    // Every entry of the victim rotation was written.
    EXPECT_GT(cov.regBinPct(), 50.0);
}

TEST(TbMmu, DroppedHitTermProducesFalseMissesCaughtByModel)
{
    auto mod = designs::buildTlbBaseline();
    // The hit reduction forgets entry 0: every lookup that only
    // entry 0 could answer reports a false miss.
    ExprPtr any = rtl::ref("hit1", 1);
    for (int i = 2; i < kEntries; i++)
        any = any | rtl::ref("hit" + std::to_string(i), 1);
    replaceWire(mod, "hit_any", any);
    tb::Testbench bench(mod, 31337);
    addTlbStimulus(bench);
    TlbModel model;
    addTlbModelCheck(bench, model);
    tb::TbResult r = bench.run(2000);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.failures.empty());
    bool saw_hit_mismatch = false;
    for (const auto &f : r.failures)
        saw_hit_mismatch |= f.check == "hit";
    EXPECT_TRUE(saw_hit_mismatch);
}

TEST(TbMmu, SeededTlbRunReproduces)
{
    auto run_once = [](uint64_t seed) {
        tb::Testbench bench(designs::buildTlbBaseline(), seed);
        addTlbStimulus(bench);
        TlbModel model;
        addTlbModelCheck(bench, model);
        bench.coverage();
        bench.run(1000);
        return std::make_pair(bench.sim().totalToggles(),
                              bench.coverage().summaryJson());
    };
    EXPECT_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5).first, run_once(6).first);
}

} // namespace
