/**
 * @file
 * Regression tests pinning the figure benches' shapes: Fig. 1's
 * half-skipped addresses, Fig. 4's dynamic-contract speedup, and the
 * Fig. 5 trace verdicts.  These are the properties EXPERIMENTS.md
 * reports; the tests keep them from silently regressing.
 */

#include <gtest/gtest.h>

#include <set>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

TEST(Figures, Fig1HalfTheAddressesSkipped)
{
    rtl::Sim sim(designs::buildHazardDemoSystem());
    std::set<uint64_t> distinct;
    int requests = 0;
    for (int cyc = 0; cyc < 40; cyc++) {
        if (sim.peek("req").any())
            requests++;
        if (sim.peek("sampling").any() && cyc >= 3)
            distinct.insert(sim.peek("observed").toUint64());
        sim.step();
    }
    ASSERT_GE(requests, 16);
    // Only about half of the requested addresses produce values, and
    // all observed values are even offsets (0x10, 0x12, ...).
    EXPECT_LE(distinct.size(), static_cast<size_t>(requests / 2 + 1));
    for (uint64_t v : distinct)
        EXPECT_EQ(v % 2, 0u) << "odd address was dereferenced";
}

TEST(Figures, Fig4DynamicContractBeatsStatic)
{
    // Static client: every access pays the 3-cycle miss window.
    // Dynamic client: consumes the response when it arrives.
    auto run = [&](bool dynamic) {
        rtl::Sim cache(designs::buildCacheDemoBaseline());
        int cycles = 0;
        for (int n = 0; n < 16; n++) {
            uint64_t a = n % 4;
            cache.setInput("io_req_data", a);
            cache.setInput("io_req_valid", 1);
            cache.setInput("io_res_ack", dynamic ? 1 : 0);
            while (!cache.peek("io_req_ack").any() && cycles < 500) {
                cache.step();
                cycles++;
            }
            cache.step();
            cycles++;
            cache.setInput("io_req_valid", 0);
            if (dynamic) {
                while (!cache.peek("io_res_valid").any() &&
                       cycles < 500) {
                    cache.step();
                    cycles++;
                }
                cache.step();
                cycles++;
            } else {
                for (int w = 0; w < 3; w++) {
                    cache.setInput("io_res_ack", w == 2 ? 1 : 0);
                    cache.step();
                    cycles++;
                }
            }
        }
        return cycles;
    };
    int static_cycles = run(false);
    int dynamic_cycles = run(true);
    EXPECT_LT(dynamic_cycles, static_cycles);
    // With 12 of 16 accesses hitting, the gain is substantial.
    EXPECT_GE(static_cycles - dynamic_cycles, 12);
}

TEST(Figures, Fig5VerdictsMatchThePaper)
{
    CompileOutput unsafe = compileAnvil(designs::anvilTopUnsafeSource());
    CompileOutput safe = compileAnvil(designs::anvilTopSafeSource());
    EXPECT_FALSE(unsafe.checks.at("top_unsafe").safe);
    EXPECT_TRUE(safe.checks.at("top_safe").safe);
    EXPECT_NE(unsafe.checks.at("top_unsafe").traceStr().find("UNSAFE"),
              std::string::npos);
    EXPECT_NE(safe.checks.at("top_safe").traceStr().find("SAFE"),
              std::string::npos);
}

TEST(Figures, Fig8EveryPassFiresSomewhere)
{
    // Across the design suite, all four Fig. 8 passes find work.
    std::map<std::string, int> totals{{"a", 0}, {"b", 0}, {"c", 0},
                                      {"d", 0}};
    for (const std::string &src :
         {designs::anvilFifoSource(), designs::anvilTlbSource(),
          designs::anvilPipelinedAluSource(),
          designs::anvilSystolicSource(),
          designs::anvilAxiMuxSource()}) {
        CompileOutput out = compileAnvil(src);
        for (const auto &[name, s] : out.opt_stats)
            for (const auto &[k, v] : s.merged_by_pass)
                totals[k] += v;
    }
    EXPECT_GT(totals["a"], 0);
    EXPECT_GT(totals["b"], 0);
    EXPECT_GT(totals["c"], 0);
    EXPECT_GT(totals["d"], 0);
}

TEST(Figures, SafeTopRunsAgainstCacheWithoutHazard)
{
    // End-to-end: the Fig. 5 safe client against the Fig. 4 cache
    // accumulates exactly the values of sequential addresses.
    CompileOutput out = compileAnvil(designs::anvilTopSafeSource(),
                                     {.top = "top_safe"});
    ASSERT_TRUE(out.ok) << out.diags.render();
    rtl::Sim client(out.module("top_safe"));
    rtl::Sim cache(designs::buildCacheDemoBaseline());

    int responses = 0;
    uint64_t sum = 0;
    for (int cyc = 0; cyc < 200 && responses < 8; cyc++) {
        client.setInput("mem_req_ack", cache.peek("io_req_ack"));
        client.setInput("mem_res_valid", cache.peek("io_res_valid"));
        client.setInput("mem_res_data", cache.peek("io_res_data"));
        cache.setInput("io_req_valid", client.peek("mem_req_valid"));
        cache.setInput("io_req_data", client.peek("mem_req_data"));
        cache.setInput("io_res_ack", client.peek("mem_res_ack"));
        bool res = cache.peek("io_res_valid").any() &&
            client.peek("mem_res_ack").any();
        uint64_t data = cache.peek("io_res_data").toUint64();
        client.step();
        cache.step();
        if (res) {
            responses++;
            sum += data;
        }
    }
    ASSERT_EQ(responses, 8);
    // Addresses 0..7 -> values 0x10..0x17: no skips, no repeats.
    uint64_t expect = 0;
    for (int i = 0; i < 8; i++)
        expect += 0x10 + i;
    EXPECT_EQ(sum, expect);
    EXPECT_EQ(client.peek("acc").toUint64(), expect & 0xff);
}

} // namespace
