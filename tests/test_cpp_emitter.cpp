/**
 * @file
 * Compiled C++ backend: golden emitted-kernel snapshot for the
 * quickstart design, JIT round-trip behaviour against the
 * interpreter, kernel ABI invariants, and the no-compiler fallback
 * path (a broken ANVIL_CXX must degrade to the interpreter, never
 * fail the run).
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/cpp_emitter.h"
#include "codegen/jit.h"
#include "harness.h"
#include "rtl/interp.h"

using namespace anvil;
using namespace anvil::rtl;

namespace {

#ifndef ANVIL_TEST_DIR
#define ANVIL_TEST_DIR "tests"
#endif

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The quickstart module, compiled from the shipped example. */
ModulePtr
quickstartModule()
{
    std::string src = readFile(std::string(ANVIL_TEST_DIR) +
                               "/../examples/quickstart.anvil");
    if (src.empty())
        return nullptr;
    return anvil::testing::compileDesign(src, "ping_server");
}

/** Deterministic quickstart stimulus (same shape as the VCD golden). */
void
driveQuickstart(Sim &sim, int cyc)
{
    sim.setInput("io_ping_data", 10 + cyc * 7);
    sim.setInput("io_ping_valid", cyc % 4 < 2 ? 1 : 0);
    sim.setInput("io_pong_ack", cyc % 3 != 0 ? 1 : 0);
}

TEST(CppEmitter, QuickstartKernelMatchesGolden)
{
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);
    Netlist nl(*mod);
    std::string got = codegen::emitCppKernel(nl, "ping_server");
    ASSERT_FALSE(got.empty());

    std::string path = std::string(ANVIL_TEST_DIR) +
                       "/golden/quickstart_kernel.cpp";
    if (std::getenv("ANVIL_REGEN_GOLDEN")) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << path;
        os << got;
        return;
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden " << path
        << " (run with ANVIL_REGEN_GOLDEN=1 to create)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(CppEmitter, KernelAbiMatchesNetlist)
{
    if (codegen::jitCompilerPath().empty())
        GTEST_SKIP() << "no system compiler available";
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);
    Sim sim(mod);
    codegen::JitOptions jo;
    jo.opt_level = 1;
    codegen::JitResult jr =
        codegen::jitCompileKernel(sim.netlist(), jo);
    ASSERT_NE(jr.kernel, nullptr) << jr.error;
    const AnvilKernelV2 *abi = jr.kernel->abi();
    ASSERT_NE(abi, nullptr);
    EXPECT_EQ(abi->abi_version, ANVIL_KERNEL_ABI_VERSION);
    EXPECT_EQ(abi->net_count, sim.netlist().nets().size());
    EXPECT_EQ(abi->design_hash, designHash(sim.netlist()));
    EXPECT_GT(abi->state_words, 0u);

    // A second compile of the same design hits the process-wide
    // cache and hands back the exact same kernel object.
    codegen::JitResult again =
        codegen::jitCompileKernel(sim.netlist(), jo);
    EXPECT_EQ(again.kernel.get(), jr.kernel.get());
    EXPECT_TRUE(again.cache_hit);
}

TEST(CppEmitter, EmitterTagBumpForcesRecompile)
{
    if (codegen::jitCompilerPath().empty())
        GTEST_SKIP() << "no system compiler available";
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);
    Sim sim(mod);
    codegen::JitOptions jo;
    jo.opt_level = 1;
    codegen::JitResult base =
        codegen::jitCompileKernel(sim.netlist(), jo);
    ASSERT_NE(base.kernel, nullptr) << base.error;

    // Same design + opt level but a newer codegen revision: the
    // cached object from the old emitter must never be served.
    jo.emitter_tag = codegen::kCppEmitterVersion + 1;
    codegen::JitResult bumped =
        codegen::jitCompileKernel(sim.netlist(), jo);
    ASSERT_NE(bumped.kernel, nullptr) << bumped.error;
    EXPECT_FALSE(bumped.cache_hit);
    EXPECT_NE(bumped.kernel.get(), base.kernel.get());
    EXPECT_GT(bumped.source_bytes, 0u);

    // The bumped tag is itself cached under its own key.
    codegen::JitResult again =
        codegen::jitCompileKernel(sim.netlist(), jo);
    EXPECT_TRUE(again.cache_hit);
    EXPECT_EQ(again.kernel.get(), bumped.kernel.get());
}

TEST(CppEmitter, JitRoundTripMatchesInterpreter)
{
    if (codegen::jitCompilerPath().empty())
        GTEST_SKIP() << "no system compiler available";
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);

    Sim interp(mod), compiled(mod);
    codegen::JitOptions jo;
    jo.opt_level = 1;
    codegen::JitResult jr =
        codegen::jitCompileKernel(compiled.netlist(), jo);
    ASSERT_NE(jr.kernel, nullptr) << jr.error;
    ASSERT_TRUE(compiled.attachKernel(codegen::kernelRef(jr.kernel)));
    ASSERT_TRUE(compiled.kernelAttached());

    for (int cyc = 0; cyc < 200; cyc++) {
        driveQuickstart(interp, cyc);
        driveQuickstart(compiled, cyc);
        interp.step();
        compiled.step();
        ASSERT_EQ(interp.totalToggles(), compiled.totalToggles())
            << "cycle " << cyc;
    }
    auto ra = interp.captureRegs(), rb = compiled.captureRegs();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); i++)
        EXPECT_EQ(ra[i].toHex(), rb[i].toHex());
    EXPECT_EQ(interp.log(), compiled.log());
}

TEST(CppEmitter, KernelReportsPerLevelEvals)
{
    if (codegen::jitCompilerPath().empty())
        GTEST_SKIP() << "no system compiler available";
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);
    Sim sim(mod);
    codegen::JitOptions jo;
    jo.opt_level = 1;
    codegen::JitResult jr =
        codegen::jitCompileKernel(sim.netlist(), jo);
    ASSERT_NE(jr.kernel, nullptr) << jr.error;
    const AnvilKernelV2 *abi = jr.kernel->abi();
    ASSERT_NE(abi, nullptr);
    // v3 surface: the level table is sized like the netlist's and
    // backed by a live accessor.
    EXPECT_EQ(abi->level_count,
              sim.netlist().levelBegin().empty()
                  ? 0u
                  : static_cast<uint32_t>(
                        sim.netlist().levelBegin().size() - 1));
    ASSERT_NE(abi->level_stats, nullptr);
    ASSERT_TRUE(sim.attachKernel(codegen::kernelRef(jr.kernel)));

    for (int cyc = 0; cyc < 50; cyc++) {
        driveQuickstart(sim, cyc);
        sim.step();
    }
    std::vector<uint64_t> per_level = sim.kernelLevelEvals();
    ASSERT_EQ(per_level.size(), abi->level_count);
    uint64_t total = 0;
    for (uint64_t e : per_level)
        total += e;
    // The per-level counters partition the sweep's eval total.
    EXPECT_EQ(total, sim.sweepStats().nodes_evaluated);
    EXPECT_GT(total, 0u);
}

TEST(CppEmitter, JitHonorsTmpdir)
{
    if (codegen::jitCompilerPath().empty())
        GTEST_SKIP() << "no system compiler available";
    auto mod = quickstartModule();
    ASSERT_NE(mod, nullptr);
    Sim sim(mod);

    // Point TMPDIR at a private scratch dir; a unique emitter tag
    // bypasses the process-wide kernel cache so the JIT really runs.
    char tmpl[] = "/tmp/anvil-tmpdir-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string scratch = tmpl;
    const char *saved = std::getenv("TMPDIR");
    std::string saved_val = saved ? saved : "";
    ::setenv("TMPDIR", scratch.c_str(), 1);

    codegen::JitOptions jo;
    jo.opt_level = 1;
    jo.keep_files = true;
    jo.emitter_tag = codegen::kCppEmitterVersion + 1000;
    codegen::JitResult jr =
        codegen::jitCompileKernel(sim.netlist(), jo);

    if (saved)
        ::setenv("TMPDIR", saved_val.c_str(), 1);
    else
        ::unsetenv("TMPDIR");
    ASSERT_NE(jr.kernel, nullptr) << jr.error;

    // The work dir must have landed under $TMPDIR, not /tmp.
    bool found = false;
    if (DIR *d = ::opendir(scratch.c_str())) {
        while (struct dirent *e = ::readdir(d))
            if (std::string(e->d_name).rfind("anvil-jit-", 0) == 0)
                found = true;
        ::closedir(d);
    }
    EXPECT_TRUE(found)
        << "no anvil-jit-* work dir under " << scratch;
}

TEST(CppEmitter, BrokenCompilerFallsBackToInterpreter)
{
    // A design no other test compiles, so the JIT cache can't mask
    // the compile failure (the cache is consulted before the
    // compiler probe).
    auto m = std::make_shared<Module>();
    m->name = "fallback_probe";
    auto x = m->input("x", 7);
    auto c = m->reg("c", 7);
    m->update("c", cst(1, 1), c ^ x);

    const char *saved = std::getenv("ANVIL_CXX");
    std::string saved_val = saved ? saved : "";
    ::setenv("ANVIL_CXX", "/nonexistent/cxx", 1);
    // ANVIL_CXX is taken verbatim, even when broken: it is the hook
    // this test (and CI) uses to force the fallback path.
    EXPECT_EQ(codegen::jitCompilerPath(), "/nonexistent/cxx");

    Sim sim(m);
    codegen::JitResult jr = codegen::jitCompileKernel(sim.netlist());
    EXPECT_EQ(jr.kernel, nullptr);
    EXPECT_FALSE(jr.error.empty());

    if (saved)
        ::setenv("ANVIL_CXX", saved_val.c_str(), 1);
    else
        ::unsetenv("ANVIL_CXX");

    // Attaching an empty kernel ref is refused and the interpreter
    // keeps running correctly.
    EXPECT_FALSE(sim.attachKernel(codegen::kernelRef(jr.kernel)));
    EXPECT_FALSE(sim.kernelAttached());
    sim.setInput("x", 0x55);
    sim.step();
    sim.setInput("x", 0x0f);
    sim.step();
    EXPECT_EQ(sim.captureRegs()[0].toUint64(), 0x55ull ^ 0x0full);
}

} // namespace
