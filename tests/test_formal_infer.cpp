/**
 * @file
 * Typed contract inference tests: the specs derived from `@dyn#N`
 * annotations and lifetime results reproduce the hand-written specs
 * the trace tests use, agree with the netlist name-pair guess on
 * every eval design, and a deliberately mis-annotated channel is
 * disproved by the k-induction prover with a counterexample VCD that
 * the offline trace checker flags at the same cycle.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "formal/contracts.h"
#include "formal/kinduction.h"
#include "formal/property.h"
#include "rtl/interp.h"
#include "trace/contracts.h"
#include "trace/vcd_reader.h"

#ifndef ANVIL_TEST_DIR
#define ANVIL_TEST_DIR "tests"
#endif

using namespace anvil;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Compile and return both the output and the typed contract set. */
formal::ContractSet
inferFor(const std::string &source, CompileOutput *out_p = nullptr)
{
    CompileOutput out = compileAnvil(source);
    EXPECT_TRUE(out.ok) << out.diags.render();
    formal::ContractSet set =
        formal::inferContracts(out.program, out.top);
    if (out_p)
        *out_p = std::move(out);
    return set;
}

TEST(FormalInfer, QuickstartMatchesHandWrittenSpec)
{
    formal::ContractSet set = inferFor(
        readFile(std::string(ANVIL_TEST_DIR) +
                 "/../examples/quickstart.anvil"));
    ASSERT_EQ(set.channels.size(), 2u);

    // The design-sent pong channel carries exactly the hand-written
    // default the trace tests pin ("io_pong" == stable, hold).
    const formal::ChannelContract *pong = set.find("io_pong");
    ASSERT_NE(pong, nullptr);
    EXPECT_TRUE(pong->design_sends);
    EXPECT_EQ(pong->design.str(),
              trace::parseContractSpec("io_pong").str());
    // The `@dyn#4` bound on the receiving side is an environment
    // assumption, not a design obligation.
    EXPECT_EQ(pong->env.str(),
              trace::parseContractSpec("io_pong: ack within 4").str());
    EXPECT_EQ(pong->lifetime, "#1");
    // Lifetime provenance from the type system rides along.
    ASSERT_EQ(pong->send_lifetimes.size(), 1u);

    // The design-received ping channel has no readiness bound (its
    // ack latency depends on the environment acking pong), so the
    // design owes nothing checkable; stable/hold bind the sender —
    // the environment.
    const formal::ChannelContract *ping = set.find("io_ping");
    ASSERT_NE(ping, nullptr);
    EXPECT_FALSE(ping->design_sends);
    EXPECT_EQ(ping->design.str(), "io_ping: none");
    EXPECT_EQ(ping->env.str(),
              trace::parseContractSpec("io_ping: stable, hold").str());

    // The checker-facing views: clause-less obligations are
    // filtered; both channels carry environment assumptions.
    auto obligations = set.obligations();
    ASSERT_EQ(obligations.size(), 1u);
    EXPECT_EQ(obligations[0].str(), "io_pong: stable, hold");
    auto assumptions = set.assumptions();
    ASSERT_EQ(assumptions.size(), 2u);
    EXPECT_EQ(assumptions[0].str(), "io_ping: stable, hold");
    EXPECT_EQ(assumptions[1].str(), "io_pong: ack within 4");
}

TEST(FormalInfer, AnnotatedBoundsBecomeAckWithinObligations)
{
    // The shipped `@dyn#3` annotations land verbatim as design
    // obligations on the receiving side.
    struct Case
    {
        std::string source;
        const char *channel;
        const char *spec;
    };
    std::vector<Case> cases = {
        {designs::anvilTlbSource(), "io_upd", "io_upd: ack within 3"},
        {designs::anvilSystolicSource(), "inp_wld",
         "inp_wld: ack within 3"},
        {designs::anvilListing2Source(), "io_req",
         "io_req: ack within 3"},
    };
    for (const auto &c : cases) {
        formal::ContractSet set = inferFor(c.source);
        const formal::ChannelContract *ch = set.find(c.channel);
        ASSERT_NE(ch, nullptr) << c.channel;
        EXPECT_FALSE(ch->design_sends) << c.channel;
        EXPECT_EQ(ch->design.str(),
                  trace::parseContractSpec(c.spec).str());
        // The spec round-trips through the one-line syntax.
        EXPECT_EQ(trace::parseContractSpec(ch->design.str()).str(),
                  ch->design.str());
    }
}

TEST(FormalInfer, AgreesWithNetlistInferenceOnEvalDesigns)
{
    // The typed design-sent channels coincide with the netlist
    // name-pair guess (design-driven valid/ack pairs), clauses
    // included — the netlist default is stable+hold, which is
    // exactly the sender obligation the types derive.
    std::vector<std::pair<const char *, std::string>> designs = {
        {"fifo", designs::anvilFifoSource()},
        {"spill_reg", designs::anvilSpillRegSource()},
        {"stream_fifo", designs::anvilStreamFifoSource()},
        {"tlb", designs::anvilTlbSource()},
        {"ptw", designs::anvilPtwSource()},
        {"aes", designs::anvilAesSource()},
        {"axi_demux", designs::anvilAxiDemuxSource()},
        {"axi_mux", designs::anvilAxiMuxSource()},
        {"systolic", designs::anvilSystolicSource()},
        {"listing2", designs::anvilListing2Source()},
    };
    for (const auto &[name, source] : designs) {
        CompileOutput out;
        formal::ContractSet typed = inferFor(source, &out);
        rtl::Sim sim(out.module(out.top));
        auto guessed = trace::inferContracts(sim.netlist());

        std::set<std::string> typed_sent, netlist_found;
        for (const auto &c : typed.channels)
            if (c.design_sends) {
                typed_sent.insert(c.channel);
                EXPECT_EQ(c.design.str(),
                          trace::ContractSpec{c.channel}.str())
                    << name << " " << c.channel;
            }
        for (const auto &s : guessed)
            netlist_found.insert(s.channel);
        EXPECT_EQ(typed_sent, netlist_found) << name;
    }
}

TEST(FormalInfer, HierarchicalInternalChannelsStayMonitored)
{
    // A spawned child's internal channel flattens to plain wires:
    // invisible to the typed inference, but its valid/ack handshake
    // is still monitorable.  checkableSpecs must merge the netlist
    // guess back in, so hierarchical designs lose nothing the old
    // netlist-only default covered.
    CompileOutput out;
    formal::ContractSet typed = inferFor(R"(
chan inner_ch {
    right d : (logic[8]@#1)
}
chan outer_ch {
    left in : (logic[8]@in),
    right out : (logic[8]@#1)
}
proc child(ep : left inner_ch) {
    loop { send ep.d (200) >> cycle 1 }
}
proc parent(io : left outer_ch) {
    reg acc : logic[8];
    chan cl -- cr : inner_ch;
    spawn child(cl);
    loop {
        let w = recv io.in >>
        let v = recv cr.d >>
        set acc := v + w >>
        send io.out (*acc) >>
        cycle 1
    }
}
)", &out);
    ASSERT_EQ(out.top, "parent");
    // The internal channel flattens under the child instance's
    // scope; it is not a top endpoint the typed set can see.
    EXPECT_EQ(typed.find("child_0.ep_d"), nullptr);

    rtl::Sim sim(out.module(out.top));
    auto specs = formal::checkableSpecs(typed, sim.netlist());
    bool saw_internal = false, saw_out = false;
    for (const auto &s : specs) {
        if (s.channel == "child_0.ep_d") {
            saw_internal = true;
            // Netlist default clauses for the merged channel.
            EXPECT_EQ(s.str(), "child_0.ep_d: stable, hold");
        }
        saw_out |= s.channel == "io_out";
        EXPECT_NE(s.channel, "io_in");   // clause-less: filtered
    }
    EXPECT_TRUE(saw_internal);
    EXPECT_TRUE(saw_out);
}

TEST(FormalInfer, StaticSyncChannelsHaveNoContract)
{
    // alu's op/res use static sync on both sides: no handshake
    // wires, nothing to monitor.
    formal::ContractSet set = inferFor(designs::anvilPipelinedAluSource());
    EXPECT_EQ(set.find("io_op"), nullptr);
    EXPECT_EQ(set.find("io_res"), nullptr);
    // systolic mixes: act is static (skipped), wld is dynamic.
    formal::ContractSet sys = inferFor(designs::anvilSystolicSource());
    EXPECT_EQ(sys.find("inp_act"), nullptr);
    EXPECT_NE(sys.find("inp_wld"), nullptr);
}

TEST(FormalInfer, Listing2FileMatchesGeneratorSource)
{
    // examples/listing2.anvil must stay in sync with
    // designs::anvilListing2Source(): same generated hardware, same
    // inferred contracts.
    CompileOutput from_file, from_func;
    formal::ContractSet set_file = inferFor(
        readFile(std::string(ANVIL_TEST_DIR) +
                 "/../examples/listing2.anvil"),
        &from_file);
    formal::ContractSet set_func =
        inferFor(designs::anvilListing2Source(), &from_func);
    EXPECT_EQ(from_file.systemverilog, from_func.systemverilog);
    ASSERT_EQ(set_file.channels.size(), set_func.channels.size());
    for (size_t i = 0; i < set_file.channels.size(); i++) {
        EXPECT_EQ(set_file.channels[i].design.str(),
                  set_func.channels[i].design.str());
        EXPECT_EQ(set_file.channels[i].env.str(),
                  set_func.channels[i].env.str());
    }
}

TEST(FormalInfer, MisAnnotatedChannelCaughtWithReplayableCex)
{
    // Tighten listing2's bound to `@dyn#1`: the accept loop's busy
    // cycle makes a one-cycle deadline unmeetable.  The prover must
    // find a reset-reachable counterexample, and its VCD must be
    // flagged by the offline trace checker for the same channel and
    // rule.
    std::string src = designs::anvilListing2Source();
    size_t pos = src.find("@dyn#3");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, 6, "@dyn#1");

    CompileOutput out;
    formal::ContractSet typed = inferFor(src, &out);
    const formal::ChannelContract *req = typed.find("io_req");
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->design.str(), "io_req: ack within 1");

    auto inst = formal::compileProperties(*out.module(out.top),
                                          typed.obligations());
    formal::ProveResult res = formal::prove(inst);
    ASSERT_TRUE(res.anyViolated()) << res.report(true);

    const formal::ObligationOutcome *cex = nullptr;
    for (const auto &o : res.obligations)
        if (o.status == formal::ObligationOutcome::Status::Violated)
            cex = &o;
    ASSERT_NE(cex, nullptr);
    EXPECT_EQ(cex->channel, "io_req");
    EXPECT_EQ(cex->rule, "ack-within");
    ASSERT_FALSE(cex->cex.empty());

    std::ostringstream vcd;
    formal::writeCexVcd(inst, *cex, vcd);
    std::istringstream in(vcd.str());
    trace::Trace t = trace::VcdReader::read(in);
    auto violations = trace::checkTrace(typed.obligations(), t);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].channel, "io_req");
    EXPECT_EQ(violations[0].rule, "ack-within");
    // The dump's final frame is the violating one.
    EXPECT_EQ(violations[0].cycle, t.endTime());
}

} // namespace
