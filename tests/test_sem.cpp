/**
 * @file
 * Formal-semantics property tests (Appendix C / Theorem C.20): every
 * sampled execution log of a well-typed process satisfies the
 * Def. C.15 safety predicate, and the paper's ill-typed examples
 * exhibit dynamic violations under some schedules.
 */

#include <gtest/gtest.h>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "sem/safety.h"

using namespace anvil;

namespace {

TEST(ExecLog, DetectsMutationInsideWindow)
{
    sem::ExecLog log;
    sem::LogOp create;
    create.kind = sem::LogOp::Kind::ValCreate;
    create.value = 0;
    create.reg_deps = {"r"};
    log.add(2, create);
    sem::LogOp use;
    use.kind = sem::LogOp::Kind::ValUse;
    use.value = 0;
    log.add(5, use);
    sem::LogOp mut;
    mut.kind = sem::LogOp::Kind::RegMut;
    mut.reg = "r";
    log.add(3, mut);
    auto v = sem::checkLogSafety(log);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].what.find("'r' mutated"), std::string::npos);
}

TEST(ExecLog, MutationAtLastUseIsSafe)
{
    // Def. C.15 checks MutSet on [a, b): a mutation in the last-use
    // cycle takes effect afterwards.
    sem::ExecLog log;
    sem::LogOp create;
    create.kind = sem::LogOp::Kind::ValCreate;
    create.value = 0;
    create.reg_deps = {"r"};
    log.add(2, create);
    sem::LogOp use;
    use.kind = sem::LogOp::Kind::ValUse;
    use.value = 0;
    log.add(5, use);
    sem::LogOp mut;
    mut.kind = sem::LogOp::Kind::RegMut;
    mut.reg = "r";
    log.add(5, mut);
    EXPECT_TRUE(sem::checkLogSafety(log).empty());
}

TEST(ExecLog, TransitiveRegisterDependencies)
{
    sem::ExecLog log;
    sem::LogOp base;
    base.kind = sem::LogOp::Kind::ValCreate;
    base.value = 0;
    base.reg_deps = {"r"};
    log.add(1, base);
    sem::LogOp derived;
    derived.kind = sem::LogOp::Kind::ValCreate;
    derived.value = 1;
    derived.val_deps = {0};
    log.add(2, derived);
    sem::LogOp use;
    use.kind = sem::LogOp::Kind::ValUse;
    use.value = 1;
    log.add(6, use);
    sem::LogOp mut;
    mut.kind = sem::LogOp::Kind::RegMut;
    mut.reg = "r";
    log.add(4, mut);
    // v1 transitively depends on r (R-Create).
    EXPECT_FALSE(sem::checkLogSafety(log).empty());
}

TEST(ExecLog, RecvPromiseViolationDetected)
{
    sem::ExecLog log;
    sem::LogOp recv;
    recv.kind = sem::LogOp::Kind::ValRecv;
    recv.value = 0;
    recv.window_end = 4;   // promised until cycle 4 (exclusive)
    log.add(2, recv);
    sem::LogOp use;
    use.kind = sem::LogOp::Kind::ValUse;
    use.value = 0;
    log.add(6, use);       // used after the promise ends
    EXPECT_FALSE(sem::checkLogSafety(log).empty());
}

// ---------------------------------------------------------------------
// Theorem C.20: well-typed implies safe on sampled schedules.
// ---------------------------------------------------------------------

struct NamedSource
{
    const char *name;
    std::string source;
    const char *proc;
};

class WellTypedImpliesSafe
    : public ::testing::TestWithParam<int>
{
  public:
    static std::vector<NamedSource> cases()
    {
        using namespace designs;
        return {
            {"fifo", anvilFifoSource(), "fifo"},
            {"spill_reg", anvilSpillRegSource(), "spill_reg"},
            {"stream_fifo", anvilStreamFifoSource(), "stream_fifo"},
            {"tlb", anvilTlbSource(), "tlb"},
            {"ptw", anvilPtwSource(), "ptw"},
            {"top_safe", anvilTopSafeSource(), "top_safe"},
            {"alu", anvilPipelinedAluSource(), "alu"},
            {"axi_demux", anvilAxiDemuxSource(), "axi_demux"},
        };
    }
};

TEST_P(WellTypedImpliesSafe, AllSampledLogsAreSafe)
{
    NamedSource c = cases()[GetParam()];
    // Precondition: the design is well-typed.
    CompileOutput out = compileAnvil(c.source);
    ASSERT_TRUE(out.ok) << c.name << "\n" << out.diags.render();

    sem::FuzzReport r =
        sem::fuzzProcessSafety(c.source, c.proc, 60, 17, 5);
    EXPECT_EQ(r.unsafe_samples, 0)
        << c.name << ": "
        << (r.example_violations.empty() ? ""
                                         : r.example_violations[0]);
    EXPECT_EQ(r.samples, 60);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, WellTypedImpliesSafe,
    ::testing::Range(0, 8),
    [](const ::testing::TestParamInfo<int> &i) {
        return WellTypedImpliesSafe::cases()[i.param].name;
    });

TEST(IllTypedExhibitsViolations, Fig6Encrypt)
{
    // The contrapositive on the paper's unsafe example: some sampled
    // schedule shows a dynamic violation.
    sem::FuzzReport r = sem::fuzzProcessSafety(
        designs::anvilEncryptSource(), "encrypt", 80, 5, 5);
    EXPECT_GT(r.unsafe_samples, 0);
}

TEST(IllTypedExhibitsViolations, Fig5TopUnsafe)
{
    sem::FuzzReport r = sem::fuzzProcessSafety(
        designs::anvilTopUnsafeSource(), "top_unsafe", 80, 5, 5);
    EXPECT_GT(r.unsafe_samples, 0);
}

} // namespace
