/**
 * @file
 * Event-graph and ordering-relation tests (Defs. C.9-C.11): gap
 * bounds on hand-built graphs, pattern comparisons, branch contexts,
 * and a randomized soundness property — whenever the analysis claims
 * a <=_G b, every sampled timestamp function satisfies
 * tau(a) <= tau(b).
 */

#include <gtest/gtest.h>

#include "ir/elaborate.h"
#include "ir/ordering.h"
#include "lang/parser.h"
#include "sem/loggen.h"

using namespace anvil;

namespace {

TEST(Ordering, FixedDelaysAreExact)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 2);
    EventId b = g.addDelay(a, 3);
    Ordering ord(g);
    EXPECT_EQ(ord.gapLb(b, root), 5);
    EXPECT_EQ(ord.gapUb(b, root), 5);
    EXPECT_EQ(ord.gapLb(root, b), -5);
    EXPECT_TRUE(ord.le(root, b));
    EXPECT_TRUE(ord.lt(root, b));
    EXPECT_FALSE(ord.le(b, root));
}

TEST(Ordering, DynamicSyncIsUnbounded)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId s = g.addSend(root, "ep", "m");
    Ordering ord(g);
    EXPECT_EQ(ord.gapLb(s, root), 0);
    EXPECT_GE(ord.gapUb(s, root), kGapInf);
    EXPECT_TRUE(ord.le(root, s));
    EXPECT_FALSE(ord.lt(root, s));
}

TEST(Ordering, BoundedSyncUsesMaxSync)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId s = g.addSend(root, "ep", "m");
    g.node(s).max_sync = 0;
    Ordering ord(g);
    EXPECT_EQ(ord.gapUb(s, root), 0);
}

TEST(Ordering, JoinTakesTheMax)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 1);
    EventId b = g.addDelay(root, 4);
    EventId j = g.addJoin({a, b});
    Ordering ord(g);
    EXPECT_EQ(ord.gapLb(j, root), 4);
    EXPECT_EQ(ord.gapUb(j, root), 4);
    // The join is no earlier than either input.
    EXPECT_TRUE(ord.le(a, j));
    EXPECT_TRUE(ord.le(b, j));
}

TEST(Ordering, JoinWithUnboundedInput)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 1);
    EventId s = g.addRecv(root, "ep", "m");
    EventId j = g.addJoin({a, s});
    Ordering ord(g);
    EXPECT_EQ(ord.gapLb(j, root), 1);
    EXPECT_GE(ord.gapUb(j, root), kGapInf);
    // Worst-case reasoning (paper §5.4): even if the sync takes zero
    // cycles, the join still happens at least one cycle after root.
    EXPECT_TRUE(ord.lt(root, j));
}

TEST(Ordering, MergeTakesWhicheverArmRan)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventId slow = g.addDelay(bt, 5);
    EventId fast = g.addDelay(bf, 1);
    EventId m = g.addMerge(slow, fast, root);
    Ordering ord(g);
    EXPECT_EQ(ord.gapLb(m, root), 1);
    EXPECT_EQ(ord.gapUb(m, root), 5);
    // From inside the slow arm, the merge is exactly its end.
    EXPECT_EQ(ord.gapLb(m, slow), 0);
    EXPECT_EQ(ord.gapUb(m, slow), 0);
}

TEST(Ordering, BranchContextsDetectExclusivity)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventId in_t = g.addDelay(bt, 1);
    EventId in_f = g.addDelay(bf, 1);
    Ordering ord(g);
    EXPECT_FALSE(ord.compatible(in_t, in_f));
    EXPECT_TRUE(ord.compatible(in_t, root));
    EXPECT_TRUE(ord.compatible(in_t, bt));
}

TEST(Ordering, JoinUnionsBranchContexts)
{
    EventGraph g;
    EventId root = g.addRoot();
    int c = g.freshCond();
    EventId bt = g.addBranch(root, c, true);
    EventId bf = g.addBranch(root, c, false);
    EventId other = g.addDelay(root, 1);
    EventId j = g.addJoin({bt, other});
    Ordering ord(g);
    // The join inherits the branch fact: incompatible with the other
    // arm.
    EXPECT_FALSE(ord.compatible(j, bf));
}

TEST(Ordering, SameMessageSyncsAreSeparated)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId s1 = g.addRecv(root, "ep", "m");
    EventId s2 = g.addRecv(s1, "ep", "m");
    Ordering ord(g);
    // Two handshakes of the same message cannot complete in the same
    // cycle.
    EXPECT_GE(ord.gapLb(s2, s1), 1);
    EXPECT_TRUE(ord.lt(s1, s2));
}

TEST(Ordering, PatternFixedComparisons)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 2);
    Ordering ord(g);
    EXPECT_TRUE(ord.patLe(EventPattern::fixed(root, 1),
                          EventPattern::fixed(a, 0)));
    EXPECT_TRUE(ord.patLe(EventPattern::fixed(a, 0),
                          EventPattern::fixed(root, 2)));
    EXPECT_FALSE(ord.patLe(EventPattern::fixed(a, 1),
                           EventPattern::fixed(root, 2)));
}

TEST(Ordering, MessagePatternMonotone)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId a = g.addDelay(root, 1);
    g.addRecv(a, "ep", "m");
    Ordering ord(g);
    // first m after root <= first m after a (monotone in the base).
    EXPECT_TRUE(ord.patLe(EventPattern::message(root, "ep", "m"),
                          EventPattern::message(a, "ep", "m")));
}

TEST(Ordering, MessagePatternBoundedByOccurrence)
{
    EventGraph g;
    EventId root = g.addRoot();
    EventId use = g.addDelay(root, 1);
    EventId s = g.addRecv(use, "ep", "m");
    EventId later = g.addDelay(s, 2);
    Ordering ord(g);
    // The first m after root is at most the concrete occurrence s,
    // which is at most `later` - 2.
    EXPECT_TRUE(ord.patLe(EventPattern::message(root, "ep", "m"),
                          EventPattern::fixed(later, 0)));
}

TEST(Ordering, EternalLifetimes)
{
    EventGraph g;
    EventId root = g.addRoot();
    Ordering ord(g);
    PatternSet forever = PatternSet::forever();
    PatternSet soon = PatternSet::one(EventPattern::fixed(root, 1));
    EXPECT_TRUE(ord.setLe(soon, forever));
    EXPECT_FALSE(ord.setLe(forever, soon));
    EXPECT_TRUE(ord.eventLeSet(root, forever));
    EXPECT_FALSE(ord.setLeEvent(forever, root));
}

// ---------------------------------------------------------------------
// Soundness property: claimed orderings hold on sampled timestamp
// functions (using the thread graphs of real designs).
// ---------------------------------------------------------------------

class OrderingSoundness : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OrderingSoundness, GapBoundsHoldOnSampledSchedules)
{
    DiagEngine d;
    Program prog = parseAnvil(GetParam(), d);
    ASSERT_FALSE(d.hasErrors()) << d.render();
    for (const auto &[name, proc] : prog.procs) {
        ProcIR pir = elaborateProc(prog, proc, d, 2);
        for (const auto &tir : pir.threads) {
            Ordering ord(tir->graph);
            auto events = tir->graph.liveEvents();
            // Subsample event pairs for speed.
            for (int s = 0; s < 20; s++) {
                sem::ScheduleSample sched =
                    sem::sampleSchedule(*tir, 1000 + s, 5);
                for (size_t i = 0; i < events.size(); i += 3) {
                    for (size_t j = 0; j < events.size(); j += 3) {
                        EventId a = events[i], b = events[j];
                        sem::Time ta = sched.at(a);
                        sem::Time tb = sched.at(b);
                        if (ta < 0 || tb < 0)
                            continue;  // unreached in this run
                        Gap lb = ord.gapLb(b, a);
                        Gap ub = ord.gapUb(b, a);
                        EXPECT_LE(lb, tb - ta)
                            << "e" << a << " -> e" << b << " seed "
                            << s;
                        EXPECT_GE(ub, tb - ta)
                            << "e" << a << " -> e" << b << " seed "
                            << s;
                    }
                }
            }
        }
    }
}

const char *kSimpleLoop = R"(
proc p() { reg r : logic[8];
    loop { set r := *r + 1 >> cycle 2 }
}
)";

const char *kBranchy = R"(
chan c { left a : (logic[8]@#1), right b : (logic[8]@#2) }
proc p(ep : left c) {
    reg r : logic[8];
    loop {
        let v = recv ep.a >>
        if v == 0 { set r := v >> cycle 3 } else { cycle 1 } >>
        send ep.b (*r) >>
        cycle 1
    }
}
)";

const char *kParallel = R"(
chan c { left a : (logic[8]@#1), left b : (logic[8]@#1) }
proc p(ep : left c) {
    reg r : logic[8];
    loop {
        { let x = recv ep.a >> set r := x };
        { let y = recv ep.b >> cycle 2 };
        cycle 1
    }
}
)";

INSTANTIATE_TEST_SUITE_P(Programs, OrderingSoundness,
                         ::testing::Values(kSimpleLoop, kBranchy,
                                           kParallel));

} // namespace
