#!/bin/sh
# Observability end-to-end, run by ctest (cli_obs_e2e) and CI:
#
#  1. run a seeded sim of each eval design with every telemetry sink
#     on (--metrics, --profile, --stats-json) and validate all three
#     JSON artifacts against the schemas under docs/schemas/ with the
#     in-tree json_validate tool,
#  2. rerun at the same seed: the metrics document minus its
#     "timers_ns" section, and the stats line minus its wall-clock
#     fields, must be byte-identical (canonical-form compare),
#  3. --slice extracts exactly one channel's signals into a
#     standalone VCD, and an unknown channel is a usage error,
#  4. the flight loop closes: a run with a deliberately violated
#     contract and --flight dumps a trigger window, the events
#     stream carries v2 window_dump records, --profile-hot's report
#     validates against hot.schema.json, and --check-trace on the
#     window VCD reproduces the violation (exit 1).
#
# Usage: cli_obs_e2e.sh <path-to-anvilc> <repo-root> <json_validate>
set -e
ANVILC="$1"
SRC="$2"
VALIDATE="$3"
SCHEMAS="$SRC/docs/schemas"

for design in quickstart listing2; do
    "$ANVILC" "$SRC/examples/$design.anvil" --sim 400 --seed 7 \
        --cov \
        --metrics "obs_$design.metrics.json" \
        --profile "obs_$design.trace.json" \
        --events "obs_$design.events" \
        --stats-json > "obs_$design.log"
    grep '^stats-json ' "obs_$design.log" | sed 's/^stats-json //' \
        > "obs_$design.stats.json"
    "$VALIDATE" "$SCHEMAS/metrics.schema.json" \
        "obs_$design.metrics.json"
    "$VALIDATE" "$SCHEMAS/profile.schema.json" \
        "obs_$design.trace.json"
    "$VALIDATE" "$SCHEMAS/stats.schema.json" \
        "obs_$design.stats.json"
    "$VALIDATE" --lines "$SCHEMAS/events.schema.json" \
        "obs_$design.events"
done
echo "telemetry artifacts validate against the checked-in schemas"

# --- Determinism at a fixed seed -----------------------------------------

# --events rides along on both runs: the stream-side plugins add
# their own metrics keys, so the pair must run the same stack.
"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 400 --seed 7 \
    --cov --metrics obs_rerun.metrics.json \
    --events obs_rerun.events --stats-json \
    > obs_rerun.log
grep '^stats-json ' obs_rerun.log | sed 's/^stats-json //' \
    > obs_rerun.stats.json

"$VALIDATE" --canon obs_quickstart.metrics.json --drop timers_ns \
    > obs_metrics_a.canon
"$VALIDATE" --canon obs_rerun.metrics.json --drop timers_ns \
    > obs_metrics_b.canon
cmp obs_metrics_a.canon obs_metrics_b.canon

"$VALIDATE" --canon obs_quickstart.stats.json \
    --drop wall_ns,cycles_per_sec > obs_stats_a.canon
"$VALIDATE" --canon obs_rerun.stats.json \
    --drop wall_ns,cycles_per_sec > obs_stats_b.canon
cmp obs_stats_a.canon obs_stats_b.canon
echo "metrics and stats are byte-stable at a fixed seed"

# --- Channel slicing -----------------------------------------------------

"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 200 --seed 7 \
    --slice io_pong --vcd obs_slice.vcd > /dev/null
test "$(grep -c '\$var' obs_slice.vcd)" -eq 3
if grep '\$var' obs_slice.vcd | grep -qv io_pong; then
    echo "slice leaked a foreign signal" >&2
    exit 1
fi
grep -q '\$dumpvars' obs_slice.vcd

set +e
"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 50 \
    --slice no_such_channel --vcd obs_bogus.vcd 2> obs_bogus.log
status=$?
set -e
test "$status" -eq 2
grep -q 'no signals for channel' obs_bogus.log
echo "slice dumps exactly one channel; unknown channels are rejected"

# --- Flight recorder loop ------------------------------------------------

# "ack within 1" is deliberately tighter than quickstart's server
# (which acks within 2), so the run violates and the recorder dumps.
rm -f obs_flight-*.vcd
set +e
"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 120 --seed 7 \
    --contract 'io_pong: ack within 1' \
    --flight 32 --flight-post 4 --dump-on VIOLATION \
    --flight-out obs_flight --events obs_flight.events \
    --profile-hot obs_hot.json > obs_flight.log 2>&1
status=$?
set -e
test "$status" -eq 1          # the live run itself reports FAIL
test -f obs_flight-0.vcd

# The stream is schema v2 and carries the dump references.
grep -q 'anvil-events-v2' obs_flight.events
grep -q '"e":"window_dump"' obs_flight.events
"$VALIDATE" --lines "$SCHEMAS/events.schema.json" obs_flight.events
"$VALIDATE" "$SCHEMAS/hot.schema.json" obs_hot.json

# The window dump is a plain VCD the offline checker consumes
# unmodified — and it reproduces the violation it was cut around.
set +e
"$ANVILC" "$SRC/examples/quickstart.anvil" \
    --check-trace obs_flight-0.vcd \
    --contract 'io_pong: ack within 1' > obs_flight_check.log
status=$?
set -e
test "$status" -eq 1
grep -q 'ack-within' obs_flight_check.log
echo "flight window dump reproduces the violation under check-trace"
