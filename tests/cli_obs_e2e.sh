#!/bin/sh
# Observability end-to-end, run by ctest (cli_obs_e2e) and CI:
#
#  1. run a seeded sim of each eval design with every telemetry sink
#     on (--metrics, --profile, --stats-json) and validate all three
#     JSON artifacts against the schemas under docs/schemas/ with the
#     in-tree json_validate tool,
#  2. rerun at the same seed: the metrics document minus its
#     "timers_ns" section, and the stats line minus its wall-clock
#     fields, must be byte-identical (canonical-form compare),
#  3. --slice extracts exactly one channel's signals into a
#     standalone VCD, and an unknown channel is a usage error.
#
# Usage: cli_obs_e2e.sh <path-to-anvilc> <repo-root> <json_validate>
set -e
ANVILC="$1"
SRC="$2"
VALIDATE="$3"
SCHEMAS="$SRC/docs/schemas"

for design in quickstart listing2; do
    "$ANVILC" "$SRC/examples/$design.anvil" --sim 400 --seed 7 \
        --cov \
        --metrics "obs_$design.metrics.json" \
        --profile "obs_$design.trace.json" \
        --events "obs_$design.events" \
        --stats-json > "obs_$design.log"
    grep '^stats-json ' "obs_$design.log" | sed 's/^stats-json //' \
        > "obs_$design.stats.json"
    "$VALIDATE" "$SCHEMAS/metrics.schema.json" \
        "obs_$design.metrics.json"
    "$VALIDATE" "$SCHEMAS/profile.schema.json" \
        "obs_$design.trace.json"
    "$VALIDATE" "$SCHEMAS/stats.schema.json" \
        "obs_$design.stats.json"
    "$VALIDATE" --lines "$SCHEMAS/events.schema.json" \
        "obs_$design.events"
done
echo "telemetry artifacts validate against the checked-in schemas"

# --- Determinism at a fixed seed -----------------------------------------

# --events rides along on both runs: the stream-side plugins add
# their own metrics keys, so the pair must run the same stack.
"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 400 --seed 7 \
    --cov --metrics obs_rerun.metrics.json \
    --events obs_rerun.events --stats-json \
    > obs_rerun.log
grep '^stats-json ' obs_rerun.log | sed 's/^stats-json //' \
    > obs_rerun.stats.json

"$VALIDATE" --canon obs_quickstart.metrics.json --drop timers_ns \
    > obs_metrics_a.canon
"$VALIDATE" --canon obs_rerun.metrics.json --drop timers_ns \
    > obs_metrics_b.canon
cmp obs_metrics_a.canon obs_metrics_b.canon

"$VALIDATE" --canon obs_quickstart.stats.json \
    --drop wall_ns,cycles_per_sec > obs_stats_a.canon
"$VALIDATE" --canon obs_rerun.stats.json \
    --drop wall_ns,cycles_per_sec > obs_stats_b.canon
cmp obs_stats_a.canon obs_stats_b.canon
echo "metrics and stats are byte-stable at a fixed seed"

# --- Channel slicing -----------------------------------------------------

"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 200 --seed 7 \
    --slice io_pong --vcd obs_slice.vcd > /dev/null
test "$(grep -c '\$var' obs_slice.vcd)" -eq 3
if grep '\$var' obs_slice.vcd | grep -qv io_pong; then
    echo "slice leaked a foreign signal" >&2
    exit 1
fi
grep -q '\$dumpvars' obs_slice.vcd

set +e
"$ANVILC" "$SRC/examples/quickstart.anvil" --sim 50 \
    --slice no_such_channel --vcd obs_bogus.vcd 2> obs_bogus.log
status=$?
set -e
test "$status" -eq 2
grep -q 'no signals for channel' obs_bogus.log
echo "slice dumps exactly one channel; unknown channels are rejected"
