/**
 * @file
 * Compiler-throughput microbenchmarks (google-benchmark): parsing,
 * elaboration + type checking, and full compilation of the evaluation
 * designs.  Supports the "fast, integrated feedback loop" claim of
 * §2.3 with concrete numbers.
 */

#include <benchmark/benchmark.h>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "ir/elaborate.h"
#include "lang/parser.h"
#include "types/checker.h"

using namespace anvil;

namespace {

void
BM_ParseFifo(benchmark::State &state)
{
    std::string src = designs::anvilFifoSource();
    for (auto _ : state) {
        DiagEngine d;
        benchmark::DoNotOptimize(parseAnvil(src, d));
    }
}
BENCHMARK(BM_ParseFifo);

void
BM_TypeCheckFifo(benchmark::State &state)
{
    std::string src = designs::anvilFifoSource();
    DiagEngine d;
    Program prog = parseAnvil(src, d);
    const ProcDef *p = prog.findProc("fifo");
    for (auto _ : state) {
        DiagEngine cd;
        ProcIR pir = elaborateProc(prog, *p, cd, 2);
        benchmark::DoNotOptimize(checkProc(pir, cd));
    }
}
BENCHMARK(BM_TypeCheckFifo);

void
BM_TypeCheckEncrypt(benchmark::State &state)
{
    std::string src = designs::anvilEncryptSource();
    DiagEngine d;
    Program prog = parseAnvil(src, d);
    const ProcDef *p = prog.findProc("encrypt");
    for (auto _ : state) {
        DiagEngine cd;
        ProcIR pir = elaborateProc(prog, *p, cd, 2);
        benchmark::DoNotOptimize(checkProc(pir, cd));
    }
}
BENCHMARK(BM_TypeCheckEncrypt);

void
BM_FullCompilePtw(benchmark::State &state)
{
    std::string src = designs::anvilPtwSource();
    for (auto _ : state)
        benchmark::DoNotOptimize(compileAnvil(src, {.top = "ptw"}));
}
BENCHMARK(BM_FullCompilePtw);

void
BM_FullCompileAes(benchmark::State &state)
{
    std::string src = designs::anvilAesSource();
    for (auto _ : state)
        benchmark::DoNotOptimize(compileAnvil(src, {.top = "aes"}));
}
BENCHMARK(BM_FullCompileAes);

} // namespace
