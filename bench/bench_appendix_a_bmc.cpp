/**
 * @file
 * Appendix A: language-based checking vs. bounded model checking on
 * Listing 1/2.  The stability violation is gated behind a 32-bit
 * counter (cnt > 0x100000), so explicit-state BMC exhausts any
 * realistic budget without finding it, while Anvil's type checker
 * rejects the design structurally in microseconds.
 */

#include <chrono>
#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "verif/bmc.h"

using namespace anvil;
using namespace anvil::rtl;
using namespace anvil::verif;

namespace {

std::shared_ptr<Module>
listing2Design(int cnt_bits, uint64_t threshold)
{
    auto m = std::make_shared<Module>();
    m->name = "example";
    auto cnt = m->reg("cnt", cnt_bits);
    m->update("cnt", cst(1, 1), cnt + cst(cnt_bits, 1));
    auto r = m->reg("r", 1);
    m->update("r", cst(1, 1), ~r);
    m->wire("gdata", binop(Op::Gt, cnt, cst(cnt_bits, threshold)));
    m->wire("sent", ref("r", 1) & ref("gdata", 1));
    auto prev = m->reg("prev", 1);
    m->update("prev", cst(1, 1), ref("sent", 1));
    return m;
}

double
ms(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0).count() / 1000.0;
}

} // namespace

int
main()
{
    printf("=== Appendix A: Anvil type check vs. bounded model "
           "checking ===\n\n");

    // The Anvil check on Listing 1.
    auto t0 = std::chrono::steady_clock::now();
    CompileOutput out = compileAnvil(designs::anvilListing1Source());
    double anvil_ms = ms(t0);
    printf("Anvil type check of Listing 1: %s in %.2f ms\n",
           out.ok ? "accepted (BUG)" : "REJECTED", anvil_ms);
    for (const auto &d : out.diags.all()) {
        if (d.severity == Severity::Error) {
            printf("  %s\n", out.diags.renderOne(d).c_str());
            break;
        }
    }

    printf("\nBMC on the Listing 2 RTL (stability assertion), depth "
           "sweep:\n");
    printf("%10s %12s %12s %10s %s\n", "cnt bits", "budget", "states",
           "time(ms)", "result");

    Assertion stable{"stable", ref("prev", 1) | cst(1, 1),
                     eq(ref("sent", 1), ref("prev", 1))};

    // Control: with a small counter the violation is reachable.
    for (int bits : {4, 6, 8}) {
        auto m = listing2Design(bits, (1ull << bits) / 2);
        Assertion a{"stable", cst(1, 1),
                    eq(ref("sent", 1), ref("prev", 1))};
        BmcOptions opts;
        opts.max_depth = 1 << 20;
        opts.max_states = 100000;
        auto t1 = std::chrono::steady_clock::now();
        BmcResult r = boundedModelCheck(m, {a}, opts);
        printf("%10d %12llu %12llu %10.1f %s\n", bits,
               (unsigned long long)opts.max_states,
               (unsigned long long)r.states_explored, ms(t1),
               r.statusStr().c_str());
    }

    // The paper's case: a 32-bit counter with threshold 0x100000.
    for (uint64_t budget : {20000ull, 100000ull, 400000ull}) {
        auto m = listing2Design(32, 0x100000);
        Assertion a{"stable", cst(1, 1),
                    eq(ref("sent", 1), ref("prev", 1))};
        BmcOptions opts;
        opts.max_depth = 1 << 24;
        opts.max_states = budget;
        auto t1 = std::chrono::steady_clock::now();
        BmcResult r = boundedModelCheck(m, {a}, opts);
        printf("%10d %12llu %12llu %10.1f %s\n", 32,
               (unsigned long long)budget,
               (unsigned long long)r.states_explored, ms(t1),
               r.statusStr().c_str());
    }

    printf("\n=> the violation needs ~2^20 sequential states; every "
           "budget is exhausted\n   without finding it, while the "
           "type checker rejected the design in %.2f ms.\n", anvil_ms);
    return 0;
}
