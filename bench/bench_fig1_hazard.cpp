/**
 * @file
 * Figure 1: the motivating timing hazard.  Top toggles `req` every
 * cycle and assumes the memory answers in one cycle; the memory takes
 * two.  The observed output stream skips half the addresses, exactly
 * as in the paper's waveform.
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"
#include "rtl/wave.h"

using namespace anvil;

int
main()
{
    printf("=== Figure 1: timing hazard (Top + 2-cycle memory) ===\n\n");

    auto top = designs::buildHazardDemoSystem();
    rtl::Sim sim(top);
    rtl::WaveRecorder wave(sim,
                           {"req", "addr", "observed", "sampling"});

    std::vector<uint64_t> observed;
    std::vector<uint64_t> expected;
    uint64_t next_addr = 0;
    for (int cyc = 0; cyc < 20; cyc++) {
        wave.sample();
        bool req = sim.peek("req").any();
        bool sampling = sim.peek("sampling").any();
        if (req)
            expected.push_back((next_addr++) + 0x10);
        if (sampling && cyc >= 2)
            observed.push_back(sim.peek("observed").toUint64());
        sim.step();
    }

    printf("%s\n", wave.render().c_str());

    printf("expected output sequence: ");
    for (size_t i = 0; i < 8 && i < expected.size(); i++)
        printf("Val%02llx ", (unsigned long long)expected[i]);
    printf("\nobserved output sequence: ");
    for (size_t i = 0; i < 8 && i < observed.size(); i++)
        printf("Val%02llx ", (unsigned long long)observed[i]);
    printf("\n\n");

    int matched = 0;
    std::vector<uint64_t> distinct;
    for (uint64_t v : observed)
        if (distinct.empty() || distinct.back() != v)
            distinct.push_back(v);
    for (size_t i = 0; i < distinct.size() && i < expected.size(); i++)
        if (distinct[i] == expected[i])
            matched++;

    printf("distinct values observed: %zu of %zu requested "
           "(the paper: only half the addresses are dereferenced)\n",
           distinct.size(), expected.size());

    printf("\n--- The same client in Anvil is rejected at compile "
           "time ---\n");
    CompileOutput out = compileAnvil(designs::anvilTopUnsafeSource());
    printf("%s\n", out.diags.render().c_str());
    printf("verdict: %s\n", out.ok ? "accepted (BUG)" : "rejected");
    return 0;
}
