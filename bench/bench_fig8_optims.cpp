/**
 * @file
 * Figure 8 ablation: event-graph sizes before/after the optimization
 * passes, per pass, for every Anvil design in the repository.
 */

#include <cstdio>

#include "ir/elaborate.h"
#include "ir/optimize.h"
#include "lang/parser.h"
#include "designs/designs.h"

using namespace anvil;

namespace {

void
row(const char *name, const std::string &source)
{
    DiagEngine diags;
    Program prog = parseAnvil(source, diags);
    if (diags.hasErrors()) {
        printf("%-14s  (parse error)\n", name);
        return;
    }
    int before = 0, after = 0;
    std::map<std::string, int> merged{{"a", 0}, {"b", 0}, {"c", 0},
                                      {"d", 0}};
    for (const auto &[pname, proc] : prog.procs) {
        ProcIR pir = elaborateProc(prog, proc, diags, 1);
        for (auto &t : pir.threads) {
            OptStats s = optimizeEventGraph(t->graph);
            before += s.before;
            after += s.after;
            for (const auto &[k, v] : s.merged_by_pass)
                merged[k] += v;
        }
    }
    printf("%-14s %8d %8d %8.1f%%   %5d %5d %5d %5d\n", name, before,
           after, 100.0 * (before - after) / std::max(before, 1),
           merged["a"], merged["b"], merged["c"], merged["d"]);
}

} // namespace

int
main()
{
    using namespace designs;
    printf("=== Figure 8: event-graph optimization ablation ===\n\n");
    printf("%-14s %8s %8s %9s   %5s %5s %5s %5s\n", "design", "events",
           "after", "removed", "(a)", "(b)", "(c)", "(d)");
    row("fifo", anvilFifoSource());
    row("spill_reg", anvilSpillRegSource());
    row("stream_fifo", anvilStreamFifoSource());
    row("tlb", anvilTlbSource());
    row("ptw", anvilPtwSource());
    row("aes", anvilAesSource());
    row("axi_demux", anvilAxiDemuxSource());
    row("axi_mux", anvilAxiMuxSource());
    row("alu", anvilPipelinedAluSource());
    row("systolic", anvilSystolicSource());
    printf("\npasses: (a) merge identical edges, (b) remove unbalanced"
           " joins,\n        (c) shift branch joins, (d) remove empty "
           "branch joins\n");
    return 0;
}
