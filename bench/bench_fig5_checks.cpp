/**
 * @file
 * Figure 5: Anvil's compile-time derivation for the unsafe Top
 * against a static memory contract and the safe Top against the
 * dynamic cache contract.  Prints the derived checks ("Checks at
 * Compile Time") and the final SAFE/UNSAFE decision.
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"

using namespace anvil;

namespace {

void
show(const char *title, const std::string &source,
     const std::string &proc)
{
    printf("--- %s ---\n", title);
    CompileOutput out = compileAnvil(source);
    auto it = out.checks.find(proc);
    if (it != out.checks.end()) {
        printf("Timing contract checks:\n%s",
               it->second.traceStr().c_str());
    }
    if (!out.ok) {
        printf("\nCompiler output:\n%s", out.diags.render().c_str());
    }
    printf("\n");
}

} // namespace

int
main()
{
    printf("=== Figure 5: checking Top against the memory "
           "contracts ===\n\n");
    printf("Unsafe description (memory without cache):\n");
    printf("  contract: address [req, req+2), data [res, res+1)\n\n");
    show("Top_Unsafe", designs::anvilTopUnsafeSource(), "top_unsafe");

    printf("Safe description (memory with cache):\n");
    printf("  contract: address [req, req->res), "
           "data [res, res->res+1)\n\n");
    show("Top_Safe", designs::anvilTopSafeSource(), "top_safe");
    return 0;
}
