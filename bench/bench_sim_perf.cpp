/**
 * @file
 * Simulation-core throughput benchmark: cycles/second of the compiled
 * netlist simulator (rtl::Sim) in every sweep mode — dense full
 * sweep, event-driven dirty sweep, threaded dirty sweep at 2 and 4
 * workers, and the JIT-compiled C++ kernel backend — versus the
 * reference interpreter (rtl::RefSim).
 *
 * Workloads: the dense evaluation designs of Table 1 (MMU, AXI
 * routers, AES round core, compiled Anvil encrypt) under saturating
 * stimulus, plus the large low-activity workloads the dirty sweep is
 * built for: N-master/M-slave AXI crossbars composed from the demux
 * and mux baselines, and a K-way set-associative TLB, both driven by
 * the seeded traffic generators shared with the sweep-mode
 * differential tests (tests/sim_workloads.h).
 *
 * Build & run:  ./build/bench_sim_perf [--cycles N] [out.json]
 *                   [--farm-json farm.json] [--compiled-floor R]
 *
 * Prints a table and emits a JSON record matching BENCH_sim.json
 * (fields: ref, netlist = full sweep, dirty, threads.{2,4}, compiled
 * — 0 when no system compiler is present — observers = dirty sweep
 * with the VCD + coverage + contract feed attached, flight = dirty
 * sweep with only the armed flight recorder attached, speedup =
 * netlist/ref, dirty_vs_full, compiled_vs_dirty, observers_vs_dirty,
 * flight_vs_dirty, observer_breakdown = per-observer retained
 * throughput {vcd, coverage, contracts, flight} so the observer cost
 * is attributable to a specific plugin, activity_pct,
 * jit_compile_ms + jit_source_bytes = the kernel's
 * cold compile cost).  With a file argument
 * the JSON is written there; `--cycles N` caps every measurement at
 * N cycles (the CI smoke configuration, which exercises all sweep
 * modes); `--compiled-floor R` exits nonzero when compiled_vs_dirty
 * drops below R on any crossbar workload; `--flight-floor R` exits
 * nonzero when flight_vs_dirty drops below R on any low-activity
 * workload (the always-on recorder must stay cheap exactly where
 * long farm runs live).  See docs/benchmarks.md.
 *
 * A second section measures the in-process farm fan-out
 * (run::runFarm, the engine behind `anvilc --farm N`): aggregate
 * cycles/second across N = 1, 2, 4 workers sharing one immutable
 * netlist, full regression stack on (coverage + activity envelope +
 * event streams into the merger).  `--farm-json <f>` records it as
 * BENCH_farm.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "anvil/sim_runner.h"
#include "codegen/jit.h"
#include "designs/designs.h"
#include "obs/flight.h"
#include "obs/merge.h"
#include "obs/observer.h"
#include "rtl/interp.h"
#include "rtl/ref_interp.h"
#include "rtl/vcd.h"
#include "sim_workloads.h"
#include "tb/coverage.h"
#include "trace/contracts.h"

using namespace anvil;

namespace {

/** The repaired Fig. 6 Encrypt (the paper's version does not compile). */
const char *kEncryptFixedSource = R"(
chan encrypt_ch {
    left enc_req : (logic[8]@enc_res),
    right enc_res : (logic[8]@enc_req)
}
chan rng_ch {
    left rng_req : (logic[8]@#1),
    right rng_res : (logic[8]@#2)
}

proc encrypt(ch1 : left encrypt_ch, ch2 : left rng_ch) {
    reg noise_q : logic[8];
    reg rd1_ctext : logic[8];
    reg r2_key : logic[8];
    loop {
        let ptext = recv ch1.enc_req;
        let nq = { let noise = recv ch2.rng_req >>
                   set noise_q := noise };
        let r1_key = 25;
        ptext >> nq >>
        if ptext != 0 {
            set rd1_ctext := (ptext ^ r1_key) + *noise_q
        } else {
            set rd1_ctext := ptext
        };
        cycle 1 >>
        set r2_key := r1_key ^ *noise_q >>
        send ch2.rng_res (*r2_key) >>
        cycle 2 >>
        send ch1.enc_res (*rd1_ctext ^ *r2_key) >>
        cycle 1
    }
}
)";

/** Factory for a fresh per-run stimulus stream. */
using StimFactory =
    std::function<std::function<anvil::testing::InputFrame()>()>;

/** Saturating stimulus: every input driven to 1 once, then held. */
StimFactory
allOnesStim(const rtl::ModulePtr &mod)
{
    // Top-level inputs straight off the module's port list — no
    // throwaway compiled simulator just to learn the names.
    auto names = std::make_shared<std::vector<std::string>>();
    for (const auto &p : mod->ports)
        if (p.is_input)
            names->push_back(p.name);
    return [names]() {
        auto first = std::make_shared<bool>(true);
        return [names, first]() {
            anvil::testing::InputFrame f;
            if (*first) {
                *first = false;
                for (const auto &n : *names)
                    f.emplace_back(n, 1);
            }
            return f;
        };
    };
}

StimFactory
xbarStim(int n_masters, int n_slaves, uint64_t seed)
{
    return [n_masters, n_slaves, seed]() {
        auto s = std::make_shared<anvil::testing::XbarStimulus>(
            n_masters, n_slaves, seed);
        return [s]() { return s->next(); };
    };
}

StimFactory
tlbStim(uint64_t seed)
{
    return [seed]() {
        auto s =
            std::make_shared<anvil::testing::TlbStimulus>(seed);
        return [s]() { return s->next(); };
    };
}

/**
 * Best-of-`reps` throughput: repeated timing windows over one live
 * simulation, keeping the fastest (least noisy) window.  The
 * stimulus stream runs continuously across windows.  Nine windows by
 * default: the reference container's steal bursts are long enough to
 * poison whole windows, and three proved too few to reliably get a
 * clean one for every cell of a full run.
 */
template <typename SimT>
double
timedRun(SimT &sim, int cycles, const StimFactory &make_stim,
         int reps = 9)
{
    auto stim = make_stim();
    // Warm up one cycle: first-sweep (dense) cost, toggle priming.
    for (const auto &[n, v] : stim())
        sim.setInput(n, v);
    sim.step(1);
    double best = 0;
    for (int rep = 0; rep < reps; rep++) {
        auto t0 = std::chrono::steady_clock::now();
        for (int c = 0; c < cycles; c++) {
            for (const auto &[n, v] : stim())
                sim.setInput(n, v);
            sim.step(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        best = std::max(best, static_cast<double>(cycles) / s);
    }
    return best;
}

/** Discards every byte written (the VCD sink for the observer row). */
class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return c; }
    std::streamsize xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

/** One priced observer stack: attaches to the sim/null sink and
 *  hands ownership back so the feed outlives the timing loop. */
using ObserverList = std::vector<std::unique_ptr<obs::Observer>>;
using ObserverSetup =
    std::function<ObserverList(rtl::Sim &, std::ostream &)>;

ObserverList
vcdOnly(rtl::Sim &sim, std::ostream &null_os)
{
    ObserverList v;
    v.push_back(std::make_unique<rtl::VcdWriter>(
        sim, null_os, std::vector<std::string>{}));
    return v;
}

ObserverList
coverageOnly(rtl::Sim &, std::ostream &)
{
    ObserverList v;
    v.push_back(std::make_unique<tb::Coverage>());
    return v;
}

ObserverList
contractsOnly(rtl::Sim &sim, std::ostream &)
{
    ObserverList v;
    v.push_back(std::make_unique<trace::ContractMonitor>(
        trace::inferContracts(sim.netlist()), sim));
    return v;
}

/** An armed recorder that never dumps: the priced cost is the pure
 *  per-cycle ring capture + trigger poll of `anvilc --flight`. */
ObserverList
flightOnly(rtl::Sim &sim, std::ostream &)
{
    ObserverList v;
    auto rec = std::make_unique<obs::FlightRecorder>(sim);
    rec->addTrigger("never", [] { return uint64_t(0); });
    v.push_back(std::move(rec));
    return v;
}

/** The pre-existing `observers` column: VCD + coverage + contracts. */
ObserverList
fullStack(rtl::Sim &sim, std::ostream &null_os)
{
    ObserverList v = vcdOnly(sim, null_os);
    for (auto &o : coverageOnly(sim, null_os))
        v.push_back(std::move(o));
    for (auto &o : contractsOnly(sim, null_os))
        v.push_back(std::move(o));
    return v;
}

/**
 * Dirty sweep with an observer stack riding the change feed —
 * sampled once per cycle like Testbench::run does.  The columns
 * price what "observability on" costs over a bare sweep, one stack
 * (or single observer) at a time.
 */
double
timedRunObserved(rtl::Sim &sim, int cycles,
                 const StimFactory &make_stim,
                 const ObserverSetup &setup, int reps = 9)
{
    NullBuf null_buf;
    std::ostream null_os(&null_buf);
    obs::ChangeFeed feed(sim);
    ObserverList owned = setup(sim, null_os);
    for (auto &o : owned)
        feed.attach(*o);

    auto stim = make_stim();
    for (const auto &[n, v] : stim())
        sim.setInput(n, v);
    feed.sample();
    sim.step(1);
    double best = 0;
    for (int rep = 0; rep < reps; rep++) {
        auto t0 = std::chrono::steady_clock::now();
        for (int c = 0; c < cycles; c++) {
            for (const auto &[n, v] : stim())
                sim.setInput(n, v);
            feed.sample();
            sim.step(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        best = std::max(best, static_cast<double>(cycles) / s);
    }
    return best;
}

struct Row
{
    std::string name;
    double ref = 0;          // reference interpreter
    double full = 0;         // dense sweep ("netlist" in the JSON)
    double dirty = 0;        // event-driven sweep
    double t2 = 0, t4 = 0;   // threaded sweep, 2 / 4 workers
    double compiled = 0;     // JIT C++ kernel (0 = no compiler)
    double observers = 0;    // dirty + VCD/coverage/contract feed
    double obs_vcd = 0;      // dirty + VCD writer only
    double obs_cov = 0;      // dirty + coverage only
    double obs_con = 0;      // dirty + contract monitor only
    double flight = 0;       // dirty + armed flight recorder only
    double activity_pct = 0; // strict nodes evaluated / total, dirty
    double jit_ms = 0;       // kernel compile wall time (cold)
    uint64_t jit_src_bytes = 0;   // emitted translation-unit size
};

Row
runDesign(const std::string &name, const rtl::ModulePtr &mod,
          int sim_cycles, int ref_cycles, const StimFactory &stim)
{
    Row r;
    r.name = name;
    {
        rtl::Sim sim(mod);
        sim.setSweepMode(rtl::SweepMode::Full);
        r.full = timedRun(sim, sim_cycles, stim);
    }
    {
        rtl::Sim sim(mod);
        sim.setSweepMode(rtl::SweepMode::Dirty);
        r.dirty = timedRun(sim, sim_cycles, stim);
        const rtl::SweepStats &st = sim.sweepStats();
        r.activity_pct = st.cycles && st.strict_nodes
            ? 100.0 * st.avgNodes() /
                static_cast<double>(st.strict_nodes)
            : 0.0;
    }
    auto observed = [&](const ObserverSetup &setup) {
        rtl::Sim sim(mod);
        sim.setSweepMode(rtl::SweepMode::Dirty);
        return timedRunObserved(sim, sim_cycles, stim, setup);
    };
    r.observers = observed(fullStack);
    r.obs_vcd = observed(vcdOnly);
    r.obs_cov = observed(coverageOnly);
    r.obs_con = observed(contractsOnly);
    r.flight = observed(flightOnly);
    for (int threads : {2, 4}) {
        rtl::Sim sim(mod);
        sim.setSweepMode(rtl::SweepMode::Threaded, threads);
        double v = timedRun(sim, sim_cycles, stim);
        (threads == 2 ? r.t2 : r.t4) = v;
    }
    if (!codegen::jitCompilerPath().empty()) {
        rtl::Sim sim(mod);
        sim.setSweepMode(rtl::SweepMode::Dirty);
        codegen::JitResult jr =
            codegen::jitCompileKernel(sim.netlist());
        if (jr.kernel &&
            sim.attachKernel(codegen::kernelRef(jr.kernel))) {
            r.compiled = timedRun(sim, sim_cycles, stim);
            r.jit_ms = static_cast<double>(jr.compile_ns) / 1e6;
            r.jit_src_bytes = jr.source_bytes;
        } else {
            fprintf(stderr, "%s: compiled backend unavailable (%s)\n",
                    name.c_str(), jr.error.c_str());
        }
    }
    {
        rtl::RefSim sim(mod);
        r.ref = timedRun(sim, ref_cycles, stim, 2);
    }
    return r;
}

/** One design's farm fan-out scaling: aggregate cycles/second. */
struct FarmRow
{
    std::string name;
    int cycles_per_worker = 0;
    double cps1 = 0, cps2 = 0, cps4 = 0;   // N = 1, 2, 4 workers
};

/**
 * Best-of-`reps` aggregate throughput of run::runFarm at N workers:
 * the whole regression stack (random testbench, coverage, rolling
 * activity, event streams folded by the merger), one shared netlist.
 */
double
timedFarm(const rtl::ModulePtr &mod, int workers, int cycles,
          int reps = 2)
{
    double best = 0;
    for (int rep = 0; rep < reps; rep++) {
        run::FarmConfig fc;
        fc.top = mod;
        fc.workers = workers;
        fc.seed_base = 1;
        fc.cycles = static_cast<uint64_t>(cycles);
        fc.coverage = true;
        obs::Merger merger;
        run::FarmResult fr = run::runFarm(fc, merger);
        obs::Merger::Totals t = merger.totals();
        if (fr.wall_ns)
            best = std::max(best,
                            static_cast<double>(t.cycles) * 1e9 /
                                static_cast<double>(fr.wall_ns));
    }
    return best;
}

FarmRow
runFarmDesign(const std::string &name, const rtl::ModulePtr &mod,
              int cycles)
{
    FarmRow fr;
    fr.name = name;
    fr.cycles_per_worker = cycles;
    fr.cps1 = timedFarm(mod, 1, cycles);
    fr.cps2 = timedFarm(mod, 2, cycles);
    fr.cps4 = timedFarm(mod, 4, cycles);
    return fr;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path, farm_path;
    long cap = 0;
    double compiled_floor = 0, flight_floor = 0;
    for (int i = 1; i < argc; i++) {
        if (!strcmp(argv[i], "--cycles") && i + 1 < argc) {
            cap = atol(argv[++i]);
            if (cap <= 0) {
                fprintf(stderr, "bad --cycles\n");
                return 2;
            }
        } else if (!strcmp(argv[i], "--farm-json") && i + 1 < argc) {
            farm_path = argv[++i];
        } else if (!strcmp(argv[i], "--compiled-floor") &&
                   i + 1 < argc) {
            // Regression gate: fail when compiled/dirty drops below
            // this ratio on any crossbar workload (CI smoke).
            compiled_floor = atof(argv[++i]);
            if (compiled_floor <= 0) {
                fprintf(stderr, "bad --compiled-floor\n");
                return 2;
            }
        } else if (!strcmp(argv[i], "--flight-floor") &&
                   i + 1 < argc) {
            // Regression gate: fail when flight/dirty drops below
            // this ratio on any low-activity workload — the armed
            // recorder rides every long farm run, so its per-cycle
            // capture must stay near-free there.
            flight_floor = atof(argv[++i]);
            if (flight_floor <= 0) {
                fprintf(stderr, "bad --flight-floor\n");
                return 2;
            }
        } else {
            out_path = argv[i];
        }
    }
    auto cycles = [cap](int dflt) {
        return cap > 0 && cap < dflt ? static_cast<int>(cap) : dflt;
    };

    printf("=== Simulation core throughput "
           "(sweep modes vs reference interpreter) ===\n\n");

    CompileOutput enc = compileAnvil(kEncryptFixedSource);
    if (!enc.ok) {
        fprintf(stderr, "encrypt design failed to compile:\n%s\n",
                enc.diags.render().c_str());
        return 1;
    }

    std::vector<Row> rows;
    auto dense = [&](const std::string &name,
                     const rtl::ModulePtr &mod, int sc, int rc) {
        rows.push_back(runDesign(name, mod, cycles(sc), cycles(rc),
                                 allOnesStim(mod)));
    };
    dense("mmu_tlb", designs::buildTlbBaseline(), 200000, 20000);
    dense("mmu_ptw", designs::buildPtwBaseline(), 200000, 20000);
    dense("axi_demux", designs::buildAxiDemuxBaseline(), 100000,
          8000);
    dense("axi_mux", designs::buildAxiMuxBaseline(), 50000, 4000);
    dense("aes", designs::buildAesBaseline(), 50000, 5000);
    dense("encrypt_anvil", enc.module("encrypt"), 200000, 20000);

    // Large low-activity workloads (the dirty-sweep target case).
    rows.push_back(runDesign("axi_xbar_4x4",
                             designs::buildAxiXbarBaseline(4, 4),
                             cycles(40000), cycles(2000),
                             xbarStim(4, 4, 2026)));
    rows.push_back(runDesign("axi_xbar_8x8",
                             designs::buildAxiXbarBaseline(8, 8),
                             cycles(20000), cycles(600),
                             xbarStim(8, 8, 2027)));
    rows.push_back(runDesign("tlb_4w64s",
                             designs::buildSetAssocTlbBaseline(4, 64),
                             cycles(40000), cycles(2000),
                             tlbStim(4242)));

    printf("%-14s %11s %11s %11s %10s %10s %11s %10s %7s %7s %6s\n",
           "design", "ref cyc/s", "full cyc/s", "dirty", "thr2",
           "thr4", "compiled", "observers", "dirty/f", "cmp/d",
           "act%");
    for (const auto &r : rows)
        printf("%-14s %11.0f %11.0f %11.0f %10.0f %10.0f %11.0f "
               "%10.0f %6.2fx %6.2fx %5.1f%%\n",
               r.name.c_str(), r.ref, r.full, r.dirty, r.t2, r.t4,
               r.compiled, r.observers, r.dirty / r.full,
               r.dirty > 0 ? r.compiled / r.dirty : 0.0,
               r.activity_pct);

    // Attribute the observer cost: retained throughput vs the bare
    // dirty sweep, one plugin at a time (1.00 = free, 0.50 = 2x).
    printf("\n=== Observer overhead breakdown "
           "(retained throughput vs bare dirty sweep) ===\n\n");
    printf("%-14s %7s %9s %10s %7s %7s\n", "design", "vcd",
           "coverage", "contracts", "flight", "all");
    auto ratio = [](double v, double dirty) {
        return dirty > 0 ? v / dirty : 0.0;
    };
    for (const auto &r : rows)
        printf("%-14s %6.2fx %8.2fx %9.2fx %6.2fx %6.2fx\n",
               r.name.c_str(), ratio(r.obs_vcd, r.dirty),
               ratio(r.obs_cov, r.dirty), ratio(r.obs_con, r.dirty),
               ratio(r.flight, r.dirty),
               ratio(r.observers, r.dirty));

    std::string json = "{\n  \"bench\": \"sim_perf\",\n"
        "  \"unit\": \"cycles_per_second\",\n  \"designs\": [\n";
    for (size_t i = 0; i < rows.size(); i++) {
        char buf[1536];
        snprintf(buf, sizeof buf,
                 "    {\"name\": \"%s\", \"ref\": %.0f, "
                 "\"netlist\": %.0f, \"dirty\": %.0f, "
                 "\"threads\": {\"2\": %.0f, \"4\": %.0f}, "
                 "\"compiled\": %.0f, \"observers\": %.0f, "
                 "\"flight\": %.0f, "
                 "\"speedup\": %.2f, \"dirty_vs_full\": %.2f, "
                 "\"compiled_vs_dirty\": %.2f, "
                 "\"observers_vs_dirty\": %.2f, "
                 "\"flight_vs_dirty\": %.2f, "
                 "\"observer_breakdown\": {\"vcd\": %.2f, "
                 "\"coverage\": %.2f, \"contracts\": %.2f, "
                 "\"flight\": %.2f}, "
                 "\"activity_pct\": %.1f, "
                 "\"jit_compile_ms\": %.1f, "
                 "\"jit_source_bytes\": %llu}%s\n",
                 rows[i].name.c_str(), rows[i].ref, rows[i].full,
                 rows[i].dirty, rows[i].t2, rows[i].t4,
                 rows[i].compiled, rows[i].observers,
                 rows[i].flight,
                 rows[i].full / rows[i].ref,
                 rows[i].dirty / rows[i].full,
                 rows[i].dirty > 0
                     ? rows[i].compiled / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].observers / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].flight / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].obs_vcd / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].obs_cov / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].obs_con / rows[i].dirty : 0.0,
                 rows[i].dirty > 0
                     ? rows[i].flight / rows[i].dirty : 0.0,
                 rows[i].activity_pct,
                 rows[i].jit_ms,
                 (unsigned long long)rows[i].jit_src_bytes,
                 i + 1 < rows.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    if (!out_path.empty()) {
        FILE *f = fopen(out_path.c_str(), "w");
        if (!f) {
            fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        fputs(json.c_str(), f);
        fclose(f);
        printf("\nwrote %s\n", out_path.c_str());
    } else {
        printf("\n%s", json.c_str());
    }

    // The worklist kernel exists to win exactly these rows; a silent
    // slide back under the interpreter's dirty sweep is a regression
    // CI must catch even when correctness still holds.
    bool floor_failed = false;
    if (compiled_floor > 0)
        for (const auto &r : rows) {
            if (r.name.find("xbar") == std::string::npos)
                continue;
            if (r.compiled <= 0 || r.dirty <= 0)
                continue;   // no compiler: nothing to gate
            double ratio = r.compiled / r.dirty;
            if (ratio < compiled_floor) {
                fprintf(stderr,
                        "FAIL %s: compiled_vs_dirty %.2f < floor "
                        "%.2f\n",
                        r.name.c_str(), ratio, compiled_floor);
                floor_failed = true;
            }
        }

    // The always-on recorder must stay near-free on the low-activity
    // workloads where long farm runs (its reason to exist) live.
    if (flight_floor > 0)
        for (const auto &r : rows) {
            bool low_activity =
                r.name.find("xbar") != std::string::npos ||
                r.name == "tlb_4w64s";
            if (!low_activity || r.dirty <= 0 || r.flight <= 0)
                continue;
            double ratio = r.flight / r.dirty;
            if (ratio < flight_floor) {
                fprintf(stderr,
                        "FAIL %s: flight_vs_dirty %.2f < floor "
                        "%.2f\n",
                        r.name.c_str(), ratio, flight_floor);
                floor_failed = true;
            }
        }

    // --- Farm fan-out scaling (anvilc --farm N) ----------------------

    printf("\n=== Farm fan-out "
           "(aggregate cycles/s, full regression stack) ===\n\n");
    std::vector<FarmRow> farm_rows;
    farm_rows.push_back(runFarmDesign("encrypt_anvil",
                                      enc.module("encrypt"),
                                      cycles(50000)));
    farm_rows.push_back(
        runFarmDesign("axi_xbar_4x4",
                      designs::buildAxiXbarBaseline(4, 4),
                      cycles(20000)));
    farm_rows.push_back(
        runFarmDesign("tlb_4w64s",
                      designs::buildSetAssocTlbBaseline(4, 64),
                      cycles(20000)));

    printf("%-14s %9s %12s %12s %12s %7s %7s\n", "design",
           "cyc/wkr", "N=1 agg/s", "N=2 agg/s", "N=4 agg/s",
           "x2", "x4");
    for (const auto &fr : farm_rows)
        printf("%-14s %9d %12.0f %12.0f %12.0f %6.2fx %6.2fx\n",
               fr.name.c_str(), fr.cycles_per_worker, fr.cps1,
               fr.cps2, fr.cps4,
               fr.cps1 > 0 ? fr.cps2 / fr.cps1 : 0.0,
               fr.cps1 > 0 ? fr.cps4 / fr.cps1 : 0.0);

    std::string farm_json =
        "{\n  \"bench\": \"farm_scale\",\n"
        "  \"unit\": \"aggregate_cycles_per_second\",\n"
        "  \"designs\": [\n";
    for (size_t i = 0; i < farm_rows.size(); i++) {
        const FarmRow &fr = farm_rows[i];
        char buf[512];
        snprintf(buf, sizeof buf,
                 "    {\"name\": \"%s\", "
                 "\"cycles_per_worker\": %d, "
                 "\"workers\": {\"1\": %.0f, \"2\": %.0f, "
                 "\"4\": %.0f}, "
                 "\"scale_2\": %.2f, \"scale_4\": %.2f}%s\n",
                 fr.name.c_str(), fr.cycles_per_worker, fr.cps1,
                 fr.cps2, fr.cps4,
                 fr.cps1 > 0 ? fr.cps2 / fr.cps1 : 0.0,
                 fr.cps1 > 0 ? fr.cps4 / fr.cps1 : 0.0,
                 i + 1 < farm_rows.size() ? "," : "");
        farm_json += buf;
    }
    farm_json += "  ]\n}\n";

    if (!farm_path.empty()) {
        FILE *f = fopen(farm_path.c_str(), "w");
        if (!f) {
            fprintf(stderr, "cannot write %s\n", farm_path.c_str());
            return 1;
        }
        fputs(farm_json.c_str(), f);
        fclose(f);
        printf("\nwrote %s\n", farm_path.c_str());
    } else {
        printf("\n%s", farm_json.c_str());
    }
    return floor_failed ? 1 : 0;
}
