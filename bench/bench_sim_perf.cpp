/**
 * @file
 * Simulation-core throughput benchmark: cycles/second of the compiled
 * netlist simulator (rtl::Sim) versus the reference interpreter
 * (rtl::RefSim) on the MMU (TLB + PTW), AXI (demux + mux), and
 * encrypt (AES round core + compiled Anvil encrypt) designs.
 *
 * Build & run:  ./build/bench_sim_perf [out.json]
 *
 * Prints a table and emits a JSON record; with an argument the JSON
 * is written to that file (BENCH_sim.json at the repo root holds the
 * recorded baseline).  See docs/benchmarks.md.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"
#include "rtl/ref_interp.h"

using namespace anvil;

namespace {

/** The repaired Fig. 6 Encrypt (the paper's version does not compile). */
const char *kEncryptFixedSource = R"(
chan encrypt_ch {
    left enc_req : (logic[8]@enc_res),
    right enc_res : (logic[8]@enc_req)
}
chan rng_ch {
    left rng_req : (logic[8]@#1),
    right rng_res : (logic[8]@#2)
}

proc encrypt(ch1 : left encrypt_ch, ch2 : left rng_ch) {
    reg noise_q : logic[8];
    reg rd1_ctext : logic[8];
    reg r2_key : logic[8];
    loop {
        let ptext = recv ch1.enc_req;
        let nq = { let noise = recv ch2.rng_req >>
                   set noise_q := noise };
        let r1_key = 25;
        ptext >> nq >>
        if ptext != 0 {
            set rd1_ctext := (ptext ^ r1_key) + *noise_q
        } else {
            set rd1_ctext := ptext
        };
        cycle 1 >>
        set r2_key := r1_key ^ *noise_q >>
        send ch2.rng_res (*r2_key) >>
        cycle 2 >>
        send ch1.enc_res (*rd1_ctext ^ *r2_key) >>
        cycle 1
    }
}
)";

template <typename SimT>
double
cyclesPerSec(const rtl::ModulePtr &mod, int cycles)
{
    SimT sim(mod);
    // Drive every input active so the state machines actually move.
    for (const auto &in : sim.inputNames())
        sim.setInput(in, 1);
    sim.step(1);   // warm up (first-cycle toggle priming, caches)
    auto t0 = std::chrono::steady_clock::now();
    sim.step(cycles);
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(cycles) / s;
}

struct Row
{
    std::string name;
    double ref = 0;      // reference interpreter, cycles/s
    double sim = 0;      // compiled netlist core, cycles/s
};

Row
runDesign(const std::string &name, const rtl::ModulePtr &mod,
          int sim_cycles, int ref_cycles)
{
    Row r;
    r.name = name;
    r.sim = cyclesPerSec<rtl::Sim>(mod, sim_cycles);
    r.ref = cyclesPerSec<rtl::RefSim>(mod, ref_cycles);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    printf("=== Simulation core throughput "
           "(compiled netlist vs reference interpreter) ===\n\n");

    CompileOutput enc = compileAnvil(kEncryptFixedSource);
    if (!enc.ok) {
        fprintf(stderr, "encrypt design failed to compile:\n%s\n",
                enc.diags.render().c_str());
        return 1;
    }

    std::vector<Row> rows;
    rows.push_back(runDesign("mmu_tlb", designs::buildTlbBaseline(),
                             200000, 20000));
    rows.push_back(runDesign("mmu_ptw", designs::buildPtwBaseline(),
                             200000, 20000));
    rows.push_back(runDesign("axi_demux",
                             designs::buildAxiDemuxBaseline(),
                             100000, 8000));
    rows.push_back(runDesign("axi_mux",
                             designs::buildAxiMuxBaseline(),
                             50000, 4000));
    rows.push_back(runDesign("aes", designs::buildAesBaseline(),
                             50000, 5000));
    rows.push_back(runDesign("encrypt_anvil", enc.module("encrypt"),
                             200000, 20000));

    printf("%-15s %14s %14s %9s\n", "design", "ref cyc/s",
           "netlist cyc/s", "speedup");
    double worst = 1e30;
    for (const auto &r : rows) {
        double speedup = r.sim / r.ref;
        worst = std::min(worst, speedup);
        printf("%-15s %14.0f %14.0f %8.1fx\n", r.name.c_str(), r.ref,
               r.sim, speedup);
    }
    printf("\nworst-case speedup: %.1fx\n", worst);

    std::string json = "{\n  \"bench\": \"sim_perf\",\n"
        "  \"unit\": \"cycles_per_second\",\n  \"designs\": [\n";
    for (size_t i = 0; i < rows.size(); i++) {
        char buf[256];
        snprintf(buf, sizeof buf,
                 "    {\"name\": \"%s\", \"ref\": %.0f, "
                 "\"netlist\": %.0f, \"speedup\": %.2f}%s\n",
                 rows[i].name.c_str(), rows[i].ref, rows[i].sim,
                 rows[i].sim / rows[i].ref,
                 i + 1 < rows.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    if (argc > 1) {
        FILE *f = fopen(argv[1], "w");
        if (!f) {
            fprintf(stderr, "cannot write %s\n", argv[1]);
            return 1;
        }
        fputs(json.c_str(), f);
        fclose(f);
        printf("\nwrote %s\n", argv[1]);
    } else {
        printf("\n%s", json.c_str());
    }
    return 0;
}
