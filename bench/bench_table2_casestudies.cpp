/**
 * @file
 * §7.2 and Appendix B (Table 2): real-world timing-contract bugs from
 * open-source repositories, each reduced to an Anvil snippet.  For
 * every case the bench shows either (a) the unsafe description being
 * rejected at compile time, or (b) the contract-enforcing rewrite
 * that Anvil accepts, mirroring the "How can Anvil help?" column.
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"

using namespace anvil;

namespace {

void
caseStudy(const char *id, const char *what, const std::string &src,
          bool expect_safe)
{
    CompileOutput out = compileAnvil(src);
    printf("--- %s ---\n%s\n", id, what);
    printf("expected: %s | anvil: %s\n", expect_safe ? "SAFE" : "UNSAFE",
           out.ok ? "SAFE" : "UNSAFE");
    if (!out.ok) {
        // First error line only.
        for (const auto &d : out.diags.all()) {
            if (d.severity == Severity::Error) {
                printf("error: %s\n", d.message.c_str());
                break;
            }
        }
    }
    printf("%s\n\n",
           out.ok == expect_safe ? "[reproduced]" : "[MISMATCH]");
}

} // namespace

int
main()
{
    printf("=== Table 2 / §7.2: real-world issues, reproduced ===\n\n");

    // §7.2: the stream FIFO's documented contract (producer holds the
    // beat until it is consumed) is not enforced by the original IP;
    // in Anvil the same-cycle passthrough only type checks once the
    // contract is in the channel type.
    caseStudy("pulp common_cells stream_fifo (§7.2)",
              "passthrough without a producer-stability contract",
              R"(
chan stream_ch {
    left enq : (logic[32]@#1),
    right deq : (logic[32]@#1)
}
proc fifo_pt(io : left stream_ch) {
    loop {
        if (ready(io.enq)) & (ready(io.deq)) {
            let d = recv io.enq >>
            send io.deq (d) >> cycle 1
        } else { cycle 1 }
    }
}
)", false);

    caseStudy("pulp common_cells stream_fifo, contract enforced",
              "`@deq+1` makes the producer hold the beat; passthrough "
              "type checks",
              designs::anvilStreamFifoSource(), true);

    // CWE-1298 / HACK@DAC'21 DMA (Fig. 9).
    caseStudy("OpenPiton DMA (CWE-1298, Fig. 9)",
              "address mutated while the request is being validated",
              R"(
chan dma_ch {
    left req : (logic[32]@gnt_res),
    right gnt_res : (logic[8]@#1)
}
proc foo(dma : right dma_ch) {
    reg address : logic[32];
    reg protected_address : logic[32];
    loop {
        send dma.req (*address) >>
        set address := *protected_address >>
        let x = recv dma.gnt_res >>
        cycle 1
    }
}
)", false);

    // Coyote issue 78: a 2-cycle valid burst on the completion queue.
    caseStudy("fpgasystems/Coyote issue 78",
              "completion 'valid' asserted for two cycles instead of "
              "one: two overlapping sends of the same message",
              R"(
chan cq_ch { left cq_wr : (logic[32]@#1) }
proc writer(cq : right cq_ch) {
    reg v : logic[32];
    loop {
        send cq.cq_wr (*v) >>
        send cq.cq_wr (*v) >>
        set v := *v + 1 >>
        cycle 1
    }
}
)", false);

    // lowRISC ibex instr_valid_id decoupling commit.
    caseStudy("lowRISC/ibex f5d408d",
              "pipeline stages exchange data without a handshake; in "
              "Anvil the stage-to-stage message carries the handshake "
              "implicitly",
              R"(
chan stage_ch { left instr : (logic[32]@#1) }
proc id_stage(ifs : left stage_ch) {
    reg instr_q : logic[32];
    loop {
        let i = recv ifs.instr >>
        set instr_q := i
    }
}
)", true);

    // snax-cluster ALU valid-ready fix: the accelerator consumed
    // operands without checking both valid signals.  In Anvil both
    // operands arrive as messages; the join waits for both syncs.
    caseStudy("KULeuven-MICAS/snax_cluster PR 163",
              "ALU handshake: wait for both operands before computing",
              R"(
chan op_ch { left a : (logic[32]@res), left b : (logic[32]@res),
             right res : (logic[32]@#1) }
proc alu(io : left op_ch) {
    reg acc : logic[32];
    loop {
        let x = recv io.a;
        let y = recv io.b;
        x >> y >>
        set acc := x + y >>
        send io.res (*acc) >>
        cycle 1
    }
}
)", true);

    // core2axi missing w_valid: in Anvil the valid signal is part of
    // the generated handshake, so it cannot be forgotten; sending
    // without respecting the contract is the only way to fail.
    caseStudy("pulp-platform/core2axi 25eba94",
              "w channel data sent with the generated valid/ack "
              "handshake; no hand-rolled valid to forget",
              R"(
chan axi_w_ch { left w : (logic[32]@#1) }
proc bridge(axi : right axi_w_ch) {
    reg data : logic[32];
    loop {
        send axi.w (*data) >>
        set data := *data + 1 >>
        cycle 1
    }
}
)", true);

    // OpenTitan entropy source (issue 10983): firmware writes into
    // the pipeline with no ready signal.  The Anvil version makes the
    // FW-to-pipeline transfer a message, so synchronization is
    // built-in; writing blindly every cycle against a static promise
    // the pipeline cannot keep is rejected.
    caseStudy("lowRISC/opentitan issue 10983 (unsafe)",
              "FW inserts entropy with no ready signal (static "
              "promise the pipeline cannot keep)",
              R"(
chan es_ch { left fw_ov_wr : (logic[32]@#1) @#1-@#4 }
proc fw(es : right es_ch) {
    reg word : logic[32];
    loop {
        send es.fw_ov_wr (*word) >>
        set word := *word + 1 >>
        cycle 1
    }
}
)", false);

    caseStudy("lowRISC/opentitan issue 10983 (fixed)",
              "the dynamic handshake paces the firmware writes",
              R"(
chan es_ch { left fw_ov_wr : (logic[32]@#1) }
proc fw(es : right es_ch) {
    reg word : logic[32];
    loop {
        send es.fw_ov_wr (*word) >>
        set word := *word + 1 >>
        cycle 1
    }
}
)", true);

    return 0;
}
