/**
 * @file
 * Table 1: area / power / fmax / latency of the Anvil designs against
 * the handwritten baselines, through the shared synthesis cost model.
 *
 * Protocol mirrors §7.3: area and power are reported at
 * min(fmax(Anvil), fmax(baseline)) / 2; switching activity is
 * measured by running each design's workload in the RTL interpreter.
 * Absolute numbers come from the 22 nm-class model constants; the
 * quantity of interest is the relative overhead per row.
 */

#include <cstdio>
#include <functional>

#include "designs/designs.h"
#include "harness.h"
#include "synth/cost_model.h"

using namespace anvil;
using namespace anvil::designs;
using anvil::testing::StreamHarness;
using anvil::testing::compileDesign;
using anvil::testing::transact;

namespace {

struct Measured
{
    synth::SynthReport synth;
    double toggles_per_cycle = 0;
    int latency = -1;          // -1: dynamic, report separately
};

using Workload = std::function<double(rtl::Sim &, int *latency)>;

/** Run a workload and return toggles/cycle. */
Measured
measure(const rtl::ModulePtr &mod, const Workload &work)
{
    Measured m;
    m.synth = synth::synthesize(*mod);
    rtl::Sim sim(mod);
    m.toggles_per_cycle = work(sim, &m.latency);
    return m;
}

double
pct(double anvil, double base)
{
    return 100.0 * (anvil - base) / base;
}

struct Row
{
    const char *name;
    const char *baseline_kind;
    Measured base;
    Measured anvil;
};

std::vector<Row> g_rows;

void
report(const char *name, const char *kind, const rtl::ModulePtr &base,
       const rtl::ModulePtr &anvil_mod, const Workload &base_work,
       const Workload &anvil_work)
{
    if (!anvil_mod) {
        printf("%-28s  (anvil compile failed)\n", name);
        return;
    }
    Row r{name, kind, measure(base, base_work),
          measure(anvil_mod, anvil_work)};
    double f = std::min(r.base.synth.fmaxMhz(),
                        r.anvil.synth.fmaxMhz()) / 2;
    double pb = r.base.synth.powerMw(f, r.base.toggles_per_cycle);
    double pa = r.anvil.synth.powerMw(f, r.anvil.toggles_per_cycle);

    char lat[64];
    if (r.base.latency < 0)
        snprintf(lat, sizeof(lat), "dyn");
    else
        snprintf(lat, sizeof(lat), "%d vs %d", r.base.latency,
                 r.anvil.latency);

    printf("%-26s(%s) %7.0f %7.0f (%+5.0f%%) | %6.3f %6.3f (%+5.0f%%) "
           "| %5.0f %5.0f | %s\n",
           r.name, r.baseline_kind, r.base.synth.areaUm2(),
           r.anvil.synth.areaUm2(),
           pct(r.anvil.synth.areaUm2(), r.base.synth.areaUm2()), pb,
           pa, pct(pa, pb), r.base.synth.fmaxMhz(),
           r.anvil.synth.fmaxMhz(), lat);
    g_rows.push_back(r);
}

// --- Workloads -----------------------------------------------------------

Workload
streamWork(const std::string &in, const std::string &out)
{
    return [in, out](rtl::Sim &sim, int *latency) {
        StreamHarness h(sim, in, out, 3);
        std::vector<uint64_t> items(128);
        for (size_t i = 0; i < items.size(); i++)
            items[i] = i * 2654435761u;
        // Latency: cycles until the first item pops out.
        sim.setInput(in + "_valid", 0);
        sim.setInput(out + "_ack", 0);
        uint64_t t0 = sim.cycle();
        sim.setInput(in + "_valid", 1);
        sim.setInput(in + "_data", 42);
        int first = -1;
        for (int i = 0; i < 20; i++) {
            if (sim.peek(out + "_valid").any()) {
                first = static_cast<int>(sim.cycle() - t0);
                break;
            }
            sim.step();
        }
        if (latency)
            *latency = first;
        h.run(items, 4000);
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
tlbWork()
{
    return [](rtl::Sim &sim, int *latency) {
        sim.setInput("io_upd_valid", 0);
        sim.setInput("io_req_valid", 0);
        sim.step(2);
        for (uint64_t i = 0; i < 8; i++) {
            sim.setInput("io_upd_data",
                         BitVec(64, ((0x100 + i) << 32) | i));
            sim.setInput("io_upd_valid", 1);
            sim.step();
        }
        sim.setInput("io_upd_valid", 0);
        int lat = -1;
        for (int n = 0; n < 64; n++)
            transact(sim, "io_req", "io_res",
                     BitVec(32, 0x100 + (n % 10)), &lat);
        if (latency)
            *latency = lat;
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
ptwWork()
{
    return [](rtl::Sim &sim, int *latency) {
        // Simple memory model answering every mreq after 2 cycles
        // with a non-leaf pointer at levels 1-2 and a leaf at 3.
        int pend = -1;
        uint64_t addr = 0;
        auto drive_mem = [&]() {
            bool req = sim.peek("m_mreq_valid").any();
            sim.setInput("m_mreq_ack", req && pend < 0 ? 1 : 0);
            if (req && pend < 0) {
                addr = sim.peek("m_mreq_data").toUint64();
                pend = 2;
            }
            if (pend == 0) {
                uint64_t pte = addr >= (3ull << 12)
                    ? ((0x77ull << 10) | 0xf)       // leaf
                    : ((((addr >> 12) + 2) << 10) | 1);
                sim.setInput("m_mres_data", BitVec(64, pte));
                sim.setInput("m_mres_valid", 1);
                if (sim.peek("m_mres_ack").any())
                    pend = -1;
            } else {
                sim.setInput("m_mres_valid", 0);
                if (pend > 0)
                    pend--;
            }
        };
        int measured = -1;
        for (int walk = 0; walk < 24; walk++) {
            sim.setInput("cpu_req_data", BitVec(27, walk & 0x1ff));
            sim.setInput("cpu_req_valid", 1);
            sim.setInput("cpu_res_ack", 1);
            int start = -1;
            for (int i = 0; i < 200; i++) {
                drive_mem();
                if (sim.peek("cpu_req_ack").any() && start < 0)
                    start = static_cast<int>(sim.cycle());
                bool done = sim.peek("cpu_res_valid").any();
                sim.step();
                if (start >= 0)
                    sim.setInput("cpu_req_valid", 0);
                if (done && start >= 0) {
                    measured = static_cast<int>(sim.cycle()) - 1 -
                        start;
                    break;
                }
            }
        }
        if (latency)
            *latency = measured;
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
aesWork()
{
    return [](rtl::Sim &sim, int *latency) {
        int lat = -1;
        for (uint32_t n = 0; n < 10; n++) {
            BitVec req(256);
            for (uint32_t i = 0; i < 256; i++)
                req.setBit(static_cast<int>(i),
                           ((n * 1103515245u + i * 12345u) >> 7) & 1);
            transact(sim, "io_req", "io_res", req, &lat);
        }
        if (latency)
            *latency = lat;
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
axiDemuxWork()
{
    return [](rtl::Sim &sim, int *latency) {
        // Always-ready slaves; issue writes round the address space.
        auto drive_slaves = [&]() {
            for (int i = 0; i < 8; i++) {
                std::string p = "s" + std::to_string(i);
                sim.setInput(p + "_aw_ack", 1);
                sim.setInput(p + "_w_ack", 1);
                sim.setInput(p + "_ar_ack", 1);
                sim.setInput(p + "_b_valid", 1);
                sim.setInput(p + "_b_data", 1);
                sim.setInput(p + "_r_valid", 1);
                sim.setInput(p + "_r_data", BitVec(33, 0x1234));
            }
        };
        int measured = -1;
        for (int n = 0; n < 24; n++) {
            uint64_t a = (static_cast<uint64_t>(n % 8) << 29) | n;
            sim.setInput("m_aw_data", BitVec(32, a));
            sim.setInput("m_aw_valid", 1);
            sim.setInput("m_w_data", BitVec(32, n));
            sim.setInput("m_w_valid", 1);
            sim.setInput("m_b_ack", 1);
            int start = static_cast<int>(sim.cycle());
            for (int i = 0; i < 100; i++) {
                drive_slaves();
                bool b = sim.peek("m_b_valid").any();
                sim.step();
                if (b) {
                    measured = static_cast<int>(sim.cycle()) - 1 -
                        start;
                    break;
                }
            }
            sim.setInput("m_aw_valid", 0);
            sim.setInput("m_w_valid", 0);
            sim.step();
        }
        if (latency)
            *latency = measured;
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
axiMuxWork()
{
    return [](rtl::Sim &sim, int *latency) {
        auto drive_slave = [&]() {
            sim.setInput("s_aw_ack", 1);
            sim.setInput("s_w_ack", 1);
            sim.setInput("s_ar_ack", 1);
            sim.setInput("s_b_valid", 1);
            sim.setInput("s_b_data", 1);
            sim.setInput("s_r_valid", 1);
            sim.setInput("s_r_data", BitVec(33, 0x4321));
        };
        int measured = -1;
        for (int n = 0; n < 24; n++) {
            std::string p = "m" + std::to_string(n % 8);
            sim.setInput(p + "_aw_data", BitVec(32, n));
            sim.setInput(p + "_aw_valid", 1);
            sim.setInput(p + "_w_data", BitVec(32, n * 3));
            sim.setInput(p + "_w_valid", 1);
            sim.setInput(p + "_b_ack", 1);
            int start = static_cast<int>(sim.cycle());
            for (int i = 0; i < 100; i++) {
                drive_slave();
                bool b = sim.peek(p + "_b_valid").any();
                sim.step();
                if (b) {
                    measured = static_cast<int>(sim.cycle()) - 1 -
                        start;
                    break;
                }
            }
            sim.setInput(p + "_aw_valid", 0);
            sim.setInput(p + "_w_valid", 0);
            sim.step();
        }
        if (latency)
            *latency = measured;
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
aluWork(const std::string &in)
{
    return [in](rtl::Sim &sim, int *latency) {
        for (int i = 0; i < 256; i++) {
            BitVec op(68);
            uint64_t a = i * 2654435761u, b = ~a;
            for (int j = 0; j < 32; j++) {
                op.setBit(j, (a >> j) & 1);
                op.setBit(32 + j, (b >> j) & 1);
            }
            op.setBit(64 + (i % 3), true);
            sim.setInput(in, op);
            sim.step();
        }
        if (latency)
            *latency = 3;  // fixed static pipeline depth
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

Workload
systolicWork(const std::string &act, const std::string &wld)
{
    return [act, wld](rtl::Sim &sim, int *latency) {
        BitVec w(128);
        for (int i = 0; i < 128; i++)
            w.setBit(i, (i * 7) & 1);
        sim.setInput(wld + "_data", w);
        sim.setInput(wld + "_valid", 1);
        sim.step();
        sim.setInput(wld + "_valid", 0);
        for (int i = 0; i < 256; i++) {
            BitVec a(32);
            for (int j = 0; j < 32; j++)
                a.setBit(j, ((i * 31 + j * 5) >> 2) & 1);
            sim.setInput(act, a);
            sim.step();
        }
        if (latency)
            *latency = 4;  // pipeline depth (rows)
        return static_cast<double>(sim.totalToggles()) /
            std::max<uint64_t>(sim.cycle(), 1);
    };
}

} // namespace

int
main()
{
    setvbuf(stdout, nullptr, _IOLBF, 0);
    printf("=== Table 1: area / power / fmax / latency, Anvil vs "
           "baselines ===\n");
    printf("(area um^2 and power mW at min(fmax)/2; model constants "
           "are 22nm-class,\n relative overheads are the meaningful "
           "quantity)\n\n");
    printf("%-32s %7s %7s %9s | %6s %6s %9s | %5s %5s | latency\n",
           "design (baseline)", "base", "anvil", "area", "base",
           "anvil", "power", "fb", "fa");

    std::string errs;

    report("FIFO Buffer", "SV", buildFifoBaseline(),
           compileDesign(anvilFifoSource(), "fifo", &errs),
           streamWork("inp_enq", "outp_deq"),
           streamWork("inp_enq", "outp_deq"));

    report("Spill Register", "SV", buildSpillRegBaseline(),
           compileDesign(anvilSpillRegSource(), "spill_reg", &errs),
           streamWork("inp_enq", "outp_deq"),
           streamWork("inp_enq", "outp_deq"));

    report("Passthrough Stream FIFO", "SV", buildStreamFifoBaseline(),
           compileDesign(anvilStreamFifoSource(), "stream_fifo",
                         &errs),
           streamWork("inp_enq", "outp_deq"),
           streamWork("io_enq", "io_deq"));

    report("CVA6 TLB", "SV", buildTlbBaseline(),
           compileDesign(anvilTlbSource(), "tlb", &errs), tlbWork(),
           tlbWork());

    report("CVA6 Page Table Walker", "SV", buildPtwBaseline(),
           compileDesign(anvilPtwSource(), "ptw", &errs), ptwWork(),
           ptwWork());

    report("AES Cipher Core", "SV", buildAesBaseline(),
           compileDesign(anvilAesSource(), "aes", &errs), aesWork(),
           aesWork());

    report("AXI-Lite Demux Router", "SV", buildAxiDemuxBaseline(),
           compileDesign(anvilAxiDemuxSource(), "axi_demux", &errs),
           axiDemuxWork(), axiDemuxWork());

    report("AXI-Lite Mux Router", "SV", buildAxiMuxBaseline(),
           compileDesign(anvilAxiMuxSource(), "axi_mux", &errs),
           axiMuxWork(), axiMuxWork());

    report("Pipelined ALU", "Fil", buildPipelinedAluBaseline(),
           compileDesign(anvilPipelinedAluSource(), "alu", &errs),
           aluWork("io_op_data"), aluWork("io_op_data"));

    report("Systolic Array", "Fil", buildSystolicBaseline(),
           compileDesign(anvilSystolicSource(), "systolic", &errs),
           systolicWork("io_act_data", "io_wld"),
           systolicWork("inp_act_data", "inp_wld"));

    // Averages, split like the paper's summary lines.
    double sv_area = 0, sv_pow = 0;
    double fil_area = 0, fil_pow = 0;
    int sv_n = 0, fil_n = 0;
    for (const auto &r : g_rows) {
        double f = std::min(r.base.synth.fmaxMhz(),
                            r.anvil.synth.fmaxMhz()) / 2;
        double pb = r.base.synth.powerMw(f, r.base.toggles_per_cycle);
        double pa = r.anvil.synth.powerMw(f,
                                          r.anvil.toggles_per_cycle);
        double da = pct(r.anvil.synth.areaUm2(),
                        r.base.synth.areaUm2());
        double dp = pct(pa, pb);
        if (std::string(r.baseline_kind) == "SV") {
            sv_area += da;
            sv_pow += dp;
            sv_n++;
        } else {
            fil_area += da;
            fil_pow += dp;
            fil_n++;
        }
    }
    if (sv_n)
        printf("\nAverage overhead vs SystemVerilog baselines: "
               "Area=%.2f%%, Power=%.2f%%\n", sv_area / sv_n,
               sv_pow / sv_n);
    if (fil_n)
        printf("Average overhead vs Filament baselines:      "
               "Area=%.2f%%, Power=%.2f%%\n", fil_area / fil_n,
               fil_pow / fil_n);
    printf("\npaper: Area=+4.50%% / Power=+3.75%% (SV), "
           "Area=-11.0%% / Power=+6.5%% (Filament)\n");
    return 0;
}
