/**
 * @file
 * Figure 6: the Encrypt process with inferred lifetimes and loan
 * times.  Prints the per-check derivation, the loan tables, and the
 * three compile errors the paper walks through (noise dead at use,
 * assignment to the loaned r2_key, overlapping enc_res sends).
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "designs/designs.h"

using namespace anvil;

int
main()
{
    printf("=== Figure 6: Encrypt lifetimes and loan times ===\n\n");
    printf("%s\n", designs::anvilEncryptSource().c_str());

    CompileOutput out = compileAnvil(designs::anvilEncryptSource());
    const CheckResult &r = out.checks.at("encrypt");

    printf("--- inferred checks (lifetimes in [start, end) form) "
           "---\n%s\n", r.traceStr().c_str());

    printf("--- loan tables ---\n");
    for (size_t t = 0; t < r.loan_tables.size(); t++) {
        printf("thread %zu:\n%s", t, r.loan_tables[t].str().c_str());
    }

    printf("\n--- compiler errors ---\n%s", out.diags.render().c_str());
    printf("\nfinal decision: %s\n", out.ok ? "SAFE" : "UNSAFE");
    return 0;
}
