/**
 * @file
 * Formal-prover benchmark and CI smoke: prove the inferred contract
 * obligations of every dynamic-handshake eval design by k-induction,
 * and replay the paper's Listing-2 comparison on our own substrate —
 * the explicit-state BMC burning its whole state budget on the
 * wide-counter design whose contracts the cone-projected prover
 * discharges in microseconds.
 *
 * Usage:
 *   bench_formal_prove            full run (larger BMC budget)
 *   bench_formal_prove --smoke    CI mode: small budgets, exit
 *                                 nonzero on any unexpected verdict
 *
 * The recorded numbers live in docs/benchmarks.md ("Proving
 * contracts instead of exploring states").
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "formal/contracts.h"
#include "formal/kinduction.h"
#include "formal/property.h"
#include "verif/bmc.h"

using namespace anvil;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row
{
    std::string design;
    size_t obligations = 0;
    int proved = 0, conditional = 0, violated = 0, unknown = 0;
    double prove_ms = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;

    std::vector<std::pair<const char *, std::string>> sources = {
        {"quickstart", R"(
chan ping_ch {
    left ping : (logic[8]@pong),
    right pong : (logic[8]@#1) @dyn - @dyn#4
}
proc ping_server(io : left ping_ch) {
    reg bump : logic[8];
    loop {
        let p = recv io.ping >>
        set bump := p + 1 >>
        send io.pong (*bump) >>
        cycle 1
    }
}
)"},
        {"fifo", designs::anvilFifoSource()},
        {"spill_reg", designs::anvilSpillRegSource()},
        {"tlb", designs::anvilTlbSource()},
        {"aes", designs::anvilAesSource()},
        {"systolic", designs::anvilSystolicSource()},
        {"listing2", designs::anvilListing2Source()},
    };

    int failures = 0;
    std::vector<Row> rows;
    for (const auto &[name, src] : sources) {
        CompileOutput out = compileAnvil(src);
        if (!out.ok) {
            fprintf(stderr, "%s: compile failed\n%s", name,
                    out.diags.render().c_str());
            return 1;
        }
        formal::ContractSet typed =
            formal::inferContracts(out.program, out.top);
        formal::InstrumentedDesign inst = formal::compileProperties(
            *out.module(out.top), typed.obligations());

        formal::ProveOptions opts;
        opts.k_max = smoke ? 4 : 6;
        auto t0 = std::chrono::steady_clock::now();
        formal::ProveResult res = formal::prove(inst, opts);

        Row row;
        row.design = name;
        row.obligations = res.obligations.size();
        row.prove_ms = msSince(t0);
        for (const auto &o : res.obligations) {
            switch (o.status) {
              case formal::ObligationOutcome::Status::Proved:
                row.proved++;
                break;
              case formal::ObligationOutcome::Status::Conditional:
                row.conditional++;
                break;
              case formal::ObligationOutcome::Status::Violated:
                row.violated++;
                break;
              case formal::ObligationOutcome::Status::Unknown:
                row.unknown++;
                break;
            }
        }
        // Gate: nothing may be disproved, and every shipped `@dyn#N`
        // annotation (the ack-within obligations) must prove.
        // Stable obligations whose payload cone drags in a wide
        // datapath (fifo's 256-bit memory, AES's 128-bit state) are
        // allowed to degrade to Unknown — that is the budget doing
        // its job — and are reported, not hidden.
        bool gate_failed = row.violated > 0;
        for (const auto &o : res.obligations)
            if (o.rule == "ack-within" &&
                o.status != formal::ObligationOutcome::Status::Proved)
                gate_failed = true;
        if (gate_failed) {
            fprintf(stderr, "%s: unexpected verdicts:\n%s",
                    name, res.report(true).c_str());
            failures++;
        }
        printf("%-12s %2zu obligation(s)  %d proved  %d conditional  "
               "%d violated  %d unknown  %8.2f ms\n",
               name, row.obligations, row.proved, row.conditional,
               row.violated, row.unknown, row.prove_ms);
        rows.push_back(row);
    }

    // The Listing-2 comparison: same instrumented design, same
    // assertions — explicit-state exploration vs k-induction.
    {
        CompileOutput out =
            compileAnvil(designs::anvilListing2Source());
        formal::ContractSet typed =
            formal::inferContracts(out.program, out.top);
        formal::InstrumentedDesign inst = formal::compileProperties(
            *out.module(out.top), typed.obligations());

        auto t0 = std::chrono::steady_clock::now();
        formal::ProveResult res = formal::prove(inst, {});
        double prove_ms = msSince(t0);

        verif::BmcOptions bopts;
        bopts.max_depth = 1 << 20;
        bopts.max_states = smoke ? 1000 : 20000;
        bopts.input_bits_limit = 1;
        t0 = std::chrono::steady_clock::now();
        verif::BmcResult bmc = verif::boundedModelCheck(
            inst.module, inst.assertions(), bopts);
        double bmc_ms = msSince(t0);

        printf("\nlisting2 (32-bit counter, %zu assertion(s)):\n",
               inst.props.size());
        printf("  k-induction : all proved=%d      in %9.2f ms\n",
               res.allProved(), prove_ms);
        printf("  explicit BMC: %-22s in %9.2f ms (%llu states; "
               "full space ~2^32)\n",
               bmc.statusStr().c_str(), bmc_ms,
               (unsigned long long)bmc.states_explored);
        if (!res.allProved() ||
            bmc.status != verif::BmcResult::Status::BudgetExhausted)
            failures++;
    }

    if (failures) {
        fprintf(stderr, "\n%d unexpected verdict group(s)\n",
                failures);
        return 1;
    }
    return 0;
}
