/**
 * @file
 * Figure 4: static vs. dynamic timing contracts on a cached memory
 * (hit = 1 cycle, miss = 3 cycles).
 *
 * The static contract must assume the worst case, so every access
 * costs the miss latency.  The dynamic contract ([req, req->res))
 * lets the Anvil client proceed as soon as the response arrives, so
 * hits complete early.  The bench replays the same address trace
 * against both and reports per-access latency and total cycles.
 */

#include <cstdio>
#include <vector>

#include "anvil/compiler.h"
#include "designs/designs.h"
#include "rtl/interp.h"

using namespace anvil;

namespace {

/** Addresses with reuse so the cache hits after the first touch. */
std::vector<uint64_t>
trace()
{
    std::vector<uint64_t> t;
    for (int rep = 0; rep < 4; rep++)
        for (uint64_t a = 0; a < 4; a++)
            t.push_back(a);
    return t;
}

/**
 * The static-contract client of Fig. 4 (left): with a conservative
 * worst-case contract, every access takes the miss latency; the
 * response is only sampled after the full window.
 */
int
runStaticClient(const std::vector<uint64_t> &addrs,
                std::vector<int> &lat)
{
    rtl::Sim cache(designs::buildCacheDemoBaseline());
    int cycles = 0;
    for (uint64_t a : addrs) {
        int this_lat = 0;
        cache.setInput("io_req_data", a);
        cache.setInput("io_req_valid", 1);
        cache.setInput("io_res_ack", 0);
        // Issue, then wait the worst case: the response is consumed
        // only at the end of the static window.
        while (!cache.peek("io_req_ack").any()) {
            cache.step();
            cycles++;
        }
        cache.step();   // request accepted
        cycles++;
        this_lat++;
        cache.setInput("io_req_valid", 0);
        for (int w = 0; w < 3; w++) {
            // Static window: hold off the ack until the last cycle.
            cache.setInput("io_res_ack", w == 2 ? 1 : 0);
            cache.step();
            cycles++;
            this_lat++;
        }
        lat.push_back(this_lat);
    }
    return cycles;
}

/** The dynamic-contract client: consumes the response when it comes. */
int
runDynamicClient(const std::vector<uint64_t> &addrs,
                 std::vector<int> &lat)
{
    rtl::Sim cache(designs::buildCacheDemoBaseline());
    int cycles = 0;
    for (uint64_t a : addrs) {
        int this_lat = 0;
        cache.setInput("io_req_data", a);
        cache.setInput("io_req_valid", 1);
        cache.setInput("io_res_ack", 1);
        while (!cache.peek("io_req_ack").any()) {
            cache.step();
            cycles++;
        }
        cache.step();   // request accepted
        cycles++;
        this_lat++;
        cache.setInput("io_req_valid", 0);
        while (!cache.peek("io_res_valid").any()) {
            cache.step();
            cycles++;
            this_lat++;
        }
        cache.step();   // response consumed
        cycles++;
        lat.push_back(this_lat);
    }
    return cycles;
}

void
printRow(const char *name, const std::vector<int> &lat, int cycles)
{
    printf("%-28s", name);
    int hits = 0;
    for (size_t i = 0; i < lat.size(); i++) {
        if (lat[i] <= 1)
            hits++;
    }
    printf(" accesses=%-3zu hits(1cyc)=%-3d total=%d cycles, "
           "per-access:", lat.size(), hits, cycles);
    for (size_t i = 0; i < lat.size() && i < 12; i++)
        printf(" %d", lat[i]);
    printf("...\n");
}

} // namespace

int
main()
{
    printf("=== Figure 4: static vs dynamic timing contract on a "
           "cache ===\n\n");
    printf("cache: hit = 1 cycle, miss = 3 cycles; trace touches 4 "
           "lines 4 times each\n\n");

    auto addrs = trace();
    std::vector<int> static_lat, dyn_lat;
    int static_cycles = runStaticClient(addrs, static_lat);
    int dyn_cycles = runDynamicClient(addrs, dyn_lat);

    printRow("static contract [T, T+3)", static_lat, static_cycles);
    printRow("dynamic [req, req->res)", dyn_lat, dyn_cycles);

    printf("\nspeedup from the dynamic contract: %.2fx "
           "(the static contract nullifies caching, paper §2.4)\n",
           static_cast<double>(static_cycles) / dyn_cycles);

    printf("\n--- the dynamic-contract client in Anvil "
           "(compiles, Fig. 5 right) ---\n");
    CompileOutput out = compileAnvil(designs::anvilTopSafeSource());
    printf("type check: %s\n", out.ok ? "SAFE" : "UNSAFE");
    return 0;
}
