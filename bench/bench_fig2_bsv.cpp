/**
 * @file
 * Figure 2: Anvil vs. BSV on the cache->FIFO forwarding design.
 * BSV's per-cycle conflict-free scheduler admits an ordering that
 * violates the multi-cycle cache contract; Anvil rejects the same
 * ordering and accepts the guided rewrite.
 */

#include <cstdio>

#include "anvil/compiler.h"
#include "bsv/rules.h"

using namespace anvil;

namespace {

bsv::RuleDesign
makeDesign(int latency)
{
    using bsv::State;
    bsv::RuleDesign d;
    d.addReg("address", 0x10);
    d.addReg("cache_busy", 0);
    d.addReg("cache_timer", 0);
    d.addReg("fifo_data", 0);
    d.addReg("got_data", 0);
    d.addReg("data", 0);

    d.addRule({"send_cache_req(address)",
               [](const State &s) { return s.at("cache_busy") == 0; },
               [=](State &s) {
                   s["cache_busy"] = 1;
                   s["cache_timer"] = latency;
               },
               {"cache_busy"}, {"cache_busy", "cache_timer"}});
    d.addRule({"change_address()",
               [](const State &s) { return s.at("cache_busy") == 1; },
               [](State &s) { s["address"]++; },
               {"cache_busy", "address"}, {"address"}});
    d.addRule({"cache_step",
               [](const State &s) {
                   return s.at("cache_busy") == 1 &&
                       s.at("got_data") == 0;
               },
               [](State &s) {
                   if (s["cache_timer"] > 0)
                       s["cache_timer"]--;
                   if (s["cache_timer"] == 0) {
                       s["data"] = s["address"] + 0x100;
                       s["got_data"] = 1;
                       s["cache_busy"] = 0;
                   }
               },
               {"cache_busy", "cache_timer", "got_data"},
               {"cache_timer", "data", "got_data", "cache_busy"}});
    d.addRule({"send_fifo_enq_req(data)",
               [](const State &s) { return s.at("got_data") == 1; },
               [](State &s) {
                   s["fifo_data"] = s.at("data");
                   s["got_data"] = 0;
               },
               {"got_data", "data"}, {"fifo_data", "got_data"}});
    return d;
}

} // namespace

int
main()
{
    printf("=== Figure 2: BSV conflict-free schedules vs. Anvil ===\n");

    printf("\n--- BSV: per-cycle scheduling of the four rules ---\n");
    bsv::RuleDesign d = makeDesign(2);
    auto sched = d.run(6);
    for (size_t c = 0; c < sched.size(); c++) {
        printf("cycle %zu:", c);
        for (const auto &r : sched[c])
            printf("  %s", r.c_str());
        printf("\n");
    }
    printf("\nrequested address: 0x10 (expected data 0x110)\n");
    printf("FIFO received:     0x%llx\n",
           (unsigned long long)d.state()["fifo_data"]);
    printf("=> schedule was conflict-free every cycle, yet "
           "change_address fired while the\n   cache was still "
           "dereferencing the address: a timing hazard BSV cannot "
           "see.\n");

    printf("\n--- Anvil: the same ordering is a type error ---\n");
    const char *unsafe = R"(
chan cache_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@res+1)
}
chan fifo_ch { left enq_req : (logic[8]@#1) }
proc top(cache : right cache_ch, fifo : right fifo_ch) {
    reg address : logic[8];
    loop {
        send cache.req (*address) >>
        set address := *address + 1 >>
        let data = recv cache.res >>
        send fifo.enq_req (data) >>
        cycle 1
    }
}
)";
    CompileOutput bad = compileAnvil(unsafe);
    printf("%s", bad.diags.render().c_str());
    printf("verdict: %s\n", bad.ok ? "accepted (BUG)" : "rejected");

    printf("\n--- Anvil: the guided rewrite (Fig. 2 top right) ---\n");
    const char *safe = R"(
chan cache_ch {
    left req : (logic[8]@res),
    right res : (logic[8]@res+1)
}
chan fifo_ch { left enq_req : (logic[8]@#1) }
proc top(cache : right cache_ch, fifo : right fifo_ch) {
    reg address : logic[8];
    reg enq_data : logic[8];
    loop {
        send cache.req (*address) >>
        let data = recv cache.res >>
        set address := *address + 1;
        set enq_data := data >>
        send fifo.enq_req (*enq_data) >>
        cycle 1
    }
}
)";
    CompileOutput good = compileAnvil(safe);
    printf("verdict: %s\n",
           good.ok ? "accepted (timing-safe)" : "rejected (BUG)");
    if (!good.ok)
        printf("%s", good.diags.render().c_str());
    return 0;
}
