#include "ir/event_graph.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace anvil {

std::string
EventNode::label() const
{
    switch (kind) {
      case EventKind::Root:
        return strfmt("e%d:root", id);
      case EventKind::Delay:
        return strfmt("e%d:#%d", id, delay);
      case EventKind::Send:
        return strfmt("e%d:send %s.%s", id, endpoint.c_str(), msg.c_str());
      case EventKind::Recv:
        return strfmt("e%d:recv %s.%s", id, endpoint.c_str(), msg.c_str());
      case EventKind::Join:
        return strfmt("e%d:join", id);
      case EventKind::Branch:
        return strfmt("e%d:&c%d=%d", id, cond_id, cond_taken ? 1 : 0);
      case EventKind::Merge:
        return strfmt("e%d:merge", id);
    }
    return strfmt("e%d:?", id);
}

EventId
EventGraph::addNode(EventKind kind)
{
    auto n = std::make_unique<EventNode>();
    n->id = static_cast<EventId>(_nodes.size());
    n->kind = kind;
    _nodes.push_back(std::move(n));
    _dead.push_back(false);
    return _nodes.back()->id;
}

EventId
EventGraph::addRoot()
{
    EventId id = addNode(EventKind::Root);
    if (_root == kNoEvent)
        _root = id;
    return id;
}

EventId
EventGraph::addDelay(EventId pred, int n)
{
    EventId id = addNode(EventKind::Delay);
    node(id).preds = {pred};
    node(id).delay = n;
    node(id).unconditional = node(pred).unconditional;
    node(id).iteration = node(pred).iteration;
    return id;
}

EventId
EventGraph::addSend(EventId pred, const std::string &ep,
                    const std::string &msg)
{
    EventId id = addNode(EventKind::Send);
    node(id).preds = {pred};
    node(id).endpoint = ep;
    node(id).msg = msg;
    node(id).unconditional = node(pred).unconditional;
    node(id).iteration = node(pred).iteration;
    return id;
}

EventId
EventGraph::addRecv(EventId pred, const std::string &ep,
                    const std::string &msg)
{
    EventId id = addNode(EventKind::Recv);
    node(id).preds = {pred};
    node(id).endpoint = ep;
    node(id).msg = msg;
    node(id).unconditional = node(pred).unconditional;
    node(id).iteration = node(pred).iteration;
    return id;
}

EventId
EventGraph::addJoin(std::vector<EventId> preds)
{
    if (preds.size() == 1)
        return preds[0];
    EventId id = addNode(EventKind::Join);
    bool uncond = true;
    int iter = 0;
    for (EventId p : preds) {
        uncond = uncond && node(p).unconditional;
        iter = std::max(iter, node(p).iteration);
    }
    node(id).preds = std::move(preds);
    node(id).unconditional = uncond;
    node(id).iteration = iter;
    return id;
}

EventId
EventGraph::addBranch(EventId pred, int cond_id, bool taken)
{
    EventId id = addNode(EventKind::Branch);
    node(id).preds = {pred};
    node(id).cond_id = cond_id;
    node(id).cond_taken = taken;
    node(id).unconditional = false;
    node(id).iteration = node(pred).iteration;
    return id;
}

EventId
EventGraph::addMerge(EventId a, EventId b, EventId branch_pred)
{
    EventId id = addNode(EventKind::Merge);
    node(id).preds = {a, b};
    node(id).branch_pred = branch_pred;
    // A merge of the two arms occurs whenever the branch point did.
    node(id).unconditional = node(branch_pred).unconditional;
    node(id).iteration =
        std::max(node(a).iteration, node(b).iteration);
    return id;
}

void
EventGraph::mergeInto(EventId from, EventId to)
{
    if (from == to)
        return;
    // Migrate actions.
    auto &fn = node(from);
    auto &tn = node(to);
    for (auto &a : fn.actions)
        tn.actions.push_back(std::move(a));
    fn.actions.clear();
    tn.unconditional = tn.unconditional || fn.unconditional;
    // Redirect references everywhere.
    for (auto &np : _nodes) {
        for (auto &p : np->preds)
            if (p == from)
                p = to;
        if (np->branch_pred == from)
            np->branch_pred = to;
        // De-duplicate preds that became identical and drop any
        // self-reference introduced by the merge.
        std::vector<EventId> uniq;
        for (EventId p : np->preds)
            if (p != np->id &&
                std::find(uniq.begin(), uniq.end(), p) == uniq.end())
                uniq.push_back(p);
        np->preds = std::move(uniq);
    }
    if (_root == from)
        _root = to;
    if (_iter_boundary == from)
        _iter_boundary = to;
    _dead[from] = true;
    _forward[from] = to;
}

EventId
EventGraph::resolve(EventId id) const
{
    while (true) {
        auto it = _forward.find(id);
        if (it == _forward.end())
            return id;
        id = it->second;
    }
}

int
EventGraph::liveCount() const
{
    int n = 0;
    for (size_t i = 0; i < _nodes.size(); i++)
        if (!_dead[i])
            n++;
    return n;
}

std::vector<EventId>
EventGraph::liveEvents() const
{
    std::vector<EventId> out;
    for (size_t i = 0; i < _nodes.size(); i++)
        if (!_dead[i])
            out.push_back(static_cast<EventId>(i));
    return out;
}

std::map<EventId, std::vector<EventId>>
EventGraph::successors() const
{
    std::map<EventId, std::vector<EventId>> succ;
    for (EventId id : liveEvents()) {
        succ[id];  // ensure present
        for (EventId p : node(id).preds)
            succ[p].push_back(id);
    }
    return succ;
}

std::string
EventGraph::dump() const
{
    std::ostringstream os;
    for (EventId id : liveEvents()) {
        const EventNode &n = node(id);
        os << n.label();
        if (!n.preds.empty()) {
            os << " <- {";
            for (size_t i = 0; i < n.preds.size(); i++) {
                if (i)
                    os << ", ";
                os << "e" << n.preds[i];
            }
            os << "}";
        }
        for (const auto &a : n.actions) {
            switch (a.kind) {
              case EventAction::Kind::AssignReg:
                os << " [set " << a.reg << "]";
                break;
              case EventAction::Kind::SendData:
                os << " [send " << a.endpoint << "." << a.msg << "]";
                break;
              case EventAction::Kind::RecvData:
                os << " [recv " << a.endpoint << "." << a.msg << "]";
                break;
              case EventAction::Kind::DPrint:
                os << " [dprint]";
                break;
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace anvil
