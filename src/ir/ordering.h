/**
 * @file
 * The <=_G and <_G ordering relations over events and event patterns
 * (paper §5.4 and Defs. C.9-C.11), implemented as a sound worst-case
 * gap analysis over the event graph.
 *
 * For events a, b the analysis computes
 *
 *   gapLb(b, a)  =  a lower bound on tau(b) - tau(a), valid for every
 *                   timestamp function tau of the graph, and
 *   gapUb(b, a)  =  an upper bound on the same quantity,
 *
 * by structural recursion on the definition of timestamp functions:
 * delays add exactly N, dynamic message syncs add at least 0 (and at
 * most infinity), joins take the max of their predecessors and merges
 * the min.  Then
 *
 *   a <=_G b  iff  gapLb(b, a) >= 0      and
 *   a <_G  b  iff  gapLb(b, a) >= 1.
 *
 * Event patterns `e |> p` (the first time duration p is satisfied
 * after e) are compared through the same bounds, using monotonicity of
 * "first occurrence after" for message durations and, when needed, the
 * guaranteed future occurrences of a message present in the graph.
 */

#ifndef ANVIL_IR_ORDERING_H
#define ANVIL_IR_ORDERING_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/event_graph.h"

namespace anvil {

/** Saturating "cycles" arithmetic with +/- infinity. */
using Gap = int64_t;
constexpr Gap kGapInf = INT64_MAX / 4;
constexpr Gap kGapNegInf = -kGapInf;

/**
 * An event pattern `e |> p`: the first time, strictly counted from
 * event e, that the duration p is satisfied (Def. C.10).  Fixed
 * durations give tau(e) + k; message durations give the first exchange
 * of the message after tau(e) (or infinity if there is none).
 */
struct EventPattern
{
    enum class Kind { FixedAfter, MessageAfter };

    Kind kind = Kind::FixedAfter;
    EventId base = kNoEvent;
    int cycles = 0;          // FixedAfter: delay; MessageAfter: +N
    std::string endpoint;    // MessageAfter
    std::string msg;         // MessageAfter

    static EventPattern fixed(EventId e, int k);
    static EventPattern message(EventId e, const std::string &ep,
                                const std::string &m, int plus = 0);
    static EventPattern atEvent(EventId e) { return fixed(e, 0); }

    std::string str() const;
};

/**
 * A set of event patterns; its time is the earliest match of any
 * member (paper §5.1).  An empty set denotes the eternal lifetime.
 */
struct PatternSet
{
    std::vector<EventPattern> pats;

    bool eternal() const { return pats.empty(); }
    static PatternSet forever() { return {}; }
    static PatternSet one(EventPattern p) { return {{p}}; }
    void add(const EventPattern &p) { pats.push_back(p); }
    void merge(const PatternSet &o);

    std::string str() const;
};

/**
 * Decision procedure for <=_G / <_G over one event graph.
 *
 * All results are memoized; the graph must not change while an
 * Ordering object is alive.
 */
class Ordering
{
  public:
    explicit Ordering(const EventGraph &graph);

    /** Lower bound on tau(b) - tau(a). */
    Gap gapLb(EventId b, EventId a);

    /** Upper bound on tau(b) - tau(a). */
    Gap gapUb(EventId b, EventId a);

    /** a <=_G b. */
    bool le(EventId a, EventId b) { return gapLb(b, a) >= 0; }

    /** a <_G b. */
    bool lt(EventId a, EventId b) { return gapLb(b, a) >= 1; }

    /** Lower bound of tau(pb) - tau(pa) over patterns. */
    Gap patGapLb(const EventPattern &pb, const EventPattern &pa);

    /** pa <=_G pb (pattern form). */
    bool patLe(const EventPattern &pa, const EventPattern &pb);

    /** Event vs. pattern: e <=_G p. */
    bool eventLePat(EventId e, const EventPattern &p);

    /** Pattern vs. event: p <=_G e. */
    bool patLeEvent(const EventPattern &p, EventId e);

    /**
     * Set comparison: Sa <=_G Sb, i.e. min(Sa) always at or before
     * min(Sb).  Sound sufficient condition: for every pattern in Sb
     * there is a pattern in Sa at or before it.  An empty set is
     * eternal (infinitely late).
     */
    bool setLe(const PatternSet &sa, const PatternSet &sb);

    /** e <=_G S: the event is at or before every member's earliest. */
    bool eventLeSet(EventId e, const PatternSet &s);

    /** S <=_G e: some member is guaranteed at or before the event. */
    bool setLeEvent(const PatternSet &s, EventId e);

    /** S <_G e: some member is guaranteed strictly before the event. */
    bool setLtEvent(const PatternSet &s, EventId e);

    /** Lower bound on tau(e) (distance from the thread root). */
    Gap lbFromRoot(EventId e);

    /** Upper bound on tau(e); infinite past any dynamic sync. */
    Gap ubFromRoot(EventId e);

    /**
     * Upper bound on tau(e |> p) - tau(anchor), using guaranteed
     * future occurrences for message durations.  Returns kGapInf when
     * no bound can be established.
     */
    Gap patUbFrom(const EventPattern &p, EventId anchor);

    /**
     * True when @p anc causally precedes (or is) @p node: a path of
     * graph edges leads from anc to node.  A sync that causally
     * precedes a pattern's base event can never be the "first
     * occurrence after" that base, even if it lands on the same cycle.
     */
    bool reaches(EventId anc, EventId node);

    /** Branch facts ((cond, arm) pairs) required to reach an event. */
    const std::map<int, bool> &contextOf(EventId e);

    /** True when the two events can occur in the same run. */
    bool compatible(EventId a, EventId b);

    /**
     * True when event @p n occurs in every run in which both @p a and
     * @p b occur (n's branch facts are implied by theirs).
     */
    bool guaranteedGiven(EventId n, EventId a, EventId b);

  private:
    /** True when a join predecessor causally precedes another. */
    bool dominatedPred(const EventNode &join, EventId p);

    Gap gapLbRec(EventId b, EventId a,
                 std::map<std::pair<EventId, EventId>, Gap> &memo);
    Gap gapUbRec(EventId b, EventId a,
                 std::map<std::pair<EventId, EventId>, Gap> &memo);

    /** Ancestors shared by two events (for gap composition). */
    std::vector<EventId> commonAncestors(EventId a, EventId b);

    /** All ancestors of an event, including itself (memoized). */
    const std::vector<EventId> &ancestorsOf(EventId node);

    /**
     * Occurrences of a message op in the graph; when
     * @p only_unconditional is set, only those on every control path.
     */
    std::vector<EventId> messageEvents(const std::string &ep,
                                       const std::string &msg,
                                       bool only_unconditional) const;

    const EventGraph &_g;
    std::map<std::pair<EventId, EventId>, Gap> _lb_memo;
    std::map<std::pair<EventId, EventId>, Gap> _ub_memo;
    std::map<EventId, std::vector<EventId>> _anc_memo;
    std::map<EventId, std::map<int, bool>> _ctx_memo;
    std::map<std::pair<EventId, EventId>, Gap> _final_lb;
    std::map<std::pair<EventId, EventId>, Gap> _final_ub;
};

/** Saturating addition on Gap values. */
Gap gapAdd(Gap a, Gap b);

} // namespace anvil

#endif // ANVIL_IR_ORDERING_H
