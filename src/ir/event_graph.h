/**
 * @file
 * The event graph intermediate representation (paper §5.3 and §6).
 *
 * Events are abstract time points.  Each node is labelled with how its
 * time relates to its predecessors: a fixed cycle delay (`#N`), the
 * completion of a message synchronization (which may take arbitrarily
 * many cycles under a dynamic sync mode), a join (latest of several
 * events), a branch (same cycle as its predecessor, conditioned on a
 * run-time value), or a merge (earliest of the two branch arms).
 *
 * The event graph is used as the IR throughout compilation: the type
 * checker reasons over it (src/types), optimization passes rewrite it
 * (src/ir/optimize.*), and the back-end lowers it to an FSM
 * (src/codegen).
 */

#ifndef ANVIL_IR_EVENT_GRAPH_H
#define ANVIL_IR_EVENT_GRAPH_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/diag.h"

namespace anvil {

using EventId = int;

constexpr EventId kNoEvent = -1;

/** Kinds of event-graph nodes (Def. C.9 timestamp semantics). */
enum class EventKind
{
    Root,     ///< tau = 0 (start of a thread iteration)
    Delay,    ///< tau = max(preds) + N
    Send,     ///< completion of a send started at the predecessor
    Recv,     ///< completion of a receive started at the predecessor
    Join,     ///< tau = max(preds)  (the #0 join)
    Branch,   ///< same cycle as pred, conditioned (label &c)
    Merge,    ///< tau = min(preds)  (the (+) branch join)
};

/** An action attached to an event (used by codegen and Fig. 5 dumps). */
struct EventAction
{
    enum class Kind { AssignReg, SendData, RecvData, DPrint };

    Kind kind;
    std::string reg;          // AssignReg
    std::string endpoint;     // SendData / RecvData
    std::string msg;          // SendData / RecvData
    std::string text;         // DPrint
    const Term *value = nullptr;  // AssignReg / SendData payload
    SrcLoc loc;
};

/** One node of the event graph. */
struct EventNode
{
    EventId id = kNoEvent;
    EventKind kind = EventKind::Root;
    std::vector<EventId> preds;

    int delay = 0;            ///< Delay: number of cycles.
    std::string endpoint;     ///< Send/Recv: endpoint name.
    std::string msg;          ///< Send/Recv: message name.
    int cond_id = -1;         ///< Branch: condition identifier.
    bool cond_taken = false;  ///< Branch: which arm this node roots.
    const Term *cond_term = nullptr;  ///< Branch: condition expression.
    EventId branch_pred = kNoEvent;  ///< Merge: the branching pred.

    /**
     * Send/Recv: worst-case sync time in cycles when both endpoints
     * use non-dynamic sync modes; -1 means unbounded (dynamic).
     */
    int max_sync = -1;

    std::vector<EventAction> actions;

    /** True when this event occurs on every control path. */
    bool unconditional = true;

    /** Iteration index (0 or 1) during two-iteration unrolling. */
    int iteration = 0;

    /** Debug name used in Fig. 5 / Fig. 6 style dumps. */
    std::string label() const;
};

/**
 * The event graph for one thread of a process, unrolled for two loop
 * iterations as justified by Lemma C.19.
 */
class EventGraph
{
  public:
    EventGraph() = default;

    EventId addRoot();
    EventId addDelay(EventId pred, int n);
    EventId addSend(EventId pred, const std::string &ep,
                    const std::string &msg);
    EventId addRecv(EventId pred, const std::string &ep,
                    const std::string &msg);
    EventId addJoin(std::vector<EventId> preds);
    EventId addBranch(EventId pred, int cond_id, bool taken);
    EventId addMerge(EventId a, EventId b, EventId branch_pred);

    EventNode &node(EventId id) { return *_nodes[id]; }
    const EventNode &node(EventId id) const { return *_nodes[id]; }

    int size() const { return static_cast<int>(_nodes.size()); }

    /** Number of live (non-merged-away) events. */
    int liveCount() const;

    EventId root() const { return _root; }

    /** The terminal event of iteration 0 (start of iteration 1). */
    EventId iterBoundary() const { return _iter_boundary; }
    void setIterBoundary(EventId e) { _iter_boundary = e; }

    /** Allocate a fresh condition id for a Branch pair. */
    int freshCond() { return _next_cond++; }

    /**
     * Redirect every reference to event @p from to event @p to and mark
     * @p from dead.  Used by the optimization passes; actions of the
     * dead node migrate to the replacement.
     */
    void mergeInto(EventId from, EventId to);

    bool isDead(EventId id) const { return _dead[id]; }

    /** Follow merge redirections to the surviving event. */
    EventId resolve(EventId id) const;

    /** Mark an event dead without redirecting (unreachable nodes). */
    void kill(EventId id) { _dead[id] = true; }

    /** All live event ids in creation order. */
    std::vector<EventId> liveEvents() const;

    /** Successor lists (live nodes only), recomputed on demand. */
    std::map<EventId, std::vector<EventId>> successors() const;

    /** GraphViz-style dump for debugging and docs. */
    std::string dump() const;

  private:
    EventId addNode(EventKind kind);

    std::vector<std::unique_ptr<EventNode>> _nodes;
    std::vector<bool> _dead;
    std::map<EventId, EventId> _forward;
    EventId _root = kNoEvent;
    EventId _iter_boundary = kNoEvent;
    int _next_cond = 0;
};

} // namespace anvil

#endif // ANVIL_IR_EVENT_GRAPH_H
