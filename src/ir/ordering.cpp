#include "ir/ordering.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/strings.h"

namespace anvil {

Gap
gapAdd(Gap a, Gap b)
{
    if (a >= kGapInf || b >= kGapInf)
        return kGapInf;
    if (a <= kGapNegInf || b <= kGapNegInf)
        return kGapNegInf;
    return a + b;
}

EventPattern
EventPattern::fixed(EventId e, int k)
{
    EventPattern p;
    p.kind = Kind::FixedAfter;
    p.base = e;
    p.cycles = k;
    return p;
}

EventPattern
EventPattern::message(EventId e, const std::string &ep,
                      const std::string &m, int plus)
{
    EventPattern p;
    p.kind = Kind::MessageAfter;
    p.base = e;
    p.endpoint = ep;
    p.msg = m;
    p.cycles = plus;
    return p;
}

std::string
EventPattern::str() const
{
    if (kind == Kind::FixedAfter) {
        if (cycles == 0)
            return strfmt("e%d", base);
        return strfmt("e%d |> #%d", base, cycles);
    }
    if (cycles != 0)
        return strfmt("e%d |> %s.%s+%d", base, endpoint.c_str(),
                      msg.c_str(), cycles);
    return strfmt("e%d |> %s.%s", base, endpoint.c_str(), msg.c_str());
}

void
PatternSet::merge(const PatternSet &o)
{
    for (const auto &p : o.pats)
        pats.push_back(p);
}

std::string
PatternSet::str() const
{
    if (eternal())
        return "inf";
    std::ostringstream os;
    if (pats.size() > 1)
        os << "{";
    for (size_t i = 0; i < pats.size(); i++) {
        if (i)
            os << ", ";
        os << pats[i].str();
    }
    if (pats.size() > 1)
        os << "}";
    return os.str();
}

Ordering::Ordering(const EventGraph &graph)
    : _g(graph)
{
}

// ---------------------------------------------------------------------
// Core gap analysis
// ---------------------------------------------------------------------

bool
Ordering::dominatedPred(const EventNode &join, EventId p)
{
    for (EventId q : join.preds) {
        if (q != p && reaches(p, q))
            return true;
    }
    return false;
}

Gap
Ordering::gapLbRec(EventId b, EventId a,
                   std::map<std::pair<EventId, EventId>, Gap> &memo)
{
    // Lower bound of tau(b) - tau(a), unwinding only b.
    if (b == a)
        return 0;
    auto key = std::make_pair(b, a);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;
    // Seed with -inf to break cycles defensively (graph is a DAG, but
    // merged nodes could alias).
    memo[key] = kGapNegInf;

    const EventNode &n = _g.node(b);
    Gap r = kGapNegInf;
    switch (n.kind) {
      case EventKind::Root: {
        // tau(root) = 0, so tau(root) - tau(a) >= -UB(tau(a)).
        Gap ub_a = gapUbRec(a, b, _ub_memo);
        r = ub_a >= kGapInf ? kGapNegInf : -ub_a;
        break;
      }
      case EventKind::Delay:
        r = gapAdd(gapLbRec(n.preds[0], a, memo), n.delay);
        break;
      case EventKind::Send:
      case EventKind::Recv:
        // Dynamic synchronization takes at least zero extra cycles.
        r = gapLbRec(n.preds[0], a, memo);
        break;
      case EventKind::Branch:
        r = gapLbRec(n.preds[0], a, memo);
        break;
      case EventKind::Join: {
        // tau = max over preds: the bound is the best over preds.
        // A pred that causally precedes another pred never determines
        // the max and is skipped (it only weakens upper bounds).
        r = kGapNegInf;
        bool all_dominated = true;
        for (EventId p : n.preds) {
            if (dominatedPred(n, p))
                continue;
            all_dominated = false;
            r = std::max(r, gapLbRec(p, a, memo));
        }
        if (all_dominated)
            for (EventId p : n.preds)
                r = std::max(r, gapLbRec(p, a, memo));
        break;
      }
      case EventKind::Merge: {
        // The merge fires with whichever arm ran.  In any run where
        // `a` occurs, arms incompatible with `a` never fire (their
        // events are at infinity), so they impose no bound.
        r = kGapInf;
        bool any = false;
        for (EventId p : n.preds) {
            if (!compatible(p, a))
                continue;
            any = true;
            r = std::min(r, gapLbRec(p, a, memo));
        }
        if (!any)
            r = kGapNegInf;
        // The merge also never fires before its branch point.
        if (n.branch_pred != kNoEvent)
            r = std::max(r, gapLbRec(n.branch_pred, a, memo));
        break;
      }
    }
    memo[key] = r;
    return r;
}

Gap
Ordering::gapUbRec(EventId b, EventId a,
                   std::map<std::pair<EventId, EventId>, Gap> &memo)
{
    // Upper bound of tau(b) - tau(a), unwinding only b.
    if (b == a)
        return 0;
    auto key = std::make_pair(b, a);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;
    memo[key] = kGapInf;

    const EventNode &n = _g.node(b);
    Gap r = kGapInf;
    switch (n.kind) {
      case EventKind::Root: {
        // tau(root) = 0, so tau(root) - tau(a) <= -LB(tau(a)).
        Gap lb_a = gapLbRec(a, b, _lb_memo);
        r = lb_a <= kGapNegInf ? kGapInf : -lb_a;
        break;
      }
      case EventKind::Delay:
        r = gapAdd(gapUbRec(n.preds[0], a, memo), n.delay);
        break;
      case EventKind::Send:
      case EventKind::Recv:
        // A dynamic sync may take arbitrarily long; a sync that is
        // static on both endpoints is bounded.
        if (n.max_sync >= 0)
            r = gapAdd(gapUbRec(n.preds[0], a, memo), n.max_sync);
        else
            r = kGapInf;
        break;
      case EventKind::Branch:
        r = gapUbRec(n.preds[0], a, memo);
        break;
      case EventKind::Join: {
        r = kGapNegInf;
        bool any = false;
        for (EventId p : n.preds) {
            if (dominatedPred(n, p))
                continue;
            any = true;
            r = std::max(r, gapUbRec(p, a, memo));
        }
        if (!any)
            r = kGapInf;
        break;
      }
      case EventKind::Merge: {
        // Whichever arm ran determines the merge time; the bound must
        // hold for every arm that can co-occur with `a`.
        r = kGapNegInf;
        bool any = false;
        for (EventId p : n.preds) {
            if (!compatible(p, a))
                continue;
            any = true;
            r = std::max(r, gapUbRec(p, a, memo));
        }
        if (!any)
            r = kGapInf;
        break;
      }
    }
    memo[key] = r;
    return r;
}

Gap
Ordering::gapLb(EventId b, EventId a)
{
    if (a == kNoEvent || b == kNoEvent)
        return kGapNegInf;
    auto memo = _final_lb.find({b, a});
    if (memo != _final_lb.end())
        return memo->second;
    // Combine: unwind b downward, or bound a from the other side.
    Gap direct = gapLbRec(b, a, _lb_memo);
    Gap via_swap = gapUbRec(a, b, _ub_memo);
    Gap swapped = via_swap >= kGapInf ? kGapNegInf : -via_swap;
    Gap r = std::max(direct, swapped);
    // Relate incomparable events through their common ancestors:
    // tau(b) - tau(a) >= LB(b - x) - UB(a - x).
    if (r <= kGapNegInf) {
        for (EventId x : commonAncestors(a, b)) {
            Gap ub_a = gapUbRec(a, x, _ub_memo);
            if (ub_a >= kGapInf)
                continue;
            Gap lb_b = gapLbRec(b, x, _lb_memo);
            r = std::max(r, gapAdd(lb_b, -ub_a));
        }
    }
    // Two distinct synchronizations of the same message are at least
    // one cycle apart: a valid/ack handshake completes one exchange
    // per cycle.
    if (r == 0 && a != b) {
        const EventNode &na = _g.node(a);
        const EventNode &nb = _g.node(b);
        bool a_sync = na.kind == EventKind::Send ||
            na.kind == EventKind::Recv;
        bool b_sync = nb.kind == EventKind::Send ||
            nb.kind == EventKind::Recv;
        if (a_sync && b_sync && na.endpoint == nb.endpoint &&
            na.msg == nb.msg && reaches(a, b)) {
            r = 1;
        }
    }
    _final_lb[{b, a}] = r;
    return r;
}

std::vector<EventId>
Ordering::commonAncestors(EventId a, EventId b)
{
    const auto &anc_a = ancestorsOf(a);
    const auto &anc_b = ancestorsOf(b);
    std::set<EventId> in_b(anc_b.begin(), anc_b.end());
    std::vector<EventId> out;
    for (EventId x : anc_a)
        if (in_b.count(x))
            out.push_back(x);
    return out;
}

Gap
Ordering::gapUb(EventId b, EventId a)
{
    if (a == kNoEvent || b == kNoEvent)
        return kGapInf;
    auto memo = _final_ub.find({b, a});
    if (memo != _final_ub.end())
        return memo->second;
    Gap direct = gapUbRec(b, a, _ub_memo);
    Gap via_swap = gapLbRec(a, b, _lb_memo);
    Gap swapped = via_swap <= kGapNegInf ? kGapInf : -via_swap;
    Gap r = std::min(direct, swapped);
    // Common-ancestor composition:
    // tau(b) - tau(a) <= UB(b - x) - LB(a - x).
    if (r >= kGapInf) {
        for (EventId x : commonAncestors(a, b)) {
            Gap ub_b = gapUbRec(b, x, _ub_memo);
            if (ub_b >= kGapInf)
                continue;
            Gap lb_a = gapLbRec(a, x, _lb_memo);
            if (lb_a <= kGapNegInf)
                continue;
            r = std::min(r, gapAdd(ub_b, -lb_a));
        }
    }
    _final_ub[{b, a}] = r;
    return r;
}

Gap
Ordering::lbFromRoot(EventId e)
{
    Gap r = gapLbRec(e, _g.root(), _lb_memo);
    return std::max<Gap>(r, 0);
}

Gap
Ordering::ubFromRoot(EventId e)
{
    return gapUbRec(e, _g.root(), _ub_memo);
}

// ---------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------

const std::map<int, bool> &
Ordering::contextOf(EventId e)
{
    auto it = _ctx_memo.find(e);
    if (it != _ctx_memo.end())
        return it->second;
    _ctx_memo[e];  // placeholder to terminate defensive cycles
    const EventNode &n = _g.node(e);
    std::map<int, bool> ctx;
    if (n.kind == EventKind::Merge && n.branch_pred != kNoEvent) {
        // Either arm may have run: only the branch point's facts hold.
        ctx = contextOf(n.branch_pred);
    } else if (!n.preds.empty()) {
        // A join fires only once every predecessor has fired, so the
        // union of their branch facts holds.
        ctx = contextOf(n.preds[0]);
        for (size_t i = 1; i < n.preds.size(); i++) {
            for (const auto &[cond, taken] : contextOf(n.preds[i]))
                ctx.emplace(cond, taken);
        }
    }
    if (n.kind == EventKind::Branch)
        ctx[n.cond_id] = n.cond_taken;
    _ctx_memo[e] = std::move(ctx);
    return _ctx_memo[e];
}

bool
Ordering::compatible(EventId a, EventId b)
{
    const auto &ca = contextOf(a);
    const auto &cb = contextOf(b);
    for (const auto &[cond, taken] : ca) {
        auto it = cb.find(cond);
        if (it != cb.end() && it->second != taken)
            return false;
    }
    return true;
}

bool
Ordering::guaranteedGiven(EventId n, EventId a, EventId b)
{
    const auto &cn = contextOf(n);
    const auto &ca = contextOf(a);
    const auto &cb = contextOf(b);
    for (const auto &[cond, taken] : cn) {
        auto ia = ca.find(cond);
        if (ia != ca.end() && ia->second == taken)
            continue;
        auto ib = cb.find(cond);
        if (ib != cb.end() && ib->second == taken)
            continue;
        return false;
    }
    return true;
}

const std::vector<EventId> &
Ordering::ancestorsOf(EventId node)
{
    auto it = _anc_memo.find(node);
    if (it == _anc_memo.end()) {
        // Collect all ancestors of `node` once (including itself).
        std::vector<EventId> all;
        std::vector<EventId> stack{node};
        std::map<EventId, bool> seen;
        while (!stack.empty()) {
            EventId e = stack.back();
            stack.pop_back();
            if (seen[e])
                continue;
            seen[e] = true;
            all.push_back(e);
            for (EventId p : _g.node(e).preds)
                stack.push_back(p);
        }
        it = _anc_memo.emplace(node, std::move(all)).first;
    }
    return it->second;
}

bool
Ordering::reaches(EventId anc, EventId node)
{
    if (anc == node)
        return true;
    const auto &all = ancestorsOf(node);
    return std::find(all.begin(), all.end(), anc) != all.end();
}

std::vector<EventId>
Ordering::messageEvents(const std::string &ep, const std::string &msg,
                        bool only_unconditional) const
{
    std::vector<EventId> out;
    for (EventId id : _g.liveEvents()) {
        const EventNode &n = _g.node(id);
        if ((n.kind == EventKind::Send || n.kind == EventKind::Recv) &&
            n.endpoint == ep && n.msg == msg &&
            (n.unconditional || !only_unconditional)) {
            out.push_back(id);
        }
    }
    return out;
}

Gap
Ordering::patUbFrom(const EventPattern &p, EventId anchor)
{
    if (p.kind == EventPattern::Kind::FixedAfter)
        return gapAdd(gapUb(p.base, anchor), p.cycles);

    // Message duration: bounded by any guaranteed occurrence at or
    // after the base event (Fig. 5 semantics: `req->res` matches the
    // res sync completing at or after the req sync).
    Gap best = kGapInf;
    for (EventId n : messageEvents(p.endpoint, p.msg, true)) {
        if (gapLb(n, p.base) >= 0 && !reaches(n, p.base))
            best = std::min(best, gapAdd(gapUb(n, anchor), p.cycles));
    }
    return best;
}

Gap
Ordering::patGapLb(const EventPattern &pb, const EventPattern &pa)
{
    // Lower bound of tau(pb) relative to a concrete event x.
    // Candidates incompatible with x cannot be the match in any run
    // in which x occurs.
    auto lb_from = [&](const EventPattern &p, EventId x) -> Gap {
        if (p.kind == EventPattern::Kind::FixedAfter)
            return gapAdd(gapLb(p.base, x), p.cycles);
        // Message duration: the match is one of the occurrences that
        // can lie at or after the base, so the minimum over that set
        // is a sound lower bound.  Conditional occurrences count: any
        // of them could be the match in some run.
        Gap m = kGapInf;   // no occurrence at all: never matches
        for (EventId n : messageEvents(p.endpoint, p.msg, false)) {
            if (gapUb(n, p.base) >= 0 && !reaches(n, p.base) &&
                compatible(n, x) && compatible(n, p.base)) {
                m = std::min(m, gapAdd(gapLb(n, x), p.cycles));
            }
        }
        return m;
    };

    if (pa.kind == EventPattern::Kind::FixedAfter)
        return gapAdd(lb_from(pb, pa.base), -pa.cycles);

    Gap best = kGapNegInf;

    // pa is a message pattern.  Monotonicity: the first occurrence
    // after an earlier base is never later.
    if (pb.kind == EventPattern::Kind::MessageAfter &&
        pa.endpoint == pb.endpoint && pa.msg == pb.msg &&
        gapLb(pb.base, pa.base) >= 0) {
        best = std::max(best, static_cast<Gap>(pb.cycles - pa.cycles));
    }

    // Bound tau(pa) from above by any occurrence of the message at or
    // after pa's base that is guaranteed to occur whenever pa's base
    // and pb's base do:  tau(pa) <= tau(n) + pa.cycles.
    for (EventId n : messageEvents(pa.endpoint, pa.msg, false)) {
        if (gapLb(n, pa.base) >= 0 && !reaches(n, pa.base) &&
            guaranteedGiven(n, pa.base, pb.base)) {
            best = std::max(best,
                            gapAdd(lb_from(pb, n), -pa.cycles));
        }
    }
    return best;
}

bool
Ordering::patLe(const EventPattern &pa, const EventPattern &pb)
{
    return patGapLb(pb, pa) >= 0;
}

bool
Ordering::eventLePat(EventId e, const EventPattern &p)
{
    return patLe(EventPattern::atEvent(e), p);
}

bool
Ordering::patLeEvent(const EventPattern &p, EventId e)
{
    return patLe(p, EventPattern::atEvent(e));
}

bool
Ordering::setLe(const PatternSet &sa, const PatternSet &sb)
{
    if (sb.eternal())
        return true;
    if (sa.eternal())
        return false;
    for (const auto &pb : sb.pats) {
        bool covered = false;
        for (const auto &pa : sa.pats) {
            if (patLe(pa, pb)) {
                covered = true;
                break;
            }
        }
        if (!covered)
            return false;
    }
    return true;
}

bool
Ordering::eventLeSet(EventId e, const PatternSet &s)
{
    for (const auto &p : s.pats)
        if (!eventLePat(e, p))
            return false;
    return true;
}

bool
Ordering::setLeEvent(const PatternSet &s, EventId e)
{
    if (s.eternal())
        return false;
    for (const auto &p : s.pats)
        if (patLeEvent(p, e))
            return true;
    return false;
}

bool
Ordering::setLtEvent(const PatternSet &s, EventId e)
{
    if (s.eternal())
        return false;
    for (const auto &p : s.pats)
        if (patGapLb(EventPattern::atEvent(e), p) >= 1)
            return true;
    return false;
}

} // namespace anvil
