/**
 * @file
 * Elaboration: builds the event graph for every thread of a process
 * and records the timing facts (value uses, register loans, sends)
 * that the type checker (src/types) verifies.
 *
 * Loop threads are unrolled for two iterations, which Lemma C.19 shows
 * is sufficient for the safety guarantee to extend to any number of
 * iterations.  Recursive threads unroll at their `recurse` point.
 */

#ifndef ANVIL_IR_ELABORATE_H
#define ANVIL_IR_ELABORATE_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/event_graph.h"
#include "ir/ordering.h"
#include "lang/ast.h"
#include "support/diag.h"

namespace anvil {

/**
 * A typed value flowing through a thread: where it becomes available,
 * when it expires (empty set = eternal), and which registers it
 * combinationally depends on.
 */
struct ValueInfo
{
    EventId create = kNoEvent;
    PatternSet end;                 // lifetime end (empty = eternal)
    std::set<std::string> regs;     // register dependency set
    int width = 0;                  // 0 = flexible (unsized literal)
    bool unit = false;              // carries no data

    static ValueInfo unitAt(EventId e);
};

/** Why a value is being consumed (selects the error message). */
enum class UseKind { Condition, AssignRhs, SendPayload };

/** One use of a value, to be validated against its lifetime. */
struct UseRecord
{
    ValueInfo value;
    UseKind kind = UseKind::Condition;
    EventId use_ev = kNoEvent;     // cycle of a point use / send init
    bool point = true;             // single-cycle use
    EventPattern required_end;     // for sends: contract expiry
    SrcLoc loc;
};

/** A register assignment site. */
struct AssignRecord
{
    std::string reg;
    EventId ev = kNoEvent;
    SrcLoc loc;
};

/** A message send site with its required (contract) window. */
struct SendRecord
{
    std::string endpoint;
    std::string msg;
    EventId init_ev = kNoEvent;    // when data/valid are first driven
    EventId done_ev = kNoEvent;    // sync completion event
    EventPattern expiry;           // contract window end
    SrcLoc loc;
};

/** A synchronization site (send or receive), for sync-mode checks. */
struct SyncRecord
{
    std::string endpoint;
    std::string msg;
    EventId ev = kNoEvent;
    bool is_send = false;
    SrcLoc loc;
};

/** Endpoint binding inside a process: which channel, which side. */
struct EndpointInfo
{
    const ChannelDef *chan = nullptr;
    EndpointSide side = EndpointSide::Left;
    bool is_param = false;         // exposed as module ports
    std::string peer;              // other endpoint name (local chans)
};

/** Everything elaboration learns about one thread. */
struct ThreadIR
{
    const ThreadDef *def = nullptr;
    EventGraph graph;
    EventId root = kNoEvent;
    EventId end_iter0 = kNoEvent;  // end of the first unrolled copy
    EventId end = kNoEvent;        // end of the second unrolled copy
    EventId recurse_ev = kNoEvent; // recursion point (recursives)

    std::vector<UseRecord> uses;
    std::vector<AssignRecord> assigns;
    std::vector<SendRecord> sends;
    std::vector<SyncRecord> syncs;

    /** Value annotation per term node (both unrolled copies). */
    std::map<const Term *, ValueInfo> values;

    /** Ident term -> the term its binding names. */
    std::map<const Term *, const Term *> ident_binding;

    /** Registers this thread assigns / reads. */
    std::set<std::string> regs_written;
    std::set<std::string> regs_read;
};

/** Elaborated process: endpoint table plus one ThreadIR per thread. */
struct ProcIR
{
    const ProcDef *def = nullptr;
    const Program *prog = nullptr;
    std::map<std::string, EndpointInfo> endpoints;
    std::vector<std::unique_ptr<ThreadIR>> threads;

    const EndpointInfo *findEndpoint(const std::string &name) const;

    /** Look up the contract of `ep.msg`; null and an error if absent. */
    const MessageDef *contract(const std::string &ep,
                               const std::string &msg) const;

    /** True when this process may send `ep.msg` (direction check). */
    bool canSend(const std::string &ep, const MessageDef &m) const;
};

/**
 * Elaborate a process: resolve endpoints, build per-thread event
 * graphs, and record all timing facts.  Errors are reported through
 * @p diags; elaboration is best-effort.
 *
 * @param unroll number of unrolled loop iterations: 2 for type
 *               checking (Lemma C.19), 1 for code generation.
 */
ProcIR elaborateProc(const Program &prog, const ProcDef &proc,
                     DiagEngine &diags, int unroll = 2);

} // namespace anvil

#endif // ANVIL_IR_ELABORATE_H
