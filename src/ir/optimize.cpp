#include "ir/optimize.h"

#include <algorithm>

#include "ir/ordering.h"

namespace anvil {

namespace {

/**
 * Pass (a): merge outbound edges with identical labels.  Two Delay
 * successors of the same predecessor with the same cycle count always
 * occur together, as do two identical Branch nodes.
 */
int
passMergeIdenticalEdges(EventGraph &g)
{
    int merged = 0;
    auto events = g.liveEvents();
    for (size_t i = 0; i < events.size(); i++) {
        for (size_t j = i + 1; j < events.size(); j++) {
            EventId a = events[i], b = events[j];
            if (g.isDead(a) || g.isDead(b))
                continue;
            const EventNode &na = g.node(a);
            const EventNode &nb = g.node(b);
            if (na.kind != nb.kind || na.preds != nb.preds)
                continue;
            bool same = false;
            switch (na.kind) {
              case EventKind::Delay:
                same = na.delay == nb.delay;
                break;
              case EventKind::Join:
                same = true;
                break;
              case EventKind::Branch:
                same = na.cond_id == nb.cond_id &&
                    na.cond_taken == nb.cond_taken;
                break;
              case EventKind::Merge:
                same = na.branch_pred == nb.branch_pred;
                break;
              default:
                // Send/Recv nodes represent distinct synchronizations
                // and are never merged.
                break;
            }
            if (same) {
                g.mergeInto(b, a);
                merged++;
            }
        }
    }
    return merged;
}

/**
 * Pass (b): remove unbalanced joins.  When one predecessor of a join
 * provably occurs no earlier than every other, the join always fires
 * with that predecessor and can be merged into it.
 */
int
passRemoveUnbalancedJoins(EventGraph &g)
{
    int merged = 0;
    for (EventId id : g.liveEvents()) {
        if (g.isDead(id))
            continue;
        const EventNode &n = g.node(id);
        if (n.kind != EventKind::Join)
            continue;
        if (n.preds.size() == 1) {
            EventId p = n.preds[0];
            g.mergeInto(id, p);
            merged++;
            continue;
        }
        Ordering ord(g);
        for (EventId latest : n.preds) {
            bool dominates = true;
            for (EventId other : n.preds) {
                if (other != latest && !ord.le(other, latest)) {
                    dominates = false;
                    break;
                }
            }
            if (dominates) {
                g.mergeInto(id, latest);
                merged++;
                break;
            }
        }
    }
    return merged;
}

/**
 * Pass (c): shift branch joins above identical trailing delays.  If
 * both arms of a merge end in an action-free `#N` delay, merge first
 * and delay once afterwards.
 */
int
passShiftBranchJoins(EventGraph &g)
{
    int merged = 0;
    auto succ = g.successors();
    for (EventId id : g.liveEvents()) {
        if (g.isDead(id))
            continue;
        EventNode &n = g.node(id);
        if (n.kind != EventKind::Merge || n.preds.size() != 2)
            continue;
        EventId a = n.preds[0], b = n.preds[1];
        if (a == b)
            continue;
        const EventNode &na = g.node(a);
        const EventNode &nb = g.node(b);
        if (na.kind != EventKind::Delay || nb.kind != EventKind::Delay)
            continue;
        if (na.delay != nb.delay || na.delay <= 0)
            continue;
        if (!na.actions.empty() || !nb.actions.empty())
            continue;
        // The delays must feed only this merge.
        if (succ[a].size() != 1 || succ[b].size() != 1)
            continue;
        int delay = na.delay;
        // Rewrite: merge directly joins the delay predecessors, and
        // this node becomes a single delay after the merge.
        EventId m2 = g.addMerge(na.preds[0], nb.preds[0], n.branch_pred);
        EventNode &nn = g.node(id);
        nn.kind = EventKind::Delay;
        nn.preds = {m2};
        nn.delay = delay;
        nn.branch_pred = kNoEvent;
        g.kill(a);
        g.kill(b);
        merged++;
        succ = g.successors();
    }
    return merged;
}

/**
 * Pass (d): remove joins of empty branches.  A merge whose two
 * predecessors are the action-free Branch nodes themselves always
 * fires with the branch point, so it merges into it.
 */
int
passRemoveBranchJoins(EventGraph &g)
{
    int merged = 0;
    auto succ = g.successors();
    for (EventId id : g.liveEvents()) {
        if (g.isDead(id))
            continue;
        const EventNode &n = g.node(id);
        if (n.kind != EventKind::Merge || n.preds.size() != 2)
            continue;
        EventId a = n.preds[0], b = n.preds[1];
        const EventNode &na = g.node(a);
        const EventNode &nb = g.node(b);
        if (na.kind != EventKind::Branch || nb.kind != EventKind::Branch)
            continue;
        if (na.preds[0] != nb.preds[0])
            continue;
        if (!na.actions.empty() || !nb.actions.empty())
            continue;
        if (succ[a].size() != 1 || succ[b].size() != 1)
            continue;
        EventId r = na.preds[0];
        g.mergeInto(id, r);
        g.kill(a);
        g.kill(b);
        merged++;
        succ = g.successors();
    }
    return merged;
}

} // namespace

OptStats
optimizeEventGraph(EventGraph &graph, unsigned enabled)
{
    OptStats stats;
    stats.before = graph.liveCount();
    stats.merged_by_pass = {{"a", 0}, {"b", 0}, {"c", 0}, {"d", 0}};

    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
        changed = false;
        if (enabled & 1) {
            int n = passMergeIdenticalEdges(graph);
            stats.merged_by_pass["a"] += n;
            changed = changed || n > 0;
        }
        if (enabled & 2) {
            int n = passRemoveUnbalancedJoins(graph);
            stats.merged_by_pass["b"] += n;
            changed = changed || n > 0;
        }
        if (enabled & 4) {
            int n = passShiftBranchJoins(graph);
            stats.merged_by_pass["c"] += n;
            changed = changed || n > 0;
        }
        if (enabled & 8) {
            int n = passRemoveBranchJoins(graph);
            stats.merged_by_pass["d"] += n;
            changed = changed || n > 0;
        }
    }
    stats.after = graph.liveCount();
    return stats;
}

} // namespace anvil
