#include "ir/elaborate.h"

#include <algorithm>

#include "support/strings.h"

namespace anvil {

ValueInfo
ValueInfo::unitAt(EventId e)
{
    ValueInfo v;
    v.create = e;
    v.unit = true;
    return v;
}

const EndpointInfo *
ProcIR::findEndpoint(const std::string &name) const
{
    auto it = endpoints.find(name);
    return it != endpoints.end() ? &it->second : nullptr;
}

const MessageDef *
ProcIR::contract(const std::string &ep, const std::string &msg) const
{
    const EndpointInfo *info = findEndpoint(ep);
    if (!info || !info->chan)
        return nullptr;
    return info->chan->findMessage(msg);
}

bool
ProcIR::canSend(const std::string &ep, const MessageDef &m) const
{
    const EndpointInfo *info = findEndpoint(ep);
    if (!info)
        return false;
    // The holder of the left endpoint sends right-travelling messages
    // and receives left-travelling ones (paper §4.1), and vice versa.
    if (info->side == EndpointSide::Left)
        return m.dir == MsgDir::Right;
    return m.dir == MsgDir::Left;
}

namespace {

/**
 * Walks a thread body, constructing the event graph and recording all
 * uses, loans-to-be, assignments and sends.
 */
class ThreadElaborator
{
  public:
    ThreadElaborator(const ProcIR &pir, ThreadIR &out, DiagEngine &diags,
                     int unroll)
        : _pir(pir), _ir(out), _diags(diags), _unroll(unroll)
    {
    }

    void run(const ThreadDef &thread);

  private:
    struct Result
    {
        EventId end = kNoEvent;
        ValueInfo value;
    };

    Result elab(const Term &t, EventId cur);
    Result elabLiteral(const Term &t, EventId cur);
    Result elabIdent(const Term &t, EventId cur);
    Result elabRegRead(const Term &t, EventId cur);
    Result elabSet(const Term &t, EventId cur);
    Result elabSend(const Term &t, EventId cur);
    Result elabRecv(const Term &t, EventId cur);
    Result elabIf(const Term &t, EventId cur);
    Result elabBinop(const Term &t, EventId cur);

    /** Resolve the duration of a message contract to a pattern. */
    EventPattern contractPattern(const std::string &ep,
                                 const MessageDef &m, EventId anchor);

    void recordPointUse(const ValueInfo &v, UseKind kind, EventId ev,
                        SrcLoc loc);

    ValueInfo &remember(const Term &t, Result r)
    {
        _ir.values[&t] = r.value;
        return _ir.values[&t];
    }

    const ProcIR &_pir;
    ThreadIR &_ir;
    DiagEngine &_diags;
    int _unroll;

    /** Lexically scoped let bindings: name -> (value, defining term). */
    std::vector<std::map<std::string,
                         std::pair<ValueInfo, const Term *>>> _scopes;

    void pushScope() { _scopes.emplace_back(); }
    void popScope() { _scopes.pop_back(); }
    void bind(const std::string &n, const ValueInfo &v, const Term *t);
    const std::pair<ValueInfo, const Term *> *
    lookup(const std::string &n) const;
};

void
ThreadElaborator::bind(const std::string &n, const ValueInfo &v,
                       const Term *t)
{
    _scopes.back()[n] = {v, t};
}

const std::pair<ValueInfo, const Term *> *
ThreadElaborator::lookup(const std::string &n) const
{
    for (auto it = _scopes.rbegin(); it != _scopes.rend(); ++it) {
        auto f = it->find(n);
        if (f != it->end())
            return &f->second;
    }
    return nullptr;
}

EventPattern
ThreadElaborator::contractPattern(const std::string &ep,
                                  const MessageDef &m, EventId anchor)
{
    if (m.lifetime.kind == Duration::Kind::Cycles)
        return EventPattern::fixed(anchor, m.lifetime.cycles);
    return EventPattern::message(anchor, ep, m.lifetime.msg,
                                 m.lifetime.cycles);
}

namespace {

/** Sync mode of the sender / receiver side of a message. */
const SyncMode &
senderSyncOf(const MessageDef &m)
{
    return m.dir == MsgDir::Right ? m.left_sync : m.right_sync;
}

const SyncMode &
receiverSyncOf(const MessageDef &m)
{
    return m.dir == MsgDir::Right ? m.right_sync : m.left_sync;
}

/** Worst-case extra wait for a sync, given the peer's mode. */
int
syncBound(const SyncMode &peer)
{
    switch (peer.kind) {
      case SyncMode::Kind::Static:
        return std::max(0, peer.cycles - 1);
      case SyncMode::Kind::Dependent:
        return std::max(0, peer.cycles);
      case SyncMode::Kind::Dynamic:
        // A `@dyn#N` readiness bound is deliberately NOT used here:
        // the checker may not trust an unverified promise, so
        // bounded-dynamic syncs stay unbounded for timing checks.
        // The bound's consumer is the formal subsystem, which turns
        // it into an `ack within N` obligation and *proves* it
        // (src/formal/contracts.h).
        return -1;
    }
    return -1;
}

} // namespace

void
ThreadElaborator::recordPointUse(const ValueInfo &v, UseKind kind,
                                 EventId ev, SrcLoc loc)
{
    if (v.unit)
        return;
    UseRecord u;
    u.value = v;
    u.kind = kind;
    u.use_ev = ev;
    u.point = true;
    u.loc = loc;
    _ir.uses.push_back(std::move(u));
}

ThreadElaborator::Result
ThreadElaborator::elabLiteral(const Term &t, EventId cur)
{
    ValueInfo v;
    v.create = cur;
    v.width = t.width;  // 0 when unsized
    return {cur, v};
}

ThreadElaborator::Result
ThreadElaborator::elabIdent(const Term &t, EventId cur)
{
    const auto *binding = lookup(t.name);
    if (!binding) {
        _diags.error(strfmt("unknown identifier '%s'", t.name.c_str()),
                     t.loc);
        return {cur, ValueInfo::unitAt(cur)};
    }
    _ir.ident_binding[&t] = binding->second;
    ValueInfo v = binding->first;
    // T-Ref: the landing event is the #0 join of the current event and
    // the binding's availability (waiting for the value if needed).
    EventId landing = cur;
    if (v.create != cur)
        landing = _ir.graph.addJoin({cur, v.create});
    return {landing, v};
}

ThreadElaborator::Result
ThreadElaborator::elabRegRead(const Term &t, EventId cur)
{
    const RegDef *rd = _pir.def->findReg(t.name);
    if (!rd) {
        _diags.error(strfmt("unknown register '%s'", t.name.c_str()),
                     t.loc);
        return {cur, ValueInfo::unitAt(cur)};
    }
    _ir.regs_read.insert(t.name);
    ValueInfo v;
    v.create = cur;
    v.regs.insert(t.name);
    v.width = _pir.prog->typeWidth(rd->dtype, rd->width);
    return {cur, v};
}

ThreadElaborator::Result
ThreadElaborator::elabSet(const Term &t, EventId cur)
{
    const RegDef *rd = _pir.def->findReg(t.name);
    if (!rd)
        _diags.error(strfmt("unknown register '%s'", t.name.c_str()),
                     t.loc);
    _ir.regs_written.insert(t.name);

    Result rhs = elab(*t.kids[0], cur);
    EventId ec = rhs.end;
    recordPointUse(rhs.value, UseKind::AssignRhs, ec, t.loc);
    _ir.assigns.push_back({t.name, ec, t.loc});

    EventAction act;
    act.kind = EventAction::Kind::AssignReg;
    act.reg = t.name;
    act.value = t.kids[0].get();
    act.loc = t.loc;
    _ir.graph.node(ec).actions.push_back(act);

    EventId done = _ir.graph.addDelay(ec, 1);
    return {done, ValueInfo::unitAt(done)};
}

ThreadElaborator::Result
ThreadElaborator::elabSend(const Term &t, EventId cur)
{
    const MessageDef *m = _pir.contract(t.endpoint, t.msg);
    if (!m) {
        _diags.error(strfmt("unknown message '%s.%s'",
                            t.endpoint.c_str(), t.msg.c_str()), t.loc);
        return {cur, ValueInfo::unitAt(cur)};
    }
    if (!_pir.canSend(t.endpoint, *m)) {
        _diags.error(strfmt("message '%s.%s' cannot be sent from this "
                            "endpoint (wrong direction)",
                            t.endpoint.c_str(), t.msg.c_str()), t.loc);
    }

    Result payload = elab(*t.kids[0], cur);
    EventId init = payload.end;
    EventId done = _ir.graph.addSend(init, t.endpoint, t.msg);

    // A send's completion is bounded by the receiver's readiness when
    // the receiver has a non-dynamic sync mode.
    _ir.graph.node(done).max_sync = syncBound(receiverSyncOf(*m));

    EventPattern expiry = contractPattern(t.endpoint, *m, done);
    _ir.sends.push_back({t.endpoint, t.msg, init, done, expiry, t.loc});
    _ir.syncs.push_back({t.endpoint, t.msg, done, true, t.loc});

    if (!payload.value.unit) {
        UseRecord u;
        u.value = payload.value;
        u.kind = UseKind::SendPayload;
        u.use_ev = init;
        u.point = false;
        u.required_end = expiry;
        u.loc = t.loc;
        _ir.uses.push_back(std::move(u));
    } else {
        _diags.error("message payload carries no value", t.loc);
    }

    EventAction act;
    act.kind = EventAction::Kind::SendData;
    act.endpoint = t.endpoint;
    act.msg = t.msg;
    act.value = t.kids[0].get();
    act.loc = t.loc;
    _ir.graph.node(done).actions.push_back(act);

    return {done, ValueInfo::unitAt(done)};
}

ThreadElaborator::Result
ThreadElaborator::elabRecv(const Term &t, EventId cur)
{
    const MessageDef *m = _pir.contract(t.endpoint, t.msg);
    if (!m) {
        _diags.error(strfmt("unknown message '%s.%s'",
                            t.endpoint.c_str(), t.msg.c_str()), t.loc);
        return {cur, ValueInfo::unitAt(cur)};
    }
    if (_pir.canSend(t.endpoint, *m)) {
        _diags.error(strfmt("message '%s.%s' cannot be received at this "
                            "endpoint (wrong direction)",
                            t.endpoint.c_str(), t.msg.c_str()), t.loc);
    }

    EventId done = _ir.graph.addRecv(cur, t.endpoint, t.msg);
    // A receive's completion is bounded by the sender's sync mode.
    _ir.graph.node(done).max_sync = syncBound(senderSyncOf(*m));
    _ir.syncs.push_back({t.endpoint, t.msg, done, false, t.loc});

    EventAction act;
    act.kind = EventAction::Kind::RecvData;
    act.endpoint = t.endpoint;
    act.msg = t.msg;
    act.loc = t.loc;
    _ir.graph.node(done).actions.push_back(act);

    ValueInfo v;
    v.create = done;
    v.end = PatternSet::one(contractPattern(t.endpoint, *m, done));
    v.width = _pir.prog->typeWidth(m->dtype, m->width_expr);
    return {done, v};
}

ThreadElaborator::Result
ThreadElaborator::elabIf(const Term &t, EventId cur)
{
    Result cond = elab(*t.kids[0], cur);
    EventId ec = cond.end;
    recordPointUse(cond.value, UseKind::Condition, ec, t.loc);

    int cid = _ir.graph.freshCond();
    EventId bt = _ir.graph.addBranch(ec, cid, true);
    EventId bf = _ir.graph.addBranch(ec, cid, false);
    _ir.graph.node(bt).cond_term = t.kids[0].get();
    _ir.graph.node(bf).cond_term = t.kids[0].get();

    pushScope();
    Result then_r = elab(*t.kids[1], bt);
    popScope();

    Result else_r{bf, ValueInfo::unitAt(bf)};
    if (t.kids.size() > 2) {
        pushScope();
        else_r = elab(*t.kids[2], bf);
        popScope();
    }

    EventId m = _ir.graph.addMerge(then_r.end, else_r.end, ec);

    ValueInfo v;
    v.create = m;
    v.unit = then_r.value.unit && else_r.value.unit;
    v.end = cond.value.end;
    v.end.merge(then_r.value.end);
    v.end.merge(else_r.value.end);
    for (const auto &r : cond.value.regs)
        v.regs.insert(r);
    for (const auto &r : then_r.value.regs)
        v.regs.insert(r);
    for (const auto &r : else_r.value.regs)
        v.regs.insert(r);
    v.width = std::max(then_r.value.width, else_r.value.width);
    return {m, v};
}

ThreadElaborator::Result
ThreadElaborator::elabBinop(const Term &t, EventId cur)
{
    Result a = elab(*t.kids[0], cur);
    Result b = elab(*t.kids[1], cur);
    EventId e = a.end;
    if (a.end != b.end)
        e = _ir.graph.addJoin({a.end, b.end});

    ValueInfo v;
    v.create = e;
    v.end = a.value.end;
    v.end.merge(b.value.end);
    for (const auto &r : a.value.regs)
        v.regs.insert(r);
    for (const auto &r : b.value.regs)
        v.regs.insert(r);
    bool cmp = t.op == "==" || t.op == "!=" || t.op == "<" ||
        t.op == ">" || t.op == "<=" || t.op == ">=";
    v.width = cmp ? 1 : std::max(a.value.width, b.value.width);
    return {e, v};
}

ThreadElaborator::Result
ThreadElaborator::elab(const Term &t, EventId cur)
{
    Result r;
    switch (t.kind) {
      case TermKind::Literal:
        r = elabLiteral(t, cur);
        break;
      case TermKind::Ident:
        r = elabIdent(t, cur);
        break;
      case TermKind::RegRead:
        r = elabRegRead(t, cur);
        break;
      case TermKind::Let: {
        Result rhs = elab(*t.kids[0], cur);
        bind(t.name, rhs.value, t.kids[0].get());
        r = rhs;
        break;
      }
      case TermKind::Set:
        r = elabSet(t, cur);
        break;
      case TermKind::Send:
        r = elabSend(t, cur);
        break;
      case TermKind::Recv:
        r = elabRecv(t, cur);
        break;
      case TermKind::Ready: {
        ValueInfo v;
        v.create = cur;
        v.end = PatternSet::one(EventPattern::fixed(cur, 1));
        v.width = 1;
        r = {cur, v};
        break;
      }
      case TermKind::Cycle: {
        EventId e = _ir.graph.addDelay(cur, t.cycles);
        r = {e, ValueInfo::unitAt(e)};
        break;
      }
      case TermKind::If:
        r = elabIf(t, cur);
        break;
      case TermKind::Binop:
        r = elabBinop(t, cur);
        break;
      case TermKind::Unop: {
        Result a = elab(*t.kids[0], cur);
        ValueInfo v = a.value;
        v.create = a.end;
        if (t.op == "!")
            v.width = 1;
        r = {a.end, v};
        break;
      }
      case TermKind::Call: {
        // Intrinsics behave like combinational operators: evaluate
        // all arguments in parallel and merge their lifetimes.
        std::vector<Result> args;
        std::vector<EventId> ends;
        for (const auto &k : t.kids) {
            args.push_back(elab(*k, cur));
            ends.push_back(args.back().end);
        }
        EventId e = ends[0];
        for (EventId x : ends)
            if (x != e)
                e = _ir.graph.addJoin(ends);
        ValueInfo v;
        v.create = e;
        for (const auto &a : args) {
            v.end.merge(a.value.end);
            for (const auto &reg : a.value.regs)
                v.regs.insert(reg);
        }
        if (t.name == "sbox" && t.kids.size() == 1) {
            v.width = 8;
        } else if (t.name == "shr" && t.kids.size() == 2) {
            v.width = args[0].value.width;
        } else {
            _diags.error(strfmt("unknown intrinsic '%s'/%zu",
                                t.name.c_str(), t.kids.size()), t.loc);
        }
        r = {e, v};
        break;
      }
      case TermKind::Slice: {
        Result a = elab(*t.kids[0], cur);
        ValueInfo v = a.value;
        v.create = a.end;
        v.width = t.hi - t.lo + 1;
        r = {a.end, v};
        break;
      }
      case TermKind::Wait: {
        Result a = elab(*t.kids[0], cur);
        r = elab(*t.kids[1], a.end);
        break;
      }
      case TermKind::Join: {
        Result a = elab(*t.kids[0], cur);
        Result b = elab(*t.kids[1], cur);
        EventId e = a.end == b.end ? a.end
            : _ir.graph.addJoin({a.end, b.end});
        ValueInfo v = b.value;
        v.create = e;
        r = {e, v};
        break;
      }
      case TermKind::Recurse: {
        if (_ir.recurse_ev == kNoEvent)
            _ir.recurse_ev = cur;
        r = {cur, ValueInfo::unitAt(cur)};
        break;
      }
      case TermKind::DPrint: {
        EventAction act;
        act.kind = EventAction::Kind::DPrint;
        act.text = t.text;
        act.loc = t.loc;
        _ir.graph.node(cur).actions.push_back(act);
        r = {cur, ValueInfo::unitAt(cur)};
        break;
      }
    }
    remember(t, r);
    return r;
}

void
ThreadElaborator::run(const ThreadDef &thread)
{
    _ir.def = &thread;
    _ir.root = _ir.graph.addRoot();

    // First unrolled copy.
    pushScope();
    _ir.recurse_ev = kNoEvent;
    Result first = elab(*thread.body, _ir.root);
    popScope();
    _ir.end_iter0 = first.end;

    EventId second_root;
    if (thread.recursive) {
        if (_ir.recurse_ev == kNoEvent) {
            _diags.error("recursive thread never recurses", thread.loc);
            _ir.recurse_ev = first.end;
        }
        second_root = _ir.recurse_ev;
    } else {
        second_root = first.end;
    }
    _ir.graph.setIterBoundary(second_root);

    if (_unroll < 2) {
        _ir.end = first.end;
        return;
    }

    int watermark = _ir.graph.size();

    // Second unrolled copy (Lemma C.19: two iterations suffice).
    pushScope();
    EventId saved_recurse = _ir.recurse_ev;
    Result second = elab(*thread.body, second_root);
    popScope();
    _ir.recurse_ev = saved_recurse;
    _ir.end = second.end;

    for (int i = watermark; i < _ir.graph.size(); i++)
        _ir.graph.node(i).iteration = 1;
}

} // namespace

ProcIR
elaborateProc(const Program &prog, const ProcDef &proc, DiagEngine &diags,
              int unroll)
{
    ProcIR pir;
    pir.def = &proc;
    pir.prog = &prog;

    for (const auto &p : proc.params) {
        EndpointInfo info;
        info.chan = prog.findChannel(p.chan_type);
        info.side = p.side;
        info.is_param = true;
        if (!info.chan) {
            diags.error(strfmt("unknown channel type '%s'",
                               p.chan_type.c_str()), p.loc);
        }
        if (pir.endpoints.count(p.name))
            diags.error(strfmt("duplicate endpoint '%s'",
                               p.name.c_str()), p.loc);
        pir.endpoints[p.name] = info;
    }
    for (const auto &c : proc.chans) {
        const ChannelDef *chan = prog.findChannel(c.chan_type);
        if (!chan) {
            diags.error(strfmt("unknown channel type '%s'",
                               c.chan_type.c_str()), c.loc);
        }
        EndpointInfo l;
        l.chan = chan;
        l.side = EndpointSide::Left;
        l.peer = c.right_ep;
        EndpointInfo r;
        r.chan = chan;
        r.side = EndpointSide::Right;
        r.peer = c.left_ep;
        pir.endpoints[c.left_ep] = l;
        pir.endpoints[c.right_ep] = r;
    }

    for (const auto &t : proc.threads) {
        auto tir = std::make_unique<ThreadIR>();
        ThreadElaborator elab(pir, *tir, diags, unroll);
        elab.run(t);
        pir.threads.push_back(std::move(tir));
    }
    return pir;
}

} // namespace anvil
