/**
 * @file
 * Event-graph optimization passes (paper §6.1, Fig. 8).
 *
 * Each pass merges events that provably occur at the same time,
 * shrinking the FSM the back-end generates:
 *
 *   (a) merge successors reached from the same event by identical
 *       fixed-delay edges;
 *   (b) remove unbalanced joins (one predecessor always no earlier
 *       than the other);
 *   (c) shift a branch join above identical trailing delays of both
 *       arms;
 *   (d) remove joins of two empty branch arms entirely.
 */

#ifndef ANVIL_IR_OPTIMIZE_H
#define ANVIL_IR_OPTIMIZE_H

#include <map>
#include <string>

#include "ir/event_graph.h"

namespace anvil {

/** Per-pass statistics for the Fig. 8 ablation bench. */
struct OptStats
{
    int before = 0;                  ///< live events before optimizing
    int after = 0;                   ///< live events after optimizing
    std::map<std::string, int> merged_by_pass;

    int removed() const { return before - after; }
};

/**
 * Run all optimization passes to a fixpoint.
 *
 * @param graph the event graph to rewrite in place
 * @param enabled bitmask over {a=1, b=2, c=4, d=8}; default all
 * @return per-pass statistics
 */
OptStats optimizeEventGraph(EventGraph &graph, unsigned enabled = 0xf);

} // namespace anvil

#endif // ANVIL_IR_OPTIMIZE_H
