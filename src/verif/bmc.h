/**
 * @file
 * Explicit-state bounded model checker over the RTL IR (Appendix A).
 *
 * Checks safety properties of the form "assertion expression is true
 * whenever its enable expression is true" by exploring the reachable
 * register-state space breadth-first up to a depth bound, with
 * nondeterministic top-level inputs.
 *
 * This substrate reproduces the paper's comparison: on designs with
 * wide counters (Listing 2's 32-bit counter), the reachable state
 * space explodes and BMC exhausts its budget without reaching the
 * violating states, while Anvil's type checker rejects the same
 * design structurally in microseconds.
 *
 * The formal subsystem (src/formal/kinduction.h) layers a
 * cone-of-influence-projected k-induction prover on this same
 * exploration substrate; for contract-shaped properties it closes
 * unboundedly on exactly the designs that exhaust this checker
 * (bench_formal_prove reproduces the comparison).
 */

#ifndef ANVIL_VERIF_BMC_H
#define ANVIL_VERIF_BMC_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/interp.h"
#include "rtl/rtl.h"

namespace anvil {

namespace obs {
class TraceProfiler;
class MetricsRegistry;
} // namespace obs

namespace verif {

/** A checked property: when `enable` holds, `expr` must hold. */
struct Assertion
{
    std::string name;
    rtl::ExprPtr enable;
    rtl::ExprPtr expr;
};

/** Outcome of a bounded model-checking run. */
struct BmcResult
{
    enum class Status { Proved, Violated, BoundReached, BudgetExhausted };

    Status status = Status::BoundReached;
    int depth_reached = 0;
    uint64_t states_explored = 0;
    std::string violated_assertion;
    std::vector<std::string> trace;   // input vectors along the cex

    bool foundViolation() const { return status == Status::Violated; }
    std::string statusStr() const;
};

/** Knobs for the exploration. */
struct BmcOptions
{
    int max_depth = 32;
    uint64_t max_states = 200000;
    /** Bits per input sampled nondeterministically (the rest 0). */
    int input_bits_limit = 4;
    /** Sweep strategy for the underlying simulator.  All modes
     *  explore identical state spaces (pinned by the differential
     *  tests); Dirty is fastest for the restore-poke-step pattern. */
    rtl::SweepMode sweep_mode = rtl::SweepMode::Dirty;
    int sweep_threads = 0;
    /** Optional compiled kernel (codegen/jit.h) for the simulator.
     *  Attach failures fall back to the interpreter silently; the
     *  explored state space is identical either way. */
    rtl::KernelRef kernel;
    /** Optional telemetry sinks (both may be null).  The exploration
     *  window lands on a "bmc" profiler track; bmc.states /
     *  bmc.frontier_peak counters and a bmc.states_per_sec gauge go
     *  to the registry. */
    obs::TraceProfiler *profiler = nullptr;
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * Explore the design from its reset state.  Inputs take all
 * combinations of their low `input_bits_limit` bits each step.
 */
BmcResult boundedModelCheck(const std::shared_ptr<const rtl::Module> &top,
                            const std::vector<Assertion> &asserts,
                            const BmcOptions &opts = {});

} // namespace verif
} // namespace anvil

#endif // ANVIL_VERIF_BMC_H
