#include "verif/bmc.h"

#include <deque>
#include <map>

#include "rtl/interp.h"

namespace anvil {
namespace verif {

namespace {

/** Flattened register snapshot, hashable as a string. */
std::string
snapshot(rtl::Sim &sim, const std::vector<std::string> &regs)
{
    std::string key;
    for (const auto &r : regs) {
        key += sim.regValue(r).toHex();
        key += '|';
    }
    return key;
}

void
restore(rtl::Sim &sim, const std::vector<std::string> &regs,
        const std::vector<BitVec> &vals)
{
    for (size_t i = 0; i < regs.size(); i++)
        sim.setRegValue(regs[i], vals[i]);
}

std::vector<BitVec>
capture(rtl::Sim &sim, const std::vector<std::string> &regs)
{
    std::vector<BitVec> vals;
    vals.reserve(regs.size());
    for (const auto &r : regs)
        vals.push_back(sim.regValue(r));
    return vals;
}

} // namespace

std::string
BmcResult::statusStr() const
{
    switch (status) {
      case Status::Proved: return "proved (state space exhausted)";
      case Status::Violated: return "VIOLATED";
      case Status::BoundReached: return "bound reached, no violation";
      case Status::BudgetExhausted:
        return "state budget exhausted, no violation";
    }
    return "?";
}

BmcResult
boundedModelCheck(const std::shared_ptr<const rtl::Module> &top,
                  const std::vector<Assertion> &asserts,
                  const BmcOptions &opts)
{
    rtl::Sim sim(top);
    auto regs = sim.regNames();
    auto inputs = sim.inputNames();

    // Enumerate input vectors: each input contributes its low
    // input_bits_limit bits; the cross product is capped.
    int total_bits = 0;
    for (const auto &in : inputs) {
        (void)in;
        total_bits += opts.input_bits_limit;
    }
    total_bits = std::min(total_bits, 12);
    uint64_t combos = 1ull << total_bits;

    struct Node
    {
        std::vector<BitVec> regs;
        int depth;
    };

    BmcResult result;
    std::deque<Node> frontier;
    std::map<std::string, bool> seen;

    frontier.push_back({capture(sim, regs), 0});
    seen[snapshot(sim, regs)] = true;

    bool hit_bound = false;
    while (!frontier.empty()) {
        Node node = std::move(frontier.front());
        frontier.pop_front();
        result.depth_reached = std::max(result.depth_reached,
                                        node.depth);
        if (node.depth >= opts.max_depth) {
            hit_bound = true;
            continue;
        }

        for (uint64_t combo = 0; combo < combos; combo++) {
            restore(sim, regs, node.regs);
            uint64_t bits = combo;
            for (const auto &in : inputs) {
                uint64_t v = bits &
                    ((1ull << opts.input_bits_limit) - 1);
                bits >>= opts.input_bits_limit;
                sim.setInput(in, v);
            }

            // Check assertions in this combinational frame.
            for (const auto &a : asserts) {
                if (sim.evalTop(a.enable).any() &&
                    !sim.evalTop(a.expr).any()) {
                    result.status = BmcResult::Status::Violated;
                    result.violated_assertion = a.name;
                    result.states_explored = seen.size();
                    return result;
                }
            }

            sim.step();
            result.states_explored++;
            std::string key = snapshot(sim, regs);
            if (!seen.count(key)) {
                if (seen.size() >= opts.max_states) {
                    result.status =
                        BmcResult::Status::BudgetExhausted;
                    result.states_explored = seen.size();
                    return result;
                }
                seen[key] = true;
                frontier.push_back({capture(sim, regs),
                                    node.depth + 1});
            }
        }
    }

    result.status = hit_bound ? BmcResult::Status::BoundReached
                              : BmcResult::Status::Proved;
    result.states_explored = seen.size();
    return result;
}

} // namespace verif
} // namespace anvil
