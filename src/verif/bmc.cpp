#include "verif/bmc.h"

#include <deque>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "rtl/interp.h"
#include "support/hash.h"

namespace anvil {
namespace verif {

namespace {

/**
 * Flattened register snapshot packed as raw BitVec words over the
 * interned register table — no string rendering on the exploration
 * hot path.  Register order and widths are fixed for one design, so
 * the packed words identify a state exactly (keys are compared for
 * full equality; the hash below is only the table probe).
 */
std::vector<uint64_t>
packState(const std::vector<BitVec> &regs)
{
    std::vector<uint64_t> words;
    for (const auto &r : regs) {
        words.reserve(words.size() +
                      static_cast<size_t>(r.words()));
        for (int w = 0; w < r.words(); w++)
            words.push_back(r.word(w));
    }
    return words;
}

using StateSet =
    std::unordered_set<std::vector<uint64_t>, PackedWordsHash>;

} // namespace

std::string
BmcResult::statusStr() const
{
    switch (status) {
      case Status::Proved: return "proved (state space exhausted)";
      case Status::Violated: return "VIOLATED";
      case Status::BoundReached: return "bound reached, no violation";
      case Status::BudgetExhausted:
        return "state budget exhausted, no violation";
    }
    return "?";
}

namespace {

/** Scope guard stamping the exploration's telemetry on every return
 *  path: the "bmc" profiler window, state totals, frontier peak, and
 *  throughput. */
struct BmcTelemetry
{
    const BmcOptions &opts;
    const BmcResult &result;
    uint64_t t0 = 0;
    uint64_t frontier_peak = 0;

    BmcTelemetry(const BmcOptions &o, const BmcResult &r)
        : opts(o), result(r)
    {
        if (opts.profiler || opts.metrics)
            t0 = rtl::monotonicNanos();
    }

    ~BmcTelemetry()
    {
        if (!opts.profiler && !opts.metrics)
            return;
        uint64_t t1 = rtl::monotonicNanos();
        if (opts.profiler)
            opts.profiler->event(opts.profiler->track("bmc"),
                                 "explore", t0, t1,
                                 result.states_explored);
        if (opts.metrics) {
            obs::MetricsRegistry &m = *opts.metrics;
            m.counter("bmc.states") += result.states_explored;
            uint64_t &peak = m.counter("bmc.frontier_peak");
            peak = std::max(peak, frontier_peak);
            double secs = static_cast<double>(t1 - t0) * 1e-9;
            m.gauge("bmc.states_per_sec") = secs > 0.0
                ? static_cast<double>(result.states_explored) / secs
                : 0.0;
        }
    }
};

} // namespace

BmcResult
boundedModelCheck(const std::shared_ptr<const rtl::Module> &top,
                  const std::vector<Assertion> &asserts,
                  const BmcOptions &opts)
{
    rtl::Sim sim(top);
    if (opts.sweep_mode != rtl::SweepMode::Dirty)
        sim.setSweepMode(opts.sweep_mode, opts.sweep_threads,
                         /*shard_min=*/64);
    if (opts.kernel.abi)
        sim.attachKernel(opts.kernel);
    auto inputs = sim.inputNames();

    // Enumerate input vectors: each input contributes its low
    // input_bits_limit bits; the cross product is capped.
    int total_bits = 0;
    for (const auto &in : inputs) {
        (void)in;
        total_bits += opts.input_bits_limit;
    }
    total_bits = std::min(total_bits, 12);
    uint64_t combos = 1ull << total_bits;

    struct Node
    {
        std::vector<BitVec> regs;
        int depth;
    };

    BmcResult result;
    BmcTelemetry telemetry(opts, result);
    std::deque<Node> frontier;
    StateSet seen;

    frontier.push_back({sim.captureRegs(), 0});
    seen.insert(packState(frontier.back().regs));

    bool hit_bound = false;
    while (!frontier.empty()) {
        Node node = std::move(frontier.front());
        frontier.pop_front();
        result.depth_reached = std::max(result.depth_reached,
                                        node.depth);
        if (node.depth >= opts.max_depth) {
            hit_bound = true;
            continue;
        }

        for (uint64_t combo = 0; combo < combos; combo++) {
            sim.restoreRegs(node.regs);
            uint64_t bits = combo;
            for (const auto &in : inputs) {
                uint64_t v = bits &
                    ((1ull << opts.input_bits_limit) - 1);
                bits >>= opts.input_bits_limit;
                sim.setInput(in, v);
            }

            // Check assertions in this combinational frame.
            for (const auto &a : asserts) {
                if (sim.evalTop(a.enable).any() &&
                    !sim.evalTop(a.expr).any()) {
                    result.status = BmcResult::Status::Violated;
                    result.violated_assertion = a.name;
                    result.states_explored = seen.size();
                    return result;
                }
            }

            sim.step();
            result.states_explored++;
            std::vector<BitVec> next = sim.captureRegs();
            std::vector<uint64_t> key = packState(next);
            if (!seen.count(key)) {
                if (seen.size() >= opts.max_states) {
                    result.status =
                        BmcResult::Status::BudgetExhausted;
                    result.states_explored = seen.size();
                    return result;
                }
                seen.insert(std::move(key));
                frontier.push_back({std::move(next),
                                    node.depth + 1});
                telemetry.frontier_peak = std::max<uint64_t>(
                    telemetry.frontier_peak, frontier.size());
            }
        }
    }

    result.status = hit_bound ? BmcResult::Status::BoundReached
                              : BmcResult::Status::Proved;
    result.states_explored = seen.size();
    return result;
}

} // namespace verif
} // namespace anvil
