#include "support/json.h"

#include <cctype>
#include <cstdlib>

#include "support/strings.h"

namespace anvil {
namespace json {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : _t(text) {}

    ParseResult run()
    {
        ParseResult res;
        skipWs();
        if (!value(res.value)) {
            res.error = _error;
            return res;
        }
        skipWs();
        if (_p != _t.size())
            fail("trailing characters after document");
        res.error = _error;
        return res;
    }

  private:
    bool fail(const std::string &why)
    {
        if (_error.empty())
            _error = strfmt("offset %zu: ", _p) + why;
        return false;
    }

    void skipWs()
    {
        while (_p < _t.size() &&
               (_t[_p] == ' ' || _t[_p] == '\t' || _t[_p] == '\n' ||
                _t[_p] == '\r'))
            _p++;
    }

    bool lit(const char *word, size_t n)
    {
        if (_t.compare(_p, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        _p += n;
        return true;
    }

    bool value(Value &out)
    {
        if (_p >= _t.size())
            return fail("unexpected end of input");
        switch (_t[_p]) {
        case 'n':
            out.kind = Value::Kind::Null;
            return lit("null", 4);
        case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return lit("true", 4);
        case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return lit("false", 5);
        case '"':
            out.kind = Value::Kind::String;
            return string(out.str);
        case '[':
            return array(out);
        case '{':
            return object(out);
        default:
            return number(out);
        }
    }

    bool string(std::string &out)
    {
        _p++;   // opening quote
        while (_p < _t.size() && _t[_p] != '"') {
            char c = _t[_p];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                _p++;
                continue;
            }
            if (_p + 1 >= _t.size())
                return fail("dangling escape");
            char e = _t[_p + 1];
            _p += 2;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (_p + 4 > _t.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; i++) {
                    char h = _t[_p + static_cast<size_t>(i)];
                    if (!isxdigit(static_cast<unsigned char>(h)))
                        return fail("bad \\u escape");
                    cp = cp * 16 +
                         static_cast<unsigned>(
                             h <= '9' ? h - '0'
                                      : (h | 0x20) - 'a' + 10);
                }
                _p += 4;
                // Encode as UTF-8 (surrogates passed through raw —
                // our emitters never produce them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        if (_p >= _t.size())
            return fail("unterminated string");
        _p++;   // closing quote
        return true;
    }

    bool number(Value &out)
    {
        size_t start = _p;
        if (_p < _t.size() && _t[_p] == '-')
            _p++;
        if (_p >= _t.size() ||
            !isdigit(static_cast<unsigned char>(_t[_p])))
            return fail("invalid value");
        while (_p < _t.size() &&
               isdigit(static_cast<unsigned char>(_t[_p])))
            _p++;
        if (_p < _t.size() && _t[_p] == '.') {
            _p++;
            if (_p >= _t.size() ||
                !isdigit(static_cast<unsigned char>(_t[_p])))
                return fail("digit required after '.'");
            while (_p < _t.size() &&
                   isdigit(static_cast<unsigned char>(_t[_p])))
                _p++;
        }
        if (_p < _t.size() && (_t[_p] == 'e' || _t[_p] == 'E')) {
            _p++;
            if (_p < _t.size() &&
                (_t[_p] == '+' || _t[_p] == '-'))
                _p++;
            if (_p >= _t.size() ||
                !isdigit(static_cast<unsigned char>(_t[_p])))
                return fail("digit required in exponent");
            while (_p < _t.size() &&
                   isdigit(static_cast<unsigned char>(_t[_p])))
                _p++;
        }
        out.kind = Value::Kind::Number;
        out.num = _t.substr(start, _p - start);
        return true;
    }

    bool array(Value &out)
    {
        out.kind = Value::Kind::Array;
        _p++;   // '['
        skipWs();
        if (_p < _t.size() && _t[_p] == ']') {
            _p++;
            return true;
        }
        for (;;) {
            out.arr.emplace_back();
            if (!value(out.arr.back()))
                return false;
            skipWs();
            if (_p < _t.size() && _t[_p] == ',') {
                _p++;
                skipWs();
                continue;
            }
            if (_p < _t.size() && _t[_p] == ']') {
                _p++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool object(Value &out)
    {
        out.kind = Value::Kind::Object;
        _p++;   // '{'
        skipWs();
        if (_p < _t.size() && _t[_p] == '}') {
            _p++;
            return true;
        }
        for (;;) {
            if (_p >= _t.size() || _t[_p] != '"')
                return fail("expected member name");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (_p >= _t.size() || _t[_p] != ':')
                return fail("expected ':'");
            _p++;
            skipWs();
            out.obj.emplace_back(std::move(key), Value());
            if (!value(out.obj.back().second))
                return false;
            skipWs();
            if (_p < _t.size() && _t[_p] == ',') {
                _p++;
                skipWs();
                continue;
            }
            if (_p < _t.size() && _t[_p] == '}') {
                _p++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &_t;
    size_t _p = 0;
    std::string _error;
};

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
dumpValue(const Value &v, std::string &out)
{
    switch (v.kind) {
    case Value::Kind::Null:
        out += "null";
        break;
    case Value::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
    case Value::Kind::Number:
        out += v.num;
        break;
    case Value::Kind::String:
        dumpString(v.str, out);
        break;
    case Value::Kind::Array:
        out += '[';
        for (size_t i = 0; i < v.arr.size(); i++) {
            if (i)
                out += ',';
            dumpValue(v.arr[i], out);
        }
        out += ']';
        break;
    case Value::Kind::Object:
        out += '{';
        for (size_t i = 0; i < v.obj.size(); i++) {
            if (i)
                out += ',';
            dumpString(v.obj[i].first, out);
            out += ':';
            dumpValue(v.obj[i].second, out);
        }
        out += '}';
        break;
    }
}

} // namespace

bool
Value::isInteger() const
{
    if (kind != Kind::Number)
        return false;
    return num.find_first_of(".eE") == std::string::npos;
}

double
Value::asDouble() const
{
    if (kind != Kind::Number)
        return 0.0;
    return strtod(num.c_str(), nullptr);
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
Value::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

ParseResult
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace json
} // namespace anvil
