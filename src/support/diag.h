/**
 * @file
 * Source locations and the compiler diagnostics engine.
 *
 * The Anvil compiler reports timing-safety violations with messages that
 * match the wording used in the paper (e.g. "Value not live long enough
 * in message send!") together with a caret-annotated source excerpt, as
 * shown in Appendix A.
 */

#ifndef ANVIL_SUPPORT_DIAG_H
#define ANVIL_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace anvil {

/** A position in an Anvil source buffer (1-based line and column). */
struct SrcLoc
{
    int line = 0;
    int col = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a diagnostic message. */
enum class Severity { Note, Warning, Error };

/** A single diagnostic: severity, message, and source location. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string message;
    SrcLoc loc;

    std::string str() const;
};

/**
 * Collects diagnostics produced across all compilation stages.
 *
 * The engine keeps the original source text so it can render excerpts
 * with caret markers in the style of the paper's Appendix A output.
 */
class DiagEngine
{
  public:
    DiagEngine() = default;

    /** Attach source text for excerpt rendering. */
    void setSource(const std::string &source, const std::string &name);

    void error(const std::string &msg, SrcLoc loc = {});
    void warning(const std::string &msg, SrcLoc loc = {});
    void note(const std::string &msg, SrcLoc loc = {});

    bool hasErrors() const;
    int errorCount() const;

    const std::vector<Diagnostic> &all() const { return _diags; }

    /** Render every diagnostic, with source excerpts when available. */
    std::string render() const;

    /** Render one diagnostic with its source excerpt. */
    std::string renderOne(const Diagnostic &d) const;

    void clear() { _diags.clear(); }

  private:
    std::vector<Diagnostic> _diags;
    std::vector<std::string> _lines;
    std::string _sourceName = "<input>";
};

} // namespace anvil

#endif // ANVIL_SUPPORT_DIAG_H
