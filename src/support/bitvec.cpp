#include "support/bitvec.h"

#include <cassert>
#include <stdexcept>

namespace anvil {

namespace {

int
wordsFor(int width)
{
    return (width + 63) / 64;
}

} // namespace

BitVec::BitVec(int width)
    : _width(width), _data(wordsFor(width), 0)
{
    assert(width >= 1);
}

BitVec::BitVec(int width, uint64_t value)
    : _width(width), _data(wordsFor(width), 0)
{
    assert(width >= 1);
    _data[0] = value;
    normalize();
}

BitVec
BitVec::fromBinary(const std::string &bits)
{
    BitVec v(static_cast<int>(bits.size()));
    for (size_t i = 0; i < bits.size(); i++) {
        char c = bits[bits.size() - 1 - i];
        if (c == '1')
            v.setBit(static_cast<int>(i), true);
        else if (c != '0')
            throw std::invalid_argument("bad binary digit");
    }
    return v;
}

BitVec
BitVec::fromHex(const std::string &hex)
{
    BitVec v(static_cast<int>(hex.size()) * 4);
    for (size_t i = 0; i < hex.size(); i++) {
        char c = hex[hex.size() - 1 - i];
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            throw std::invalid_argument("bad hex digit");
        for (int b = 0; b < 4; b++)
            v.setBit(static_cast<int>(i) * 4 + b, (d >> b) & 1);
    }
    return v;
}

BitVec
BitVec::ones(int width)
{
    BitVec v(width);
    for (auto &w : v._data)
        w = ~0ull;
    v.normalize();
    return v;
}

void
BitVec::normalize()
{
    int top_bits = _width % 64;
    if (top_bits != 0)
        _data.back() &= (~0ull >> (64 - top_bits));
}

uint64_t
BitVec::word(int i) const
{
    if (i < 0 || i >= words())
        return 0;
    return _data[i];
}

uint64_t
BitVec::toUint64() const
{
    return _data[0];
}

bool
BitVec::bit(int i) const
{
    if (i < 0 || i >= _width)
        return false;
    return (_data[i / 64] >> (i % 64)) & 1;
}

void
BitVec::setBit(int i, bool v)
{
    assert(i >= 0 && i < _width);
    if (v)
        _data[i / 64] |= (1ull << (i % 64));
    else
        _data[i / 64] &= ~(1ull << (i % 64));
}

bool
BitVec::any() const
{
    for (uint64_t w : _data)
        if (w)
            return true;
    return false;
}

BitVec
BitVec::resize(int new_width) const
{
    BitVec v(new_width);
    for (int i = 0; i < v.words(); i++)
        v._data[i] = word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::slice(int lo, int n) const
{
    assert(n >= 1);
    BitVec v(n);
    for (int i = 0; i < n; i++)
        v.setBit(i, bit(lo + i));
    return v;
}

BitVec
BitVec::concatHigh(const BitVec &hi) const
{
    BitVec v(_width + hi._width);
    for (int i = 0; i < _width; i++)
        v.setBit(i, bit(i));
    for (int i = 0; i < hi._width; i++)
        v.setBit(_width + i, hi.bit(i));
    return v;
}

BitVec
BitVec::operator~() const
{
    BitVec v(_width);
    for (int i = 0; i < words(); i++)
        v._data[i] = ~_data[i];
    v.normalize();
    return v;
}

BitVec
BitVec::operator&(const BitVec &o) const
{
    BitVec v(_width);
    for (int i = 0; i < words(); i++)
        v._data[i] = _data[i] & o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator|(const BitVec &o) const
{
    BitVec v(_width);
    for (int i = 0; i < words(); i++)
        v._data[i] = _data[i] | o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator^(const BitVec &o) const
{
    BitVec v(_width);
    for (int i = 0; i < words(); i++)
        v._data[i] = _data[i] ^ o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator+(const BitVec &o) const
{
    BitVec v(_width);
    unsigned __int128 carry = 0;
    for (int i = 0; i < words(); i++) {
        unsigned __int128 s = carry;
        s += _data[i];
        s += o.word(i);
        v._data[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    v.normalize();
    return v;
}

BitVec
BitVec::operator-(const BitVec &o) const
{
    BitVec neg = ~o.resize(_width) + BitVec(_width, 1);
    return *this + neg;
}

BitVec
BitVec::operator*(const BitVec &o) const
{
    // Schoolbook multiplication, truncated to this->width().
    BitVec v(_width);
    for (int i = 0; i < words(); i++) {
        unsigned __int128 carry = 0;
        for (int j = 0; i + j < words(); j++) {
            unsigned __int128 p = static_cast<unsigned __int128>(_data[i]) *
                o.word(j);
            p += v._data[i + j];
            p += carry;
            v._data[i + j] = static_cast<uint64_t>(p);
            carry = p >> 64;
        }
    }
    v.normalize();
    return v;
}

BitVec
BitVec::operator<<(int n) const
{
    BitVec v(_width);
    for (int i = _width - 1; i >= n; i--)
        v.setBit(i, bit(i - n));
    return v;
}

BitVec
BitVec::operator>>(int n) const
{
    BitVec v(_width);
    for (int i = 0; i + n < _width; i++)
        v.setBit(i, bit(i + n));
    return v;
}

bool
BitVec::operator==(const BitVec &o) const
{
    int w = std::max(words(), o.words());
    for (int i = 0; i < w; i++)
        if (word(i) != o.word(i))
            return false;
    return true;
}

bool
BitVec::ult(const BitVec &o) const
{
    int w = std::max(words(), o.words());
    for (int i = w - 1; i >= 0; i--) {
        if (word(i) != o.word(i))
            return word(i) < o.word(i);
    }
    return false;
}

bool
BitVec::ule(const BitVec &o) const
{
    return ult(o) || *this == o;
}

int
BitVec::popcount() const
{
    int n = 0;
    for (uint64_t w : _data)
        n += __builtin_popcountll(w);
    return n;
}

std::string
BitVec::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    int nibbles = (_width + 3) / 4;
    std::string s = "0x";
    for (int i = nibbles - 1; i >= 0; i--) {
        int d = 0;
        for (int b = 0; b < 4; b++)
            if (bit(i * 4 + b))
                d |= 1 << b;
        s += digits[d];
    }
    return s;
}

std::string
BitVec::toBinary() const
{
    std::string s;
    for (int i = _width - 1; i >= 0; i--)
        s += bit(i) ? '1' : '0';
    return s;
}

} // namespace anvil
