#include "support/bitvec.h"

#include <cassert>
#include <stdexcept>

namespace anvil {

BitVec::BitVec(int width)
    : _width(width)
{
    assert(width >= 0);
    if (!small())
        _wide.assign(static_cast<size_t>(words()), 0);
}

BitVec::BitVec(int width, uint64_t value)
    : BitVec(width)
{
    if (small())
        _w0 = value & smallMask();
    else
        _wide[0] = value;
}

void
BitVec::setUint64(uint64_t v)
{
    if (small()) {
        _w0 = v & smallMask();
        return;
    }
    _wide.assign(static_cast<size_t>(words()), 0);
    _wide[0] = v;
}

void
BitVec::setWords(const uint64_t *w, int n)
{
    uint64_t *d = data();
    int have = words();
    for (int i = 0; i < have; i++)
        d[i] = i < n ? w[i] : 0;
    normalize();
}

BitVec
BitVec::fromBinary(const std::string &bits)
{
    BitVec v(static_cast<int>(bits.size()));
    for (size_t i = 0; i < bits.size(); i++) {
        char c = bits[bits.size() - 1 - i];
        if (c == '1')
            v.setBit(static_cast<int>(i), true);
        else if (c != '0')
            throw std::invalid_argument("bad binary digit");
    }
    return v;
}

BitVec
BitVec::fromHex(const std::string &hex)
{
    BitVec v(static_cast<int>(hex.size()) * 4);
    for (size_t i = 0; i < hex.size(); i++) {
        char c = hex[hex.size() - 1 - i];
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            throw std::invalid_argument("bad hex digit");
        for (int b = 0; b < 4; b++)
            v.setBit(static_cast<int>(i) * 4 + b, (d >> b) & 1);
    }
    return v;
}

BitVec
BitVec::ones(int width)
{
    BitVec v(width);
    uint64_t *d = v.data();
    for (int i = 0; i < v.words(); i++)
        d[i] = ~0ull;
    v.normalize();
    return v;
}

void
BitVec::normalize()
{
    if (small()) {
        _w0 &= smallMask();
        return;
    }
    int top_bits = _width % 64;
    if (top_bits != 0)
        _wide.back() &= ~0ull >> (64 - top_bits);
}

void
BitVec::setBit(int i, bool v)
{
    assert(i >= 0 && i < _width);
    uint64_t *d = data();
    if (v)
        d[i / 64] |= 1ull << (i % 64);
    else
        d[i / 64] &= ~(1ull << (i % 64));
}

bool
BitVec::any() const
{
    const uint64_t *d = data();
    for (int i = 0; i < words(); i++)
        if (d[i])
            return true;
    return false;
}

BitVec
BitVec::resize(int new_width) const
{
    BitVec v(new_width);
    uint64_t *d = v.data();
    int n = std::min(v.words(), words());
    const uint64_t *s = data();
    for (int i = 0; i < n; i++)
        d[i] = s[i];
    v.normalize();
    return v;
}

BitVec
BitVec::slice(int lo, int n) const
{
    assert(n >= 0);
    BitVec v(n);
    if (n == 0)
        return v;
    if (lo < 0) {
        // Bits below index 0 read as zero (cold path).
        for (int i = 0; i < n; i++)
            v.setBit(i, bit(lo + i));
        return v;
    }
    uint64_t *d = v.data();
    int ws = lo / 64, bs = lo % 64;
    for (int j = 0; j < v.words(); j++) {
        uint64_t w = word(ws + j) >> bs;
        if (bs != 0)
            w |= word(ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    v.normalize();
    return v;
}

BitVec
BitVec::concatHigh(const BitVec &hi) const
{
    BitVec v(_width + hi._width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++)
        d[i] = s[i];
    int ws = _width / 64, bs = _width % 64;
    for (int j = 0; j < hi.words(); j++) {
        d[ws + j] |= hi.word(j) << bs;
        if (bs != 0 && ws + j + 1 < v.words())
            d[ws + j + 1] |= hi.word(j) >> (64 - bs);
    }
    // The low part's top partial word may have been only partially
    // filled by `hi`; the result's own top partial word must be
    // re-masked so the all-bits-above-width-are-zero invariant holds.
    v.normalize();
    return v;
}

BitVec
BitVec::operator~() const
{
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++)
        d[i] = ~s[i];
    v.normalize();
    return v;
}

BitVec
BitVec::operator&(const BitVec &o) const
{
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++)
        d[i] = s[i] & o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator|(const BitVec &o) const
{
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++)
        d[i] = s[i] | o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator^(const BitVec &o) const
{
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++)
        d[i] = s[i] ^ o.word(i);
    v.normalize();
    return v;
}

BitVec
BitVec::operator+(const BitVec &o) const
{
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    unsigned __int128 carry = 0;
    for (int i = 0; i < words(); i++) {
        unsigned __int128 sum = carry;
        sum += s[i];
        sum += o.word(i);
        d[i] = static_cast<uint64_t>(sum);
        carry = sum >> 64;
    }
    v.normalize();
    return v;
}

BitVec
BitVec::operator-(const BitVec &o) const
{
    BitVec neg = ~o.resize(_width) + BitVec(_width, 1);
    return *this + neg;
}

BitVec
BitVec::operator*(const BitVec &o) const
{
    // Schoolbook multiplication, truncated to this->width().
    BitVec v(_width);
    uint64_t *d = v.data();
    const uint64_t *s = data();
    for (int i = 0; i < words(); i++) {
        unsigned __int128 carry = 0;
        for (int j = 0; i + j < words(); j++) {
            unsigned __int128 p =
                static_cast<unsigned __int128>(s[i]) * o.word(j);
            p += d[i + j];
            p += carry;
            d[i + j] = static_cast<uint64_t>(p);
            carry = p >> 64;
        }
    }
    v.normalize();
    return v;
}

BitVec
BitVec::operator<<(int n) const
{
    BitVec v(_width);
    if (n < 0 || n >= _width)
        return v;
    uint64_t *d = v.data();
    int ws = n / 64, bs = n % 64;
    for (int j = v.words() - 1; j >= ws; j--) {
        uint64_t w = word(j - ws) << bs;
        if (bs != 0)
            w |= word(j - ws - 1) >> (64 - bs);
        d[j] = w;
    }
    v.normalize();
    return v;
}

BitVec
BitVec::operator>>(int n) const
{
    BitVec v(_width);
    if (n < 0 || n >= _width)
        return v;
    uint64_t *d = v.data();
    int ws = n / 64, bs = n % 64;
    for (int j = 0; j < v.words(); j++) {
        uint64_t w = word(ws + j) >> bs;
        if (bs != 0)
            w |= word(ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    v.normalize();
    return v;
}

bool
BitVec::operator==(const BitVec &o) const
{
    int w = std::max(words(), o.words());
    for (int i = 0; i < w; i++)
        if (word(i) != o.word(i))
            return false;
    return true;
}

bool
BitVec::ult(const BitVec &o) const
{
    int w = std::max(words(), o.words());
    for (int i = w - 1; i >= 0; i--) {
        if (word(i) != o.word(i))
            return word(i) < o.word(i);
    }
    return false;
}

bool
BitVec::ule(const BitVec &o) const
{
    return ult(o) || *this == o;
}

int
BitVec::xorPopcount(const BitVec &o) const
{
    int w = std::max(words(), o.words());
    int n = 0;
    for (int i = 0; i < w; i++)
        n += __builtin_popcountll(word(i) ^ o.word(i));
    return n;
}

int
BitVec::xorPopcountWords(const uint64_t *w, int n) const
{
    int c = 0;
    for (int i = 0; i < words(); i++)
        c += __builtin_popcountll(word(i) ^ (i < n ? w[i] : 0));
    return c;
}

int
BitVec::popcount() const
{
    const uint64_t *d = data();
    int n = 0;
    for (int i = 0; i < words(); i++)
        n += __builtin_popcountll(d[i]);
    return n;
}

std::string
BitVec::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    int nibbles = (_width + 3) / 4;
    std::string s = "0x";
    for (int i = nibbles - 1; i >= 0; i--) {
        int d = 0;
        for (int b = 0; b < 4; b++)
            if (bit(i * 4 + b))
                d |= 1 << b;
        s += digits[d];
    }
    return s;
}

std::string
BitVec::toBinary() const
{
    std::string s;
    for (int i = _width - 1; i >= 0; i--)
        s += bit(i) ? '1' : '0';
    return s;
}

} // namespace anvil
