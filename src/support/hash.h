/**
 * @file
 * Shared packed-state hashing: FNV-1a over 64-bit words.
 *
 * This is the state-key convention of the explicit-state explorers —
 * the BMC (src/verif/bmc.cpp) and the k-induction prover
 * (src/formal/kinduction.cpp) both identify register snapshots by
 * their packed words; keys are compared for full equality, the hash
 * is only the table probe.
 */

#ifndef ANVIL_SUPPORT_HASH_H
#define ANVIL_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anvil {

/** FNV-1a over a word vector. */
inline uint64_t
fnv1aWords(const std::vector<uint64_t> &words)
{
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : words) {
        h ^= w;
        h *= 1099511628211ull;
    }
    return h;
}

/** Hash functor for unordered containers keyed by packed words. */
struct PackedWordsHash
{
    size_t operator()(const std::vector<uint64_t> &words) const
    {
        return static_cast<size_t>(fnv1aWords(words));
    }
};

} // namespace anvil

#endif // ANVIL_SUPPORT_HASH_H
