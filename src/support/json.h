/**
 * @file
 * Minimal JSON reader for the observability toolchain: the schema
 * validator (tools/json_validate.cpp) and the tests that parse the
 * telemetry artifacts back (metrics, Chrome-trace profile, stats
 * lines) to prove they are well-formed.
 *
 * Deliberately small: parse into an ordered DOM, look values up, and
 * dump them back in a canonical compact form.  Numbers keep their
 * source lexeme, so a parse/dump round trip never reformats a value
 * — that is what makes `--canon` comparisons byte-stable.
 */

#ifndef ANVIL_SUPPORT_JSON_H
#define ANVIL_SUPPORT_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace anvil {
namespace json {

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Number lexeme exactly as parsed (e.g. "1.5e3"). */
    std::string num;
    std::string str;
    std::vector<Value> arr;
    /** Members in source order (duplicates kept as-is). */
    std::vector<std::pair<std::string, Value>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Integer-valued number: no fraction and no exponent. */
    bool isInteger() const;

    double asDouble() const;

    /** First member with this key, or nullptr. */
    const Value *find(const std::string &key) const;

    /** Compact canonical dump (member order preserved). */
    std::string dump() const;
};

struct ParseResult
{
    Value value;
    std::string error;   // empty on success, else "offset N: why"

    bool ok() const { return error.empty(); }
};

/** Parse one JSON document; trailing non-space input is an error. */
ParseResult parse(const std::string &text);

} // namespace json
} // namespace anvil

#endif // ANVIL_SUPPORT_JSON_H
