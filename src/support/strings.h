/**
 * @file
 * Small string helpers shared across the compiler and benches.
 */

#ifndef ANVIL_SUPPORT_STRINGS_H
#define ANVIL_SUPPORT_STRINGS_H

#include <string>
#include <vector>

namespace anvil {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split on a single-character delimiter (empty tokens kept). */
std::vector<std::string> split(const std::string &s, char delim);

/** True iff @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Join tokens with a separator string. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace anvil

#endif // ANVIL_SUPPORT_STRINGS_H
