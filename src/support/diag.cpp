#include "support/diag.h"

#include <sstream>

namespace anvil {

std::string
SrcLoc::str() const
{
    std::ostringstream os;
    os << line << ":" << col;
    return os.str();
}

std::string
Diagnostic::str() const
{
    std::string sev;
    switch (severity) {
      case Severity::Note: sev = "note"; break;
      case Severity::Warning: sev = "warning"; break;
      case Severity::Error: sev = "error"; break;
    }
    std::ostringstream os;
    os << sev << ": " << message;
    if (loc.valid())
        os << " (" << loc.str() << ")";
    return os.str();
}

void
DiagEngine::setSource(const std::string &source, const std::string &name)
{
    _sourceName = name;
    _lines.clear();
    std::string cur;
    for (char c : source) {
        if (c == '\n') {
            _lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    _lines.push_back(cur);
}

void
DiagEngine::error(const std::string &msg, SrcLoc loc)
{
    _diags.push_back({Severity::Error, msg, loc});
}

void
DiagEngine::warning(const std::string &msg, SrcLoc loc)
{
    _diags.push_back({Severity::Warning, msg, loc});
}

void
DiagEngine::note(const std::string &msg, SrcLoc loc)
{
    _diags.push_back({Severity::Note, msg, loc});
}

bool
DiagEngine::hasErrors() const
{
    return errorCount() > 0;
}

int
DiagEngine::errorCount() const
{
    int n = 0;
    for (const auto &d : _diags)
        if (d.severity == Severity::Error)
            n++;
    return n;
}

std::string
DiagEngine::renderOne(const Diagnostic &d) const
{
    std::ostringstream os;
    os << d.message << "\n";
    if (d.loc.valid()) {
        os << _sourceName << ":" << d.loc.line << ":" << d.loc.col << ":\n";
        int idx = d.loc.line - 1;
        if (idx >= 0 && idx < static_cast<int>(_lines.size())) {
            const std::string &line = _lines[idx];
            os << d.loc.line << "| " << line << "\n";
            std::string pad(std::to_string(d.loc.line).size(), ' ');
            os << pad << "| ";
            for (int i = 1; i < d.loc.col; i++)
                os << ' ';
            int span = static_cast<int>(line.size()) - d.loc.col + 1;
            if (span < 1)
                span = 1;
            for (int i = 0; i < span; i++)
                os << '^';
            os << "\n";
        }
    }
    return os.str();
}

std::string
DiagEngine::render() const
{
    std::ostringstream os;
    for (const auto &d : _diags)
        os << renderOne(d);
    return os.str();
}

} // namespace anvil
