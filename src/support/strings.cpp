#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace anvil {

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace anvil
