/**
 * @file
 * Arbitrary-width bit vector used throughout the RTL substrate.
 *
 * Hardware values in both the Anvil compiler output and the handwritten
 * baseline designs are modelled as fixed-width bit vectors.  Widths up to
 * a few hundred bits (AES-256 keys) must be supported, so the storage is
 * a small vector of 64-bit words, least-significant word first.
 */

#ifndef ANVIL_SUPPORT_BITVEC_H
#define ANVIL_SUPPORT_BITVEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace anvil {

/**
 * A fixed-width little-endian bit vector.
 *
 * All arithmetic wraps modulo 2^width, mirroring SystemVerilog packed
 * logic semantics (without X/Z states; the simulator is two-state).
 */
class BitVec
{
  public:
    /** Construct a zero value of the given width (default 1 bit). */
    explicit BitVec(int width = 1);

    /** Construct a value of the given width from a 64-bit integer. */
    BitVec(int width, uint64_t value);

    /** Parse a binary string ("1010") into a value of matching width. */
    static BitVec fromBinary(const std::string &bits);

    /** Parse a hex string ("deadbeef") into a value of 4*len bits. */
    static BitVec fromHex(const std::string &hex);

    /** An all-ones value of the given width. */
    static BitVec ones(int width);

    int width() const { return _width; }

    /** Number of 64-bit words backing this value. */
    int words() const { return static_cast<int>(_data.size()); }

    uint64_t word(int i) const;

    /** Low 64 bits as an integer (truncating wider values). */
    uint64_t toUint64() const;

    bool bit(int i) const;
    void setBit(int i, bool v);

    /** True iff any bit is set. */
    bool any() const;

    bool isZero() const { return !any(); }

    /** Return this value zero-extended or truncated to a new width. */
    BitVec resize(int new_width) const;

    /** Bits [lo, lo+n) as an n-bit value. */
    BitVec slice(int lo, int n) const;

    /** Concatenation: {hi, lo} with this as the low part. */
    BitVec concatHigh(const BitVec &hi) const;

    BitVec operator~() const;
    BitVec operator&(const BitVec &o) const;
    BitVec operator|(const BitVec &o) const;
    BitVec operator^(const BitVec &o) const;
    BitVec operator+(const BitVec &o) const;
    BitVec operator-(const BitVec &o) const;
    BitVec operator*(const BitVec &o) const;
    BitVec operator<<(int n) const;
    BitVec operator>>(int n) const;

    bool operator==(const BitVec &o) const;
    bool operator!=(const BitVec &o) const { return !(*this == o); }

    /** Unsigned comparison. */
    bool ult(const BitVec &o) const;
    bool ule(const BitVec &o) const;

    /** Population count. */
    int popcount() const;

    /** Render as 0x-prefixed hex (width-padded). */
    std::string toHex() const;

    /** Render as a binary string of exactly width() characters. */
    std::string toBinary() const;

  private:
    void normalize();

    int _width;
    std::vector<uint64_t> _data;
};

} // namespace anvil

#endif // ANVIL_SUPPORT_BITVEC_H
