/**
 * @file
 * Arbitrary-width bit vector used throughout the RTL substrate.
 *
 * Hardware values in both the Anvil compiler output and the handwritten
 * baseline designs are modelled as fixed-width bit vectors.  Nearly all
 * signals in the evaluation designs are 64 bits or narrower, so values
 * up to 64 bits are stored in a single inline word with no heap
 * allocation (small-buffer optimization); wider values (AES-256 keys
 * and the like) spill to a word vector, least-significant word first.
 */

#ifndef ANVIL_SUPPORT_BITVEC_H
#define ANVIL_SUPPORT_BITVEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace anvil {

/**
 * A fixed-width little-endian bit vector.
 *
 * All arithmetic wraps modulo 2^width, mirroring SystemVerilog packed
 * logic semantics (without X/Z states; the simulator is two-state).
 * Zero-width values are permitted (they arise from degenerate slices)
 * and behave as the empty bit string.
 *
 * Invariant: bits at or above width() are always zero, both in the
 * inline word and in the top partial word of wide storage.
 */
class BitVec
{
  public:
    /** Construct a zero value of the given width (default 1 bit). */
    explicit BitVec(int width = 1);

    /** Construct a value of the given width from a 64-bit integer. */
    BitVec(int width, uint64_t value);

    /** Parse a binary string ("1010") into a value of matching width. */
    static BitVec fromBinary(const std::string &bits);

    /** Parse a hex string ("deadbeef") into a value of 4*len bits. */
    static BitVec fromHex(const std::string &hex);

    /** An all-ones value of the given width. */
    static BitVec ones(int width);

    int width() const { return _width; }

    /** Number of 64-bit words backing this value. */
    int words() const { return (_width + 63) / 64; }

    uint64_t word(int i) const
    {
        if (small())
            return i == 0 ? _w0 : 0;
        if (i < 0 || i >= words())
            return 0;
        return _wide[static_cast<size_t>(i)];
    }

    /** Low 64 bits as an integer (truncating wider values). */
    uint64_t toUint64() const { return small() ? _w0 : _wide[0]; }

    /**
     * Overwrite the value in place from a 64-bit integer, keeping the
     * width.  The hot path of the compiled simulator: for values that
     * fit the inline word this is a masked store with no allocation.
     */
    void setUint64(uint64_t v);

    /**
     * Overwrite the value in place from packed little-endian words
     * (missing words read as zero; excess words are ignored), keeping
     * the width.  The wide-value twin of setUint64: how the simulator
     * mirrors multi-word nets out of a compiled kernel's state.
     */
    void setWords(const uint64_t *w, int n);

    bool bit(int i) const
    {
        if (i < 0 || i >= _width)
            return false;
        return (word(i / 64) >> (i % 64)) & 1;
    }

    void setBit(int i, bool v);

    /** True iff any bit is set. */
    bool any() const;

    bool isZero() const { return !any(); }

    /** Return this value zero-extended or truncated to a new width. */
    BitVec resize(int new_width) const;

    /**
     * Bits [lo, lo+n) as an n-bit value.  Bits outside [0, width())
     * — including negative indices when lo < 0 — read as zero;
     * n == 0 yields a zero-width value.
     */
    BitVec slice(int lo, int n) const;

    /** Concatenation: {hi, lo} with this as the low part. */
    BitVec concatHigh(const BitVec &hi) const;

    BitVec operator~() const;
    BitVec operator&(const BitVec &o) const;
    BitVec operator|(const BitVec &o) const;
    BitVec operator^(const BitVec &o) const;
    BitVec operator+(const BitVec &o) const;
    BitVec operator-(const BitVec &o) const;
    BitVec operator*(const BitVec &o) const;

    /**
     * Shifts.  A shift amount that is negative or >= width() yields
     * zero (the hardware semantics of a full barrel shift); amounts
     * >= 64 are handled exactly rather than invoking undefined
     * behaviour on the underlying word shifts.
     */
    BitVec operator<<(int n) const;
    BitVec operator>>(int n) const;

    bool operator==(const BitVec &o) const;
    bool operator!=(const BitVec &o) const { return !(*this == o); }

    /** Unsigned comparison. */
    bool ult(const BitVec &o) const;
    bool ule(const BitVec &o) const;

    /** Population count. */
    int popcount() const;

    /**
     * popcount(*this ^ o) with zero-extension, without materializing
     * the XOR — the toggle-accounting delta of the simulator's
     * changed-net sweep.
     */
    int xorPopcount(const BitVec &o) const;

    /**
     * popcount(*this ^ w[0..n)) against raw packed little-endian
     * words (missing words read as zero).  Lets the simulator count
     * toggles straight off a compiled kernel's state array without
     * first mirroring the value into a BitVec.  The caller
     * guarantees bits at or above width() are clear in w, as the
     * kernel's masked stores do.
     */
    int xorPopcountWords(const uint64_t *w, int n) const;

    /** Render as 0x-prefixed hex (width-padded). */
    std::string toHex() const;

    /** Render as a binary string of exactly width() characters. */
    std::string toBinary() const;

  private:
    bool small() const { return _width <= 64; }

    /** Mask for the inline word (small values only). */
    uint64_t smallMask() const
    {
        return _width >= 64 ? ~0ull : (1ull << _width) - 1;
    }

    uint64_t *data() { return small() ? &_w0 : _wide.data(); }
    const uint64_t *data() const
    {
        return small() ? &_w0 : _wide.data();
    }

    void normalize();

    int _width;
    uint64_t _w0 = 0;             // storage when width() <= 64
    std::vector<uint64_t> _wide;  // storage when width() > 64
};

} // namespace anvil

#endif // ANVIL_SUPPORT_BITVEC_H
