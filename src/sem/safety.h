/**
 * @file
 * Dynamic-safety driver: samples many schedules of a compiled
 * program's threads and checks every resulting execution log against
 * the Def. C.15 predicate.  Property tests use this to validate
 * Theorem C.20 (well-typed implies safe) and its contrapositive on
 * the paper's unsafe examples.
 */

#ifndef ANVIL_SEM_SAFETY_H
#define ANVIL_SEM_SAFETY_H

#include <string>
#include <vector>

#include "sem/exec_log.h"

namespace anvil {

struct Program;
struct ProcDef;
class DiagEngine;

namespace sem {

/** Outcome of a dynamic-safety fuzz run over one process. */
struct FuzzReport
{
    int samples = 0;
    int unsafe_samples = 0;
    std::vector<std::string> example_violations;

    bool allSafe() const { return unsafe_samples == 0; }
};

/**
 * Elaborate the named process of the source, sample @p samples random
 * schedules per thread, and check each log.
 */
FuzzReport fuzzProcessSafety(const std::string &source,
                             const std::string &proc_name, int samples,
                             unsigned seed = 1, int max_delay = 4);

} // namespace sem
} // namespace anvil

#endif // ANVIL_SEM_SAFETY_H
