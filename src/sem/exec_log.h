/**
 * @file
 * Execution logs and the dynamic safety predicate (Appendix C,
 * Defs. C.1 and C.15).
 *
 * An execution log is a sequence of cycles, each containing a set of
 * operations: value creation (with register and value dependencies),
 * value use, register mutation, and message send/receive with the
 * value's contract window.  The safety predicate requires, for every
 * value, a continuous window [a, b] containing all its uses and
 * promised send windows, within the windows promised by receives,
 * with no dependent-register mutation inside [a, b).
 */

#ifndef ANVIL_SEM_EXEC_LOG_H
#define ANVIL_SEM_EXEC_LOG_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace anvil {
namespace sem {

using ValId = int;
using Time = int64_t;

/** One logged operation. */
struct LogOp
{
    enum class Kind { ValCreate, ValUse, RegMut, ValSend, ValRecv };

    Kind kind = Kind::ValUse;
    ValId value = -1;
    std::set<std::string> reg_deps;   // ValCreate
    std::set<ValId> val_deps;         // ValCreate
    std::string reg;                  // RegMut
    std::string msg;                  // ValSend / ValRecv
    Time window_end = 0;              // ValSend: required exclusive end
                                      // ValRecv: promised exclusive end
};

/** An execution log: ops per cycle. */
struct ExecLog
{
    std::map<Time, std::vector<LogOp>> cycles;

    void add(Time t, LogOp op) { cycles[t].push_back(std::move(op)); }
};

/** One safety violation found in a log. */
struct LogViolation
{
    std::string what;
    Time when = 0;
};

/**
 * Check the Def. C.15 safety predicate on a log.  Returns every
 * violation found (empty = the log is safe).
 */
std::vector<LogViolation> checkLogSafety(const ExecLog &log);

} // namespace sem
} // namespace anvil

#endif // ANVIL_SEM_EXEC_LOG_H
