#include "sem/loggen.h"

#include <algorithm>
#include <random>

#include "ir/ordering.h"

namespace anvil {
namespace sem {

ScheduleSample
sampleSchedule(const ThreadIR &tir, unsigned seed, int max_delay)
{
    std::mt19937 rng(seed);
    ScheduleSample out;
    const EventGraph &g = tir.graph;

    std::map<int, bool> branch_taken;
    std::map<std::string, Time> last_sync;

    // Event ids are created in dependency order, so a single sweep
    // resolves every timestamp.
    for (EventId id : g.liveEvents()) {
        const EventNode &n = g.node(id);
        auto pred_time = [&](EventId p) { return out.at(p); };

        Time t = ScheduleSample::kNoTime;
        switch (n.kind) {
          case EventKind::Root:
            t = 0;
            break;
          case EventKind::Delay: {
            Time p = pred_time(n.preds[0]);
            if (p >= 0)
                t = p + n.delay;
            break;
          }
          case EventKind::Send:
          case EventKind::Recv: {
            Time p = pred_time(n.preds[0]);
            if (p >= 0) {
                int extra = n.max_sync >= 0
                    ? static_cast<int>(rng() % (n.max_sync + 1))
                    : static_cast<int>(rng() % (max_delay + 1));
                t = p + extra;
                // Same-message syncs are at least one cycle apart.
                std::string key = n.endpoint + "." + n.msg;
                auto it = last_sync.find(key);
                if (it != last_sync.end())
                    t = std::max(t, it->second + 1);
                last_sync[key] = t;
            }
            break;
          }
          case EventKind::Branch: {
            Time p = pred_time(n.preds[0]);
            if (p >= 0) {
                auto it = branch_taken.find(n.cond_id);
                if (it == branch_taken.end())
                    it = branch_taken
                        .emplace(n.cond_id, rng() & 1)
                        .first;
                if (it->second == n.cond_taken)
                    t = p;
            }
            break;
          }
          case EventKind::Join: {
            t = 0;
            for (EventId p : n.preds) {
                Time pt = pred_time(p);
                if (pt < 0) {
                    t = ScheduleSample::kNoTime;
                    break;
                }
                t = std::max(t, pt);
            }
            break;
          }
          case EventKind::Merge: {
            t = ScheduleSample::kNoTime;
            for (EventId p : n.preds) {
                Time pt = pred_time(p);
                if (pt >= 0)
                    t = t < 0 ? pt : std::min(t, pt);
            }
            break;
          }
        }
        if (t >= 0)
            out.times[id] = t;
    }
    return out;
}

namespace {

constexpr Time kFarFuture = 1 << 28;

/** Resolve an event pattern against a sampled schedule. */
Time
resolvePattern(const EventPattern &p, const ThreadIR &tir,
               const ScheduleSample &sched, Ordering &ord)
{
    Time base = sched.at(p.base);
    if (base < 0)
        return kFarFuture;
    if (p.kind == EventPattern::Kind::FixedAfter)
        return base + p.cycles;

    // First occurrence of the message at or after the base event that
    // is not a causal ancestor of it.
    Time best = kFarFuture;
    for (EventId id : tir.graph.liveEvents()) {
        const EventNode &n = tir.graph.node(id);
        if (n.kind != EventKind::Send && n.kind != EventKind::Recv)
            continue;
        if (n.endpoint != p.endpoint || n.msg != p.msg)
            continue;
        Time t = sched.at(id);
        if (t < 0)
            continue;
        if (t > base || (t == base && !ord.reaches(id, p.base)))
            best = std::min(best, t + p.cycles);
    }
    return best;
}

} // namespace

ExecLog
buildLog(const ThreadIR &tir, const ScheduleSample &sched)
{
    ExecLog log;
    Ordering ord(tir.graph);
    int next_val = 0;

    for (const auto &u : tir.uses) {
        Time use_t = sched.at(u.use_ev);
        Time create_t = sched.at(u.value.create);
        if (use_t < 0 || create_t < 0)
            continue;

        ValId vid = next_val++;
        LogOp create;
        create.kind = LogOp::Kind::ValCreate;
        create.value = vid;
        create.reg_deps = u.value.regs;
        log.add(create_t, std::move(create));

        // The promise this value received from the environment.
        if (!u.value.end.eternal()) {
            Time promise = kFarFuture;
            for (const auto &p : u.value.end.pats)
                promise = std::min(promise,
                                   resolvePattern(p, tir, sched, ord));
            LogOp recv;
            recv.kind = LogOp::Kind::ValRecv;
            recv.value = vid;
            recv.window_end = promise;
            log.add(create_t, std::move(recv));
        }

        if (u.point) {
            LogOp use;
            use.kind = LogOp::Kind::ValUse;
            use.value = vid;
            log.add(use_t, std::move(use));
        } else {
            LogOp send;
            send.kind = LogOp::Kind::ValSend;
            send.value = vid;
            send.msg = "send";
            send.window_end =
                resolvePattern(u.required_end, tir, sched, ord);
            log.add(use_t, std::move(send));
        }
    }

    for (const auto &a : tir.assigns) {
        Time t = sched.at(a.ev);
        if (t < 0)
            continue;
        LogOp mut;
        mut.kind = LogOp::Kind::RegMut;
        mut.reg = a.reg;
        log.add(t, std::move(mut));
    }
    return log;
}

} // namespace sem
} // namespace anvil
