#include "sem/exec_log.h"

#include <algorithm>

#include "support/strings.h"

namespace anvil {
namespace sem {

namespace {

/** Everything known about one value across the log. */
struct ValueFacts
{
    Time created = -1;
    std::set<std::string> reg_deps;   // transitive (R-Create)
    std::set<ValId> val_deps;
    Time first_use = -1;
    Time last_use = -1;               // uses and creation
    Time send_window_end = -1;        // max promised window (excl.)
    Time recv_window_end = -1;        // min received promise (excl.)

    void use(Time t)
    {
        if (first_use < 0 || t < first_use)
            first_use = t;
        last_use = std::max(last_use, t);
    }
};

} // namespace

std::vector<LogViolation>
checkLogSafety(const ExecLog &log)
{
    std::map<ValId, ValueFacts> facts;
    std::map<std::string, std::vector<Time>> mutations;

    for (const auto &[t, ops] : log.cycles) {
        for (const auto &op : ops) {
            switch (op.kind) {
              case LogOp::Kind::ValCreate: {
                auto &f = facts[op.value];
                f.created = t;
                f.use(t);
                f.reg_deps = op.reg_deps;
                f.val_deps = op.val_deps;
                break;
              }
              case LogOp::Kind::ValUse:
                facts[op.value].use(t);
                break;
              case LogOp::Kind::RegMut:
                mutations[op.reg].push_back(t);
                break;
              case LogOp::Kind::ValSend: {
                auto &f = facts[op.value];
                f.use(t);
                f.send_window_end =
                    std::max(f.send_window_end, op.window_end);
                break;
              }
              case LogOp::Kind::ValRecv: {
                auto &f = facts[op.value];
                if (f.created < 0)
                    f.created = t;
                f.use(t);
                f.recv_window_end = op.window_end;
                break;
              }
            }
        }
    }

    // Propagate transitive register dependencies (R-Create).
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[id, f] : facts) {
            for (ValId dep : f.val_deps) {
                auto it = facts.find(dep);
                if (it == facts.end())
                    continue;
                for (const auto &r : it->second.reg_deps) {
                    if (f.reg_deps.insert(r).second)
                        changed = true;
                }
            }
        }
    }

    std::vector<LogViolation> out;
    for (const auto &[id, f] : facts) {
        // Window [a, b]: from creation to the last use, extended to
        // cover promised send windows.
        Time a = f.created;
        Time b = f.last_use;
        if (f.send_window_end >= 0)
            b = std::max(b, f.send_window_end - 1);

        // [a, b] must lie within the promise received.
        if (f.recv_window_end >= 0 && b >= f.recv_window_end) {
            out.push_back({strfmt("value v%d required until cycle %lld "
                                  "but received promise ends at %lld",
                                  id, static_cast<long long>(b),
                                  static_cast<long long>(
                                      f.recv_window_end)),
                           b});
        }
        // Transitively depended-on registers must not mutate in
        // [a, b).
        for (const auto &r : f.reg_deps) {
            auto it = mutations.find(r);
            if (it == mutations.end())
                continue;
            for (Time m : it->second) {
                if (m >= a && m < b) {
                    out.push_back({strfmt("register '%s' mutated at "
                                          "cycle %lld inside the "
                                          "window [%lld, %lld] of v%d",
                                          r.c_str(),
                                          static_cast<long long>(m),
                                          static_cast<long long>(a),
                                          static_cast<long long>(b),
                                          id),
                                   m});
                }
            }
        }
    }
    return out;
}

} // namespace sem
} // namespace anvil
