#include "sem/safety.h"

#include "ir/elaborate.h"
#include "lang/parser.h"
#include "sem/loggen.h"

namespace anvil {
namespace sem {

FuzzReport
fuzzProcessSafety(const std::string &source,
                  const std::string &proc_name, int samples,
                  unsigned seed, int max_delay)
{
    FuzzReport report;
    DiagEngine diags;
    Program prog = parseAnvil(source, diags);
    const ProcDef *proc = prog.findProc(proc_name);
    if (!proc || diags.hasErrors()) {
        report.example_violations.push_back("elaboration failed: " +
                                            diags.render());
        report.unsafe_samples = samples;
        return report;
    }
    ProcIR pir = elaborateProc(prog, *proc, diags, 2);

    for (int s = 0; s < samples; s++) {
        bool sample_bad = false;
        for (const auto &tir : pir.threads) {
            ScheduleSample sched =
                sampleSchedule(*tir, seed + 977u * s, max_delay);
            ExecLog log = buildLog(*tir, sched);
            auto violations = checkLogSafety(log);
            if (!violations.empty()) {
                sample_bad = true;
                if (report.example_violations.size() < 5)
                    report.example_violations.push_back(
                        violations[0].what);
            }
        }
        report.samples++;
        if (sample_bad)
            report.unsafe_samples++;
    }
    return report;
}

} // namespace sem
} // namespace anvil
