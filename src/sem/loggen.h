/**
 * @file
 * Random schedule sampling: turns an elaborated thread into concrete
 * execution logs by assigning every dynamic synchronization a random
 * delay and every branch a random arm (the nondeterminism of
 * Def. C.2), then emitting the Appendix C operations.
 *
 * Used for property tests of Theorem C.20: every sampled log of a
 * well-typed thread must satisfy the Def. C.15 safety predicate.
 */

#ifndef ANVIL_SEM_LOGGEN_H
#define ANVIL_SEM_LOGGEN_H

#include <map>

#include "ir/elaborate.h"
#include "sem/exec_log.h"

namespace anvil {
namespace sem {

/** A concrete timing assignment for one run of a thread. */
struct ScheduleSample
{
    /** Event -> cycle; kNoTime when the event was never reached. */
    std::map<EventId, Time> times;

    static constexpr Time kNoTime = -1;

    Time at(EventId e) const
    {
        auto it = times.find(e);
        return it != times.end() ? it->second : kNoTime;
    }
};

/**
 * Sample one timestamp function of the thread's event graph
 * (Def. C.9): fixed delays are exact, dynamic syncs take 0..max_delay
 * extra cycles (same-message syncs at least one cycle apart), and
 * each branch takes a random arm.
 */
ScheduleSample sampleSchedule(const ThreadIR &tir, unsigned seed,
                              int max_delay = 4);

/**
 * Emit the execution log of one sampled run: value creations with
 * their register dependencies, point uses, register mutations, and
 * send/receive windows resolved against the sampled times.
 */
ExecLog buildLog(const ThreadIR &tir, const ScheduleSample &sched);

} // namespace sem
} // namespace anvil

#endif // ANVIL_SEM_LOGGEN_H
