/**
 * @file
 * Helpers shared by every backend that prints or parses RTL operators
 * and identifiers: the SystemVerilog printer (sv_printer.cpp), the
 * Anvil-to-RTL generator (rtl_gen.cpp), and the C++ kernel emitter
 * (cpp_emitter.cpp).  Hoisted here so each backend reuses one table
 * instead of keeping a drifting private copy; the operand walk they
 * share lives on rtl::Netlist::forEachOperand.
 */

#ifndef ANVIL_CODEGEN_EMIT_UTIL_H
#define ANVIL_CODEGEN_EMIT_UTIL_H

#include <cctype>
#include <string>

#include "rtl/rtl.h"

namespace anvil {
namespace codegen {

/**
 * Infix (or reduction-prefix) token of an operator.  Valid in both
 * SystemVerilog and C++ expression contexts for every operator except
 * the reductions, which each backend wraps in its own idiom.
 */
inline const char *
opToken(rtl::Op op)
{
    switch (op) {
      case rtl::Op::Not: return "~";
      case rtl::Op::RedOr: return "|";
      case rtl::Op::RedAnd: return "&";
      case rtl::Op::And: return "&";
      case rtl::Op::Or: return "|";
      case rtl::Op::Xor: return "^";
      case rtl::Op::Add: return "+";
      case rtl::Op::Sub: return "-";
      case rtl::Op::Mul: return "*";
      case rtl::Op::Eq: return "==";
      case rtl::Op::Ne: return "!=";
      case rtl::Op::Lt: return "<";
      case rtl::Op::Le: return "<=";
      case rtl::Op::Gt: return ">";
      case rtl::Op::Ge: return ">=";
      case rtl::Op::Shl: return "<<";
      case rtl::Op::Shr: return ">>";
    }
    return "?";
}

/**
 * Inverse of opToken for the binary operators: map a surface token to
 * its rtl::Op.  Returns `fallback` for unknown tokens (the RTL
 * generator's historical behaviour for unrecognised operators).
 */
inline rtl::Op
binopFromToken(const std::string &tok,
               rtl::Op fallback = rtl::Op::Add)
{
    static const rtl::Op kBinops[] = {
        rtl::Op::And, rtl::Op::Or,  rtl::Op::Xor, rtl::Op::Add,
        rtl::Op::Sub, rtl::Op::Mul, rtl::Op::Eq,  rtl::Op::Ne,
        rtl::Op::Lt,  rtl::Op::Le,  rtl::Op::Gt,  rtl::Op::Ge,
        rtl::Op::Shl, rtl::Op::Shr,
    };
    for (rtl::Op op : kBinops)
        if (tok == opToken(op))
            return op;
    return fallback;
}

/** Legalize a flattened signal name into a C/SV identifier. */
inline std::string
sanitizeIdent(const std::string &n)
{
    std::string out;
    for (char c : n)
        out += (isalnum(static_cast<unsigned char>(c)) || c == '_')
            ? c : '_';
    return out;
}

} // namespace codegen
} // namespace anvil

#endif // ANVIL_CODEGEN_EMIT_UTIL_H
