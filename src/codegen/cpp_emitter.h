/**
 * @file
 * Compile-to-C++ netlist backend: lowers the strict combinational
 * portion of a levelized rtl::Netlist to a self-contained C++
 * translation unit implementing the AnvilKernelV1 ABI
 * (rtl/kernel_abi.h).
 *
 * Layout of the emitted unit (see docs/compile.md):
 *  - one function per logic level, in levelized order;
 *  - the u64 fast lane lowered to native integer arithmetic, wide
 *    values to packed-word helper calls;
 *  - dirty-set guards lowered to basic-block skips: nodes are grouped
 *    into small per-level blocks, a changed net marks its consumer
 *    blocks in a bitmap, and a level function only enters marked
 *    blocks (plus per-node operand-changed guards inside a block);
 *  - registers, inputs, and constants as a flat packed-word state
 *    array indexed by per-net offsets.
 *
 * The dump compiles standalone (`c++ -O2 -fPIC -shared`); the JIT
 * (codegen/jit.h) automates compile + dlopen + hash validation.
 */

#ifndef ANVIL_CODEGEN_CPP_EMITTER_H
#define ANVIL_CODEGEN_CPP_EMITTER_H

#include <string>

#include "rtl/netlist.h"

namespace anvil {
namespace codegen {

/**
 * Emit `nl` as a C++ kernel translation unit.  `design_name` only
 * appears in the banner comment; behavioural identity is pinned by
 * the embedded rtl::designHash.
 */
std::string emitCppKernel(const rtl::Netlist &nl,
                          const std::string &design_name);

} // namespace codegen
} // namespace anvil

#endif // ANVIL_CODEGEN_CPP_EMITTER_H
