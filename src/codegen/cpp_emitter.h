/**
 * @file
 * Compile-to-C++ netlist backend: lowers the strict combinational
 * portion of a levelized rtl::Netlist to a self-contained C++
 * translation unit implementing the AnvilKernelV2 ABI
 * (rtl/kernel_abi.h).
 *
 * Layout of the emitted unit (see docs/compile.md):
 *  - the interpreter's fan-out CSR compiled in as static tables
 *    (consumer lists, per-node level/slot, bitmap word offsets);
 *  - two functions per logic level: a sparse one draining the level's
 *    exact occupancy bitmap in ascending slot order through a dense
 *    jump table, and a straight-line dense one for high-activity
 *    frames — whole frames flip with the same ~50%/40% hysteresis as
 *    the interpreter, and a single crowded level (≥ 25% queued)
 *    escalates to its dense body inside a sparse frame;
 *  - the u64 fast lane lowered to native integer arithmetic, wide
 *    values to packed-word helper calls;
 *  - change-cutting at every store: an unchanged value queues no
 *    consumers, and eval()'s changed-net list is exact;
 *  - registers, inputs, and constants as a flat packed-word state
 *    array indexed by per-net offsets.
 *
 * The dump compiles standalone (`c++ -O2 -fPIC -shared`); the JIT
 * (codegen/jit.h) automates compile + dlopen + hash validation.
 */

#ifndef ANVIL_CODEGEN_CPP_EMITTER_H
#define ANVIL_CODEGEN_CPP_EMITTER_H

#include <string>

#include "rtl/netlist.h"

namespace anvil {
namespace codegen {

/**
 * Codegen scheme revision.  Bumped whenever the emitted source for an
 * unchanged netlist changes (new scheduler, table layout, ABI rev) so
 * caches keyed on the design hash alone can never serve a kernel
 * built by an older emitter.  v1: block-granular dirty bitmaps;
 * v2: event-driven per-level exact occupancy bitmaps +
 * AnvilKernelV2; v3: per-level evaluation counters + level_stats()
 * (ABI version 3).
 */
constexpr int kCppEmitterVersion = 3;

/**
 * Emit `nl` as a C++ kernel translation unit.  `design_name` only
 * appears in the banner comment; behavioural identity is pinned by
 * the embedded rtl::designHash.
 */
std::string emitCppKernel(const rtl::Netlist &nl,
                          const std::string &design_name);

} // namespace codegen
} // namespace anvil

#endif // ANVIL_CODEGEN_CPP_EMITTER_H
