/**
 * @file
 * FSM code generation: lowers an elaborated process (single-iteration
 * event graphs) to the structural RTL IR (paper §6.2).
 *
 * Each event gets a one-bit `current` wire; joins, delays and dynamic
 * synchronizations get small state registers.  Message lowering maps
 * each message to up to three ports (data / valid / ack), omitting
 * the handshake ports for non-dynamic sync modes.  No logic is
 * generated to maintain lifetimes: timing safety is established
 * statically, so the generated hardware carries no overhead for it.
 */

#ifndef ANVIL_CODEGEN_RTL_GEN_H
#define ANVIL_CODEGEN_RTL_GEN_H

#include <memory>
#include <string>

#include "ir/elaborate.h"
#include "rtl/rtl.h"
#include "support/diag.h"

namespace anvil {

/** Port name helpers shared with tests and simulation harnesses. */
std::string msgDataPort(const std::string &ep, const std::string &msg);
std::string msgValidPort(const std::string &ep, const std::string &msg);
std::string msgAckPort(const std::string &ep, const std::string &msg);

/** The AES S-box as a ROM table (the `sbox()` intrinsic). */
std::shared_ptr<const std::vector<BitVec>> aesSboxRom();

/**
 * Generate an RTL module for one process.
 *
 * @param pir process elaborated with unroll = 1
 * @param child_modules already-generated modules for spawned procs
 * @param diags diagnostics sink
 */
rtl::ModulePtr generateRtl(
    const ProcIR &pir,
    const std::map<std::string, rtl::ModulePtr> &child_modules,
    DiagEngine &diags);

} // namespace anvil

#endif // ANVIL_CODEGEN_RTL_GEN_H
