/**
 * @file
 * SystemVerilog pretty-printer for the structural RTL IR.
 *
 * Emits one synthesizable module per rtl::Module: ports with an
 * implicit clk, continuous assigns for wires, and one always_ff block
 * per registered update group.
 */

#ifndef ANVIL_CODEGEN_SV_PRINTER_H
#define ANVIL_CODEGEN_SV_PRINTER_H

#include <string>

#include "rtl/rtl.h"

namespace anvil {

/** Render one module as SystemVerilog source. */
std::string printSystemVerilog(const rtl::Module &mod);

/** Render a module and (recursively) all distinct child modules. */
std::string printSystemVerilogHierarchy(const rtl::Module &top);

} // namespace anvil

#endif // ANVIL_CODEGEN_SV_PRINTER_H
