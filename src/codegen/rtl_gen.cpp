#include "codegen/rtl_gen.h"

#include <algorithm>
#include <set>

#include "codegen/emit_util.h"
#include "designs/designs.h"
#include "support/strings.h"

namespace anvil {

using rtl::ExprPtr;
using rtl::Op;

std::string
msgDataPort(const std::string &ep, const std::string &msg)
{
    return ep + "_" + msg + "_data";
}

std::string
msgValidPort(const std::string &ep, const std::string &msg)
{
    return ep + "_" + msg + "_valid";
}

std::string
msgAckPort(const std::string &ep, const std::string &msg)
{
    return ep + "_" + msg + "_ack";
}

std::shared_ptr<const std::vector<BitVec>>
aesSboxRom()
{
    static std::shared_ptr<const std::vector<BitVec>> rom = [] {
        auto t = std::make_shared<std::vector<BitVec>>();
        for (int i = 0; i < 256; i++)
            t->push_back(BitVec(8, designs::aesSbox()[i]));
        return t;
    }();
    return rom;
}

namespace {

/** Generates the FSM and datapath for one process. */
class RtlGenerator
{
  public:
    RtlGenerator(const ProcIR &pir,
                 const std::map<std::string, rtl::ModulePtr> &children,
                 DiagEngine &diags)
        : _pir(pir), _children(children), _diags(diags),
          _mod(std::make_shared<rtl::Module>())
    {
    }

    rtl::ModulePtr run();

  private:
    struct MsgPorts
    {
        std::string data, valid, ack;   // empty when omitted
        int width = 1;
        bool we_send = false;
    };

    struct SendSite
    {
        ExprPtr active;
        ExprPtr data;
    };

    /** Canonical signal prefix for an endpoint (see DESIGN.md). */
    std::string canon(const std::string &ep) const;

    void declarePorts();
    void declareRegs();
    void wireChildren();
    void generateThread(const ThreadIR &tir, int idx);
    void finishMessages();

    /** The `current` wire name for an event. */
    std::string evWire(int thread, EventId e) const
    {
        return strfmt("t%d_ev%d", thread, e);
    }

    ExprPtr evRef(int thread, EventId e) const
    {
        return rtl::ref(evWire(thread, e), 1);
    }

    /** Compile a term to a combinational expression. */
    ExprPtr compileExpr(const ThreadIR &tir, const Term &t, int thread);

    int valueWidth(const ThreadIR &tir, const Term &t) const;

    /** Sync-mode query helpers. */
    const SyncMode &senderSync(const MessageDef &m) const
    {
        return m.dir == MsgDir::Right ? m.left_sync : m.right_sync;
    }
    const SyncMode &receiverSync(const MessageDef &m) const
    {
        return m.dir == MsgDir::Right ? m.right_sync : m.left_sync;
    }

    /** True when ev_end is combinationally reachable from ev_root. */
    bool combReachable(const EventGraph &g, EventId from, EventId to)
        const;

    const ProcIR &_pir;
    const std::map<std::string, rtl::ModulePtr> &_children;
    DiagEngine &_diags;
    rtl::ModulePtr _mod;

    /** Message key (canon.msg) -> port info. */
    std::map<std::string, MsgPorts> _msg_ports;
    /** Message key -> all send sites (for data/valid muxing). */
    std::map<std::string, std::vector<SendSite>> _send_sites;
    /** Message key -> all recv "waiting" terms (for ack). */
    std::map<std::string, std::vector<ExprPtr>> _recv_sites;
    /** Let-binding memo: bound term -> named wire. */
    std::map<const Term *, ExprPtr> _let_wires;
    /** Branch condition memo: cond term -> named wire. */
    std::map<const Term *, ExprPtr> _cond_wires;
    int _next_tmp = 0;
};

std::string
RtlGenerator::canon(const std::string &ep) const
{
    const EndpointInfo *info = _pir.findEndpoint(ep);
    if (info && !info->is_param && info->side == EndpointSide::Right)
        return info->peer;
    return ep;
}

void
RtlGenerator::declarePorts()
{
    // One port group per message of each endpoint (param endpoints
    // become module ports, local channels become internal wires).
    for (const auto &[name, info] : _pir.endpoints) {
        if (!info.chan)
            continue;
        if (!info.is_param && info.side == EndpointSide::Right)
            continue;  // canonical name is the left endpoint's
        for (const auto &m : info.chan->messages) {
            std::string key = name + "." + m.name;
            MsgPorts mp;
            mp.width = _pir.prog->typeWidth(m.dtype, m.width_expr);
            // For local channels we record ports from the left side's
            // perspective; `we_send` is only meaningful for params.
            mp.we_send = _pir.canSend(name, m);
            mp.data = msgDataPort(name, m.name);
            if (senderSync(m).kind == SyncMode::Kind::Dynamic)
                mp.valid = msgValidPort(name, m.name);
            if (receiverSync(m).kind == SyncMode::Kind::Dynamic)
                mp.ack = msgAckPort(name, m.name);
            if (info.is_param) {
                // Direction from this module's point of view.
                bool out_data = mp.we_send;
                _mod->ports.push_back({mp.data, mp.width, !out_data});
                if (!mp.valid.empty())
                    _mod->ports.push_back({mp.valid, 1, !mp.we_send});
                if (!mp.ack.empty())
                    _mod->ports.push_back({mp.ack, 1, mp.we_send});
            }
            _msg_ports[key] = mp;
        }
    }
}

void
RtlGenerator::declareRegs()
{
    for (const auto &r : _pir.def->regs) {
        int w = _pir.prog->typeWidth(r.dtype, r.width);
        _mod->reg(r.name, w, 0);
    }
}

void
RtlGenerator::wireChildren()
{
    for (const auto &s : _pir.def->spawns) {
        auto it = _children.find(s.proc_name);
        if (it == _children.end()) {
            _diags.error(strfmt("spawned process '%s' has no generated "
                                "module", s.proc_name.c_str()), s.loc);
            continue;
        }
        const ProcDef *child_def = _pir.prog->findProc(s.proc_name);
        if (!child_def || child_def->params.size() != s.args.size()) {
            _diags.error(strfmt("spawn of '%s' has wrong arity",
                                s.proc_name.c_str()), s.loc);
            continue;
        }
        rtl::Instance inst;
        inst.name = s.proc_name + "_" +
            std::to_string(_mod->instances.size());
        inst.module = it->second;
        for (size_t i = 0; i < s.args.size(); i++) {
            const EndpointParam &param = child_def->params[i];
            const std::string &arg = s.args[i];
            const EndpointInfo *info = _pir.findEndpoint(arg);
            if (!info || !info->chan) {
                _diags.error(strfmt("unknown endpoint '%s' in spawn",
                                    arg.c_str()), s.loc);
                continue;
            }
            std::string cn = canon(arg);
            for (const auto &m : info->chan->messages) {
                // Child-side port names.
                std::string c_data = msgDataPort(param.name, m.name);
                std::string c_valid = msgValidPort(param.name, m.name);
                std::string c_ack = msgAckPort(param.name, m.name);
                // Parent-side canonical wire names.
                std::string p_data = msgDataPort(cn, m.name);
                std::string p_valid = msgValidPort(cn, m.name);
                std::string p_ack = msgAckPort(cn, m.name);
                int w = _pir.prog->typeWidth(m.dtype, m.width_expr);

                bool child_sends = param.side == EndpointSide::Left
                    ? m.dir == MsgDir::Right : m.dir == MsgDir::Left;
                bool has_valid =
                    senderSync(m).kind == SyncMode::Kind::Dynamic;
                bool has_ack =
                    receiverSync(m).kind == SyncMode::Kind::Dynamic;

                if (child_sends) {
                    inst.outputs[p_data] = c_data;
                    if (has_valid)
                        inst.outputs[p_valid] = c_valid;
                    if (has_ack)
                        inst.inputs[c_ack] = rtl::ref(p_ack, 1);
                } else {
                    inst.inputs[c_data] = rtl::ref(p_data, w);
                    if (has_valid)
                        inst.inputs[c_valid] = rtl::ref(p_valid, 1);
                    if (has_ack)
                        inst.outputs[p_ack] = c_ack;
                }
            }
        }
        _mod->instances.push_back(std::move(inst));
    }
}

int
RtlGenerator::valueWidth(const ThreadIR &tir, const Term &t) const
{
    auto it = tir.values.find(&t);
    if (it != tir.values.end() && it->second.width > 0)
        return it->second.width;
    if (t.kind == TermKind::Literal) {
        uint64_t v = t.value;
        int w = 1;
        while (v > 1) {
            v >>= 1;
            w++;
        }
        return w;
    }
    return 1;
}

ExprPtr
RtlGenerator::compileExpr(const ThreadIR &tir, const Term &t, int thread)
{
    switch (t.kind) {
      case TermKind::Literal:
        return rtl::cst(BitVec(std::max(valueWidth(tir, t), 1), t.value));
      case TermKind::Ident: {
        auto b = tir.ident_binding.find(&t);
        if (b == tir.ident_binding.end())
            return rtl::cst(1, 0);
        auto w = _let_wires.find(b->second);
        if (w != _let_wires.end())
            return w->second;
        ExprPtr e = compileExpr(tir, *b->second, thread);
        ExprPtr named = _mod->wire(
            strfmt("t%d_val%d", thread, _next_tmp++), e);
        _let_wires[b->second] = named;
        return named;
      }
      case TermKind::RegRead: {
        const RegDef *rd = _pir.def->findReg(t.name);
        int w = rd ? _pir.prog->typeWidth(rd->dtype, rd->width) : 1;
        return rtl::ref(t.name, w);
      }
      case TermKind::Recv: {
        auto key = canon(t.endpoint) + "." + t.msg;
        auto it = _msg_ports.find(key);
        if (it == _msg_ports.end())
            return rtl::cst(1, 0);
        return rtl::ref(msgDataPort(canon(t.endpoint), t.msg),
                        it->second.width);
      }
      case TermKind::Ready: {
        auto key = canon(t.endpoint) + "." + t.msg;
        auto it = _msg_ports.find(key);
        if (it == _msg_ports.end())
            return rtl::cst(1, 1);
        const MsgPorts &mp = it->second;
        const EndpointInfo *info = _pir.findEndpoint(t.endpoint);
        const MessageDef *md = _pir.contract(t.endpoint, t.msg);
        bool we_send = info && md && _pir.canSend(t.endpoint, *md);
        const std::string &port = we_send ? mp.ack : mp.valid;
        if (port.empty())
            return rtl::cst(1, 1);
        return rtl::ref(port, 1);
      }
      case TermKind::Binop: {
        ExprPtr a = compileExpr(tir, *t.kids[0], thread);
        ExprPtr b = compileExpr(tir, *t.kids[1], thread);
        return rtl::binop(codegen::binopFromToken(t.op),
                          std::move(a), std::move(b));
      }
      case TermKind::Unop: {
        ExprPtr a = compileExpr(tir, *t.kids[0], thread);
        if (t.op == "!")
            return rtl::unop(Op::Not, rtl::unop(Op::RedOr, std::move(a)));
        return rtl::unop(Op::Not, std::move(a));
      }
      case TermKind::Slice:
        return rtl::slice(compileExpr(tir, *t.kids[0], thread), t.lo,
                          t.hi - t.lo + 1);
      case TermKind::Call: {
        ExprPtr a = compileExpr(tir, *t.kids[0], thread);
        if (t.name == "sbox")
            return rtl::romLookup(aesSboxRom(),
                                  rtl::slice(std::move(a), 0, 8), 8);
        if (t.name == "shr" && t.kids.size() == 2)
            return rtl::binop(Op::Shr, std::move(a),
                              compileExpr(tir, *t.kids[1], thread));
        return rtl::cst(1, 0);
      }
      case TermKind::If: {
        ExprPtr c = compileExpr(tir, *t.kids[0], thread);
        ExprPtr a = compileExpr(tir, *t.kids[1], thread);
        ExprPtr b = t.kids.size() > 2
            ? compileExpr(tir, *t.kids[2], thread) : rtl::cst(1, 0);
        return rtl::mux(rtl::unop(Op::RedOr, std::move(c)),
                        std::move(a), std::move(b));
      }
      case TermKind::Let:
      case TermKind::Wait:
        return compileExpr(tir, *t.kids.back(), thread);
      case TermKind::Join:
        return compileExpr(tir, *t.kids[1], thread);
      default:
        // Unit-valued terms have no data representation.
        return rtl::cst(1, 0);
    }
}

bool
RtlGenerator::combReachable(const EventGraph &g, EventId from,
                            EventId to) const
{
    // An edge into a Delay(N>=1) node is registered; everything else
    // (joins, branches, merges, syncs) is combinational.
    std::set<EventId> seen;
    std::vector<EventId> stack{from};
    auto succ = g.successors();
    while (!stack.empty()) {
        EventId e = stack.back();
        stack.pop_back();
        if (e == to)
            return true;
        if (!seen.insert(e).second)
            continue;
        for (EventId s : succ[e]) {
            const EventNode &n = g.node(s);
            if (n.kind == EventKind::Delay && n.delay >= 1)
                continue;
            stack.push_back(s);
        }
    }
    return false;
}

void
RtlGenerator::generateThread(const ThreadIR &tir, int idx)
{
    const EventGraph &g = tir.graph;
    EventId root = g.resolve(tir.root);
    EventId end = g.resolve(tir.def && tir.def->recursive
                            ? tir.recurse_ev : tir.end);

    // Thread start bookkeeping.
    std::string started = strfmt("t%d_started", idx);
    _mod->reg(started, 1, 0);
    _mod->update(started, rtl::cst(1, 1), rtl::cst(1, 1));

    ExprPtr loopback;
    if (combReachable(g, root, end)) {
        // Registered loopback to avoid a combinational cycle; costs
        // one cycle per iteration and is reported as a note.
        std::string lb = strfmt("t%d_loopback", idx);
        _mod->reg(lb, 1, 0);
        _mod->update(lb, rtl::cst(1, 1), evRef(idx, end));
        loopback = rtl::ref(lb, 1);
        _diags.note("thread loop restarts through a register "
                    "(one extra cycle per iteration)",
                    tir.def ? tir.def->loc : SrcLoc{});
    } else {
        loopback = evRef(idx, end);
    }

    // Event `current` wires.
    for (EventId e : g.liveEvents()) {
        const EventNode &n = g.node(e);
        ExprPtr cur;
        switch (n.kind) {
          case EventKind::Root:
            cur = ~rtl::ref(started, 1) | loopback;
            break;
          case EventKind::Delay: {
            if (n.delay == 0) {
                cur = evRef(idx, n.preds[0]);
                break;
            }
            // Shift-register chain: supports overlapping pulses from
            // recursive (pipelined) threads.
            ExprPtr prev = evRef(idx, n.preds[0]);
            for (int s = 0; s < n.delay; s++) {
                std::string st = strfmt("t%d_d%d_%d", idx, e, s);
                _mod->reg(st, 1, 0);
                _mod->update(st, rtl::cst(1, 1), prev);
                prev = rtl::ref(st, 1);
            }
            cur = prev;
            break;
          }
          case EventKind::Send: {
            std::string key = canon(n.endpoint) + "." + n.msg;
            const MsgPorts &mp = _msg_ports[key];
            ExprPtr start = evRef(idx, n.preds[0]);
            std::string pend = strfmt("t%d_sp%d", idx, e);
            _mod->reg(pend, 1, 0);
            ExprPtr active = rtl::ref(pend, 1) | start;
            ExprPtr done;
            if (!mp.ack.empty())
                done = active & rtl::ref(mp.ack, 1);
            else
                done = start;  // static sync: completes immediately
            _mod->update(pend, rtl::cst(1, 1), active & ~done);
            cur = done;
            // Record the site for data/valid muxing.
            const Term *payload = nullptr;
            for (const auto &a : n.actions)
                if (a.kind == EventAction::Kind::SendData &&
                    a.endpoint == n.endpoint && a.msg == n.msg)
                    payload = a.value;
            ExprPtr data = payload
                ? compileExpr(tir, *payload, idx) : rtl::cst(1, 0);
            _send_sites[key].push_back({active, data});
            break;
          }
          case EventKind::Recv: {
            std::string key = canon(n.endpoint) + "." + n.msg;
            const MsgPorts &mp = _msg_ports[key];
            ExprPtr start = evRef(idx, n.preds[0]);
            std::string wait = strfmt("t%d_rw%d", idx, e);
            _mod->reg(wait, 1, 0);
            ExprPtr active = rtl::ref(wait, 1) | start;
            ExprPtr done;
            if (!mp.valid.empty())
                done = active & rtl::ref(mp.valid, 1);
            else
                done = start;
            _mod->update(wait, rtl::cst(1, 1), active & ~done);
            cur = done;
            _recv_sites[key].push_back(active);
            break;
          }
          case EventKind::Join: {
            // arr_p registers remember which predecessors fired.
            std::vector<ExprPtr> terms;
            std::vector<std::string> arrs;
            for (size_t i = 0; i < n.preds.size(); i++) {
                std::string arr = strfmt("t%d_j%d_%zu", idx, e, i);
                _mod->reg(arr, 1, 0);
                arrs.push_back(arr);
                terms.push_back(rtl::ref(arr, 1) |
                                evRef(idx, n.preds[i]));
            }
            ExprPtr all = terms.empty() ? rtl::cst(1, 0) : terms[0];
            for (size_t i = 1; i < terms.size(); i++)
                all = all & terms[i];
            for (size_t i = 0; i < arrs.size(); i++)
                _mod->update(arrs[i], rtl::cst(1, 1),
                             terms[i] & ~all);
            cur = all;
            break;
          }
          case EventKind::Branch: {
            ExprPtr pred = evRef(idx, n.preds[0]);
            ExprPtr bit;
            if (!n.cond_term) {
                bit = rtl::cst(1, 1);
            } else {
                auto it = _cond_wires.find(n.cond_term);
                if (it != _cond_wires.end()) {
                    bit = it->second;
                } else {
                    ExprPtr c = compileExpr(tir, *n.cond_term, idx);
                    bit = _mod->wire(strfmt("t%d_c%d", idx, n.cond_id),
                                     rtl::unop(Op::RedOr, c));
                    _cond_wires[n.cond_term] = bit;
                }
            }
            cur = n.cond_taken ? (pred & bit) : (pred & ~bit);
            break;
          }
          case EventKind::Merge: {
            ExprPtr any = rtl::cst(1, 0);
            for (EventId p : n.preds)
                any = any | evRef(idx, p);
            cur = any;
            break;
          }
        }
        _mod->wire(evWire(idx, e), cur);

        // Attach non-send actions.
        for (const auto &a : n.actions) {
            switch (a.kind) {
              case EventAction::Kind::AssignReg: {
                ExprPtr v = compileExpr(tir, *a.value, idx);
                _mod->update(a.reg, evRef(idx, e), v);
                break;
              }
              case EventAction::Kind::DPrint:
                _mod->print(evRef(idx, e), a.text);
                break;
              default:
                break;  // SendData handled above, RecvData is passive
            }
        }
    }
}

void
RtlGenerator::finishMessages()
{
    for (const auto &[key, mp] : _msg_ports) {
        // Drive data/valid when we have send sites.
        auto s = _send_sites.find(key);
        if (s != _send_sites.end() && !s->second.empty()) {
            ExprPtr valid = rtl::cst(1, 0);
            ExprPtr data = rtl::cst(mp.width, 0);
            for (auto it = s->second.rbegin(); it != s->second.rend();
                 ++it) {
                valid = valid | it->active;
                data = rtl::mux(it->active, it->data, data);
            }
            _mod->wire(mp.data, data);
            if (!mp.valid.empty())
                _mod->wire(mp.valid, valid);
        } else if (!_recv_sites.count(key)) {
            // Unused message: tie outputs off if they are ours to
            // drive (param endpoints only).
            auto dot = key.find('.');
            std::string ep = key.substr(0, dot);
            const EndpointInfo *info = _pir.findEndpoint(ep);
            if (info && info->is_param) {
                const MessageDef *md =
                    _pir.contract(ep, key.substr(dot + 1));
                if (md && _pir.canSend(ep, *md)) {
                    _mod->wire(mp.data, rtl::cst(mp.width, 0));
                    if (!mp.valid.empty())
                        _mod->wire(mp.valid, rtl::cst(1, 0));
                }
            }
        }
        // Drive ack when we have recv sites.
        auto r = _recv_sites.find(key);
        if (!mp.ack.empty()) {
            if (r != _recv_sites.end() && !r->second.empty()) {
                ExprPtr ack = rtl::cst(1, 0);
                for (const auto &a : r->second)
                    ack = ack | a;
                _mod->wire(mp.ack, ack);
            } else if (s == _send_sites.end()) {
                auto dot = key.find('.');
                std::string ep = key.substr(0, dot);
                const EndpointInfo *info = _pir.findEndpoint(ep);
                if (info && info->is_param) {
                    const MessageDef *md =
                        _pir.contract(ep, key.substr(dot + 1));
                    if (md && !_pir.canSend(ep, *md))
                        _mod->wire(mp.ack, rtl::cst(1, 0));
                }
            }
        }
    }
}

rtl::ModulePtr
RtlGenerator::run()
{
    _mod->name = _pir.def->name;
    declarePorts();
    declareRegs();
    wireChildren();
    for (size_t i = 0; i < _pir.threads.size(); i++)
        generateThread(*_pir.threads[i], static_cast<int>(i));
    finishMessages();
    return _mod;
}

} // namespace

rtl::ModulePtr
generateRtl(const ProcIR &pir,
            const std::map<std::string, rtl::ModulePtr> &child_modules,
            DiagEngine &diags)
{
    RtlGenerator gen(pir, child_modules, diags);
    return gen.run();
}

} // namespace anvil
