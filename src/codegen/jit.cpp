#include "codegen/jit.h"

#include <dlfcn.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "codegen/cpp_emitter.h"
#include "support/strings.h"

namespace anvil {
namespace codegen {

namespace {

bool
runs(const std::string &cmd)
{
    std::string probe = cmd + " --version > /dev/null 2>&1";
    return std::system(probe.c_str()) == 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
removeTree(const std::string &dir)
{
    // The dir only ever holds the three files we created.
    for (const char *f : {"kernel.cpp", "kernel.so", "cc.err"})
        ::unlink((dir + "/" + f).c_str());
    ::rmdir(dir.c_str());
}

/** Cache key: design hash + everything that changes the built object
 *  for the same design — the compiler opt level and the emitter's
 *  codegen revision. */
struct CacheKey
{
    uint64_t hash;
    int opt_level;
    int emitter_tag;

    bool operator<(const CacheKey &o) const
    {
        if (hash != o.hash)
            return hash < o.hash;
        if (opt_level != o.opt_level)
            return opt_level < o.opt_level;
        return emitter_tag < o.emitter_tag;
    }
};

std::mutex g_cache_mu;
std::map<CacheKey, std::shared_ptr<CompiledKernel>> g_cache;

} // namespace

CompiledKernel::~CompiledKernel()
{
    if (_dl)
        ::dlclose(_dl);
}

std::string
jitCompilerPath()
{
    if (const char *env = ::getenv("ANVIL_CXX"))
        return env;   // verbatim, even if broken: the fallback hook
    for (const char *c : {"c++", "g++", "clang++"})
        if (runs(c))
            return c;
    return "";
}

JitResult
jitCompileKernel(const rtl::Netlist &nl, const JitOptions &opts)
{
    JitResult res;
    uint64_t t0 = rtl::monotonicNanos();
    uint64_t hash = rtl::designHash(nl);
    CacheKey key{hash, opts.opt_level, opts.emitter_tag};
    {
        std::lock_guard<std::mutex> lock(g_cache_mu);
        auto it = g_cache.find(key);
        if (it != g_cache.end()) {
            res.kernel = it->second;
            res.cache_hit = true;
            return res;
        }
    }

    std::string cxx = jitCompilerPath();
    if (cxx.empty()) {
        res.error = "no C++ compiler found (tried c++, g++, clang++; "
                    "set ANVIL_CXX to override)";
        return res;
    }

    // Scratch lands under $TMPDIR when set (sandboxes and CI point it
    // at a private writable dir), falling back to /tmp.
    const char *tmp_env = ::getenv("TMPDIR");
    std::string tmp_base =
        tmp_env && *tmp_env ? tmp_env : "/tmp";
    while (tmp_base.size() > 1 && tmp_base.back() == '/')
        tmp_base.pop_back();
    std::string tmpl_s = tmp_base + "/anvil-jit-XXXXXX";
    std::vector<char> tmpl(tmpl_s.begin(), tmpl_s.end());
    tmpl.push_back('\0');
    if (!::mkdtemp(tmpl.data())) {
        res.error = "mkdtemp failed in " + tmp_base;
        return res;
    }
    std::string dir = tmpl.data();
    std::string src = dir + "/kernel.cpp";
    std::string so = dir + "/kernel.so";
    std::string err = dir + "/cc.err";
    {
        std::string unit = emitCppKernel(nl, "jit");
        res.source_bytes = unit.size();
        std::ofstream out(src);
        out << unit;
        if (!out) {
            res.error = "failed to write " + src;
            removeTree(dir);
            return res;
        }
    }

    // Very large generated units (multi-MB crossbars) gain nothing
    // measurable from -O2's inliner here but pay minutes of compile
    // wall-time for it; cap them at -O1.  The cache key keeps the
    // *requested* level, so the policy is transparent to callers.
    int opt = opts.opt_level;
    if (opt > 1 && res.source_bytes > 2u << 20)
        opt = 1;
    std::string cmd = strfmt(
        "%s -std=c++17 -O%d -fPIC -shared -fno-exceptions -fno-rtti "
        "-g0 -o %s %s 2> %s",
        cxx.c_str(), opt, so.c_str(), src.c_str(),
        err.c_str());
    if (std::system(cmd.c_str()) != 0) {
        std::string diag = readFile(err);
        if (diag.size() > 2000)
            diag.resize(2000);
        while (!diag.empty() &&
               (diag.back() == '\n' || diag.back() == '\r'))
            diag.pop_back();
        res.error = "kernel compile failed (" + cxx + "): " + diag;
        if (!opts.keep_files)
            removeTree(dir);
        return res;
    }

    void *dl = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!dl) {
        const char *why = ::dlerror();
        res.error = std::string("dlopen failed: ") +
                    (why ? why : "unknown");
        if (!opts.keep_files)
            removeTree(dir);
        return res;
    }
    // The mapping survives the unlink; clean up eagerly so nothing
    // litters /tmp even if the process dies later.
    if (!opts.keep_files)
        removeTree(dir);

    auto entry = reinterpret_cast<AnvilKernelEntryFn>(
        ::dlsym(dl, ANVIL_KERNEL_ENTRY_SYMBOL));
    if (!entry) {
        res.error = "kernel entry symbol missing";
        ::dlclose(dl);
        return res;
    }
    const AnvilKernelV2 *abi = entry();
    if (!abi || abi->abi_version != ANVIL_KERNEL_ABI_VERSION) {
        res.error = "kernel ABI version mismatch";
        ::dlclose(dl);
        return res;
    }
    if (abi->design_hash != hash ||
        abi->net_count != nl.nets().size()) {
        res.error = "kernel design hash mismatch";
        ::dlclose(dl);
        return res;
    }

    res.kernel = std::make_shared<CompiledKernel>(dl, abi);
    res.compile_ns = rtl::monotonicNanos() - t0;
    std::lock_guard<std::mutex> lock(g_cache_mu);
    g_cache.emplace(key, res.kernel);
    return res;
}

rtl::KernelRef
kernelRef(const std::shared_ptr<CompiledKernel> &k)
{
    rtl::KernelRef ref;
    if (k) {
        ref.abi = k->abi();
        ref.hold = k;
    }
    return ref;
}

} // namespace codegen
} // namespace anvil
