/**
 * @file
 * In-process JIT for the compile-to-C++ backend: emit the netlist as
 * a kernel translation unit (codegen/cpp_emitter.h), invoke the
 * system C++ compiler to build a shared object, dlopen it, and hand
 * back a validated AnvilKernelV2 ready for rtl::Sim::attachKernel.
 *
 * Lifecycle (see docs/compile.md): the source and shared object live
 * in a mkdtemp directory that is deleted as soon as the object is
 * mapped — the mapping survives the unlink, and nothing litters /tmp
 * even on crash.  Kernels are cached per (design hash, opt level,
 * emitter revision) for the life of the process, so attaching the
 * same design to many Sims (the differential test matrix, BMC
 * reruns) compiles once — while a codegen change (kCppEmitterVersion
 * bump) can never be served a stale object.
 *
 * Everything degrades gracefully: no compiler on PATH, a failed
 * compile, or a hash mismatch yields a JitResult with a null kernel
 * and a diagnostic string, and callers keep the interpreter.
 */

#ifndef ANVIL_CODEGEN_JIT_H
#define ANVIL_CODEGEN_JIT_H

#include <memory>
#include <string>

#include "codegen/cpp_emitter.h"
#include "rtl/interp.h"
#include "rtl/kernel_abi.h"
#include "rtl/netlist.h"

namespace anvil {
namespace codegen {

struct JitOptions
{
    int opt_level = 2;        // -O<n> passed to the system compiler
                              // (capped to -O1 for multi-MB units,
                              // where -O2 buys only compile time)
    bool keep_files = false;  // keep the temp dir (debugging)
    /** Codegen revision folded into the cache key.  Defaults to the
     *  linked emitter's revision; tests override it to prove a bump
     *  forces a recompile. */
    int emitter_tag = kCppEmitterVersion;
};

/** A dlopen'd kernel; closes the library when the last ref drops. */
class CompiledKernel
{
  public:
    CompiledKernel(void *dl, const AnvilKernelV2 *abi)
        : _dl(dl), _abi(abi)
    {
    }
    ~CompiledKernel();
    CompiledKernel(const CompiledKernel &) = delete;
    CompiledKernel &operator=(const CompiledKernel &) = delete;

    const AnvilKernelV2 *abi() const { return _abi; }

  private:
    void *_dl = nullptr;
    const AnvilKernelV2 *_abi = nullptr;
};

struct JitResult
{
    std::shared_ptr<CompiledKernel> kernel;  // null on failure
    std::string error;                       // why, when null
    uint64_t compile_ns = 0;   // emit + compile + load wall time
    uint64_t source_bytes = 0; // emitted translation-unit size
    bool cache_hit = false;    // served from the per-process cache
};

/**
 * The compiler the JIT would invoke: $ANVIL_CXX verbatim if set (even
 * if broken — that is the no-compiler-present test hook), else the
 * first of c++/g++/clang++ that answers --version.  Empty string when
 * nothing is available.
 */
std::string jitCompilerPath();

/** Emit, compile, and load `nl`.  Never throws; see JitResult. */
JitResult jitCompileKernel(const rtl::Netlist &nl,
                           const JitOptions &opts = {});

/** Package a compiled kernel as the KernelRef Sim/BMC options take. */
rtl::KernelRef kernelRef(const std::shared_ptr<CompiledKernel> &k);

} // namespace codegen
} // namespace anvil

#endif // ANVIL_CODEGEN_JIT_H
