#include "codegen/cpp_emitter.h"

#include <cassert>
#include <map>
#include <sstream>
#include <vector>

#include "codegen/emit_util.h"
#include "rtl/kernel_abi.h"
#include "support/strings.h"

namespace anvil {
namespace codegen {

namespace {

using rtl::kNoNet;
using rtl::Net;
using rtl::NetId;
using rtl::Netlist;
using rtl::Op;

uint64_t
maskOf(int width)
{
    if (width <= 0)
        return 0;
    return width >= 64 ? ~0ull : (1ull << width) - 1;
}

std::string
hexU64(uint64_t v)
{
    return strfmt("0x%llxull", static_cast<unsigned long long>(v));
}

/** Packed-word helpers embedded in every generated unit.  They
 *  replicate anvil::BitVec semantics exactly (see support/bitvec.cpp):
 *  values are little-endian word arrays, normalized so bits at or
 *  above the width are zero; reads beyond a value's words are zero. */
const char *kWidePrelude = R"(
static inline uint64_t wmask(uint32_t bits)
{
    uint32_t r = bits & 63u;
    return r ? (~0ull >> (64u - r)) : ~0ull;
}
static inline uint64_t wat(const uint64_t *p, uint32_t n, uint32_t i)
{
    return i < n ? p[i] : 0;
}
/* Word i of the value resized (zero-extend / truncate) to dbits. */
static inline uint64_t w_rword(const uint64_t *p, uint32_t n,
                               uint32_t dw, uint32_t dbits, uint32_t i)
{
    if (i >= dw)
        return 0;
    uint64_t v = wat(p, n, i);
    return i == dw - 1 ? v & wmask(dbits) : v;
}
static inline void w_zero(uint64_t *d, uint32_t dw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = 0;
}
static inline void w_copy(uint64_t *d, uint32_t dw, uint32_t dbits,
                          const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_not(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = ~wat(a, aw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_and(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) & wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_or(uint64_t *d, uint32_t dw, uint32_t dbits,
                        const uint64_t *a, uint32_t aw,
                        const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) | wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_xor(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) ^ wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_add(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    unsigned __int128 carry = 0;
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 sum = carry;
        sum += wat(a, aw, i);
        sum += wat(b, bw, i);
        d[i] = (uint64_t)sum;
        carry = sum >> 64;
    }
    d[dw - 1] &= wmask(dbits);
}
static inline void w_sub(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    unsigned __int128 carry = 1;
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 sum = carry;
        sum += wat(a, aw, i);
        sum += ~wat(b, bw, i);
        d[i] = (uint64_t)sum;
        carry = sum >> 64;
    }
    d[dw - 1] &= wmask(dbits);
}
static inline void w_mul(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    w_zero(d, dw);
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 carry = 0;
        for (uint32_t j = 0; i + j < dw; j++) {
            unsigned __int128 p =
                (unsigned __int128)wat(a, aw, i) * wat(b, bw, j);
            p += d[i + j];
            p += carry;
            d[i + j] = (uint64_t)p;
            carry = p >> 64;
        }
    }
    d[dw - 1] &= wmask(dbits);
}
/* Comparisons are over the original (unresized) operands. */
static inline uint64_t w_eq(const uint64_t *a, uint32_t aw,
                            const uint64_t *b, uint32_t bw)
{
    uint32_t n = aw > bw ? aw : bw;
    for (uint32_t i = 0; i < n; i++)
        if (wat(a, aw, i) != wat(b, bw, i))
            return 0;
    return 1;
}
static inline uint64_t w_ult(const uint64_t *a, uint32_t aw,
                             const uint64_t *b, uint32_t bw)
{
    uint32_t n = aw > bw ? aw : bw;
    for (uint32_t i = n; i-- > 0;) {
        uint64_t x = wat(a, aw, i), y = wat(b, bw, i);
        if (x != y)
            return x < y;
    }
    return 0;
}
static inline uint64_t w_ule(const uint64_t *a, uint32_t aw,
                             const uint64_t *b, uint32_t bw)
{
    return w_ult(a, aw, b, bw) | w_eq(a, aw, b, bw);
}
static inline uint64_t w_any(const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < aw; i++)
        if (a[i])
            return 1;
    return 0;
}
static inline uint64_t w_red_and(const uint64_t *a, uint32_t aw,
                                 uint32_t abits)
{
    for (uint32_t i = 0; i < aw; i++) {
        uint64_t want = i == aw - 1 ? wmask(abits) : ~0ull;
        if (a[i] != want)
            return 0;
    }
    return 1;
}
static inline void w_shl(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw, uint64_t sh)
{
    if (sh >= dbits) {
        w_zero(d, dw);
        return;
    }
    uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
    for (uint32_t j = dw; j-- > ws;) {
        uint64_t w = w_rword(a, aw, dw, dbits, j - ws) << bs;
        if (bs != 0 && j - ws > 0)
            w |= w_rword(a, aw, dw, dbits, j - ws - 1) >> (64 - bs);
        d[j] = w;
    }
    for (uint32_t j = 0; j < ws && j < dw; j++)
        d[j] = 0;
    d[dw - 1] &= wmask(dbits);
}
static inline void w_shr(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw, uint64_t sh)
{
    if (sh >= dbits) {
        w_zero(d, dw);
        return;
    }
    uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
    for (uint32_t j = 0; j < dw; j++) {
        uint64_t w = w_rword(a, aw, dw, dbits, ws + j) >> bs;
        if (bs != 0)
            w |= w_rword(a, aw, dw, dbits, ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    d[dw - 1] &= wmask(dbits);
}
/* Bits [lo, lo+dbits) of the unresized source; out-of-range bits
 * (including negative indices) read as zero. */
static inline void w_slice(uint64_t *d, uint32_t dw, uint32_t dbits,
                           const uint64_t *a, uint32_t aw, int32_t lo)
{
    if (lo < 0) {
        /* Zeros below index 0: a left shift of the source. */
        uint64_t sh = (uint64_t)(-(int64_t)lo);
        if (sh >= dbits) {
            w_zero(d, dw);
            return;
        }
        uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
        for (uint32_t j = dw; j-- > ws;) {
            uint64_t w = wat(a, aw, j - ws) << bs;
            if (bs != 0 && j - ws > 0)
                w |= wat(a, aw, j - ws - 1) >> (64 - bs);
            d[j] = w;
        }
        for (uint32_t j = 0; j < ws && j < dw; j++)
            d[j] = 0;
        d[dw - 1] &= wmask(dbits);
        return;
    }
    uint32_t ws = (uint32_t)lo / 64, bs = (uint32_t)lo % 64;
    for (uint32_t j = 0; j < dw; j++) {
        uint64_t w = wat(a, aw, ws + j) >> bs;
        if (bs != 0)
            w |= wat(a, aw, ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    d[dw - 1] &= wmask(dbits);
}
/* OR the low abits bits of a into d at bit offset off (concat part;
 * destination must be pre-zeroed, final mask applied by the caller). */
static inline void w_inject(uint64_t *d, uint32_t dw,
                            const uint64_t *a, uint32_t aw,
                            uint32_t abits, uint32_t off)
{
    uint32_t ws = off / 64, bs = off % 64;
    uint32_t awords = (abits + 63) / 64;
    for (uint32_t j = 0; j < awords; j++) {
        if (ws + j < dw)
            d[ws + j] |= wat(a, aw, j) << bs;
        if (bs != 0 && ws + j + 1 < dw)
            d[ws + j + 1] |= wat(a, aw, j) >> (64 - bs);
    }
}
)";

class CppEmitter
{
  public:
    CppEmitter(const Netlist &nl, const std::string &design_name)
        : _nl(nl), _name(design_name)
    {
    }

    std::string run();

  private:
    void layoutState();
    void layoutLevels();
    std::string romTable(const Net &n);
    void emitTables(std::ostringstream &os);
    void emitNode(std::ostringstream &os, NetId id, bool dense);
    void emitFastNode(std::ostringstream &os, NetId id, bool dense);
    void emitWideNode(std::ostringstream &os, NetId id, bool dense);
    void emitLevelFns(std::ostringstream &os);
    std::string fastVal(NetId o) const;   // u64 value of an operand
    std::string ptrOf(NetId o) const;     // &c->s[off]
    uint32_t wordsOf(NetId o) const
    {
        int w = _nl.net(o).width;
        return w <= 0 ? 1u : static_cast<uint32_t>((w + 63) / 64);
    }

    const Netlist &_nl;
    std::string _name;
    std::vector<uint32_t> _off;           // per-net word offset
    uint64_t _state_words = 0;
    size_t _levels = 0;                   // level count (incl. empty)
    std::vector<std::vector<NetId>> _level_nodes;   // per level
    std::vector<uint32_t> _bm_off;        // per-level bitmap word off
    std::vector<uint32_t> _level_of;      // strict node -> level
    std::vector<uint32_t> _slot_of;       // strict node -> level slot
    std::string _ind;                     // current body indent
    std::map<std::pair<const void *, int>, std::string> _roms;
    std::ostringstream _rom_defs;
};

void
CppEmitter::layoutState()
{
    const auto &nets = _nl.nets();
    _off.resize(nets.size());
    uint64_t off = 0;
    for (size_t i = 0; i < nets.size(); i++) {
        _off[i] = static_cast<uint32_t>(off);
        int w = nets[i].width;
        off += w <= 0 ? 1 : static_cast<uint64_t>((w + 63) / 64);
    }
    _state_words = off ? off : 1;
}

/** Group the strict order by level and assign every strict node a
 *  dense within-level slot: the occupancy bitmaps carry slots, so a
 *  level's dispatch switch is a contiguous 0..n-1 jump table
 *  regardless of how net ids are scattered across the design. */
void
CppEmitter::layoutLevels()
{
    const auto &order = _nl.order();
    const auto &lb = _nl.levelBegin();
    _levels = lb.empty() ? 0 : lb.size() - 1;
    _level_nodes.assign(_levels, {});
    _level_of.assign(_nl.nets().size(), 0);
    _slot_of.assign(_nl.nets().size(), 0);
    _bm_off.assign(_levels + 1, 0);
    uint32_t bm = 0;
    for (size_t l = 0; l < _levels; l++) {
        size_t b = static_cast<size_t>(lb[l]);
        size_t e = static_cast<size_t>(lb[l + 1]);
        _bm_off[l] = bm;
        bm += static_cast<uint32_t>((e - b + 63) / 64);
        for (size_t i = b; i < e; i++) {
            NetId id = order[i];
            _level_nodes[l].push_back(id);
            _level_of[static_cast<size_t>(id)] =
                static_cast<uint32_t>(l);
            _slot_of[static_cast<size_t>(id)] =
                static_cast<uint32_t>(i - b);
        }
    }
    _bm_off[_levels] = bm;
}

std::string
CppEmitter::romTable(const Net &n)
{
    auto key = std::make_pair(
        static_cast<const void *>(n.rom.get()), n.width);
    auto it = _roms.find(key);
    if (it != _roms.end())
        return it->second;
    std::string name = strfmt("kRom%d", static_cast<int>(_roms.size()));
    _roms.emplace(key, name);
    uint32_t stride =
        n.width <= 0 ? 1u : static_cast<uint32_t>((n.width + 63) / 64);
    _rom_defs << "static const uint64_t " << name << "["
              << n.rom->size() * stride << "] = {";
    size_t col = 0;
    for (const BitVec &e : *n.rom) {
        BitVec r = e.resize(n.width <= 0 ? 1 : n.width);
        for (uint32_t w = 0; w < stride; w++) {
            if (col++ % 8 == 0)
                _rom_defs << "\n    ";
            _rom_defs << hexU64(r.word(static_cast<int>(w))) << ",";
        }
    }
    _rom_defs << "\n};\n";
    return name;
}

void
CppEmitter::emitTables(std::ostringstream &os)
{
    size_t nets = _nl.nets().size();
    size_t strict = _nl.order().size();
    os << "enum : uint32_t { kNets = " << nets << "u, kLevels = "
       << _levels << "u, kStrictNodes = " << strict << "u };\n";
    os << "enum : uint64_t { kStateWords = " << _state_words
       << "ull };\n\n";

    os << "static const uint32_t kOff[kNets] = {";
    for (size_t i = 0; i < nets; i++)
        os << (i % 16 == 0 ? "\n    " : "") << _off[i] << ",";
    os << "\n};\n\n";

    os << "static const uint64_t kInit[kStateWords] = {";
    size_t col = 0;
    for (size_t i = 0; i < nets; i++) {
        const BitVec &v = _nl.initValues()[i];
        uint32_t w = wordsOf(static_cast<NetId>(i));
        for (uint32_t j = 0; j < w; j++) {
            os << (col++ % 8 == 0 ? "\n    " : "")
               << hexU64(v.word(static_cast<int>(j))) << ",";
        }
    }
    os << "\n};\n\n";

    // Consumer CSR: the strict nodes reading each net, ascending —
    // exactly the interpreter's fan-out CSR.  poke()/onChange() walk
    // it to queue consumers on their levels' worklists.
    std::vector<std::vector<NetId>> fan(nets);
    for (size_t l = 0; l < _levels; l++)
        for (NetId id : _level_nodes[l])
            Netlist::forEachOperand(_nl.net(id), [&](NetId o) {
                if (_nl.net(o).kind == Net::Kind::Const)
                    return;
                auto &lst = fan[static_cast<size_t>(o)];
                if (lst.empty() || lst.back() != id)
                    lst.push_back(id);
            });
    size_t edges = 0;
    for (auto &lst : fan)
        edges += lst.size();
    os << "static const uint32_t kConsBegin[kNets + 1] = {";
    uint32_t acc = 0;
    for (size_t i = 0; i <= nets; i++) {
        os << (i % 16 == 0 ? "\n    " : "") << acc << ",";
        if (i < nets)
            acc += static_cast<uint32_t>(fan[i].size());
    }
    os << "\n};\n";
    os << "static const int32_t kConsNet[" << (edges ? edges : 1)
       << "] = {";
    col = 0;
    for (const auto &lst : fan)
        for (NetId id : lst)
            os << (col++ % 16 == 0 ? "\n    " : "") << id << ",";
    if (edges == 0)
        os << "0";
    os << "\n};\n\n";

    // Level and within-level slot of every strict node (0 for
    // sources, which are never queued).
    os << "static const uint32_t kLevelOf[kNets] = {";
    for (size_t i = 0; i < nets; i++)
        os << (i % 16 == 0 ? "\n    " : "") << _level_of[i] << ",";
    os << "\n};\n";
    os << "static const uint32_t kSlotOf[kNets] = {";
    for (size_t i = 0; i < nets; i++)
        os << (i % 16 == 0 ? "\n    " : "") << _slot_of[i] << ",";
    os << "\n};\n";

    // Occupancy-bitmap layout: level l owns the words
    // wbm[kBmOff[l], kBmOff[l+1]); bit s marks within-level slot s
    // queued.  Bitmaps dedupe by construction and drain in ascending
    // slot order, which keeps the dispatch jumps monotonic through
    // the level's code.
    os << "static const uint32_t kBmOff[kLevels + 1] = {";
    for (size_t l = 0; l <= _levels; l++)
        os << (l % 16 == 0 ? "\n    " : "") << _bm_off[l] << ",";
    os << "\n};\n";
    os << "enum : uint32_t { kBmWords = " << _bm_off[_levels]
       << "u };\n";
}

std::string
CppEmitter::fastVal(NetId o) const
{
    const Net &n = _nl.net(o);
    if (n.kind == Net::Kind::Const)
        return hexU64(
            _nl.initValues()[static_cast<size_t>(o)].toUint64());
    return strfmt("c->s[%u]", _off[static_cast<size_t>(o)]);
}

std::string
CppEmitter::ptrOf(NetId o) const
{
    return strfmt("&c->s[%u]", _off[static_cast<size_t>(o)]);
}

void
CppEmitter::emitNode(std::ostringstream &os, NetId id, bool dense)
{
    const Net &n = _nl.net(id);
    const std::string &nm = _nl.nameOf(id);
    os << _ind << "// n" << id << " w" << n.width;
    if (!nm.empty())
        os << " " << nm;
    os << "\n";
    if (n.width <= 0) {
        // Zero-width values are the empty bit string: permanently
        // zero, evaluated for the activity count only.
        os << _ind << "{ ev++; }\n";
        return;
    }
    if (n.fast)
        emitFastNode(os, id, dense);
    else
        emitWideNode(os, id, dense);
}

void
CppEmitter::emitFastNode(std::ostringstream &os, NetId id, bool dense)
{
    const Net &n = _nl.net(id);
    uint64_t m = maskOf(n.width);
    std::string M = hexU64(m);
    std::string body;
    switch (n.kind) {
      case Net::Kind::Copy:
        body = strfmt("uint64_t r = %s;", fastVal(n.a).c_str());
        break;
      case Net::Kind::Unop:
        switch (n.op) {
          case Op::Not:
            body = strfmt("uint64_t r = ~%s;", fastVal(n.a).c_str());
            break;
          case Op::RedOr:
            body =
                strfmt("uint64_t r = %s != 0;", fastVal(n.a).c_str());
            break;
          case Op::RedAnd:
            body = strfmt("uint64_t r = %s == %s;",
                          fastVal(n.a).c_str(),
                          hexU64(maskOf(_nl.net(n.a).width)).c_str());
            break;
          default:
            assert(!"bad unary op");
        }
        break;
      case Net::Kind::Binop: {
        std::string a = fastVal(n.a), b = fastVal(n.b);
        const char *tok = opToken(n.op);
        switch (n.op) {
          case Op::And:
          case Op::Or:
          case Op::Xor:
            body = strfmt("uint64_t r = %s %s %s;", a.c_str(), tok,
                          b.c_str());
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            body = strfmt("uint64_t r = (%s & %s) %s (%s & %s);",
                          a.c_str(), M.c_str(), tok, b.c_str(),
                          M.c_str());
            break;
          case Op::Eq:
          case Op::Ne:
          case Op::Lt:
          case Op::Le:
          case Op::Gt:
          case Op::Ge:
            body = strfmt("uint64_t r = %s %s %s;", a.c_str(), tok,
                          b.c_str());
            break;
          case Op::Shl:
          case Op::Shr:
            body = strfmt("uint64_t sh = %s & %s; "
                          "uint64_t r = sh >= %dull ? 0 "
                          ": (%s & %s) %s sh;",
                          b.c_str(), M.c_str(), n.width, a.c_str(),
                          M.c_str(), tok);
            break;
          default:
            assert(!"bad binary op");
        }
        break;
      }
      case Net::Kind::Mux:
        body = strfmt("uint64_t r = %s ? %s : %s;",
                      fastVal(n.a).c_str(), fastVal(n.b).c_str(),
                      fastVal(n.c).c_str());
        break;
      case Net::Kind::Slice: {
        std::string a = fastVal(n.a);
        if (n.lo >= 0)
            body = n.lo >= 64
                ? "uint64_t r = 0;"
                : strfmt("uint64_t r = %s >> %d;", a.c_str(), n.lo);
        else
            body = -n.lo >= 64
                ? "uint64_t r = 0;"
                : strfmt("uint64_t r = %s << %d;", a.c_str(), -n.lo);
        break;
      }
      case Net::Kind::Concat: {
        // cargs are hi-first; assemble from the low end.
        body = "uint64_t r = ";
        int sh = 0;
        bool first = true;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            if (!first)
                body += " | ";
            first = false;
            if (sh == 0)
                body += fastVal(*it);
            else
                body += strfmt("(%s << %d)", fastVal(*it).c_str(), sh);
            sh += _nl.net(*it).width;
            if (sh >= 64)
                break;
        }
        if (first)
            body += "0";
        body += ";";
        break;
      }
      case Net::Kind::Rom: {
        std::string tbl = romTable(n);
        body = strfmt("uint64_t a0 = %s; "
                      "uint64_t r = a0 < %zuull ? %s[a0] : 0;",
                      fastVal(n.a).c_str(), n.rom->size(),
                      tbl.c_str());
        break;
      }
      default:
        assert(!"source in strict order");
    }
    std::string store = n.width >= 64
        ? std::string()
        : strfmt(" r &= %s;", M.c_str());
    os << _ind << "{ ev++; " << body << store
       << " uint64_t *p = &c->s[" << _off[static_cast<size_t>(id)]
       << "]; if (*p != r) { *p = r; "
       << (dense ? "onChangeD" : "onChange") << "(c, " << id
       << "); } }\n";
}

void
CppEmitter::emitWideNode(std::ostringstream &os, NetId id, bool dense)
{
    const Net &n = _nl.net(id);
    uint32_t dw = wordsOf(id);
    int dbits = n.width;
    std::string dsig = strfmt("t, %uu, %du", dw, dbits);
    std::string body;
    auto opnd = [&](NetId o) {
        return strfmt("%s, %uu", ptrOf(o).c_str(), wordsOf(o));
    };
    switch (n.kind) {
      case Net::Kind::Copy:
        body = strfmt("w_copy(%s, %s);", dsig.c_str(),
                      opnd(n.a).c_str());
        break;
      case Net::Kind::Unop:
        switch (n.op) {
          case Op::Not:
            body = strfmt("w_not(%s, %s);", dsig.c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::RedOr:
            body = strfmt("t[0] = w_any(%s);", opnd(n.a).c_str());
            break;
          case Op::RedAnd:
            body = strfmt("t[0] = w_red_and(%s, %du);",
                          opnd(n.a).c_str(), _nl.net(n.a).width);
            break;
          default:
            assert(!"bad unary op");
        }
        break;
      case Net::Kind::Binop: {
        const char *fn = nullptr;
        switch (n.op) {
          case Op::And: fn = "w_and"; break;
          case Op::Or: fn = "w_or"; break;
          case Op::Xor: fn = "w_xor"; break;
          case Op::Add: fn = "w_add"; break;
          case Op::Sub: fn = "w_sub"; break;
          case Op::Mul: fn = "w_mul"; break;
          default: break;
        }
        if (fn) {
            body = strfmt("%s(%s, %s, %s);", fn, dsig.c_str(),
                          opnd(n.a).c_str(), opnd(n.b).c_str());
            break;
        }
        switch (n.op) {
          case Op::Eq:
            body = strfmt("t[0] = w_eq(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Ne:
            body = strfmt("t[0] = !w_eq(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Lt:
            body = strfmt("t[0] = w_ult(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Le:
            body = strfmt("t[0] = w_ule(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Gt:
            body = strfmt("t[0] = w_ult(%s, %s);", opnd(n.b).c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::Ge:
            body = strfmt("t[0] = w_ule(%s, %s);", opnd(n.b).c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::Shl:
          case Op::Shr:
            // Shift amount: low word of the operand resized to the
            // node width (BitVec applyBinop semantics).
            body = strfmt(
                "%s(%s, %s, w_rword(%s, %uu, %du, 0));",
                n.op == Op::Shl ? "w_shl" : "w_shr", dsig.c_str(),
                opnd(n.a).c_str(), opnd(n.b).c_str(), dw, dbits);
            break;
          default:
            assert(!"bad binary op");
        }
        break;
      }
      case Net::Kind::Mux: {
        const Net &cn = _nl.net(n.a);
        std::string cond = cn.width <= 64
            ? strfmt("%s != 0", fastVal(n.a).c_str())
            : strfmt("w_any(%s)", opnd(n.a).c_str());
        body = strfmt("if (%s) w_copy(%s, %s); else w_copy(%s, %s);",
                      cond.c_str(), dsig.c_str(), opnd(n.b).c_str(),
                      dsig.c_str(), opnd(n.c).c_str());
        break;
      }
      case Net::Kind::Slice:
        body = strfmt("w_slice(%s, %s, %d);", dsig.c_str(),
                      opnd(n.a).c_str(), n.lo);
        break;
      case Net::Kind::Concat: {
        body = strfmt("w_zero(t, %uu);", dw);
        uint32_t off = 0;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            int pw = _nl.net(*it).width;
            if (pw <= 0)
                continue;
            if (off < dw * 64)
                body += strfmt(" w_inject(t, %uu, %s, %du, %uu);", dw,
                               opnd(*it).c_str(), pw, off);
            off += static_cast<uint32_t>(pw);
        }
        body += strfmt(" t[%uu] &= wmask(%du);", dw - 1, dbits);
        break;
      }
      case Net::Kind::Rom: {
        std::string tbl = romTable(n);
        body = strfmt("uint64_t a0 = wat(%s, 0); "
                      "if (a0 < %zuull) memcpy(t, &%s[a0 * %uu], "
                      "%uu * 8); else w_zero(t, %uu);",
                      opnd(n.a).c_str(), n.rom->size(), tbl.c_str(),
                      dw, dw, dw);
        break;
      }
      default:
        assert(!"source in strict order");
    }
    os << _ind << "{ ev++; uint64_t t[" << dw << "]; " << body << " "
       << (dense ? "w_stored" : "w_store") << "(c, " << id << ", "
       << ptrOf(id) << ", t, " << dw << "u); }\n";
}

void
CppEmitter::emitLevelFns(std::ostringstream &os)
{
    // All sparse drains first, all dense bodies after: a sparse
    // frame's control flow then stays inside one contiguous stretch
    // of text instead of hopping over the (usually idle) dense
    // variants between levels.
    for (size_t l = 0; l < _levels; l++) {
        const auto &nodes = _level_nodes[l];
        if (nodes.empty())
            continue;
        os << "\n/* level " << l << ": " << nodes.size()
           << " nodes, bitmap words [" << _bm_off[l] << ", "
           << _bm_off[l + 1] << ") */\n";

        // Sparse path: drain the level's exact occupancy bitmap in
        // ascending slot order (ctz per word).  Slots are dense
        // within the level, so the dispatch switch is a contiguous
        // jump table and the jumps walk forward through the level's
        // code — the i-cache-friendly order on large designs.
        os << "static uint64_t lvl_s_" << l << "(Ctx *c)\n{\n"
           << "    uint64_t ev = 0;\n"
           << "    c->wn[" << l << "] = 0;\n"
           << "    for (uint32_t wi = " << _bm_off[l]
           << "u; wi < " << _bm_off[l + 1] << "u; wi++) {\n"
           << "        uint64_t w = c->wbm[wi];\n"
           << "        if (!w)\n"
           << "            continue;\n"
           << "        c->wbm[wi] = 0;\n"
           << "        uint32_t base = (wi - " << _bm_off[l]
           << "u) << 6;\n"
           << "        do {\n"
           << "        switch (base + "
              "(uint32_t)__builtin_ctzll(w)) {\n";
        _ind = "            ";
        for (size_t s = 0; s < nodes.size(); s++) {
            os << "        case " << s << "u: {\n";
            emitNode(os, nodes[s], false);
            os << "        } break;\n";
        }
        os << "        default: break;\n"
           << "        }\n"
           << "        w &= w - 1;\n"
           << "        } while (w);\n"
           << "    }\n"
           << "    return ev;\n"
           << "}\n";
    }

    for (size_t l = 0; l < _levels; l++) {
        const auto &nodes = _level_nodes[l];
        if (nodes.empty())
            continue;
        // Dense path: straight-line over every node, no queue reads —
        // value comparison alone decides the changed list.  Used for
        // whole dense frames and for single-level escalation inside
        // sparse frames (onChangeD then still feeds later levels).
        os << "\nstatic uint64_t lvl_d_" << l << "(Ctx *c)\n{\n"
           << "    uint64_t ev = 0;\n";
        _ind = "    ";
        for (NetId id : nodes)
            emitNode(os, id, true);
        os << "    return ev;\n"
           << "}\n";
    }
    _ind.clear();
}

std::string
CppEmitter::run()
{
    layoutState();
    layoutLevels();

    std::ostringstream body;
    emitLevelFns(body);

    // Tables are rendered after the level functions so every ROM the
    // node bodies reference has been registered.
    std::ostringstream tables;
    emitTables(tables);

    std::ostringstream os;
    os << "// Generated by anvilc --emit-cpp; design '" << _name
       << "'.\n"
       << "// Implements AnvilKernelV2 (see src/rtl/kernel_abi.h and "
          "docs/compile.md);\n"
       << "// compile with: c++ -O2 -fPIC -shared -o kernel.so "
          "<this file>\n"
       << "#include <stdint.h>\n"
       << "#include <stdlib.h>\n"
       << "#include <string.h>\n\n"
       << "extern \"C\" {\n"
       << "typedef struct AnvilKernelStats {\n"
       << "    uint64_t frames;\n"
       << "    uint64_t dense_frames;\n"
       << "    uint64_t fallback_switches;\n"
       << "    uint64_t nodes_evaluated;\n"
       << "    uint64_t nets_changed;\n"
       << "} AnvilKernelStats;\n"
       << "typedef struct AnvilKernelV2 {\n"
       << "    uint32_t abi_version;\n"
       << "    uint32_t net_count;\n"
       << "    uint64_t design_hash;\n"
       << "    uint64_t state_words;\n"
       << "    void *(*create)(void);\n"
       << "    void (*destroy)(void *ctx);\n"
       << "    uint64_t *(*net_ptr)(void *ctx, int32_t net);\n"
       << "    void (*poke)(void *ctx, int32_t net);\n"
       << "    uint64_t (*eval)(void *ctx, int32_t *changed, "
          "uint64_t *n_changed);\n"
       << "    uint64_t (*eval_full)(void *ctx, int32_t *changed, "
          "uint64_t *n_changed);\n"
       << "    void (*stats)(void *ctx, AnvilKernelStats *out);\n"
       << "    uint32_t level_count;\n"
       << "    void (*level_stats)(void *ctx, uint64_t *out);\n"
       << "} AnvilKernelV2;\n"
       << "const AnvilKernelV2 *anvil_kernel_v2(void);\n"
       << "}\n\n"
       << "namespace {\n\n";

    os << tables.str() << "\n";
    os << _rom_defs.str();
    os << kWidePrelude << "\n";

    os << R"(struct Ctx
{
    uint64_t s[kStateWords];
    uint64_t wbm[kBmWords ? kBmWords : 1];   // per-level occupancy
    uint32_t wn[kLevels ? kLevels : 1];      // queued-bit upper bound
    int32_t *out;             // changed-net list of the current eval
    uint64_t nout;
    uint64_t dense;           // adaptive: prefer the dense path
    uint64_t fdense;          // current frame runs fully dense
    AnvilKernelStats st;
    uint64_t lvl_ev[kLevels ? kLevels : 1];  // evals per level
};

/* Queue the strict consumers of a changed net: set their slot bits.
 * The bitmap dedupes by construction (setting a set bit is a no-op),
 * so no epoch bookkeeping is needed; wn[] only over-counts repeat
 * enqueues, and is read as "level non-empty" plus an escalation
 * heuristic, where an over-count is harmless. */
static inline void enq(Ctx *c, int32_t id)
{
    for (uint32_t k = kConsBegin[id]; k < kConsBegin[id + 1]; k++) {
        int32_t t = kConsNet[k];
        uint32_t s = kSlotOf[t];
        c->wbm[kBmOff[kLevelOf[t]] + (s >> 6)] |= 1ull << (s & 63);
        c->wn[kLevelOf[t]]++;
    }
}

/* Sparse-path change: record it and propagate (change-cutting — an
 * unchanged recompute never reaches here, so consumers stay idle).
 * Deliberately NOT inlined: the hooks appear in every node body, and
 * keeping the bodies at compare + store + call is what keeps the
 * level functions resident in the i-cache on multi-MB designs — the
 * call costs a couple of ns and only on an actual change. */
static __attribute__((noinline)) void onChange(Ctx *c, int32_t id)
{
    c->out[c->nout++] = id;
    enq(c, id);
}

/* Dense-evaluated change: record it, and feed downstream worklists
 * unless the whole frame is dense (then every node runs anyway).  A
 * single level can escalate to its straight-line body inside an
 * otherwise sparse frame when its queue is a large fraction of the
 * level, so later levels still rely on exact queues. */
static __attribute__((noinline)) void onChangeD(Ctx *c, int32_t id)
{
    c->out[c->nout++] = id;
    if (!c->fdense)
        enq(c, id);
}

static inline void w_store(Ctx *c, int32_t id, uint64_t *dst,
                           const uint64_t *t, uint32_t words)
{
    if (memcmp(dst, t, words * 8) != 0) {
        memcpy(dst, t, words * 8);
        onChange(c, id);
    }
}

static inline void w_stored(Ctx *c, int32_t id, uint64_t *dst,
                            const uint64_t *t, uint32_t words)
{
    if (memcmp(dst, t, words * 8) != 0) {
        memcpy(dst, t, words * 8);
        onChangeD(c, id);
    }
}
)";

    os << body.str();

    os << "\nstatic uint64_t do_eval(Ctx *c, int32_t *out, "
          "uint64_t *nout, int full)\n{\n"
       << "    c->out = out;\n"
       << "    c->nout = 0;\n"
       << "    uint64_t ev = 0;\n"
       << "    int dense = full | (int)c->dense;\n"
       << "    c->fdense = (uint64_t)dense;\n"
       << "    if (dense) {\n";
    for (size_t l = 0; l < _levels; l++)
        if (!_level_nodes[l].empty())
            os << "        { uint64_t e = lvl_d_" << l
               << "(c); ev += e; c->lvl_ev[" << l << "] += e; }\n";
    os << "        memset(c->wbm, 0, sizeof(c->wbm));\n"
       << "        for (uint32_t l = 0; l < kLevels; l++)\n"
       << "            c->wn[l] = 0;\n"
       << "        c->st.dense_frames++;\n"
       << "    } else {\n";
    // A level's queue is only fed from strictly earlier levels (and
    // pokes), so testing each depth just before its turn is exact.
    // A level escalates to its straight-line body when its queue
    // covers >= 25% of the level: at that density the per-node
    // dispatch costs more than recomputing the stragglers, and
    // compare-stores keep the changed list exact either way.
    for (size_t l = 0; l < _levels; l++) {
        if (_level_nodes[l].empty())
            continue;
        size_t sz = _level_nodes[l].size();
        os << "        if (c->wn[" << l << "]) {\n"
           << "            uint64_t e;\n"
           << "            if (c->wn[" << l << "] * 4u >= " << sz
           << "u) {\n"
           << "                c->wn[" << l << "] = 0;\n"
           << "                memset(c->wbm + " << _bm_off[l]
           << "u, 0, " << (_bm_off[l + 1] - _bm_off[l])
           << "u * 8u);\n"
           << "                e = lvl_d_" << l << "(c);\n"
           << "            } else {\n"
           << "                e = lvl_s_" << l << "(c);\n"
           << "            }\n"
           << "            ev += e;\n"
           << "            c->lvl_ev[" << l << "] += e;\n"
           << "        }\n";
    }
    os << "    }\n"
       << "    if (kStrictNodes) {\n"
       << "        // Adaptive fallback hysteresis, mirroring the\n"
       << "        // interpreter: enter dense above ~50% changed,\n"
       << "        // leave below 40%.\n"
       << "        if (c->nout * 2 > kStrictNodes) {\n"
       << "            if (!c->dense)\n"
       << "                c->st.fallback_switches++;\n"
       << "            c->dense = 1;\n"
       << "        } else if (c->nout * 5 < kStrictNodes * 2) {\n"
       << "            c->dense = 0;\n"
       << "        }\n"
       << "    }\n"
       << "    c->st.frames++;\n"
       << "    c->st.nodes_evaluated += ev;\n"
       << "    c->st.nets_changed += c->nout;\n"
       << "    *nout = c->nout;\n"
       << "    return ev;\n"
       << "}\n\n";

    os << R"(static void *k_create(void)
{
    Ctx *c = (Ctx *)calloc(1, sizeof(Ctx));
    if (!c)
        return 0;
    memcpy(c->s, kInit, sizeof(c->s));
    return c;
}
static void k_destroy(void *ctx) { free(ctx); }
static uint64_t *k_net_ptr(void *ctx, int32_t net)
{
    return ((Ctx *)ctx)->s + kOff[net];
}
static void k_poke(void *ctx, int32_t net)
{
    // Bits persist until drained, so pokes between frames simply
    // accumulate for the next eval.
    enq((Ctx *)ctx, net);
}
static uint64_t k_eval(void *ctx, int32_t *changed, uint64_t *n)
{
    return do_eval((Ctx *)ctx, changed, n, 0);
}
static uint64_t k_eval_full(void *ctx, int32_t *changed, uint64_t *n)
{
    return do_eval((Ctx *)ctx, changed, n, 1);
}
static void k_stats(void *ctx, AnvilKernelStats *out)
{
    *out = ((Ctx *)ctx)->st;
}
static void k_level_stats(void *ctx, uint64_t *out)
{
    Ctx *c = (Ctx *)ctx;
    for (uint32_t l = 0; l < kLevels; l++)
        out[l] = c->lvl_ev[l];
}
)";

    os << "\nstatic const AnvilKernelV2 kKernel = {\n"
       << "    3u, kNets, "
       << hexU64(rtl::designHash(_nl)) << ", kStateWords,\n"
       << "    k_create, k_destroy, k_net_ptr, k_poke, k_eval, "
          "k_eval_full, k_stats,\n"
       << "    kLevels, k_level_stats,\n"
       << "};\n\n"
       << "} // namespace\n\n"
       << "extern \"C\" const AnvilKernelV2 *\nanvil_kernel_v2(void)\n"
       << "{\n    return &kKernel;\n}\n";
    return os.str();
}

} // namespace

std::string
emitCppKernel(const Netlist &nl, const std::string &design_name)
{
    CppEmitter e(nl, design_name);
    return e.run();
}

} // namespace codegen
} // namespace anvil
