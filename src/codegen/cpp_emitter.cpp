#include "codegen/cpp_emitter.h"

#include <cassert>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "codegen/emit_util.h"
#include "rtl/kernel_abi.h"
#include "support/strings.h"

namespace anvil {
namespace codegen {

namespace {

using rtl::kNoNet;
using rtl::Net;
using rtl::NetId;
using rtl::Netlist;
using rtl::Op;

/** Nodes per dirty block: small enough that a marked block touches
 *  little beyond the changing cone, large enough that the bitmap and
 *  the consumer-block CSR stay compact. */
constexpr size_t kBlockSize = 16;

uint64_t
maskOf(int width)
{
    if (width <= 0)
        return 0;
    return width >= 64 ? ~0ull : (1ull << width) - 1;
}

std::string
hexU64(uint64_t v)
{
    return strfmt("0x%llxull", static_cast<unsigned long long>(v));
}

/** Packed-word helpers embedded in every generated unit.  They
 *  replicate anvil::BitVec semantics exactly (see support/bitvec.cpp):
 *  values are little-endian word arrays, normalized so bits at or
 *  above the width are zero; reads beyond a value's words are zero. */
const char *kWidePrelude = R"(
static inline uint64_t wmask(uint32_t bits)
{
    uint32_t r = bits & 63u;
    return r ? (~0ull >> (64u - r)) : ~0ull;
}
static inline uint64_t wat(const uint64_t *p, uint32_t n, uint32_t i)
{
    return i < n ? p[i] : 0;
}
/* Word i of the value resized (zero-extend / truncate) to dbits. */
static inline uint64_t w_rword(const uint64_t *p, uint32_t n,
                               uint32_t dw, uint32_t dbits, uint32_t i)
{
    if (i >= dw)
        return 0;
    uint64_t v = wat(p, n, i);
    return i == dw - 1 ? v & wmask(dbits) : v;
}
static inline void w_zero(uint64_t *d, uint32_t dw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = 0;
}
static inline void w_copy(uint64_t *d, uint32_t dw, uint32_t dbits,
                          const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_not(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = ~wat(a, aw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_and(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) & wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_or(uint64_t *d, uint32_t dw, uint32_t dbits,
                        const uint64_t *a, uint32_t aw,
                        const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) | wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_xor(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    for (uint32_t i = 0; i < dw; i++)
        d[i] = wat(a, aw, i) ^ wat(b, bw, i);
    d[dw - 1] &= wmask(dbits);
}
static inline void w_add(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    unsigned __int128 carry = 0;
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 sum = carry;
        sum += wat(a, aw, i);
        sum += wat(b, bw, i);
        d[i] = (uint64_t)sum;
        carry = sum >> 64;
    }
    d[dw - 1] &= wmask(dbits);
}
static inline void w_sub(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    unsigned __int128 carry = 1;
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 sum = carry;
        sum += wat(a, aw, i);
        sum += ~wat(b, bw, i);
        d[i] = (uint64_t)sum;
        carry = sum >> 64;
    }
    d[dw - 1] &= wmask(dbits);
}
static inline void w_mul(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw,
                         const uint64_t *b, uint32_t bw)
{
    w_zero(d, dw);
    for (uint32_t i = 0; i < dw; i++) {
        unsigned __int128 carry = 0;
        for (uint32_t j = 0; i + j < dw; j++) {
            unsigned __int128 p =
                (unsigned __int128)wat(a, aw, i) * wat(b, bw, j);
            p += d[i + j];
            p += carry;
            d[i + j] = (uint64_t)p;
            carry = p >> 64;
        }
    }
    d[dw - 1] &= wmask(dbits);
}
/* Comparisons are over the original (unresized) operands. */
static inline uint64_t w_eq(const uint64_t *a, uint32_t aw,
                            const uint64_t *b, uint32_t bw)
{
    uint32_t n = aw > bw ? aw : bw;
    for (uint32_t i = 0; i < n; i++)
        if (wat(a, aw, i) != wat(b, bw, i))
            return 0;
    return 1;
}
static inline uint64_t w_ult(const uint64_t *a, uint32_t aw,
                             const uint64_t *b, uint32_t bw)
{
    uint32_t n = aw > bw ? aw : bw;
    for (uint32_t i = n; i-- > 0;) {
        uint64_t x = wat(a, aw, i), y = wat(b, bw, i);
        if (x != y)
            return x < y;
    }
    return 0;
}
static inline uint64_t w_ule(const uint64_t *a, uint32_t aw,
                             const uint64_t *b, uint32_t bw)
{
    return w_ult(a, aw, b, bw) | w_eq(a, aw, b, bw);
}
static inline uint64_t w_any(const uint64_t *a, uint32_t aw)
{
    for (uint32_t i = 0; i < aw; i++)
        if (a[i])
            return 1;
    return 0;
}
static inline uint64_t w_red_and(const uint64_t *a, uint32_t aw,
                                 uint32_t abits)
{
    for (uint32_t i = 0; i < aw; i++) {
        uint64_t want = i == aw - 1 ? wmask(abits) : ~0ull;
        if (a[i] != want)
            return 0;
    }
    return 1;
}
static inline void w_shl(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw, uint64_t sh)
{
    if (sh >= dbits) {
        w_zero(d, dw);
        return;
    }
    uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
    for (uint32_t j = dw; j-- > ws;) {
        uint64_t w = w_rword(a, aw, dw, dbits, j - ws) << bs;
        if (bs != 0 && j - ws > 0)
            w |= w_rword(a, aw, dw, dbits, j - ws - 1) >> (64 - bs);
        d[j] = w;
    }
    for (uint32_t j = 0; j < ws && j < dw; j++)
        d[j] = 0;
    d[dw - 1] &= wmask(dbits);
}
static inline void w_shr(uint64_t *d, uint32_t dw, uint32_t dbits,
                         const uint64_t *a, uint32_t aw, uint64_t sh)
{
    if (sh >= dbits) {
        w_zero(d, dw);
        return;
    }
    uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
    for (uint32_t j = 0; j < dw; j++) {
        uint64_t w = w_rword(a, aw, dw, dbits, ws + j) >> bs;
        if (bs != 0)
            w |= w_rword(a, aw, dw, dbits, ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    d[dw - 1] &= wmask(dbits);
}
/* Bits [lo, lo+dbits) of the unresized source; out-of-range bits
 * (including negative indices) read as zero. */
static inline void w_slice(uint64_t *d, uint32_t dw, uint32_t dbits,
                           const uint64_t *a, uint32_t aw, int32_t lo)
{
    if (lo < 0) {
        /* Zeros below index 0: a left shift of the source. */
        uint64_t sh = (uint64_t)(-(int64_t)lo);
        if (sh >= dbits) {
            w_zero(d, dw);
            return;
        }
        uint32_t ws = (uint32_t)(sh / 64), bs = (uint32_t)(sh % 64);
        for (uint32_t j = dw; j-- > ws;) {
            uint64_t w = wat(a, aw, j - ws) << bs;
            if (bs != 0 && j - ws > 0)
                w |= wat(a, aw, j - ws - 1) >> (64 - bs);
            d[j] = w;
        }
        for (uint32_t j = 0; j < ws && j < dw; j++)
            d[j] = 0;
        d[dw - 1] &= wmask(dbits);
        return;
    }
    uint32_t ws = (uint32_t)lo / 64, bs = (uint32_t)lo % 64;
    for (uint32_t j = 0; j < dw; j++) {
        uint64_t w = wat(a, aw, ws + j) >> bs;
        if (bs != 0)
            w |= wat(a, aw, ws + j + 1) << (64 - bs);
        d[j] = w;
    }
    d[dw - 1] &= wmask(dbits);
}
/* OR the low abits bits of a into d at bit offset off (concat part;
 * destination must be pre-zeroed, final mask applied by the caller). */
static inline void w_inject(uint64_t *d, uint32_t dw,
                            const uint64_t *a, uint32_t aw,
                            uint32_t abits, uint32_t off)
{
    uint32_t ws = off / 64, bs = off % 64;
    uint32_t awords = (abits + 63) / 64;
    for (uint32_t j = 0; j < awords; j++) {
        if (ws + j < dw)
            d[ws + j] |= wat(a, aw, j) << bs;
        if (bs != 0 && ws + j + 1 < dw)
            d[ws + j + 1] |= wat(a, aw, j) >> (64 - bs);
    }
}
)";

struct Block
{
    int level = 0;
    uint32_t id = 0;              // bit position in the dirty bitmap
    std::vector<NetId> nodes;
};

class CppEmitter
{
  public:
    CppEmitter(const Netlist &nl, const std::string &design_name)
        : _nl(nl), _name(design_name)
    {
    }

    std::string run();

  private:
    void layoutState();
    void layoutBlocks();
    std::string romTable(const Net &n);
    void emitTables(std::ostringstream &os);
    void emitNode(std::ostringstream &os, NetId id);
    void emitFastNode(std::ostringstream &os, NetId id,
                      const std::string &guard);
    void emitWideNode(std::ostringstream &os, NetId id,
                      const std::string &guard);
    void emitLevelFns(std::ostringstream &os);
    std::string guardExpr(const Net &n) const;
    std::string fastVal(NetId o) const;   // u64 value of an operand
    std::string ptrOf(NetId o) const;     // &c->s[off]
    uint32_t wordsOf(NetId o) const
    {
        int w = _nl.net(o).width;
        return w <= 0 ? 1u : static_cast<uint32_t>((w + 63) / 64);
    }

    const Netlist &_nl;
    std::string _name;
    std::vector<uint32_t> _off;           // per-net word offset
    uint64_t _state_words = 0;
    std::vector<Block> _blocks;
    std::vector<int32_t> _block_of;       // per-net block id or -1
    uint32_t _block_bits = 0;             // bitmap bit positions
    std::vector<std::pair<uint32_t, uint32_t>> _level_words;
    std::map<std::pair<const void *, int>, std::string> _roms;
    std::ostringstream _rom_defs;
};

void
CppEmitter::layoutState()
{
    const auto &nets = _nl.nets();
    _off.resize(nets.size());
    uint64_t off = 0;
    for (size_t i = 0; i < nets.size(); i++) {
        _off[i] = static_cast<uint32_t>(off);
        int w = nets[i].width;
        off += w <= 0 ? 1 : static_cast<uint64_t>((w + 63) / 64);
    }
    _state_words = off ? off : 1;
}

void
CppEmitter::layoutBlocks()
{
    _block_of.assign(_nl.nets().size(), -1);
    const auto &order = _nl.order();
    const auto &lb = _nl.levelBegin();
    uint32_t bit = 0;
    for (size_t l = 0; l + 1 < lb.size(); l++) {
        size_t b = static_cast<size_t>(lb[l]);
        size_t e = static_cast<size_t>(lb[l + 1]);
        // Each level starts on a fresh bitmap word so a level
        // function owns whole words of the dirty bitmap.
        uint32_t w0 = (bit + 63) / 64;
        bit = w0 * 64;
        for (size_t i = b; i < e; i += kBlockSize) {
            Block blk;
            blk.level = static_cast<int>(l);
            blk.id = bit++;
            for (size_t k = i; k < e && k < i + kBlockSize; k++) {
                blk.nodes.push_back(order[k]);
                _block_of[static_cast<size_t>(order[k])] =
                    static_cast<int32_t>(blk.id);
            }
            _blocks.push_back(std::move(blk));
        }
        _level_words.emplace_back(w0, (bit + 63) / 64);
    }
    _block_bits = bit;
}

std::string
CppEmitter::romTable(const Net &n)
{
    auto key = std::make_pair(
        static_cast<const void *>(n.rom.get()), n.width);
    auto it = _roms.find(key);
    if (it != _roms.end())
        return it->second;
    std::string name = strfmt("kRom%d", static_cast<int>(_roms.size()));
    _roms.emplace(key, name);
    uint32_t stride =
        n.width <= 0 ? 1u : static_cast<uint32_t>((n.width + 63) / 64);
    _rom_defs << "static const uint64_t " << name << "["
              << n.rom->size() * stride << "] = {";
    size_t col = 0;
    for (const BitVec &e : *n.rom) {
        BitVec r = e.resize(n.width <= 0 ? 1 : n.width);
        for (uint32_t w = 0; w < stride; w++) {
            if (col++ % 8 == 0)
                _rom_defs << "\n    ";
            _rom_defs << hexU64(r.word(static_cast<int>(w))) << ",";
        }
    }
    _rom_defs << "\n};\n";
    return name;
}

void
CppEmitter::emitTables(std::ostringstream &os)
{
    size_t nets = _nl.nets().size();
    size_t levels =
        _nl.levelBegin().empty() ? 0 : _nl.levelBegin().size() - 1;
    os << "enum : uint32_t { kNets = " << nets << "u, kBlockBits = "
       << _block_bits << "u, kBlockWords = " << (_block_bits + 63) / 64
       << "u, kLevelWords = " << (levels + 63) / 64 << "u };\n";
    os << "enum : uint64_t { kStateWords = " << _state_words
       << "ull };\n\n";

    os << "static const uint32_t kOff[kNets] = {";
    for (size_t i = 0; i < nets; i++)
        os << (i % 16 == 0 ? "\n    " : "") << _off[i] << ",";
    os << "\n};\n\n";

    os << "static const uint64_t kInit[kStateWords] = {";
    size_t col = 0;
    for (size_t i = 0; i < nets; i++) {
        const BitVec &v = _nl.initValues()[i];
        uint32_t w = wordsOf(static_cast<NetId>(i));
        for (uint32_t j = 0; j < w; j++) {
            os << (col++ % 8 == 0 ? "\n    " : "")
               << hexU64(v.word(static_cast<int>(j))) << ",";
        }
    }
    os << "\n};\n\n";

    // Consumer-block CSR: the blocks containing a strict consumer of
    // each net, ascending — what poke()/onChange() mark dirty.
    std::vector<std::vector<uint32_t>> fan(nets);
    for (const Block &b : _blocks)
        for (NetId id : b.nodes)
            Netlist::forEachOperand(_nl.net(id), [&](NetId o) {
                if (_nl.net(o).kind == Net::Kind::Const)
                    return;
                auto &lst = fan[static_cast<size_t>(o)];
                if (lst.empty() || lst.back() != b.id)
                    lst.push_back(b.id);
            });
    size_t edges = 0;
    for (auto &lst : fan)
        edges += lst.size();
    os << "static const uint32_t kFanBegin[kNets + 1] = {";
    uint32_t acc = 0;
    for (size_t i = 0; i <= nets; i++) {
        os << (i % 16 == 0 ? "\n    " : "") << acc << ",";
        if (i < nets)
            acc += static_cast<uint32_t>(fan[i].size());
    }
    os << "\n};\n";
    os << "static const uint32_t kFanBlock[" << (edges ? edges : 1)
       << "] = {";
    col = 0;
    for (const auto &lst : fan)
        for (uint32_t b : lst)
            os << (col++ % 16 == 0 ? "\n    " : "") << b << ",";
    if (edges == 0)
        os << "0";
    os << "\n};\n\n";

    // Bits of every real (non-padding) block, for the dense sweep.
    std::vector<uint64_t> mask((_block_bits + 63) / 64, 0);
    for (const Block &b : _blocks)
        mask[b.id / 64] |= 1ull << (b.id % 64);
    if (mask.empty())
        mask.push_back(0);   // keep the array legal for empty designs
    os << "static const uint64_t kBlockMask[kBlockWords ? kBlockWords "
          ": 1] = {";
    for (size_t i = 0; i < mask.size(); i++)
        os << (i % 8 == 0 ? "\n    " : "") << hexU64(mask[i]) << ",";
    os << "\n};\n";

    // Level of each block, for the per-level dirty summary (padding
    // ids map to 0; they are never marked).
    std::vector<uint32_t> blk_level(_block_bits ? _block_bits : 1, 0);
    for (const Block &b : _blocks)
        blk_level[b.id] = static_cast<uint32_t>(b.level);
    os << "static const uint32_t kBlockLevel[kBlockBits ? kBlockBits "
          ": 1] = {";
    for (size_t i = 0; i < blk_level.size(); i++)
        os << (i % 16 == 0 ? "\n    " : "") << blk_level[i] << ",";
    os << "\n};\n";
}

std::string
CppEmitter::guardExpr(const Net &n) const
{
    std::set<NetId> ops;
    Netlist::forEachOperand(n, [&](NetId o) {
        if (_nl.net(o).kind != Net::Kind::Const)
            ops.insert(o);
    });
    std::string g = "full";
    for (NetId o : ops)
        g += strfmt(" | (c->chg[%d] == ep)", o);
    return g;
}

std::string
CppEmitter::fastVal(NetId o) const
{
    const Net &n = _nl.net(o);
    if (n.kind == Net::Kind::Const)
        return hexU64(
            _nl.initValues()[static_cast<size_t>(o)].toUint64());
    return strfmt("c->s[%u]", _off[static_cast<size_t>(o)]);
}

std::string
CppEmitter::ptrOf(NetId o) const
{
    return strfmt("&c->s[%u]", _off[static_cast<size_t>(o)]);
}

void
CppEmitter::emitNode(std::ostringstream &os, NetId id)
{
    const Net &n = _nl.net(id);
    std::string guard = guardExpr(n);
    const std::string &nm = _nl.nameOf(id);
    os << "        // n" << id << " w" << n.width;
    if (!nm.empty())
        os << " " << nm;
    os << "\n";
    if (n.width <= 0) {
        // Zero-width values are the empty bit string: permanently
        // zero, evaluated for the activity count only.
        os << "        { if (" << guard << ") ev++; }\n";
        return;
    }
    if (n.fast)
        emitFastNode(os, id, guard);
    else
        emitWideNode(os, id, guard);
}

void
CppEmitter::emitFastNode(std::ostringstream &os, NetId id,
                         const std::string &guard)
{
    const Net &n = _nl.net(id);
    uint64_t m = maskOf(n.width);
    std::string M = hexU64(m);
    std::string body;
    switch (n.kind) {
      case Net::Kind::Copy:
        body = strfmt("uint64_t r = %s;", fastVal(n.a).c_str());
        break;
      case Net::Kind::Unop:
        switch (n.op) {
          case Op::Not:
            body = strfmt("uint64_t r = ~%s;", fastVal(n.a).c_str());
            break;
          case Op::RedOr:
            body =
                strfmt("uint64_t r = %s != 0;", fastVal(n.a).c_str());
            break;
          case Op::RedAnd:
            body = strfmt("uint64_t r = %s == %s;",
                          fastVal(n.a).c_str(),
                          hexU64(maskOf(_nl.net(n.a).width)).c_str());
            break;
          default:
            assert(!"bad unary op");
        }
        break;
      case Net::Kind::Binop: {
        std::string a = fastVal(n.a), b = fastVal(n.b);
        const char *tok = opToken(n.op);
        switch (n.op) {
          case Op::And:
          case Op::Or:
          case Op::Xor:
            body = strfmt("uint64_t r = %s %s %s;", a.c_str(), tok,
                          b.c_str());
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            body = strfmt("uint64_t r = (%s & %s) %s (%s & %s);",
                          a.c_str(), M.c_str(), tok, b.c_str(),
                          M.c_str());
            break;
          case Op::Eq:
          case Op::Ne:
          case Op::Lt:
          case Op::Le:
          case Op::Gt:
          case Op::Ge:
            body = strfmt("uint64_t r = %s %s %s;", a.c_str(), tok,
                          b.c_str());
            break;
          case Op::Shl:
          case Op::Shr:
            body = strfmt("uint64_t sh = %s & %s; "
                          "uint64_t r = sh >= %dull ? 0 "
                          ": (%s & %s) %s sh;",
                          b.c_str(), M.c_str(), n.width, a.c_str(),
                          M.c_str(), tok);
            break;
          default:
            assert(!"bad binary op");
        }
        break;
      }
      case Net::Kind::Mux:
        body = strfmt("uint64_t r = %s ? %s : %s;",
                      fastVal(n.a).c_str(), fastVal(n.b).c_str(),
                      fastVal(n.c).c_str());
        break;
      case Net::Kind::Slice: {
        std::string a = fastVal(n.a);
        if (n.lo >= 0)
            body = n.lo >= 64
                ? "uint64_t r = 0;"
                : strfmt("uint64_t r = %s >> %d;", a.c_str(), n.lo);
        else
            body = -n.lo >= 64
                ? "uint64_t r = 0;"
                : strfmt("uint64_t r = %s << %d;", a.c_str(), -n.lo);
        break;
      }
      case Net::Kind::Concat: {
        // cargs are hi-first; assemble from the low end.
        body = "uint64_t r = ";
        int sh = 0;
        bool first = true;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            if (!first)
                body += " | ";
            first = false;
            if (sh == 0)
                body += fastVal(*it);
            else
                body += strfmt("(%s << %d)", fastVal(*it).c_str(), sh);
            sh += _nl.net(*it).width;
            if (sh >= 64)
                break;
        }
        if (first)
            body += "0";
        body += ";";
        break;
      }
      case Net::Kind::Rom: {
        std::string tbl = romTable(n);
        body = strfmt("uint64_t a0 = %s; "
                      "uint64_t r = a0 < %zuull ? %s[a0] : 0;",
                      fastVal(n.a).c_str(), n.rom->size(),
                      tbl.c_str());
        break;
      }
      default:
        assert(!"source in strict order");
    }
    std::string store = n.width >= 64
        ? std::string()
        : strfmt(" r &= %s;", M.c_str());
    os << "        { if (" << guard << ") { ev++; " << body << store
       << " uint64_t *p = &c->s[" << _off[static_cast<size_t>(id)]
       << "]; if (*p != r) { *p = r; onChange(c, " << id
       << "); } } }\n";
}

void
CppEmitter::emitWideNode(std::ostringstream &os, NetId id,
                         const std::string &guard)
{
    const Net &n = _nl.net(id);
    uint32_t dw = wordsOf(id);
    int dbits = n.width;
    std::string dsig = strfmt("t, %uu, %du", dw, dbits);
    std::string body;
    auto opnd = [&](NetId o) {
        return strfmt("%s, %uu", ptrOf(o).c_str(), wordsOf(o));
    };
    switch (n.kind) {
      case Net::Kind::Copy:
        body = strfmt("w_copy(%s, %s);", dsig.c_str(),
                      opnd(n.a).c_str());
        break;
      case Net::Kind::Unop:
        switch (n.op) {
          case Op::Not:
            body = strfmt("w_not(%s, %s);", dsig.c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::RedOr:
            body = strfmt("t[0] = w_any(%s);", opnd(n.a).c_str());
            break;
          case Op::RedAnd:
            body = strfmt("t[0] = w_red_and(%s, %du);",
                          opnd(n.a).c_str(), _nl.net(n.a).width);
            break;
          default:
            assert(!"bad unary op");
        }
        break;
      case Net::Kind::Binop: {
        const char *fn = nullptr;
        switch (n.op) {
          case Op::And: fn = "w_and"; break;
          case Op::Or: fn = "w_or"; break;
          case Op::Xor: fn = "w_xor"; break;
          case Op::Add: fn = "w_add"; break;
          case Op::Sub: fn = "w_sub"; break;
          case Op::Mul: fn = "w_mul"; break;
          default: break;
        }
        if (fn) {
            body = strfmt("%s(%s, %s, %s);", fn, dsig.c_str(),
                          opnd(n.a).c_str(), opnd(n.b).c_str());
            break;
        }
        switch (n.op) {
          case Op::Eq:
            body = strfmt("t[0] = w_eq(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Ne:
            body = strfmt("t[0] = !w_eq(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Lt:
            body = strfmt("t[0] = w_ult(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Le:
            body = strfmt("t[0] = w_ule(%s, %s);", opnd(n.a).c_str(),
                          opnd(n.b).c_str());
            break;
          case Op::Gt:
            body = strfmt("t[0] = w_ult(%s, %s);", opnd(n.b).c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::Ge:
            body = strfmt("t[0] = w_ule(%s, %s);", opnd(n.b).c_str(),
                          opnd(n.a).c_str());
            break;
          case Op::Shl:
          case Op::Shr:
            // Shift amount: low word of the operand resized to the
            // node width (BitVec applyBinop semantics).
            body = strfmt(
                "%s(%s, %s, w_rword(%s, %uu, %du, 0));",
                n.op == Op::Shl ? "w_shl" : "w_shr", dsig.c_str(),
                opnd(n.a).c_str(), opnd(n.b).c_str(), dw, dbits);
            break;
          default:
            assert(!"bad binary op");
        }
        break;
      }
      case Net::Kind::Mux: {
        const Net &cn = _nl.net(n.a);
        std::string cond = cn.width <= 64
            ? strfmt("%s != 0", fastVal(n.a).c_str())
            : strfmt("w_any(%s)", opnd(n.a).c_str());
        body = strfmt("if (%s) w_copy(%s, %s); else w_copy(%s, %s);",
                      cond.c_str(), dsig.c_str(), opnd(n.b).c_str(),
                      dsig.c_str(), opnd(n.c).c_str());
        break;
      }
      case Net::Kind::Slice:
        body = strfmt("w_slice(%s, %s, %d);", dsig.c_str(),
                      opnd(n.a).c_str(), n.lo);
        break;
      case Net::Kind::Concat: {
        body = strfmt("w_zero(t, %uu);", dw);
        uint32_t off = 0;
        for (auto it = n.cargs.rbegin(); it != n.cargs.rend(); ++it) {
            int pw = _nl.net(*it).width;
            if (pw <= 0)
                continue;
            if (off < dw * 64)
                body += strfmt(" w_inject(t, %uu, %s, %du, %uu);", dw,
                               opnd(*it).c_str(), pw, off);
            off += static_cast<uint32_t>(pw);
        }
        body += strfmt(" t[%uu] &= wmask(%du);", dw - 1, dbits);
        break;
      }
      case Net::Kind::Rom: {
        std::string tbl = romTable(n);
        body = strfmt("uint64_t a0 = wat(%s, 0); "
                      "if (a0 < %zuull) memcpy(t, &%s[a0 * %uu], "
                      "%uu * 8); else w_zero(t, %uu);",
                      opnd(n.a).c_str(), n.rom->size(), tbl.c_str(),
                      dw, dw, dw);
        break;
      }
      default:
        assert(!"source in strict order");
    }
    os << "        { if (" << guard << ") { ev++; uint64_t t[" << dw
       << "]; " << body << " w_store(c, " << id << ", "
       << ptrOf(id) << ", t, " << dw << "u); } }\n";
}

void
CppEmitter::emitLevelFns(std::ostringstream &os)
{
    // Group blocks per level (levels can be empty after appends).
    std::map<int, std::vector<const Block *>> by_level;
    for (const Block &b : _blocks)
        by_level[b.level].push_back(&b);

    for (const auto &[level, blocks] : by_level) {
        auto [w0, w1] = _level_words[static_cast<size_t>(level)];
        os << "\n/* level " << level << ": " << blocks.size()
           << " blocks, bitmap words [" << w0 << ", " << w1
           << ") */\n";
        os << "static uint64_t lvl_" << level
           << "(Ctx *c, int full)\n{\n"
           << "    uint64_t ev = 0;\n"
           << "    const uint64_t ep = c->ep;\n"
           << "    (void)ep;\n";
        os << "    for (uint32_t w = " << w0 << "u; w < " << w1
           << "u; w++) {\n"
           << "        uint64_t bits = full ? kBlockMask[w] "
              ": c->blk[w];\n"
           << "        c->blk[w] = 0;\n"
           << "        while (bits) {\n"
           << "            uint32_t b = w * 64u + "
              "(uint32_t)__builtin_ctzll(bits);\n"
           << "            bits &= bits - 1;\n"
           << "            switch (b) {\n";
        for (const Block *b : blocks) {
            os << "            case " << b->id << "u: {\n";
            std::ostringstream body;
            for (NetId id : b->nodes)
                emitNode(body, id);
            os << body.str();
            os << "            } break;\n";
        }
        os << "            default: break;\n"
           << "            }\n"
           << "        }\n"
           << "    }\n"
           << "    return ev;\n"
           << "}\n";
    }
}

std::string
CppEmitter::run()
{
    layoutState();
    layoutBlocks();

    std::ostringstream body;
    emitLevelFns(body);

    // Tables are rendered after the level functions so every ROM the
    // node bodies reference has been registered.
    std::ostringstream tables;
    emitTables(tables);

    std::ostringstream os;
    os << "// Generated by anvilc --emit-cpp; design '" << _name
       << "'.\n"
       << "// Implements AnvilKernelV1 (see src/rtl/kernel_abi.h and "
          "docs/compile.md);\n"
       << "// compile with: c++ -O2 -fPIC -shared -o kernel.so "
          "<this file>\n"
       << "#include <stdint.h>\n"
       << "#include <stdlib.h>\n"
       << "#include <string.h>\n\n"
       << "extern \"C\" {\n"
       << "typedef struct AnvilKernelV1 {\n"
       << "    uint32_t abi_version;\n"
       << "    uint32_t net_count;\n"
       << "    uint64_t design_hash;\n"
       << "    uint64_t state_words;\n"
       << "    void *(*create)(void);\n"
       << "    void (*destroy)(void *ctx);\n"
       << "    uint64_t *(*net_ptr)(void *ctx, int32_t net);\n"
       << "    void (*poke)(void *ctx, int32_t net);\n"
       << "    uint64_t (*eval)(void *ctx, int32_t *changed, "
          "uint64_t *n_changed);\n"
       << "    uint64_t (*eval_full)(void *ctx, int32_t *changed, "
          "uint64_t *n_changed);\n"
       << "} AnvilKernelV1;\n"
       << "const AnvilKernelV1 *anvil_kernel_v1(void);\n"
       << "}\n\n"
       << "namespace {\n\n";

    os << tables.str() << "\n";
    os << _rom_defs.str();
    os << kWidePrelude << "\n";

    os << R"(struct Ctx
{
    uint64_t s[kStateWords];
    uint64_t chg[kNets];      // epoch mark: changed in sweep chg[i]
    uint64_t blk[kBlockWords ? kBlockWords : 1];
    uint64_t lvl[kLevelWords ? kLevelWords : 1]; // levels w/ dirty blocks
    int32_t *out;             // changed-net list of the current eval
    uint64_t nout;
    uint64_t ep;              // current sweep epoch
};

static inline void markFan(Ctx *c, int32_t id)
{
    for (uint32_t k = kFanBegin[id]; k < kFanBegin[id + 1]; k++) {
        uint32_t b = kFanBlock[k];
        c->blk[b >> 6] |= 1ull << (b & 63u);
        uint32_t l = kBlockLevel[b];
        c->lvl[l >> 6] |= 1ull << (l & 63u);
    }
}

static inline void onChange(Ctx *c, int32_t id)
{
    c->chg[id] = c->ep;
    c->out[c->nout++] = id;
    markFan(c, id);
}

static inline void w_store(Ctx *c, int32_t id, uint64_t *dst,
                           const uint64_t *t, uint32_t words)
{
    if (memcmp(dst, t, words * 8) != 0) {
        memcpy(dst, t, words * 8);
        onChange(c, id);
    }
}
)";

    os << body.str();

    os << "\nstatic uint64_t do_eval(Ctx *c, int32_t *out, "
          "uint64_t *nout, int full)\n{\n"
       << "    c->out = out;\n"
       << "    c->nout = 0;\n"
       << "    c->ep++;\n"
       << "    uint64_t ev = 0;\n";
    {
        // Call a level only when it has a marked block (or densely);
        // operands live in strictly earlier levels, so marks made
        // while running one level always target a later, unread bit.
        std::set<int> levels;
        for (const Block &b : _blocks)
            levels.insert(b.level);
        for (int l : levels)
            os << "    if (full | ((c->lvl[" << l / 64 << "] >> "
               << l % 64 << ") & 1)) { c->lvl[" << l / 64
               << "] &= ~(1ull << " << l % 64 << "); ev += lvl_" << l
               << "(c, full); }\n";
    }
    os << "    *nout = c->nout;\n"
       << "    return ev;\n"
       << "}\n\n";

    os << R"(static void *k_create(void)
{
    Ctx *c = (Ctx *)calloc(1, sizeof(Ctx));
    if (!c)
        return 0;
    memcpy(c->s, kInit, sizeof(c->s));
    return c;
}
static void k_destroy(void *ctx) { free(ctx); }
static uint64_t *k_net_ptr(void *ctx, int32_t net)
{
    return ((Ctx *)ctx)->s + kOff[net];
}
static void k_poke(void *ctx, int32_t net)
{
    Ctx *c = (Ctx *)ctx;
    c->chg[net] = c->ep + 1;
    markFan(c, net);
}
static uint64_t k_eval(void *ctx, int32_t *changed, uint64_t *n)
{
    return do_eval((Ctx *)ctx, changed, n, 0);
}
static uint64_t k_eval_full(void *ctx, int32_t *changed, uint64_t *n)
{
    return do_eval((Ctx *)ctx, changed, n, 1);
}
)";

    os << "\nstatic const AnvilKernelV1 kKernel = {\n"
       << "    1u, kNets, "
       << hexU64(rtl::designHash(_nl)) << ", kStateWords,\n"
       << "    k_create, k_destroy, k_net_ptr, k_poke, k_eval, "
          "k_eval_full,\n"
       << "};\n\n"
       << "} // namespace\n\n"
       << "extern \"C\" const AnvilKernelV1 *\nanvil_kernel_v1(void)\n"
       << "{\n    return &kKernel;\n}\n";
    return os.str();
}

} // namespace

std::string
emitCppKernel(const Netlist &nl, const std::string &design_name)
{
    CppEmitter e(nl, design_name);
    return e.run();
}

} // namespace codegen
} // namespace anvil
