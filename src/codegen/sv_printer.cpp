#include "codegen/sv_printer.h"

#include <map>
#include <set>
#include <sstream>

#include "codegen/emit_util.h"
#include "support/strings.h"

namespace anvil {

namespace {

using codegen::opToken;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Op;

/** Legalizes slices/roms into temporaries as it prints expressions. */
class SvPrinter
{
  public:
    explicit SvPrinter(const rtl::Module &mod)
        : _mod(mod)
    {
    }

    std::string run();

  private:
    std::string expr(const ExprPtr &e);
    std::string sanitize(const std::string &n) const
    {
        return codegen::sanitizeIdent(n);
    }

    const rtl::Module &_mod;
    std::ostringstream _extra;   // temp wires for slice legalization
    int _tmp = 0;
    std::map<const std::vector<BitVec> *, std::string> _rom_names;
    std::ostringstream _roms;
};

std::string
SvPrinter::expr(const ExprPtr &e)
{
    switch (e->kind) {
      case Expr::Kind::Const: {
        std::string hex = e->value.toHex().substr(2);
        return strfmt("%d'h%s", e->width, hex.c_str());
      }
      case Expr::Kind::Ref:
        return sanitize(e->name);
      case Expr::Kind::Unop:
        if (e->op == Op::RedOr || e->op == Op::RedAnd)
            return strfmt("(%s(%s))", opToken(e->op),
                          expr(e->args[0]).c_str());
        return strfmt("(~%s)", expr(e->args[0]).c_str());
      case Expr::Kind::Binop:
        return strfmt("(%s %s %s)", expr(e->args[0]).c_str(),
                      opToken(e->op), expr(e->args[1]).c_str());
      case Expr::Kind::Mux:
        return strfmt("((%s) ? %s : %s)", expr(e->args[0]).c_str(),
                      expr(e->args[1]).c_str(), expr(e->args[2]).c_str());
      case Expr::Kind::Slice: {
        std::string base = expr(e->args[0]);
        if (e->args[0]->kind != Expr::Kind::Ref) {
            std::string t = strfmt("_slice_t%d", _tmp++);
            _extra << "    logic [" << e->args[0]->width - 1 << ":0] "
                   << t << ";\n"
                   << "    assign " << t << " = " << base << ";\n";
            base = t;
        }
        return strfmt("%s[%d +: %d]", base.c_str(), e->lo, e->width);
      }
      case Expr::Kind::Concat: {
        std::string out = "{";
        for (size_t i = 0; i < e->args.size(); i++) {
            if (i)
                out += ", ";
            out += expr(e->args[i]);
        }
        return out + "}";
      }
      case Expr::Kind::Rom: {
        auto it = _rom_names.find(e->rom.get());
        std::string name;
        if (it == _rom_names.end()) {
            name = strfmt("_rom%d", static_cast<int>(_rom_names.size()));
            _rom_names[e->rom.get()] = name;
            _roms << "    localparam logic [" << e->width - 1 << ":0] "
                  << name << " [0:" << e->rom->size() - 1 << "] = '{";
            for (size_t i = 0; i < e->rom->size(); i++) {
                if (i)
                    _roms << ", ";
                _roms << e->width << "'h"
                      << (*e->rom)[i].resize(e->width).toHex().substr(2);
            }
            _roms << "};\n";
        } else {
            name = it->second;
        }
        return strfmt("%s[%s]", name.c_str(), expr(e->args[0]).c_str());
    }
    }
    return "0";
}

std::string
SvPrinter::run()
{
    std::ostringstream body;

    // Registers.
    for (const auto &r : _mod.regs)
        body << "    logic [" << r.width - 1 << ":0] "
             << sanitize(r.name) << ";\n";

    // Wires (continuous assignments).
    std::set<std::string> out_ports;
    for (const auto &p : _mod.ports)
        if (!p.is_input)
            out_ports.insert(p.name);
    for (const auto &w : _mod.wires) {
        if (!out_ports.count(w.name))
            body << "    logic [" << w.width - 1 << ":0] "
                 << sanitize(w.name) << ";\n";
    }
    for (const auto &w : _mod.wires)
        body << "    assign " << sanitize(w.name) << " = "
             << expr(w.expr) << ";\n";

    // Instances.
    for (const auto &inst : _mod.instances) {
        // Declare alias wires for child outputs.
        for (const auto &[parent, child] : inst.outputs) {
            const rtl::Port *p = inst.module->findPort(child);
            int w = p ? p->width : 1;
            body << "    logic [" << w - 1 << ":0] "
                 << sanitize(parent) << ";\n";
        }
        body << "    " << sanitize(inst.module->name) << " "
             << sanitize(inst.name) << " (\n        .clk(clk)";
        for (const auto &[port, e] : inst.inputs)
            body << ",\n        ." << sanitize(port) << "("
                 << expr(e) << ")";
        for (const auto &[parent, child] : inst.outputs)
            body << ",\n        ." << sanitize(child) << "("
                 << sanitize(parent) << ")";
        body << "\n    );\n";
    }

    // Register updates, grouped into one always_ff block.
    if (!_mod.updates.empty()) {
        body << "    always_ff @(posedge clk) begin\n";
        for (const auto &u : _mod.updates) {
            std::string en = expr(u.enable);
            if (en == "1'h1")
                body << "        " << sanitize(u.reg) << " <= "
                     << expr(u.value) << ";\n";
            else
                body << "        if (" << en << ") "
                     << sanitize(u.reg) << " <= " << expr(u.value)
                     << ";\n";
        }
        body << "    end\n";
    }

    // Header (ports) printed last so width info is complete.
    std::ostringstream os;
    os << "module " << sanitize(_mod.name) << " (\n";
    os << "    input logic clk";
    for (const auto &p : _mod.ports) {
        os << ",\n    " << (p.is_input ? "input " : "output ")
           << "logic [" << p.width - 1 << ":0] " << sanitize(p.name);
    }
    os << "\n);\n";
    os << _roms.str();
    os << _extra.str();
    os << body.str();
    os << "endmodule\n";
    return os.str();
}

} // namespace

std::string
printSystemVerilog(const rtl::Module &mod)
{
    SvPrinter p(mod);
    return p.run();
}

std::string
printSystemVerilogHierarchy(const rtl::Module &top)
{
    // Children first, deduplicated by module name.
    std::set<std::string> emitted;
    std::string out;
    std::vector<const rtl::Module *> stack{&top};
    std::vector<const rtl::Module *> order;
    while (!stack.empty()) {
        const rtl::Module *m = stack.back();
        stack.pop_back();
        order.push_back(m);
        for (const auto &inst : m->instances)
            stack.push_back(inst.module.get());
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (emitted.insert((*it)->name).second)
            out += printSystemVerilog(**it) + "\n";
    }
    return out;
}

} // namespace anvil
