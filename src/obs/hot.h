/**
 * @file
 * Hot-cone attribution: where did the sweep's work actually go?
 *
 * The sweep statistics (rtl::SweepStats) say how much was evaluated;
 * this report says *what*.  With rtl::Sim::setEvalCounting enabled,
 * every interpreter node evaluation is charged to its net, and
 * buildHotReport aggregates the counters three ways:
 *
 *  - per logic level (the levelized schedule's natural buckets);
 *  - per net, ranked — the individually hottest strict nodes;
 *  - per register cone, ranked: each register's update fan-in closure
 *    (value + enable operands, transitively, stopping at sources),
 *    attributing shared combinational logic to every cone that reads
 *    it.  This is the actionable view: "which architectural state
 *    element's logic burns the cycles".
 *
 * With a compiled kernel attached the per-net counters stay at the
 * interpreter's (the kernel runs strict nets itself); the per-level
 * rows then come from the kernel's own ABI v3 level_stats() export,
 * so level attribution covers both backends.
 *
 * Surfaced as `anvilc --profile-hot` (human table + "anvil-hot-v1"
 * JSON, docs/schemas/hot.schema.json) and as hot.* metrics.
 */

#ifndef ANVIL_OBS_HOT_H
#define ANVIL_OBS_HOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace obs {

class MetricsRegistry;

struct HotReport
{
    struct LevelRow
    {
        uint32_t level = 0;
        uint64_t nodes = 0;     // strict nodes on the level
        uint64_t evals = 0;     // evaluations charged to the level
    };

    struct NetRow
    {
        rtl::NetId net = rtl::kNoNet;
        std::string name;       // flat name, "n<id>" when unnamed
        int width = 1;
        uint64_t evals = 0;
    };

    struct ConeRow
    {
        std::string reg;        // flat register name
        uint64_t nodes = 0;     // strict nets in the fan-in closure
        uint64_t evals = 0;     // evaluations charged to the cone
    };

    uint64_t cycles = 0;
    uint64_t total_evals = 0;
    /** Level rows came from an attached kernel's level_stats(). */
    bool from_kernel = false;

    std::vector<LevelRow> levels;
    std::vector<NetRow> nets;    // ranked, top-N
    std::vector<ConeRow> cones;  // ranked, top-N

    /** Human-readable ranked report. */
    std::string table() const;

    /** One "anvil-hot-v1" JSON document. */
    std::string json() const;

    /** hot.evals counter + hot.level_evals histogram. */
    void exportMetrics(MetricsRegistry &reg) const;
};

/**
 * Aggregate the simulator's evaluation counters (per-net when
 * counting was enabled, kernel per-level export otherwise) into a
 * ranked report.  `top_n` bounds the net and cone tables.
 */
HotReport buildHotReport(rtl::Sim &sim, size_t top_n = 10);

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_HOT_H
