#include "obs/profiler.h"

#include <algorithm>

#include "support/strings.h"

namespace anvil {
namespace obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

TraceProfiler::TraceProfiler(bool record_events) : _record(record_events)
{
    // Fixed tids match rtl::SimPhase values so simPhase() can index
    // directly; observer tracks are appended after these.
    for (int p = 0; p < rtl::kSimPhaseCount; p++)
        track(rtl::simPhaseName(static_cast<rtl::SimPhase>(p)));
}

int
TraceProfiler::track(const std::string &name)
{
    for (size_t i = 0; i < _tracks.size(); i++)
        if (_tracks[i] == name)
            return static_cast<int>(i);
    _tracks.push_back(name);
    _track_ns.push_back(0);
    _track_count.push_back(0);
    return static_cast<int>(_tracks.size() - 1);
}

int32_t
TraceProfiler::nameId(const std::string &name)
{
    for (size_t i = 0; i < _names.size(); i++)
        if (_names[i] == name)
            return static_cast<int32_t>(i);
    _names.push_back(name);
    return static_cast<int32_t>(_names.size() - 1);
}

void
TraceProfiler::event(int tid, const std::string &name, uint64_t begin_ns,
                     uint64_t end_ns, uint64_t cycle)
{
    if (tid < 0 || static_cast<size_t>(tid) >= _tracks.size())
        return;
    size_t t = static_cast<size_t>(tid);
    _track_ns[t] += end_ns - begin_ns;
    _track_count[t]++;
    if (!_record)
        return;
    if (_events.size() >= kMaxEvents) {
        _dropped++;
        return;
    }
    _events.push_back({tid, nameId(name), begin_ns, end_ns, cycle});
}

void
TraceProfiler::simPhase(rtl::SimPhase phase, uint64_t cycle,
                        uint64_t begin_ns, uint64_t end_ns)
{
    int tid = static_cast<int>(phase);
    event(tid, _tracks[static_cast<size_t>(tid)], begin_ns, end_ns,
          cycle);
}

std::vector<TraceProfiler::TrackTotal>
TraceProfiler::totals() const
{
    std::vector<TrackTotal> out;
    for (size_t i = 0; i < _tracks.size(); i++)
        out.push_back({_tracks[i], _track_ns[i], _track_count[i]});
    return out;
}

void
TraceProfiler::writeJson(std::ostream &os) const
{
    // Timestamps are rebased to the earliest event so the trace
    // opens at t=0; Chrome expects microseconds (fractions allowed).
    uint64_t t0 = UINT64_MAX;
    for (const Ev &e : _events)
        t0 = std::min(t0, e.begin_ns);
    if (t0 == UINT64_MAX)
        t0 = 0;

    os << "{\"traceEvents\":[";
    bool first = true;
    for (size_t i = 0; i < _tracks.size(); i++) {
        if (!first)
            os << ",";
        first = false;
        os << strfmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                     i, jsonEscape(_tracks[i]).c_str());
    }
    for (const Ev &e : _events) {
        os << strfmt(",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                     "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"cycle\":%llu}}",
                     jsonEscape(_names[static_cast<size_t>(e.name)])
                         .c_str(),
                     e.tid,
                     static_cast<double>(e.begin_ns - t0) / 1000.0,
                     static_cast<double>(e.end_ns - e.begin_ns) /
                         1000.0,
                     static_cast<unsigned long long>(e.cycle));
    }
    os << "],\"displayTimeUnit\":\"ns\",\"anvil\":{"
          "\"schema\":\"anvil-profile-v1\"";
    os << strfmt(",\"dropped_events\":%llu",
                 static_cast<unsigned long long>(_dropped));
    os << ",\"level_activity\":[";
    for (size_t i = 0; i < _level_activity.size(); i++)
        os << strfmt("%s%llu", i ? "," : "",
                     static_cast<unsigned long long>(
                         _level_activity[i]));
    os << "],\"tracks\":[";
    for (size_t i = 0; i < _tracks.size(); i++)
        os << strfmt("%s{\"name\":\"%s\",\"events\":%llu,"
                     "\"total_ns\":%llu}",
                     i ? "," : "", jsonEscape(_tracks[i]).c_str(),
                     static_cast<unsigned long long>(_track_count[i]),
                     static_cast<unsigned long long>(_track_ns[i]));
    os << "]}}\n";
}

} // namespace obs
} // namespace anvil
