#include "obs/slice.h"

#include <stdexcept>

namespace anvil {
namespace obs {

std::vector<std::string>
channelSignals(const rtl::Netlist &nl, const std::string &channel)
{
    std::vector<std::string> out;
    const std::string prefix = channel + "_";
    for (const auto &[name, sig] : nl.signals()) {
        (void)sig;
        if (name == channel ||
            name.compare(0, prefix.size(), prefix) == 0)
            out.push_back(name);
    }
    if (out.empty())
        throw std::invalid_argument(
            "no signals for channel '" + channel + "'");
    return out;
}

} // namespace obs
} // namespace anvil
