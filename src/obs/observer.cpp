#include "obs/observer.h"

#include <stdexcept>

#include "obs/profiler.h"

namespace anvil {
namespace obs {

Observer::~Observer()
{
    if (_feed)
        _feed->detach(*this);
}

ChangeFeed::ChangeFeed(rtl::Sim &sim) : _sim(sim)
{
    _sub_head.assign(_sim.netlist().nets().size(), -1);
}

ChangeFeed::~ChangeFeed()
{
    for (Slot &s : _slots)
        if (s.obs) {
            s.obs->_feed = nullptr;
            s.obs->_index = -1;
        }
}

void
ChangeFeed::attach(Observer &obs)
{
    if (obs._feed == this)
        return;
    if (obs._feed)
        throw std::logic_error(
            "observer is already attached to another ChangeFeed");
    obs._feed = this;
    obs._index = static_cast<int32_t>(_slots.size());
    Slot s;
    s.obs = &obs;
    s.cost.name = obs.observerName();
    if (_profiler)
        s.track = _profiler->track("obs:" + s.cost.name);
    _slots.push_back(std::move(s));
    obs.onAttach(*this);
}

void
ChangeFeed::detach(Observer &obs)
{
    if (obs._feed != this)
        return;
    // The index is retired, never reused: per-net subscriber chains
    // keep their entries and sample() skips the empty slot.
    _slots[static_cast<size_t>(obs._index)].obs = nullptr;
    obs._feed = nullptr;
    obs._index = -1;
    _csr_dirty = true;
}

bool
ChangeFeed::subscribe(Observer &obs, rtl::NetId net)
{
    if (obs._feed != this)
        throw std::logic_error(
            "subscribe() from an observer not attached to this feed");
    if (net == rtl::kNoNet ||
        static_cast<size_t>(net) >= _sub_head.size() ||
        _sim.netlist().net(net).lazy)
        return false;
    size_t ni = static_cast<size_t>(net);
    for (int32_t k = _sub_head[ni]; k >= 0; k = _subs[k].next)
        if (_subs[static_cast<size_t>(k)].obs == obs._index)
            return true;   // already subscribed
    _subs.push_back({obs._index, _sub_head[ni]});
    _sub_head[ni] = static_cast<int32_t>(_subs.size() - 1);
    _csr_dirty = true;
    return true;
}

void
ChangeFeed::subscribeAll(Observer &obs)
{
    if (obs._feed != this)
        throw std::logic_error(
            "subscribeAll() from an observer not attached to this "
            "feed");
    _slots[static_cast<size_t>(obs._index)].all_nets = true;
}

void
ChangeFeed::rebuildCsr()
{
    size_t nets = _sub_head.size();
    _csr_off.assign(nets + 1, 0);
    for (size_t ni = 0; ni < nets; ni++)
        for (int32_t k = _sub_head[ni]; k >= 0;
             k = _subs[static_cast<size_t>(k)].next)
            if (_slots[static_cast<size_t>(
                          _subs[static_cast<size_t>(k)].obs)]
                    .obs)
                _csr_off[ni + 1]++;
    for (size_t ni = 0; ni < nets; ni++)
        _csr_off[ni + 1] += _csr_off[ni];
    _csr_obs.resize(_csr_off[nets]);
    std::vector<uint32_t> fill(_csr_off.begin(),
                               _csr_off.end() - 1);
    for (size_t ni = 0; ni < nets; ni++)
        for (int32_t k = _sub_head[ni]; k >= 0;
             k = _subs[static_cast<size_t>(k)].next) {
            int32_t oi = _subs[static_cast<size_t>(k)].obs;
            if (_slots[static_cast<size_t>(oi)].obs)
                _csr_obs[fill[ni]++] = oi;
        }
    _csr_dirty = false;
}

bool
ChangeFeed::empty() const
{
    if (_profiler)
        return false;
    for (const Slot &s : _slots)
        if (s.obs)
            return false;
    return true;
}

void
ChangeFeed::sample()
{
    uint64_t cyc = _sim.cycle();
    bool fresh = _cursor.fresh(_sim);
    bool timing = _profiler != nullptr;

    if (fresh) {
        // One pass over the simulator's changed-net list distributes
        // each net to every subscriber's per-cycle subset (and, with
        // a profiler attached, into the per-level histogram) — the
        // dedupe that lets any number of observers trace one net
        // without forcing anyone onto the slow path.
        bool distribute = _profiler != nullptr;
        for (Slot &s : _slots)
            if (s.obs && s.primed && !s.all_nets) {
                s.scratch.clear();
                distribute = true;
            }
        if (distribute) {
            if (_csr_dirty)
                rebuildCsr();
            const rtl::Netlist &nl = _sim.netlist();
            for (rtl::NetId id : _sim.changedNets()) {
                size_t ni = static_cast<size_t>(id);
                if (_profiler && ni < nl.nets().size() &&
                    !nl.net(id).lazy) {
                    size_t lvl =
                        static_cast<size_t>(nl.net(id).level);
                    if (lvl < _level_activity.size())
                        _level_activity[lvl]++;
                }
                if (ni >= _sub_head.size())
                    continue;
                for (uint32_t k = _csr_off[ni];
                     k < _csr_off[ni + 1]; k++) {
                    Slot &s = _slots[static_cast<size_t>(
                        _csr_obs[k])];
                    if (s.obs && s.primed)
                        s.scratch.push_back(id);
                }
            }
        }
    }

    for (Slot &s : _slots) {
        if (!s.obs)
            continue;
        uint64_t t0 = timing ? rtl::monotonicNanos() : 0;
        if (fresh && s.primed) {
            const std::vector<rtl::NetId> &list =
                s.all_nets ? _sim.changedNets() : s.scratch;
            s.obs->onCycle(_sim, cyc, list);
            s.cost.nets += list.size();
        } else {
            s.obs->onPrime(_sim, cyc);
            s.primed = true;
            s.cost.primes++;
        }
        s.cost.visits++;
        if (timing) {
            uint64_t t1 = rtl::monotonicNanos();
            s.cost.ns += t1 - t0;
            if (s.track >= 0)
                _profiler->event(s.track, s.cost.name, t0, t1, cyc);
        }
    }
    // Sync after all reads: any poke recorded from here to the clock
    // edge invalidates next cycle's fast path for everyone at once.
    _cursor.sync(_sim);
}

void
ChangeFeed::finish()
{
    for (Slot &s : _slots)
        if (s.obs)
            s.obs->onFinish(_sim);
}

void
ChangeFeed::setProfiler(TraceProfiler *profiler)
{
    _profiler = profiler;
    if (!_profiler)
        return;
    _level_activity.assign(_sim.netlist().levelCount(), 0);
    for (Slot &s : _slots)
        if (s.obs && s.track < 0)
            s.track = _profiler->track("obs:" + s.cost.name);
}

std::vector<ObserverCost>
ChangeFeed::costs() const
{
    std::vector<ObserverCost> out;
    for (const Slot &s : _slots)
        out.push_back(s.cost);
    return out;
}

} // namespace obs
} // namespace anvil
