#include "obs/triage.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/stream.h"
#include "support/strings.h"

namespace anvil {
namespace obs {

AssertionTriage::AssertionTriage(
    const trace::ContractMonitor &monitor, EventSink *sink)
    : _monitor(monitor), _sink(sink)
{
}

void
AssertionTriage::onAttach(ChangeFeed &)
{
    // No net subscriptions: the feed visit is just the per-cycle
    // hook that drains the monitor's violation log.
}

void
AssertionTriage::onPrime(rtl::Sim &, uint64_t)
{
    drain();
}

void
AssertionTriage::onCycle(rtl::Sim &, uint64_t,
                         const std::vector<rtl::NetId> &)
{
    drain();
}

void
AssertionTriage::onFinish(rtl::Sim &)
{
    // The monitor's visit order within the feed is not guaranteed to
    // precede ours; pick up anything logged after our last visit.
    drain();
}

void
AssertionTriage::drain()
{
    const auto &log = _monitor.violations();
    for (; _seen < log.size(); _seen++) {
        const trace::ContractViolation &v = log[_seen];
        if (_sink)
            _sink->violation(v.cycle, v.channel, v.rule, v.message);
        _total++;
        bool found = false;
        for (Entry &e : _entries)
            if (e.channel == v.channel && e.rule == v.rule) {
                e.count++;
                found = true;
                break;
            }
        if (!found)
            _entries.push_back({v.channel, v.rule, v.cycle, 1});
    }
}

std::vector<AssertionTriage::Entry>
AssertionTriage::ranked() const
{
    std::vector<Entry> out = _entries;
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.first_cycle != b.first_cycle)
                      return a.first_cycle < b.first_cycle;
                  if (a.channel != b.channel)
                      return a.channel < b.channel;
                  return a.rule < b.rule;
              });
    return out;
}

void
AssertionTriage::exportMetrics(MetricsRegistry &reg) const
{
    reg.counter("triage.signatures") = _entries.size();
    reg.counter("triage.violations") = _total;
    for (const Entry &e : _entries)
        reg.counter("triage.sig." + e.channel + "." + e.rule) =
            e.count;
}

std::string
AssertionTriage::format(const std::vector<Entry> &entries)
{
    if (entries.empty())
        return "triage: no contract violations\n";
    std::string out = strfmt("triage: %zu signature(s)\n",
                             entries.size());
    for (const Entry &e : entries)
        out += strfmt("  %-24s %-10s x%-6llu first @%llu\n",
                      e.channel.c_str(), e.rule.c_str(),
                      static_cast<unsigned long long>(e.count),
                      static_cast<unsigned long long>(e.first_cycle));
    return out;
}

} // namespace obs
} // namespace anvil
