/**
 * @file
 * Trace-slicing observer: extract one channel's signals into a
 * standalone VCD window (`anvilc --slice CHANNEL --vcd F`).
 *
 * The first plugin written against the unified obs::ChangeFeed API —
 * and deliberately a thin one: channelSignals() picks the channel's
 * named signals (`<ch>`, `<ch>_valid`, `<ch>_ack`, `<ch>_data`, any
 * other `<ch>_*` sibling) out of the netlist table, and ChannelSlicer
 * is rtl::VcdWriter scoped to that list.  Everything hard — priming,
 * change fan-out, rescan fallback, lazy exclusion — comes from the
 * feed, which is the point.
 */

#ifndef ANVIL_OBS_SLICE_H
#define ANVIL_OBS_SLICE_H

#include <ostream>
#include <string>
#include <vector>

#include "rtl/vcd.h"

namespace anvil {
namespace obs {

/**
 * All named signals belonging to a channel: the name itself plus
 * every `<channel>_*` sibling.  Throws std::invalid_argument when
 * the design has no such channel.
 */
std::vector<std::string> channelSignals(const rtl::Netlist &nl,
                                        const std::string &channel);

/** A VcdWriter restricted to one channel's signals. */
class ChannelSlicer : public rtl::VcdWriter
{
  public:
    ChannelSlicer(rtl::Sim &sim, std::ostream &os,
                  const std::string &channel)
        : rtl::VcdWriter(sim, os,
                         channelSignals(sim.netlist(), channel))
    {
    }

    const char *observerName() const override { return "slice"; }
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_SLICE_H
