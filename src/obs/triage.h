/**
 * @file
 * Online assertion-triage observer plugin.
 *
 * A long farm run against a buggy design can produce thousands of
 * contract violations that are all the same bug.  AssertionTriage
 * rides the obs::ChangeFeed next to a trace::ContractMonitor and
 * dedupes its violations online by signature — the (channel, rule)
 * pair — keeping the first-occurrence cycle and a count per
 * signature instead of the raw flood.  Each raw violation is also
 * streamed into an obs::EventSink as it fires (when one is wired),
 * so the event stream stays lossless while the triage table stays
 * small.
 *
 * exportMetrics() publishes:
 *
 *   triage.signatures            distinct (channel, rule) signatures
 *   triage.violations            total raw violations
 *   triage.sig.<channel>.<rule>  per-signature raw count
 *
 * "triage." counters merge across farm workers by SUM, and the
 * merged report re-ranks signatures fleet-wide: count descending,
 * then first cycle, then name — the most frequent, earliest bug
 * first.  format() is the single renderer, shared with obs::Merger.
 */

#ifndef ANVIL_OBS_TRIAGE_H
#define ANVIL_OBS_TRIAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "trace/contracts.h"

namespace anvil {
namespace obs {

class EventSink;
class MetricsRegistry;

class AssertionTriage : public Observer
{
  public:
    /** One deduplicated violation signature. */
    struct Entry
    {
        std::string channel;
        std::string rule;          // "ack-within", "stable", "hold"
        uint64_t first_cycle = 0;
        uint64_t count = 0;
    };

    /** monitor must outlive the triage observer; sink (optional)
     *  receives every raw violation as a "violation" event. */
    explicit AssertionTriage(const trace::ContractMonitor &monitor,
                             EventSink *sink = nullptr);

    // obs::Observer
    void onAttach(ChangeFeed &feed) override;
    void onPrime(rtl::Sim &sim, uint64_t cycle) override;
    void onCycle(rtl::Sim &sim, uint64_t cycle,
                 const std::vector<rtl::NetId> &changed) override;
    void onFinish(rtl::Sim &sim) override;
    const char *observerName() const override { return "triage"; }

    /** Signatures in ranked order (count desc, first cycle, name). */
    std::vector<Entry> ranked() const;

    uint64_t totalViolations() const { return _total; }

    /** Publish under "triage." keys (see file comment). */
    void exportMetrics(MetricsRegistry &reg) const;

    /** Render a ranked signature list as the human triage report —
     *  one renderer for single runs and merged farm reports. */
    static std::string format(const std::vector<Entry> &entries);

  private:
    void drain();

    const trace::ContractMonitor &_monitor;
    EventSink *_sink;
    size_t _seen = 0;     // violations() entries already drained
    uint64_t _total = 0;
    std::vector<Entry> _entries;   // insertion order
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_TRIAGE_H
