#include "obs/hot.h"

#include <algorithm>

#include "obs/metrics.h"
#include "rtl/netlist.h"
#include "support/strings.h"

namespace anvil {
namespace obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

HotReport
buildHotReport(rtl::Sim &sim, size_t top_n)
{
    const rtl::Netlist &nl = sim.netlist();
    const std::vector<uint64_t> &counts = sim.evalCounts();
    auto countOf = [&](rtl::NetId id) -> uint64_t {
        size_t i = static_cast<size_t>(id);
        return i < counts.size() ? counts[i] : 0;
    };

    HotReport rep;
    rep.cycles = sim.cycle();

    // --- Per-level rows ---------------------------------------------
    // A kernel owns the strict sweep, so its ABI v3 export is the
    // authoritative level attribution there; the interpreter's rows
    // are summed from the per-net counters.
    const auto &order = nl.order();
    const auto &lb = nl.levelBegin();
    size_t levels = lb.empty() ? 0 : lb.size() - 1;
    std::vector<uint64_t> kernel_levels = sim.kernelLevelEvals();
    rep.from_kernel = !kernel_levels.empty();
    for (size_t l = 0; l < levels; l++) {
        HotReport::LevelRow row;
        row.level = static_cast<uint32_t>(l);
        row.nodes = static_cast<uint64_t>(lb[l + 1] - lb[l]);
        if (rep.from_kernel) {
            row.evals = l < kernel_levels.size() ? kernel_levels[l]
                                                 : 0;
        } else {
            for (int32_t i = lb[l]; i < lb[l + 1]; i++)
                row.evals += countOf(order[static_cast<size_t>(i)]);
        }
        rep.total_evals += row.evals;
        rep.levels.push_back(row);
    }

    // --- Ranked nets -------------------------------------------------
    std::vector<HotReport::NetRow> nets;
    for (rtl::NetId id : order) {
        uint64_t c = countOf(id);
        if (!c)
            continue;
        HotReport::NetRow row;
        row.net = id;
        const std::string &nm = nl.nameOf(id);
        row.name = nm.empty()
            ? strfmt("n%d", static_cast<int>(id)) : nm;
        row.width = nl.net(id).width;
        row.evals = c;
        nets.push_back(std::move(row));
    }
    std::sort(nets.begin(), nets.end(),
              [](const HotReport::NetRow &a,
                 const HotReport::NetRow &b) {
                  if (a.evals != b.evals)
                      return a.evals > b.evals;
                  return a.net < b.net;
              });
    if (nets.size() > top_n)
        nets.resize(top_n);
    rep.nets = std::move(nets);

    // --- Ranked register cones --------------------------------------
    // Walk each register's update fan-in (value + enable, transitive,
    // stopping at sources) and charge the cone with its nets' counts.
    // Shared logic is deliberately charged to every cone reading it:
    // the question is "what does keeping this register up to date
    // cost", not a partition of the total.
    if (!counts.empty()) {
        std::vector<std::vector<int32_t>> upd_of_reg(nl.regs().size());
        const auto &updates = nl.updates();
        for (size_t u = 0; u < updates.size(); u++)
            if (updates[u].reg_index >= 0)
                upd_of_reg[static_cast<size_t>(updates[u].reg_index)]
                    .push_back(static_cast<int32_t>(u));

        std::vector<uint8_t> seen(nl.nets().size(), 0);
        std::vector<rtl::NetId> stack, cone;
        std::vector<HotReport::ConeRow> cones;
        for (size_t r = 0; r < nl.regs().size(); r++) {
            if (upd_of_reg[r].empty())
                continue;
            cone.clear();
            auto push = [&](rtl::NetId id) {
                size_t i = static_cast<size_t>(id);
                if (i >= seen.size() || seen[i])
                    return;
                seen[i] = 1;
                cone.push_back(id);
                stack.push_back(id);
            };
            for (int32_t u : upd_of_reg[r]) {
                if (updates[static_cast<size_t>(u)].value !=
                    rtl::kNoNet)
                    push(updates[static_cast<size_t>(u)].value);
                if (updates[static_cast<size_t>(u)].enable !=
                    rtl::kNoNet)
                    push(updates[static_cast<size_t>(u)].enable);
            }
            while (!stack.empty()) {
                rtl::NetId id = stack.back();
                stack.pop_back();
                const rtl::Net &n = nl.net(id);
                if (n.kind == rtl::Net::Kind::Input ||
                    n.kind == rtl::Net::Kind::Reg ||
                    n.kind == rtl::Net::Kind::Const)
                    continue;
                rtl::Netlist::forEachOperand(n, push);
            }
            HotReport::ConeRow row;
            row.reg = nl.nameOf(nl.regs()[r]);
            uint64_t strict_nodes = 0;
            for (rtl::NetId id : cone) {
                seen[static_cast<size_t>(id)] = 0;   // reset for next
                const rtl::Net &n = nl.net(id);
                if (n.kind == rtl::Net::Kind::Input ||
                    n.kind == rtl::Net::Kind::Reg ||
                    n.kind == rtl::Net::Kind::Const)
                    continue;
                strict_nodes++;
                row.evals += countOf(id);
            }
            row.nodes = strict_nodes;
            if (row.evals)
                cones.push_back(std::move(row));
        }
        std::sort(cones.begin(), cones.end(),
                  [](const HotReport::ConeRow &a,
                     const HotReport::ConeRow &b) {
                      if (a.evals != b.evals)
                          return a.evals > b.evals;
                      return a.reg < b.reg;
                  });
        if (cones.size() > top_n)
            cones.resize(top_n);
        rep.cones = std::move(cones);
    }

    return rep;
}

std::string
HotReport::table() const
{
    std::string out = strfmt(
        "hot: %llu eval(s) over %llu cycle(s)%s\n",
        static_cast<unsigned long long>(total_evals),
        static_cast<unsigned long long>(cycles),
        from_kernel ? " [kernel levels]" : "");
    out += "  level      nodes           evals\n";
    for (const LevelRow &l : levels)
        out += strfmt("  %5u %10llu %15llu\n", l.level,
                      static_cast<unsigned long long>(l.nodes),
                      static_cast<unsigned long long>(l.evals));
    if (!nets.empty()) {
        out += "  hot nets:\n";
        for (const NetRow &n : nets)
            out += strfmt("    %-32s w%-5d %15llu\n", n.name.c_str(),
                          n.width,
                          static_cast<unsigned long long>(n.evals));
    }
    if (!cones.empty()) {
        out += "  hot cones (register fan-in):\n";
        for (const ConeRow &c : cones)
            out += strfmt("    %-32s %5llu node(s) %15llu\n",
                          c.reg.c_str(),
                          static_cast<unsigned long long>(c.nodes),
                          static_cast<unsigned long long>(c.evals));
    }
    return out;
}

std::string
HotReport::json() const
{
    std::string out = strfmt(
        "{\"schema\":\"anvil-hot-v1\",\"cycles\":%llu,"
        "\"total_evals\":%llu,\"from_kernel\":%s,\"levels\":[",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(total_evals),
        from_kernel ? "true" : "false");
    for (size_t i = 0; i < levels.size(); i++)
        out += strfmt("%s{\"level\":%u,\"nodes\":%llu,"
                      "\"evals\":%llu}",
                      i ? "," : "", levels[i].level,
                      static_cast<unsigned long long>(levels[i].nodes),
                      static_cast<unsigned long long>(
                          levels[i].evals));
    out += "],\"nets\":[";
    for (size_t i = 0; i < nets.size(); i++)
        out += strfmt("%s{\"name\":\"%s\",\"width\":%d,"
                      "\"evals\":%llu}",
                      i ? "," : "",
                      jsonEscape(nets[i].name).c_str(), nets[i].width,
                      static_cast<unsigned long long>(nets[i].evals));
    out += "],\"cones\":[";
    for (size_t i = 0; i < cones.size(); i++)
        out += strfmt("%s{\"reg\":\"%s\",\"nodes\":%llu,"
                      "\"evals\":%llu}",
                      i ? "," : "",
                      jsonEscape(cones[i].reg).c_str(),
                      static_cast<unsigned long long>(cones[i].nodes),
                      static_cast<unsigned long long>(
                          cones[i].evals));
    out += "]}";
    return out;
}

void
HotReport::exportMetrics(MetricsRegistry &reg) const
{
    reg.counter("hot.evals") += total_evals;
    MetricsRegistry::Histogram &h = reg.histogram("hot.level_evals");
    for (const LevelRow &l : levels)
        h.bump(l.level, l.evals);
}

} // namespace obs
} // namespace anvil
