#include "obs/activity.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/stream.h"

namespace anvil {
namespace obs {

RollingActivity::RollingActivity(uint64_t window, EventSink *sink)
    : _window_len(window ? window : 1), _sink(sink)
{
    _ring.assign(static_cast<size_t>(_window_len), 0);
}

void
RollingActivity::onAttach(ChangeFeed &feed)
{
    const rtl::Netlist &nl = feed.sim().netlist();
    _net_slot.assign(nl.nets().size(), -1);
    // One slot per named signal; duplicate nets (aliases) keep the
    // first name so a change counts once, under a stable label.
    for (const auto &[name, sig] : nl.signals()) {
        if (sig.net == rtl::kNoNet ||
            static_cast<size_t>(sig.net) >= _net_slot.size())
            continue;
        if (!feed.subscribe(*this, sig.net))
            continue;
        if (_net_slot[static_cast<size_t>(sig.net)] >= 0)
            continue;
        _net_slot[static_cast<size_t>(sig.net)] =
            static_cast<int32_t>(_names.size());
        _names.push_back(name);
        _changes.push_back(0);
    }
}

void
RollingActivity::onPrime(rtl::Sim &, uint64_t)
{
    // A full rescan carries no per-net change information, so the
    // in-flight window is unreliable — drop it (peaks and whole-run
    // totals survive) and restart the ring from here.
    std::fill(_ring.begin(), _ring.end(), 0);
    _ring_at = 0;
    _ring_fill = 0;
    _window_total = 0;
}

void
RollingActivity::onCycle(rtl::Sim &, uint64_t cycle,
                         const std::vector<rtl::NetId> &changed)
{
    uint64_t named = 0;
    for (rtl::NetId id : changed) {
        int32_t slot = _net_slot[static_cast<size_t>(id)];
        if (slot < 0)
            continue;
        named++;
        _changes[static_cast<size_t>(slot)]++;
    }

    _window_total += named - _ring[_ring_at];
    _ring[_ring_at] = named;
    _ring_at = (_ring_at + 1) % _ring.size();
    if (_ring_fill < _window_len)
        _ring_fill++;
    if (_ring_fill == _window_len && _ring_at == 0)
        closeWindow(cycle);
}

void
RollingActivity::closeWindow(uint64_t cycle)
{
    _windows++;
    _peak_window = std::max(_peak_window, _window_total);
    if (_sink)
        _sink->window(cycle, _window_total,
                      static_cast<double>(_window_total) /
                          static_cast<double>(_window_len));
}

void
RollingActivity::exportMetrics(MetricsRegistry &reg) const
{
    reg.counter("act.window") = _window_len;
    reg.counter("act.windows") = _windows;
    reg.counter("act.peak_window_changes") = _peak_window;

    uint64_t peak_net = 0;
    for (uint64_t c : _changes)
        peak_net = std::max(peak_net, c);
    reg.counter("act.peak_net_changes") = peak_net;

    // Top-8 hottest signals by whole-run change count; ties break on
    // name so the export is deterministic.
    std::vector<size_t> order(_names.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](size_t a, size_t b) {
                  if (_changes[a] != _changes[b])
                      return _changes[a] > _changes[b];
                  return _names[a] < _names[b];
              });
    size_t shown = std::min<size_t>(order.size(), 8);
    for (size_t i = 0; i < shown; i++) {
        if (_changes[order[i]] == 0)
            break;
        reg.counter("act.hot." + _names[order[i]]) =
            _changes[order[i]];
    }
}

} // namespace obs
} // namespace anvil
