/**
 * @file
 * Chrome-trace / Perfetto profiler for simulation runs.
 *
 * TraceProfiler is the sink for both halves of the telemetry spine:
 * as an rtl::SimTelemetry it receives the simulator's per-phase
 * windows (sweep, kernel eval, commit), and the obs::ChangeFeed
 * reports each observer's visit onto its own track.  Every report is
 * accumulated into per-track totals (cheap, always on); when event
 * recording is enabled the individual windows are also buffered and
 * writeJson() emits them in the Chrome Trace Event format ("X"
 * complete events, one tid per track) that chrome://tracing and
 * Perfetto load directly.  An `anvil` extension object carries the
 * per-level activity histogram and per-track totals; trace viewers
 * ignore unknown top-level keys.
 */

#ifndef ANVIL_OBS_PROFILER_H
#define ANVIL_OBS_PROFILER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace obs {

class TraceProfiler : public rtl::SimTelemetry
{
  public:
    struct TrackTotal
    {
        std::string name;
        uint64_t ns = 0;
        uint64_t count = 0;
    };

    /**
     * @param record_events  buffer individual events for writeJson();
     *        false keeps only per-track totals (for --metrics without
     *        --profile the totals are all that is consumed).
     */
    explicit TraceProfiler(bool record_events = true);

    /** Find-or-create a named track; returns its tid. */
    int track(const std::string &name);

    /** Report one timed window [begin_ns, end_ns) on a track. */
    void event(int tid, const std::string &name, uint64_t begin_ns,
               uint64_t end_ns, uint64_t cycle);

    // rtl::SimTelemetry — the simulator's phase windows land on the
    // three fixed tracks created by the constructor.
    void simPhase(rtl::SimPhase phase, uint64_t cycle,
                  uint64_t begin_ns, uint64_t end_ns) override;

    /** Per-track accumulated time and event counts, in tid order. */
    std::vector<TrackTotal> totals() const;

    /** Install the feed's per-level changed-net histogram. */
    void setLevelActivity(std::vector<uint64_t> activity)
    {
        _level_activity = std::move(activity);
    }

    uint64_t droppedEvents() const { return _dropped; }

    /** Emit the Chrome Trace Event JSON document. */
    void writeJson(std::ostream &os) const;

  private:
    struct Ev
    {
        int tid;
        int32_t name;   // index into _names
        uint64_t begin_ns;
        uint64_t end_ns;
        uint64_t cycle;
    };

    int32_t nameId(const std::string &name);

    bool _record;
    std::vector<std::string> _tracks;
    std::vector<uint64_t> _track_ns;
    std::vector<uint64_t> _track_count;
    std::vector<std::string> _names;
    std::vector<Ev> _events;
    uint64_t _dropped = 0;
    std::vector<uint64_t> _level_activity;

    // Bounds the buffer on long runs; totals keep counting past it.
    static constexpr size_t kMaxEvents = 1u << 20;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_PROFILER_H
