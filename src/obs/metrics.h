/**
 * @file
 * Named metrics registry for simulation runs.
 *
 * MetricsRegistry holds the machine-readable counters, gauges,
 * histograms, and timer accumulators an `anvilc --metrics` run emits.
 * Slots are created on first use and live in sorted maps, so json()
 * output is deterministic for a deterministic run.  Timers carry wall
 * time and are never deterministic — they serialize under a separate
 * "timers_ns" key that json(false) omits, which is what the
 * byte-stability tests and the CI determinism check compare.
 *
 * ScopedTimer is the RAII hook: it accumulates elapsed nanoseconds
 * into a registry timer slot (or any uint64_t, or nothing when
 * constructed with a null slot — cheap to leave in place when
 * metrics are off).
 */

#ifndef ANVIL_OBS_METRICS_H
#define ANVIL_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace obs {

class MetricsRegistry
{
  public:
    struct Histogram
    {
        std::vector<uint64_t> counts;

        void bump(size_t bucket, uint64_t by = 1)
        {
            if (bucket >= counts.size())
                counts.resize(bucket + 1, 0);
            counts[bucket] += by;
        }
        uint64_t total() const
        {
            uint64_t sum = 0;
            for (uint64_t c : counts)
                sum += c;
            return sum;
        }
    };

    uint64_t &counter(const std::string &name)
    {
        return _counters[name];
    }
    double &gauge(const std::string &name) { return _gauges[name]; }
    Histogram &histogram(const std::string &name)
    {
        return _histograms[name];
    }
    uint64_t &timerNs(const std::string &name)
    {
        return _timers_ns[name];
    }

    // Read-only views for serializers and mergers (obs/stream.h,
    // obs/merge.h): every slot, in sorted (= json()) order.
    const std::map<std::string, uint64_t> &counters() const
    {
        return _counters;
    }
    const std::map<std::string, double> &gauges() const
    {
        return _gauges;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return _histograms;
    }
    const std::map<std::string, uint64_t> &timersNs() const
    {
        return _timers_ns;
    }

    /**
     * Single-line JSON document (schema "anvil-metrics-v1").  With
     * include_timers=false the non-deterministic "timers_ns" section
     * is omitted; everything that remains is byte-stable across runs
     * at a fixed seed.
     */
    std::string json(bool include_timers = true) const;

  private:
    std::map<std::string, uint64_t> _counters;
    std::map<std::string, double> _gauges;
    std::map<std::string, Histogram> _histograms;
    std::map<std::string, uint64_t> _timers_ns;
};

/** Accumulates elapsed wall nanoseconds into *slot (null: disabled). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(uint64_t *slot)
        : _slot(slot), _begin(slot ? rtl::monotonicNanos() : 0)
    {
    }
    ~ScopedTimer()
    {
        if (_slot)
            *_slot += rtl::monotonicNanos() - _begin;
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    uint64_t *_slot;
    uint64_t _begin;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_METRICS_H
