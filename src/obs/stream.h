/**
 * @file
 * Live telemetry event stream: serializes what a run observes into
 * a versioned JSONL wire format ("anvil-events-v1").
 *
 * An EventSink turns feed-side observations — contract violations
 * as they fire, rolling-activity windows, and the end-of-run
 * coverage / metrics / activity snapshots — into one event object
 * per line.  The stream is the farm's transport: every worker
 * writes one (into memory for `anvilc --farm`, or to disk via
 * `--events`), and obs::Merger folds any number of them back into
 * the exact artifacts a single run would have produced
 * (tb::Coverage::report()/summaryJson(), MetricsRegistry::json(),
 * the anvil-stats-v1 line).
 *
 * Wire format: one JSON object per line, discriminated by "e":
 *
 *   run_begin    schema, design, worker, seed, cycles, sweep, threads
 *   violation    t, channel, rule, msg            (live, one per fire)
 *   window       t, changed, rate                 (live, every K cycles)
 *   window_dump  t, trigger, path, from, to       (flight recorder,
 *                one per flushed trigger window; v2 addition)
 *   cov_signal   name, width, reg, rose[], fell[] (hex mask words)
 *   cov_bins     name, width, hits[]
 *   cov_point    name, count
 *   cov_cross    name, a, b, bins[4]
 *   cov_assert   name, checked, failures, fail_cycles[]
 *   cov_samples  count
 *   counter      k, v          gauge   k, x       (metrics snapshot)
 *   hist         k, counts[]   timer   k, ns
 *   activity     levels[]                 (per-level changed counts)
 *   run_end      cycles, toggles, failures, wall_ns, backend,
 *                activity_pct
 *
 * Coverage and metrics are emitted as end-of-run state snapshots —
 * their merge operators (mask OR, count sum) make per-cycle deltas
 * unnecessary — while violations and windows stream live.  Every
 * stream validates line-by-line against
 * docs/schemas/events.schema.json (json_validate --lines).
 */

#ifndef ANVIL_OBS_STREAM_H
#define ANVIL_OBS_STREAM_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "rtl/interp.h"
#include "tb/coverage.h"

namespace anvil {
namespace obs {

/** Wire-format version tag stamped into every run_begin event.
 *  v2 adds the additive window_dump event (flight-recorder window
 *  references); obs::Merger still accepts v1 streams. */
constexpr const char *kEventsSchema = "anvil-events-v2";

/** Prior wire-format version, still accepted by obs::Merger. */
constexpr const char *kEventsSchemaV1 = "anvil-events-v1";

class EventSink
{
  public:
    /** The stream must outlive the sink's last write. */
    explicit EventSink(std::ostream &os) : _os(os) {}
    EventSink(const EventSink &) = delete;
    EventSink &operator=(const EventSink &) = delete;

    /** Stream header: identifies the design, worker, and seed. */
    void runBegin(const std::string &design, int worker,
                  uint64_t seed, uint64_t cycles,
                  rtl::SweepMode sweep, int threads);

    /** One contract violation, streamed as it fires. */
    void violation(uint64_t cycle, const std::string &channel,
                   const std::string &rule, const std::string &msg);

    /** One completed rolling-activity window. */
    void window(uint64_t cycle, uint64_t changed, double rate);

    /** One flushed flight-recorder window dump: the trigger that
     *  opened it, the cycle range it covers, and where the VCD went
     *  (v2 addition). */
    void windowDump(uint64_t cycle, const std::string &trigger,
                    const std::string &path, uint64_t from,
                    uint64_t to);

    /** End-of-run coverage snapshot (signals, bins, points, samples). */
    void coverage(const tb::Coverage &cov);

    /** End-of-run metrics snapshot (counters/gauges/hists/timers). */
    void metrics(const MetricsRegistry &reg);

    /** Per-level changed-net histogram (profiler-fed runs only). */
    void activity(const std::vector<uint64_t> &levels);

    /** Stream trailer: run totals and the backend actually used. */
    void runEnd(uint64_t cycles, uint64_t toggles, uint64_t failures,
                uint64_t wall_ns, bool compiled_backend,
                double activity_pct);

    /** Events written so far. */
    uint64_t events() const { return _events; }

  private:
    void line(const std::string &s);

    std::ostream &_os;
    uint64_t _events = 0;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_STREAM_H
