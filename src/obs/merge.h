/**
 * @file
 * Multi-stream telemetry merger: folds any number of
 * "anvil-events-v1" event streams (obs::EventSink output) into one
 * unified closure report.
 *
 * The merged artifacts are byte-compatible with what a single run
 * emits: coverage() reconstructs a tb::Coverage whose report() /
 * summaryJson() match the single-run forms, metricsJson() is an
 * "anvil-metrics-v1" document, statsJson() an "anvil-stats-v1" line
 * (plus a "workers" count), and triageReport() the ranked
 * assertion-triage table.  Feeding exactly one stream back through
 * the merger reproduces that run's artifacts byte-for-byte — the
 * N=1 identity the merge-correctness tests pin down.
 *
 * Merge semantics, per slot kind:
 *
 *  - coverage: toggle masks OR, bin/point/assert counts sum, merged
 *    fail cycles sorted and truncated to the single-run retention
 *    cap (all commutative);
 *  - counters: sum — except the "act." activity-envelope prefix,
 *    which keeps the MAX (peaks are high-water marks, and hot-net
 *    totals from different seeds are alternatives, not parts);
 *  - timers: sum (aggregate work); histograms: element-wise sum;
 *  - gauges: a gauge carried by exactly one stream passes through
 *    with its original lexeme; one carried by several is folded as
 *    the cycle-weighted mean.  Derived gauges ("cov.*") and triage
 *    counters are recomputed from the merged state instead;
 *  - violations: re-deduplicated fleet-wide by (channel, rule) with
 *    the earliest first-occurrence cycle.
 *
 * Order independence: streams are sorted by (seed, worker, design,
 * label) before folding, so shuffled inputs — including
 * nondeterministic farm-worker completion order — produce identical
 * bytes.  Even the non-associative float folds see one canonical
 * order.
 */

#ifndef ANVIL_OBS_MERGE_H
#define ANVIL_OBS_MERGE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/triage.h"
#include "tb/coverage.h"

namespace anvil {
namespace obs {

class Merger
{
  public:
    /** Per-stream run identity and totals (run_begin + run_end). */
    struct StreamInfo
    {
        std::string design;
        int worker = 0;
        uint64_t seed = 0;
        std::string sweep;
        int threads = 0;
        uint64_t cycles = 0;
        uint64_t toggles = 0;
        uint64_t failures = 0;
        uint64_t wall_ns = 0;
        std::string backend;
        double activity_pct = 0.0;
    };

    /** Fleet-wide totals over every added stream. */
    struct Totals
    {
        size_t workers = 0;
        uint64_t cycles = 0;
        uint64_t toggles = 0;
        uint64_t failures = 0;
        uint64_t wall_ns = 0;   // summed worker wall time
        std::string backend;    // "compiled"/"interp", "mixed"
    };

    /** One flight-recorder window reference (v2 window_dump event),
     *  annotated with the worker/seed of the stream that carried it. */
    struct WindowDump
    {
        std::string trigger;
        std::string path;
        uint64_t trigger_cycle = 0;
        uint64_t from = 0;
        uint64_t to = 0;
        int worker = 0;
        uint64_t seed = 0;
    };

    Merger();
    ~Merger();
    Merger(const Merger &) = delete;
    Merger &operator=(const Merger &) = delete;

    /**
     * Parse and queue one JSONL event stream.  `label` names the
     * stream in diagnostics (a file path, or "worker-N").  Throws
     * std::runtime_error on malformed lines, an unknown schema tag,
     * or a design mismatch against previously added streams.
     */
    void addStreamText(const std::string &text,
                       const std::string &label);

    /** addStreamText over a file's contents. */
    void addStreamFile(const std::string &path);

    size_t streams() const { return _streams.size(); }

    /** Per-stream identities, in canonical (folded) order. */
    std::vector<StreamInfo> streamInfos() const;

    Totals totals() const;

    /** Merged coverage (valid until the next addStream*). */
    const tb::Coverage &coverage() const;

    /** True when any stream carried coverage events. */
    bool hasCoverage() const;

    /** Merged "anvil-metrics-v1" document. */
    std::string metricsJson(bool include_timers = true) const;

    /** Fleet-ranked triage table (AssertionTriage::format). */
    std::string triageReport() const;

    /** Merged ranked signatures (for callers composing reports). */
    std::vector<AssertionTriage::Entry> triage() const;

    /** Flight-recorder window references carried by the streams, in
     *  canonical fold order, deduplicated by dump path. */
    std::vector<WindowDump> windowDumps() const;

    /**
     * Merged "anvil-stats-v1" line + "workers".  wall_ns_override
     * replaces the summed worker wall time (an in-process farm
     * reports real elapsed time); pass 0 to keep the sum.
     */
    std::string statsJson(uint64_t wall_ns_override = 0) const;

  private:
    struct Stream;
    void fold() const;

    std::vector<std::unique_ptr<Stream>> _streams;

    // Folded state, rebuilt lazily after each addStream*.
    mutable bool _folded = false;
    mutable std::unique_ptr<tb::Coverage> _cov;
    mutable bool _has_cov = false;
    mutable MetricsRegistry _reg;
    mutable std::vector<AssertionTriage::Entry> _triage;
    mutable std::vector<const Stream *> _order;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_MERGE_H
