#include "obs/merge.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/stream.h"
#include "support/json.h"
#include "support/strings.h"

namespace anvil {
namespace obs {

namespace {

/** Exact u64 from a number lexeme (doubles lose 53+ bit counts). */
uint64_t
u64Of(const json::Value &v)
{
    if (v.isNumber())
        return strtoull(v.num.c_str(), nullptr, 10);
    if (v.isString())   // hex mask words: "0x..."
        return strtoull(v.str.c_str(), nullptr, 16);
    throw std::runtime_error("expected a number");
}

std::vector<uint64_t>
u64ListOf(const json::Value &v)
{
    if (!v.isArray())
        throw std::runtime_error("expected an array");
    std::vector<uint64_t> out;
    out.reserve(v.arr.size());
    for (const json::Value &e : v.arr)
        out.push_back(u64Of(e));
    return out;
}

const json::Value &
fieldOf(const json::Value &ev, const char *key)
{
    const json::Value *f = ev.find(key);
    if (!f)
        throw std::runtime_error(strfmt("missing field \"%s\"", key));
    return *f;
}

std::string
strOf(const json::Value &ev, const char *key)
{
    const json::Value &f = fieldOf(ev, key);
    if (!f.isString())
        throw std::runtime_error(
            strfmt("field \"%s\" is not a string", key));
    return f.str;
}

} // namespace

/** One parsed event stream, kept in arrival order per slot kind. */
struct Merger::Stream
{
    std::string label;
    StreamInfo info;
    bool saw_begin = false, saw_end = false;

    bool has_cov = false;
    struct Sig
    {
        std::string name;
        int width = 1;
        bool is_reg = false;
        std::vector<uint64_t> rose, fell;
    };
    std::vector<Sig> signals;
    struct Bins
    {
        std::string name;
        int width = 1;
        std::vector<uint64_t> hits;
    };
    std::vector<Bins> bins;
    struct Point
    {
        std::string name;
        uint64_t count = 0;
    };
    std::vector<Point> points;
    struct Cross
    {
        std::string name, a, b;
        uint64_t bins[4] = {0, 0, 0, 0};
    };
    std::vector<Cross> crosses;
    struct Assert
    {
        std::string name;
        uint64_t checked = 0, failures = 0;
        std::vector<uint64_t> fail_cycles;
    };
    std::vector<Assert> asserts;
    uint64_t samples = 0;

    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<uint64_t>> hists;
    std::map<std::string, uint64_t> timers;
    std::vector<uint64_t> levels;

    struct Viol
    {
        uint64_t cycle = 0;
        std::string channel, rule;
    };
    std::vector<Viol> viols;

    std::vector<Merger::WindowDump> window_dumps;
};

Merger::Merger() = default;
Merger::~Merger() = default;

void
Merger::addStreamText(const std::string &text,
                      const std::string &label)
{
    auto s = std::make_unique<Stream>();
    s->label = label;

    std::istringstream is(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        lineno++;
        if (line.empty())
            continue;
        json::ParseResult pr = json::parse(line);
        if (!pr.ok())
            throw std::runtime_error(strfmt(
                "%s:%zu: %s", label.c_str(), lineno,
                pr.error.c_str()));
        const json::Value &ev = pr.value;
        try {
            if (!ev.isObject())
                throw std::runtime_error("event is not an object");
            std::string kind = strOf(ev, "e");
            if (!s->saw_begin && kind != "run_begin")
                throw std::runtime_error(
                    "stream does not start with run_begin");

            if (kind == "run_begin") {
                std::string schema = strOf(ev, "schema");
                // v2 added the additive window_dump event; v1
                // streams remain valid input.
                if (schema != kEventsSchema &&
                    schema != kEventsSchemaV1)
                    throw std::runtime_error(
                        "unknown event schema \"" + schema + "\"");
                s->saw_begin = true;
                s->info.design = strOf(ev, "design");
                s->info.worker = static_cast<int>(
                    u64Of(fieldOf(ev, "worker")));
                s->info.seed = u64Of(fieldOf(ev, "seed"));
                s->info.sweep = strOf(ev, "sweep");
                s->info.threads = static_cast<int>(
                    u64Of(fieldOf(ev, "threads")));
            } else if (kind == "violation") {
                s->viols.push_back({u64Of(fieldOf(ev, "t")),
                                    strOf(ev, "channel"),
                                    strOf(ev, "rule")});
            } else if (kind == "window") {
                // Live envelope samples; the merged report keeps
                // only the exported "act." peaks.
            } else if (kind == "window_dump") {
                s->window_dumps.push_back(
                    {strOf(ev, "trigger"), strOf(ev, "path"),
                     u64Of(fieldOf(ev, "t")),
                     u64Of(fieldOf(ev, "from")),
                     u64Of(fieldOf(ev, "to")), 0, 0});
            } else if (kind == "cov_signal") {
                s->has_cov = true;
                s->signals.push_back(
                    {strOf(ev, "name"),
                     static_cast<int>(u64Of(fieldOf(ev, "width"))),
                     fieldOf(ev, "reg").boolean,
                     u64ListOf(fieldOf(ev, "rose")),
                     u64ListOf(fieldOf(ev, "fell"))});
            } else if (kind == "cov_bins") {
                s->has_cov = true;
                s->bins.push_back(
                    {strOf(ev, "name"),
                     static_cast<int>(u64Of(fieldOf(ev, "width"))),
                     u64ListOf(fieldOf(ev, "hits"))});
            } else if (kind == "cov_point") {
                s->has_cov = true;
                s->points.push_back({strOf(ev, "name"),
                                     u64Of(fieldOf(ev, "count"))});
            } else if (kind == "cov_cross") {
                s->has_cov = true;
                std::vector<uint64_t> b =
                    u64ListOf(fieldOf(ev, "bins"));
                if (b.size() != 4)
                    throw std::runtime_error(
                        "cov_cross wants 4 bins");
                Stream::Cross cx{strOf(ev, "name"), strOf(ev, "a"),
                                 strOf(ev, "b"), {}};
                std::copy(b.begin(), b.end(), cx.bins);
                s->crosses.push_back(std::move(cx));
            } else if (kind == "cov_assert") {
                s->has_cov = true;
                s->asserts.push_back(
                    {strOf(ev, "name"),
                     u64Of(fieldOf(ev, "checked")),
                     u64Of(fieldOf(ev, "failures")),
                     u64ListOf(fieldOf(ev, "fail_cycles"))});
            } else if (kind == "cov_samples") {
                s->has_cov = true;
                s->samples += u64Of(fieldOf(ev, "count"));
            } else if (kind == "counter") {
                s->counters[strOf(ev, "k")] =
                    u64Of(fieldOf(ev, "v"));
            } else if (kind == "gauge") {
                s->gauges[strOf(ev, "k")] =
                    fieldOf(ev, "x").asDouble();
            } else if (kind == "hist") {
                s->hists[strOf(ev, "k")] =
                    u64ListOf(fieldOf(ev, "counts"));
            } else if (kind == "timer") {
                s->timers[strOf(ev, "k")] =
                    u64Of(fieldOf(ev, "ns"));
            } else if (kind == "activity") {
                s->levels = u64ListOf(fieldOf(ev, "levels"));
            } else if (kind == "run_end") {
                s->saw_end = true;
                s->info.cycles = u64Of(fieldOf(ev, "cycles"));
                s->info.toggles = u64Of(fieldOf(ev, "toggles"));
                s->info.failures = u64Of(fieldOf(ev, "failures"));
                s->info.wall_ns = u64Of(fieldOf(ev, "wall_ns"));
                s->info.backend = strOf(ev, "backend");
                s->info.activity_pct =
                    fieldOf(ev, "activity_pct").asDouble();
            } else {
                throw std::runtime_error("unknown event kind \"" +
                                         kind + "\"");
            }
        } catch (const std::runtime_error &e) {
            throw std::runtime_error(strfmt("%s:%zu: %s",
                                            label.c_str(), lineno,
                                            e.what()));
        }
    }

    if (!s->saw_begin)
        throw std::runtime_error(label + ": empty event stream");
    if (!s->saw_end)
        throw std::runtime_error(label +
                                 ": stream has no run_end event");
    for (const auto &other : _streams)
        if (other->info.design != s->info.design)
            throw std::runtime_error(strfmt(
                "%s: design \"%s\" does not match \"%s\" (%s)",
                label.c_str(), s->info.design.c_str(),
                other->info.design.c_str(), other->label.c_str()));

    _streams.push_back(std::move(s));
    _folded = false;
}

void
Merger::addStreamFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream text;
    text << is.rdbuf();
    addStreamText(text.str(), path);
}

/**
 * Fold every queued stream into the merged state.  Streams are
 * sorted by (seed, worker, design, label) first so the result is
 * independent of arrival order — including the float folds, which
 * are not associative.
 */
void
Merger::fold() const
{
    if (_folded)
        return;

    _order.clear();
    for (const auto &s : _streams)
        _order.push_back(s.get());
    std::sort(_order.begin(), _order.end(),
              [](const Stream *a, const Stream *b) {
                  if (a->info.seed != b->info.seed)
                      return a->info.seed < b->info.seed;
                  if (a->info.worker != b->info.worker)
                      return a->info.worker < b->info.worker;
                  if (a->info.design != b->info.design)
                      return a->info.design < b->info.design;
                  return a->label < b->label;
              });

    // --- Coverage: commutative per-slot unions -----------------------
    _cov = std::make_unique<tb::Coverage>();
    _has_cov = false;
    for (const Stream *s : _order) {
        if (!s->has_cov)
            continue;
        _has_cov = true;
        for (const auto &sg : s->signals)
            _cov->mergeSignal(sg.name, sg.width, sg.is_reg, sg.rose,
                              sg.fell);
        for (const auto &rb : s->bins)
            _cov->mergeRegBins(rb.name, rb.width, rb.hits);
        for (const auto &cp : s->points)
            _cov->mergeCover(cp.name, cp.count);
        for (const auto &cx : s->crosses)
            _cov->mergeCross(cx.name, cx.a, cx.b, cx.bins);
        for (const auto &ap : s->asserts)
            _cov->mergeAssert(ap.name, ap.checked, ap.failures,
                              ap.fail_cycles);
        _cov->mergeSamples(s->samples);
    }

    // --- Violations: fleet-wide (channel, rule) dedupe ---------------
    _triage.clear();
    for (const Stream *s : _order)
        for (const auto &v : s->viols) {
            AssertionTriage::Entry *hit = nullptr;
            for (auto &e : _triage)
                if (e.channel == v.channel && e.rule == v.rule) {
                    hit = &e;
                    break;
                }
            if (hit) {
                hit->count++;
                hit->first_cycle =
                    std::min(hit->first_cycle, v.cycle);
            } else {
                _triage.push_back({v.channel, v.rule, v.cycle, 1});
            }
        }

    // --- Metrics -----------------------------------------------------
    _reg = MetricsRegistry();
    bool any_triage_keys = false;
    for (const Stream *s : _order) {
        for (const auto &[k, v] : s->counters) {
            if (k.rfind("triage.", 0) == 0) {
                // Recomputed below from the merged signatures — a
                // plain sum would over-count shared ones.
                any_triage_keys = true;
                continue;
            }
            uint64_t &slot = _reg.counter(k);
            if (k.rfind("act.", 0) == 0)
                slot = std::max(slot, v);   // peaks: high-water marks
            else
                slot += v;
        }
        for (const auto &[k, h] : s->hists) {
            MetricsRegistry::Histogram &slot = _reg.histogram(k);
            for (size_t i = 0; i < h.size(); i++)
                slot.bump(i, h[i]);
        }
        for (const auto &[k, ns] : s->timers)
            _reg.timerNs(k) += ns;
    }

    // Gauges: verbatim single contributors, cycle-weighted mean
    // otherwise (averaging a rate over more cycles weighs the longer
    // run more).  Cycle-less streams degrade to a plain mean.
    std::map<std::string, std::vector<const Stream *>> gauge_srcs;
    for (const Stream *s : _order)
        for (const auto &[k, x] : s->gauges) {
            (void)x;
            gauge_srcs[k].push_back(s);
        }
    for (const auto &[k, srcs] : gauge_srcs) {
        if (srcs.size() == 1) {
            _reg.gauge(k) = srcs[0]->gauges.at(k);
            continue;
        }
        double sum = 0.0, wsum = 0.0;
        for (const Stream *s : srcs) {
            double w = s->info.cycles
                ? static_cast<double>(s->info.cycles) : 1.0;
            sum += w * s->gauges.at(k);
            wsum += w;
        }
        _reg.gauge(k) = wsum ? sum / wsum : 0.0;
    }

    // Derived slots are recomputed from merged state, not folded.
    if (_has_cov) {
        _reg.gauge("cov.toggle_pct") = _cov->togglePct();
        _reg.gauge("cov.reg_bin_pct") = _cov->regBinPct();
        _reg.counter("cov.samples") = _cov->samples();
    }
    if (any_triage_keys || !_triage.empty()) {
        _reg.counter("triage.signatures") = _triage.size();
        uint64_t total = 0;
        for (const auto &e : _triage) {
            total += e.count;
            _reg.counter("triage.sig." + e.channel + "." + e.rule) =
                e.count;
        }
        _reg.counter("triage.violations") = total;
    }

    _folded = true;
}

std::vector<Merger::StreamInfo>
Merger::streamInfos() const
{
    fold();
    std::vector<StreamInfo> out;
    for (const Stream *s : _order)
        out.push_back(s->info);
    return out;
}

Merger::Totals
Merger::totals() const
{
    fold();
    Totals t;
    t.workers = _order.size();
    for (const Stream *s : _order) {
        t.cycles += s->info.cycles;
        t.toggles += s->info.toggles;
        t.failures += s->info.failures;
        t.wall_ns += s->info.wall_ns;
        if (t.backend.empty())
            t.backend = s->info.backend;
        else if (t.backend != s->info.backend)
            t.backend = "mixed";
    }
    return t;
}

const tb::Coverage &
Merger::coverage() const
{
    fold();
    return *_cov;
}

bool
Merger::hasCoverage() const
{
    fold();
    return _has_cov;
}

std::string
Merger::metricsJson(bool include_timers) const
{
    fold();
    return _reg.json(include_timers);
}

std::vector<AssertionTriage::Entry>
Merger::triage() const
{
    fold();
    std::vector<AssertionTriage::Entry> out = _triage;
    std::sort(out.begin(), out.end(),
              [](const AssertionTriage::Entry &a,
                 const AssertionTriage::Entry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.first_cycle != b.first_cycle)
                      return a.first_cycle < b.first_cycle;
                  if (a.channel != b.channel)
                      return a.channel < b.channel;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<Merger::WindowDump>
Merger::windowDumps() const
{
    fold();
    std::vector<WindowDump> out;
    for (const Stream *s : _order)
        for (WindowDump d : s->window_dumps) {
            d.worker = s->info.worker;
            d.seed = s->info.seed;
            // The same dump file can be referenced by retried or
            // re-merged streams; keep the first occurrence in
            // canonical order.  Pathless references always pass.
            bool dup = false;
            if (!d.path.empty())
                for (const WindowDump &e : out)
                    if (e.path == d.path) {
                        dup = true;
                        break;
                    }
            if (!dup)
                out.push_back(std::move(d));
        }
    return out;
}

std::string
Merger::triageReport() const
{
    return AssertionTriage::format(triage());
}

std::string
Merger::statsJson(uint64_t wall_ns_override) const
{
    fold();
    Totals t = totals();
    uint64_t wall_ns = wall_ns_override ? wall_ns_override
                                        : t.wall_ns;

    // activity_pct: the same cycle-weighted fold as the
    // sweep.activity_pct gauge, inlined over run_end fields so a
    // stream without metrics still contributes.
    double act = 0.0;
    if (_order.size() == 1) {
        act = _order[0]->info.activity_pct;   // verbatim, N=1 identity
    } else {
        double act_sum = 0.0, act_w = 0.0;
        for (const Stream *s : _order) {
            double w = s->info.cycles
                ? static_cast<double>(s->info.cycles) : 1.0;
            act_sum += w * s->info.activity_pct;
            act_w += w;
        }
        act = act_w ? act_sum / act_w : 0.0;
    }
    double cps = wall_ns
        ? static_cast<double>(t.cycles) * 1e9 /
            static_cast<double>(wall_ns)
        : 0.0;

    const Stream *first = _order.empty() ? nullptr : _order[0];
    return strfmt(
        "{\"schema\":\"anvil-stats-v1\",\"design\":\"%s\","
        "\"cycles\":%llu,\"backend\":\"%s\",\"sweep\":\"%s\","
        "\"threads\":%d,\"activity_pct\":%.2f,\"toggles\":%llu,"
        "\"failures\":%zu,\"wall_ns\":%llu,\"cycles_per_sec\":%.0f,"
        "\"coverage\":%s,\"workers\":%zu}",
        first ? first->info.design.c_str() : "",
        (unsigned long long)t.cycles, t.backend.c_str(),
        first ? first->info.sweep.c_str() : "dirty",
        first ? first->info.threads : 0, act,
        (unsigned long long)t.toggles,
        static_cast<size_t>(t.failures),
        (unsigned long long)wall_ns, cps,
        _has_cov ? _cov->summaryJson().c_str() : "null",
        _order.size());
}

} // namespace obs
} // namespace anvil
