#include "obs/stream.h"

#include "support/strings.h"

namespace anvil {
namespace obs {

namespace {

/** Minimal JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
u64List(const std::vector<uint64_t> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); i++)
        out += strfmt("%s%llu", i ? "," : "",
                      static_cast<unsigned long long>(v[i]));
    return out + "]";
}

/** Toggle-mask words as hex strings: exact at any width, and far
 *  denser than decimal for the all-ones masks a long run produces. */
std::string
hexList(const std::vector<uint64_t> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); i++)
        out += strfmt("%s\"0x%llx\"", i ? "," : "",
                      static_cast<unsigned long long>(v[i]));
    return out + "]";
}

} // namespace

void
EventSink::line(const std::string &s)
{
    _os << s << "\n";
    _events++;
}

void
EventSink::runBegin(const std::string &design, int worker,
                    uint64_t seed, uint64_t cycles,
                    rtl::SweepMode sweep, int threads)
{
    line(strfmt("{\"e\":\"run_begin\",\"schema\":\"%s\","
                "\"design\":\"%s\",\"worker\":%d,\"seed\":%llu,"
                "\"cycles\":%llu,\"sweep\":\"%s\",\"threads\":%d}",
                kEventsSchema, jsonEscape(design).c_str(), worker,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(cycles),
                rtl::sweepModeName(sweep), threads));
}

void
EventSink::violation(uint64_t cycle, const std::string &channel,
                     const std::string &rule, const std::string &msg)
{
    line(strfmt("{\"e\":\"violation\",\"t\":%llu,\"channel\":\"%s\","
                "\"rule\":\"%s\",\"msg\":\"%s\"}",
                static_cast<unsigned long long>(cycle),
                jsonEscape(channel).c_str(), jsonEscape(rule).c_str(),
                jsonEscape(msg).c_str()));
}

void
EventSink::window(uint64_t cycle, uint64_t changed, double rate)
{
    line(strfmt("{\"e\":\"window\",\"t\":%llu,\"changed\":%llu,"
                "\"rate\":%.4f}",
                static_cast<unsigned long long>(cycle),
                static_cast<unsigned long long>(changed), rate));
}

void
EventSink::windowDump(uint64_t cycle, const std::string &trigger,
                      const std::string &path, uint64_t from,
                      uint64_t to)
{
    line(strfmt("{\"e\":\"window_dump\",\"t\":%llu,"
                "\"trigger\":\"%s\",\"path\":\"%s\","
                "\"from\":%llu,\"to\":%llu}",
                static_cast<unsigned long long>(cycle),
                jsonEscape(trigger).c_str(), jsonEscape(path).c_str(),
                static_cast<unsigned long long>(from),
                static_cast<unsigned long long>(to)));
}

void
EventSink::coverage(const tb::Coverage &cov)
{
    // Signals are streamed in cov.signals() order — the merger keys
    // by name but creates slots in arrival order, so a faithful
    // replay reconstructs a byte-identical report().
    for (const auto &sc : cov.signals())
        line(strfmt(
            "{\"e\":\"cov_signal\",\"name\":\"%s\",\"width\":%d,"
            "\"reg\":%s,\"rose\":%s,\"fell\":%s}",
            jsonEscape(sc.name).c_str(), sc.width,
            sc.is_reg ? "true" : "false", hexList(sc.rose).c_str(),
            hexList(sc.fell).c_str()));
    for (const auto &rb : cov.regBins())
        line(strfmt("{\"e\":\"cov_bins\",\"name\":\"%s\","
                    "\"width\":%d,\"hits\":%s}",
                    jsonEscape(rb.name).c_str(), rb.width,
                    u64List(rb.hits).c_str()));
    for (const auto &cp : cov.covers())
        line(strfmt("{\"e\":\"cov_point\",\"name\":\"%s\","
                    "\"count\":%llu}",
                    jsonEscape(cp.name).c_str(),
                    static_cast<unsigned long long>(cp.hits)));
    for (const auto &cx : cov.crosses()) {
        const auto &covers = cov.covers();
        line(strfmt(
            "{\"e\":\"cov_cross\",\"name\":\"%s\",\"a\":\"%s\","
            "\"b\":\"%s\",\"bins\":[%llu,%llu,%llu,%llu]}",
            jsonEscape(cx.name).c_str(),
            jsonEscape(covers[cx.a].name).c_str(),
            jsonEscape(covers[cx.b].name).c_str(),
            static_cast<unsigned long long>(cx.bins[0]),
            static_cast<unsigned long long>(cx.bins[1]),
            static_cast<unsigned long long>(cx.bins[2]),
            static_cast<unsigned long long>(cx.bins[3])));
    }
    for (const auto &ap : cov.asserts())
        line(strfmt(
            "{\"e\":\"cov_assert\",\"name\":\"%s\",\"checked\":%llu,"
            "\"failures\":%llu,\"fail_cycles\":%s}",
            jsonEscape(ap.name).c_str(),
            static_cast<unsigned long long>(ap.checked),
            static_cast<unsigned long long>(ap.failures),
            u64List(ap.fail_cycles).c_str()));
    line(strfmt("{\"e\":\"cov_samples\",\"count\":%llu}",
                static_cast<unsigned long long>(cov.samples())));
}

void
EventSink::metrics(const MetricsRegistry &reg)
{
    for (const auto &[k, v] : reg.counters())
        line(strfmt("{\"e\":\"counter\",\"k\":\"%s\",\"v\":%llu}",
                    jsonEscape(k).c_str(),
                    static_cast<unsigned long long>(v)));
    for (const auto &[k, x] : reg.gauges())
        // %.17g round-trips doubles exactly, matching
        // MetricsRegistry::json() so merged gauges re-serialize to
        // the same bytes.
        line(strfmt("{\"e\":\"gauge\",\"k\":\"%s\",\"x\":%.17g}",
                    jsonEscape(k).c_str(), x));
    for (const auto &[k, h] : reg.histograms())
        line(strfmt("{\"e\":\"hist\",\"k\":\"%s\",\"counts\":%s}",
                    jsonEscape(k).c_str(), u64List(h.counts).c_str()));
    for (const auto &[k, ns] : reg.timersNs())
        line(strfmt("{\"e\":\"timer\",\"k\":\"%s\",\"ns\":%llu}",
                    jsonEscape(k).c_str(),
                    static_cast<unsigned long long>(ns)));
}

void
EventSink::activity(const std::vector<uint64_t> &levels)
{
    line(strfmt("{\"e\":\"activity\",\"levels\":%s}",
                u64List(levels).c_str()));
}

void
EventSink::runEnd(uint64_t cycles, uint64_t toggles,
                  uint64_t failures, uint64_t wall_ns,
                  bool compiled_backend, double activity_pct)
{
    line(strfmt(
        "{\"e\":\"run_end\",\"cycles\":%llu,\"toggles\":%llu,"
        "\"failures\":%llu,\"wall_ns\":%llu,\"backend\":\"%s\","
        "\"activity_pct\":%.2f}",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(toggles),
        static_cast<unsigned long long>(failures),
        static_cast<unsigned long long>(wall_ns),
        compiled_backend ? "compiled" : "interp", activity_pct));
}

} // namespace obs
} // namespace anvil
