#include "obs/metrics.h"

#include "support/strings.h"

namespace anvil {
namespace obs {

namespace {

void
appendKey(std::string &out, const std::string &name)
{
    out += "\"";
    for (char c : name) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += "\":";
}

} // namespace

std::string
MetricsRegistry::json(bool include_timers) const
{
    std::string out = "{\"schema\":\"anvil-metrics-v1\",\"counters\":{";
    bool first = true;
    for (const auto &kv : _counters) {
        if (!first)
            out += ",";
        first = false;
        appendKey(out, kv.first);
        out += strfmt("%llu",
                      static_cast<unsigned long long>(kv.second));
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &kv : _gauges) {
        if (!first)
            out += ",";
        first = false;
        appendKey(out, kv.first);
        out += strfmt("%.17g", kv.second);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &kv : _histograms) {
        if (!first)
            out += ",";
        first = false;
        appendKey(out, kv.first);
        out += "{\"counts\":[";
        for (size_t i = 0; i < kv.second.counts.size(); i++)
            out += strfmt("%s%llu", i ? "," : "",
                          static_cast<unsigned long long>(
                              kv.second.counts[i]));
        out += strfmt("],\"total\":%llu}",
                      static_cast<unsigned long long>(
                          kv.second.total()));
    }
    out += "}";
    if (include_timers) {
        out += ",\"timers_ns\":{";
        first = true;
        for (const auto &kv : _timers_ns) {
            if (!first)
                out += ",";
            first = false;
            appendKey(out, kv.first);
            out += strfmt("%llu",
                          static_cast<unsigned long long>(kv.second));
        }
        out += "}";
    }
    out += "}";
    return out;
}

} // namespace obs
} // namespace anvil
