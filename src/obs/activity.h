/**
 * @file
 * Rolling-activity-window observer plugin.
 *
 * RollingActivity rides the shared obs::ChangeFeed and tracks design
 * switching activity over a sliding K-cycle window: a ring buffer of
 * per-cycle changed-signal counts gives the window total in O(1) per
 * cycle, and a per-net accumulator records which named signals are
 * doing the switching.  Each time the window fills it (optionally)
 * streams a "window" event into an obs::EventSink, so a live event
 * stream carries the activity envelope of the run, not just its
 * end-of-run average.
 *
 * exportMetrics() publishes the run's envelope into a
 * MetricsRegistry under the "act." prefix:
 *
 *   act.window              window length K (cycles)
 *   act.windows             completed windows
 *   act.peak_window_changes busiest window's changed-signal total
 *   act.peak_net_changes    busiest single signal's total changes
 *   act.hot.<signal>        total changes of the top-8 hottest nets
 *
 * "act." counters merge across farm workers by MAX, not sum (see
 * obs::Merger): a peak is a high-water mark, and per-worker change
 * totals from different seeds are alternatives, not parts of one run.
 */

#ifndef ANVIL_OBS_ACTIVITY_H
#define ANVIL_OBS_ACTIVITY_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace anvil {
namespace obs {

class EventSink;
class MetricsRegistry;

class RollingActivity : public Observer
{
  public:
    /** window: K, the sliding-window length in cycles; sink: stream
     *  to emit "window" events into (null: track silently). */
    explicit RollingActivity(uint64_t window = 64,
                             EventSink *sink = nullptr);

    // obs::Observer
    void onAttach(ChangeFeed &feed) override;
    void onPrime(rtl::Sim &sim, uint64_t cycle) override;
    void onCycle(rtl::Sim &sim, uint64_t cycle,
                 const std::vector<rtl::NetId> &changed) override;
    const char *observerName() const override { return "activity"; }

    /** Publish the envelope under "act." keys (see file comment). */
    void exportMetrics(MetricsRegistry &reg) const;

    uint64_t windows() const { return _windows; }
    uint64_t peakWindowChanges() const { return _peak_window; }

  private:
    void closeWindow(uint64_t cycle);

    uint64_t _window_len;
    EventSink *_sink;

    // Sliding window: ring of per-cycle counts + running total.
    std::vector<uint64_t> _ring;
    size_t _ring_at = 0;
    uint64_t _ring_fill = 0;
    uint64_t _window_total = 0;

    uint64_t _windows = 0;
    uint64_t _peak_window = 0;

    // Whole-run per-net change totals, parallel name table.
    std::vector<int32_t> _net_slot;      // net -> slot, or -1
    std::vector<std::string> _names;     // slot -> signal name
    std::vector<uint64_t> _changes;      // slot -> total changes
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_ACTIVITY_H
