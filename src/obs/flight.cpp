#include "obs/flight.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace anvil {
namespace obs {

FlightRecorder::FlightRecorder(rtl::Sim &sim, Options opts)
    : _sim(sim), _opts(std::move(opts))
{
    const rtl::Netlist &nl = _sim.netlist();
    std::vector<std::string> signals = _opts.signals;
    if (signals.empty())
        for (const auto &[name, sig] : nl.signals())
            signals.push_back(name);

    _net_slot.assign(nl.nets().size(), -1);
    _net_mask.assign((nl.nets().size() + 63) / 64, 0);
    for (const auto &name : signals) {
        std::string flat = nl.resolveName("", name);
        auto it = nl.signals().find(flat);
        if (it == nl.signals().end())
            throw std::invalid_argument("no such signal: " + name);
        if (it->second.width < 1)
            continue;   // VCD cannot represent zero-width vars
        Traced t;
        t.name = flat;
        t.id = rtl::VcdWriter::idCode(_traced.size());
        t.net = it->second.net;
        t.width = it->second.width;
        t.words = (t.width + 63) / 64;
        t.is_reg = it->second.kind == rtl::NetSignal::Kind::Reg;
        t.fed = !nl.net(t.net).lazy;
        HotSlot h;
        h.words = t.words;
        h.net = t.net;
        if (t.fed) {
            size_t ni = static_cast<size_t>(t.net);
            h.dup_next = _net_slot[ni];
            _net_slot[ni] = static_cast<int32_t>(_traced.size());
            _net_mask[ni >> 6] |= uint64_t(1) << (ni & 63);
        }
        _hot.push_back(h);
        _traced.push_back(std::move(t));
    }
    for (size_t slot = 0; slot < _traced.size(); slot++)
        if (!_traced[slot].fed)
            _unfed.push_back(slot);

    _last_w0.assign(_traced.size(), 0);
    _last.reserve(_traced.size());
    _base.reserve(_traced.size());
    for (const Traced &t : _traced) {
        _last.emplace_back(t.width);
        _base.emplace_back(t.width);
    }

    // The window spans at most pre + post + 1 cycles and records
    // exist only for cycles with changes, so this capacity guarantees
    // eviction never touches a record inside an open window.
    _ring.resize(static_cast<size_t>(_opts.pre + _opts.post + 2));

    std::vector<rtl::VcdVarDecl> vars;
    vars.reserve(_traced.size());
    for (const Traced &t : _traced)
        vars.push_back({t.name, t.id, t.width, t.is_reg});
    std::ostringstream hdr;
    rtl::writeVcdHeader(hdr, _sim.topName(), vars);
    _header = hdr.str();
}

FlightRecorder::~FlightRecorder() = default;

void
FlightRecorder::addTrigger(const std::string &name, Trigger counter)
{
    TriggerSlot slot;
    slot.name = name;
    slot.fn = std::move(counter);
    // Start from the counter's current value: failures that predate
    // the recorder do not fire it.
    slot.seen = slot.fn ? slot.fn() : 0;
    _triggers.push_back(std::move(slot));
}

void
FlightRecorder::onAttach(ChangeFeed &feed)
{
    // Whole-frame subscription: the recorder filters the raw changed
    // list through _net_slot itself, so the feed never builds a
    // per-cycle subset copy for it.
    feed.subscribeAll(*this);
}

void
FlightRecorder::beginCycle(uint64_t cycle)
{
    if (!_started) {
        _started = true;
        _first_cycle = cycle;
    }
    _last_cycle = cycle;
    _cur = nullptr;
}

/** Fold the oldest record into the base snapshot and retire it. */
void
FlightRecorder::evictOldest()
{
    CycleRec &rec = _ring[_head];
    size_t w = 0;
    for (uint32_t slot : rec.slots) {
        const Traced &t = _traced[slot];
        BitVec &b = _base[slot];
        if (t.width <= 64)
            b.setUint64(rec.words[w]);
        else
            b.setWords(rec.words.data() + w, t.words);
        w += static_cast<size_t>(t.words);
    }
    rec.slots.clear();
    rec.words.clear();
    _head = (_head + 1) % _ring.size();
    _count--;
}

void
FlightRecorder::captureSlot(size_t slot, const BitVec &v)
{
    int words = _hot[slot].words;
    if (words == 1) {
        // Narrow fast path: compare-and-copy through the raw-word
        // shadow, no BitVec call crosses a translation unit.
        uint64_t w = v.toUint64();
        if (w == _last_w0[slot])
            return;
        _last_w0[slot] = w;
        if (!_cur) {
            if (_count == _ring.size())
                evictOldest();
            _cur = &_ring[(_head + _count) % _ring.size()];
            _cur->cycle = _last_cycle;
            _count++;
        }
        _cur->slots.push_back(static_cast<uint32_t>(slot));
        _cur->words.push_back(w);
        _captured_words++;
        return;
    }
    if (v == _last[slot])
        return;
    _last[slot] = v;
    if (!_cur) {
        if (_count == _ring.size())
            evictOldest();
        _cur = &_ring[(_head + _count) % _ring.size()];
        _cur->cycle = _last_cycle;
        _count++;
    }
    _cur->slots.push_back(static_cast<uint32_t>(slot));
    for (int k = 0; k < words; k++)
        _cur->words.push_back(v.word(k));
    _captured_words += static_cast<uint64_t>(words);
}

void
FlightRecorder::endCycle(uint64_t cycle)
{
    // Eviction is purely capacity-driven (captureSlot): any window
    // holds at most pre + post + 1 change records, strictly fewer
    // than the ring's capacity, so the evicted record is always
    // older than every open or future window's start.
    pollTriggers(cycle);
    if (_armed && cycle >= _dump_at)
        flushDump(cycle);
}

void
FlightRecorder::pollTriggers(uint64_t cycle)
{
    for (TriggerSlot &tr : _triggers) {
        if (!tr.fn)
            continue;
        uint64_t n = tr.fn();
        if (n <= tr.seen)
            continue;
        tr.seen = n;
        if (!_armed) {
            _armed = true;
            _armed_trigger = tr.name;
            _armed_cycle = cycle;
            _dump_at = cycle + _opts.post;
        } else {
            // Coalesce into the open window; its end extends so the
            // newest trigger still gets `post` cycles of context.
            _dump_at = std::max(_dump_at, cycle + _opts.post);
        }
    }
}

void
FlightRecorder::applyRec(const CycleRec &rec,
                         std::vector<BitVec> &vals) const
{
    size_t w = 0;
    for (uint32_t slot : rec.slots) {
        const Traced &t = _traced[slot];
        BitVec &b = vals[slot];
        if (t.width <= 64)
            b.setUint64(rec.words[w]);
        else
            b.setWords(rec.words.data() + w, t.words);
        w += static_cast<size_t>(t.words);
    }
}

void
FlightRecorder::flushDump(uint64_t to)
{
    DumpInfo info;
    info.index = static_cast<int>(_dumps.size());
    info.trigger = _armed_trigger;
    info.trigger_cycle = _armed_cycle;
    uint64_t from = _armed_cycle > _opts.pre
        ? _armed_cycle - _opts.pre
        : 0;
    if (from < _first_cycle)
        from = _first_cycle;
    info.from = from;
    info.to = to;

    std::ostringstream os;
    os << _header;

    // Checkpoint at `from`: the base snapshot advanced through every
    // record at or before the window start — exactly the values a
    // VcdWriter primed at `from` would have read.
    std::vector<BitVec> vals = _base;
    size_t i = 0;
    for (; i < _count; i++) {
        const CycleRec &rec = _ring[(_head + i) % _ring.size()];
        if (rec.cycle > from)
            break;
        applyRec(rec, vals);
    }
    os << "#" << from << "\n$dumpvars\n";
    for (size_t slot = 0; slot < _traced.size(); slot++)
        rtl::writeVcdValue(os, _traced[slot].id,
                           _traced[slot].width, vals[slot]);
    os << "$end\n";

    // Per-cycle deltas through the end of the window.  Records hold
    // capture (arrival) order; emission re-sorts each into
    // declaration order, matching the writer — the sort runs only
    // here, on a dump, never on the per-cycle hot path.
    std::vector<std::pair<uint32_t, uint32_t>> order;
    for (; i < _count; i++) {
        const CycleRec &rec = _ring[(_head + i) % _ring.size()];
        if (rec.cycle > to)
            break;
        os << "#" << rec.cycle << "\n";
        order.clear();
        order.reserve(rec.slots.size());
        uint32_t w = 0;
        for (uint32_t slot : rec.slots) {
            order.emplace_back(slot, w);
            w += static_cast<uint32_t>(_traced[slot].words);
        }
        std::sort(order.begin(), order.end());
        for (const auto &[slot, off] : order) {
            const Traced &t = _traced[slot];
            BitVec v(t.width);
            if (t.width <= 64)
                v.setUint64(rec.words[off]);
            else
                v.setWords(rec.words.data() + off, t.words);
            rtl::writeVcdValue(os, t.id, t.width, v);
        }
    }

    if (_sink)
        info.path = _sink(info, os.str());
    _dumps.push_back(std::move(info));
    _armed = false;
}

void
FlightRecorder::onPrime(rtl::Sim &sim, uint64_t cycle)
{
    beginCycle(cycle);
    // Full scan: first sample, skipped cycles, late pokes.  The
    // change-compare against _last keeps the records minimal either
    // way; the base snapshot (zeros before the first sample) covers
    // whatever never changes.
    for (size_t slot = 0; slot < _traced.size(); slot++)
        captureSlot(slot, sim.value(_traced[slot].net));
    endCycle(cycle);
}

void
FlightRecorder::onCycle(rtl::Sim &sim, uint64_t cycle,
                        const std::vector<rtl::NetId> &changed)
{
    beginCycle(cycle);
    // Mirror VcdWriter::onCycle's capture set: the traced subset of
    // the raw frame list (subscribeAll delivers it unfiltered — ids
    // past _net_slot are post-construction nodes, skipped) plus
    // every un-fed (lazy) slot re-read each cycle.  Capture order is
    // arrival order — flushDump re-sorts each record into
    // declaration order — and fed values come straight out of the
    // frame's value table (sample() already swept), so the per-cycle
    // cost is a compare + memcpy per actually-changed traced net.
    for (rtl::NetId id : changed) {
        size_t ni = static_cast<size_t>(id);
        if (ni >= _net_slot.size() ||
            !((_net_mask[ni >> 6] >> (ni & 63)) & 1))
            continue;
        for (int32_t slot = _net_slot[ni]; slot >= 0;
             slot = _hot[static_cast<size_t>(slot)].dup_next)
            captureSlot(static_cast<size_t>(slot),
                        sim.frameValue(
                            _hot[static_cast<size_t>(slot)].net));
    }
    for (size_t slot : _unfed)
        captureSlot(slot, sim.value(_traced[slot].net));
    endCycle(cycle);
}

void
FlightRecorder::onFinish(rtl::Sim &sim)
{
    (void)sim;
    // A window opened near the end of the run flushes with whatever
    // post-context the run had left (trigger on the final cycle).
    if (_armed)
        flushDump(_last_cycle);
}

void
FlightRecorder::exportMetrics(MetricsRegistry &reg) const
{
    reg.counter("flight.dumps") +=
        static_cast<uint64_t>(_dumps.size());
    reg.counter("flight.ring_records") +=
        static_cast<uint64_t>(_count);
    reg.counter("flight.capture_words") += _captured_words;
}

} // namespace obs
} // namespace anvil
