/**
 * @file
 * Flight recorder: always-on ring buffer of per-cycle changed-net
 * deltas that turns into a waveform only when something goes wrong.
 *
 * A full `--vcd` of a million-cycle farm run is unaffordable, yet a
 * violation deep in such a run leaves only a triage line — no
 * waveform context.  The FlightRecorder closes that gap with the
 * classic production-tracing pattern: it rides the shared
 * obs::ChangeFeed like any observer, but instead of formatting VCD
 * text it memcpy's each cycle's changed values into a fixed-size
 * ring (cost proportional to activity, no I/O, no string work).  On
 * a trigger — any monotonic counter that increased this cycle:
 * contract violations, scoreboard/assertion failures, a named cover
 * point — it keeps capturing for `post` more cycles and then
 * reconstructs the [trigger - pre, trigger + post] window as a
 * standard VCD dump, byte-compatible with what rtl::VcdWriter primed
 * at the window's first cycle would have written, so `--replay` and
 * `--check-trace` consume it unmodified.
 *
 * Reconstruction works from a base snapshot plus the ring: evicting
 * a cycle record folds its deltas into the base, so the base always
 * holds the values just before the oldest retained record and a
 * window checkpoint is base + records up to the window start.
 * Triggers landing inside an open window coalesce (the window's end
 * extends); triggers after a dump flushes open a new window, so
 * distinct failures in one run produce distinct dumps.  A window
 * still open when the run ends is flushed by onFinish — a trigger on
 * the final cycle loses nothing.
 */

#ifndef ANVIL_OBS_FLIGHT_H
#define ANVIL_OBS_FLIGHT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "rtl/interp.h"
#include "rtl/vcd.h"

namespace anvil {
namespace obs {

class MetricsRegistry;

class FlightRecorder : public Observer
{
  public:
    struct Options
    {
        /** Cycles of context kept before a trigger. */
        uint64_t pre = 64;
        /** Cycles captured after a trigger before the dump flushes. */
        uint64_t post = 8;
        /** Signals to record (flat dotted names); empty records
         *  every named signal, exactly like VcdWriter. */
        std::vector<std::string> signals;
    };

    /** One flushed window dump. */
    struct DumpInfo
    {
        int index = 0;            // 0-based flush order
        std::string trigger;      // trigger name that opened it
        uint64_t trigger_cycle = 0;
        uint64_t from = 0;        // first cycle in the window
        uint64_t to = 0;          // last cycle in the window
        std::string path;         // sink-assigned label ("" = none)
    };

    /**
     * A trigger is a monotonic counter; the recorder polls it once
     * per cycle (after capturing that cycle) and fires when the
     * count increased.  Wraps naturally around ContractMonitor
     * violation counts, Testbench failure totals, and Coverage
     * cover-point hits.
     */
    using Trigger = std::function<uint64_t()>;

    /**
     * Receives each flushed window (the full VCD text) and returns
     * the label recorded in DumpInfo::path — typically the file it
     * wrote.  Without a sink, dumps are recorded but the text is
     * dropped.
     */
    using DumpSink =
        std::function<std::string(const DumpInfo &info,
                                  const std::string &vcd)>;

    explicit FlightRecorder(rtl::Sim &sim)
        : FlightRecorder(sim, Options())
    {
    }
    FlightRecorder(rtl::Sim &sim, Options opts);
    ~FlightRecorder() override;

    void addTrigger(const std::string &name, Trigger counter);
    void setDumpSink(DumpSink sink) { _sink = std::move(sink); }

    /** Flushed window dumps, in flush order. */
    const std::vector<DumpInfo> &dumps() const { return _dumps; }

    /** Cycle records currently retained in the ring. */
    size_t ringRecords() const { return _count; }

    /** hot counters for a metrics run: flight.dumps,
     *  flight.ring_records, flight.capture_bytes. */
    void exportMetrics(MetricsRegistry &reg) const;

    // obs::Observer
    void onAttach(ChangeFeed &feed) override;
    void onPrime(rtl::Sim &sim, uint64_t cycle) override;
    void onCycle(rtl::Sim &sim, uint64_t cycle,
                 const std::vector<rtl::NetId> &changed) override;
    void onFinish(rtl::Sim &sim) override;
    const char *observerName() const override { return "flight"; }

  private:
    /** One recorded signal; mirrors VcdWriter's selection exactly
     *  (same id-codes, same dup chaining, same lazy handling) so the
     *  reconstructed dumps are byte-compatible. */
    struct Traced
    {
        std::string name;
        std::string id;
        rtl::NetId net;
        int width;
        int words;     // value words: (width + 63) / 64
        bool is_reg;
        bool fed;
    };

    /** Hot per-slot fields split out of the cold Traced so the
     *  per-cycle walk touches 8 bytes per slot, not a ~100-byte
     *  struct with strings. */
    struct HotSlot
    {
        int32_t dup_next = -1;   // next traced slot on the same net
        int32_t words = 1;       // == Traced::words
        rtl::NetId net = rtl::kNoNet;
    };

    /** One cycle's deltas: parallel slot/word arrays, values packed
     *  back to back (each slot contributes its `words` words) in
     *  capture order — flushDump re-sorts into declaration order, so
     *  the hot path never sorts. */
    struct CycleRec
    {
        uint64_t cycle = 0;
        std::vector<uint32_t> slots;
        std::vector<uint64_t> words;
    };

    struct TriggerSlot
    {
        std::string name;
        Trigger fn;
        uint64_t seen = 0;
    };

    void beginCycle(uint64_t cycle);
    void captureSlot(size_t slot, const BitVec &v);
    void endCycle(uint64_t cycle);
    void pollTriggers(uint64_t cycle);
    void evictOldest();
    void applyRec(const CycleRec &rec, std::vector<BitVec> &vals) const;
    void flushDump(uint64_t to);

    rtl::Sim &_sim;
    Options _opts;
    std::string _header;              // cached VCD header bytes
    std::vector<Traced> _traced;
    std::vector<HotSlot> _hot;        // parallel to _traced
    std::vector<int32_t> _net_slot;   // net -> first traced slot or -1
    /** One bit per net: is it traced?  The raw frame list is mostly
     *  unnamed internal nets; testing this L1-resident mask first
     *  keeps them from dragging the int32 table into cache. */
    std::vector<uint64_t> _net_mask;
    std::vector<size_t> _unfed;       // lazy slots, re-read per cycle
    /** Previous captured value: narrow slots (words == 1, the vast
     *  majority) live in the raw-word shadow so the per-cycle
     *  compare-and-copy never crosses into BitVec; wide slots use
     *  the BitVec table. */
    std::vector<uint64_t> _last_w0;
    std::vector<BitVec> _last;        // wide slots only
    std::vector<BitVec> _base;        // values before the oldest record

    // Ring of cycle records, oldest at _head, recycled in place so
    // the steady state allocates nothing.
    std::vector<CycleRec> _ring;
    size_t _head = 0;
    size_t _count = 0;
    CycleRec *_cur = nullptr;         // this cycle's record, once opened

    bool _started = false;
    uint64_t _first_cycle = 0;
    uint64_t _last_cycle = 0;
    uint64_t _captured_words = 0;

    std::vector<TriggerSlot> _triggers;
    bool _armed = false;
    std::string _armed_trigger;
    uint64_t _armed_cycle = 0;
    uint64_t _dump_at = 0;

    DumpSink _sink;
    std::vector<DumpInfo> _dumps;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_FLIGHT_H
