/**
 * @file
 * Unified change-feed observer framework.
 *
 * Every per-cycle observer of a simulation — VCD tracing
 * (rtl::VcdWriter), coverage toggle sampling (tb::Coverage), contract
 * monitoring (trace::ContractMonitor), waveform recording
 * (rtl::WaveRecorder), and any new plugin (obs::ChannelSlicer) — used
 * to carry its own copy of the same subtle dance: a net->slot table,
 * lazy-net exclusion, a priming pass, and the ChangeFeedCursor
 * freshness check that guards against skipped cycles and late pokes.
 * The ChangeFeed hub owns all of that in exactly one place:
 *
 *  - observers attach once and subscribe the NetIds they care about;
 *    subscriptions are deduplicated per net, so any number of
 *    observers (or duplicate traces within one observer) ride a
 *    single visit of the changed-net list;
 *  - sample() runs once per cycle, before Sim::step(): when the
 *    per-cycle feed covers the window since the previous sample
 *    (rtl::ChangeFeedCursor), each observer gets onCycle() with just
 *    its own changed subset; otherwise (first sample, skipped
 *    cycles, late pokes) every observer gets a full onPrime() rescan;
 *  - lazy nets are excluded centrally — subscribe() returns false
 *    for them and the observer re-reads those itself each visit,
 *    preserving Sim::value()'s on-demand fault semantics;
 *  - reads go through Sim::value(), which is also where the
 *    compiled-kernel value mirror is refreshed — observers never see
 *    a stale kernel-owned value and never carry refresh logic.
 *
 * The hub doubles as the telemetry spine: it counts per-observer
 * visits and touched nets, and with a TraceProfiler attached it
 * times every visit onto a per-observer Chrome-trace track and bins
 * changed nets into a per-level activity histogram.
 */

#ifndef ANVIL_OBS_OBSERVER_H
#define ANVIL_OBS_OBSERVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace obs {

class ChangeFeed;
class TraceProfiler;

/**
 * One per-cycle consumer of the change feed.  Lifecycle:
 *
 *  - onAttach(feed) runs once, inside ChangeFeed::attach(); the
 *    observer subscribes its nets there (subscribe() reports whether
 *    each net rides the feed);
 *  - onPrime(sim, cycle) is a full visit: the first sample, and any
 *    sample the feed cannot cover (skipped cycles, late pokes).  The
 *    observer re-reads every net it watches;
 *  - onCycle(sim, cycle, changed) is the fast path: `changed` holds
 *    exactly this observer's subscribed nets that changed since its
 *    previous visit (deduplicated, feed order).  Unsubscribed nets
 *    (lazy cones, unresolved names) must be re-read directly;
 *  - onFinish(sim) runs at ChangeFeed::finish() — flush buffers.
 *
 * Observers are read-only: a visit must not poke the simulation
 * (that would invalidate the very freshness window it runs under).
 * Destroying an attached observer detaches it safely; the feed must
 * outlive its observers' visits, not the observers themselves.
 */
class Observer
{
  public:
    virtual ~Observer();

    virtual void onAttach(ChangeFeed &feed) = 0;
    virtual void onPrime(rtl::Sim &sim, uint64_t cycle) = 0;
    virtual void onCycle(rtl::Sim &sim, uint64_t cycle,
                         const std::vector<rtl::NetId> &changed) = 0;
    virtual void onFinish(rtl::Sim &sim) { (void)sim; }

    /** Short stable name for telemetry tracks and metrics keys. */
    virtual const char *observerName() const { return "observer"; }

  protected:
    /** The feed this observer is attached to (null before attach). */
    ChangeFeed *feed() const { return _feed; }

  private:
    friend class ChangeFeed;
    ChangeFeed *_feed = nullptr;
    int32_t _index = -1;
};

/** Per-observer visit accounting kept by the hub. */
struct ObserverCost
{
    std::string name;          // Observer::observerName at attach
    uint64_t visits = 0;       // total visits (primes + cycles)
    uint64_t primes = 0;       // full-rescan visits among them
    uint64_t nets = 0;         // changed nets delivered to onCycle
    uint64_t ns = 0;           // visit wall time (profiler attached)
};

/**
 * Multi-observer fan-out hub over Sim::changedNets().
 *
 * Owns the single ChangeFeedCursor, the priming state, the per-net
 * subscriber lists, and (when a TraceProfiler is attached) the
 * per-observer visit timing and the per-level activity histogram.
 * Drive sample() exactly once per cycle, before Sim::step(), so the
 * visit timestamp matches Sim::cycle().
 */
class ChangeFeed
{
  public:
    explicit ChangeFeed(rtl::Sim &sim);
    ~ChangeFeed();
    ChangeFeed(const ChangeFeed &) = delete;
    ChangeFeed &operator=(const ChangeFeed &) = delete;

    rtl::Sim &sim() { return _sim; }

    /**
     * Attach an observer (calls its onAttach).  An observer attaches
     * to at most one feed at a time; attaching mid-run is fine — the
     * newcomer is primed on its next visit while established
     * observers stay on the fast path.
     */
    void attach(Observer &obs);

    /** Detach (idempotent; also run by Observer's destructor). */
    void detach(Observer &obs);

    /**
     * Subscribe the observer to a net's change events; call from
     * onAttach.  Returns true when the net rides the feed; false for
     * lazy nets, ad-hoc post-construction nodes, and kNoNet — the
     * observer must re-read those itself each visit.  Idempotent per
     * (observer, net); many observers may subscribe one net and each
     * sees it exactly once per change.
     */
    bool subscribe(Observer &obs, rtl::NetId net);

    /**
     * Subscribe the observer to the whole frame: onCycle receives
     * the simulator's raw changed-net list (a superset of any per-net
     * subscription — it includes unnamed internal nodes) and the
     * observer filters it against its own net->slot table.  For an
     * observer tracing most of the design this skips the per-net
     * fan-out copy entirely, which is what keeps an always-on
     * recorder near-free.  Call from onAttach, like subscribe().
     */
    void subscribeAll(Observer &obs);

    /** True when no observer is attached and no profiler is set. */
    bool empty() const;

    /** Visit every attached observer once for the current cycle. */
    void sample();

    /** Fan out onFinish to every attached observer. */
    void finish();

    /**
     * Attach a profiler: visits are timed onto one Chrome-trace
     * track per observer, and changed nets are binned into the
     * per-level activity histogram.  Null detaches.
     */
    void setProfiler(TraceProfiler *profiler);

    /** Per-observer visit accounting, in attach order. */
    std::vector<ObserverCost> costs() const;

    /**
     * Changed-net counts binned by netlist level, accumulated over
     * fast-path samples while a profiler is attached (full rescans
     * carry no per-net change information).
     */
    const std::vector<uint64_t> &levelActivity() const
    {
        return _level_activity;
    }

  private:
    struct SubNode
    {
        int32_t obs;    // observer index
        int32_t next;   // next subscriber of the same net, or -1
    };
    struct Slot
    {
        Observer *obs = nullptr;   // null: detached, index retired
        ObserverCost cost;
        bool primed = false;
        /** subscribeAll(): onCycle gets the raw frame list and the
         *  scratch subset is never built for this slot. */
        bool all_nets = false;
        std::vector<rtl::NetId> scratch;   // per-cycle changed subset
        int track = -1;                    // profiler track id
    };

    /** Flatten the subscriber chains into the CSR (below). */
    void rebuildCsr();

    rtl::Sim &_sim;
    std::vector<Slot> _slots;
    std::vector<int32_t> _sub_head;   // net -> first SubNode, or -1
    std::vector<SubNode> _subs;
    // The chains above are the authoritative subscription record
    // (insertion-time dedupe); sample() walks this flattened CSR
    // instead, so the per-changed-net fan-out is a contiguous slice
    // rather than a pointer chase.  Rebuilt lazily — subscriptions
    // change at attach time, not per cycle — and reusing the same
    // buffers, so the steady-state sample() allocates nothing.
    std::vector<uint32_t> _csr_off;   // net -> [off[n], off[n+1])
    std::vector<int32_t> _csr_obs;    // observer indices, flat
    bool _csr_dirty = true;
    rtl::ChangeFeedCursor _cursor;
    TraceProfiler *_profiler = nullptr;
    std::vector<uint64_t> _level_activity;
};

} // namespace obs
} // namespace anvil

#endif // ANVIL_OBS_OBSERVER_H
