/**
 * @file
 * Coverage-driven testbench harness for the compiled simulator.
 *
 * A Testbench owns a rtl::Sim and composes three kinds of pieces:
 *
 *  - drivers, which poke top-level inputs every cycle: fixed
 *    sequences, constrained-random generators (per-field bit ranges,
 *    value sets, duty cycles) fed by one seeded PRNG, and free-form
 *    callbacks for protocol BFMs;
 *  - monitors and scoreboards, which watch the combinational frame
 *    each cycle and record failures (an in-order expected/observed
 *    scoreboard is provided);
 *  - per-cycle check hooks, lambdas that peek the design and report
 *    violations through Testbench::fail.
 *
 * The same seed always reproduces the same run bit-for-bit: drivers
 * consume randomness from a single SplitMix64 stream in registration
 * order.  Every per-cycle observer — the Coverage engine
 * (tb/coverage.h), a VcdWriter (rtl/vcd.h), monitors that implement
 * obs::Observer, and free plugins via attachObserver() — rides the
 * testbench's shared obs::ChangeFeed, which is driven once per cycle
 * before the clock edge.
 */

#ifndef ANVIL_TB_TESTBENCH_H
#define ANVIL_TB_TESTBENCH_H

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "rtl/interp.h"
#include "rtl/vcd.h"
#include "tb/coverage.h"

namespace anvil {
namespace tb {

/** Small deterministic PRNG (SplitMix64), one stream per testbench. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : _s(seed) {}

    uint64_t next()
    {
        uint64_t z = (_s += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, n); n == 0 yields 0. */
    uint64_t below(uint64_t n) { return n == 0 ? 0 : next() % n; }

    /** True with the given percent probability. */
    bool chance(int pct) { return static_cast<int>(below(100)) < pct; }

  private:
    uint64_t _s;
};

/** One constrained-random field of an input: bits [lo, lo+width). */
struct FieldSpec
{
    int lo = 0;
    int width = 1;
    uint64_t min = 0;
    uint64_t max = ~0ull;            // clamped to the field width
    std::vector<uint64_t> choices;   // non-empty: pick from this set
};

/** Constrained-random stimulus description for one input. */
struct RandomSpec
{
    /** Empty: one unconstrained full-width field. */
    std::vector<FieldSpec> fields;
    /** Percent of cycles the input is actively driven. */
    int active_pct = 100;
    /** Value driven on inactive cycles. */
    uint64_t idle_value = 0;
};

/** Drives some set of inputs every cycle. */
class Driver
{
  public:
    virtual ~Driver() = default;
    virtual void drive(rtl::Sim &sim, uint64_t cycle,
                       SplitMix64 &rng) = 0;
};

/** One recorded check failure. */
struct TbFailure
{
    uint64_t cycle = 0;
    std::string check;
    std::string message;
};

/** Watches the design each cycle and records failures. */
class Monitor
{
  public:
    explicit Monitor(std::string name) : _name(std::move(name)) {}
    virtual ~Monitor() = default;

    /** Called on the combinational frame, before the clock edge. */
    virtual void observe(rtl::Sim &sim, uint64_t cycle)
    {
        (void)sim;
        (void)cycle;
    }

    const std::string &name() const { return _name; }
    const std::vector<TbFailure> &failures() const
    {
        return _failures;
    }
    void fail(uint64_t cycle, const std::string &message);

  private:
    std::string _name;
    std::vector<TbFailure> _failures;
};

/**
 * In-order expected/observed scoreboard.  Producers push expected
 * values; the monitor side reports observed ones, and any mismatch,
 * or an observation with nothing outstanding, is a failure.
 */
class Scoreboard : public Monitor
{
  public:
    using Monitor::Monitor;

    void expect(const BitVec &v) { _queue.push_back(v); }
    void expect(uint64_t v, int width) { expect(BitVec(width, v)); }

    void observed(uint64_t cycle, const BitVec &got);

    /** Expected values not yet observed. */
    size_t pending() const { return _queue.size(); }
    uint64_t matched() const { return _matched; }

  private:
    std::deque<BitVec> _queue;
    uint64_t _matched = 0;
};

/** Outcome of a Testbench::run call. */
struct TbResult
{
    uint64_t cycles = 0;
    std::vector<TbFailure> failures;

    bool ok() const { return failures.empty(); }
    std::string summary() const;
};

class Testbench
{
  public:
    explicit Testbench(rtl::ModulePtr top, uint64_t seed = 1);

    /**
     * Farm workers: build the bench's Sim on a shared immutable
     * netlist (compile once, simulate many seeds — see
     * rtl::Sim's shared-netlist constructor).
     */
    Testbench(rtl::ModulePtr top,
              std::shared_ptr<const rtl::Netlist> netlist,
              uint64_t seed);

    rtl::Sim &sim() { return _sim; }
    SplitMix64 &rng() { return _rng; }

    // --- Drivers -------------------------------------------------------

    /** Drive `input` with consecutive values; after the sequence
     *  ends, hold the last value or fall back to zero. */
    void driveSequence(const std::string &input,
                       std::vector<BitVec> values,
                       bool hold_last = false);

    /** Drive `input` with constrained-random values every cycle. */
    void driveRandom(const std::string &input, RandomSpec spec = {});

    /** Free-form driver callback (runs every cycle, in order). */
    void driveWith(std::function<void(rtl::Sim &, uint64_t cycle,
                                      SplitMix64 &)> fn);

    void addDriver(std::unique_ptr<Driver> d);

    // --- Monitors and checks ------------------------------------------

    /** Register a monitor; the testbench keeps ownership.  A monitor
     *  that also implements obs::Observer (trace::ContractMonitor)
     *  is attached to the shared change feed automatically. */
    Monitor &addMonitor(std::unique_ptr<Monitor> m);

    /** Create and register an in-order scoreboard. */
    Scoreboard &addScoreboard(const std::string &name);

    /** Per-cycle check hook; report violations via fail(). */
    void check(const std::string &name,
               std::function<void(Testbench &)> fn);

    /** Record a failure at the current cycle. */
    void fail(const std::string &check, const std::string &message);

    // --- Coverage and waves -------------------------------------------

    /** Enable (on first use) and access the coverage engine. */
    Coverage &coverage();

    /** Stream a VCD of the run; empty list = all named signals. */
    void attachVcd(std::ostream &os,
                   std::vector<std::string> signals = {});

    /** Attach any observer plugin to the shared change feed; the
     *  testbench keeps ownership. */
    obs::Observer &attachObserver(std::unique_ptr<obs::Observer> o);

    /** The shared per-cycle change feed (telemetry hookup point). */
    obs::ChangeFeed &feed() { return _feed; }

    // --- Running -------------------------------------------------------

    /** Stop a run early once this many failures accumulate. */
    size_t max_failures = 100;

    /**
     * Run `cycles` clock cycles.  Per cycle: drivers poke inputs,
     * check hooks and monitors observe the combinational frame, the
     * change feed visits every attached observer (contracts,
     * coverage, VCD, plugins), then the clock edge commits.
     * Failures from hooks and monitors are merged into the result.
     */
    TbResult run(uint64_t cycles);

    /** Failures recorded so far (check hooks + every monitor) — a
     *  live monotonic counter; obs::FlightRecorder triggers on it. */
    size_t totalFailures() const;

  private:
    rtl::Sim _sim;
    SplitMix64 _rng;
    /** Declared before every observer-owning member: observers
     *  detach themselves from the feed on destruction, so the feed
     *  must be destroyed last. */
    obs::ChangeFeed _feed{_sim};
    std::vector<std::unique_ptr<Driver>> _drivers;
    std::vector<std::unique_ptr<Monitor>> _monitors;
    std::vector<std::pair<std::string,
                          std::function<void(Testbench &)>>> _checks;
    std::vector<TbFailure> _hook_failures;
    Coverage _coverage;
    bool _coverage_enabled = false;
    std::unique_ptr<rtl::VcdWriter> _vcd;
    std::vector<std::unique_ptr<obs::Observer>> _observers;
};

} // namespace tb
} // namespace anvil

#endif // ANVIL_TB_TESTBENCH_H
