#include "tb/coverage.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace tb {

namespace {

constexpr size_t kMaxFailCyclesKept = 16;

int
wordsFor(int width)
{
    return (width + 63) / 64;
}

int
coveredIn(const std::vector<uint64_t> &rose,
          const std::vector<uint64_t> &fell)
{
    int n = 0;
    for (size_t i = 0; i < rose.size(); i++)
        n += std::popcount(rose[i] & fell[i]);
    return n;
}

/** JSON string escaping for user-provided point names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Fold a value's words so wide registers bin on all their bits. */
uint64_t
foldWords(const anvil::BitVec &v)
{
    uint64_t h = v.toUint64();
    for (int w = 1; w < v.words(); w++)
        h ^= v.word(w);
    return h;
}

} // namespace

int
SignalCoverage::coveredBits() const
{
    return coveredIn(rose, fell);
}

int
RegBins::binsHit() const
{
    int n = 0;
    for (uint64_t h : hits)
        n += h > 0;
    return n;
}

int
CrossPoint::binsHit() const
{
    int n = 0;
    for (uint64_t h : bins)
        n += h > 0;
    return n;
}

Coverage::Coverage(int reg_bins)
    : _req_bins(std::max(reg_bins, 2))
{
}

Coverage::~Coverage() = default;

void
Coverage::addCover(const std::string &name, rtl::ExprPtr expr)
{
    _covers.push_back({name, std::move(expr), 0, false});
}

void
Coverage::cross(const std::string &name, const std::string &pointA,
                const std::string &pointB)
{
    auto indexOf = [this](const std::string &point) -> size_t {
        for (size_t i = 0; i < _covers.size(); i++)
            if (_covers[i].name == point)
                return i;
        throw std::invalid_argument("cross references unknown cover "
                                    "point '" + point + "'");
    };
    CrossPoint cp;
    cp.name = name;
    cp.a = indexOf(pointA);
    cp.b = indexOf(pointB);
    _crosses.push_back(std::move(cp));
}

void
Coverage::addAssert(const std::string &name, rtl::ExprPtr enable,
                    rtl::ExprPtr expr)
{
    _asserts.push_back(
        {name, std::move(enable), std::move(expr), 0, 0, {}});
}

void
Coverage::bind(rtl::Sim &sim)
{
    bindNetlist(sim.netlist());
}

void
Coverage::bindNetlist(const rtl::Netlist &nl)
{
    _net_slot.assign(nl.nets().size(), -1);
    for (const auto &[name, sig] : nl.signals()) {
        SignalCoverage sc;
        sc.name = name;
        sc.net = sig.net;
        sc.width = sig.width;
        sc.is_reg = sig.kind == rtl::NetSignal::Kind::Reg;
        sc.rose.assign(wordsFor(sig.width), 0);
        sc.fell.assign(wordsFor(sig.width), 0);
        sc.last.assign(wordsFor(sig.width), 0);
        // Lazy nets never appear on the change feed — they are
        // re-read every sample (value() keeps their fault
        // semantics) — and a net can carry only one feed slot.
        // Everything else is change-fed.
        if (nl.net(sig.net).lazy ||
            _net_slot[static_cast<size_t>(sig.net)] >= 0)
            _unfed_slots.push_back(_signals.size());
        else
            _net_slot[static_cast<size_t>(sig.net)] =
                static_cast<int32_t>(_signals.size());
        _signals.push_back(std::move(sc));

        if (sig.kind == rtl::NetSignal::Kind::Reg) {
            RegBins rb;
            rb.name = name;
            rb.width = sig.width;
            int bins = sig.width < 16
                ? std::min(1 << sig.width, _req_bins)
                : _req_bins;
            rb.hits.assign(static_cast<size_t>(bins), 0);
            _reg_bins.push_back(std::move(rb));
            _reg_nets.push_back(sig.net);
        }
    }
    _bound = true;
}

void
Coverage::sampleSignal(rtl::Sim &sim, SignalCoverage &sc)
{
    const BitVec &v = sim.value(sc.net);
    for (size_t w = 0; w < sc.rose.size(); w++) {
        uint64_t cur = v.word(static_cast<int>(w));
        if (_samples > 0) {
            sc.rose[w] |= cur & ~sc.last[w];
            sc.fell[w] |= ~cur & sc.last[w];
        }
        sc.last[w] = cur;
    }
}

void
Coverage::onAttach(obs::ChangeFeed &feed)
{
    if (!_bound)
        bind(feed.sim());
    // Rebuild the slot tables on the feed: subscriptions are
    // deduplicated per net, so signals sharing a net chain off one
    // subscription instead of dropping to the every-visit list.
    _net_slot.assign(feed.sim().netlist().nets().size(), -1);
    _dup_next.assign(_signals.size(), -1);
    _unfed_slots.clear();
    for (size_t i = 0; i < _signals.size(); i++) {
        SignalCoverage &sc = _signals[i];
        if (feed.subscribe(*this, sc.net)) {
            size_t ni = static_cast<size_t>(sc.net);
            _dup_next[i] = _net_slot[ni];
            _net_slot[ni] = static_cast<int32_t>(i);
        } else {
            // Lazy nets: re-read every visit, keeping value()'s
            // on-demand fault semantics.
            _unfed_slots.push_back(i);
        }
    }
}

void
Coverage::onPrime(rtl::Sim &sim, uint64_t cycle)
{
    (void)cycle;
    // Priming pass and rescan fallback: every signal is visited;
    // sampleSignal's `_samples > 0` guard makes the first visit a
    // pure baseline capture with no edges recorded.
    for (auto &sc : _signals)
        sampleSignal(sim, sc);
    sampleTail(sim);
}

void
Coverage::onCycle(rtl::Sim &sim, uint64_t cycle,
                  const std::vector<rtl::NetId> &changed)
{
    (void)cycle;
    // A signal absent from the changed subset has the same value as
    // at the previous visit and cannot contribute a new edge.
    for (rtl::NetId id : changed)
        for (int32_t slot = _net_slot[static_cast<size_t>(id)];
             slot >= 0; slot = _dup_next[static_cast<size_t>(slot)])
            sampleSignal(sim, _signals[static_cast<size_t>(slot)]);
    for (size_t slot : _unfed_slots)
        sampleSignal(sim, _signals[slot]);
    sampleTail(sim);
}

void
Coverage::sample(rtl::Sim &sim)
{
    if (!_own_feed) {
        if (feed())
            throw std::logic_error(
                "Coverage::sample(): attached to an external "
                "ChangeFeed; drive that feed instead");
        _own_feed = std::make_unique<obs::ChangeFeed>(sim);
        _own_feed->attach(*this);
    } else if (&_own_feed->sim() != &sim) {
        throw std::logic_error(
            "Coverage::sample(): called with a different Sim");
    }
    _own_feed->sample();
}

void
Coverage::sampleTail(rtl::Sim &sim)
{
    for (size_t i = 0; i < _reg_bins.size(); i++) {
        RegBins &rb = _reg_bins[i];
        uint64_t v = foldWords(sim.value(_reg_nets[i]));
        rb.hits[static_cast<size_t>(v % rb.hits.size())]++;
    }

    for (auto &c : _covers) {
        c.last = sim.evalTop(c.expr).any();
        if (c.last)
            c.hits++;
    }
    for (auto &x : _crosses) {
        int bin = (_covers[x.a].last ? 2 : 0) |
                  (_covers[x.b].last ? 1 : 0);
        x.bins[bin]++;
    }
    for (auto &a : _asserts) {
        if (!sim.evalTop(a.enable).any())
            continue;
        a.checked++;
        if (!sim.evalTop(a.expr).any()) {
            a.failures++;
            if (a.fail_cycles.size() < kMaxFailCyclesKept)
                a.fail_cycles.push_back(sim.cycle());
        }
    }
    _samples++;
}

void
Coverage::sampleNamed(
    const std::function<const BitVec *(const std::string &)> &value)
{
    for (auto &sc : _signals) {
        const BitVec *v = value(sc.name);
        if (!v)
            continue;
        for (size_t w = 0; w < sc.rose.size(); w++) {
            uint64_t cur = static_cast<int>(w) < v->words()
                ? v->word(static_cast<int>(w)) : 0;
            if (_samples > 0) {
                sc.rose[w] |= cur & ~sc.last[w];
                sc.fell[w] |= ~cur & sc.last[w];
            }
            sc.last[w] = cur;
        }
    }
    for (auto &rb : _reg_bins) {
        const BitVec *v = value(rb.name);
        if (!v)
            continue;
        rb.hits[static_cast<size_t>(foldWords(*v) %
                                    rb.hits.size())]++;
    }
    _samples++;
}

void
Coverage::mergeSignal(const std::string &name, int width,
                      bool is_reg,
                      const std::vector<uint64_t> &rose,
                      const std::vector<uint64_t> &fell)
{
    SignalCoverage *sc = nullptr;
    for (auto &s : _signals)
        if (s.name == name) {
            sc = &s;
            break;
        }
    if (!sc) {
        SignalCoverage fresh;
        fresh.name = name;
        fresh.width = width;
        fresh.is_reg = is_reg;
        fresh.rose.assign(wordsFor(width), 0);
        fresh.fell.assign(wordsFor(width), 0);
        fresh.last.assign(wordsFor(width), 0);
        _signals.push_back(std::move(fresh));
        sc = &_signals.back();
    } else if (sc->width != width) {
        throw std::invalid_argument(
            "coverage merge: signal '" + name + "' width " +
            std::to_string(width) + " vs " +
            std::to_string(sc->width));
    }
    for (size_t w = 0; w < sc->rose.size() && w < rose.size(); w++)
        sc->rose[w] |= rose[w];
    for (size_t w = 0; w < sc->fell.size() && w < fell.size(); w++)
        sc->fell[w] |= fell[w];
}

void
Coverage::mergeRegBins(const std::string &name, int width,
                       const std::vector<uint64_t> &hits)
{
    RegBins *rb = nullptr;
    for (auto &b : _reg_bins)
        if (b.name == name) {
            rb = &b;
            break;
        }
    if (!rb) {
        RegBins fresh;
        fresh.name = name;
        fresh.width = width;
        _reg_bins.push_back(std::move(fresh));
        _reg_nets.push_back(rtl::kNoNet);
        rb = &_reg_bins.back();
    }
    if (rb->hits.size() < hits.size())
        rb->hits.resize(hits.size(), 0);
    for (size_t i = 0; i < hits.size(); i++)
        rb->hits[i] += hits[i];
}

void
Coverage::mergeCover(const std::string &name, uint64_t hits)
{
    for (auto &c : _covers)
        if (c.name == name) {
            c.hits += hits;
            return;
        }
    _covers.push_back({name, nullptr, hits, false});
}

void
Coverage::mergeCross(const std::string &name, const std::string &a,
                     const std::string &b, const uint64_t bins[4])
{
    for (auto &x : _crosses)
        if (x.name == name) {
            for (int i = 0; i < 4; i++)
                x.bins[i] += bins[i];
            return;
        }
    auto indexOf = [this](const std::string &point) -> size_t {
        for (size_t i = 0; i < _covers.size(); i++)
            if (_covers[i].name == point)
                return i;
        _covers.push_back({point, nullptr, 0, false});
        return _covers.size() - 1;
    };
    CrossPoint cp;
    cp.name = name;
    cp.a = indexOf(a);
    cp.b = indexOf(b);
    for (int i = 0; i < 4; i++)
        cp.bins[i] = bins[i];
    _crosses.push_back(std::move(cp));
}

void
Coverage::mergeAssert(const std::string &name, uint64_t checked,
                      uint64_t failures,
                      const std::vector<uint64_t> &fail_cycles)
{
    AssertPoint *ap = nullptr;
    for (auto &p : _asserts)
        if (p.name == name) {
            ap = &p;
            break;
        }
    if (!ap) {
        _asserts.push_back({name, nullptr, nullptr, 0, 0, {}});
        ap = &_asserts.back();
    }
    ap->checked += checked;
    ap->failures += failures;
    ap->fail_cycles.insert(ap->fail_cycles.end(),
                           fail_cycles.begin(), fail_cycles.end());
    // Keep the earliest failing cycles, matching the live cap: the
    // sorted-then-truncated union is independent of merge order.
    std::sort(ap->fail_cycles.begin(), ap->fail_cycles.end());
    if (ap->fail_cycles.size() > kMaxFailCyclesKept)
        ap->fail_cycles.resize(kMaxFailCyclesKept);
}

double
Coverage::togglePct() const
{
    int64_t total = 0, covered = 0;
    for (const auto &sc : _signals) {
        total += sc.width;
        covered += sc.coveredBits();
    }
    return total == 0 ? 100.0 : 100.0 * covered / total;
}

double
Coverage::regBinPct() const
{
    int64_t total = 0, hit = 0;
    for (const auto &rb : _reg_bins) {
        total += static_cast<int64_t>(rb.hits.size());
        hit += rb.binsHit();
    }
    return total == 0 ? 100.0 : 100.0 * hit / total;
}

bool
Coverage::assertsOk() const
{
    for (const auto &a : _asserts)
        if (a.failures > 0)
            return false;
    return true;
}

std::string
Coverage::report() const
{
    std::ostringstream os;
    os << strfmt("coverage: %llu samples, toggle %.1f%%, "
                 "reg-bins %.1f%%\n",
                 static_cast<unsigned long long>(_samples),
                 togglePct(), regBinPct());

    // Least-covered signals first so the gaps lead the report.
    std::vector<const SignalCoverage *> by_gap;
    for (const auto &sc : _signals)
        by_gap.push_back(&sc);
    std::sort(by_gap.begin(), by_gap.end(),
              [](const SignalCoverage *a, const SignalCoverage *b) {
                  double ga = static_cast<double>(a->coveredBits()) /
                      a->width;
                  double gb = static_cast<double>(b->coveredBits()) /
                      b->width;
                  if (ga != gb)
                      return ga < gb;
                  return a->name < b->name;
              });
    os << "  toggle (least covered first):\n";
    size_t shown = 0;
    for (const auto *sc : by_gap) {
        if (shown++ >= 12) {
            os << strfmt("    ... %zu more signals\n",
                         by_gap.size() - 12);
            break;
        }
        os << strfmt("    %-32s %3d/%3d bits\n", sc->name.c_str(),
                     sc->coveredBits(), sc->width);
    }

    if (!_reg_bins.empty()) {
        os << "  register value bins:\n";
        for (const auto &rb : _reg_bins)
            os << strfmt("    %-32s %2d/%2zu bins\n", rb.name.c_str(),
                         rb.binsHit(), rb.hits.size());
    }
    for (const auto &c : _covers)
        os << strfmt("  cover  %-24s hits=%llu\n", c.name.c_str(),
                     static_cast<unsigned long long>(c.hits));
    for (const auto &x : _crosses) {
        os << strfmt("  cross  %-24s %d/4 bins (%s x %s:",
                     x.name.c_str(), x.binsHit(),
                     _covers[x.a].name.c_str(),
                     _covers[x.b].name.c_str());
        for (int b = 0; b < 4; b++)
            os << strfmt(" %d%d=%llu", b >> 1, b & 1,
                         static_cast<unsigned long long>(x.bins[b]));
        os << ")\n";
    }
    for (const auto &a : _asserts) {
        os << strfmt("  assert %-24s checked=%llu failures=%llu",
                     a.name.c_str(),
                     static_cast<unsigned long long>(a.checked),
                     static_cast<unsigned long long>(a.failures));
        if (!a.fail_cycles.empty()) {
            os << " (cycles";
            for (uint64_t c : a.fail_cycles)
                os << " " << c;
            os << ")";
        }
        os << "\n";
    }
    return os.str();
}

std::string
Coverage::summaryJson() const
{
    int64_t bits_total = 0, bits_covered = 0;
    for (const auto &sc : _signals) {
        bits_total += sc.width;
        bits_covered += sc.coveredBits();
    }
    int64_t bins_total = 0, bins_hit = 0;
    for (const auto &rb : _reg_bins) {
        bins_total += static_cast<int64_t>(rb.hits.size());
        bins_hit += rb.binsHit();
    }

    std::ostringstream os;
    os << "{\"samples\":" << _samples
       << ",\"toggle_bits\":" << bits_covered
       << ",\"toggle_total\":" << bits_total
       << ",\"toggle_pct\":" << strfmt("%.2f", togglePct())
       << ",\"reg_bins_hit\":" << bins_hit
       << ",\"reg_bins_total\":" << bins_total
       << ",\"covers\":[";
    for (size_t i = 0; i < _covers.size(); i++) {
        if (i)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(_covers[i].name)
           << "\",\"hits\":" << _covers[i].hits << "}";
    }
    os << "],\"crosses\":[";
    for (size_t i = 0; i < _crosses.size(); i++) {
        const CrossPoint &x = _crosses[i];
        if (i)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(x.name)
           << "\",\"bins_hit\":" << x.binsHit() << ",\"bins\":[";
        for (int b = 0; b < 4; b++)
            os << (b ? "," : "") << x.bins[b];
        os << "]}";
    }
    os << "],\"asserts\":[";
    for (size_t i = 0; i < _asserts.size(); i++) {
        if (i)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(_asserts[i].name)
           << "\",\"checked\":" << _asserts[i].checked
           << ",\"failures\":" << _asserts[i].failures << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace tb
} // namespace anvil
