/**
 * @file
 * Reusable AXI-Lite bus-functional models for the testbench
 * subsystem, replacing the ad-hoc inline callback drivers the AXI
 * benches used to duplicate.
 *
 * Both agents follow the `<prefix>_<ch>_{data,valid,ack}` port naming
 * of the compiled designs and the AXI-Lite baselines (channels aw, w,
 * b, ar, r) and are *contract-clean*: once an agent offers a send it
 * holds valid asserted and the payload stable until the ack arrives,
 * so runs they drive are healthy under the timing-contract monitors
 * (trace/contracts.h).
 *
 * AxiMasterBfm issues write and read transactions — scripted through
 * queueWrite/queueRead, or constrained-random traffic generated from
 * the bench's seeded PRNG — and applies randomized back-pressure on
 * the B and R response channels.  AxiLiteSlaveBfm acks request
 * channels with configurable duty cycles and answers with B/R
 * responses (random payloads by default, or a user hook for a memory
 * model).
 *
 * Each agent is a tb::Driver plus a check hook: inputs are driven at
 * the top of the cycle, handshake fires are observed on the settled
 * combinational frame, and the transaction FSM advances for the next
 * cycle.
 */

#ifndef ANVIL_TB_AXI_BFM_H
#define ANVIL_TB_AXI_BFM_H

#include <deque>
#include <functional>
#include <string>

#include "tb/testbench.h"

namespace anvil {
namespace tb {

/** Resolved port names of one valid/data/ack channel. */
struct AxiChannelPorts
{
    std::string valid, data, ack;

    AxiChannelPorts() = default;
    AxiChannelPorts(const std::string &prefix,
                    const std::string &ch)
        : valid(prefix + "_" + ch + "_valid"),
          data(prefix + "_" + ch + "_data"),
          ack(prefix + "_" + ch + "_ack")
    {
    }
};

/** Knobs of one AXI-Lite master agent. */
struct AxiMasterConfig
{
    std::string prefix = "m";
    int addr_bits = 32;
    int data_bits = 32;
    /** Chance (percent) to launch a random write/read when idle. */
    int start_write_pct = 60;
    int start_read_pct = 50;
    /** Response-channel readiness duty cycles (back-pressure). */
    int b_ack_pct = 70;
    int r_ack_pct = 70;
    /** Generate random transactions whenever the queues run dry. */
    bool random_traffic = true;
    /**
     * Watchdog: a transaction outstanding this many cycles is
     * reported as a testbench failure (once per transaction) — a
     * hung handshake would otherwise pass silently.  0 disables.
     */
    uint64_t timeout = 256;
};

class AxiMasterBfm : public Driver
{
  public:
    /** Create, register with the bench, and return the agent. */
    static AxiMasterBfm &attach(Testbench &bench,
                                AxiMasterConfig cfg = {});

    /** Queue a scripted write (takes precedence over random). */
    void queueWrite(uint64_t addr, uint64_t data);

    /** Queue a scripted read; on_resp sees the R payload. */
    void queueRead(uint64_t addr,
                   std::function<void(const BitVec &)> on_resp = {});

    uint64_t writesDone() const { return _writes_done; }
    uint64_t readsDone() const { return _reads_done; }

    /** No transaction in flight and nothing queued. */
    bool idle() const;

    void drive(rtl::Sim &sim, uint64_t cycle,
               SplitMix64 &rng) override;

  private:
    AxiMasterBfm(Testbench &bench, AxiMasterConfig cfg);

    void observe(Testbench &bench);

    AxiMasterConfig _cfg;
    AxiChannelPorts _paw, _pw, _pb, _par, _pr;

    enum class WState { Idle, Req, Resp };
    WState _wstate = WState::Idle;
    bool _aw_done = false, _w_done = false;
    BitVec _aw{1}, _w{1};
    std::deque<std::pair<uint64_t, uint64_t>> _write_queue;
    uint64_t _writes_done = 0;
    uint64_t _w_start = 0;
    bool _w_hang_reported = false;

    enum class RState { Idle, Req, Resp };
    RState _rstate = RState::Idle;
    BitVec _ar{1};
    uint64_t _r_start = 0;
    bool _r_hang_reported = false;
    std::deque<std::pair<uint64_t,
                         std::function<void(const BitVec &)>>>
        _read_queue;
    std::function<void(const BitVec &)> _on_read;
    uint64_t _reads_done = 0;

    bool _b_ack = false, _r_ack = false;
};

/** Knobs of one AXI-Lite slave agent. */
struct AxiSlaveConfig
{
    std::string prefix = "s0";
    /** Request-channel readiness duty cycles. */
    int aw_ack_pct = 80;
    int w_ack_pct = 80;
    int ar_ack_pct = 80;
    /** Chance per cycle to start presenting a prepared response. */
    int resp_pct = 60;
    int b_bits = 2;
    int r_bits = 33;
    /**
     * Write acceptance rule.  The baseline routers hold AW and W
     * valid together and need both acked in the same cycle (joint);
     * Anvil-compiled designs complete each channel's handshake
     * independently, possibly on different cycles.
     */
    bool joint_write_accept = true;
    /** B payload for an accepted write; default: random. */
    std::function<uint64_t(uint64_t addr, uint64_t data)> write_resp;
    /** R payload for an accepted read; default: random. */
    std::function<uint64_t(uint64_t addr)> read_resp;
};

class AxiLiteSlaveBfm : public Driver
{
  public:
    /** Create, register with the bench, and return the agent. */
    static AxiLiteSlaveBfm &attach(Testbench &bench,
                                   AxiSlaveConfig cfg = {});

    uint64_t writesAccepted() const { return _writes_accepted; }
    uint64_t readsAccepted() const { return _reads_accepted; }

    void drive(rtl::Sim &sim, uint64_t cycle,
               SplitMix64 &rng) override;

  private:
    AxiLiteSlaveBfm(Testbench &bench, AxiSlaveConfig cfg);

    void observe(rtl::Sim &sim);

    AxiSlaveConfig _cfg;
    AxiChannelPorts _paw, _pw, _pb, _par, _pr;

    bool _aw_ack = false, _w_ack = false, _ar_ack = false;

    // One response of each kind may be pending/presented at a time
    // (the routers issue a single outstanding transaction per
    // direction).
    bool _b_prepare = false, _b_active = false;
    bool _got_aw = false, _got_w = false;
    uint64_t _b_addr = 0, _b_wdata = 0;
    BitVec _b{1};
    uint64_t _writes_accepted = 0;

    bool _r_prepare = false, _r_active = false;
    uint64_t _r_addr = 0;
    BitVec _r{1};
    uint64_t _reads_accepted = 0;
};

} // namespace tb
} // namespace anvil

#endif // ANVIL_TB_AXI_BFM_H
