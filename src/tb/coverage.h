/**
 * @file
 * Netlist coverage engine: measures what a stimulus actually
 * exercised in a compiled design.
 *
 * Three coverage models, all hooked onto the interned net table of
 * rtl::Netlist so sampling is a dense id-addressed walk:
 *
 *  - toggle coverage: per named signal, a rose/fell bitmask pair; a
 *    bit is covered once it has been observed going 0->1 AND 1->0.
 *    After the first (priming) sample, toggle sampling is change-fed:
 *    only signals on the simulator's per-cycle changed-net list are
 *    revisited — an unchanged signal cannot toggle — so the per-cycle
 *    cost tracks activity, not design size;
 *  - register-value bins: each register's sampled values are hashed
 *    into a small fixed number of bins (exact values for narrow
 *    registers); bin occupancy distinguishes stimuli that park a
 *    state machine from ones that actually walk it;
 *  - user-declared cover/assert points: top-scope expressions counted
 *    (cover) or checked whenever enabled (assert), with failing
 *    cycles recorded.
 *
 * Reports come in two forms: a human-readable text table and a
 * machine-readable single-line JSON summary.
 */

#ifndef ANVIL_TB_COVERAGE_H
#define ANVIL_TB_COVERAGE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rtl/interp.h"

namespace anvil {
namespace tb {

/** Per-signal toggle coverage counters. */
struct SignalCoverage
{
    std::string name;
    rtl::NetId net = rtl::kNoNet;
    int width = 1;
    bool is_reg = false;
    /** One bit per signal bit, 64 per word, like BitVec storage. */
    std::vector<uint64_t> rose, fell, last;

    /** Bits observed toggling in both directions. */
    int coveredBits() const;
};

/** A user-declared cover point: counts cycles where expr is true. */
struct CoverPoint
{
    std::string name;
    rtl::ExprPtr expr;
    uint64_t hits = 0;
    bool last = false;   // truth value at the latest sample
};

/**
 * Cross coverage of two cover points: per-cycle occupancy of the
 * four (a, b) truth tuples.  A cross is closed once all four bins
 * have been observed.
 */
struct CrossPoint
{
    std::string name;
    size_t a = 0, b = 0;       // indices into the cover-point list
    uint64_t bins[4] = {0, 0, 0, 0};   // bin (va << 1) | vb

    int binsHit() const;
};

/** A user-declared assertion: expr must hold whenever enable does. */
struct AssertPoint
{
    std::string name;
    rtl::ExprPtr enable;
    rtl::ExprPtr expr;
    uint64_t checked = 0;
    uint64_t failures = 0;
    std::vector<uint64_t> fail_cycles;   // first few failing cycles
};

/** Value-bin occupancy for one register. */
struct RegBins
{
    std::string name;
    int width = 1;
    std::vector<uint64_t> hits;   // per-bin sample counts

    int binsHit() const;
};

class Coverage
{
  public:
    /** reg_bins: bin count for wide registers (narrow ones use
     *  2^width exact-value bins). */
    explicit Coverage(int reg_bins = 16);

    void addCover(const std::string &name, rtl::ExprPtr expr);
    void addAssert(const std::string &name, rtl::ExprPtr enable,
                   rtl::ExprPtr expr);

    /**
     * Cross two existing cover points (by name): bins the tuple of
     * their truth values every sample.  Throws std::invalid_argument
     * if either point has not been declared yet.
     */
    void cross(const std::string &name, const std::string &pointA,
               const std::string &pointB);

    /**
     * Sample the design once, on the combinational frame (call
     * before Sim::step so values line up with the current cycle).
     * The first call binds this engine to the sim's netlist.
     */
    void sample(rtl::Sim &sim);

    /**
     * Offline grading: bind the toggle/reg-bin models to a netlist
     * without a live simulation — recorded traces are then fed
     * through sampleNamed (trace::gradeCoverage).  The signal and
     * bin tables are identical to a live bind, so a full dump of a
     * run grades to the same summary the run printed.
     */
    void bindNetlist(const rtl::Netlist &nl);

    /**
     * One offline sample: `value` returns the frame value of a flat
     * signal name, or null when the recording does not carry it
     * (the signal is skipped that cycle).  User cover/assert points
     * need live expressions and are not evaluated offline.
     */
    void sampleNamed(
        const std::function<const BitVec *(const std::string &)>
            &value);

    uint64_t samples() const { return _samples; }

    /** Toggle coverage as a fraction of all named signal bits. */
    double togglePct() const;

    /** Register bins hit as a fraction of all register bins. */
    double regBinPct() const;

    bool assertsOk() const;

    const std::vector<SignalCoverage> &signals() const
    {
        return _signals;
    }
    const std::vector<RegBins> &regBins() const { return _reg_bins; }
    const std::vector<CoverPoint> &covers() const { return _covers; }
    const std::vector<CrossPoint> &crosses() const
    {
        return _crosses;
    }
    const std::vector<AssertPoint> &asserts() const
    {
        return _asserts;
    }

    /** Human-readable coverage report. */
    std::string report() const;

    /** Single-line machine-readable JSON summary. */
    std::string summaryJson() const;

  private:
    void bind(rtl::Sim &sim);
    void sampleSignal(rtl::Sim &sim, SignalCoverage &sc);

    int _req_bins;
    bool _bound = false;
    uint64_t _samples = 0;
    rtl::ChangeFeedCursor _cursor;       // feed-freshness tracking
    std::vector<int32_t> _net_slot;      // net -> _signals index
    std::vector<size_t> _unfed_slots;    // signals outside the feed
    std::vector<SignalCoverage> _signals;
    std::vector<RegBins> _reg_bins;
    std::vector<rtl::NetId> _reg_nets;   // parallel to _reg_bins
    std::vector<CoverPoint> _covers;
    std::vector<CrossPoint> _crosses;
    std::vector<AssertPoint> _asserts;
};

} // namespace tb
} // namespace anvil

#endif // ANVIL_TB_COVERAGE_H
