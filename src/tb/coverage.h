/**
 * @file
 * Netlist coverage engine: measures what a stimulus actually
 * exercised in a compiled design.
 *
 * Three coverage models, all hooked onto the interned net table of
 * rtl::Netlist so sampling is a dense id-addressed walk:
 *
 *  - toggle coverage: per named signal, a rose/fell bitmask pair; a
 *    bit is covered once it has been observed going 0->1 AND 1->0.
 *    After the first (priming) visit, toggle sampling rides the
 *    unified obs::ChangeFeed: only this engine's changed subscribed
 *    signals are revisited — an unchanged signal cannot toggle — so
 *    the per-cycle cost tracks activity, not design size;
 *  - register-value bins: each register's sampled values are hashed
 *    into a small fixed number of bins (exact values for narrow
 *    registers); bin occupancy distinguishes stimuli that park a
 *    state machine from ones that actually walk it;
 *  - user-declared cover/assert points: top-scope expressions counted
 *    (cover) or checked whenever enabled (assert), with failing
 *    cycles recorded.
 *
 * Reports come in two forms: a human-readable text table and a
 * machine-readable single-line JSON summary.
 */

#ifndef ANVIL_TB_COVERAGE_H
#define ANVIL_TB_COVERAGE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "rtl/interp.h"

namespace anvil {
namespace tb {

/** Per-signal toggle coverage counters. */
struct SignalCoverage
{
    std::string name;
    rtl::NetId net = rtl::kNoNet;
    int width = 1;
    bool is_reg = false;
    /** One bit per signal bit, 64 per word, like BitVec storage. */
    std::vector<uint64_t> rose, fell, last;

    /** Bits observed toggling in both directions. */
    int coveredBits() const;
};

/** A user-declared cover point: counts cycles where expr is true. */
struct CoverPoint
{
    std::string name;
    rtl::ExprPtr expr;
    uint64_t hits = 0;
    bool last = false;   // truth value at the latest sample
};

/**
 * Cross coverage of two cover points: per-cycle occupancy of the
 * four (a, b) truth tuples.  A cross is closed once all four bins
 * have been observed.
 */
struct CrossPoint
{
    std::string name;
    size_t a = 0, b = 0;       // indices into the cover-point list
    uint64_t bins[4] = {0, 0, 0, 0};   // bin (va << 1) | vb

    int binsHit() const;
};

/** A user-declared assertion: expr must hold whenever enable does. */
struct AssertPoint
{
    std::string name;
    rtl::ExprPtr enable;
    rtl::ExprPtr expr;
    uint64_t checked = 0;
    uint64_t failures = 0;
    std::vector<uint64_t> fail_cycles;   // first few failing cycles
};

/** Value-bin occupancy for one register. */
struct RegBins
{
    std::string name;
    int width = 1;
    std::vector<uint64_t> hits;   // per-bin sample counts

    int binsHit() const;
};

class Coverage : public obs::Observer
{
  public:
    /** reg_bins: bin count for wide registers (narrow ones use
     *  2^width exact-value bins). */
    explicit Coverage(int reg_bins = 16);
    ~Coverage() override;

    void addCover(const std::string &name, rtl::ExprPtr expr);
    void addAssert(const std::string &name, rtl::ExprPtr enable,
                   rtl::ExprPtr expr);

    /**
     * Cross two existing cover points (by name): bins the tuple of
     * their truth values every sample.  Throws std::invalid_argument
     * if either point has not been declared yet.
     */
    void cross(const std::string &name, const std::string &pointA,
               const std::string &pointB);

    /**
     * Standalone sampling through a private single-observer feed:
     * sample the design once, on the combinational frame (call
     * before Sim::step so values line up with the current cycle).
     * The first call binds this engine to the sim's netlist.  Not
     * available once attached to an external ChangeFeed — drive
     * that feed instead.
     */
    void sample(rtl::Sim &sim);

    // obs::Observer
    void onAttach(obs::ChangeFeed &feed) override;
    void onPrime(rtl::Sim &sim, uint64_t cycle) override;
    void onCycle(rtl::Sim &sim, uint64_t cycle,
                 const std::vector<rtl::NetId> &changed) override;
    const char *observerName() const override { return "coverage"; }

    /**
     * Offline grading: bind the toggle/reg-bin models to a netlist
     * without a live simulation — recorded traces are then fed
     * through sampleNamed (trace::gradeCoverage).  The signal and
     * bin tables are identical to a live bind, so a full dump of a
     * run grades to the same summary the run printed.
     */
    void bindNetlist(const rtl::Netlist &nl);

    /**
     * One offline sample: `value` returns the frame value of a flat
     * signal name, or null when the recording does not carry it
     * (the signal is skipped that cycle).  User cover/assert points
     * need live expressions and are not evaluated offline.
     */
    void sampleNamed(
        const std::function<const BitVec *(const std::string &)>
            &value);

    uint64_t samples() const { return _samples; }

    /** Toggle coverage as a fraction of all named signal bits. */
    double togglePct() const;

    /** Register bins hit as a fraction of all register bins. */
    double regBinPct() const;

    bool assertsOk() const;

    const std::vector<SignalCoverage> &signals() const
    {
        return _signals;
    }
    const std::vector<RegBins> &regBins() const { return _reg_bins; }
    const std::vector<CoverPoint> &covers() const { return _covers; }
    const std::vector<CrossPoint> &crosses() const
    {
        return _crosses;
    }
    const std::vector<AssertPoint> &asserts() const
    {
        return _asserts;
    }

    // --- Stream merging (obs::Merger) ---------------------------------
    //
    // Rebuild / accumulate coverage state from serialized snapshots
    // (obs::EventSink streams).  Slots are keyed by name and created
    // on first sight, in call order — a merger that feeds signals in
    // the original signals() order reconstructs a table whose
    // report() and summaryJson() are byte-identical to the source
    // run's.  All merge operations are commutative, so multi-stream
    // unions are independent of stream order.

    /** OR a foreign signal's toggle masks into this engine.  Width
     *  mismatches throw std::invalid_argument — streams from
     *  different designs do not merge. */
    void mergeSignal(const std::string &name, int width, bool is_reg,
                     const std::vector<uint64_t> &rose,
                     const std::vector<uint64_t> &fell);

    /** Sum one register's value-bin hit counts, element-wise. */
    void mergeRegBins(const std::string &name, int width,
                      const std::vector<uint64_t> &hits);

    /** Sum a cover point's hit count (point created expressionless). */
    void mergeCover(const std::string &name, uint64_t hits);

    /** Sum a cross point's four bins (end points looked up, or
     *  created, by name). */
    void mergeCross(const std::string &name, const std::string &a,
                    const std::string &b, const uint64_t bins[4]);

    /** Sum an assert point's counts; failing cycles are merged,
     *  sorted, and truncated to the per-run retention cap. */
    void mergeAssert(const std::string &name, uint64_t checked,
                     uint64_t failures,
                     const std::vector<uint64_t> &fail_cycles);

    /** Add externally observed sample count (streams sum). */
    void mergeSamples(uint64_t n) { _samples += n; }

    /** Human-readable coverage report. */
    std::string report() const;

    /** Single-line machine-readable JSON summary. */
    std::string summaryJson() const;

  private:
    void bind(rtl::Sim &sim);
    void sampleSignal(rtl::Sim &sim, SignalCoverage &sc);
    void sampleTail(rtl::Sim &sim);

    int _req_bins;
    bool _bound = false;
    uint64_t _samples = 0;
    std::vector<int32_t> _net_slot;      // net -> first _signals slot
    std::vector<int32_t> _dup_next;      // parallel to _signals
    std::vector<size_t> _unfed_slots;    // signals outside the feed
    std::vector<SignalCoverage> _signals;
    std::vector<RegBins> _reg_bins;
    std::vector<rtl::NetId> _reg_nets;   // parallel to _reg_bins
    std::vector<CoverPoint> _covers;
    std::vector<CrossPoint> _crosses;
    std::vector<AssertPoint> _asserts;
    std::unique_ptr<obs::ChangeFeed> _own_feed;   // standalone mode
};

} // namespace tb
} // namespace anvil

#endif // ANVIL_TB_COVERAGE_H
