#include "tb/axi_bfm.h"

#include <tuple>

namespace anvil {
namespace tb {

namespace {

uint64_t
maskBits(uint64_t v, int bits)
{
    return bits >= 64 ? v : v & ((1ull << bits) - 1);
}

} // namespace

// --- AxiMasterBfm --------------------------------------------------------

AxiMasterBfm::AxiMasterBfm(Testbench &bench, AxiMasterConfig cfg)
    : _cfg(std::move(cfg)), _paw(_cfg.prefix, "aw"),
      _pw(_cfg.prefix, "w"), _pb(_cfg.prefix, "b"),
      _par(_cfg.prefix, "ar"), _pr(_cfg.prefix, "r")
{
    bench.check(_cfg.prefix + "-axi-master",
                [this](Testbench &t) { observe(t); });
}

AxiMasterBfm &
AxiMasterBfm::attach(Testbench &bench, AxiMasterConfig cfg)
{
    auto agent = std::unique_ptr<AxiMasterBfm>(
        new AxiMasterBfm(bench, std::move(cfg)));
    AxiMasterBfm &ref = *agent;
    bench.addDriver(std::move(agent));
    return ref;
}

void
AxiMasterBfm::queueWrite(uint64_t addr, uint64_t data)
{
    _write_queue.emplace_back(addr, data);
}

void
AxiMasterBfm::queueRead(uint64_t addr,
                        std::function<void(const BitVec &)> on_resp)
{
    _read_queue.emplace_back(addr, std::move(on_resp));
}

bool
AxiMasterBfm::idle() const
{
    return _wstate == WState::Idle && _rstate == RState::Idle &&
           _write_queue.empty() && _read_queue.empty();
}

void
AxiMasterBfm::drive(rtl::Sim &sim, uint64_t cycle, SplitMix64 &rng)
{
    // --- Write engine ---------------------------------------------------
    if (_wstate == WState::Idle) {
        bool launch = false;
        uint64_t addr = 0, data = 0;
        if (!_write_queue.empty()) {
            std::tie(addr, data) = _write_queue.front();
            _write_queue.pop_front();
            launch = true;
        } else if (_cfg.random_traffic &&
                   rng.chance(_cfg.start_write_pct)) {
            addr = maskBits(rng.next(), _cfg.addr_bits);
            data = maskBits(rng.next(), _cfg.data_bits);
            launch = true;
        }
        if (launch) {
            _aw = BitVec(_cfg.addr_bits, addr);
            _w = BitVec(_cfg.data_bits, data);
            _aw_done = _w_done = false;
            _wstate = WState::Req;
            _w_start = cycle;
            _w_hang_reported = false;
        }
    }
    // Offered sends hold valid and keep the payload stable until the
    // ack arrives (contract-clean stimulus).
    bool aw_v = _wstate == WState::Req && !_aw_done;
    bool w_v = _wstate == WState::Req && !_w_done;
    sim.setInput(_paw.valid, aw_v ? 1 : 0);
    sim.setInput(_paw.data, _aw.resize(_cfg.addr_bits));
    sim.setInput(_pw.valid, w_v ? 1 : 0);
    sim.setInput(_pw.data, _w.resize(_cfg.data_bits));
    _b_ack = rng.chance(_cfg.b_ack_pct);
    sim.setInput(_pb.ack, _b_ack ? 1 : 0);

    // --- Read engine ----------------------------------------------------
    if (_rstate == RState::Idle) {
        bool launch = false;
        uint64_t addr = 0;
        if (!_read_queue.empty()) {
            addr = _read_queue.front().first;
            _on_read = std::move(_read_queue.front().second);
            _read_queue.pop_front();
            launch = true;
        } else if (_cfg.random_traffic &&
                   rng.chance(_cfg.start_read_pct)) {
            addr = maskBits(rng.next(), _cfg.addr_bits);
            _on_read = nullptr;
            launch = true;
        }
        if (launch) {
            _ar = BitVec(_cfg.addr_bits, addr);
            _rstate = RState::Req;
            _r_start = cycle;
            _r_hang_reported = false;
        }
    }
    sim.setInput(_par.valid,
                 _rstate == RState::Req ? 1 : 0);
    sim.setInput(_par.data, _ar.resize(_cfg.addr_bits));
    _r_ack = rng.chance(_cfg.r_ack_pct);
    sim.setInput(_pr.ack, _r_ack ? 1 : 0);
}

void
AxiMasterBfm::observe(Testbench &bench)
{
    rtl::Sim &sim = bench.sim();
    uint64_t cycle = sim.cycle();

    // Watchdog: a transaction the interconnect never completes is a
    // failure, not a silent stall.
    if (_cfg.timeout > 0) {
        if (_wstate != WState::Idle && !_w_hang_reported &&
            cycle - _w_start >= _cfg.timeout) {
            bench.fail(_cfg.prefix + "-axi-master",
                       "write to " + _aw.toHex() +
                           " not completed within " +
                           std::to_string(_cfg.timeout) + " cycles");
            _w_hang_reported = true;
        }
        if (_rstate != RState::Idle && !_r_hang_reported &&
            cycle - _r_start >= _cfg.timeout) {
            bench.fail(_cfg.prefix + "-axi-master",
                       "read of " + _ar.toHex() +
                           " not completed within " +
                           std::to_string(_cfg.timeout) + " cycles");
            _r_hang_reported = true;
        }
    }

    switch (_wstate) {
      case WState::Idle:
        break;
      case WState::Req:
        if (sim.peek(_paw.valid).any() &&
            sim.peek(_paw.ack).any())
            _aw_done = true;
        if (sim.peek(_pw.valid).any() &&
            sim.peek(_pw.ack).any())
            _w_done = true;
        if (_aw_done && _w_done)
            _wstate = WState::Resp;
        break;
      case WState::Resp:
        if (sim.peek(_pb.valid).any() && _b_ack) {
            _writes_done++;
            _wstate = WState::Idle;
        }
        break;
    }

    switch (_rstate) {
      case RState::Idle:
        break;
      case RState::Req:
        if (sim.peek(_par.valid).any() &&
            sim.peek(_par.ack).any())
            _rstate = RState::Resp;
        break;
      case RState::Resp:
        if (sim.peek(_pr.valid).any() && _r_ack) {
            if (_on_read)
                _on_read(sim.peek(_pr.data));
            _on_read = nullptr;
            _reads_done++;
            _rstate = RState::Idle;
        }
        break;
    }
}

// --- AxiLiteSlaveBfm -----------------------------------------------------

AxiLiteSlaveBfm::AxiLiteSlaveBfm(Testbench &bench, AxiSlaveConfig cfg)
    : _cfg(std::move(cfg)), _paw(_cfg.prefix, "aw"),
      _pw(_cfg.prefix, "w"), _pb(_cfg.prefix, "b"),
      _par(_cfg.prefix, "ar"), _pr(_cfg.prefix, "r"),
      _b(_cfg.b_bits), _r(_cfg.r_bits)
{
    bench.check(_cfg.prefix + "-axi-slave",
                [this](Testbench &t) { observe(t.sim()); });
}

AxiLiteSlaveBfm &
AxiLiteSlaveBfm::attach(Testbench &bench, AxiSlaveConfig cfg)
{
    auto agent = std::unique_ptr<AxiLiteSlaveBfm>(
        new AxiLiteSlaveBfm(bench, std::move(cfg)));
    AxiLiteSlaveBfm &ref = *agent;
    bench.addDriver(std::move(agent));
    return ref;
}

void
AxiLiteSlaveBfm::drive(rtl::Sim &sim, uint64_t, SplitMix64 &rng)
{
    _aw_ack = rng.chance(_cfg.aw_ack_pct);
    _w_ack = rng.chance(_cfg.w_ack_pct);
    _ar_ack = rng.chance(_cfg.ar_ack_pct);
    sim.setInput(_paw.ack, _aw_ack ? 1 : 0);
    sim.setInput(_pw.ack, _w_ack ? 1 : 0);
    sim.setInput(_par.ack, _ar_ack ? 1 : 0);

    // Prepared responses go live after a random presentation delay,
    // then hold valid and a stable payload until taken.
    if (_b_prepare && !_b_active && rng.chance(_cfg.resp_pct)) {
        uint64_t resp = _cfg.write_resp
                            ? _cfg.write_resp(_b_addr, _b_wdata)
                            : rng.next();
        _b = BitVec(_cfg.b_bits, resp);
        _b_prepare = false;
        _b_active = true;
    }
    sim.setInput(_pb.valid, _b_active ? 1 : 0);
    sim.setInput(_pb.data, _b);

    if (_r_prepare && !_r_active && rng.chance(_cfg.resp_pct)) {
        uint64_t resp = _cfg.read_resp ? _cfg.read_resp(_r_addr)
                                       : rng.next();
        _r = BitVec(_cfg.r_bits, resp);
        _r_prepare = false;
        _r_active = true;
    }
    sim.setInput(_pr.valid, _r_active ? 1 : 0);
    sim.setInput(_pr.data, _r);
}

void
AxiLiteSlaveBfm::observe(rtl::Sim &sim)
{
    if (_cfg.joint_write_accept) {
        // The baseline routers present AW and W together and need
        // both acked in the same cycle; that joint fire is the
        // write acceptance.
        if (!_b_prepare && !_b_active &&
            sim.peek(_paw.valid).any() && _aw_ack &&
            sim.peek(_pw.valid).any() && _w_ack) {
            _b_addr = sim.peek(_paw.data).toUint64();
            _b_wdata = sim.peek(_pw.data).toUint64();
            _b_prepare = true;
            _writes_accepted++;
        }
    } else {
        // Compiled designs complete each channel independently: a
        // fire retires that channel's send, and the write is
        // accepted once both channels fired.
        if (!_got_aw && sim.peek(_paw.valid).any() &&
            _aw_ack) {
            _b_addr = sim.peek(_paw.data).toUint64();
            _got_aw = true;
        }
        if (!_got_w && sim.peek(_pw.valid).any() &&
            _w_ack) {
            _b_wdata = sim.peek(_pw.data).toUint64();
            _got_w = true;
        }
        if (_got_aw && _got_w && !_b_prepare && !_b_active) {
            _got_aw = _got_w = false;
            _b_prepare = true;
            _writes_accepted++;
        }
    }
    if (_b_active && sim.peek(_pb.ack).any())
        _b_active = false;

    if (!_r_prepare && !_r_active &&
        sim.peek(_par.valid).any() && _ar_ack) {
        _r_addr = sim.peek(_par.data).toUint64();
        _r_prepare = true;
        _reads_accepted++;
    }
    if (_r_active && sim.peek(_pr.ack).any())
        _r_active = false;
}

} // namespace tb
} // namespace anvil
