#include "tb/testbench.h"

#include <algorithm>
#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace tb {

namespace {

/** Resolve a top-level input's declared width (throws if absent). */
int
inputWidth(const rtl::Sim &sim, const std::string &name)
{
    auto it = sim.netlist().signals().find(name);
    if (it == sim.netlist().signals().end() ||
        it->second.kind != rtl::NetSignal::Kind::Input)
        throw std::invalid_argument("no such input: " + name);
    return it->second.width;
}

class SequenceDriver : public Driver
{
  public:
    SequenceDriver(std::string input, std::vector<BitVec> values,
                   bool hold_last, int width)
        : _input(std::move(input)), _values(std::move(values)),
          _hold_last(hold_last), _width(width)
    {
    }

    void drive(rtl::Sim &sim, uint64_t, SplitMix64 &) override
    {
        if (_next < _values.size())
            sim.setInput(_input, _values[_next++]);
        else if (_hold_last && !_values.empty())
            sim.setInput(_input, _values.back());
        else
            sim.setInput(_input, BitVec(_width));
    }

  private:
    std::string _input;
    std::vector<BitVec> _values;
    bool _hold_last;
    int _width;
    size_t _next = 0;
};

class RandomDriver : public Driver
{
  public:
    RandomDriver(std::string input, RandomSpec spec, int width)
        : _input(std::move(input)), _spec(std::move(spec)),
          _width(width)
    {
        if (_spec.fields.empty()) {
            FieldSpec full;
            full.lo = 0;
            full.width = width;
            _spec.fields.push_back(full);
        }
        for (const auto &f : _spec.fields) {
            if (f.lo < 0 || f.width < 1 || f.lo + f.width > width)
                throw std::invalid_argument(
                    "random field outside input " + _input);
            if (f.choices.empty()) {
                uint64_t mask = f.width >= 64
                    ? ~0ull : (1ull << f.width) - 1;
                // A bound the field can't represent is a spec typo;
                // silently sampling elsewhere would fake coverage.
                if (f.min > mask || f.min > f.max)
                    throw std::invalid_argument(
                        "unsatisfiable min/max on a field of " +
                        _input);
            }
        }
    }

    void drive(rtl::Sim &sim, uint64_t, SplitMix64 &rng) override
    {
        if (!rng.chance(_spec.active_pct)) {
            sim.setInput(_input, BitVec(_width, _spec.idle_value));
            return;
        }
        BitVec v(_width);
        for (const auto &f : _spec.fields) {
            uint64_t bits = fieldValue(f, rng);
            for (int b = 0; b < f.width && b < 64; b++)
                v.setBit(f.lo + b, (bits >> b) & 1);
            // Fields wider than a word fill the rest with raw words.
            for (int b = 64; b < f.width; b++) {
                if (b % 64 == 0)
                    bits = rng.next();
                v.setBit(f.lo + b, (bits >> (b % 64)) & 1);
            }
        }
        sim.setInput(_input, v);
    }

  private:
    static uint64_t fieldValue(const FieldSpec &f, SplitMix64 &rng)
    {
        if (!f.choices.empty())
            return f.choices[rng.below(f.choices.size())];
        uint64_t mask = f.width >= 64
            ? ~0ull : (1ull << f.width) - 1;
        uint64_t lo = f.min;   // validated against mask and max
        uint64_t hi = std::min(f.max, mask);
        uint64_t span = hi - lo;
        if (span == ~0ull)
            return rng.next();
        return lo + rng.below(span + 1);
    }

    std::string _input;
    RandomSpec _spec;
    int _width;
};

class CallbackDriver : public Driver
{
  public:
    explicit CallbackDriver(
        std::function<void(rtl::Sim &, uint64_t, SplitMix64 &)> fn)
        : _fn(std::move(fn))
    {
    }

    void drive(rtl::Sim &sim, uint64_t cycle,
               SplitMix64 &rng) override
    {
        _fn(sim, cycle, rng);
    }

  private:
    std::function<void(rtl::Sim &, uint64_t, SplitMix64 &)> _fn;
};

} // namespace

void
Monitor::fail(uint64_t cycle, const std::string &message)
{
    _failures.push_back({cycle, _name, message});
}

void
Scoreboard::observed(uint64_t cycle, const BitVec &got)
{
    if (_queue.empty()) {
        fail(cycle, "observed " + got.toHex() +
                        " with nothing outstanding");
        return;
    }
    BitVec want = _queue.front();
    _queue.pop_front();
    // Compare at the wider width: truncating the observation would
    // silently mask high-bit corruption.
    int w = std::max(got.width(), want.width());
    if (got.resize(w) != want.resize(w))
        fail(cycle,
             "expected " + want.toHex() + " got " + got.toHex());
    else
        _matched++;
}

std::string
TbResult::summary() const
{
    if (ok())
        return strfmt("PASS: %llu cycles, 0 failures",
                      static_cast<unsigned long long>(cycles));
    std::string s =
        strfmt("FAIL: %llu cycles, %zu failure(s)",
               static_cast<unsigned long long>(cycles),
               failures.size());
    size_t shown = std::min<size_t>(failures.size(), 5);
    for (size_t i = 0; i < shown; i++)
        s += strfmt("\n  @%llu [%s] %s",
                    static_cast<unsigned long long>(
                        failures[i].cycle),
                    failures[i].check.c_str(),
                    failures[i].message.c_str());
    if (failures.size() > shown)
        s += strfmt("\n  ... %zu more", failures.size() - shown);
    return s;
}

Testbench::Testbench(rtl::ModulePtr top, uint64_t seed)
    : _sim(std::move(top)), _rng(seed)
{
}

Testbench::Testbench(rtl::ModulePtr top,
                     std::shared_ptr<const rtl::Netlist> netlist,
                     uint64_t seed)
    : _sim(std::move(top), std::move(netlist)), _rng(seed)
{
}

void
Testbench::driveSequence(const std::string &input,
                         std::vector<BitVec> values, bool hold_last)
{
    int w = inputWidth(_sim, input);
    addDriver(std::make_unique<SequenceDriver>(
        input, std::move(values), hold_last, w));
}

void
Testbench::driveRandom(const std::string &input, RandomSpec spec)
{
    int w = inputWidth(_sim, input);
    addDriver(
        std::make_unique<RandomDriver>(input, std::move(spec), w));
}

void
Testbench::driveWith(
    std::function<void(rtl::Sim &, uint64_t, SplitMix64 &)> fn)
{
    addDriver(std::make_unique<CallbackDriver>(std::move(fn)));
}

void
Testbench::addDriver(std::unique_ptr<Driver> d)
{
    _drivers.push_back(std::move(d));
}

Monitor &
Testbench::addMonitor(std::unique_ptr<Monitor> m)
{
    // Change-fed monitors (ContractMonitor) join the shared feed;
    // their observe() then defers to the feed visit.
    if (auto *o = dynamic_cast<obs::Observer *>(m.get()))
        _feed.attach(*o);
    _monitors.push_back(std::move(m));
    return *_monitors.back();
}

Scoreboard &
Testbench::addScoreboard(const std::string &name)
{
    auto sb = std::make_unique<Scoreboard>(name);
    Scoreboard &ref = *sb;
    _monitors.push_back(std::move(sb));
    return ref;
}

void
Testbench::check(const std::string &name,
                 std::function<void(Testbench &)> fn)
{
    _checks.emplace_back(name, std::move(fn));
}

void
Testbench::fail(const std::string &check, const std::string &message)
{
    _hook_failures.push_back({_sim.cycle(), check, message});
}

Coverage &
Testbench::coverage()
{
    _coverage_enabled = true;
    _feed.attach(_coverage);   // idempotent
    return _coverage;
}

void
Testbench::attachVcd(std::ostream &os,
                     std::vector<std::string> signals)
{
    _vcd = std::make_unique<rtl::VcdWriter>(_sim, os,
                                            std::move(signals));
    _feed.attach(*_vcd);
}

obs::Observer &
Testbench::attachObserver(std::unique_ptr<obs::Observer> o)
{
    _feed.attach(*o);
    _observers.push_back(std::move(o));
    return *_observers.back();
}

size_t
Testbench::totalFailures() const
{
    size_t n = _hook_failures.size();
    for (const auto &m : _monitors)
        n += m->failures().size();
    return n;
}

TbResult
Testbench::run(uint64_t cycles)
{
    size_t hook_base = _hook_failures.size();
    std::vector<size_t> mon_base;
    for (const auto &m : _monitors)
        mon_base.push_back(m->failures().size());
    size_t fail_base = totalFailures();

    TbResult result;
    for (uint64_t i = 0; i < cycles; i++) {
        uint64_t cyc = _sim.cycle();
        for (auto &d : _drivers)
            d->drive(_sim, cyc, _rng);
        for (auto &[name, fn] : _checks)
            fn(*this);
        for (auto &m : _monitors)
            m->observe(_sim, cyc);
        if (!_feed.empty())
            _feed.sample();
        _sim.step();
        result.cycles++;
        if (totalFailures() - fail_base >= max_failures)
            break;
    }

    // Merge the failures recorded during this run, in cycle order.
    result.failures.assign(_hook_failures.begin() +
                               static_cast<long>(hook_base),
                           _hook_failures.end());
    for (size_t m = 0; m < _monitors.size(); m++) {
        const auto &f = _monitors[m]->failures();
        result.failures.insert(result.failures.end(),
                               f.begin() +
                                   static_cast<long>(mon_base[m]),
                               f.end());
    }
    std::stable_sort(result.failures.begin(), result.failures.end(),
                     [](const TbFailure &a, const TbFailure &b) {
                         return a.cycle < b.cycle;
                     });
    return result;
}

} // namespace tb
} // namespace anvil
