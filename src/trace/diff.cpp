#include "trace/diff.h"

#include <algorithm>

#include "support/strings.h"

namespace anvil {
namespace trace {

std::string
TraceDiff::str() const
{
    std::string s;
    for (const auto &n : only_in_a)
        s += strfmt("  signal '%s' only in the first trace\n",
                    n.c_str());
    for (const auto &n : only_in_b)
        s += strfmt("  signal '%s' only in the second trace\n",
                    n.c_str());
    for (const auto &n : width_mismatch)
        s += strfmt("  signal '%s' recorded at different widths\n",
                    n.c_str());
    if (extent_mismatch)
        s += strfmt("  recorded extents differ: first ends @%llu, "
                    "second ends @%llu\n",
                    static_cast<unsigned long long>(a_end),
                    static_cast<unsigned long long>(b_end));
    if (value_diverged)
        s += strfmt("  first divergence @%llu %s: %s != %s\n",
                    static_cast<unsigned long long>(cycle),
                    signal.c_str(), a_value.c_str(),
                    b_value.c_str());
    if (identical)
        s += strfmt("  identical: %zu signal(s) over %llu cycle(s)\n",
                    signals_compared,
                    static_cast<unsigned long long>(cycles_compared));
    return s;
}

TraceDiff
diffTraces(const Trace &a, const Trace &b)
{
    TraceDiff d;

    // Structural comparison: match signals by dotted name.
    struct Pair
    {
        size_t ia, ib;
        const std::string *name;
    };
    std::vector<Pair> pairs;
    for (size_t i = 0; i < a.signals().size(); i++) {
        const TraceSignal &sa = a.signals()[i];
        int j = b.indexOf(sa.name);
        if (j < 0) {
            d.only_in_a.push_back(sa.name);
            continue;
        }
        if (b.signals()[static_cast<size_t>(j)].width != sa.width) {
            d.width_mismatch.push_back(sa.name);
            continue;
        }
        pairs.push_back({i, static_cast<size_t>(j), &sa.name});
    }
    for (const auto &sb : b.signals())
        if (a.indexOf(sb.name) < 0)
            d.only_in_b.push_back(sb.name);
    // A truncated prefix whose tail went quiet matches every value
    // it recorded; the differing extent is the only witness.  A dump
    // with declarations but no change records at all (cut before its
    // $dumpvars) is likewise only betrayed by its extent.
    d.a_end = a.endTime();
    d.b_end = b.endTime();
    bool a_empty = a.cycles() == 0, b_empty = b.cycles() == 0;
    d.extent_mismatch = (a_empty != b_empty) ||
        (!a_empty && !b_empty &&
         (d.a_end != d.b_end || a.startTime() != b.startTime()));
    d.identical = d.only_in_a.empty() && d.only_in_b.empty() &&
        d.width_mismatch.empty() && !d.extent_mismatch;
    d.signals_compared = pairs.size();

    if (pairs.empty())
        return d;

    uint64_t start = std::min(a.startTime(), b.startTime());
    uint64_t end = std::max(a.endTime(), b.endTime());
    if (a.cycles() == 0 && b.cycles() == 0)
        return d;
    d.cycles_compared = end - start + 1;

    TraceCursor ca(a), cb(b);
    for (uint64_t t = start; t <= end; t++) {
        ca.advanceTo(t);
        cb.advanceTo(t);
        for (const auto &p : pairs) {
            const BitVec &va = ca.value(p.ia);
            const BitVec &vb = cb.value(p.ib);
            if (va == vb)
                continue;
            d.identical = false;
            d.value_diverged = true;
            d.cycle = t;
            d.signal = *p.name;
            d.a_value = va.toHex();
            d.b_value = vb.toHex();
            return d;
        }
    }
    return d;
}

} // namespace trace
} // namespace anvil
