/**
 * @file
 * Runtime timing-contract monitors for valid/ack channels.
 *
 * The static checker proves (Def. C.15 style) that well-typed Anvil
 * programs keep their channel timing obligations; this engine checks
 * the same obligations *dynamically*, against either a live
 * simulation or a recorded trace — including dumps produced by
 * foreign tools.  Each per-channel contract compiles into a small
 * per-cycle checker over the channel's valid/ack/data signals:
 *
 *  - `ack within N`  — once a send is offered (valid rises), it must
 *    fire (valid && ack) within N cycles; N = 1 means the same cycle;
 *  - `stable`        — the payload must not change while the send is
 *    pending (valid high, not yet acked);
 *  - `hold`          — a pending send must not be abandoned: valid
 *    must stay asserted until the ack arrives (the dynamic analogue
 *    of no-send-while-outstanding).
 *
 * Contracts can be written in a one-line syntax
 * ("io_pong: ack within 4, stable, hold"), or inferred from a
 * compiled netlist: every `<ch>_valid` with a sibling `<ch>_ack`
 * whose valid the design itself drives (not a top-level input)
 * gets the default clauses.
 */

#ifndef ANVIL_TRACE_CONTRACTS_H
#define ANVIL_TRACE_CONTRACTS_H

#include <string>
#include <vector>

#include "obs/observer.h"
#include "tb/testbench.h"
#include "trace/trace.h"

namespace anvil {
namespace trace {

/** One channel's timing contract. */
struct ContractSpec
{
    std::string channel;   // signal prefix: <channel>_valid/_ack/_data
    int ack_within = 0;    // max cycles from offer to fire; 0 = none
    bool stable = true;
    bool hold = true;

    /** Render in the parseable one-line syntax. */
    std::string str() const;
};

/**
 * Parse "chan" or "chan: clause, clause, ...".  Clauses: `ack within
 * N`, `stable`, `hold`.  A bare channel name gets the defaults
 * (stable, hold); an explicit clause list enables exactly the listed
 * clauses.  Throws std::invalid_argument on syntax errors.
 */
ContractSpec parseContractSpec(const std::string &text);

/**
 * Infer default contracts from a compiled netlist: one per
 * `<ch>_valid` / `<ch>_ack` pair.  With `outputs_only` (the default)
 * channels whose valid is a top-level input — i.e. driven by the
 * environment, which random stimulus is free to wiggle — are skipped,
 * so the monitors judge the design, not the testbench.
 */
std::vector<ContractSpec> inferContracts(const rtl::Netlist &nl,
                                         bool outputs_only = true);

/** One detected contract violation. */
struct ContractViolation
{
    uint64_t cycle = 0;
    std::string channel;
    std::string rule;      // "ack-within", "stable", "hold"
    std::string message;
};

/** Multi-line human-readable report, one violation per line. */
std::string violationReport(
    const std::vector<ContractViolation> &violations);

/**
 * Per-cycle checker for one channel.  Feed it the channel's
 * combinational frame each cycle; violations are appended to `out`.
 * Each pending send reports each rule at most once.
 */
class ChannelChecker
{
  public:
    explicit ChannelChecker(ContractSpec spec);

    void cycle(uint64_t t, bool valid, bool ack, const BitVec &data,
               std::vector<ContractViolation> &out);

    const ContractSpec &spec() const { return _spec; }

    /** Completed sends (valid && ack observed). */
    uint64_t fired() const { return _fired; }

  private:
    ContractSpec _spec;
    bool _pending = false;
    bool _deadline_reported = false;
    bool _stable_reported = false;
    uint64_t _since = 0;
    BitVec _data0{1};
    uint64_t _fired = 0;
};

/**
 * Check a loaded trace offline against a set of contracts.  Channels
 * whose `<ch>_valid` the trace does not record are skipped (reported
 * in `*skipped` when given); a recorded valid without a recorded ack
 * is a configuration violation.
 *
 * One VCD time unit is treated as one clock cycle (the
 * rtl::VcdWriter convention); dumps sampled on a finer grid must be
 * resampled before `ack within N` deadlines are meaningful.
 */
std::vector<ContractViolation> checkTrace(
    const std::vector<ContractSpec> &specs, const Trace &trace,
    std::vector<std::string> *skipped = nullptr);

/**
 * Live monitoring: a tb::Monitor that runs the same checkers against
 * the simulation each cycle and reports violations as testbench
 * failures ("contract:<channel>").
 *
 * The monitor rides the unified obs::ChangeFeed: channel signal
 * values are cached, and after the priming visit only channels whose
 * nets actually changed are re-read (the checkers themselves still
 * tick every cycle — ack-within deadlines advance even when nothing
 * changes).  Channels touching a lazy net are re-read every visit;
 * skipped cycles and late pokes fall back to the feed's rescan.
 * When attached to a feed (tb::Testbench::addMonitor does this)
 * observe() is a no-op — the feed visit does the work; standalone
 * observe() re-reads everything directly.
 */
class ContractMonitor : public tb::Monitor, public obs::Observer
{
  public:
    ContractMonitor(std::vector<ContractSpec> specs, rtl::Sim &sim);

    void observe(rtl::Sim &sim, uint64_t cycle) override;

    // obs::Observer
    void onAttach(obs::ChangeFeed &feed) override;
    void onPrime(rtl::Sim &sim, uint64_t cycle) override;
    void onCycle(rtl::Sim &sim, uint64_t cycle,
                 const std::vector<rtl::NetId> &changed) override;
    const char *observerName() const override { return "contracts"; }

    const std::vector<ContractViolation> &violations() const
    {
        return _violations;
    }

  private:
    struct Bound
    {
        ChannelChecker checker;
        rtl::NetId valid, ack, data;   // data may be kNoNet
        bool valid_v = false, ack_v = false;   // cached frame values
        BitVec data_v{1};
    };
    void refresh(rtl::Sim &sim, Bound &b);
    void tick(uint64_t cycle);

    std::vector<Bound> _bound;
    /** net -> slot into _feed_lists, flat (or -1): O(1) per changed
     *  net on the fast path. */
    std::vector<int32_t> _feed_slot;
    /** Per fed net, the _bound indices whose channel reads it. */
    std::vector<std::vector<size_t>> _feed_lists;
    /** Bounds touching a lazy net: re-read every visit. */
    std::vector<size_t> _unfed_bounds;
    std::vector<ContractViolation> _violations;
};

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_CONTRACTS_H
