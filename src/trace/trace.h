/**
 * @file
 * In-memory value-change trace: the loaded form of a VCD dump.
 *
 * A Trace holds one change list per signal over a shared cycle axis,
 * plus enough header metadata (declaration order, id-codes, scope
 * root, timescale) that writing it back out reproduces an
 * rtl::VcdWriter dump byte for byte.  It is the common substrate of
 * the trace subsystem: VcdReader produces one, ReplayDriver feeds one
 * back into a testbench as stimulus, and ContractMonitor checks one
 * against channel timing contracts offline.
 */

#ifndef ANVIL_TRACE_TRACE_H
#define ANVIL_TRACE_TRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/bitvec.h"

namespace anvil {
namespace trace {

/** One recorded signal: identity plus its time-ordered change list. */
struct TraceSignal
{
    std::string name;   // dotted path below the root scope
    std::string id;     // VCD id-code (kept for byte-exact rewrite)
    int width = 1;
    bool is_reg = false;
    /** (time, new value) pairs, non-decreasing in time. */
    std::vector<std::pair<uint64_t, BitVec>> changes;

    /**
     * Value at the given time (the latest change at or before it);
     * nullptr before the first change.
     */
    const BitVec *valueAt(uint64_t time) const;
};

/** A loaded dump: signals in declaration order over a cycle axis. */
class Trace
{
  public:
    /** Root scope name (the top module of the recorded sim). */
    std::string top;

    /** Timescale text, e.g. "1ns". */
    std::string timescale = "1ns";

    std::vector<TraceSignal> &signals() { return _signals; }
    const std::vector<TraceSignal> &signals() const
    {
        return _signals;
    }

    /** Index of a signal by dotted name, or -1. */
    int indexOf(const std::string &name) const;

    /** First and last timestamps with any change. */
    uint64_t startTime() const;
    uint64_t endTime() const;

    /** Number of cycles the dump spans (end - start + 1; 0 empty). */
    uint64_t cycles() const;

    /** Total change records across all signals. */
    uint64_t changeCount() const;

    /**
     * Write the trace as VCD in rtl::VcdWriter's exact format: the
     * deterministic header, scopes rebuilt from dotted names, a full
     * $dumpvars checkpoint at the first timestamp, then change-only
     * records in declaration order.  Reading a VcdWriter dump and
     * writing it back here is byte-identical.
     */
    void writeVcd(std::ostream &os) const;

  private:
    std::vector<TraceSignal> _signals;
};

/**
 * Step through a trace cycle by cycle, maintaining each signal's
 * current value.  advanceTo() must be called with non-decreasing
 * times.
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const Trace &t);

    /** Apply all changes with time <= t. */
    void advanceTo(uint64_t t);

    /**
     * Current value of the i-th signal (zero of the declared width
     * before its first change).
     */
    const BitVec &value(size_t i) const { return _cur[i]; }

    /** True once the i-th signal has had at least one change. */
    bool defined(size_t i) const { return _next[i] > 0; }

  private:
    const Trace &_trace;
    std::vector<BitVec> _cur;
    std::vector<size_t> _next;   // next unapplied change per signal
};

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_TRACE_H
