/**
 * @file
 * Trace replay: feed a recorded dump back into a testbench as
 * stimulus and diff the re-simulated design against the recording.
 *
 * ReplayDriver is a tb::Driver that drives every top-level input the
 * trace recorded, cycle by cycle, so any dumped run — randomized
 * benches included — re-executes deterministically without its
 * original stimulus code.  ReplayMonitor is the checking half: each
 * cycle it compares every recorded non-input signal against the live
 * simulation and reports divergences with cycle numbers.
 *
 * Cycle alignment matches rtl::VcdWriter's convention: the dump's
 * timestamp t holds the combinational frame of testbench cycle
 * (t - startTime()), sampled after drivers ran and before the clock
 * edge.
 */

#ifndef ANVIL_TRACE_REPLAY_H
#define ANVIL_TRACE_REPLAY_H

#include <string>
#include <vector>

#include "tb/testbench.h"
#include "trace/trace.h"

namespace anvil {
namespace trace {

/** Drives the recorded values of every top-level input. */
class ReplayDriver : public tb::Driver
{
  public:
    /**
     * Bind the trace's signals to the sim's inputs by flat name.
     * Inputs the trace never recorded are left for other drivers
     * (listed in missingInputs()).
     */
    ReplayDriver(const Trace &t, rtl::Sim &sim);

    void drive(rtl::Sim &sim, uint64_t cycle,
               tb::SplitMix64 &rng) override;

    /** Trace cycles available for replay. */
    uint64_t cyclesAvailable() const { return _trace.cycles(); }

    /** Sim inputs with no recorded signal in the trace. */
    const std::vector<std::string> &missingInputs() const
    {
        return _missing;
    }

  private:
    const Trace &_trace;
    TraceCursor _cursor;
    uint64_t _t0;
    std::vector<std::pair<size_t, std::string>> _inputs;
    std::vector<std::string> _missing;
};

/**
 * Diffs the live simulation against the recording: every recorded
 * signal that resolves to a non-input net is compared each cycle.
 */
class ReplayMonitor : public tb::Monitor
{
  public:
    ReplayMonitor(const Trace &t, rtl::Sim &sim,
                  std::string name = "replay-diff");

    void observe(rtl::Sim &sim, uint64_t cycle) override;

    /** Total per-signal comparisons performed. */
    uint64_t compared() const { return _compared; }

    /** Number of recorded signals being checked. */
    size_t signalsChecked() const { return _checked.size(); }

  private:
    const Trace &_trace;
    TraceCursor _cursor;
    uint64_t _t0;
    std::vector<std::pair<size_t, rtl::NetId>> _checked;
    uint64_t _compared = 0;
};

/**
 * Convenience: attach a ReplayDriver and (optionally) a
 * ReplayMonitor to a bench.  Returns the cycle count to run.
 */
uint64_t attachReplay(tb::Testbench &bench, const Trace &t,
                      bool check = true);

/**
 * Coverage replay: grade a recorded trace against a design's
 * coverage model *offline* — no re-simulation.  The coverage engine
 * is bound to the netlist and every recorded frame is fed through
 * its offline sampler, so a full dump of a run reproduces the run's
 * own toggle / reg-bin summary (pinned by tests); recordings from
 * regression archives are graded the same way.  Returns the number
 * of frames sampled.  User cover/assert points are not evaluated
 * offline (they need live expressions).
 *
 * Frames run from the dump's first to its *last recorded change*: a
 * VCD carries no run length, so trailing cycles in which nothing
 * changed are not graded.  Changeless cycles cannot toggle anything,
 * but the sample count (and thus reg-bin occupancy totals) matches
 * the live run only when the run's final cycle recorded a change —
 * true of change-dense random stimulus, not of runs that end idle.
 */
uint64_t gradeCoverage(const rtl::Netlist &nl, const Trace &t,
                       tb::Coverage &cov);

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_REPLAY_H
