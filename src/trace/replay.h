/**
 * @file
 * Trace replay: feed a recorded dump back into a testbench as
 * stimulus and diff the re-simulated design against the recording.
 *
 * ReplayDriver is a tb::Driver that drives every top-level input the
 * trace recorded, cycle by cycle, so any dumped run — randomized
 * benches included — re-executes deterministically without its
 * original stimulus code.  ReplayMonitor is the checking half: each
 * cycle it compares every recorded non-input signal against the live
 * simulation and reports divergences with cycle numbers.
 *
 * Cycle alignment matches rtl::VcdWriter's convention: the dump's
 * timestamp t holds the combinational frame of testbench cycle
 * (t - startTime()), sampled after drivers ran and before the clock
 * edge.
 */

#ifndef ANVIL_TRACE_REPLAY_H
#define ANVIL_TRACE_REPLAY_H

#include <string>
#include <vector>

#include "tb/testbench.h"
#include "trace/trace.h"

namespace anvil {
namespace trace {

/** Drives the recorded values of every top-level input. */
class ReplayDriver : public tb::Driver
{
  public:
    /**
     * Bind the trace's signals to the sim's inputs by flat name.
     * Inputs the trace never recorded are left for other drivers
     * (listed in missingInputs()).
     */
    ReplayDriver(const Trace &t, rtl::Sim &sim);

    void drive(rtl::Sim &sim, uint64_t cycle,
               tb::SplitMix64 &rng) override;

    /** Trace cycles available for replay. */
    uint64_t cyclesAvailable() const { return _trace.cycles(); }

    /** Sim inputs with no recorded signal in the trace. */
    const std::vector<std::string> &missingInputs() const
    {
        return _missing;
    }

  private:
    const Trace &_trace;
    TraceCursor _cursor;
    uint64_t _t0;
    std::vector<std::pair<size_t, std::string>> _inputs;
    std::vector<std::string> _missing;
};

/**
 * Diffs the live simulation against the recording: every recorded
 * signal that resolves to a non-input net is compared each cycle.
 */
class ReplayMonitor : public tb::Monitor
{
  public:
    ReplayMonitor(const Trace &t, rtl::Sim &sim,
                  std::string name = "replay-diff");

    void observe(rtl::Sim &sim, uint64_t cycle) override;

    /** Total per-signal comparisons performed. */
    uint64_t compared() const { return _compared; }

    /** Number of recorded signals being checked. */
    size_t signalsChecked() const { return _checked.size(); }

  private:
    const Trace &_trace;
    TraceCursor _cursor;
    uint64_t _t0;
    std::vector<std::pair<size_t, rtl::NetId>> _checked;
    uint64_t _compared = 0;
};

/**
 * Convenience: attach a ReplayDriver and (optionally) a
 * ReplayMonitor to a bench.  Returns the cycle count to run.
 */
uint64_t attachReplay(tb::Testbench &bench, const Trace &t,
                      bool check = true);

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_REPLAY_H
