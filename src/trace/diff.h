/**
 * @file
 * Multi-trace diffing: compare two loaded dumps cycle by cycle and
 * report the first divergence — the regression-triage primitive
 * behind `anvilc --diff-trace A.vcd B.vcd`.
 *
 * Signals are matched by dotted name; each common signal's value
 * timeline (TraceCursor semantics: declared-width zero before the
 * first change) is compared over the union of both dumps' time
 * ranges.  Signals present in only one dump, or recorded at
 * different widths, are structural divergences reported up front.
 */

#ifndef ANVIL_TRACE_DIFF_H
#define ANVIL_TRACE_DIFF_H

#include <string>
#include <vector>

#include "trace/trace.h"

namespace anvil {
namespace trace {

/** Outcome of diffing two traces. */
struct TraceDiff
{
    bool identical = true;

    /** First divergent (cycle, signal) — valid when a value
     *  divergence was found. */
    bool value_diverged = false;
    uint64_t cycle = 0;
    std::string signal;
    std::string a_value, b_value;   // hex at the divergent cycle

    /** Signals recorded in only one dump. */
    std::vector<std::string> only_in_a, only_in_b;
    /** Signals recorded at different widths. */
    std::vector<std::string> width_mismatch;
    /** The dumps record different time extents (e.g. one is a
     *  truncated prefix whose tail went quiet): a structural
     *  divergence even when every compared value matches. */
    bool extent_mismatch = false;
    uint64_t a_end = 0, b_end = 0;

    uint64_t cycles_compared = 0;
    size_t signals_compared = 0;

    /** Multi-line human-readable report. */
    std::string str() const;
};

/** Compare every common signal of `a` and `b` over time. */
TraceDiff diffTraces(const Trace &a, const Trace &b);

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_DIFF_H
