#include "trace/replay.h"

#include <map>

#include "support/strings.h"

namespace anvil {
namespace trace {

ReplayDriver::ReplayDriver(const Trace &t, rtl::Sim &sim)
    : _trace(t), _cursor(t), _t0(t.startTime())
{
    const auto &signals = t.signals();
    for (const auto &name : sim.inputNames()) {
        bool found = false;
        for (size_t i = 0; i < signals.size(); i++) {
            if (signals[i].name == name) {
                _inputs.emplace_back(i, name);
                found = true;
                break;
            }
        }
        if (!found)
            _missing.push_back(name);
    }
}

void
ReplayDriver::drive(rtl::Sim &sim, uint64_t cycle, tb::SplitMix64 &)
{
    _cursor.advanceTo(_t0 + cycle);
    for (const auto &[idx, name] : _inputs)
        sim.setInput(name, _cursor.value(idx));
}

ReplayMonitor::ReplayMonitor(const Trace &t, rtl::Sim &sim,
                             std::string name)
    : tb::Monitor(std::move(name)), _trace(t), _cursor(t),
      _t0(t.startTime())
{
    const auto &table = sim.netlist().signals();
    const auto &signals = t.signals();
    for (size_t i = 0; i < signals.size(); i++) {
        auto it = table.find(signals[i].name);
        if (it == table.end() ||
            it->second.kind == rtl::NetSignal::Kind::Input)
            continue;
        _checked.emplace_back(i, it->second.net);
    }
}

void
ReplayMonitor::observe(rtl::Sim &sim, uint64_t cycle)
{
    uint64_t t = _t0 + cycle;
    if (t > _trace.endTime())
        return;   // past the recording; nothing to compare
    _cursor.advanceTo(t);
    for (const auto &[idx, net] : _checked) {
        const BitVec &want = _cursor.value(idx);
        const BitVec &got = sim.value(net);
        _compared++;
        if (got != want)
            fail(cycle,
                 _trace.signals()[idx].name + ": recorded " +
                     want.toHex() + " resimulated " + got.toHex());
    }
}

uint64_t
attachReplay(tb::Testbench &bench, const Trace &t, bool check)
{
    auto driver = std::make_unique<ReplayDriver>(t, bench.sim());
    uint64_t cycles = driver->cyclesAvailable();
    bench.addDriver(std::move(driver));
    if (check)
        bench.addMonitor(
            std::make_unique<ReplayMonitor>(t, bench.sim()));
    return cycles;
}

uint64_t
gradeCoverage(const rtl::Netlist &nl, const Trace &t,
              tb::Coverage &cov)
{
    cov.bindNetlist(nl);
    if (t.cycles() == 0)
        return 0;

    // Flat signal name -> trace index, resolved once.
    std::map<std::string, size_t> index;
    for (size_t i = 0; i < t.signals().size(); i++)
        index.emplace(t.signals()[i].name, i);

    // The sampler queries the same names in the same order every
    // frame, so the first frame's resolutions are memoized and
    // replayed by position: no per-frame string lookups on an
    // archive-sized grade.
    std::vector<int32_t> order;
    bool primed = false;
    size_t call = 0;

    TraceCursor cursor(t);
    uint64_t frames = 0;
    for (uint64_t time = t.startTime(); time <= t.endTime(); time++) {
        cursor.advanceTo(time);
        call = 0;
        cov.sampleNamed(
            [&](const std::string &name) -> const BitVec * {
                int32_t idx;
                if (!primed) {
                    auto it = index.find(name);
                    idx = it == index.end()
                        ? -1 : static_cast<int32_t>(it->second);
                    order.push_back(idx);
                } else {
                    idx = order[call];
                }
                call++;
                return idx < 0
                    ? nullptr
                    : &cursor.value(static_cast<size_t>(idx));
            });
        primed = true;
        frames++;
    }
    return frames;
}

} // namespace trace
} // namespace anvil
