#include "trace/trace.h"

#include <algorithm>
#include <limits>
#include <map>

namespace anvil {
namespace trace {

namespace {

/** Nested scope for header rebuilding (mirrors rtl::VcdWriter). */
struct ScopeNode
{
    std::map<std::string, ScopeNode> children;
    std::vector<size_t> vars;   // indices into the signal list
};

/** Binary value with leading zeros stripped (VCD shorthand). */
std::string
trimmedBinary(const BitVec &v)
{
    std::string b = v.toBinary();
    size_t first = b.find('1');
    if (first == std::string::npos)
        return "0";
    return b.substr(first);
}

void
emitValue(std::ostream &os, const TraceSignal &s, const BitVec &v)
{
    if (s.width == 1)
        os << (v.any() ? '1' : '0') << s.id << "\n";
    else
        os << "b" << trimmedBinary(v) << " " << s.id << "\n";
}

} // namespace

const BitVec *
TraceSignal::valueAt(uint64_t time) const
{
    // First change strictly after `time`, then step back one.
    auto it = std::upper_bound(
        changes.begin(), changes.end(), time,
        [](uint64_t t, const std::pair<uint64_t, BitVec> &c) {
            return t < c.first;
        });
    if (it == changes.begin())
        return nullptr;
    return &std::prev(it)->second;
}

int
Trace::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < _signals.size(); i++)
        if (_signals[i].name == name)
            return static_cast<int>(i);
    return -1;
}

uint64_t
Trace::startTime() const
{
    uint64_t t = std::numeric_limits<uint64_t>::max();
    for (const auto &s : _signals)
        if (!s.changes.empty())
            t = std::min(t, s.changes.front().first);
    return t == std::numeric_limits<uint64_t>::max() ? 0 : t;
}

uint64_t
Trace::endTime() const
{
    uint64_t t = 0;
    for (const auto &s : _signals)
        if (!s.changes.empty())
            t = std::max(t, s.changes.back().first);
    return t;
}

uint64_t
Trace::cycles() const
{
    if (changeCount() == 0)
        return 0;
    return endTime() - startTime() + 1;
}

uint64_t
Trace::changeCount() const
{
    uint64_t n = 0;
    for (const auto &s : _signals)
        n += s.changes.size();
    return n;
}

void
Trace::writeVcd(std::ostream &os) const
{
    os << "$date\n    (deterministic)\n$end\n"
       << "$version\n    anvil VcdWriter\n$end\n"
       << "$timescale\n    " << timescale << "\n$end\n";

    ScopeNode root;
    for (size_t i = 0; i < _signals.size(); i++) {
        ScopeNode *node = &root;
        const std::string &name = _signals[i].name;
        size_t start = 0, dot;
        while ((dot = name.find('.', start)) != std::string::npos) {
            node = &node->children[name.substr(start, dot - start)];
            start = dot + 1;
        }
        node->vars.push_back(i);
    }

    auto emitScope = [this, &os](const ScopeNode &node,
                                 auto &&self) -> void {
        for (size_t i : node.vars) {
            const TraceSignal &s = _signals[i];
            std::string leaf = s.name.substr(s.name.rfind('.') + 1);
            os << "$var " << (s.is_reg ? "reg" : "wire") << " "
               << s.width << " " << s.id << " " << leaf;
            if (s.width > 1)
                os << " [" << s.width - 1 << ":0]";
            os << " $end\n";
        }
        for (const auto &[name, child] : node.children) {
            os << "$scope module " << name << " $end\n";
            self(child, self);
            os << "$upscope $end\n";
        }
    };

    os << "$scope module " << top << " $end\n";
    emitScope(root, emitScope);
    os << "$upscope $end\n$enddefinitions $end\n";

    if (changeCount() == 0)
        return;

    // Merge the per-signal change lists back into the per-timestamp
    // layout: at each time, changed signals in declaration order.
    std::vector<size_t> next(_signals.size(), 0);
    uint64_t t = startTime();
    bool first = true;
    for (;;) {
        os << "#" << t << "\n";
        if (first)
            os << "$dumpvars\n";
        for (size_t i = 0; i < _signals.size(); i++) {
            const auto &ch = _signals[i].changes;
            while (next[i] < ch.size() && ch[next[i]].first == t) {
                emitValue(os, _signals[i], ch[next[i]].second);
                next[i]++;
            }
        }
        if (first)
            os << "$end\n";
        first = false;

        uint64_t next_t = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < _signals.size(); i++) {
            const auto &ch = _signals[i].changes;
            if (next[i] < ch.size())
                next_t = std::min(next_t, ch[next[i]].first);
        }
        if (next_t == std::numeric_limits<uint64_t>::max())
            break;
        t = next_t;
    }
}

TraceCursor::TraceCursor(const Trace &t) : _trace(t)
{
    _cur.reserve(t.signals().size());
    for (const auto &s : t.signals())
        _cur.emplace_back(std::max(s.width, 1));
    _next.assign(t.signals().size(), 0);
}

void
TraceCursor::advanceTo(uint64_t t)
{
    const auto &signals = _trace.signals();
    for (size_t i = 0; i < signals.size(); i++) {
        const auto &ch = signals[i].changes;
        while (_next[i] < ch.size() && ch[_next[i]].first <= t) {
            _cur[i] = ch[_next[i]].second;
            _next[i]++;
        }
    }
}

} // namespace trace
} // namespace anvil
