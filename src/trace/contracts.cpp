#include "trace/contracts.h"

#include <sstream>
#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace trace {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

std::string
ContractSpec::str() const
{
    std::string s = channel + ":";
    bool first = true;
    auto clause = [&](const std::string &c) {
        s += first ? " " : ", ";
        s += c;
        first = false;
    };
    if (ack_within > 0)
        clause(strfmt("ack within %d", ack_within));
    if (stable)
        clause("stable");
    if (hold)
        clause("hold");
    if (first)
        clause("none");
    return s;
}

ContractSpec
parseContractSpec(const std::string &text)
{
    ContractSpec spec;
    size_t colon = text.find(':');
    spec.channel = trim(colon == std::string::npos
                            ? text
                            : text.substr(0, colon));
    if (spec.channel.empty())
        throw std::invalid_argument(
            "contract spec has no channel name: '" + text + "'");
    if (colon == std::string::npos)
        return spec;   // bare name: default clauses

    // An explicit clause list enables exactly the listed clauses.
    spec.stable = false;
    spec.hold = false;
    std::string clauses = text.substr(colon + 1);
    size_t pos = 0;
    while (pos <= clauses.size()) {
        size_t comma = clauses.find(',', pos);
        std::string c = trim(clauses.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        pos = comma == std::string::npos ? clauses.size() + 1
                                         : comma + 1;
        if (c.empty())
            continue;
        if (c == "stable") {
            spec.stable = true;
        } else if (c == "hold") {
            spec.hold = true;
        } else if (c == "none") {
            // explicit empty clause set
        } else if (c.rfind("ack", 0) == 0) {
            std::istringstream is(c);
            std::string kw_ack, kw_within;
            int n = 0;
            is >> kw_ack >> kw_within >> n;
            if (kw_within != "within" || is.fail() || n < 1)
                throw std::invalid_argument(
                    "bad clause '" + c +
                    "' (expected 'ack within N')");
            spec.ack_within = n;
        } else {
            throw std::invalid_argument("unknown contract clause '" +
                                        c + "'");
        }
    }
    return spec;
}

std::vector<ContractSpec>
inferContracts(const rtl::Netlist &nl, bool outputs_only)
{
    std::vector<ContractSpec> specs;
    const auto &table = nl.signals();
    for (const auto &[name, sig] : table) {
        const std::string suffix = "_valid";
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string ch = name.substr(0, name.size() - suffix.size());
        if (!table.count(ch + "_ack"))
            continue;
        if (outputs_only &&
            sig.kind == rtl::NetSignal::Kind::Input)
            continue;
        ContractSpec spec;
        spec.channel = ch;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::string
violationReport(const std::vector<ContractViolation> &violations)
{
    std::string s;
    for (const auto &v : violations)
        s += strfmt("  @%llu %s [%s] %s\n",
                    static_cast<unsigned long long>(v.cycle),
                    v.channel.c_str(), v.rule.c_str(),
                    v.message.c_str());
    return s;
}

ChannelChecker::ChannelChecker(ContractSpec spec)
    : _spec(std::move(spec))
{
}

void
ChannelChecker::cycle(uint64_t t, bool valid, bool ack,
                      const BitVec &data,
                      std::vector<ContractViolation> &out)
{
    if (!_pending) {
        if (!valid)
            return;
        // A send is offered this cycle.
        _since = t;
        _data0 = data;
        _deadline_reported = false;
        _stable_reported = false;
        if (ack) {
            _fired++;
            return;   // fires immediately; nothing left to watch
        }
        _pending = true;
        if (_spec.ack_within == 1) {
            out.push_back(
                {t, _spec.channel, "ack-within",
                 strfmt("send at cycle %llu not acknowledged "
                        "within 1 cycle",
                        static_cast<unsigned long long>(t))});
            _deadline_reported = true;
        }
        return;
    }

    // A send offered at _since is still outstanding.
    if (!valid) {
        if (_spec.hold)
            out.push_back(
                {t, _spec.channel, "hold",
                 strfmt("send pending since cycle %llu retracted "
                        "before acknowledgement",
                        static_cast<unsigned long long>(_since))});
        _pending = false;
        return;
    }
    if (_spec.stable && !_stable_reported && data != _data0) {
        out.push_back(
            {t, _spec.channel, "stable",
             "payload changed while pending (" + _data0.toHex() +
                 " -> " + data.toHex() + ")"});
        _stable_reported = true;
        _data0 = data;   // judge further changes against the new value
    }
    if (ack) {
        _fired++;
        _pending = false;
        return;
    }
    if (_spec.ack_within > 0 && !_deadline_reported &&
        t - _since + 1 >= static_cast<uint64_t>(_spec.ack_within)) {
        out.push_back(
            {t, _spec.channel, "ack-within",
             strfmt("send at cycle %llu not acknowledged within "
                    "%d cycles",
                    static_cast<unsigned long long>(_since),
                    _spec.ack_within)});
        _deadline_reported = true;
    }
}

std::vector<ContractViolation>
checkTrace(const std::vector<ContractSpec> &specs, const Trace &trace,
           std::vector<std::string> *skipped)
{
    std::vector<ContractViolation> out;
    struct Offline
    {
        ChannelChecker checker;
        int valid, ack, data;   // indices into the trace; -1 = none
    };
    std::vector<Offline> checkers;
    for (const auto &spec : specs) {
        int v = trace.indexOf(spec.channel + "_valid");
        if (v < 0) {
            if (skipped)
                skipped->push_back(spec.channel);
            continue;
        }
        int a = trace.indexOf(spec.channel + "_ack");
        if (a < 0) {
            out.push_back({trace.startTime(), spec.channel, "config",
                           "trace records " + spec.channel +
                               "_valid but not " + spec.channel +
                               "_ack"});
            continue;
        }
        checkers.push_back({ChannelChecker(spec), v, a,
                            trace.indexOf(spec.channel + "_data")});
    }
    if (checkers.empty() || trace.cycles() == 0)
        return out;

    TraceCursor cursor(trace);
    static const BitVec kNoData(1);
    for (uint64_t t = trace.startTime(); t <= trace.endTime(); t++) {
        cursor.advanceTo(t);
        for (auto &c : checkers)
            c.checker.cycle(
                t, cursor.value(static_cast<size_t>(c.valid)).any(),
                cursor.value(static_cast<size_t>(c.ack)).any(),
                c.data < 0
                    ? kNoData
                    : cursor.value(static_cast<size_t>(c.data)),
                out);
    }
    return out;
}

ContractMonitor::ContractMonitor(std::vector<ContractSpec> specs,
                                 rtl::Sim &sim)
    : tb::Monitor("contracts")
{
    const auto &table = sim.netlist().signals();
    auto find = [&](const std::string &name) {
        auto it = table.find(name);
        return it == table.end() ? rtl::kNoNet : it->second.net;
    };
    for (auto &spec : specs) {
        Bound b{ChannelChecker(std::move(spec)), rtl::kNoNet,
                rtl::kNoNet, rtl::kNoNet};
        const ContractSpec &s = b.checker.spec();
        b.valid = find(s.channel + "_valid");
        b.ack = find(s.channel + "_ack");
        b.data = find(s.channel + "_data");
        if (b.valid == rtl::kNoNet || b.ack == rtl::kNoNet)
            throw std::invalid_argument(
                "contract channel '" + s.channel +
                "' has no valid/ack pair in the design");
        size_t index = _bound.size();
        const rtl::Netlist &nl = sim.netlist();
        if (_feed_slot.empty())
            _feed_slot.assign(nl.nets().size(), -1);
        bool has_lazy = false;
        for (rtl::NetId id : {b.valid, b.ack, b.data}) {
            if (id == rtl::kNoNet)
                continue;
            if (nl.net(id).lazy) {
                // The whole channel drops to the every-visit list:
                // value() keeps the lazy net's on-demand faults.
                has_lazy = true;
                continue;
            }
            int32_t &slot = _feed_slot[static_cast<size_t>(id)];
            if (slot < 0) {
                slot = static_cast<int32_t>(_feed_lists.size());
                _feed_lists.emplace_back();
            }
            _feed_lists[static_cast<size_t>(slot)].push_back(index);
        }
        if (has_lazy)
            _unfed_bounds.push_back(index);
        _bound.push_back(std::move(b));
    }
}

/** Re-read one channel's frame values from the simulation. */
void
ContractMonitor::refresh(rtl::Sim &sim, Bound &b)
{
    b.valid_v = sim.value(b.valid).any();
    b.ack_v = sim.value(b.ack).any();
    if (b.data != rtl::kNoNet)
        b.data_v = sim.value(b.data);
}

void
ContractMonitor::tick(uint64_t cycle)
{
    for (auto &b : _bound) {
        size_t before = _violations.size();
        b.checker.cycle(cycle, b.valid_v, b.ack_v, b.data_v,
                        _violations);
        for (size_t i = before; i < _violations.size(); i++)
            fail(cycle, "contract:" + _violations[i].channel + " [" +
                            _violations[i].rule + "] " +
                            _violations[i].message);
    }
}

void
ContractMonitor::onAttach(obs::ChangeFeed &feed)
{
    for (size_t ni = 0; ni < _feed_slot.size(); ni++)
        if (_feed_slot[ni] >= 0)
            feed.subscribe(*this, static_cast<rtl::NetId>(ni));
}

void
ContractMonitor::onPrime(rtl::Sim &sim, uint64_t cycle)
{
    for (auto &b : _bound)
        refresh(sim, b);
    tick(cycle);
}

void
ContractMonitor::onCycle(rtl::Sim &sim, uint64_t cycle,
                         const std::vector<rtl::NetId> &changed)
{
    // Only channels whose nets actually changed are re-read; every
    // checker still ticks — ack-within deadlines advance even when
    // nothing changes.
    for (rtl::NetId id : changed) {
        int32_t slot = _feed_slot[static_cast<size_t>(id)];
        if (slot < 0)
            continue;
        for (size_t index : _feed_lists[static_cast<size_t>(slot)])
            refresh(sim, _bound[index]);
    }
    for (size_t index : _unfed_bounds)
        refresh(sim, _bound[index]);
    tick(cycle);
}

void
ContractMonitor::observe(rtl::Sim &sim, uint64_t cycle)
{
    // Attached to a shared feed (the Testbench path): the feed visit
    // does the work once per cycle; the run loop's observe() call is
    // then a no-op so checkers do not double-tick.
    if (feed())
        return;
    for (auto &b : _bound)
        refresh(sim, b);
    tick(cycle);
}

} // namespace trace
} // namespace anvil
