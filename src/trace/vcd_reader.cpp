#include "trace/vcd_reader.h"

#include <cctype>
#include <fstream>
#include <map>
#include <stdexcept>

#include "support/strings.h"

namespace anvil {
namespace trace {

namespace {

/** Whitespace-separated tokens with line tracking for diagnostics. */
class Tokenizer
{
  public:
    explicit Tokenizer(std::istream &is) : _is(is) {}

    bool next(std::string &tok)
    {
        tok.clear();
        int c;
        while ((c = _is.get()) != EOF) {
            if (c == '\n')
                _line++;
            if (!std::isspace(c))
                break;
        }
        if (c == EOF)
            return false;
        do {
            tok += static_cast<char>(c);
            c = _is.get();
        } while (c != EOF && !std::isspace(c));
        if (c == '\n')
            _line++;
        return true;
    }

    int line() const { return _line; }

  private:
    std::istream &_is;
    int _line = 1;
};

[[noreturn]] void
fail(const Tokenizer &tz, const std::string &msg)
{
    throw std::runtime_error(
        strfmt("vcd: line %d: %s", tz.line(), msg.c_str()));
}

/** Skip tokens through the closing $end of the current section. */
void
skipSection(Tokenizer &tz)
{
    std::string tok;
    while (tz.next(tok))
        if (tok == "$end")
            return;
    fail(tz, "unterminated section (missing $end)");
}

/** Collect a section's body tokens, concatenated (e.g. "1 ns"). */
std::string
sectionText(Tokenizer &tz)
{
    std::string tok, text;
    while (tz.next(tok)) {
        if (tok == "$end")
            return text;
        text += tok;
    }
    fail(tz, "unterminated section (missing $end)");
}

/** Two-state read of a VCD value character (x and z read as 0). */
bool
scalarBit(Tokenizer &tz, char c)
{
    switch (c) {
      case '0': case 'x': case 'X': case 'z': case 'Z':
        return false;
      case '1':
        return true;
      default:
        fail(tz, strfmt("bad scalar value '%c'", c));
    }
}

/** Parse a binary vector body into a value of the signal's width. */
BitVec
vectorValue(Tokenizer &tz, const std::string &bits, int width)
{
    if (bits.empty())
        fail(tz, "empty vector value");
    if (static_cast<int>(bits.size()) > width)
        fail(tz, strfmt("vector value wider than its var (%zu > %d)",
                        bits.size(), width));
    BitVec v(width);
    for (size_t i = 0; i < bits.size(); i++) {
        char c = bits[bits.size() - 1 - i];
        v.setBit(static_cast<int>(i), scalarBit(tz, c));
    }
    return v;
}

bool
isTimestamp(const std::string &tok)
{
    if (tok.size() < 2 || tok[0] != '#')
        return false;
    for (size_t i = 1; i < tok.size(); i++)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    return true;
}

} // namespace

Trace
VcdReader::read(std::istream &is)
{
    Tokenizer tz(is);
    Trace trace;
    std::vector<std::string> scopes;
    // One id-code may be declared for several vars (aliases).
    std::map<std::string, std::vector<size_t>> by_id;
    std::string tok;

    // --- Header: declarations up to $enddefinitions ----------------------
    bool defs_done = false;
    while (!defs_done) {
        if (!tz.next(tok))
            fail(tz, "missing $enddefinitions");
        if (tok == "$date" || tok == "$version" ||
            tok == "$comment") {
            skipSection(tz);
        } else if (tok == "$timescale") {
            trace.timescale = sectionText(tz);
        } else if (tok == "$scope") {
            std::string kind, name;
            if (!tz.next(kind) || !tz.next(name))
                fail(tz, "truncated $scope");
            scopes.push_back(name);
            if (trace.top.empty())
                trace.top = name;
            skipSection(tz);
        } else if (tok == "$upscope") {
            if (scopes.empty())
                fail(tz, "$upscope without matching $scope");
            scopes.pop_back();
            skipSection(tz);
        } else if (tok == "$var") {
            std::string kind, width_tok, id, name;
            if (!tz.next(kind) || !tz.next(width_tok) ||
                !tz.next(id) || !tz.next(name))
                fail(tz, "truncated $var");
            int width = 0;
            try {
                width = std::stoi(width_tok);
            } catch (const std::exception &) {
                width = 0;
            }
            if (width < 1)
                fail(tz, "bad $var width '" + width_tok + "'");
            skipSection(tz);   // optional [msb:lsb] plus $end

            TraceSignal s;
            // The root scope is the top module; names below it.
            std::string full;
            for (size_t i = 1; i < scopes.size(); i++)
                full += scopes[i] + ".";
            s.name = full + name;
            s.id = id;
            s.width = width;
            s.is_reg = kind == "reg";
            by_id[id].push_back(trace.signals().size());
            trace.signals().push_back(std::move(s));
        } else if (tok == "$enddefinitions") {
            skipSection(tz);
            defs_done = true;
        } else {
            fail(tz, "unexpected token '" + tok + "' in header");
        }
    }

    // --- Dump: timestamps and value changes ------------------------------
    auto record = [&](const std::string &id, auto make_value,
                      uint64_t now) {
        auto it = by_id.find(id);
        if (it == by_id.end())
            fail(tz, "change for undeclared id-code '" + id + "'");
        for (size_t idx : it->second) {
            TraceSignal &s = trace.signals()[idx];
            if (!s.changes.empty() && s.changes.back().first > now)
                fail(tz, "timestamps go backwards");
            s.changes.emplace_back(now, make_value(s.width));
        }
    };

    uint64_t now = 0;
    while (tz.next(tok)) {
        if (isTimestamp(tok)) {
            uint64_t t = std::stoull(tok.substr(1));
            if (t < now)
                fail(tz, "timestamps go backwards");
            now = t;
        } else if (tok == "$dumpvars" || tok == "$dumpall" ||
                   tok == "$dumpon" || tok == "$dumpoff" ||
                   tok == "$end") {
            // Block structure carries no extra information here.
        } else if (tok == "$comment") {
            skipSection(tz);
        } else if (tok[0] == 'b' || tok[0] == 'B') {
            std::string bits = tok.substr(1), id;
            if (!tz.next(id))
                fail(tz, "vector change missing id-code");
            record(id,
                   [&](int w) { return vectorValue(tz, bits, w); },
                   now);
        } else if (tok[0] == 'r' || tok[0] == 'R') {
            // Real-valued change: consume the id; two-state traces
            // carry no real vars worth replaying.
            std::string id;
            if (!tz.next(id))
                fail(tz, "real change missing id-code");
        } else if (tok.size() >= 2 &&
                   (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' ||
                    tok[0] == 'X' || tok[0] == 'z' || tok[0] == 'Z')) {
            bool bit = scalarBit(tz, tok[0]);
            record(tok.substr(1),
                   [&](int w) {
                       BitVec v(w);
                       v.setBit(0, bit);
                       return v;
                   },
                   now);
        } else {
            fail(tz, "unexpected token '" + tok + "' in dump");
        }
    }
    return trace;
}

Trace
VcdReader::readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open '" + path + "'");
    return read(is);
}

} // namespace trace
} // namespace anvil
