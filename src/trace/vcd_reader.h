/**
 * @file
 * Parser for IEEE 1364 value change dump (VCD) files.
 *
 * Reads the full standard subset relevant to two-state simulation:
 * header sections ($date/$version/$timescale/$comment), nested
 * $scope/$upscope hierarchies, $var declarations with id-codes and
 * optional bit ranges, $dumpvars/$dumpall/$dumpon/$dumpoff blocks,
 * timestamps, scalar changes (0/1/x/z) and arbitrary-width binary
 * vector changes.  x and z bits are read as 0 (the simulator is
 * two-state).  Aliased id-codes (one code declared for several vars)
 * fan changes out to every alias.
 *
 * The result is a trace::Trace whose metadata is rich enough that
 * Trace::writeVcd reproduces an rtl::VcdWriter dump byte for byte.
 * Malformed input raises std::runtime_error with a line number.
 */

#ifndef ANVIL_TRACE_VCD_READER_H
#define ANVIL_TRACE_VCD_READER_H

#include <istream>
#include <string>

#include "trace/trace.h"

namespace anvil {
namespace trace {

class VcdReader
{
  public:
    /** Parse a whole VCD stream.  Throws std::runtime_error. */
    static Trace read(std::istream &is);

    /** Parse a VCD file from disk.  Throws std::runtime_error. */
    static Trace readFile(const std::string &path);
};

} // namespace trace
} // namespace anvil

#endif // ANVIL_TRACE_VCD_READER_H
