#include "rtl/vcd.h"

#include <map>
#include <stdexcept>

namespace anvil {
namespace rtl {

namespace {

/** Nested VCD scope: child scopes by name plus leaf vars. */
struct ScopeNode
{
    std::map<std::string, ScopeNode> children;
    std::vector<size_t> vars;   // indices into the traced list
};

/** Binary value with leading zeros stripped (VCD shorthand). */
std::string
trimmedBinary(const BitVec &v)
{
    std::string b = v.toBinary();
    size_t first = b.find('1');
    if (first == std::string::npos)
        return "0";
    return b.substr(first);
}

} // namespace

std::string
VcdWriter::idCode(size_t index)
{
    // Base-94 over the printable ASCII range '!'..'~'.
    std::string id;
    do {
        id += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

VcdWriter::VcdWriter(Sim &sim, std::ostream &os,
                     std::vector<std::string> signals)
    : _sim(sim), _os(os)
{
    const Netlist &nl = _sim.netlist();
    if (signals.empty())
        for (const auto &[name, sig] : nl.signals())
            signals.push_back(name);

    for (const auto &name : signals) {
        std::string flat = nl.resolveName("", name);
        auto it = nl.signals().find(flat);
        if (it == nl.signals().end())
            throw std::invalid_argument("no such signal: " + name);
        // VCD has no representation for zero-width vars; skip them
        // rather than emit a malformed "$var wire 0" declaration.
        if (it->second.width < 1)
            continue;
        Traced t;
        t.name = flat;
        t.id = idCode(_traced.size());
        t.net = it->second.net;
        t.width = it->second.width;
        t.is_reg = it->second.kind == NetSignal::Kind::Reg;
        t.last = BitVec(t.width);
        _traced.push_back(std::move(t));
    }
    writeHeader();
}

void
VcdWriter::writeHeader()
{
    // Deterministic header: no wall-clock date, fixed version text.
    _os << "$date\n    (deterministic)\n$end\n"
        << "$version\n    anvil VcdWriter\n$end\n"
        << "$timescale\n    1ns\n$end\n";

    ScopeNode root;
    for (size_t i = 0; i < _traced.size(); i++) {
        ScopeNode *node = &root;
        const std::string &name = _traced[i].name;
        size_t start = 0, dot;
        while ((dot = name.find('.', start)) != std::string::npos) {
            node = &node->children[name.substr(start, dot - start)];
            start = dot + 1;
        }
        node->vars.push_back(i);
    }

    // Recursive emit; leaf var names drop the instance path prefix.
    auto emitScope = [this](const ScopeNode &node,
                            auto &&self) -> void {
        for (size_t i : node.vars) {
            const Traced &t = _traced[i];
            std::string leaf = t.name.substr(t.name.rfind('.') + 1);
            _os << "$var " << (t.is_reg ? "reg" : "wire") << " "
                << t.width << " " << t.id << " " << leaf;
            if (t.width > 1)
                _os << " [" << t.width - 1 << ":0]";
            _os << " $end\n";
        }
        for (const auto &[name, child] : node.children) {
            _os << "$scope module " << name << " $end\n";
            self(child, self);
            _os << "$upscope $end\n";
        }
    };

    _os << "$scope module " << _sim.topName() << " $end\n";
    emitScope(root, emitScope);
    _os << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::emitValue(const Traced &t, const BitVec &v)
{
    if (t.width == 1)
        _os << (v.any() ? '1' : '0') << t.id << "\n";
    else
        _os << "b" << trimmedBinary(v) << " " << t.id << "\n";
    _changes++;
}

void
VcdWriter::sample()
{
    if (!_primed) {
        _os << "#" << _sim.cycle() << "\n$dumpvars\n";
        for (auto &t : _traced) {
            const BitVec &v = _sim.value(t.net);
            emitValue(t, v);
            t.last = v;
        }
        _os << "$end\n";
        _primed = true;
        return;
    }

    // Only nets that changed since the previous sample are dumped;
    // a cycle with no changes emits nothing at all.
    bool stamped = false;
    for (auto &t : _traced) {
        const BitVec &v = _sim.value(t.net);
        if (v == t.last)
            continue;
        if (!stamped) {
            _os << "#" << _sim.cycle() << "\n";
            stamped = true;
        }
        emitValue(t, v);
        t.last = v;
    }
}

} // namespace rtl
} // namespace anvil
