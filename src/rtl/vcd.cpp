#include "rtl/vcd.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace anvil {
namespace rtl {

namespace {

/** Nested VCD scope: child scopes by name plus leaf vars. */
struct ScopeNode
{
    std::map<std::string, ScopeNode> children;
    std::vector<size_t> vars;   // indices into the traced list
};

/** Binary value with leading zeros stripped (VCD shorthand). */
std::string
trimmedBinary(const BitVec &v)
{
    std::string b = v.toBinary();
    size_t first = b.find('1');
    if (first == std::string::npos)
        return "0";
    return b.substr(first);
}

} // namespace

void
writeVcdHeader(std::ostream &os, const std::string &top_scope,
               const std::vector<VcdVarDecl> &vars)
{
    // Deterministic header: no wall-clock date, fixed version text.
    os << "$date\n    (deterministic)\n$end\n"
       << "$version\n    anvil VcdWriter\n$end\n"
       << "$timescale\n    1ns\n$end\n";

    ScopeNode root;
    for (size_t i = 0; i < vars.size(); i++) {
        ScopeNode *node = &root;
        const std::string &name = vars[i].name;
        size_t start = 0, dot;
        while ((dot = name.find('.', start)) != std::string::npos) {
            node = &node->children[name.substr(start, dot - start)];
            start = dot + 1;
        }
        node->vars.push_back(i);
    }

    // Recursive emit; leaf var names drop the instance path prefix.
    auto emitScope = [&os, &vars](const ScopeNode &node,
                                  auto &&self) -> void {
        for (size_t i : node.vars) {
            const VcdVarDecl &t = vars[i];
            std::string leaf = t.name.substr(t.name.rfind('.') + 1);
            os << "$var " << (t.is_reg ? "reg" : "wire") << " "
               << t.width << " " << t.id << " " << leaf;
            if (t.width > 1)
                os << " [" << t.width - 1 << ":0]";
            os << " $end\n";
        }
        for (const auto &[name, child] : node.children) {
            os << "$scope module " << name << " $end\n";
            self(child, self);
            os << "$upscope $end\n";
        }
    };

    os << "$scope module " << top_scope << " $end\n";
    emitScope(root, emitScope);
    os << "$upscope $end\n$enddefinitions $end\n";
}

void
writeVcdValue(std::ostream &os, const std::string &id, int width,
              const BitVec &v)
{
    if (width == 1)
        os << (v.any() ? '1' : '0') << id << "\n";
    else
        os << "b" << trimmedBinary(v) << " " << id << "\n";
}

std::string
VcdWriter::idCode(size_t index)
{
    // Base-94 over the printable ASCII range '!'..'~'.
    std::string id;
    do {
        id += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

VcdWriter::VcdWriter(Sim &sim, std::ostream &os,
                     std::vector<std::string> signals)
    : _sim(sim), _os(os)
{
    const Netlist &nl = _sim.netlist();
    if (signals.empty())
        for (const auto &[name, sig] : nl.signals())
            signals.push_back(name);

    _net_slot.assign(nl.nets().size(), -1);
    for (const auto &name : signals) {
        std::string flat = nl.resolveName("", name);
        auto it = nl.signals().find(flat);
        if (it == nl.signals().end())
            throw std::invalid_argument("no such signal: " + name);
        // VCD has no representation for zero-width vars; skip them
        // rather than emit a malformed "$var wire 0" declaration.
        if (it->second.width < 1)
            continue;
        Traced t;
        t.name = flat;
        t.id = idCode(_traced.size());
        t.net = it->second.net;
        t.width = it->second.width;
        t.is_reg = it->second.kind == NetSignal::Kind::Reg;
        t.fed = !nl.net(t.net).lazy;
        t.last = BitVec(t.width);
        if (t.fed) {
            // Duplicate traces of one net (an alias next to its flat
            // name) chain off the net's single slot entry; the feed
            // subscription is deduplicated and onCycle fans the one
            // change out to the whole chain.
            size_t ni = static_cast<size_t>(t.net);
            t.dup_next = _net_slot[ni];
            _net_slot[ni] = static_cast<int32_t>(_traced.size());
        }
        _traced.push_back(std::move(t));
    }
    writeHeader();
}

VcdWriter::~VcdWriter() = default;

void
VcdWriter::onAttach(obs::ChangeFeed &feed)
{
    for (const Traced &t : _traced)
        if (t.fed)
            feed.subscribe(*this, t.net);
}

void
VcdWriter::writeHeader()
{
    std::vector<VcdVarDecl> vars;
    vars.reserve(_traced.size());
    for (const Traced &t : _traced)
        vars.push_back({t.name, t.id, t.width, t.is_reg});
    writeVcdHeader(_os, _sim.topName(), vars);
}

void
VcdWriter::emitValue(const Traced &t, const BitVec &v)
{
    writeVcdValue(_os, t.id, t.width, v);
    _changes++;
}

void
VcdWriter::sampleTraced(Traced &t, bool &stamped)
{
    const BitVec &v = _sim.value(t.net);
    if (v == t.last)
        return;
    if (!stamped) {
        _os << "#" << _sim.cycle() << "\n";
        stamped = true;
    }
    emitValue(t, v);
    t.last = v;
}

void
VcdWriter::onPrime(Sim &sim, uint64_t cycle)
{
    (void)sim;
    if (!_primed) {
        _os << "#" << cycle << "\n$dumpvars\n";
        for (auto &t : _traced) {
            const BitVec &v = _sim.value(t.net);
            emitValue(t, v);
            t.last = v;
        }
        _os << "$end\n";
        _primed = true;
        return;
    }
    // Rescan fallback (skipped cycles, late pokes): every traced net
    // is re-read; the emitted bytes match the fast path exactly.
    bool stamped = false;
    for (auto &t : _traced)
        sampleTraced(t, stamped);
}

void
VcdWriter::onCycle(Sim &sim, uint64_t cycle,
                   const std::vector<NetId> &changed)
{
    (void)sim;
    (void)cycle;
    // Only nets that changed since the previous sample are dumped; a
    // cycle with no changes emits nothing at all.  `changed` holds
    // exactly this writer's subscribed nets, so the scan is
    // proportional to activity; nets outside the feed (lazy cones)
    // are re-read every visit.
    bool stamped = false;
    _scratch.clear();
    for (NetId id : changed)
        for (int32_t slot = _net_slot[static_cast<size_t>(id)];
             slot >= 0;
             slot = _traced[static_cast<size_t>(slot)].dup_next)
            _scratch.push_back(static_cast<size_t>(slot));
    // Emit in declaration order, exactly as the full scan would.
    std::sort(_scratch.begin(), _scratch.end());
    size_t next_unfed = 0;
    for (size_t slot : _scratch) {
        // Interleave un-fed nets to keep the order global.
        for (; next_unfed < slot; next_unfed++)
            if (!_traced[next_unfed].fed)
                sampleTraced(_traced[next_unfed], stamped);
        next_unfed = std::max(next_unfed, slot + 1);
        sampleTraced(_traced[slot], stamped);
    }
    for (; next_unfed < _traced.size(); next_unfed++)
        if (!_traced[next_unfed].fed)
            sampleTraced(_traced[next_unfed], stamped);
}

void
VcdWriter::sample()
{
    if (!_own_feed) {
        if (feed())
            throw std::logic_error(
                "VcdWriter::sample(): attached to an external "
                "ChangeFeed; drive that feed instead");
        _own_feed = std::make_unique<obs::ChangeFeed>(_sim);
        _own_feed->attach(*this);
    }
    _own_feed->sample();
}

} // namespace rtl
} // namespace anvil
