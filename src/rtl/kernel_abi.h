/**
 * @file
 * C ABI between the simulator and a compiled netlist kernel.
 *
 * `anvilc --emit-cpp` (src/codegen/cpp_emitter.cpp) lowers the strict
 * combinational portion of a levelized rtl::Netlist to straight-line
 * C++ and wraps it in the struct below; the JIT (src/codegen/jit.cpp)
 * compiles that source with the system compiler and dlopens the
 * resulting shared object.  The generated file embeds its own copy of
 * this struct definition so an --emit-cpp dump compiles standalone —
 * the two copies are tied together by `abi_version`, and an attach is
 * additionally gated on `design_hash` (rtl::designHash) and
 * `net_count` so a stale object can never be bound to the wrong
 * netlist.
 *
 * Division of labour: the kernel owns only the levelized strict sweep
 * (sources in, changed strict nets out).  Sources (inputs, registers)
 * are pushed in by the host via net_ptr()+poke(); lazy cones, the
 * clock edge, prints, toggles, and every observer stay in rtl::Sim,
 * which remains the single semantic authority.  Values are packed
 * little-endian 64-bit words, ceil(width/64) (min 1) words per net,
 * normalized (bits at or above the width are zero) exactly like
 * anvil::BitVec.
 */

#ifndef ANVIL_RTL_KERNEL_ABI_H
#define ANVIL_RTL_KERNEL_ABI_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define ANVIL_KERNEL_ABI_VERSION 1u

/** Version 1 kernel vtable.  All functions are thread-compatible:
 *  distinct contexts may be driven from distinct threads, one context
 *  must not be entered concurrently. */
typedef struct AnvilKernelV1
{
    uint32_t abi_version;   /* == ANVIL_KERNEL_ABI_VERSION */
    uint32_t net_count;     /* nets at emission time */
    uint64_t design_hash;   /* rtl::designHash of the netlist */
    uint64_t state_words;   /* packed value words per context */

    /** Allocate a context holding the design's initial values.
     *  Returns NULL on allocation failure. */
    void *(*create)(void);
    void (*destroy)(void *ctx);

    /** Pointer to the value words of `net` (valid for the context's
     *  lifetime; ceil(width/64), min 1, words). */
    uint64_t *(*net_ptr)(void *ctx, int32_t net);

    /** Mark a source net changed after the host wrote its words via
     *  net_ptr(); the next eval() re-evaluates its fan-out cone. */
    void (*poke)(void *ctx, int32_t net);

    /**
     * Event-driven sweep: evaluate the marked cones in levelized
     * order.  Strict nets whose value changed are appended to
     * `changed` (caller-provided, net_count capacity) and counted in
     * *n_changed.  Returns the number of node evaluations.
     */
    uint64_t (*eval)(void *ctx, int32_t *changed, uint64_t *n_changed);

    /** Dense sweep: evaluate every strict node, reporting changes by
     *  value comparison (the resync path after attach/mode switch). */
    uint64_t (*eval_full)(void *ctx, int32_t *changed,
                          uint64_t *n_changed);
} AnvilKernelV1;

/** Entry point exported by every compiled kernel object. */
typedef const AnvilKernelV1 *(*AnvilKernelEntryFn)(void);

#define ANVIL_KERNEL_ENTRY_SYMBOL "anvil_kernel_v1"

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* ANVIL_RTL_KERNEL_ABI_H */
