/**
 * @file
 * C ABI between the simulator and a compiled netlist kernel.
 *
 * `anvilc --emit-cpp` (src/codegen/cpp_emitter.cpp) lowers the strict
 * combinational portion of a levelized rtl::Netlist to straight-line
 * C++ and wraps it in the struct below; the JIT (src/codegen/jit.cpp)
 * compiles that source with the system compiler and dlopens the
 * resulting shared object.  The generated file embeds its own copy of
 * this struct definition so an --emit-cpp dump compiles standalone —
 * the two copies are tied together by `abi_version`, and an attach is
 * additionally gated on `design_hash` (rtl::designHash) and
 * `net_count` so a stale object can never be bound to the wrong
 * netlist.
 *
 * Division of labour: the kernel owns only the levelized strict sweep
 * (sources in, changed strict nets out).  Sources (inputs, registers)
 * are pushed in by the host via net_ptr()+poke(); lazy cones, the
 * clock edge, prints, toggles, and every observer stay in rtl::Sim,
 * which remains the single semantic authority.  Values are packed
 * little-endian 64-bit words, ceil(width/64) (min 1) words per net,
 * normalized (bits at or above the width are zero) exactly like
 * anvil::BitVec.
 *
 * Version 2 tightens the eval() contract and adds introspection:
 *  - eval()'s changed list is EXACT — a strict net appears iff its
 *    committed value differs from the previous eval (v1 only promised
 *    value-accurate entries; scheduling was block-granular, and the
 *    host had to treat the list as approximate for costing);
 *  - the kernel is event-driven internally (per-level exact worklists
 *    seeded by poke(), change-cutting, and an adaptive dense fallback
 *    mirroring the interpreter's hysteresis);
 *  - stats() exports the kernel's own activity counters so the host
 *    can fold them into its sweep telemetry.
 *
 * Version 3 appends per-level attribution (the struct keeps its name
 * and entry symbol; v3 is a strict prefix-compatible extension):
 *  - level_count mirrors the design's levelization;
 *  - level_stats() exports cumulative node evaluations per level, so
 *    the host's hot-cone report covers the compiled backend too.
 */

#ifndef ANVIL_RTL_KERNEL_ABI_H
#define ANVIL_RTL_KERNEL_ABI_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define ANVIL_KERNEL_ABI_VERSION 3u

/** Activity counters accumulated by a kernel context since create().
 *  Mirrors the host-side SweepStats vocabulary. */
typedef struct AnvilKernelStats
{
    uint64_t frames;            /* eval() + eval_full() calls */
    uint64_t dense_frames;      /* frames run on the dense path */
    uint64_t fallback_switches; /* sparse->dense hysteresis entries */
    uint64_t nodes_evaluated;   /* strict node evaluations, total */
    uint64_t nets_changed;      /* changed-net records, total */
} AnvilKernelStats;

/** Version 2 kernel vtable.  All functions are thread-compatible:
 *  distinct contexts may be driven from distinct threads, one context
 *  must not be entered concurrently. */
typedef struct AnvilKernelV2
{
    uint32_t abi_version;   /* == ANVIL_KERNEL_ABI_VERSION */
    uint32_t net_count;     /* nets at emission time */
    uint64_t design_hash;   /* rtl::designHash of the netlist */
    uint64_t state_words;   /* packed value words per context */

    /** Allocate a context holding the design's initial values.
     *  Returns NULL on allocation failure. */
    void *(*create)(void);
    void (*destroy)(void *ctx);

    /** Pointer to the value words of `net` (valid for the context's
     *  lifetime; ceil(width/64), min 1, words). */
    uint64_t *(*net_ptr)(void *ctx, int32_t net);

    /** Mark a source net changed after the host wrote its words via
     *  net_ptr(): its strict consumers are queued on their levels'
     *  worklists for the next eval().  Idempotent per net between
     *  evals. */
    void (*poke)(void *ctx, int32_t net);

    /**
     * Event-driven sweep: drain the per-level worklists in levelized
     * order, re-evaluating only queued nodes; a node whose value is
     * unchanged does not queue its consumers (change-cutting).  When
     * the previous frame's activity crossed the dense-fallback
     * threshold the whole table is recomputed straight-line instead.
     * Either way, strict nets whose committed value changed — exactly
     * those — are appended to `changed` (caller-provided, net_count
     * capacity) and counted in *n_changed.  Returns the number of
     * node evaluations.
     */
    uint64_t (*eval)(void *ctx, int32_t *changed, uint64_t *n_changed);

    /** Dense sweep: evaluate every strict node, reporting changes by
     *  value comparison (the resync path after attach/mode switch).
     *  Pending worklist state is consumed and cleared. */
    uint64_t (*eval_full)(void *ctx, int32_t *changed,
                          uint64_t *n_changed);

    /** Copy the context's activity counters into *out. */
    void (*stats)(void *ctx, AnvilKernelStats *out);

    /* --- v3 additions (prefix-compatible) ------------------------ */

    /** Logic levels in the emitted design's levelization. */
    uint32_t level_count;

    /** Copy cumulative node evaluations per level into out[0 ..
     *  level_count); caller provides level_count slots.  Counts since
     *  create(), accumulated on both sparse and dense paths. */
    void (*level_stats)(void *ctx, uint64_t *out);
} AnvilKernelV2;

/** Entry point exported by every compiled kernel object. */
typedef const AnvilKernelV2 *(*AnvilKernelEntryFn)(void);

#define ANVIL_KERNEL_ENTRY_SYMBOL "anvil_kernel_v2"

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* ANVIL_RTL_KERNEL_ABI_H */
