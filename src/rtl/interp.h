/**
 * @file
 * Cycle-accurate simulator for the structural RTL IR, built on a
 * compiled netlist (rtl/netlist.h).
 *
 * The design hierarchy is flattened and compiled once at
 * construction: signal names are interned to dense integer ids,
 * expression DAGs become compact ID-resolved nodes, and combinational
 * logic is levelized.  Each cycle has two phases, mirroring
 * synchronous RTL semantics: a levelized sweep computes combinational
 * nodes (wires are pure functions of registers and top-level inputs),
 * then the clock edge commits all enabled register updates
 * simultaneously.  No name resolution, map lookups, or per-node
 * memoization bookkeeping happen on the hot path; values of 64 bits
 * or fewer are computed in a plain-uint64 fast lane.
 *
 * The sweep is event-driven by default (SweepMode::Dirty): each cycle
 * seeds a per-level worklist with the inputs and registers whose
 * value actually changed, and only the transitive fan-out cone of
 * those sources is re-evaluated, in the same levelized order as the
 * dense sweep — a node whose recomputed value is unchanged cuts
 * propagation to its consumers.  Cost is therefore proportional to
 * switching activity, not design size.  SweepMode::Full preserves the
 * dense whole-table sweep as a fallback; SweepMode::Threaded shards
 * levels whose dirty population is wide enough across a small worker
 * pool (nodes within a level are independent by construction, and
 * changed-value bookkeeping is joined deterministically on the main
 * thread, so all three modes are bit-identical).
 *
 * The per-cycle list of changed nets is exposed (changedNets), so
 * observers — VCD tracing, coverage toggle sampling, contract
 * monitors — consume change events instead of rescanning the whole
 * net table every cycle.
 *
 * The simulator also counts per-signal bit toggles, which the
 * synthesis cost model uses as switching activity for dynamic power.
 * The original recursive interpreter is preserved as rtl::RefSim
 * (rtl/ref_interp.h) and serves as the differential-testing oracle;
 * both produce identical peeks, logs, and toggle counts.
 */

#ifndef ANVIL_RTL_INTERP_H
#define ANVIL_RTL_INTERP_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rtl/kernel_abi.h"
#include "rtl/netlist.h"
#include "rtl/rtl.h"

namespace anvil {
namespace rtl {

class SweepPool;

/**
 * Monotonic wall clock in nanoseconds — the one time source every
 * telemetry consumer shares (Sim phase timing, observer visit
 * timing, the JIT compile path), so Chrome-trace tracks line up.
 */
uint64_t monotonicNanos();

/** Timed phases of one simulation step, reported to a telemetry sink. */
enum class SimPhase : uint8_t
{
    Sweep,       // interpreter combinational sweep (dense or dirty)
    KernelEval,  // compiled-kernel combinational sweep
    Commit,      // clock edge: toggles, next-state, prints, commit
};

constexpr int kSimPhaseCount = 3;

/** Phase name ("sweep", "kernel", "commit"). */
const char *simPhaseName(SimPhase phase);

/**
 * Per-phase timing sink (see obs::TraceProfiler).  Installed with
 * Sim::setTelemetry; when none is installed the hot path takes no
 * clock reads at all.  Timestamps come from monotonicNanos().
 */
class SimTelemetry
{
  public:
    virtual ~SimTelemetry() = default;
    virtual void simPhase(SimPhase phase, uint64_t cycle,
                          uint64_t begin_ns, uint64_t end_ns) = 0;
};

/**
 * A compiled kernel (kernel_abi.h) plus whatever owns its lifetime —
 * typically the dlopen'd library held by codegen::CompiledKernel.
 * Default-constructed means "no kernel": Sim and the BMC take this by
 * value and simply stay on the interpreter when abi is null.
 */
struct KernelRef
{
    const AnvilKernelV2 *abi = nullptr;
    std::shared_ptr<void> hold;   // keeps the mapped library alive
};

/** Strategy used to recompute combinational values each cycle. */
enum class SweepMode : uint8_t
{
    Full,      // dense sweep over every strict node (PR 1 behaviour)
    Dirty,     // event-driven: only the changed fan-out cone
    Threaded,  // dirty + wide levels sharded across a worker pool
};

/** Human-readable mode name ("full", "dirty", "threaded"). */
const char *sweepModeName(SweepMode mode);

/**
 * Activity counters for the sweep, accumulated per committed cycle.
 * The activity factor (nodes_evaluated / (cycles * strict_nodes)) is
 * the fraction of the design the dirty sweep actually touches.
 */
struct SweepStats
{
    SweepMode mode = SweepMode::Dirty;
    int threads = 1;
    size_t strict_nodes = 0;      // strict comb nodes in the design
    uint64_t cycles = 0;          // committed cycles observed
    uint64_t nodes_evaluated = 0; // strict node evaluations, total
    uint64_t peak_nodes = 0;      // most evaluations in one cycle
    uint64_t nets_changed = 0;    // changed-net records, total
    uint64_t peak_changed = 0;    // most changed nets in one cycle
    uint64_t sharded_levels = 0;  // level worklists run on the pool
    uint64_t kernel_frames = 0;   // sweeps run by a compiled kernel
    /** Times the adaptive fallback switched the dirty sweep onto the
     *  dense path (rollFrame hysteresis entries). */
    uint64_t dense_fallback_switches = 0;
    /** Kernel-internal activity (AnvilKernelStats, refreshed on each
     *  sweepStats() read while a kernel is attached): frames the
     *  kernel ran densely, and its own sparse->dense hysteresis
     *  entries.  Zero on the interpreter backends. */
    uint64_t kernel_dense_frames = 0;
    uint64_t kernel_fallback_switches = 0;

    double avgNodes() const
    {
        return cycles ? static_cast<double>(nodes_evaluated) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
    double avgChanged() const
    {
        return cycles ? static_cast<double>(nets_changed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Simulator for a flattened module hierarchy.
 *
 * Signal names use the instance path: a wire `w` inside instance `u`
 * of the top module is `u.w`.  Top-level signals are unprefixed.
 * Names are only touched at the API boundary (setInput/peek/...);
 * stepping works purely on interned ids.
 */
class Sim
{
  public:
    explicit Sim(std::shared_ptr<const Module> top);

    /**
     * Share one prebuilt immutable netlist across many Sim
     * instances (the farm fan-out: compile once, simulate N seeds).
     * All runtime state (values, worklists, register frames) is
     * per-instance, so sharing is thread-safe as long as the
     * netlist itself is never mutated — which is why evalTop's
     * ad-hoc compile path throws std::logic_error on a shared-
     * netlist Sim instead of appending nodes.  `netlist` must have
     * been built from `top`.
     */
    Sim(std::shared_ptr<const Module> top,
        std::shared_ptr<const Netlist> netlist);

    ~Sim();
    Sim(Sim &&) = delete;
    Sim &operator=(Sim &&) = delete;

    /** Drive a top-level input for the current cycle onwards. */
    void setInput(const std::string &name, const BitVec &v);
    void setInput(const std::string &name, uint64_t v);

    /**
     * Select the sweep strategy.  `threads` applies to
     * SweepMode::Threaded (0 picks a small default from the hardware
     * concurrency); `shard_min` is the dirty-population threshold at
     * which a level is sharded across the pool.  Safe at any time;
     * the next sweep re-evaluates the full table once so every mode
     * starts from identical committed state.
     */
    void setSweepMode(SweepMode mode, int threads = 0,
                      size_t shard_min = 256);
    SweepMode sweepMode() const { return _mode; }

    /** Activity counters (see SweepStats).  With a kernel attached,
     *  folds the kernel's own activity export in first. */
    const SweepStats &sweepStats() const;

    /**
     * Toggle per-net evaluation counting (off by default: the hot
     * path then pays one predictable branch).  Counts accumulate in
     * evalCounts() across every interpreter sweep — full, dirty,
     * threaded (distinct nodes, so the shared counters are race-free)
     * and lazy — and feed the hot-cone attribution report
     * (obs::buildHotReport).  Strict nets run by an attached kernel
     * are not counted here; see kernelLevelEvals().
     */
    void setEvalCounting(bool on);
    bool evalCounting() const { return _eval_counting; }

    /** Cumulative evaluations per net id (empty until counting is
     *  first enabled). */
    const std::vector<uint64_t> &evalCounts() const
    {
        return _eval_count;
    }

    /**
     * Per-level cumulative node evaluations reported by the attached
     * compiled kernel (ABI v3 level_stats), indexed by logic level.
     * Empty when no kernel is attached.
     */
    std::vector<uint64_t> kernelLevelEvals() const;

    /**
     * Install (or remove, with nullptr) a per-phase timing sink.
     * The sink must outlive the simulation or be detached first.
     * With no sink installed the step loop reads no clocks.
     */
    void setTelemetry(SimTelemetry *sink) { _telemetry = sink; }

    /**
     * Swap the strict combinational sweep for a compiled kernel
     * (anvilc --emit-cpp + codegen/jit.h).  Validates the ABI
     * version, design hash, and net count; on any mismatch nothing
     * changes and the interpreter keeps running — the compiled
     * backend is an accelerator, never a correctness dependency.
     * On success the kernel owns every strict net value (Sim copies
     * them back lazily as observers ask); sources stay Sim-owned and
     * are pushed through on every poke and clock edge.  Lazy cones,
     * the clock edge, prints, toggles, and the changed-net feed are
     * unchanged, so all observers see bit-identical behaviour.
     */
    bool attachKernel(const KernelRef &kernel);
    bool kernelAttached() const { return _kctx != nullptr; }

    /**
     * Nets whose value may have changed since the previous clock
     * edge, deduplicated (a superset: a net poked back to its old
     * value stays listed).  Sweeps first.  Nets NOT listed are
     * guaranteed unchanged since the last edge, so observers that
     * sample once per cycle — before step(), like VcdWriter and
     * Coverage — can visit only this list instead of every net.
     * Lazy nodes appear only once evaluated; observers of lazy nets
     * must read them directly every cycle (value() preserves the
     * on-demand fault semantics).
     */
    const std::vector<NetId> &changedNets();

    /**
     * Monotonic count of source mutations (setInput, setRegValue,
     * restoreRegs, clock-edge commits) ever recorded.  Strict-net
     * values only move downstream of a source mutation, so an
     * observer that captures this at its sample can verify at the
     * next sample that nothing was poked between its sample and the
     * clock edge (lastEdgePokeTick() equals the captured tick).  If
     * the ticks differ, changes recorded after the sample were
     * flushed with the edge and the per-cycle feed is incomplete for
     * that observer — it must rescan.
     */
    uint64_t pokeTick() const { return _poke_tick; }

    /** pokeTick() as of the most recent clock-edge frame roll. */
    uint64_t lastEdgePokeTick() const { return _poke_at_roll; }

    /** Read any signal (port, wire, or register) by flat name. */
    BitVec peek(const std::string &name);

    /** Evaluate combinational logic and advance n clock edges. */
    void step(int n = 1);

    uint64_t cycle() const { return _cycle; }

    /** Total bit toggles observed across all signals. */
    uint64_t totalToggles() const { return _total_toggles; }

    /** Number of flattened state bits (for the cost model). */
    int stateBits() const;

    /** Captured dprint output. */
    const std::vector<std::string> &log() const { return _log; }

    /** All flattened register names. */
    std::vector<std::string> regNames() const;

    /** Direct register access (used by the BMC substrate). */
    BitVec regValue(const std::string &flat_name) const;
    void setRegValue(const std::string &flat_name, const BitVec &v);

    /**
     * Snapshot every register in netlist().regs() order, and restore
     * such a snapshot.  The string-free state access of the BMC.
     */
    std::vector<BitVec> captureRegs() const;
    void restoreRegs(const std::vector<BitVec> &vals);

    /**
     * Indexed single-register write (netlist().regs() order), with
     * the same change seeding as restoreRegs.  The k-induction
     * prover's cone-restricted restore: touching only the cone's
     * registers keeps per-step cost proportional to the cone, not
     * the design.
     */
    void setReg(size_t reg_index, const BitVec &v);

    /**
     * Committed value of the i-th register (netlist().regs()
     * order).  No sweep: register state only moves on pokes and
     * clock edges, so snapshots taken right after step() need not
     * recompute the combinational frame.
     */
    const BitVec &regValue(size_t reg_index) const;

    /**
     * Value of an interned node at the current cycle.  Sweeps if
     * needed; lazy cones are evaluated on demand and fault exactly
     * like peek.  The id-addressed access of coverage and VCD tracing.
     */
    const BitVec &value(NetId id);

    /**
     * Value of a strict (non-lazy) net in the current frame, without
     * the re-sweep or lazy walk of value().  Valid inside a
     * ChangeFeed callback, where sample() has already swept the
     * frame; pulls kernel-owned values out of the attached kernel
     * when stale.  The per-cycle observer hot path.
     */
    const BitVec &frameValue(NetId id) { return valOf(id); }

    /** Top-level input port names. */
    std::vector<std::string> inputNames() const;

    /** Evaluate an expression in the top-level scope. */
    BitVec evalTop(const ExprPtr &e);

    /** The compiled netlist (inspection / cost analyses). */
    const Netlist &netlist() const { return _nl; }

    /**
     * The netlist as a shareable handle — hand it to further Sim
     * instances to skip their compile (always non-null; owned
     * privately unless this Sim was itself built on a shared one).
     */
    std::shared_ptr<const Netlist> sharedNetlist() const
    {
        return _nl_hold;
    }

    /** Name of the top module (VCD scope root). */
    const std::string &topName() const { return _top->name; }

  private:
    void sweep();
    void sweepFull();
    void sweepDirty();
    void sweepKernel();
    bool computeNet(NetId id);
    const BitVec &evalLazy(NetId id);
    const NetSignal *findSignal(const std::string &flat) const;
    void growRuntimeArrays(size_t n);
    void recordChange(NetId id);
    void seedSource(NetId id);
    void pushConsumers(NetId id);
    void rollFrame();
    void refreshFromKernel(NetId id);

    /**
     * Current value of a net, pulling it out of the attached kernel
     * first if the interpreter's copy is stale.  Sources and lazy
     * nodes are always Sim-owned and never stale.
     */
    const BitVec &valOf(NetId id)
    {
        size_t i = static_cast<size_t>(id);
        if (_kctx && i < _kstale.size() && _kstale[i])
            refreshFromKernel(id);
        return _val[i];
    }

    std::shared_ptr<const Module> _top;
    /** Owned mutable netlist; null when riding a shared one. */
    std::shared_ptr<Netlist> _nl_own;
    /** Keeps the netlist alive (owned or shared); never null. */
    std::shared_ptr<const Netlist> _nl_hold;
    const Netlist &_nl;
    std::vector<BitVec> _val;          // current value per node
    std::vector<BitVec> _reg_next;     // pending next value per reg
    std::vector<BitVec> _wire_last;    // previous-cycle wire values
    std::vector<uint64_t> _lazy_gen;   // per-sweep memo for lazy nodes
    std::vector<uint8_t> _visiting;    // lazy-walk loop detection
    std::vector<ExprPtr> _top_exprs;   // keeps evalTop keys alive
    std::map<const Expr *, NetId> _top_cache;

    // Event-driven sweep state.
    SweepMode _mode = SweepMode::Dirty;
    size_t _shard_min = 256;
    std::unique_ptr<SweepPool> _pool;
    bool _need_full = true;            // next sweep must be dense
    bool _prefer_dense = false;        // activity too high to cut
    std::vector<int32_t> _level_of;    // flat per-net level cache
    std::vector<NetId> _seeds;         // changed sources, un-swept
    std::vector<std::vector<NetId>> _buckets;   // per-level worklist
    std::vector<uint64_t> _dirty_mark; // per-net, keyed by _sweep_id
    uint64_t _sweep_id = 0;
    std::vector<NetId> _frame_changed; // changed since last edge
    std::vector<uint64_t> _change_mark;// per-net, keyed by _frame_id
    uint64_t _frame_id = 1;
    uint64_t _poke_tick = 0;           // source mutations, ever
    uint64_t _poke_at_roll = 0;        // _poke_tick at last edge
    std::vector<uint8_t> _shard_changed;        // pool join scratch
    std::vector<int32_t> _wire_slot;   // net -> wireNets index or -1
    uint64_t _frame_evals = 0;
    bool _eval_counting = false;
    std::vector<uint64_t> _eval_count;   // per-net evaluations
    mutable SweepStats _stats;   // kernel fields refreshed on read
    SimTelemetry *_telemetry = nullptr;

    // Compiled-kernel backend (attachKernel).
    KernelRef _kernel;
    void *_kctx = nullptr;             // kernel instance
    std::vector<int32_t> _kchanged;    // per-sweep changed-net buffer
    std::vector<uint8_t> _kstale;      // _val[i] behind the kernel
    std::vector<uint64_t *> _kptr;     // cached net_ptr per net: the
                                       // kernel state block never
                                       // moves, so the indirect call
                                       // is paid once at attach

    // Clock-edge bookkeeping: which updates are armed (enable != 0),
    // kept fresh from the changed-net delta, and which registers the
    // armed updates wrote this cycle — the edge costs O(activity),
    // not O(registers + updates).
    std::vector<int32_t> _upd_begin;   // enable net -> updates CSR
    std::vector<int32_t> _upd_list;
    std::vector<uint8_t> _armed;
    size_t _armed_count = 0;
    bool _armed_primed = false;
    std::vector<int32_t> _touched_regs;
    std::vector<uint8_t> _reg_touched;

    bool _dirty = true;
    bool _toggles_primed = false;
    uint64_t _gen = 0;
    uint64_t _cycle = 0;
    uint64_t _total_toggles = 0;
    std::vector<std::string> _log;
};

/**
 * Freshness cursor for consumers of Sim::changedNets().
 *
 * The per-cycle feed only covers an observer's window when (a) the
 * observer sampled the immediately preceding cycle and (b) no source
 * was poked between that sample and its clock edge (a late poke's
 * change records are flushed with the edge and never re-listed).
 * This cursor owns that invariant.  Its one live consumer is the
 * obs::ChangeFeed fan-out hub, which checks and syncs it on behalf
 * of every attached observer: call fresh() before taking the fast
 * path, sync() at the end of every sample (after all reads — reads
 * of lazy cones are fine, they never poke).
 */
class ChangeFeedCursor
{
  public:
    bool fresh(const Sim &sim) const
    {
        return _synced && sim.cycle() == _cycle + 1 &&
            sim.lastEdgePokeTick() == _tick;
    }

    void sync(const Sim &sim)
    {
        _synced = true;
        _cycle = sim.cycle();
        _tick = sim.pokeTick();
    }

  private:
    bool _synced = false;
    uint64_t _cycle = 0;
    uint64_t _tick = 0;
};

/** Apply a binary operator to two values (shared with the BMC). */
BitVec applyBinop(Op op, const BitVec &a, const BitVec &b, int width);

/** Apply a unary operator (shared with the BMC). */
BitVec applyUnop(Op op, const BitVec &a);

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_INTERP_H
