/**
 * @file
 * Cycle-accurate simulator for the structural RTL IR, built on a
 * compiled netlist (rtl/netlist.h).
 *
 * The design hierarchy is flattened and compiled once at
 * construction: signal names are interned to dense integer ids,
 * expression DAGs become compact ID-resolved nodes, and combinational
 * logic is levelized.  Each cycle has two phases, mirroring
 * synchronous RTL semantics: a dense per-level sweep computes every
 * combinational node (wires are pure functions of registers and
 * top-level inputs), then the clock edge commits all enabled register
 * updates simultaneously.  No name resolution, map lookups, or
 * per-node memoization bookkeeping happen on the hot path; values of
 * 64 bits or fewer are computed in a plain-uint64 fast lane.
 *
 * The simulator also counts per-signal bit toggles, which the
 * synthesis cost model uses as switching activity for dynamic power.
 * The original recursive interpreter is preserved as rtl::RefSim
 * (rtl/ref_interp.h) and serves as the differential-testing oracle;
 * both produce identical peeks, logs, and toggle counts.
 */

#ifndef ANVIL_RTL_INTERP_H
#define ANVIL_RTL_INTERP_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/netlist.h"
#include "rtl/rtl.h"

namespace anvil {
namespace rtl {

/**
 * Simulator for a flattened module hierarchy.
 *
 * Signal names use the instance path: a wire `w` inside instance `u`
 * of the top module is `u.w`.  Top-level signals are unprefixed.
 * Names are only touched at the API boundary (setInput/peek/...);
 * stepping works purely on interned ids.
 */
class Sim
{
  public:
    explicit Sim(std::shared_ptr<const Module> top);

    /** Drive a top-level input for the current cycle onwards. */
    void setInput(const std::string &name, const BitVec &v);
    void setInput(const std::string &name, uint64_t v);

    /** Read any signal (port, wire, or register) by flat name. */
    BitVec peek(const std::string &name);

    /** Evaluate combinational logic and advance n clock edges. */
    void step(int n = 1);

    uint64_t cycle() const { return _cycle; }

    /** Total bit toggles observed across all signals. */
    uint64_t totalToggles() const { return _total_toggles; }

    /** Number of flattened state bits (for the cost model). */
    int stateBits() const;

    /** Captured dprint output. */
    const std::vector<std::string> &log() const { return _log; }

    /** All flattened register names. */
    std::vector<std::string> regNames() const;

    /** Direct register access (used by the BMC substrate). */
    BitVec regValue(const std::string &flat_name) const;
    void setRegValue(const std::string &flat_name, const BitVec &v);

    /**
     * Snapshot every register in netlist().regs() order, and restore
     * such a snapshot.  The string-free state access of the BMC.
     */
    std::vector<BitVec> captureRegs() const;
    void restoreRegs(const std::vector<BitVec> &vals);

    /**
     * Value of an interned node at the current cycle.  Sweeps if
     * needed; lazy cones are evaluated on demand and fault exactly
     * like peek.  The id-addressed access of coverage and VCD tracing.
     */
    const BitVec &value(NetId id);

    /** Top-level input port names. */
    std::vector<std::string> inputNames() const;

    /** Evaluate an expression in the top-level scope. */
    BitVec evalTop(const ExprPtr &e);

    /** The compiled netlist (inspection / cost analyses). */
    const Netlist &netlist() const { return _nl; }

    /** Name of the top module (VCD scope root). */
    const std::string &topName() const { return _top->name; }

  private:
    void sweep();
    void computeNet(NetId id);
    const BitVec &evalLazy(NetId id);
    const NetSignal *findSignal(const std::string &flat) const;

    std::shared_ptr<const Module> _top;
    Netlist _nl;
    std::vector<BitVec> _val;          // current value per node
    std::vector<BitVec> _reg_next;     // pending next value per reg
    std::vector<BitVec> _wire_last;    // previous-cycle wire values
    std::vector<uint64_t> _lazy_gen;   // per-sweep memo for lazy nodes
    std::vector<uint8_t> _visiting;    // lazy-walk loop detection
    std::vector<ExprPtr> _top_exprs;   // keeps evalTop keys alive
    std::map<const Expr *, NetId> _top_cache;
    bool _dirty = true;
    bool _toggles_primed = false;
    uint64_t _gen = 0;
    uint64_t _cycle = 0;
    uint64_t _total_toggles = 0;
    std::vector<std::string> _log;
};

/** Apply a binary operator to two values (shared with the BMC). */
BitVec applyBinop(Op op, const BitVec &a, const BitVec &b, int width);

/** Apply a unary operator (shared with the BMC). */
BitVec applyUnop(Op op, const BitVec &a);

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_INTERP_H
