/**
 * @file
 * Structural RTL intermediate representation.
 *
 * This is the common substrate of the whole repository: the Anvil
 * compiler lowers event graphs to it (src/codegen), the handwritten
 * baseline designs are built directly in it (src/designs), the
 * cycle-accurate interpreter executes it (src/rtl/interp.*), the
 * synthesis cost model prices it (src/synth), and the bounded model
 * checker explores it (src/verif).
 *
 * A module consists of ports, registers, named combinational wires
 * (continuous assignments), guarded register updates (always_ff), and
 * child module instances.  Expressions are immutable DAGs shared via
 * shared_ptr.
 */

#ifndef ANVIL_RTL_RTL_H
#define ANVIL_RTL_RTL_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace anvil {
namespace rtl {

/** Combinational operators. */
enum class Op
{
    // Unary.
    Not, RedOr, RedAnd,
    // Binary.
    And, Or, Xor, Add, Sub, Mul,
    Eq, Ne, Lt, Le, Gt, Ge,   // unsigned comparisons, 1-bit result
    Shl, Shr,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** An immutable combinational expression node. */
struct Expr
{
    enum class Kind { Const, Ref, Unop, Binop, Mux, Slice, Concat, Rom };

    Kind kind = Kind::Const;
    int width = 1;

    BitVec value{1};               // Const
    std::string name;              // Ref
    Op op = Op::And;               // Unop / Binop
    std::vector<ExprPtr> args;     // operands (Mux: sel, then, else)
    int lo = 0;                    // Slice
    std::shared_ptr<const std::vector<BitVec>> rom;  // Rom table
};

// Expression builders ---------------------------------------------------

ExprPtr cst(const BitVec &v);
ExprPtr cst(int width, uint64_t v);
ExprPtr ref(const std::string &name, int width);
ExprPtr unop(Op op, ExprPtr a);
ExprPtr binop(Op op, ExprPtr a, ExprPtr b);
ExprPtr mux(ExprPtr sel, ExprPtr then_e, ExprPtr else_e);
ExprPtr slice(ExprPtr a, int lo, int width);
ExprPtr concat(std::vector<ExprPtr> parts_hi_first);
ExprPtr romLookup(std::shared_ptr<const std::vector<BitVec>> table,
                  ExprPtr addr, int width);

// Convenience wrappers used heavily by the baseline designs.
ExprPtr operator&(ExprPtr a, ExprPtr b);
ExprPtr operator|(ExprPtr a, ExprPtr b);
ExprPtr operator^(ExprPtr a, ExprPtr b);
ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator~(ExprPtr a);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr ne(ExprPtr a, ExprPtr b);
ExprPtr ult(ExprPtr a, ExprPtr b);

// Module structure -------------------------------------------------------

struct Port
{
    std::string name;
    int width = 1;
    bool is_input = true;
};

struct RegDecl
{
    std::string name;
    int width = 1;
    BitVec init{1};
};

struct WireDecl
{
    std::string name;
    int width = 1;
    ExprPtr expr;
};

/** Guarded register update: `if (enable) reg <= value;`. */
struct Update
{
    std::string reg;
    ExprPtr enable;
    ExprPtr value;
};

/** Simulation-only print: fires when enable is true. */
struct Print
{
    ExprPtr enable;
    std::string text;
    ExprPtr value;     // optional value printed after the text
};

struct Module;

/** A child module instance. */
struct Instance
{
    std::string name;
    std::shared_ptr<const Module> module;
    /** Child input port -> expression in the parent scope. */
    std::map<std::string, ExprPtr> inputs;
    /** Parent wire name -> child output port it aliases. */
    std::map<std::string, std::string> outputs;
};

/**
 * A synthesizable module.  Every output port must be driven by a wire
 * or register of the same name.
 */
struct Module
{
    std::string name;
    std::vector<Port> ports;
    std::vector<RegDecl> regs;
    std::vector<WireDecl> wires;
    std::vector<Update> updates;
    std::vector<Print> prints;
    std::vector<Instance> instances;

    // Builder helpers.
    ExprPtr input(const std::string &n, int width);
    void output(const std::string &n, int width);
    ExprPtr reg(const std::string &n, int width, uint64_t init = 0);
    ExprPtr wire(const std::string &n, ExprPtr e);
    void update(const std::string &r, ExprPtr enable, ExprPtr value);
    void print(ExprPtr enable, const std::string &text,
               ExprPtr value = nullptr);

    const Port *findPort(const std::string &n) const;
    const WireDecl *findWire(const std::string &n) const;
    const RegDecl *findReg(const std::string &n) const;
};

using ModulePtr = std::shared_ptr<Module>;

} // namespace rtl
} // namespace anvil

#endif // ANVIL_RTL_RTL_H
