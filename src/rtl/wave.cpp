#include "rtl/wave.h"

#include <sstream>
#include <stdexcept>

namespace anvil {
namespace rtl {

WaveRecorder::WaveRecorder(Sim &sim, std::vector<std::string> signals)
    : _sim(sim), _signals(std::move(signals)),
      _samples(_signals.size())
{
}

void
WaveRecorder::sample()
{
    for (size_t i = 0; i < _signals.size(); i++)
        _samples[i].push_back(_sim.peek(_signals[i]));
}

const std::vector<BitVec> &
WaveRecorder::samplesOf(const std::string &sig) const
{
    for (size_t i = 0; i < _signals.size(); i++)
        if (_signals[i] == sig)
            return _samples[i];
    throw std::invalid_argument("signal not recorded: " + sig);
}

std::string
WaveRecorder::render() const
{
    std::ostringstream os;
    size_t name_w = 4;
    for (const auto &s : _signals)
        name_w = std::max(name_w, s.size());

    size_t cycles = _samples.empty() ? 0 : _samples[0].size();
    os << std::string(name_w, ' ') << " |";
    for (size_t c = 0; c < cycles; c++) {
        std::string h = std::to_string(c);
        os << " " << h << std::string(h.size() < 6 ? 6 - h.size() : 0,
                                      ' ');
    }
    os << "\n";

    for (size_t i = 0; i < _signals.size(); i++) {
        os << _signals[i]
           << std::string(name_w - _signals[i].size(), ' ') << " |";
        for (const auto &v : _samples[i]) {
            std::string h;
            if (v.width() == 1) {
                h = v.any() ? "1" : "0";
            } else {
                h = v.toHex();
            }
            if (h.size() < 6)
                h += std::string(6 - h.size(), ' ');
            os << " " << h;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace rtl
} // namespace anvil
