#include "rtl/wave.h"

#include <sstream>
#include <stdexcept>

namespace anvil {
namespace rtl {

WaveRecorder::WaveRecorder(Sim &sim, std::vector<std::string> signals)
    : _sim(sim), _samples(signals.size())
{
    const Netlist &nl = sim.netlist();
    _net_slot.assign(nl.nets().size(), -1);
    for (auto &name : signals) {
        Rec r;
        r.name = std::move(name);
        std::string flat = nl.resolveName("", r.name);
        auto it = nl.signals().find(flat);
        if (it != nl.signals().end()) {
            r.net = it->second.net;
            // One feed slot per net; lazy nets are re-read directly
            // every sample so their on-demand faults still fire.
            size_t ni = static_cast<size_t>(r.net);
            if (!nl.net(r.net).lazy && _net_slot[ni] < 0) {
                _net_slot[ni] = static_cast<int32_t>(_recs.size());
                r.fed = true;
            }
        }
        _recs.push_back(std::move(r));
    }
}

void
WaveRecorder::sample()
{
    auto direct = [&](Rec &r) {
        // Unresolved names keep peek()'s error; resolved ones read
        // the interned value (identical result, no name lookup).
        r.last = r.net == kNoNet ? _sim.peek(r.name)
                                 : _sim.value(r.net);
    };

    if (_primed && _cursor.fresh(_sim)) {
        for (NetId id : _sim.changedNets()) {
            if (static_cast<size_t>(id) >= _net_slot.size())
                continue;
            int32_t slot = _net_slot[static_cast<size_t>(id)];
            if (slot >= 0)
                _recs[static_cast<size_t>(slot)].last =
                    _sim.value(id);
        }
        for (auto &r : _recs)
            if (!r.fed)
                direct(r);
    } else {
        for (auto &r : _recs)
            direct(r);
        _primed = true;
    }
    _cursor.sync(_sim);

    for (size_t i = 0; i < _recs.size(); i++)
        _samples[i].push_back(_recs[i].last);
}

const std::vector<BitVec> &
WaveRecorder::samplesOf(const std::string &sig) const
{
    for (size_t i = 0; i < _recs.size(); i++)
        if (_recs[i].name == sig)
            return _samples[i];
    throw std::invalid_argument("signal not recorded: " + sig);
}

std::string
WaveRecorder::render() const
{
    std::ostringstream os;
    size_t name_w = 4;
    for (const auto &r : _recs)
        name_w = std::max(name_w, r.name.size());

    size_t cycles = _samples.empty() ? 0 : _samples[0].size();
    os << std::string(name_w, ' ') << " |";
    for (size_t c = 0; c < cycles; c++) {
        std::string h = std::to_string(c);
        os << " " << h << std::string(h.size() < 6 ? 6 - h.size() : 0,
                                      ' ');
    }
    os << "\n";

    for (size_t i = 0; i < _recs.size(); i++) {
        os << _recs[i].name
           << std::string(name_w - _recs[i].name.size(), ' ') << " |";
        for (const auto &v : _samples[i]) {
            std::string h;
            if (v.width() == 1) {
                h = v.any() ? "1" : "0";
            } else {
                h = v.toHex();
            }
            if (h.size() < 6)
                h += std::string(6 - h.size(), ' ');
            os << " " << h;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace rtl
} // namespace anvil
